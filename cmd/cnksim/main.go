// Command cnksim boots a simulated Blue Gene/P machine under CNK or the
// Linux-like FWK and runs a workload, printing timing and noise
// statistics.
//
//	go run ./cmd/cnksim -kernel cnk -workload fwq -samples 2000
//	go run ./cmd/cnksim -kernel fwk -workload fwq -samples 2000 -seed 7
//	go run ./cmd/cnksim -kernel cnk -nodes 8 -workload allreduce
//	go run ./cmd/cnksim -kernel cnk -workload linpack -faults 42 -ras
//	go run ./cmd/cnksim -kernel cnk -nodes 8 -ions 8 -workload allreduce
//
// With -jobs the simulator switches to control-system mode: a service
// node over -partitions midplanes (of -nodes compute nodes each) drains
// a seeded queue of job submissions on -workers parallel workers:
//
//	go run ./cmd/cnksim -kernel cnk -partitions 4 -nodes 2 -jobs 50 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"bgcnk"
	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/noise"
	"bgcnk/internal/sim"
)

func main() {
	kernelName := flag.String("kernel", "cnk", "cnk or fwk")
	nodes := flag.Int("nodes", 1, "compute nodes")
	workload := flag.String("workload", "fwq", "fwq | allreduce | linpack | stream")
	samples := flag.Int("samples", 2000, "FWQ samples / allreduce iterations")
	seed := flag.Uint64("seed", 1, "FWK daemon-phase seed")
	counters := flag.String("counters", "", "print UPC counters after the run: text or json")
	faults := flag.Uint64("faults", 0, "arm the seeded fault injector with this fault seed (0 = perfect machine)")
	linkFails := flag.Int("linkfails", 0, "hard network faults: directed torus links to kill at seeded cycles")
	nodeFails := flag.Int("nodefails", 0, "hard network faults: torus node interfaces to kill at seeded cycles")
	noResilience := flag.Bool("noresilience", false, "disable fault-region routing and end-to-end retransmit (degrade baseline)")
	rasDump := flag.Bool("ras", false, "print the RAS event log after the run")
	ions := flag.Int("ions", 0, "CN:ION ratio — compute nodes per I/O node; arms the I/O aggregation subsystem (0 = legacy direct path)")
	partitions := flag.Int("partitions", 4, "control-system mode: midplanes in the machine")
	jobs := flag.Int("jobs", 0, "control-system mode: drain this many queued jobs (0 = run -workload instead)")
	workers := flag.Int("workers", 1, "control-system mode: parallel partition workers")
	tracePath := flag.String("trace", "", "write the run's span trace to this file as Chrome trace-event JSON (load in ui.perfetto.dev)")
	traceSample := flag.Int("tracesample", 0, "with -trace: also sample the UPC counters every N cycles (delta-encoded time-series)")
	flag.Parse()

	if *counters != "" && *counters != "text" && *counters != "json" {
		fmt.Fprintf(os.Stderr, "-counters must be text or json, got %q\n", *counters)
		os.Exit(2)
	}

	kind := bluegene.CNK
	if *kernelName == "fwk" {
		kind = bluegene.FWK
	}

	if *jobs > 0 {
		runControl(kind, *partitions, *nodes, *jobs, *workers, *seed, *faults, *ions, *tracePath)
		return
	}
	mcfg := bluegene.MachineConfig{Nodes: *nodes, Kernel: kind, Seed: *seed}
	if *tracePath != "" {
		mcfg.Obs = &bluegene.ObsConfig{SampleEvery: sim.Cycles(*traceSample)}
	}
	if *faults != 0 {
		mcfg.Faults = bluegene.DefaultFaultPlan(*faults)
	}
	if *linkFails > 0 || *nodeFails > 0 {
		if mcfg.Faults == nil {
			// Hard network faults only: a plan with zero soft-error rates,
			// seeded so the death schedule is reproducible.
			mcfg.Faults = &bluegene.FaultPlan{Seed: *seed}
		}
		mcfg.Faults.LinkFails = *linkFails
		mcfg.Faults.NodeFails = *nodeFails
		mcfg.Faults.NetResilienceOff = *noResilience
	}
	if *ions > 0 {
		mcfg.CNsPerION = *ions
		mcfg.ION = &bluegene.IONConfig{}
	}
	m, err := bluegene.NewMachine(mcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer m.Shutdown()
	fmt.Printf("booted %d-node machine under %s\n", *nodes, m.KernelName())

	switch *workload {
	case "fwq":
		cfg := apps.DefaultFWQ()
		cfg.Samples = *samples
		var out []sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			if env.Rank == 0 {
				out = apps.FWQ(ctx, m.HeapBase(ctx)+hw.VAddr(1<<20), cfg)
			}
		}, kernel.JobParams{}, 0)
		report(err)
		st := noise.Analyze(out)
		fmt.Printf("FWQ core 0: %v\n", st)
		fmt.Printf("  max variation %.4f%% (paper: CNK <0.006%%, Linux >5%% on cores 0/2/3)\n", st.MaxVariationPct)
	case "allreduce":
		var out []sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			s, _ := apps.AllreduceBench(ctx, env.MPI, *samples)
			if env.Rank == 0 {
				out = s
			}
		}, kernel.JobParams{}, 0)
		report(err)
		st := noise.Analyze(out[len(out)/4:])
		fmt.Printf("allreduce (%d nodes): mean=%.2fus sigma=%.4fus\n", *nodes, st.Mean/850, st.StdDev/850)
	case "linpack":
		var worst sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			d, _ := apps.Linpack(ctx, env.MPI, m.HeapBase(ctx), apps.DefaultLinpack())
			if d > worst {
				worst = d
			}
		}, kernel.JobParams{}, 0)
		report(err)
		fmt.Printf("linpack fixed-work solve: %.3f ms\n", worst.Micros()/1000)
	case "stream":
		var bpc float64
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			if env.Rank == 0 {
				bpc = apps.Stream(ctx, m.HeapBase(ctx), 4<<20, 4)
			}
		}, kernel.JobParams{}, 0)
		report(err)
		fmt.Printf("stream: %.2f bytes/cycle (%.0f MB/s at 850MHz)\n", bpc, bpc*850)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	if *counters != "" {
		snap := m.MergedCounters()
		fmt.Printf("\nUPC counters (all %d nodes merged):\n", *nodes)
		if *counters == "json" {
			fmt.Println(snap.JSON())
		} else {
			fmt.Print(snap.Text())
		}
	}

	if *ions > 0 {
		fmt.Printf("\nI/O aggregation (%d CNs per ION):\n", *ions)
		for i, s := range m.IONStats() {
			fmt.Printf("  ION %d: admits %d (max queue %d), coalesced %d, cache %d hit / %d miss, %d writebacks, %d flushes\n",
				i, s.Admitted, s.MaxDepth, s.Coalesced, s.CacheHits, s.CacheMisses, s.Writebacks, s.Flushes)
		}
	}

	if *rasDump {
		if m.RAS == nil {
			fmt.Println("\nno RAS log: the injector is not armed (use -faults <seed>)")
		} else {
			fmt.Printf("\nRAS event log (%d events, hash %016x):\n", m.RAS.Total(), m.RAS.Hash())
			fmt.Print(m.RAS.Table())
		}
	}

	if *tracePath != "" {
		writeTrace(*tracePath, m.TraceJSON(), m.Obs.SpanCount(), m.Obs.SampleCount())
	}
}

// writeTrace saves a Chrome trace-event JSON export and reports its size.
func writeTrace(path string, data []byte, spans, samples int) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ntrace: %d spans, %d samples, %d bytes -> %s (load in ui.perfetto.dev)\n",
		spans, samples, len(data), path)
}

func report(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runControl drains a seeded job queue through the control system: a
// service node over `partitions` midplanes of `nodesPerMidplane` compute
// nodes, `workers` partition simulations in flight at once.
func runControl(kind bluegene.KernelKind, partitions, nodesPerMidplane, jobs, workers int, seed, faults uint64, ions int, tracePath string) {
	cfg := bluegene.ControlConfig{
		Topology: bluegene.Topology{Racks: 1, MidplanesPerRack: partitions, NodesPerMidplane: nodesPerMidplane},
		Kind:     kind,
		Seed:     seed,
		Workers:  workers,
	}
	if tracePath != "" {
		cfg.Obs = &bluegene.ObsConfig{}
	}
	if faults != 0 {
		cfg.Faults = bluegene.DefaultFaultPlan(faults)
	}
	if ions > 0 {
		cfg.CNsPerION = ions
		cfg.ION = &bluegene.IONConfig{}
	}
	s := bluegene.NewServiceNode(cfg)
	queue := bluegene.GenerateControlJobs(seed, jobs, partitions)
	d, err := s.Drain(queue)
	report(err)

	boot := d.Results[0].Boot
	fmt.Printf("control system: %d midplanes x %d nodes, %d workers, seed %d\n",
		partitions, nodesPerMidplane, workers, seed)
	fmt.Printf("partition boot (%d nodes): image %.3f ms + per-node %.3f ms + init %.3f ms = %.3f ms\n",
		boot.Nodes, boot.ImagePhase.Seconds()*1e3, boot.PerNodePhase.Seconds()*1e3,
		boot.InitPhase.Seconds()*1e3, boot.Total.Seconds()*1e3)
	fmt.Printf("drained %d jobs in %.3f s simulated (%.2f jobs/s), %d backfilled, utilization %.1f%%\n",
		len(d.Results), d.Sched.Makespan.Seconds(), d.JobsPerSecond(),
		d.Sched.Backfilled, d.Sched.Utilization*100)
	// No host wall-clock here: cnksim output is byte-identical across
	// reruns (ctrlbench is the wall-clock reporting tool).
	fmt.Printf("%d failures, %d RAS events, drain signature %016x\n",
		d.Failures, d.RASEvents, d.Signature())
	if tracePath != "" {
		writeTrace(tracePath, s.TraceJSON(), s.Obs().SpanCount(), s.Obs().SampleCount())
	}
	if d.Failures > 0 {
		for _, r := range d.Results {
			if r.Failed() {
				fmt.Printf("  job %d (%s): err=%q exits=%v\n", r.Job.ID, r.Job.Name, r.Err, r.ExitCodes)
			}
		}
		os.Exit(1)
	}
}
