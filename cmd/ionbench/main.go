// Command ionbench measures the I/O-node aggregation subsystem and
// writes a machine-readable benchmark report (BENCH_ion.json by
// default): for each kernel and CN:ION fan-in ratio, the elapsed time,
// aggregate and per-compute-node bandwidth through the shared
// collective-tree uplink, the CN-side stall cycles the ingress credit
// gate charges to the UPC, and the coalescer/cache engagement counters.
// Every cell is run twice; the tool exits nonzero if any rerun is not
// bit-identical (counters and elapsed cycles both).
//
//	go run ./cmd/ionbench                 # full sweep
//	go run ./cmd/ionbench -quick -out ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgcnk/internal/experiments"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim/replica"
)

type ionRow struct {
	Kernel    string  `json:"kernel"`
	Ratio     int     `json:"cn_per_ion"`
	ElapsedMs float64 `json:"elapsed_ms"`
	AggMBps   float64 `json:"aggregate_mbps"`
	PerCNMBps float64 `json:"per_cn_mbps"`
	StallKcyc float64 `json:"cn_stall_kcycles"`
	Admits    uint64  `json:"ingress_admits"`
	Coalesced uint64  `json:"coalesced_writes"`
	HitRate   float64 `json:"cache_hit_pct"`
	Identical bool    `json:"identical_rerun"`
}

type ionReport struct {
	CPUs    int      `json:"host_cpus"`
	Workers int      `json:"workers"`
	Rows    []ionRow `json:"aggregation_sweep"`
}

func main() {
	out := flag.String("out", "BENCH_ion.json", "output path")
	quick := flag.Bool("quick", false, "small sweep for CI smoke")
	flag.Parse()

	ratios := []int{8, 16, 32, 64, 128}
	if *quick {
		ratios = []int{8, 32, 128}
	}
	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "cnk"},
		{machine.KindFWK, "fwk"},
	}
	workers := replica.DefaultWorkers()
	rep := ionReport{CPUs: runtime.NumCPU(), Workers: workers}

	// Each (kernel, ratio) cell builds its own machine, so the whole
	// sweep fans across the worker pool; rows land in sweep order.
	rep.Rows = replica.Map(workers, len(kinds)*len(ratios), func(idx int) ionRow {
		k := kinds[idx/len(ratios)]
		ratio := ratios[idx%len(ratios)]
		m, err := experiments.MeasureIOScale(k.kind, ratio)
		fail(err)
		return ionRow{
			Kernel: k.name, Ratio: ratio,
			ElapsedMs: m.ElapsedMs, AggMBps: m.AggMBps, PerCNMBps: m.PerCNMBps,
			StallKcyc: m.StallKcyc, Admits: m.Admits, Coalesced: m.Coalesced,
			HitRate: m.HitRate, Identical: m.Identical,
		}
	})
	for _, r := range rep.Rows {
		if !r.Identical {
			fmt.Fprintf(os.Stderr, "FATAL: %s %d CN/ION rerun diverged — determinism broken\n", r.Kernel, r.Ratio)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	blob = append(blob, '\n')
	fail(os.WriteFile(*out, blob, 0o644))
	fmt.Printf("wrote %s (%d cpus, %d workers)\n", *out, rep.CPUs, workers)
	for _, r := range rep.Rows {
		fmt.Printf("  %s %3d CN/ION: %8.3f ms, %7.2f MB/s agg (%5.3f per CN), stall %9.1f kcyc, admits %5d, coalesced %4d, hit %5.1f%%, exact=%v\n",
			r.Kernel, r.Ratio, r.ElapsedMs, r.AggMBps, r.PerCNMBps,
			r.StallKcyc, r.Admits, r.Coalesced, r.HitRate, r.Identical)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
