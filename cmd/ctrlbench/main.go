// Command ctrlbench measures the control-system subsystem and writes a
// machine-readable benchmark report (BENCH_ctrlsys.json by default):
// modelled boot times vs node count for both kernels, drained job
// throughput, and the serial-vs-parallel wall-clock comparison with its
// bit-identity check. scripts/bench.sh runs it as CI's non-gating
// benchmark smoke.
//
//	go run ./cmd/ctrlbench                 # full sizes
//	go run ./cmd/ctrlbench -quick -out ...
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"flag"

	"bgcnk"
	"bgcnk/internal/sim/replica"
)

type bootRow struct {
	Nodes   int     `json:"nodes"`
	CNKMs   float64 `json:"cnk_ms"`
	FWKMs   float64 `json:"fwk_ms"`
	FWKOver float64 `json:"fwk_over_cnk"`
}

type drainRow struct {
	Kernel        string  `json:"kernel"`
	Jobs          int     `json:"jobs"`
	Workers       int     `json:"workers"`
	SimMakespanS  float64 `json:"sim_makespan_s"`
	JobsPerSecond float64 `json:"sim_jobs_per_s"`
	Backfilled    int     `json:"backfilled"`
	Utilization   float64 `json:"utilization"`
	SerialWallS   float64 `json:"serial_wall_s"`
	ParallelWallS float64 `json:"parallel_wall_s"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical"`
	Signature     string  `json:"signature"`
}

type benchReport struct {
	CPUs  int        `json:"host_cpus"`
	Boot  []bootRow  `json:"boot_scaling"`
	Drain []drainRow `json:"drain"`
}

func main() {
	out := flag.String("out", "BENCH_ctrlsys.json", "output path")
	quick := flag.Bool("quick", false, "small sizes for CI smoke")
	seed := flag.Uint64("seed", 1009, "service-node seed")
	flag.Parse()

	rep := benchReport{CPUs: runtime.NumCPU()}
	counts := []int{64, 256, 1024}
	if *quick {
		counts = []int{32, 128}
	}
	// Each boot-scaling point is an independent replica; fan the sweep
	// and keep the rows in node-count order.
	rep.Boot = replica.Map(0, len(counts), func(i int) bootRow {
		n := counts[i]
		cb := bluegene.SimulateBoot(bluegene.BootConfig{Kind: bluegene.CNK, Nodes: n, NodesPerMidplane: 32})
		fb := bluegene.SimulateBoot(bluegene.BootConfig{Kind: bluegene.FWK, Nodes: n, NodesPerMidplane: 32})
		return bootRow{
			Nodes: n,
			CNKMs: cb.Total.Seconds() * 1e3, FWKMs: fb.Total.Seconds() * 1e3,
			FWKOver: float64(fb.Total) / float64(cb.Total),
		}
	})

	// The serial-vs-parallel drain comparison measures wall clock, so the
	// drains themselves run one at a time.
	topo := bluegene.Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 2}
	workers := replica.DefaultWorkers()
	kinds := []struct {
		kind bluegene.KernelKind
		name string
		jobs int
	}{
		{bluegene.CNK, "cnk", 120},
		{bluegene.FWK, "fwk", 24},
	}
	if *quick {
		kinds[0].jobs, kinds[1].jobs = 24, 6
	}
	for _, k := range kinds {
		cfg := bluegene.ControlConfig{Topology: topo, Kind: k.kind, Seed: *seed, Workers: 1}
		jobs := bluegene.GenerateControlJobs(*seed, k.jobs, topo.Midplanes())
		serial, err := bluegene.NewServiceNode(cfg).Drain(jobs)
		fail(err)
		cfg.Workers = workers
		par, err := bluegene.NewServiceNode(cfg).Drain(jobs)
		fail(err)
		rep.Drain = append(rep.Drain, drainRow{
			Kernel: k.name, Jobs: k.jobs, Workers: workers,
			SimMakespanS:  par.Sched.Makespan.Seconds(),
			JobsPerSecond: par.JobsPerSecond(),
			Backfilled:    par.Sched.Backfilled,
			Utilization:   par.Sched.Utilization,
			SerialWallS:   serial.Wall.Seconds(),
			ParallelWallS: par.Wall.Seconds(),
			Speedup:       serial.Wall.Seconds() / par.Wall.Seconds(),
			Identical:     par.Signature() == serial.Signature(),
			Signature:     fmt.Sprintf("%016x", par.Signature()),
		})
		if par.Signature() != serial.Signature() {
			fmt.Fprintf(os.Stderr, "FATAL: %s parallel drain diverged from serial\n", k.name)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	blob = append(blob, '\n')
	fail(os.WriteFile(*out, blob, 0o644))
	fmt.Printf("wrote %s (%d cpus, %d workers)\n", *out, rep.CPUs, workers)
	for _, d := range rep.Drain {
		fmt.Printf("  %s: %.2f sim jobs/s; wall serial %.2fs vs parallel %.2fs (%.2fx, identical=%v)\n",
			d.Kernel, d.JobsPerSecond, d.SerialWallS, d.ParallelWallS, d.Speedup, d.Identical)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
