// Command experiments regenerates every table and figure in the paper's
// evaluation section and prints the report that EXPERIMENTS.md records.
//
//	go run ./cmd/experiments            # full-size runs
//	go run ./cmd/experiments -quick     # scaled-down (seconds)
//	go run ./cmd/experiments -run fig8  # one artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"bgcnk"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down sample counts")
	run := flag.String("run", "", "run a single experiment id")
	flag.Parse()

	var results []*bluegene.ExperimentResult
	if *run != "" {
		r, err := bluegene.Experiment(*run, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, r)
	} else {
		rs, err := bluegene.AllExperiments(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = rs
	}
	failed := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Pass {
			failed++
		}
	}
	fmt.Printf("%d/%d artifacts reproduce the paper's shape\n", len(results)-failed, len(results))
	if failed > 0 {
		os.Exit(1)
	}
}
