// Command experiments regenerates every table and figure in the paper's
// evaluation section and prints the report that EXPERIMENTS.md records.
// Runners fan independent simulation replicas (sweep points, repeated
// runs, drained jobs) across a bounded worker pool; the output is
// bit-identical at every -workers value, only the wall clock moves.
//
//	go run ./cmd/experiments            # full-size runs
//	go run ./cmd/experiments -quick     # scaled-down (seconds)
//	go run ./cmd/experiments -run fig8  # one artifact
//	go run ./cmd/experiments -workers 1 # serial reference execution
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bgcnk"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down sample counts")
	run := flag.String("run", "", "run a single experiment id")
	workers := flag.Int("workers", 0, "replica worker pool size (0 = one per CPU, clamped; 1 = serial)")
	flag.Parse()

	opt := bluegene.ExperimentOptions{Quick: *quick, Workers: *workers}
	start := time.Now()
	var results []*bluegene.ExperimentResult
	if *run != "" {
		r, err := bluegene.ExperimentOpt(*run, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, r)
	} else {
		rs, err := bluegene.AllExperimentsOpt(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = rs
	}
	wall := time.Since(start)
	failed := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Pass {
			failed++
		}
	}
	fmt.Printf("%d/%d artifacts reproduce the paper's shape (%.1fs wall)\n",
		len(results)-failed, len(results), wall.Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}
