// Command resbench measures the resilience layer and writes a
// machine-readable benchmark report (BENCH_resilience.json by default):
// per-kernel checkpoint and restore latency (the fault-free run-cycle
// overhead of snapshotting, amortized per checkpoint), restart latency
// (service-node overhead per restart attempt), and the completion-rate
// sweep over uncorrectable-fault rates with checkpointing on and off.
// Every simulated number is deterministic; the tool exits nonzero if a
// parallel drain ever diverges from the serial one.
//
//	go run ./cmd/resbench                 # full sizes
//	go run ./cmd/resbench -quick -out ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgcnk"
	"bgcnk/internal/sim/replica"
)

// resilienceJobs are long enough (6-9 exchange rounds, checkpoint every
// round) that a mid-life kill leaves a checkpoint worth resuming from.
func resilienceJobs(n int) []bluegene.ControlJob {
	all := []bluegene.ControlJob{
		{ID: 0, Name: "res000", Midplanes: 1, Work: 20_000, Exchanges: 8, IOBytes: 512},
		{ID: 1, Name: "res001", Midplanes: 2, Work: 30_000, Exchanges: 6, IOBytes: 256},
		{ID: 2, Name: "res002", Midplanes: 1, Work: 25_000, Exchanges: 8, IOBytes: 512},
		{ID: 3, Name: "res003", Midplanes: 1, Work: 15_000, Exchanges: 7, IOBytes: 0},
		{ID: 4, Name: "res004", Midplanes: 2, Work: 22_000, Exchanges: 9, IOBytes: 128},
		{ID: 5, Name: "res005", Midplanes: 1, Work: 18_000, Exchanges: 6, IOBytes: 256},
	}
	return all[:n]
}

// noCkptInterval exceeds every job's exchange count: the identical
// resilient workload runs, but no snapshot is ever taken and every
// restart is a cold start.
const noCkptInterval = 1 << 20

type ckptCostRow struct {
	Kernel          string  `json:"kernel"`
	Checkpoints     int     `json:"checkpoints"`
	TotalOverheadMs float64 `json:"total_overhead_ms"`
	PerCheckpointUs float64 `json:"per_checkpoint_us"`
}

type sweepRow struct {
	Kernel         string  `json:"kernel"`
	FaultRate      float64 `json:"fault_rate"`
	Ckpt           bool    `json:"ckpt"`
	Jobs           int     `json:"jobs"`
	Completed      int     `json:"completed"`
	CompletionRate float64 `json:"completion_rate"`
	Restarts       int     `json:"restarts"`
	RestartUs      float64 `json:"restart_overhead_per_restart_us"`
	WastedMs       float64 `json:"wasted_ms"`
	MakespanMs     float64 `json:"makespan_ms"`
	Identical      bool    `json:"identical"`
	Signature      string  `json:"signature"`
}

type recoveryRow struct {
	Kernel            string  `json:"kernel"`
	Jobs              int     `json:"jobs"`
	JournalRecords    int     `json:"journal_records"`
	JournalBytes      int     `json:"journal_bytes"`
	JournalSegments   int     `json:"journal_segments"`
	Crashes           int     `json:"crashes"`
	Recoveries        int     `json:"recoveries"`
	RecordsReplayed   int     `json:"records_replayed"`
	RecoveryLatencyUs float64 `json:"recovery_latency_us"`
	Identical         bool    `json:"identical_to_crash_free"`
}

type ionCkptRow struct {
	Kernel     string  `json:"kernel"`
	Jobs       int     `json:"jobs"`
	Restarts   int     `json:"restarts"`
	MakespanMs float64 `json:"makespan_ms"`
	Identical  bool    `json:"identical"`
	Signature  string  `json:"signature"`
}

type benchReport struct {
	CPUs     int           `json:"host_cpus"`
	Workers  int           `json:"workers"`
	CkptCost []ckptCostRow `json:"checkpoint_cost"`
	Sweep    []sweepRow    `json:"completion_sweep"`
	Recovery []recoveryRow `json:"recovery_latency"`
	IONCkpt  []ionCkptRow  `json:"ion_checkpoint_restart"`
}

func main() {
	out := flag.String("out", "BENCH_resilience.json", "output path")
	quick := flag.Bool("quick", false, "small sizes for CI smoke")
	seed := flag.Uint64("seed", 1009, "service-node seed")
	flag.Parse()

	topo := bluegene.Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2}
	jobs := resilienceJobs(6)
	rates := []float64{0, 2e-3, 4e-3, 1e-2}
	if *quick {
		jobs = resilienceJobs(4)
		rates = []float64{0, 4e-3, 1e-2}
	}
	workers := replica.DefaultWorkers()
	rep := benchReport{CPUs: runtime.NumCPU(), Workers: workers}

	drain := func(kind bluegene.KernelKind, rate float64, interval, w int) *bluegene.DrainResult {
		var plan *bluegene.FaultPlan
		if rate > 0 {
			plan = &bluegene.FaultPlan{Seed: 0x6b1f, DDRUncorrectable: rate}
			if kind == bluegene.FWK {
				plan.FWKPanicEvery = 1
			}
		}
		res, err := bluegene.NewServiceNode(bluegene.ControlConfig{
			Topology: topo, Kind: kind, Seed: *seed, Workers: w,
			Faults: plan,
			Ckpt:   bluegene.CkptConfig{Enabled: true, Interval: interval},
		}).Drain(jobs)
		fail(err)
		return res
	}
	runTotal := func(res *bluegene.DrainResult) bluegene.Cycles {
		var sum bluegene.Cycles
		for _, jr := range res.Results {
			sum += jr.Run
		}
		return sum
	}

	kinds := []struct {
		kind bluegene.KernelKind
		name string
	}{
		{bluegene.CNK, "cnk"},
		{bluegene.FWK, "fwk"},
	}

	// Checkpoint cost: the fault-free drain pays for snapshotting with run
	// cycles; amortize over the checkpoints taken (one per exchange round
	// except the last, interval 1).
	ckpts := 0
	for _, j := range jobs {
		ckpts += j.Exchanges - 1
	}
	// No row records wall time, so whole rows are independent replicas:
	// fan the two checkpoint-cost measurements and every sweep cell, and
	// keep both slices in sweep order.
	rep.CkptCost = replica.Map(workers, len(kinds), func(ki int) ckptCostRow {
		k := kinds[ki]
		on := drain(k.kind, 0, 1, workers)
		off := drain(k.kind, 0, noCkptInterval, workers)
		over := runTotal(on) - runTotal(off)
		return ckptCostRow{
			Kernel:          k.name,
			Checkpoints:     ckpts,
			TotalOverheadMs: over.Seconds() * 1e3,
			PerCheckpointUs: over.Seconds() * 1e6 / float64(ckpts),
		}
	})

	intervals := []int{1, noCkptInterval}
	rep.Sweep = replica.Map(workers, len(kinds)*len(rates)*len(intervals), func(idx int) sweepRow {
		k := kinds[idx/(len(rates)*len(intervals))]
		rate := rates[idx/len(intervals)%len(rates)]
		interval := intervals[idx%len(intervals)]
		par := drain(k.kind, rate, interval, workers)
		serial := drain(k.kind, rate, interval, 1)
		completed := len(jobs) - par.Failures
		restartUs := 0.0
		if par.Restarts > 0 {
			var over bluegene.Cycles
			for _, jr := range par.Results {
				over += jr.RestartOverhead
			}
			restartUs = over.Seconds() * 1e6 / float64(par.Restarts)
		}
		return sweepRow{
			Kernel: k.name, FaultRate: rate, Ckpt: interval == 1,
			Jobs: len(jobs), Completed: completed,
			CompletionRate: float64(completed) / float64(len(jobs)),
			Restarts:       par.Restarts,
			RestartUs:      restartUs,
			WastedMs:       par.Wasted.Seconds() * 1e3,
			MakespanMs:     par.Sched.Makespan.Seconds() * 1e3,
			Identical:      par.Signature() == serial.Signature(),
			Signature:      fmt.Sprintf("%016x", par.Signature()),
		}
	})
	for _, s := range rep.Sweep {
		if !s.Identical {
			fmt.Fprintf(os.Stderr, "FATAL: %s rate=%g ckpt=%v parallel drain diverged from serial\n",
				s.Kernel, s.FaultRate, s.Ckpt)
			os.Exit(1)
		}
	}

	// Recovery latency vs journal size: drain growing queues under
	// injected service-node crashes (journal on) and report how long the
	// WAL replay + reconciliation takes as the journal grows. Each row's
	// crashed drain must land bit-identical to the crash-free drain of the
	// same queue — the crash-only exactness claim, gated like the
	// serial/parallel one above.
	jobCounts := []int{2, 4, 6}
	if *quick {
		jobCounts = []int{2, 4}
	}
	crashDrain := func(kind bluegene.KernelKind, n, w int, crashes bool) *bluegene.DrainResult {
		cfg := bluegene.ControlConfig{
			Topology: topo, Kind: kind, Seed: *seed, Workers: w,
			Faults: &bluegene.FaultPlan{Seed: 0x6b1f, DDRUncorrectable: 4e-3},
			Ckpt:   bluegene.CkptConfig{Enabled: true, Interval: 1},
		}
		if kind == bluegene.FWK {
			cfg.Faults.FWKPanicEvery = 1
		}
		if crashes {
			cfg.Journal = bluegene.JournalConfig{Enabled: true}
			cfg.Crashes = &bluegene.CrashPlan{Seed: 0xdeadbeef, Rate: 0.1}
		}
		res, err := bluegene.NewServiceNode(cfg).Drain(resilienceJobs(n))
		fail(err)
		return res
	}
	rep.Recovery = replica.Map(workers, len(kinds)*len(jobCounts), func(idx int) recoveryRow {
		k := kinds[idx/len(jobCounts)]
		n := jobCounts[idx%len(jobCounts)]
		crashed := crashDrain(k.kind, n, workers, true)
		clean := crashDrain(k.kind, n, workers, false)
		return recoveryRow{
			Kernel: k.name, Jobs: n,
			JournalRecords:    crashed.Journal.Records,
			JournalBytes:      crashed.Journal.Bytes,
			JournalSegments:   crashed.Journal.Segments,
			Crashes:           crashed.Crash.Crashes,
			Recoveries:        crashed.Crash.Recoveries,
			RecordsReplayed:   crashed.Crash.RecordsReplayed,
			RecoveryLatencyUs: crashed.Crash.RecoveryLatency.Seconds() * 1e6,
			Identical:         crashed.Signature() == clean.Signature(),
		}
	})
	for _, rr := range rep.Recovery {
		if !rr.Identical {
			fmt.Fprintf(os.Stderr, "FATAL: %s jobs=%d crashed drain diverged from crash-free\n",
				rr.Kernel, rr.Jobs)
			os.Exit(1)
		}
	}

	// Checkpoint-through-cache: rerun the faulty checkpointed drain with
	// the ION aggregation subsystem armed, so every job's file I/O now
	// flows through the shared uplink, ingress credits, coalescer and
	// write-back cache — and restarts resume from images sealed *through*
	// that cache. Restart determinism must be unchanged: the parallel
	// drain lands bit-identical to the serial one, gated like the rows
	// above.
	ionDrain := func(kind bluegene.KernelKind, w int) *bluegene.DrainResult {
		plan := &bluegene.FaultPlan{Seed: 0x6b1f, DDRUncorrectable: 4e-3}
		if kind == bluegene.FWK {
			plan.FWKPanicEvery = 1
		}
		res, err := bluegene.NewServiceNode(bluegene.ControlConfig{
			Topology: topo, Kind: kind, Seed: *seed, Workers: w,
			Faults: plan,
			Ckpt:   bluegene.CkptConfig{Enabled: true, Interval: 1},
			ION:    &bluegene.IONConfig{QueueDepth: 4, CacheBlocks: 16},
		}).Drain(jobs)
		fail(err)
		return res
	}
	rep.IONCkpt = replica.Map(workers, len(kinds), func(ki int) ionCkptRow {
		k := kinds[ki]
		par := ionDrain(k.kind, workers)
		serial := ionDrain(k.kind, 1)
		return ionCkptRow{
			Kernel: k.name, Jobs: len(jobs), Restarts: par.Restarts,
			MakespanMs: par.Sched.Makespan.Seconds() * 1e3,
			Identical:  par.Signature() == serial.Signature(),
			Signature:  fmt.Sprintf("%016x", par.Signature()),
		}
	})
	for _, ir := range rep.IONCkpt {
		if !ir.Identical {
			fmt.Fprintf(os.Stderr, "FATAL: %s drain through ION cache diverged from serial\n", ir.Kernel)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	blob = append(blob, '\n')
	fail(os.WriteFile(*out, blob, 0o644))
	fmt.Printf("wrote %s (%d cpus, %d workers)\n", *out, rep.CPUs, workers)
	for _, c := range rep.CkptCost {
		fmt.Printf("  %s checkpoint: %.1f us per snapshot (%d snapshots, +%.3f ms total)\n",
			c.Kernel, c.PerCheckpointUs, c.Checkpoints, c.TotalOverheadMs)
	}
	for _, s := range rep.Sweep {
		fmt.Printf("  %s rate=%5.0e ckpt=%-5v: %d/%d completed, %2d restarts, wasted %8.3f ms, makespan %8.3f ms\n",
			s.Kernel, s.FaultRate, s.Ckpt, s.Completed, s.Jobs, s.Restarts, s.WastedMs, s.MakespanMs)
	}
	for _, rr := range rep.Recovery {
		fmt.Printf("  %s jobs=%d: journal %5d B / %3d records, %d crashes, %d recoveries, replay latency %8.1f us, exact=%v\n",
			rr.Kernel, rr.Jobs, rr.JournalBytes, rr.JournalRecords, rr.Crashes, rr.Recoveries,
			rr.RecoveryLatencyUs, rr.Identical)
	}
	for _, ir := range rep.IONCkpt {
		fmt.Printf("  %s through ION cache: %d/%d jobs, %2d restarts, makespan %8.3f ms, exact=%v\n",
			ir.Kernel, ir.Jobs, ir.Jobs, ir.Restarts, ir.MakespanMs, ir.Identical)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
