// Command simbench measures the simulation engine's hot paths and
// writes a machine-readable report (BENCH_sim.json by default): event
// scheduling, dense same-window dispatch, and sparse far-timer dispatch,
// each on both the reference heap scheduler and the timer wheel, plus
// the trace-record path. scripts/bench.sh runs it as CI's non-gating
// benchmark smoke; the README's Performance section points here.
//
//	go run ./cmd/simbench                  # default benchtime
//	go run ./cmd/simbench -quick -out ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"bgcnk/internal/sim"
)

type row struct {
	Workload    string  `json:"workload"`
	Scheduler   string  `json:"scheduler"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	EventsPerS  float64 `json:"events_per_s"`
}

type report struct {
	CPUs    int                `json:"host_cpus"`
	Rows    []row              `json:"rows"`
	Speedup map[string]float64 `json:"wheel_speedup"` // workload -> heap ns / wheel ns
}

// The three workload shapes mirror internal/sim/bench_test.go so the
// JSON report and `go test -bench` measure the same thing.

func benchSchedule(kind sim.SchedulerKind, n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngineWith(sim.EngineConfig{Scheduler: kind})
		e.Trace().SetEnabled(false)
		rng := sim.NewRNG(1)
		nop := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(rng.Cycles(100_000), nop)
			if e.Pending() >= n {
				e.Run(e.Now() + 50_000)
			}
		}
	}
}

func benchStep(kind sim.SchedulerKind, spread sim.Cycles, live int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngineWith(sim.EngineConfig{Scheduler: kind})
		e.Trace().SetEnabled(false)
		rng := sim.NewRNG(2)
		var tick func()
		tick = func() { e.After(1+rng.Cycles(spread), tick) }
		for i := 0; i < live; i++ {
			e.After(1+rng.Cycles(spread), tick)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output path")
	quick := flag.Bool("quick", false, "short benchtime for CI smoke")
	flag.Parse()

	queue, live := 8192, 512
	if *quick {
		queue, live = 1024, 128
	}
	workloads := []struct {
		name string
		mk   func(sim.SchedulerKind) func(b *testing.B)
	}{
		{"schedule", func(k sim.SchedulerKind) func(b *testing.B) { return benchSchedule(k, queue) }},
		{"step_dense", func(k sim.SchedulerKind) func(b *testing.B) { return benchStep(k, 4, live) }},
		{"step_sparse", func(k sim.SchedulerKind) func(b *testing.B) { return benchStep(k, 1_000_000_000, live) }},
	}

	rep := report{CPUs: runtime.NumCPU(), Speedup: map[string]float64{}}
	heapNs := map[string]float64{}
	for _, w := range workloads {
		for _, kind := range []sim.SchedulerKind{sim.SchedHeap, sim.SchedWheel} {
			r := testing.Benchmark(w.mk(kind))
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			rr := row{
				Workload:    w.name,
				Scheduler:   kind.String(),
				NsPerOp:     nsPerOp,
				AllocsPerOp: float64(r.AllocsPerOp()),
				BytesPerOp:  float64(r.AllocedBytesPerOp()),
			}
			if nsPerOp > 0 {
				rr.EventsPerS = 1e9 / nsPerOp
			}
			rep.Rows = append(rep.Rows, rr)
			if kind == sim.SchedHeap {
				heapNs[w.name] = nsPerOp
			} else if nsPerOp > 0 {
				rep.Speedup[w.name] = heapNs[w.name] / nsPerOp
			}
			fmt.Printf("%-12s %-6s %10.1f ns/op %6.1f allocs/op %12.0f events/s\n",
				w.name, kind, rr.NsPerOp, rr.AllocsPerOp, rr.EventsPerS)
		}
	}
	{
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			tr := sim.NewTrace()
			for i := 0; i < b.N; i++ {
				tr.Record(sim.Cycles(i), "core0", "tracepoint")
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		rr := row{Workload: "trace_record", Scheduler: "-", NsPerOp: nsPerOp,
			AllocsPerOp: float64(r.AllocsPerOp()), BytesPerOp: float64(r.AllocedBytesPerOp())}
		if nsPerOp > 0 {
			rr.EventsPerS = 1e9 / nsPerOp
		}
		rep.Rows = append(rep.Rows, rr)
		fmt.Printf("%-12s %-6s %10.1f ns/op %6.1f allocs/op %12.0f records/s\n",
			rr.Workload, rr.Scheduler, rr.NsPerOp, rr.AllocsPerOp, rr.EventsPerS)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
