// Command tracebench measures the observability layer's trace volume
// and writes a machine-readable benchmark report (BENCH_obs.json by
// default): for each kernel and node count, the span count (total and
// by hot category), UPC time-series sample count, and the sizes of the
// Chrome trace-event JSON and compact binary exports. Every cell is run
// twice; the tool exits nonzero if any rerun's JSON export is not
// byte-identical — the trace is part of the repo's determinism
// contract.
//
//	go run ./cmd/tracebench                 # full sweep
//	go run ./cmd/tracebench -quick -out ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgcnk/internal/experiments"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim/replica"
)

type obsRow struct {
	Kernel       string  `json:"kernel"`
	Nodes        int     `json:"nodes"`
	Spans        int     `json:"spans"`
	SpansPerNode float64 `json:"spans_per_node"`
	SchedSpans   int     `json:"sched_spans"`
	SyscallSpans int     `json:"syscall_spans"`
	Samples      int     `json:"upc_samples"`
	JSONBytes    int     `json:"json_bytes"`
	BinBytes     int     `json:"bin_bytes"`
	Identical    bool    `json:"identical_rerun"`
}

type obsReport struct {
	CPUs    int      `json:"host_cpus"`
	Workers int      `json:"workers"`
	Rows    []obsRow `json:"trace_sweep"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output path")
	quick := flag.Bool("quick", false, "small sweep for CI smoke")
	flag.Parse()

	counts := []int{1, 2, 4, 8}
	if *quick {
		counts = []int{1, 4}
	}
	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "cnk"},
		{machine.KindFWK, "fwk"},
	}
	workers := replica.DefaultWorkers()
	rep := obsReport{CPUs: runtime.NumCPU(), Workers: workers}

	// Each (kernel, nodes) cell builds its own machine, so the whole
	// sweep fans across the worker pool; rows land in sweep order.
	rep.Rows = replica.Map(workers, len(kinds)*len(counts), func(idx int) obsRow {
		k := kinds[idx/len(counts)]
		nodes := counts[idx%len(counts)]
		m, err := experiments.MeasureTraceScale(k.kind, nodes)
		fail(err)
		return obsRow{
			Kernel: k.name, Nodes: nodes,
			Spans: m.Spans, SpansPerNode: m.SpansPerNode,
			SchedSpans: m.SchedSpans, SyscallSpans: m.SyscallSpans,
			Samples: m.Samples, JSONBytes: m.JSONBytes, BinBytes: m.BinBytes,
			Identical: m.Identical,
		}
	})
	for _, r := range rep.Rows {
		if !r.Identical {
			fmt.Fprintf(os.Stderr, "FATAL: %s %d-node rerun trace diverged — determinism broken\n", r.Kernel, r.Nodes)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	blob = append(blob, '\n')
	fail(os.WriteFile(*out, blob, 0o644))
	fmt.Printf("wrote %s (%d cpus, %d workers)\n", *out, rep.CPUs, workers)
	for _, r := range rep.Rows {
		fmt.Printf("  %s %2d nodes: %6d spans (%6.1f/node; sched %5d, syscall %4d), %4d samples, json %7d B, bin %6d B, exact=%v\n",
			r.Kernel, r.Nodes, r.Spans, r.SpansPerNode, r.SchedSpans, r.SyscallSpans,
			r.Samples, r.JSONBytes, r.BinBytes, r.Identical)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
