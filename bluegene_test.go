package bluegene

import (
	"testing"
)

func TestFacadeMachineRuns(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 2, Kernel: CNK})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	sum := 0.0
	err = m.Run(func(ctx Context, env *Env) {
		v, _ := env.MPI.Allreduce(ctx, 1)
		if env.Rank == 0 {
			sum = v
		}
	}, JobParams{}, 0)
	if err != nil || sum != 2 {
		t.Fatalf("err=%v sum=%v", err, sum)
	}
}

func TestFacadeFWK(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 1, Kernel: FWK, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	ran := false
	err = m.Run(func(ctx Context, env *Env) {
		ctx.Compute(1_000_000)
		ran = true
	}, JobParams{}, 0)
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 11 {
		t.Fatalf("experiments: %v", ids)
	}
	if _, err := Experiment("no-such", true); err == nil {
		t.Fatal("unknown experiment must error")
	}
	r, err := Experiment("boot", true)
	if err != nil || !r.Pass {
		t.Fatalf("boot experiment: %v pass=%v", err, r != nil && r.Pass)
	}
}
