package bluegene

import (
	"testing"
)

func TestFacadeMachineRuns(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 2, Kernel: CNK})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	sum := 0.0
	err = m.Run(func(ctx Context, env *Env) {
		v, _ := env.MPI.Allreduce(ctx, 1)
		if env.Rank == 0 {
			sum = v
		}
	}, JobParams{}, 0)
	if err != nil || sum != 2 {
		t.Fatalf("err=%v sum=%v", err, sum)
	}
}

func TestFacadeFWK(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 1, Kernel: FWK, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	ran := false
	err = m.Run(func(ctx Context, env *Env) {
		ctx.Compute(1_000_000)
		ran = true
	}, JobParams{}, 0)
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestFacadeControlSystem(t *testing.T) {
	cfg := ControlConfig{
		Topology: Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     CNK,
		Seed:     5,
		Workers:  2,
	}
	jobs := GenerateControlJobs(cfg.Seed, 4, cfg.Topology.Midplanes())
	d, err := NewServiceNode(cfg).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failures != 0 || len(d.Results) != 4 {
		t.Fatalf("failures=%d results=%d", d.Failures, len(d.Results))
	}
	cnk := SimulateBoot(BootConfig{Kind: CNK, Nodes: 512, NodesPerMidplane: 32})
	fwk := SimulateBoot(BootConfig{Kind: FWK, Nodes: 512, NodesPerMidplane: 32})
	if fwk.Total <= cnk.Total {
		t.Fatalf("FWK boot %v not slower than CNK %v", fwk.Total, cnk.Total)
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("experiments: %v", ids)
	}
	if _, err := Experiment("no-such", true); err == nil {
		t.Fatal("unknown experiment must error")
	}
	r, err := Experiment("boot", true)
	if err != nil || !r.Pass {
		t.Fatalf("boot experiment: %v pass=%v", err, r != nil && r.Pass)
	}
}
