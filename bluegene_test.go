package bluegene

import (
	"errors"
	"testing"
)

func TestFacadeMachineRuns(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 2, Kernel: CNK})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	sum := 0.0
	err = m.Run(func(ctx Context, env *Env) {
		v, _ := env.MPI.Allreduce(ctx, 1)
		if env.Rank == 0 {
			sum = v
		}
	}, JobParams{}, 0)
	if err != nil || sum != 2 {
		t.Fatalf("err=%v sum=%v", err, sum)
	}
}

func TestFacadeFWK(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 1, Kernel: FWK, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	ran := false
	err = m.Run(func(ctx Context, env *Env) {
		ctx.Compute(1_000_000)
		ran = true
	}, JobParams{}, 0)
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestFacadeControlSystem(t *testing.T) {
	cfg := ControlConfig{
		Topology: Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     CNK,
		Seed:     5,
		Workers:  2,
	}
	jobs := GenerateControlJobs(cfg.Seed, 4, cfg.Topology.Midplanes())
	d, err := NewServiceNode(cfg).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failures != 0 || len(d.Results) != 4 {
		t.Fatalf("failures=%d results=%d", d.Failures, len(d.Results))
	}
	cnk := SimulateBoot(BootConfig{Kind: CNK, Nodes: 512, NodesPerMidplane: 32})
	fwk := SimulateBoot(BootConfig{Kind: FWK, Nodes: 512, NodesPerMidplane: 32})
	if fwk.Total <= cnk.Total {
		t.Fatalf("FWK boot %v not slower than CNK %v", fwk.Total, cnk.Total)
	}
}

func TestFacadeResilience(t *testing.T) {
	cfg := ControlConfig{
		Topology: Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     CNK,
		Seed:     42,
		Workers:  2,
		Faults:   &FaultPlan{Seed: 0xdead, DDRUncorrectable: 5e-2},
		Ckpt:     CkptConfig{Enabled: true, Interval: 1},
	}
	jobs := []ControlJob{
		{ID: 0, Name: "res0", Midplanes: 1, Work: 20_000, Exchanges: 6, IOBytes: 0},
	}
	d, err := NewServiceNode(cfg).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// At a kill-everything rate the job dies before its first checkpoint
	// on every incarnation, so the typed budget error must surface.
	if len(d.Errs) == 0 || !errors.Is(d.Errs[0], ErrRestartBudgetExhausted) {
		t.Fatalf("drain errors %v do not surface ErrRestartBudgetExhausted", d.Errs)
	}
	if len(d.Results[0].Attempts) == 0 || d.Restarts == 0 {
		t.Fatalf("no restart history recorded: %+v", d.Results[0])
	}

	var zero CounterSnapshot
	if WorkSignature(d.Merged) == WorkSignature(zero) {
		t.Fatal("drained work signature indistinguishable from an idle machine")
	}
	img := &CheckpointImage{JobID: 1, Epoch: 2}
	got, err := UnmarshalCheckpoint(img.Marshal())
	if err != nil || got.JobID != 1 || got.Epoch != 2 {
		t.Fatalf("checkpoint round trip: %+v err=%v", got, err)
	}
	if _, err := UnmarshalCheckpoint([]byte("junk")); err == nil {
		t.Fatal("junk accepted as a checkpoint image")
	}
}

func TestFacadeCrashRecovery(t *testing.T) {
	cfg := ControlConfig{
		Topology: Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     CNK,
		Seed:     42,
		Workers:  2,
		Faults:   &FaultPlan{Seed: 0xd00d, DDRUncorrectable: 4e-3, DDRCorrectable: 0.05},
		Ckpt:     CkptConfig{Enabled: true, Interval: 1},
		Journal:  JournalConfig{Enabled: true},
		Crashes:  &CrashPlan{Seed: 0xbad0, Rate: 0.25, MaxCrashes: 2},
	}
	jobs := []ControlJob{
		{ID: 0, Name: "crash0", Midplanes: 1, Work: 20_000, Exchanges: 6, IOBytes: 256},
		{ID: 1, Name: "crash1", Midplanes: 2, Work: 30_000, Exchanges: 5, IOBytes: 0},
	}
	crashed, err := NewServiceNode(cfg).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	clean := cfg
	clean.Journal, clean.Crashes = JournalConfig{}, nil
	base, err := NewServiceNode(clean).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Signature() != base.Signature() {
		t.Fatalf("crashed drain signature %016x, crash-free %016x", crashed.Signature(), base.Signature())
	}
	if crashed.Crash.Crashes == 0 || crashed.Crash.Recoveries == 0 {
		t.Fatalf("no crash/recovery exercised: %+v — retune the plan", crashed.Crash)
	}

	// A successor node recovers the dead node's store and re-drains
	// purely from journal replay.
	s := NewServiceNode(cfg)
	if _, err := s.Drain(jobs); err != nil {
		t.Fatal(err)
	}
	s2, rep, err := RecoverServiceNode(cfg, s.Store(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(jobs) {
		t.Fatalf("recovery report %+v, want %d completed", rep, len(jobs))
	}
	redrain, err := s2.Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if redrain.Signature() != base.Signature() {
		t.Fatalf("recovered re-drain signature %016x, crash-free %016x", redrain.Signature(), base.Signature())
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Fatalf("experiments: %v", ids)
	}
	if _, err := Experiment("no-such", true); err == nil {
		t.Fatal("unknown experiment must error")
	}
	r, err := Experiment("boot", true)
	if err != nil || !r.Pass {
		t.Fatalf("boot experiment: %v pass=%v", err, r != nil && r.Pass)
	}
}
