// Quickstart: boot a two-node Blue Gene/P machine under CNK, run a small
// threaded MPI application that computes, synchronizes, and writes its
// result through the function-shipped I/O path to the I/O node.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bgcnk"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/nptl"
)

// Run executes the example, writing its report to w. quick is accepted
// for symmetry with the other examples (this one is already small).
func Run(quick bool, w io.Writer) error {
	m, err := bluegene.NewMachine(bluegene.MachineConfig{
		Nodes: 2, Kernel: bluegene.CNK, MaxThreadsPerCore: 1,
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	fmt.Fprintln(w, "booted 2 nodes under CNK")

	var appErr error
	err = m.Run(func(ctx bluegene.Context, env *bluegene.Env) {
		// glibc/NPTL startup: uname check, set_tid_address, malloc.
		lib, err := nptl.Init(ctx)
		if err != nil {
			appErr = err
			return
		}

		// Compute on all four cores with pthreads.
		mu, _ := lib.NewMutex(ctx)
		sumVA, _ := lib.Malloc(ctx, 8)
		ctx.StoreU32(sumVA, 0)
		work := func(c kernel.Context) {
			c.Compute(500_000) // ~0.6ms of FLOPs
			mu.Lock(c)
			v, _ := c.LoadU32(sumVA)
			c.StoreU32(sumVA, v+1)
			mu.Unlock(c)
		}
		var pts []*nptl.PThread
		for i := 0; i < 3; i++ {
			pt, errno := lib.PthreadCreate(ctx, work)
			if errno != kernel.OK {
				appErr = fmt.Errorf("pthread_create: %v", errno)
				return
			}
			pts = append(pts, pt)
		}
		work(ctx)
		for _, pt := range pts {
			lib.PthreadJoin(ctx, pt)
		}
		done, _ := ctx.LoadU32(sumVA)

		// Reduce across nodes on the collective network.
		total, _ := env.MPI.Allreduce(ctx, float64(done))

		// Rank 0 reports through the function-shipped I/O path: the
		// write executes on the I/O node's filesystem via its ioproxy.
		if env.Rank == 0 {
			pathVA, _ := lib.Malloc(ctx, 256)
			ctx.Store(pathVA, append([]byte("/gpfs/result.txt"), 0))
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(pathVA), kernel.OCreat|kernel.OWronly, 0644)
			if errno != kernel.OK {
				appErr = fmt.Errorf("open: %v", errno)
				return
			}
			msg := fmt.Sprintf("threads finished across the machine: %.0f\n", total)
			bufVA, _ := lib.Malloc(ctx, 256)
			ctx.Store(bufVA, []byte(msg))
			ctx.Syscall(kernel.SysWrite, fd, uint64(bufVA), uint64(len(msg)))
			ctx.Syscall(kernel.SysClose, fd)
			fmt.Fprintf(w, "rank 0 at cycle %d: wrote %q\n", ctx.Now(), msg[:len(msg)-1])
		}
	}, bluegene.JobParams{}, 0)
	if err != nil {
		return err
	}
	if appErr != nil {
		return appErr
	}

	data, errno := m.IONFS[0].ReadFile("/gpfs/result.txt", fs.Root)
	if errno != kernel.OK {
		return fmt.Errorf("ION fs: %v", errno)
	}
	fmt.Fprintf(w, "I/O node filesystem now holds: %s", data)
	fmt.Fprintf(w, "CIOD served %d function-shipped calls for %d proxies\n",
		m.Servers[0].Calls, m.Servers[0].Proxies)
	return nil
}

func main() {
	if err := Run(false, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
