package main

import (
	"strings"
	"testing"
)

// TestRunSmoke runs the example end to end in quick mode and checks it
// produces a report without erroring.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := Run(true, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("example produced no output")
	}
	t.Log("\n" + buf.String())
}
