// FWQ reproduces the paper's Figures 5-7 interactively: the Fixed Work
// Quanta benchmark (DAXPY quanta on a thread per core) on the Linux-like
// FWK and on CNK, with per-core statistics and an ASCII rendering of the
// sample series.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bgcnk"
	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/noise"
	"bgcnk/internal/nptl"
	"bgcnk/internal/sim"
)

func runFWQ(kind bluegene.KernelKind, samples int) ([][]sim.Cycles, error) {
	m, err := bluegene.NewMachine(bluegene.MachineConfig{Nodes: 1, Kernel: kind, Seed: 1})
	if err != nil {
		return nil, err
	}
	defer m.Shutdown()
	perCore := make([][]sim.Cycles, hw.CoresPerChip)
	cfg := apps.DefaultFWQ()
	cfg.Samples = samples
	err = m.Run(func(ctx bluegene.Context, env *bluegene.Env) {
		lib, _ := nptl.Init(ctx)
		base := m.HeapBase(ctx) + hw.VAddr(1<<20)
		body := func(c kernel.Context) {
			perCore[c.CoreID()] = apps.FWQ(c, base+hw.VAddr(c.CoreID())*hw.VAddr(512<<10), cfg)
		}
		var pts []*nptl.PThread
		for i := 0; i < hw.CoresPerChip-1; i++ {
			pt, _ := lib.PthreadCreate(ctx, body)
			pts = append(pts, pt)
		}
		body(ctx)
		for _, pt := range pts {
			lib.PthreadJoin(ctx, pt)
		}
	}, bluegene.JobParams{}, 0)
	if err != nil {
		return nil, err
	}
	return perCore, nil
}

// sparkline renders the sample series the way Figs 5-7 plot them.
func sparkline(samples []sim.Cycles, width int) string {
	st := noise.Analyze(samples)
	if st.Max == st.Min {
		out := make([]byte, width)
		for i := range out {
			out[i] = '_'
		}
		return string(out)
	}
	glyphs := []byte("_.:-=+*#%@")
	out := make([]byte, width)
	per := len(samples) / width
	if per == 0 {
		per = 1
	}
	for i := 0; i < width; i++ {
		var worst sim.Cycles
		for j := i * per; j < (i+1)*per && j < len(samples); j++ {
			if samples[j] > worst {
				worst = samples[j]
			}
		}
		f := float64(worst-st.Min) / float64(st.Max-st.Min)
		out[i] = glyphs[int(f*float64(len(glyphs)-1))]
	}
	return string(out)
}

// Run executes the example, writing the per-core statistics and
// sparklines to w. quick shrinks the sample count for tests.
func Run(quick bool, w io.Writer) error {
	samples := 4000
	if quick {
		samples = 500
	}
	fmt.Fprintf(w, "FWQ: %d samples/core of ~%d-cycle quanta (paper Figs 5-7)\n\n",
		samples, uint64(apps.FWQExpectedMin))
	for _, kind := range []bluegene.KernelKind{bluegene.FWK, bluegene.CNK} {
		perCore, err := runFWQ(kind, samples)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %v ---\n", kind)
		for core, samples := range perCore {
			st := noise.Analyze(samples)
			fmt.Fprintf(w, "core %d: min=%d max=%d maxvar=%.4f%%\n  |%s|\n",
				core, uint64(st.Min), uint64(st.Max), st.MaxVariationPct,
				sparkline(samples, 64))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper: Linux varied >5% on cores 0, 2, 3; CNK stayed <0.006%.")
	return nil
}

func main() {
	if err := Run(false, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
