// FWQ reproduces the paper's Figures 5-7 interactively: the Fixed Work
// Quanta benchmark (DAXPY quanta on a thread per core) on the Linux-like
// FWK and on CNK, with per-core statistics and an ASCII rendering of the
// sample series.
package main

import (
	"fmt"
	"log"

	"bgcnk"
	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/noise"
	"bgcnk/internal/nptl"
	"bgcnk/internal/sim"
)

const samplesPerCore = 4000

func runFWQ(kind bluegene.KernelKind) [][]sim.Cycles {
	m, err := bluegene.NewMachine(bluegene.MachineConfig{Nodes: 1, Kernel: kind, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Shutdown()
	perCore := make([][]sim.Cycles, hw.CoresPerChip)
	cfg := apps.DefaultFWQ()
	cfg.Samples = samplesPerCore
	err = m.Run(func(ctx bluegene.Context, env *bluegene.Env) {
		lib, _ := nptl.Init(ctx)
		base := m.HeapBase(ctx) + hw.VAddr(1<<20)
		body := func(c kernel.Context) {
			perCore[c.CoreID()] = apps.FWQ(c, base+hw.VAddr(c.CoreID())*hw.VAddr(512<<10), cfg)
		}
		var pts []*nptl.PThread
		for i := 0; i < hw.CoresPerChip-1; i++ {
			pt, _ := lib.PthreadCreate(ctx, body)
			pts = append(pts, pt)
		}
		body(ctx)
		for _, pt := range pts {
			lib.PthreadJoin(ctx, pt)
		}
	}, bluegene.JobParams{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	return perCore
}

// sparkline renders the sample series the way Figs 5-7 plot them.
func sparkline(samples []sim.Cycles, width int) string {
	st := noise.Analyze(samples)
	if st.Max == st.Min {
		out := make([]byte, width)
		for i := range out {
			out[i] = '_'
		}
		return string(out)
	}
	glyphs := []byte("_.:-=+*#%@")
	out := make([]byte, width)
	per := len(samples) / width
	if per == 0 {
		per = 1
	}
	for i := 0; i < width; i++ {
		var worst sim.Cycles
		for j := i * per; j < (i+1)*per && j < len(samples); j++ {
			if samples[j] > worst {
				worst = samples[j]
			}
		}
		f := float64(worst-st.Min) / float64(st.Max-st.Min)
		out[i] = glyphs[int(f*float64(len(glyphs)-1))]
	}
	return string(out)
}

func main() {
	fmt.Printf("FWQ: %d samples/core of ~%d-cycle quanta (paper Figs 5-7)\n\n",
		samplesPerCore, uint64(apps.FWQExpectedMin))
	for _, kind := range []bluegene.KernelKind{bluegene.FWK, bluegene.CNK} {
		perCore := runFWQ(kind)
		fmt.Printf("--- %v ---\n", kind)
		for core, samples := range perCore {
			st := noise.Analyze(samples)
			fmt.Printf("core %d: min=%d max=%d maxvar=%.4f%%\n  |%s|\n",
				core, uint64(st.Min), uint64(st.Max), st.MaxVariationPct,
				sparkline(samples, 64))
		}
		fmt.Println()
	}
	fmt.Println("paper: Linux varied >5% on cores 0, 2, 3; CNK stayed <0.006%.")
}
