// Bringup demonstrates the paper's Section III methodology end to end:
// a borderline timing bug that fires only on a marginal chip under the
// right thermal conditions is localized by assembling destructive logic
// scans from cycle-reproducible reruns into a waveform and comparing it
// against a known-good reference.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bgcnk/internal/bringup"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
)

// workload is a deterministic two-chip job: compute, memory traffic and a
// cross-chip packet — the kind of test case used during chip bringup.
func workload(ctx kernel.Context, env *machine.Env) {
	base := env.M.HeapBase(ctx)
	for i := 0; i < 6; i++ {
		ctx.Compute(60_000)
		ctx.Touch(base+hw.VAddr(i*8192), 2048, true)
	}
	if env.Rank == 0 {
		env.Dev.Send(ctx, 1, 5, []byte("cross-chip transfer"))
	} else {
		env.Dev.Recv(ctx, 5)
	}
	ctx.Compute(300_000)
}

// Run executes the bringup walkthrough, writing its narrative to w.
// quick coarsens the waveform scan step so tests finish fast.
func Run(quick bool, w io.Writer) error {
	probe := bringup.Probe{Nodes: 2, Workload: workload}
	stop := sim.Cycles(1_200_000)

	// Step 1: prove the platform is cycle-reproducible (scans are
	// destructive, so every data point costs a full rerun — worthless
	// unless reruns are bit-identical).
	ok, snaps, err := probe.VerifyReproducible(stop, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3 reruns to cycle %d: identical=%v (trace hash %016x)\n", uint64(stop), ok, snaps[0].Trace)

	// Step 2: a marginal chip. The fault depends on manufacturing
	// variance AND ambient conditions, so some runs never see it.
	fault := &bringup.FaultSpec{
		Node: 1, ChipVariance: 0.97,
		WindowStart: 400_000, WindowLen: 400_000,
	}
	for seed := uint64(1); seed <= 64; seed++ {
		fault.RunSeed = seed
		if _, fires := fault.TriggerCycle(); fires {
			break
		}
	}
	trigger, fires := fault.TriggerCycle()
	fmt.Fprintf(w, "marginal path: fires=%v at cycle %d under these conditions\n", fires, uint64(trigger))
	for seed := uint64(1); seed <= 6; seed++ {
		f := *fault
		f.RunSeed = seed
		_, hits := f.TriggerCycle()
		fmt.Fprintf(w, "  conditions %d: bug manifests=%v\n", seed, hits)
	}

	// Step 3: waveforms. One fresh reproducible run per sample point.
	step := sim.Cycles(50_000)
	if quick {
		step = 200_000
	}
	ref, err := probe.CaptureWaveform(200_000, stop, step)
	if err != nil {
		return err
	}
	faulty := probe
	faulty.Fault = fault
	sus, err := faulty.CaptureWaveform(200_000, stop, step)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "captured %d scan points per waveform (each a full rerun + destructive scan)\n", len(ref.Snaps))

	// Step 4: localize.
	at, chip, found := bringup.FindDivergence(ref, sus)
	fmt.Fprintf(w, "divergence: found=%v at cycle %d on chip %d (fault fired at %d)\n",
		found, uint64(at), chip, uint64(trigger))
	if found && at >= trigger && at <= trigger+step {
		fmt.Fprintln(w, "=> localized to within one scan step of the actual flipped latch")
	}

	// Step 5: the economics that motivated all of this.
	fmt.Fprintln(w)
	fmt.Fprintln(w, bringup.DescribeVHDLBoot("CNK", 74_000))
	fmt.Fprintln(w, bringup.DescribeVHDLBoot("Linux (full)", 15_000_000))
	fmt.Fprintln(w, bringup.DescribeVHDLBoot("Linux (stripped)", 2_500_000))
	return nil
}

func main() {
	if err := Run(false, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
