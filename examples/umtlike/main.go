// Umtlike models the paper's UMT story (Section V-B): an application
// driven by an interpreted script that demand-loads physics packages
// through the dynamic linker (dlopen over function-shipped I/O with
// MAP_COPY), then runs OpenMP-style threaded sweeps — all on a
// lightweight kernel with a static memory map. It also demonstrates the
// documented consequence of CNK's design: library text is writable.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bgcnk"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/loader"
	"bgcnk/internal/nptl"
)

// physicsLib builds a BELF shared library with costed kernels.
func physicsLib(name string, needed ...string) *loader.Image {
	return &loader.Image{
		Name:   name,
		Text:   append([]byte("TEXT:"+name), make([]byte, 8192)...),
		Data:   make([]byte, 1024),
		BSS:    4096,
		Needed: needed,
		Symbols: []loader.Sym{
			{Name: name + ".init", Offset: 0, Cost: 5_000},
			{Name: name + ".sweep", Offset: 128, Cost: 400_000},
		},
	}
}

// Run executes the example, writing its report to w. quick is accepted
// for symmetry with the other examples (one node already).
func Run(quick bool, w io.Writer) error {
	m, err := bluegene.NewMachine(bluegene.MachineConfig{
		Nodes: 1, Kernel: bluegene.CNK, MaxThreadsPerCore: 1,
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()

	// Install the "python packages" on the I/O node's filesystem.
	libs := []*loader.Image{
		physicsLib("libtransport.so", "/lib/libmesh.so"),
		physicsLib("libmesh.so", "/lib/libmpiwrap.so"),
		physicsLib("libmpiwrap.so"),
		physicsLib("libopacity.so"),
	}
	for _, im := range libs {
		if errno := m.IONFS[0].WriteFile("/lib/"+im.Name, im.Marshal(), 0755, fs.Root); errno != kernel.OK {
			return fmt.Errorf("install %s: %v", im.Name, errno)
		}
	}

	var appErr error
	err = m.Run(func(ctx bluegene.Context, env *bluegene.Env) {
		lib, _ := nptl.Init(ctx)
		ld := loader.NewLinker()

		// The "script" demand-loads its packages: each dlopen pulls the
		// WHOLE library across the collective network at once (eager
		// load), so the OS noise is contained in startup.
		start := ctx.Now()
		for _, pkg := range []string{"/lib/libtransport.so", "/lib/libopacity.so"} {
			if _, err := ld.Dlopen(ctx, pkg); err != nil {
				appErr = err
				return
			}
		}
		fmt.Fprintf(w, "dlopen closure loaded %d libraries (%d bytes) in %.1fus\n",
			len(ld.Loaded()), ld.BytesRead, (ctx.Now() - start).Micros())

		// OpenMP-style phase: a sweep on every core.
		var pts []*nptl.PThread
		sweep := func(c kernel.Context) {
			if err := ld.Call(c, "libtransport.so.sweep"); err != nil {
				appErr = err
				return
			}
			if err := ld.Call(c, "libopacity.so.sweep"); err != nil {
				appErr = err
				return
			}
		}
		for i := 0; i < 3; i++ {
			pt, errno := lib.PthreadCreate(ctx, sweep)
			if errno != kernel.OK {
				appErr = fmt.Errorf("pthread_create: %v", errno)
				return
			}
			pts = append(pts, pt)
		}
		sweep(ctx)
		for _, pt := range pts {
			lib.PthreadJoin(ctx, pt)
		}
		fmt.Fprintf(w, "threaded sweeps finished at cycle %d\n", ctx.Now())

		// The lightweight-philosophy consequence (paper IV-B2): nothing
		// stops the application from scribbling on library text.
		ll, _ := ld.Dlopen(ctx, "/lib/libopacity.so")
		va, _ := ll.SymAddr("libopacity.so.init")
		if errno := ctx.Store(va, []byte{0xDE, 0xAD}); errno == kernel.OK {
			fmt.Fprintln(w, "note: wrote over library text without a fault — CNK does not honour page permissions on dynamic libraries")
		}
	}, bluegene.JobParams{}, 0)
	if err != nil {
		return err
	}
	return appErr
}

func main() {
	if err := Run(false, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
