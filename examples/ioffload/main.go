// Ioffload demonstrates the function-shipped I/O architecture of paper
// Section IV-A: eight compute nodes in VN mode (32 processes) all perform
// POSIX file I/O, yet the filesystem sees exactly ONE client — the I/O
// node — with one ioproxy per process mirroring its state (seek offsets,
// cwd, credentials).
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bgcnk"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
)

// Run executes the example, writing its report to w. quick shrinks the
// machine to 4 nodes.
func Run(quick bool, w io.Writer) error {
	nodes := 8
	if quick {
		nodes = 4
	}
	m, err := bluegene.NewMachine(bluegene.MachineConfig{Nodes: nodes, Kernel: bluegene.CNK})
	if err != nil {
		return err
	}
	defer m.Shutdown()

	var appErr error
	params := bluegene.JobParams{ProcsPerNode: 4} // VN mode
	err = m.Run(func(ctx bluegene.Context, env *bluegene.Env) {
		base := m.HeapBase(ctx)
		// Each process chdirs into its own directory (proxy-side state),
		// then writes a per-process file with relative paths.
		dir := fmt.Sprintf("/gpfs/node%02d-pid%03d", env.Node, ctx.PID())
		pathVA := base
		ctx.Store(pathVA, append([]byte(dir), 0))
		if _, errno := ctx.Syscall(kernel.SysMkdir, uint64(pathVA), 0755); errno != kernel.OK {
			appErr = fmt.Errorf("mkdir: %v", errno)
			return
		}
		if _, errno := ctx.Syscall(kernel.SysChdir, uint64(pathVA)); errno != kernel.OK {
			appErr = fmt.Errorf("chdir: %v", errno)
			return
		}
		relVA := base + 2048
		ctx.Store(relVA, append([]byte("trace.out"), 0))
		fd, errno := ctx.Syscall(kernel.SysOpen, uint64(relVA), kernel.OCreat|kernel.ORdwr, 0644)
		if errno != kernel.OK {
			appErr = fmt.Errorf("open: %v", errno)
			return
		}
		// Chunked writes exercise the proxy's seek-offset mirroring.
		bufVA := base + 4096
		for chunk := 0; chunk < 4; chunk++ {
			line := fmt.Sprintf("node %d pid %d chunk %d\n", env.Node, ctx.PID(), chunk)
			ctx.Store(bufVA, []byte(line))
			if n, errno := ctx.Syscall(kernel.SysWrite, fd, uint64(bufVA), uint64(len(line))); errno != kernel.OK || n != uint64(len(line)) {
				appErr = fmt.Errorf("write: %v %d", errno, n)
				return
			}
		}
		ctx.Syscall(kernel.SysClose, fd)
	}, params, 0)
	if err != nil {
		return err
	}
	if appErr != nil {
		return appErr
	}

	srv := m.Servers[0]
	fmt.Fprintf(w, "%d compute processes performed POSIX I/O\n", nodes*4)
	fmt.Fprintf(w, "filesystem clients the storage system saw: 1 (the I/O node)\n")
	fmt.Fprintf(w, "CIOD: %d ioproxies created, %d live after job exit, %d calls served\n",
		srv.Proxies, srv.LiveProxies(), srv.Calls)

	names, _ := m.IONFS[0].Readdir("/", "/gpfs", fs.Root)
	fmt.Fprintf(w, "directories on the I/O node filesystem: %d\n", len(names))
	data, errno := m.IONFS[0].ReadFile("/"+"gpfs/node00-pid001/trace.out", fs.Root)
	if errno == kernel.OK {
		fmt.Fprintf(w, "sample file contents:\n%s", data)
	}
	fmt.Fprintln(w, "paper: function shipping gives \"up to two orders of magnitude reduction in filesystem clients\"")
	return nil
}

func main() {
	if err := Run(false, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
