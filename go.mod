module bgcnk

go 1.24
