// Package bringup implements the chip-design and bringup methodology of
// paper Section III: cycle-reproducible runs, destructive logic scans
// assembled into waveforms across reruns, multichip reboots coordinated
// over the global barrier network, marginal-timing fault injection and
// divergence-cycle localization, and the boot-time-under-a-10Hz-VHDL
// model that made CNK usable during chip design while "Linux takes weeks
// to boot".
package bringup

import (
	"fmt"
	"math"

	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
)

// FaultSpec injects a borderline timing bug (paper Section III's war
// story): its manifestation depends on manufacturing variability (chip
// seed) and on local temperature/electrical noise during execution (run
// seed), so it does not occur on every chip nor on every run.
type FaultSpec struct {
	Node         int
	ChipVariance float64 // manufacturing margin, 0..1 (higher = more marginal)
	RunSeed      uint64  // electrical/thermal conditions of this run
	WindowStart  sim.Cycles
	WindowLen    sim.Cycles
}

// wouldTrigger evaluates the marginal path at cycle c: variance times the
// thermal excursion must cross the timing margin.
// faultGranule is the evaluation granularity of the marginal path (the
// pipeline event that exercises it recurs on this period).
const faultGranule = sim.Cycles(16384)

func (f *FaultSpec) wouldTrigger(c sim.Cycles) bool {
	if c < f.WindowStart || c >= f.WindowStart+f.WindowLen {
		return false
	}
	rng := sim.NewRNG(f.RunSeed*0x9e3779b97f4a7c15 ^ uint64(c/faultGranule))
	temp := 0.5 + 0.2*math.Sin(float64(c)/3.0e5) + 0.12*rng.NormFloat64()
	return f.ChipVariance*temp > 0.88
}

// TriggerCycle returns the first cycle in the window where the fault
// fires, if any.
func (f *FaultSpec) TriggerCycle() (sim.Cycles, bool) {
	for c := f.WindowStart; c < f.WindowStart+f.WindowLen; c += faultGranule {
		if f.wouldTrigger(c) {
			return c, true
		}
	}
	return 0, false
}

// Probe is a reproducible experiment: a machine configuration plus a
// deterministic workload, optionally with an injected marginal fault.
type Probe struct {
	Nodes    int
	Workload machine.App
	Fault    *FaultSpec
}

// Snapshot is what one destructive scan captures.
type Snapshot struct {
	Cycle  sim.Cycles
	Hashes []uint64 // per-chip state hash
	Trace  uint64   // engine trace hash
}

// RunTo builds a fresh reproducible machine, runs the workload until the
// stop cycle, and takes the destructive scans. The machine cannot be used
// afterwards — exactly the constraint that forces the
// run/scan/reset/re-run methodology.
func (p Probe) RunTo(stop sim.Cycles) (Snapshot, error) {
	m, err := machine.New(machine.Config{
		Nodes: p.Nodes, Kind: machine.KindCNK, Reproducible: true,
	})
	if err != nil {
		return Snapshot{}, err
	}
	defer m.Shutdown()
	if p.Fault != nil {
		p.installFault(m)
	}
	if err := m.Launch(p.Workload, kernel.JobParams{}); err != nil {
		return Snapshot{}, err
	}
	m.Eng.Run(stop)
	snap := Snapshot{Cycle: stop, Trace: m.Eng.Trace().Hash()}
	for _, chip := range m.Chips {
		snap.Hashes = append(snap.Hashes, chip.Scan())
	}
	return snap, nil
}

// installFault schedules the marginal-path evaluation: when it fires, it
// corrupts one byte of the victim chip's Boot SRAM (a state bit the scans
// can see), modelling the flipped latch.
func (p Probe) installFault(m *machine.Machine) {
	f := p.Fault
	chip := m.Chips[f.Node]
	for c := f.WindowStart; c < f.WindowStart+f.WindowLen; c += faultGranule {
		c := c
		if f.wouldTrigger(c) {
			m.Eng.At(c, func() {
				chip.BootSRAM[17] ^= 0x40
				m.Eng.Trace().Record(c, "fault", "marginal path flipped a latch")
			})
			return // first trigger only
		}
	}
}

// VerifyReproducible runs the probe to the stop cycle `times` times and
// reports whether every snapshot is identical — the Section III property
// that makes logic scans composable into waveforms.
func (p Probe) VerifyReproducible(stop sim.Cycles, times int) (bool, []Snapshot, error) {
	var snaps []Snapshot
	for i := 0; i < times; i++ {
		s, err := p.RunTo(stop)
		if err != nil {
			return false, nil, err
		}
		snaps = append(snaps, s)
	}
	for _, s := range snaps[1:] {
		if s.Trace != snaps[0].Trace {
			return false, snaps, nil
		}
		for i := range s.Hashes {
			if s.Hashes[i] != snaps[0].Hashes[i] {
				return false, snaps, nil
			}
		}
	}
	return true, snaps, nil
}

// Waveform is the logic-analyzer view assembled from successive scans,
// "each scan taken one cycle later than on the previous run".
type Waveform struct {
	Step  sim.Cycles
	Snaps []Snapshot
}

// CaptureWaveform runs the probe once per sample point — a fresh,
// reproducible machine each time, since every scan destroys the chip
// state — and assembles the per-cycle view.
func (p Probe) CaptureWaveform(from, to, step sim.Cycles) (*Waveform, error) {
	w := &Waveform{Step: step}
	for c := from; c <= to; c += step {
		s, err := p.RunTo(c)
		if err != nil {
			return nil, err
		}
		w.Snaps = append(w.Snaps, s)
	}
	return w, nil
}

// FindDivergence compares a reference waveform against a suspect one and
// returns the first sampled cycle at which any chip's state differs —
// how the paper's timing bug was localized.
func FindDivergence(ref, sus *Waveform) (sim.Cycles, int, bool) {
	n := len(ref.Snaps)
	if len(sus.Snaps) < n {
		n = len(sus.Snaps)
	}
	for i := 0; i < n; i++ {
		for chipIdx := range ref.Snaps[i].Hashes {
			if chipIdx < len(sus.Snaps[i].Hashes) &&
				ref.Snaps[i].Hashes[chipIdx] != sus.Snaps[i].Hashes[chipIdx] {
				return ref.Snaps[i].Cycle, chipIdx, true
			}
		}
	}
	return 0, -1, false
}

// VHDLHz is the cycle-accurate simulator's speed during chip design.
const VHDLHz = 10.0

// VHDLBootTime converts a kernel's boot instruction count to wall time
// under the VHDL simulator.
func VHDLBootTime(bootInstr uint64) (hours float64) {
	return float64(bootInstr) / VHDLHz / 3600.0
}

// DescribeVHDLBoot renders the comparison line.
func DescribeVHDLBoot(name string, bootInstr uint64) string {
	h := VHDLBootTime(bootInstr)
	switch {
	case h < 24:
		return fmt.Sprintf("%s: %d instructions -> %.1f hours under a 10 Hz VHDL simulator", name, bootInstr, h)
	case h < 24*14:
		return fmt.Sprintf("%s: %d instructions -> %.1f days under a 10 Hz VHDL simulator", name, bootInstr, h/24)
	default:
		return fmt.Sprintf("%s: %d instructions -> %.1f weeks under a 10 Hz VHDL simulator", name, bootInstr, h/24/7)
	}
}
