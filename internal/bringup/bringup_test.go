package bringup

import (
	"testing"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
)

func testWorkload(ctx kernel.Context, env *machine.Env) {
	base := env.M.HeapBase(ctx)
	for i := 0; i < 4; i++ {
		ctx.Compute(40_000)
		ctx.Touch(base+hw.VAddr(i*4096), 512, true)
	}
	if env.Size > 1 {
		if env.Rank == 0 {
			env.Dev.Send(ctx, 1, 3, []byte("x"))
		} else {
			env.Dev.Recv(ctx, 3)
		}
	}
	ctx.Compute(400_000)
}

func TestRunToScansAreDestructiveButConsistent(t *testing.T) {
	p := Probe{Nodes: 2, Workload: testWorkload}
	a, err := p.RunTo(500_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunTo(500_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatal("trace hashes differ across identical runs")
	}
	for i := range a.Hashes {
		if a.Hashes[i] != b.Hashes[i] {
			t.Fatalf("chip %d scans differ", i)
		}
	}
}

func TestVerifyReproducible(t *testing.T) {
	p := Probe{Nodes: 2, Workload: testWorkload}
	ok, snaps, err := p.VerifyReproducible(400_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(snaps) != 3 {
		t.Fatalf("ok=%v snaps=%d", ok, len(snaps))
	}
}

func TestScansAtDifferentCyclesDiffer(t *testing.T) {
	p := Probe{Nodes: 1, Workload: testWorkload}
	early, err := p.RunTo(100_000)
	if err != nil {
		t.Fatal(err)
	}
	late, err := p.RunTo(600_000)
	if err != nil {
		t.Fatal(err)
	}
	if early.Hashes[0] == late.Hashes[0] {
		t.Fatal("chip state did not evolve between scan points")
	}
}

func TestFaultDeterministicPerSeed(t *testing.T) {
	f := FaultSpec{Node: 0, ChipVariance: 0.97, RunSeed: 3, WindowStart: 100_000, WindowLen: 500_000}
	c1, fires1 := f.TriggerCycle()
	c2, fires2 := f.TriggerCycle()
	if fires1 != fires2 || c1 != c2 {
		t.Fatal("fault evaluation must be deterministic")
	}
}

func TestFaultConditionDependent(t *testing.T) {
	// Across many ambient-condition seeds the bug must both appear and
	// not appear (paper: "did not occur ... on every run").
	fired, missed := false, false
	for seed := uint64(1); seed <= 40; seed++ {
		f := FaultSpec{Node: 0, ChipVariance: 0.97, RunSeed: seed, WindowStart: 100_000, WindowLen: 400_000}
		if _, ok := f.TriggerCycle(); ok {
			fired = true
		} else {
			missed = true
		}
	}
	if !fired || !missed {
		t.Fatalf("fault not condition-dependent: fired=%v missed=%v", fired, missed)
	}
}

func TestFaultDependsOnManufacturingVariance(t *testing.T) {
	// A chip with comfortable margins never shows the bug.
	healthy := 0
	for seed := uint64(1); seed <= 40; seed++ {
		f := FaultSpec{Node: 0, ChipVariance: 0.5, RunSeed: seed, WindowStart: 100_000, WindowLen: 400_000}
		if _, ok := f.TriggerCycle(); ok {
			healthy++
		}
	}
	if healthy != 0 {
		t.Fatalf("healthy chip fired %d times", healthy)
	}
}

func TestWaveformLocalizesFault(t *testing.T) {
	probe := Probe{Nodes: 2, Workload: testWorkload}
	fault := &FaultSpec{Node: 1, ChipVariance: 0.97, WindowStart: 200_000, WindowLen: 300_000}
	for seed := uint64(1); seed <= 64; seed++ {
		fault.RunSeed = seed
		if _, ok := fault.TriggerCycle(); ok {
			break
		}
	}
	trigger, ok := fault.TriggerCycle()
	if !ok {
		t.Skip("no firing seed in range")
	}
	step := sim.Cycles(50_000)
	ref, err := probe.CaptureWaveform(100_000, 600_000, step)
	if err != nil {
		t.Fatal(err)
	}
	faulty := probe
	faulty.Fault = fault
	sus, err := faulty.CaptureWaveform(100_000, 600_000, step)
	if err != nil {
		t.Fatal(err)
	}
	at, chip, found := FindDivergence(ref, sus)
	if !found {
		t.Fatal("divergence not found")
	}
	if chip != 1 {
		t.Fatalf("diverged on chip %d, fault was on chip 1", chip)
	}
	if at < trigger || at > trigger+step {
		t.Fatalf("divergence at %d, trigger at %d (step %d)", uint64(at), uint64(trigger), uint64(step))
	}
}

func TestFindDivergenceCleanWaveforms(t *testing.T) {
	probe := Probe{Nodes: 1, Workload: testWorkload}
	a, err := probe.CaptureWaveform(100_000, 300_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := probe.CaptureWaveform(100_000, 300_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found := FindDivergence(a, b); found {
		t.Fatal("identical waveforms reported divergence")
	}
}

func TestVHDLBootDescriptions(t *testing.T) {
	if h := VHDLBootTime(74_000); h < 1 || h > 3 {
		t.Fatalf("CNK VHDL boot %.1fh, want ~2h", h)
	}
	for instr, want := range map[uint64]string{
		74_000:     "hours",
		2_500_000:  "days",
		15_000_000: "weeks",
	} {
		s := DescribeVHDLBoot("x", instr)
		if !contains(s, want) {
			t.Errorf("%d instr: %q should mention %s", instr, s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
