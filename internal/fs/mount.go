package fs

import (
	"sort"
	"strings"

	"bgcnk/internal/kernel"
)

// MountTable composes several filesystems under one namespace, the way an
// I/O node mounts GPFS, NFS, PVFS or Lustre next to its root: "filesystems
// that are installed on the I/O nodes ... are available to CNK processes
// via the ioproxy" (paper Section IV-A). Longest-prefix match selects the
// filesystem; paths are rewritten relative to the mount point.
type MountTable struct {
	root   *FS
	mounts []mount // sorted by descending prefix length
}

type mount struct {
	prefix string // "/gpfs", normalized, no trailing slash
	fs     *FS
}

// NewMountTable returns a table rooted at root.
func NewMountTable(root *FS) *MountTable {
	return &MountTable{root: root}
}

// Mount attaches f at prefix (e.g. "/gpfs"). Mounting over an existing
// prefix replaces it.
func (mt *MountTable) Mount(prefix string, f *FS) kernel.Errno {
	prefix = "/" + strings.Trim(prefix, "/")
	if prefix == "/" {
		return kernel.EINVAL
	}
	for i := range mt.mounts {
		if mt.mounts[i].prefix == prefix {
			mt.mounts[i].fs = f
			return kernel.OK
		}
	}
	mt.mounts = append(mt.mounts, mount{prefix: prefix, fs: f})
	sort.Slice(mt.mounts, func(i, j int) bool {
		return len(mt.mounts[i].prefix) > len(mt.mounts[j].prefix)
	})
	return kernel.OK
}

// Unmount detaches the filesystem at prefix.
func (mt *MountTable) Unmount(prefix string) kernel.Errno {
	prefix = "/" + strings.Trim(prefix, "/")
	for i := range mt.mounts {
		if mt.mounts[i].prefix == prefix {
			mt.mounts = append(mt.mounts[:i], mt.mounts[i+1:]...)
			return kernel.OK
		}
	}
	return kernel.EINVAL
}

// Mounts lists the mount points, longest first.
func (mt *MountTable) Mounts() []string {
	var out []string
	for _, m := range mt.mounts {
		out = append(out, m.prefix)
	}
	return out
}

// Resolve maps an absolute path to (filesystem, path-within-it).
func (mt *MountTable) Resolve(path string) (*FS, string) {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	for _, m := range mt.mounts {
		if path == m.prefix {
			return m.fs, "/"
		}
		if strings.HasPrefix(path, m.prefix+"/") {
			return m.fs, path[len(m.prefix):]
		}
	}
	return mt.root, path
}

// MountClient is a Client-compatible view over a mount table: each
// operation resolves the path, then delegates to a per-filesystem client
// that holds the caller's credentials. Descriptors are namespaced so a
// process can hold files from several filesystems at once.
type MountClient struct {
	mt      *MountTable
	cred    Cred
	clients map[*FS]*Client
	cwdFS   *FS
	cwd     string // within cwdFS
	cwdAbs  string // absolute, for Getcwd
	fds     []fdRef
}

type fdRef struct {
	c  *Client
	fd int
	ok bool
}

// NewMountClient returns a client over mt with the given credentials.
func NewMountClient(mt *MountTable, cred Cred) *MountClient {
	mc := &MountClient{mt: mt, cred: cred, clients: make(map[*FS]*Client), cwdAbs: "/"}
	mc.cwdFS = mt.root
	mc.cwd = "/"
	return mc
}

func (mc *MountClient) clientFor(f *FS) *Client {
	c, ok := mc.clients[f]
	if !ok {
		c = NewClient(f, mc.cred)
		mc.clients[f] = c
	}
	return c
}

// abs makes path absolute against the mount-level cwd.
func (mc *MountClient) abs(path string) string {
	if strings.HasPrefix(path, "/") {
		return path
	}
	return strings.TrimSuffix(mc.cwdAbs, "/") + "/" + path
}

func (mc *MountClient) resolve(path string) (*Client, string) {
	f, rel := mc.mt.Resolve(mc.abs(path))
	return mc.clientFor(f), rel
}

// Open opens a file anywhere in the namespace.
func (mc *MountClient) Open(path string, flags uint64, mode Mode) (int, kernel.Errno) {
	c, rel := mc.resolve(path)
	inner, errno := c.Open(rel, flags, mode)
	if errno != kernel.OK {
		return -1, errno
	}
	for i := range mc.fds {
		if !mc.fds[i].ok {
			mc.fds[i] = fdRef{c: c, fd: inner, ok: true}
			return i, kernel.OK
		}
	}
	mc.fds = append(mc.fds, fdRef{c: c, fd: inner, ok: true})
	return len(mc.fds) - 1, kernel.OK
}

func (mc *MountClient) ref(fd int) (fdRef, kernel.Errno) {
	if fd < 0 || fd >= len(mc.fds) || !mc.fds[fd].ok {
		return fdRef{}, kernel.EBADF
	}
	return mc.fds[fd], kernel.OK
}

// Close closes a namespaced descriptor.
func (mc *MountClient) Close(fd int) kernel.Errno {
	r, errno := mc.ref(fd)
	if errno != kernel.OK {
		return errno
	}
	mc.fds[fd].ok = false
	return r.c.Close(r.fd)
}

// Read reads from a namespaced descriptor.
func (mc *MountClient) Read(fd int, buf []byte) (int, kernel.Errno) {
	r, errno := mc.ref(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	return r.c.Read(r.fd, buf)
}

// Write writes to a namespaced descriptor.
func (mc *MountClient) Write(fd int, buf []byte) (int, kernel.Errno) {
	r, errno := mc.ref(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	return r.c.Write(r.fd, buf)
}

// Lseek seeks a namespaced descriptor.
func (mc *MountClient) Lseek(fd int, off int64, whence int) (uint64, kernel.Errno) {
	r, errno := mc.ref(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	return r.c.Lseek(r.fd, off, whence)
}

// Stat stats a path anywhere in the namespace.
func (mc *MountClient) Stat(path string) (Stat, kernel.Errno) {
	c, rel := mc.resolve(path)
	return c.FS.Stat("/", rel, mc.cred)
}

// Mkdir creates a directory anywhere in the namespace.
func (mc *MountClient) Mkdir(path string, m Mode) kernel.Errno {
	c, rel := mc.resolve(path)
	return c.FS.Mkdir("/", rel, m, mc.cred)
}

// Unlink removes a file anywhere in the namespace.
func (mc *MountClient) Unlink(path string) kernel.Errno {
	c, rel := mc.resolve(path)
	return c.FS.Unlink("/", rel, mc.cred)
}

// Rename moves a file; cross-mount renames fail with EINVAL (as EXDEV
// would on Linux — the shell copies instead).
func (mc *MountClient) Rename(o, n string) kernel.Errno {
	co, ro := mc.resolve(o)
	cn, rn := mc.resolve(n)
	if co != cn {
		return kernel.EINVAL
	}
	return co.FS.Rename("/", ro, rn, mc.cred)
}

// Chdir changes the namespace-level working directory.
func (mc *MountClient) Chdir(path string) kernel.Errno {
	a := mc.abs(path)
	f, rel := mc.mt.Resolve(a)
	c := mc.clientFor(f)
	if errno := c.Chdir(rel); errno != kernel.OK {
		return errno
	}
	mc.cwdFS = f
	mc.cwd = rel
	mc.cwdAbs = "/" + strings.Trim(a, "/")
	if mc.cwdAbs == "/" {
		mc.cwdAbs = "/"
	}
	return kernel.OK
}

// Cwd returns the absolute (namespace-level) working directory.
func (mc *MountClient) Cwd() string { return mc.cwdAbs }

// Readdir lists a directory anywhere in the namespace.
func (mc *MountClient) Readdir(path string) ([]string, kernel.Errno) {
	c, rel := mc.resolve(path)
	return c.FS.Readdir("/", rel, mc.cred)
}
