package fs

import (
	"fmt"
	"testing"
	"testing/quick"

	"bgcnk/internal/kernel"
)

func user(uid uint32) Cred { return Cred{UID: uid, GID: uid} }

func TestWriteReadFile(t *testing.T) {
	f := New()
	if errno := f.WriteFile("/hello.txt", []byte("world"), 0644, Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	data, errno := f.ReadFile("/hello.txt", Root)
	if errno != kernel.OK || string(data) != "world" {
		t.Fatalf("read: %v %q", errno, data)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	f := New()
	if errno := f.Mkdir("/", "/a", 0755, Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if errno := f.Mkdir("/", "/a/b", 0755, Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if errno := f.Mkdir("/", "/a/b", 0755, Root); errno != kernel.EEXIST {
		t.Fatalf("duplicate mkdir: %v", errno)
	}
	if errno := f.Mkdir("/", "/x/y", 0755, Root); errno != kernel.ENOENT {
		t.Fatalf("mkdir under missing parent: %v", errno)
	}
	st, errno := f.Stat("/", "/a/b", Root)
	if errno != kernel.OK || st.Type != TypeDir {
		t.Fatalf("stat dir: %v %v", errno, st.Type)
	}
}

func TestOpenCreateReadWriteSeek(t *testing.T) {
	f := New()
	c := NewClient(f, Root)
	fd, errno := c.Open("/f", kernel.OCreat|kernel.ORdwr, 0644)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	if n, errno := c.Write(fd, []byte("abcdefgh")); errno != kernel.OK || n != 8 {
		t.Fatalf("write: %v %d", errno, n)
	}
	if pos, errno := c.Lseek(fd, 2, kernel.SeekSet); errno != kernel.OK || pos != 2 {
		t.Fatalf("lseek: %v %d", errno, pos)
	}
	buf := make([]byte, 3)
	if n, errno := c.Read(fd, buf); errno != kernel.OK || n != 3 || string(buf) != "cde" {
		t.Fatalf("read: %v %d %q", errno, n, buf)
	}
	// Seek relative and from end.
	if pos, _ := c.Lseek(fd, -2, kernel.SeekEnd); pos != 6 {
		t.Fatalf("seek end: %d", pos)
	}
	if pos, _ := c.Lseek(fd, 1, kernel.SeekCur); pos != 7 {
		t.Fatalf("seek cur: %d", pos)
	}
	if _, errno := c.Lseek(fd, -100, kernel.SeekSet); errno != kernel.EINVAL {
		t.Fatal("negative seek must fail")
	}
}

func TestReadAtEOF(t *testing.T) {
	f := New()
	c := NewClient(f, Root)
	fd, _ := c.Open("/f", kernel.OCreat|kernel.ORdwr, 0644)
	c.Write(fd, []byte("xy"))
	buf := make([]byte, 10)
	if n, errno := c.Read(fd, buf); errno != kernel.OK || n != 0 {
		t.Fatalf("EOF read: %v %d", errno, n)
	}
}

func TestWriteBeyondEOFZeroFills(t *testing.T) {
	f := New()
	c := NewClient(f, Root)
	fd, _ := c.Open("/f", kernel.OCreat|kernel.ORdwr, 0644)
	c.Lseek(fd, 100, kernel.SeekSet)
	c.Write(fd, []byte("Z"))
	data, _ := f.ReadFile("/f", Root)
	if len(data) != 101 || data[99] != 0 || data[100] != 'Z' {
		t.Fatalf("sparse write: len=%d", len(data))
	}
}

func TestAppendFlag(t *testing.T) {
	f := New()
	c := NewClient(f, Root)
	fd, _ := c.Open("/log", kernel.OCreat|kernel.OWronly, 0644)
	c.Write(fd, []byte("one"))
	c.Close(fd)
	fd, _ = c.Open("/log", kernel.OWronly|kernel.OAppend, 0)
	c.Write(fd, []byte("two"))
	data, _ := f.ReadFile("/log", Root)
	if string(data) != "onetwo" {
		t.Fatalf("append: %q", data)
	}
}

func TestOTruncTruncates(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("longcontent"), 0644, Root)
	c := NewClient(f, Root)
	c.Open("/f", kernel.OWronly|kernel.OTrunc, 0)
	data, _ := f.ReadFile("/f", Root)
	if len(data) != 0 {
		t.Fatalf("O_TRUNC left %d bytes", len(data))
	}
}

func TestOExclOnExisting(t *testing.T) {
	f := New()
	f.WriteFile("/f", nil, 0644, Root)
	c := NewClient(f, Root)
	if _, errno := c.Open("/f", kernel.OCreat|kernel.OExcl|kernel.OWronly, 0644); errno != kernel.EEXIST {
		t.Fatalf("O_EXCL: %v", errno)
	}
}

func TestDupSharesOffset(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("abcdef"), 0644, Root)
	c := NewClient(f, Root)
	fd, _ := c.Open("/f", kernel.ORdonly, 0)
	fd2, errno := c.Dup(fd)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	buf := make([]byte, 2)
	c.Read(fd, buf)
	c.Read(fd2, buf)
	if string(buf) != "cd" {
		t.Fatalf("dup must share offset: %q", buf)
	}
	c.Close(fd)
	if _, errno := c.Read(fd2, buf); errno != kernel.OK {
		t.Fatal("closing one dup must not close the other")
	}
}

func TestBadFD(t *testing.T) {
	c := NewClient(New(), Root)
	if _, errno := c.Read(42, make([]byte, 1)); errno != kernel.EBADF {
		t.Fatal(errno)
	}
	if errno := c.Close(-1); errno != kernel.EBADF {
		t.Fatal(errno)
	}
	fd, _ := c.Open("/f", kernel.OCreat|kernel.ORdwr, 0644)
	c.Close(fd)
	if errno := c.Close(fd); errno != kernel.EBADF {
		t.Fatal("double close must fail")
	}
}

func TestReadWriteModeEnforcement(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("data"), 0644, Root)
	c := NewClient(f, Root)
	rfd, _ := c.Open("/f", kernel.ORdonly, 0)
	if _, errno := c.Write(rfd, []byte("x")); errno != kernel.EBADF {
		t.Fatalf("write to O_RDONLY: %v", errno)
	}
	wfd, _ := c.Open("/f", kernel.OWronly, 0)
	if _, errno := c.Read(wfd, make([]byte, 1)); errno != kernel.EBADF {
		t.Fatalf("read from O_WRONLY: %v", errno)
	}
}

func TestPermissionChecks(t *testing.T) {
	f := New()
	f.Mkdir("/", "/private", 0700, Root)
	f.WriteFile("/private/secret", []byte("s"), 0600, Root)
	alice := NewClient(f, user(1000))
	if _, errno := alice.Open("/private/secret", kernel.ORdonly, 0); errno != kernel.EACCES {
		t.Fatalf("search perm: %v", errno)
	}
	f.Mkdir("/", "/pub", 0755, Root)
	f.WriteFile("/pub/ro", []byte("r"), 0644, Root)
	if _, errno := alice.Open("/pub/ro", kernel.OWronly, 0); errno != kernel.EACCES {
		t.Fatalf("write to 0644 root file as alice: %v", errno)
	}
	if _, errno := alice.Open("/pub/ro", kernel.ORdonly, 0); errno != kernel.OK {
		t.Fatalf("read of 0644: %v", errno)
	}
	// Alice cannot create in /pub (0755 root-owned).
	if _, errno := alice.Open("/pub/new", kernel.OCreat|kernel.OWronly, 0644); errno != kernel.EACCES {
		t.Fatalf("create in non-writable dir: %v", errno)
	}
}

func TestGroupPermissions(t *testing.T) {
	f := New()
	f.WriteFile("/shared", []byte("g"), 0, Root)
	f.Chmod("/", "/shared", 0640, Root)
	// Same GID as owner (0) can read; others cannot.
	sameGroup := NewClient(f, Cred{UID: 5, GID: 0})
	if _, errno := sameGroup.Open("/shared", kernel.ORdonly, 0); errno != kernel.OK {
		t.Fatalf("group read: %v", errno)
	}
	other := NewClient(f, Cred{UID: 6, GID: 6})
	if _, errno := other.Open("/shared", kernel.ORdonly, 0); errno != kernel.EACCES {
		t.Fatalf("other read: %v", errno)
	}
}

func TestChmodOwnerOnly(t *testing.T) {
	f := New()
	f.WriteFile("/f", nil, 0644, user(1000))
	if errno := f.Chmod("/", "/f", 0600, user(2000)); errno != kernel.EPERM {
		t.Fatalf("chmod by non-owner: %v", errno)
	}
	if errno := f.Chmod("/", "/f", 0600, user(1000)); errno != kernel.OK {
		t.Fatalf("chmod by owner: %v", errno)
	}
}

func TestUnlinkRename(t *testing.T) {
	f := New()
	f.WriteFile("/a", []byte("1"), 0644, Root)
	if errno := f.Rename("/", "/a", "/b", Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if _, errno := f.ReadFile("/a", Root); errno != kernel.ENOENT {
		t.Fatal("rename left source")
	}
	if data, _ := f.ReadFile("/b", Root); string(data) != "1" {
		t.Fatal("rename lost content")
	}
	if errno := f.Unlink("/", "/b", Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if _, errno := f.ReadFile("/b", Root); errno != kernel.ENOENT {
		t.Fatal("unlink left file")
	}
	if errno := f.Unlink("/", "/b", Root); errno != kernel.ENOENT {
		t.Fatal("double unlink must fail")
	}
}

func TestRenameOntoExisting(t *testing.T) {
	f := New()
	f.WriteFile("/a", []byte("new"), 0644, Root)
	f.WriteFile("/b", []byte("old"), 0644, Root)
	if errno := f.Rename("/", "/a", "/b", Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if data, _ := f.ReadFile("/b", Root); string(data) != "new" {
		t.Fatal("rename must replace target")
	}
	// Directory onto non-empty directory fails.
	f.Mkdir("/", "/d1", 0755, Root)
	f.Mkdir("/", "/d2", 0755, Root)
	f.WriteFile("/d2/x", nil, 0644, Root)
	if errno := f.Rename("/", "/d1", "/d2", Root); errno != kernel.ENOTEMPTY {
		t.Fatalf("rename dir onto non-empty: %v", errno)
	}
}

func TestRmdirSemantics(t *testing.T) {
	f := New()
	f.Mkdir("/", "/d", 0755, Root)
	f.WriteFile("/d/f", nil, 0644, Root)
	if errno := f.Rmdir("/", "/d", Root); errno != kernel.ENOTEMPTY {
		t.Fatal(errno)
	}
	f.Unlink("/", "/d/f", Root)
	if errno := f.Rmdir("/", "/d", Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	f.WriteFile("/f", nil, 0644, Root)
	if errno := f.Rmdir("/", "/f", Root); errno != kernel.ENOTDIR {
		t.Fatal(errno)
	}
	if errno := f.Unlink("/", "/d", Root); errno != kernel.ENOENT {
		t.Fatal("unlink of removed dir")
	}
}

func TestCwdRelativePaths(t *testing.T) {
	f := New()
	f.MustMkdirAll("/home/alice/work")
	c := NewClient(f, Root)
	if errno := c.Chdir("/home/alice"); errno != kernel.OK {
		t.Fatal(errno)
	}
	if c.Cwd() != "/home/alice" {
		t.Fatalf("cwd = %q", c.Cwd())
	}
	fd, errno := c.Open("work/notes.txt", kernel.OCreat|kernel.OWronly, 0644)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	c.Write(fd, []byte("hi"))
	if data, _ := f.ReadFile("/home/alice/work/notes.txt", Root); string(data) != "hi" {
		t.Fatal("relative create landed elsewhere")
	}
	if errno := c.Chdir("work/../work/./"); errno != kernel.OK {
		t.Fatal(errno)
	}
	if c.Cwd() != "/home/alice/work" {
		t.Fatalf("cwd after dots = %q", c.Cwd())
	}
	if errno := c.Chdir("notes.txt"); errno != kernel.ENOTDIR {
		t.Fatal("chdir to file must fail")
	}
}

func TestSymlinkResolution(t *testing.T) {
	f := New()
	f.MustMkdirAll("/data/real")
	f.WriteFile("/data/real/file", []byte("x"), 0644, Root)
	if errno := f.Symlink("/", "/data/real", "/link", Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	if data, errno := f.ReadFile("/link/file", Root); errno != kernel.OK || string(data) != "x" {
		t.Fatalf("through-symlink read: %v %q", errno, data)
	}
	target, errno := f.Readlink("/", "/link", Root)
	if errno != kernel.OK || target != "/data/real" {
		t.Fatalf("readlink: %v %q", errno, target)
	}
	// Relative symlink.
	f.Symlink("/", "real/file", "/data/rel", Root)
	if data, errno := f.ReadFile("/data/rel", Root); errno != kernel.OK || string(data) != "x" {
		t.Fatalf("relative symlink: %v %q", errno, data)
	}
}

func TestSymlinkLoop(t *testing.T) {
	f := New()
	f.Symlink("/", "/b", "/a", Root)
	f.Symlink("/", "/a", "/b", Root)
	if _, errno := f.ReadFile("/a", Root); errno != kernel.ELOOP {
		t.Fatalf("loop: %v", errno)
	}
}

func TestStatFields(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("12345"), 0640, user(7))
	st, errno := f.Stat("/", "/f", Root)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	if st.Size != 5 || st.UID != 7 || st.Mode != 0640 || st.Type != TypeFile || st.Nlink != 1 {
		t.Fatalf("stat = %+v", st)
	}
	if st.Ino == 0 {
		t.Fatal("inode number missing")
	}
}

func TestReaddirSorted(t *testing.T) {
	f := New()
	for _, n := range []string{"/c", "/a", "/b"} {
		f.WriteFile(n, nil, 0644, Root)
	}
	names, errno := f.Readdir("/", "/", Root)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("readdir: %v", names)
	}
}

func TestTruncateGrowShrink(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("abcdef"), 0644, Root)
	f.Truncate("/", "/f", 3, Root)
	if data, _ := f.ReadFile("/f", Root); string(data) != "abc" {
		t.Fatalf("shrink: %q", data)
	}
	f.Truncate("/", "/f", 6, Root)
	if data, _ := f.ReadFile("/f", Root); len(data) != 6 || data[5] != 0 {
		t.Fatalf("grow: %q", data)
	}
}

func TestFDExhaustion(t *testing.T) {
	f := New()
	f.WriteFile("/f", nil, 0644, Root)
	c := NewClient(f, Root)
	fds := 0
	for {
		_, errno := c.Open("/f", kernel.ORdonly, 0)
		if errno == kernel.EMFILE {
			break
		}
		if errno != kernel.OK {
			t.Fatal(errno)
		}
		fds++
		if fds > MaxFDs {
			t.Fatal("EMFILE never returned")
		}
	}
	if fds != MaxFDs {
		t.Fatalf("opened %d, want %d", fds, MaxFDs)
	}
}

func TestPropertyWriteReadAnyOffset(t *testing.T) {
	f := New()
	c := NewClient(f, Root)
	fd, _ := c.Open("/p", kernel.OCreat|kernel.ORdwr, 0644)
	check := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if _, errno := c.Lseek(fd, int64(off), kernel.SeekSet); errno != kernel.OK {
			return false
		}
		if _, errno := c.Write(fd, payload); errno != kernel.OK {
			return false
		}
		if _, errno := c.Lseek(fd, int64(off), kernel.SeekSet); errno != kernel.OK {
			return false
		}
		got := make([]byte, len(payload))
		n, errno := c.Read(fd, got)
		if errno != kernel.OK || n != len(payload) {
			return false
		}
		return string(got) == string(payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestManyFilesStress(t *testing.T) {
	f := New()
	f.MustMkdirAll("/stress")
	for i := 0; i < 500; i++ {
		path := fmt.Sprintf("/stress/f%03d", i)
		if errno := f.WriteFile(path, []byte{byte(i)}, 0644, Root); errno != kernel.OK {
			t.Fatal(errno)
		}
	}
	names, _ := f.Readdir("/", "/stress", Root)
	if len(names) != 500 {
		t.Fatalf("got %d entries", len(names))
	}
	for i := 0; i < 500; i += 37 {
		data, errno := f.ReadFile(fmt.Sprintf("/stress/f%03d", i), Root)
		if errno != kernel.OK || data[0] != byte(i) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}
