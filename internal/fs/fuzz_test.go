package fs

import (
	"sort"
	"testing"

	"bgcnk/internal/kernel"
)

// FuzzFS drives the filesystem with a byte-coded op program and checks
// the structural invariants afterwards: the tree stays acyclic, every
// directory's nlink equals 2 + its subdirectory count, every live file's
// nlink is positive, and Readdir output is sorted. The program format is
// triples (op, arg1, arg2); paths come from a small closed alphabet so
// operations collide often (same-name mkdir/rename/unlink races are the
// interesting cases).
func FuzzFS(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 5, 1, 3, 1, 5}) // mkdir, nested mkdir, rename
	f.Add([]byte{1, 2, 0, 4, 2, 9})          // create, truncate
	f.Add([]byte{0, 0, 0, 3, 0, 0, 2, 0, 0}) // mkdir, rmdir, unlink
	f.Add([]byte{5, 0, 0, 5, 0, 1, 3, 1, 0}) // symlink loops
	f.Add([]byte{0, 1, 0, 3, 1, 16, 6, 1, 1, 7, 1, 2})
	f.Fuzz(func(t *testing.T, prog []byte) {
		fsys := New()
		fsys.MustMkdirAll("/gpfs")
		user := Cred{UID: 1, GID: 1}
		for i := 0; i+2 < len(prog); i += 3 {
			op, a, b := prog[i], prog[i+1], prog[i+2]
			p1, p2 := fuzzPath(a), fuzzPath(b)
			cred := Root
			if a&0x80 != 0 {
				cred = user
			}
			switch op % 10 {
			case 0:
				fsys.Mkdir("/", p1, 0700|Mode(b)&0077, cred)
			case 1:
				fsys.WriteFile(p1, make([]byte, int(b)%128), 0644, cred)
			case 2:
				fsys.Unlink("/", p1, cred)
			case 3:
				fsys.Rmdir("/", p1, cred)
			case 4:
				fsys.Truncate("/", p1, uint64(b)*17, cred)
			case 5:
				fsys.Symlink("/", p2, p1, cred)
			case 6:
				fsys.Rename("/", p1, p2, cred)
			case 7:
				fsys.Chmod("/", p1, Mode(b)&0777, cred)
			case 8:
				fsys.Stat("/", p1, cred)
				fsys.Readlink("/", p1, cred)
			case 9:
				names, errno := fsys.Readdir("/", p1, cred)
				if errno == kernel.OK && !sort.StringsAreSorted(names) {
					t.Fatalf("Readdir(%q) unsorted: %v", p1, names)
				}
			}
		}
		checkTree(t, fsys)
	})
}

// fuzzPath maps a byte to a path over a tiny component alphabet, depth
// up to 3, mixing absolute and relative spellings plus dot-dot.
func fuzzPath(b byte) string {
	comps := []string{"a", "b", "gpfs", "..", "."}
	p := "/" + comps[int(b)%len(comps)]
	if b&0x10 != 0 {
		p += "/" + comps[int(b>>2)%len(comps)]
	}
	if b&0x20 != 0 {
		p += "/" + comps[int(b>>4)%len(comps)]
	}
	if b&0x40 != 0 {
		p = p[1:] // relative to cwd
	}
	return p
}

// checkTree walks the whole tree and verifies the structural invariants.
func checkTree(t *testing.T, f *FS) {
	t.Helper()
	seen := map[*inode]bool{}
	var walk func(path string, n *inode)
	walk = func(path string, n *inode) {
		if seen[n] {
			t.Fatalf("inode %d reachable twice (cycle or aliased dir) at %s", n.ino, path)
		}
		seen[n] = true
		if n.typ != TypeDir {
			if n.nlink == 0 {
				t.Fatalf("live inode %d at %s has nlink 0", n.ino, path)
			}
			return
		}
		subdirs := uint32(0)
		for _, c := range n.entries {
			if c.typ == TypeDir {
				subdirs++
			}
		}
		if n.nlink != 2+subdirs {
			t.Fatalf("dir %s nlink=%d want %d (2 + %d subdirs)", path, n.nlink, 2+subdirs, subdirs)
		}
		for name, c := range n.entries {
			walk(path+"/"+name, c)
		}
	}
	walk("", f.root)
}
