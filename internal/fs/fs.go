// Package fs implements the in-memory POSIX filesystem that runs on the
// I/O node. The paper's I/O strategy (Section IV-A, VI-A) is that CNK
// implements no filesystem at all: it function-ships every file system
// call to a CIOD ioproxy on an I/O node running Linux, thereby inheriting
// POSIX semantics ("the calls produce the same result codes, network
// filesystem nuances, etc."). This package is the "Linux filesystem" those
// ioproxies call into; the FWK kernel also uses it directly as its local
// filesystem.
package fs

import (
	"sort"
	"strings"

	"bgcnk/internal/kernel"
)

// FileType distinguishes inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
	TypeSymlink
)

// Mode bits (permission part of st_mode).
type Mode uint16

// Permission bit helpers.
const (
	ModeRUsr Mode = 0400
	ModeWUsr Mode = 0200
	ModeXUsr Mode = 0100
	ModeRGrp Mode = 0040
	ModeWGrp Mode = 0020
	ModeXGrp Mode = 0010
	ModeROth Mode = 0004
	ModeWOth Mode = 0002
	ModeXOth Mode = 0001
)

// Cred identifies the caller for permission checks.
type Cred struct {
	UID uint32
	GID uint32
}

// Root is the superuser.
var Root = Cred{UID: 0, GID: 0}

// Stat is the result of a stat call.
type Stat struct {
	Ino   uint64
	Type  FileType
	Mode  Mode
	UID   uint32
	GID   uint32
	Size  uint64
	Nlink uint32
	Mtime uint64
}

type inode struct {
	ino     uint64
	typ     FileType
	mode    Mode
	uid     uint32
	gid     uint32
	mtime   uint64
	nlink   uint32
	data    []byte            // TypeFile
	target  string            // TypeSymlink
	entries map[string]*inode // TypeDir
}

func (n *inode) stat() Stat {
	size := uint64(len(n.data))
	if n.typ == TypeSymlink {
		size = uint64(len(n.target))
	}
	return Stat{Ino: n.ino, Type: n.typ, Mode: n.mode, UID: n.uid, GID: n.gid,
		Size: size, Nlink: n.nlink, Mtime: n.mtime}
}

// FS is one mounted filesystem tree.
type FS struct {
	root    *inode
	nextIno uint64
	byIno   map[uint64]*inode
	clock   func() uint64 // supplies mtimes; defaults to a counter
	tick    uint64
}

// New returns an empty filesystem whose root is mode 0755 and owned by
// root.
func New() *FS {
	f := &FS{nextIno: 2, byIno: map[uint64]*inode{}}
	f.root = &inode{ino: 1, typ: TypeDir, mode: 0755, nlink: 2, entries: map[string]*inode{}}
	f.byIno[1] = f.root
	return f
}

// SetClock installs a time source for mtimes.
func (f *FS) SetClock(fn func() uint64) { f.clock = fn }

func (f *FS) now() uint64 {
	if f.clock != nil {
		return f.clock()
	}
	f.tick++
	return f.tick
}

func (f *FS) newInode(typ FileType, mode Mode, c Cred) *inode {
	n := &inode{ino: f.nextIno, typ: typ, mode: mode, uid: c.UID, gid: c.GID, mtime: f.now(), nlink: 1}
	f.nextIno++
	if typ == TypeDir {
		n.entries = map[string]*inode{}
		n.nlink = 2
	}
	f.byIno[n.ino] = n
	return n
}

// access checks permission bits the POSIX way: owner class, then group,
// then other. UID 0 bypasses permission checks (like Linux capabilities
// for file access).
func access(n *inode, c Cred, want Mode) bool {
	if c.UID == 0 {
		return true
	}
	var bits Mode
	switch {
	case c.UID == n.uid:
		bits = (n.mode >> 6) & 7
	case c.GID == n.gid:
		bits = (n.mode >> 3) & 7
	default:
		bits = n.mode & 7
	}
	return bits&want == want
}

// splitPath normalizes p (relative to cwd when p is relative) into
// components.
func splitPath(cwd, p string) []string {
	if !strings.HasPrefix(p, "/") {
		p = cwd + "/" + p
	}
	var out []string
	for _, c := range strings.Split(p, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, c)
		}
	}
	return out
}

const maxSymlinkDepth = 8

// resolve walks the path. If followLast is false the final symlink itself
// is returned. It returns the parent directory, the final name, and the
// inode (nil if the final component does not exist).
func (f *FS) resolve(cwd, path string, c Cred, followLast bool, depth int) (parent *inode, name string, n *inode, errno kernel.Errno) {
	if depth > maxSymlinkDepth {
		return nil, "", nil, kernel.ELOOP
	}
	comps := splitPath(cwd, path)
	cur := f.root
	if len(comps) == 0 {
		return nil, "", cur, kernel.OK
	}
	for i, comp := range comps {
		if cur.typ != TypeDir {
			return nil, "", nil, kernel.ENOTDIR
		}
		if !access(cur, c, 1) { // need search (x) permission
			return nil, "", nil, kernel.EACCES
		}
		child := cur.entries[comp]
		last := i == len(comps)-1
		if child != nil && child.typ == TypeSymlink && (!last || followLast) {
			// Re-resolve: target relative to the directory holding the link.
			rest := strings.Join(comps[i+1:], "/")
			target := child.target
			if rest != "" {
				target = target + "/" + rest
			}
			base := "/" + strings.Join(comps[:i], "/")
			return f.resolve(base, target, c, followLast, depth+1)
		}
		if last {
			return cur, comp, child, kernel.OK
		}
		if child == nil {
			return nil, "", nil, kernel.ENOENT
		}
		cur = child
	}
	panic("unreachable")
}

// lookup returns the inode at path or an errno.
func (f *FS) lookup(cwd, path string, c Cred, follow bool) (*inode, kernel.Errno) {
	_, _, n, errno := f.resolve(cwd, path, c, follow, 0)
	if errno != kernel.OK {
		return nil, errno
	}
	if n == nil {
		return nil, kernel.ENOENT
	}
	return n, kernel.OK
}

// Mkdir creates a directory.
func (f *FS) Mkdir(cwd, path string, mode Mode, c Cred) kernel.Errno {
	parent, name, n, errno := f.resolve(cwd, path, c, true, 0)
	if errno != kernel.OK {
		return errno
	}
	if n != nil {
		return kernel.EEXIST
	}
	if name == "" {
		return kernel.EEXIST // root
	}
	if !access(parent, c, 2) {
		return kernel.EACCES
	}
	d := f.newInode(TypeDir, mode&0777, c)
	parent.entries[name] = d
	parent.nlink++
	parent.mtime = f.now()
	return kernel.OK
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(cwd, path string, c Cred) kernel.Errno {
	parent, name, n, errno := f.resolve(cwd, path, c, false, 0)
	if errno != kernel.OK {
		return errno
	}
	if n == nil {
		return kernel.ENOENT
	}
	if n.typ != TypeDir {
		return kernel.ENOTDIR
	}
	if parent == nil {
		return kernel.EBUSY // rmdir("/")
	}
	if len(n.entries) != 0 {
		return kernel.ENOTEMPTY
	}
	if !access(parent, c, 2) {
		return kernel.EACCES
	}
	delete(parent.entries, name)
	parent.nlink--
	parent.mtime = f.now()
	return kernel.OK
}

// Unlink removes a file or symlink.
func (f *FS) Unlink(cwd, path string, c Cred) kernel.Errno {
	parent, name, n, errno := f.resolve(cwd, path, c, false, 0)
	if errno != kernel.OK {
		return errno
	}
	if n == nil {
		return kernel.ENOENT
	}
	if n.typ == TypeDir {
		return kernel.EISDIR
	}
	if !access(parent, c, 2) {
		return kernel.EACCES
	}
	delete(parent.entries, name)
	n.nlink--
	parent.mtime = f.now()
	return kernel.OK
}

// Rename moves oldpath to newpath, replacing a non-directory target.
func (f *FS) Rename(cwd, oldpath, newpath string, c Cred) kernel.Errno {
	op, oname, on, errno := f.resolve(cwd, oldpath, c, false, 0)
	if errno != kernel.OK {
		return errno
	}
	if on == nil {
		return kernel.ENOENT
	}
	np, nname, nn, errno := f.resolve(cwd, newpath, c, false, 0)
	if errno != kernel.OK {
		return errno
	}
	if op == nil || np == nil {
		return kernel.EBUSY // renaming the root, or over the root
	}
	if !access(op, c, 2) || !access(np, c, 2) {
		return kernel.EACCES
	}
	if nn == on {
		return kernel.OK // POSIX: rename to self is a no-op
	}
	if on.typ == TypeDir && subtreeContains(on, np) {
		return kernel.EINVAL // moving a directory under itself
	}
	if nn != nil {
		if nn.typ == TypeDir {
			if on.typ != TypeDir {
				return kernel.EISDIR
			}
			if len(nn.entries) != 0 {
				return kernel.ENOTEMPTY
			}
		} else if on.typ == TypeDir {
			return kernel.ENOTDIR
		}
	}
	delete(op.entries, oname)
	if nn != nil {
		nn.nlink--
		if nn.typ == TypeDir {
			np.nlink--
		}
	}
	np.entries[nname] = on
	if on.typ == TypeDir && op != np {
		op.nlink--
		np.nlink++
	}
	op.mtime, np.mtime = f.now(), f.now()
	return kernel.OK
}

// subtreeContains reports whether dir's subtree (including dir itself)
// holds n.
func subtreeContains(dir, n *inode) bool {
	if dir == n {
		return true
	}
	for _, c := range dir.entries {
		if c.typ == TypeDir && subtreeContains(c, n) {
			return true
		}
	}
	return false
}

// Symlink creates a symbolic link at path pointing to target.
func (f *FS) Symlink(cwd, target, path string, c Cred) kernel.Errno {
	parent, name, n, errno := f.resolve(cwd, path, c, false, 0)
	if errno != kernel.OK {
		return errno
	}
	if n != nil {
		return kernel.EEXIST
	}
	if !access(parent, c, 2) {
		return kernel.EACCES
	}
	l := f.newInode(TypeSymlink, 0777, c)
	l.target = target
	parent.entries[name] = l
	parent.mtime = f.now()
	return kernel.OK
}

// Readlink returns a symlink's target.
func (f *FS) Readlink(cwd, path string, c Cred) (string, kernel.Errno) {
	n, errno := f.lookup(cwd, path, c, false)
	if errno != kernel.OK {
		return "", errno
	}
	if n.typ != TypeSymlink {
		return "", kernel.EINVAL
	}
	return n.target, kernel.OK
}

// Stat stats the file at path (following symlinks).
func (f *FS) Stat(cwd, path string, c Cred) (Stat, kernel.Errno) {
	n, errno := f.lookup(cwd, path, c, true)
	if errno != kernel.OK {
		return Stat{}, errno
	}
	return n.stat(), kernel.OK
}

// Readdir lists a directory, sorted.
func (f *FS) Readdir(cwd, path string, c Cred) ([]string, kernel.Errno) {
	n, errno := f.lookup(cwd, path, c, true)
	if errno != kernel.OK {
		return nil, errno
	}
	if n.typ != TypeDir {
		return nil, kernel.ENOTDIR
	}
	if !access(n, c, 4) {
		return nil, kernel.EACCES
	}
	names := make([]string, 0, len(n.entries))
	for name := range n.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, kernel.OK
}

// Truncate sets the file at path to the given size.
func (f *FS) Truncate(cwd, path string, size uint64, c Cred) kernel.Errno {
	n, errno := f.lookup(cwd, path, c, true)
	if errno != kernel.OK {
		return errno
	}
	if n.typ == TypeDir {
		return kernel.EISDIR
	}
	if !access(n, c, 2) {
		return kernel.EACCES
	}
	truncate(n, size)
	n.mtime = f.now()
	return kernel.OK
}

func truncate(n *inode, size uint64) {
	if size <= uint64(len(n.data)) {
		n.data = n.data[:size]
		return
	}
	n.data = append(n.data, make([]byte, size-uint64(len(n.data)))...)
}

// Inode-addressed access, used by the I/O node's write-back buffer cache.
// The cache sits below the VFS layer: path resolution and permission
// checks happen at open time; fills and writebacks address the inode
// directly, exactly as the Linux page cache does. An inode stays
// addressable while open even after the last link goes away.

// fileInode returns the regular file with the given inode number.
func (f *FS) fileInode(ino uint64) (*inode, kernel.Errno) {
	n, ok := f.byIno[ino]
	if !ok {
		return nil, kernel.ENOENT
	}
	if n.typ != TypeFile {
		return nil, kernel.EISDIR
	}
	return n, kernel.OK
}

// InodeSize returns the current on-"disk" size of the file.
func (f *FS) InodeSize(ino uint64) (uint64, kernel.Errno) {
	n, errno := f.fileInode(ino)
	if errno != kernel.OK {
		return 0, errno
	}
	return uint64(len(n.data)), kernel.OK
}

// ReadInode reads up to count bytes at off; short at EOF, empty past it.
func (f *FS) ReadInode(ino, off uint64, count int) ([]byte, kernel.Errno) {
	n, errno := f.fileInode(ino)
	if errno != kernel.OK {
		return nil, errno
	}
	if off >= uint64(len(n.data)) {
		return nil, kernel.OK
	}
	end := off + uint64(count)
	if end > uint64(len(n.data)) {
		end = uint64(len(n.data))
	}
	return append([]byte(nil), n.data[off:end]...), kernel.OK
}

// WriteInode writes data at off, zero-filling any gap and extending the
// file as needed (a dirty-block writeback).
func (f *FS) WriteInode(ino, off uint64, data []byte) kernel.Errno {
	n, errno := f.fileInode(ino)
	if errno != kernel.OK {
		return errno
	}
	if end := off + uint64(len(data)); end > uint64(len(n.data)) {
		truncate(n, end)
	}
	copy(n.data[off:], data)
	n.mtime = f.now()
	return kernel.OK
}

// TruncateInode sets the file to size, bypassing permission checks (the
// caller validated the open-time credentials).
func (f *FS) TruncateInode(ino, size uint64) kernel.Errno {
	n, errno := f.fileInode(ino)
	if errno != kernel.OK {
		return errno
	}
	truncate(n, size)
	n.mtime = f.now()
	return kernel.OK
}

// Chmod changes permission bits (owner or root only).
func (f *FS) Chmod(cwd, path string, mode Mode, c Cred) kernel.Errno {
	n, errno := f.lookup(cwd, path, c, true)
	if errno != kernel.OK {
		return errno
	}
	if c.UID != 0 && c.UID != n.uid {
		return kernel.EPERM
	}
	n.mode = mode & 0777
	return kernel.OK
}

// MustMkdirAll creates every directory on path as root; test/bootstrap
// helper.
func (f *FS) MustMkdirAll(path string) {
	comps := splitPath("/", path)
	cur := "/"
	for _, cmp := range comps {
		cur = cur + cmp + "/"
		if errno := f.Mkdir("/", cur, 0755, Root); errno != kernel.OK && errno != kernel.EEXIST {
			panic("fs: MkdirAll " + cur + ": " + errno.String())
		}
	}
}

// WriteFile creates path with the given contents as cred c; bootstrap
// helper used to populate images and test fixtures.
func (f *FS) WriteFile(path string, data []byte, mode Mode, c Cred) kernel.Errno {
	parent, name, n, errno := f.resolve("/", path, c, true, 0)
	if errno != kernel.OK {
		return errno
	}
	if n == nil {
		n = f.newInode(TypeFile, mode&0777, c)
		parent.entries[name] = n
	} else if n.typ != TypeFile {
		return kernel.EISDIR
	}
	n.data = append([]byte(nil), data...)
	n.mtime = f.now()
	return kernel.OK
}

// ReadFile returns the contents of path.
func (f *FS) ReadFile(path string, c Cred) ([]byte, kernel.Errno) {
	n, errno := f.lookup("/", path, c, true)
	if errno != kernel.OK {
		return nil, errno
	}
	if n.typ != TypeFile {
		return nil, kernel.EISDIR
	}
	return append([]byte(nil), n.data...), kernel.OK
}
