package fs

import (
	"testing"

	"bgcnk/internal/kernel"
)

func ionNamespace() (*MountTable, *FS, *FS, *FS) {
	root := New()
	gpfs := New()
	nfs := New()
	mt := NewMountTable(root)
	mt.Mount("/gpfs", gpfs)
	mt.Mount("/home", nfs)
	return mt, root, gpfs, nfs
}

func TestResolveLongestPrefix(t *testing.T) {
	mt, root, gpfs, _ := ionNamespace()
	deep := New()
	mt.Mount("/gpfs/projects", deep)
	if f, p := mt.Resolve("/gpfs/projects/x"); f != deep || p != "/x" {
		t.Fatalf("deep mount: %v %q", f == deep, p)
	}
	if f, p := mt.Resolve("/gpfs/other"); f != gpfs || p != "/other" {
		t.Fatalf("gpfs: %v %q", f == gpfs, p)
	}
	if f, p := mt.Resolve("/etc/passwd"); f != root || p != "/etc/passwd" {
		t.Fatalf("root: %v %q", f == root, p)
	}
	if f, _ := mt.Resolve("/gpfs"); f != gpfs {
		t.Fatal("mount point itself must resolve to the mounted fs")
	}
	// "/gpfsx" must NOT match the /gpfs mount.
	if f, _ := mt.Resolve("/gpfsx"); f != root {
		t.Fatal("prefix match must be component-wise")
	}
}

func TestMountReplaceAndUnmount(t *testing.T) {
	mt, root, _, _ := ionNamespace()
	newFS := New()
	if errno := mt.Mount("/gpfs", newFS); errno != kernel.OK {
		t.Fatal(errno)
	}
	if f, _ := mt.Resolve("/gpfs/a"); f != newFS {
		t.Fatal("remount did not replace")
	}
	if errno := mt.Unmount("/gpfs"); errno != kernel.OK {
		t.Fatal(errno)
	}
	if f, _ := mt.Resolve("/gpfs/a"); f != root {
		t.Fatal("unmount did not fall back to root")
	}
	if errno := mt.Unmount("/nope"); errno == kernel.EINVAL {
		return
	}
	t.Fatal("unmount of unknown prefix must fail")
}

func TestMountRootRejected(t *testing.T) {
	mt := NewMountTable(New())
	if errno := mt.Mount("/", New()); errno != kernel.EINVAL {
		t.Fatal("mounting over / must be rejected")
	}
}

func TestMountClientCrossFilesystem(t *testing.T) {
	mt, root, gpfs, nfs := ionNamespace()
	root.MustMkdirAll("/tmp")
	mc := NewMountClient(mt, Root)

	// Create one file per filesystem through the same client.
	for _, p := range []string{"/tmp/a", "/gpfs/b", "/home/c"} {
		fd, errno := mc.Open(p, kernel.OCreat|kernel.OWronly, 0644)
		if errno != kernel.OK {
			t.Fatalf("open %s: %v", p, errno)
		}
		if _, errno := mc.Write(fd, []byte(p)); errno != kernel.OK {
			t.Fatalf("write %s: %v", p, errno)
		}
		mc.Close(fd)
	}
	// The files landed on their own filesystems.
	if _, errno := root.ReadFile("/tmp/a", Root); errno != kernel.OK {
		t.Fatal("root file missing")
	}
	if data, errno := gpfs.ReadFile("/b", Root); errno != kernel.OK || string(data) != "/gpfs/b" {
		t.Fatalf("gpfs file: %v %q", errno, data)
	}
	if _, errno := nfs.ReadFile("/c", Root); errno != kernel.OK {
		t.Fatal("nfs file missing")
	}
	// And are invisible to each other.
	if _, errno := root.ReadFile("/gpfs/b", Root); errno == kernel.OK {
		t.Fatal("mounted file leaked into the root fs")
	}
}

func TestMountClientChdirAcrossMounts(t *testing.T) {
	mt, _, gpfs, _ := ionNamespace()
	gpfs.MustMkdirAll("/jobs/run1")
	mc := NewMountClient(mt, Root)
	if errno := mc.Chdir("/gpfs/jobs/run1"); errno != kernel.OK {
		t.Fatal(errno)
	}
	if mc.Cwd() != "/gpfs/jobs/run1" {
		t.Fatalf("cwd = %q", mc.Cwd())
	}
	fd, errno := mc.Open("out.dat", kernel.OCreat|kernel.OWronly, 0644)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	mc.Write(fd, []byte("rel"))
	mc.Close(fd)
	if data, errno := gpfs.ReadFile("/jobs/run1/out.dat", Root); errno != kernel.OK || string(data) != "rel" {
		t.Fatalf("relative create: %v %q", errno, data)
	}
}

func TestMountClientDescriptorsSpanFilesystems(t *testing.T) {
	mt, root, gpfs, _ := ionNamespace()
	root.WriteFile("/r.txt", []byte("root!"), 0644, Root)
	gpfs.WriteFile("/g.txt", []byte("gpfs!"), 0644, Root)
	mc := NewMountClient(mt, Root)
	fr, _ := mc.Open("/r.txt", kernel.ORdonly, 0)
	fg, _ := mc.Open("/gpfs/g.txt", kernel.ORdonly, 0)
	br := make([]byte, 5)
	bg := make([]byte, 5)
	mc.Read(fr, br)
	mc.Read(fg, bg)
	if string(br) != "root!" || string(bg) != "gpfs!" {
		t.Fatalf("reads: %q %q", br, bg)
	}
	if errno := mc.Close(fr); errno != kernel.OK {
		t.Fatal(errno)
	}
	if _, errno := mc.Read(fr, br); errno != kernel.EBADF {
		t.Fatal("closed fd must be invalid")
	}
	// The gpfs descriptor is unaffected, and fd slots are reused.
	if _, errno := mc.Read(fg, bg); errno != kernel.OK {
		t.Fatal("sibling descriptor broke")
	}
	fr2, _ := mc.Open("/r.txt", kernel.ORdonly, 0)
	if fr2 != fr {
		t.Fatalf("fd slot not reused: %d vs %d", fr2, fr)
	}
}

func TestMountClientCrossMountRenameFails(t *testing.T) {
	mt, root, _, _ := ionNamespace()
	root.WriteFile("/x", nil, 0644, Root)
	mc := NewMountClient(mt, Root)
	if errno := mc.Rename("/x", "/gpfs/x"); errno != kernel.EINVAL {
		t.Fatalf("cross-mount rename: %v", errno)
	}
	if errno := mc.Rename("/x", "/y"); errno != kernel.OK {
		t.Fatalf("same-fs rename: %v", errno)
	}
}

func TestMountClientStatMkdirReaddir(t *testing.T) {
	mt, _, gpfs, _ := ionNamespace()
	mc := NewMountClient(mt, Root)
	if errno := mc.Mkdir("/gpfs/data", 0755); errno != kernel.OK {
		t.Fatal(errno)
	}
	st, errno := mc.Stat("/gpfs/data")
	if errno != kernel.OK || st.Type != TypeDir {
		t.Fatalf("stat: %v %v", errno, st.Type)
	}
	names, errno := mc.Readdir("/gpfs")
	if errno != kernel.OK || len(names) != 1 || names[0] != "data" {
		t.Fatalf("readdir: %v %v", errno, names)
	}
	if _, errno := gpfs.Stat("/", "/data", Root); errno != kernel.OK {
		t.Fatal("mkdir landed on the wrong fs")
	}
}
