package fs

import "bgcnk/internal/kernel"

// OpenFile is an open file description: shared offset and flags, possibly
// referenced by several descriptors (dup).
type OpenFile struct {
	node   *inode
	Offset uint64
	Flags  uint64
	// Path is the resolved absolute path the description was opened by.
	// Checkpoint images record it so a restarted ioproxy can reopen the
	// file and seek back to the mirrored offset.
	Path string
	refs int
}

// Client is one process's view of a filesystem: its file-descriptor
// table, working directory and credentials. A CIOD ioproxy holds exactly
// one Client whose state mirrors the compute-node process (paper Section
// IV-A: "The ioproxy's filesystem state mirrors the CNK process's state
// (e.g., file seek offsets, current working directory, user/group
// permissions)").
type Client struct {
	FS   *FS
	Cred Cred
	cwd  string
	fds  []*OpenFile // index = fd; nil = closed
}

// MaxFDs bounds the per-process descriptor table.
const MaxFDs = 256

// NewClient returns a client rooted at "/" with the given credentials.
func NewClient(f *FS, c Cred) *Client {
	cl := &Client{FS: f, Cred: c, cwd: "/"}
	cl.fds = make([]*OpenFile, 0, 16)
	return cl
}

// Cwd returns the current working directory.
func (c *Client) Cwd() string { return c.cwd }

// Chdir changes the working directory.
func (c *Client) Chdir(path string) kernel.Errno {
	n, errno := c.FS.lookup(c.cwd, path, c.Cred, true)
	if errno != kernel.OK {
		return errno
	}
	if n.typ != TypeDir {
		return kernel.ENOTDIR
	}
	comps := splitPath(c.cwd, path)
	c.cwd = "/" + joinPath(comps)
	return kernel.OK
}

func joinPath(comps []string) string {
	out := ""
	for i, c := range comps {
		if i > 0 {
			out += "/"
		}
		out += c
	}
	return out
}

func (c *Client) allocFD(of *OpenFile) (int, kernel.Errno) {
	for i, f := range c.fds {
		if f == nil {
			c.fds[i] = of
			return i, kernel.OK
		}
	}
	if len(c.fds) >= MaxFDs {
		return -1, kernel.EMFILE
	}
	c.fds = append(c.fds, of)
	return len(c.fds) - 1, kernel.OK
}

func (c *Client) file(fd int) (*OpenFile, kernel.Errno) {
	if fd < 0 || fd >= len(c.fds) || c.fds[fd] == nil {
		return nil, kernel.EBADF
	}
	return c.fds[fd], kernel.OK
}

// Open opens (optionally creating) path and returns a descriptor.
func (c *Client) Open(path string, flags uint64, mode Mode) (int, kernel.Errno) {
	parent, name, n, errno := c.FS.resolve(c.cwd, path, c.Cred, true, 0)
	if errno != kernel.OK {
		return -1, errno
	}
	if n == nil {
		if flags&kernel.OCreat == 0 {
			return -1, kernel.ENOENT
		}
		if !access(parent, c.Cred, 2) {
			return -1, kernel.EACCES
		}
		n = c.FS.newInode(TypeFile, mode&0777, c.Cred)
		parent.entries[name] = n
		parent.mtime = c.FS.now()
	} else {
		if flags&kernel.OCreat != 0 && flags&kernel.OExcl != 0 {
			return -1, kernel.EEXIST
		}
		if n.typ == TypeDir && flags&3 != kernel.ORdonly {
			return -1, kernel.EISDIR
		}
	}
	var want Mode
	switch flags & 3 {
	case kernel.ORdonly:
		want = 4
	case kernel.OWronly:
		want = 2
	case kernel.ORdwr:
		want = 6
	}
	if !access(n, c.Cred, want) {
		return -1, kernel.EACCES
	}
	if flags&kernel.OTrunc != 0 && n.typ == TypeFile && flags&3 != kernel.ORdonly {
		truncate(n, 0)
		n.mtime = c.FS.now()
	}
	of := &OpenFile{node: n, Flags: flags, refs: 1,
		Path: "/" + joinPath(splitPath(c.cwd, path))}
	return c.allocFD(of)
}

// Close releases a descriptor.
func (c *Client) Close(fd int) kernel.Errno {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return errno
	}
	of.refs--
	c.fds[fd] = nil
	return kernel.OK
}

// Dup duplicates a descriptor (sharing the open file description, hence
// the offset — POSIX dup semantics).
func (c *Client) Dup(fd int) (int, kernel.Errno) {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return -1, errno
	}
	of.refs++
	return c.allocFD(of)
}

// Read reads up to len(buf) bytes at the descriptor's offset.
func (c *Client) Read(fd int, buf []byte) (int, kernel.Errno) {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	if of.Flags&3 == kernel.OWronly {
		return 0, kernel.EBADF
	}
	if of.node.typ == TypeDir {
		return 0, kernel.EISDIR
	}
	if of.Offset >= uint64(len(of.node.data)) {
		return 0, kernel.OK // EOF
	}
	n := copy(buf, of.node.data[of.Offset:])
	of.Offset += uint64(n)
	return n, kernel.OK
}

// Write writes buf at the descriptor's offset (or at EOF with O_APPEND).
func (c *Client) Write(fd int, buf []byte) (int, kernel.Errno) {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	if of.Flags&3 == kernel.ORdonly {
		return 0, kernel.EBADF
	}
	n := of.node
	if of.Flags&kernel.OAppend != 0 {
		of.Offset = uint64(len(n.data))
	}
	end := of.Offset + uint64(len(buf))
	if end > uint64(len(n.data)) {
		truncate(n, end)
	}
	copy(n.data[of.Offset:end], buf)
	of.Offset = end
	n.mtime = c.FS.now()
	return len(buf), kernel.OK
}

// FileInfo exposes a descriptor's identity to the I/O node's buffer
// cache: the inode number, the description's current offset and flags,
// and whether it names a regular file (only regular files are cacheable;
// everything else falls through to the direct path). Permission checks
// already happened at open time, so the cache may address the inode
// directly.
func (c *Client) FileInfo(fd int) (ino, offset, flags uint64, regular bool, errno kernel.Errno) {
	of, e := c.file(fd)
	if e != kernel.OK {
		return 0, 0, 0, false, e
	}
	return of.node.ino, of.Offset, of.Flags, of.node.typ == TypeFile, kernel.OK
}

// SetOffset stores the descriptor's offset after a cached read or write
// advanced it on the cache's side of the fence.
func (c *Client) SetOffset(fd int, off uint64) kernel.Errno {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return errno
	}
	of.Offset = off
	return kernel.OK
}

// Fsync validates the descriptor. The in-memory fs is always "stable
// storage"; when an ION buffer cache sits in front of it, the cache
// intercepts fsync to write back the file's dirty blocks first.
func (c *Client) Fsync(fd int) kernel.Errno {
	_, errno := c.file(fd)
	return errno
}

// Lseek repositions the descriptor's offset.
func (c *Client) Lseek(fd int, off int64, whence int) (uint64, kernel.Errno) {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return 0, errno
	}
	var base int64
	switch whence {
	case kernel.SeekSet:
		base = 0
	case kernel.SeekCur:
		base = int64(of.Offset)
	case kernel.SeekEnd:
		base = int64(len(of.node.data))
	default:
		return 0, kernel.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return 0, kernel.EINVAL
	}
	of.Offset = uint64(pos)
	return of.Offset, kernel.OK
}

// Fstat stats an open descriptor.
func (c *Client) Fstat(fd int) (Stat, kernel.Errno) {
	of, errno := c.file(fd)
	if errno != kernel.OK {
		return Stat{}, errno
	}
	return of.node.stat(), kernel.OK
}

// Stat stats a path relative to the client's cwd.
func (c *Client) Stat(path string) (Stat, kernel.Errno) {
	return c.FS.Stat(c.cwd, path, c.Cred)
}

// Unlink, Rename, Mkdir, Rmdir, Readdir, Truncate: path operations
// relative to the client's cwd and credentials.

// Unlink removes a file.
func (c *Client) Unlink(path string) kernel.Errno { return c.FS.Unlink(c.cwd, path, c.Cred) }

// Rename moves a file.
func (c *Client) Rename(o, n string) kernel.Errno { return c.FS.Rename(c.cwd, o, n, c.Cred) }

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, m Mode) kernel.Errno { return c.FS.Mkdir(c.cwd, path, m, c.Cred) }

// Rmdir removes a directory.
func (c *Client) Rmdir(path string) kernel.Errno { return c.FS.Rmdir(c.cwd, path, c.Cred) }

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]string, kernel.Errno) {
	return c.FS.Readdir(c.cwd, path, c.Cred)
}

// Truncate resizes a file by path.
func (c *Client) Truncate(path string, size uint64) kernel.Errno {
	return c.FS.Truncate(c.cwd, path, size, c.Cred)
}

// OpenFileState is one descriptor-table entry as a checkpoint records it:
// enough to reopen the file on restart and seek back to the mirrored
// offset. Dup'd descriptors are recorded (and restored) as independent
// descriptions; the shared-offset relationship is not preserved across a
// restart, matching what a path-based reopen can reconstruct.
type OpenFileState struct {
	FD     int
	Offset uint64
	Flags  uint64
	Path   string
}

// OpenFiles returns the live descriptor table in ascending-fd order.
func (c *Client) OpenFiles() []OpenFileState {
	var out []OpenFileState
	for fd, f := range c.fds {
		if f != nil {
			out = append(out, OpenFileState{FD: fd, Offset: f.Offset, Flags: f.Flags, Path: f.Path})
		}
	}
	return out
}

// RestoreFiles rebuilds the descriptor table from a checkpoint: each
// entry's path is reopened (create/truncate/excl bits stripped — the
// restore must attach to the file as it exists now, not recreate it) at
// the same descriptor number and the offset seeked back. Descriptors
// whose files no longer resolve are reported; the rest still restore.
func (c *Client) RestoreFiles(files []OpenFileState) kernel.Errno {
	for _, f := range c.fds {
		if f != nil {
			f.refs--
		}
	}
	c.fds = c.fds[:0]
	errno := kernel.OK
	for _, f := range files {
		if f.FD < 0 || f.FD >= MaxFDs {
			errno = kernel.EBADF
			continue
		}
		flags := f.Flags &^ (kernel.OCreat | kernel.OTrunc | kernel.OExcl)
		_, _, n, e := c.FS.resolve(c.cwd, f.Path, c.Cred, true, 0)
		if e != kernel.OK || n == nil {
			if errno == kernel.OK {
				errno = kernel.ENOENT
				if e != kernel.OK {
					errno = e
				}
			}
			continue
		}
		for len(c.fds) <= f.FD {
			c.fds = append(c.fds, nil)
		}
		c.fds[f.FD] = &OpenFile{node: n, Offset: f.Offset, Flags: flags, Path: f.Path, refs: 1}
	}
	return errno
}

// OpenCount returns the number of live descriptors (for leak checks).
func (c *Client) OpenCount() int {
	n := 0
	for _, f := range c.fds {
		if f != nil {
			n++
		}
	}
	return n
}
