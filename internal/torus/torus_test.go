package torus

import (
	"testing"

	"bgcnk/internal/hw"
	"bgcnk/internal/sim"
)

func twoNodeNet(t *testing.T) (*sim.Engine, *Interface, *Interface) {
	t.Helper()
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{2, 1, 1}))
	a := net.Attach(hw.NewChip(hw.ChipConfig{ID: 0}), Coord{0, 0, 0})
	b := net.Attach(hw.NewChip(hw.ChipConfig{ID: 1}), Coord{1, 0, 0})
	return eng, a, b
}

func TestHopsWraparound(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{8, 8, 8}))
	if h := net.Hops(Coord{0, 0, 0}, Coord{7, 0, 0}); h != 1 {
		t.Fatalf("wraparound hops = %d, want 1", h)
	}
	if h := net.Hops(Coord{0, 0, 0}, Coord{4, 4, 4}); h != 12 {
		t.Fatalf("hops = %d, want 12", h)
	}
	if h := net.Hops(Coord{1, 2, 3}, Coord{1, 2, 3}); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
}

func TestActiveMessageDelivery(t *testing.T) {
	eng, a, b := twoNodeNet(t)
	var got Packet
	eng.Go("recv", func(c *sim.Coro) {
		got = b.RecvMatch(c, func(p Packet) bool { return p.Tag == 9 })
	})
	eng.Go("send", func(c *sim.Coro) {
		a.SendPacket(b.Coord(), 9, 1, []byte("eager"))
	})
	eng.RunUntilIdle()
	if string(got.Payload) != "eager" || got.From != a.Coord() || got.Kind != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestOversizePacketPanics(t *testing.T) {
	_, a, b := twoNodeNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SendPacket(b.Coord(), 1, 0, make([]byte, PacketBytes+1))
}

func TestPutMovesBytes(t *testing.T) {
	eng, a, b := twoNodeNet(t)
	a.Chip().Mem.Write(0x1000, []byte("direct-put payload"))
	done := false
	eng.Go("put", func(c *sim.Coro) {
		a.Put(b.Coord(),
			[]PhysRange{{PA: 0x1000, Len: 18}},
			[]PhysRange{{PA: 0x8000, Len: 18}},
			func(error) { done = true })
	})
	eng.RunUntilIdle()
	if !done {
		t.Fatal("completion callback did not run")
	}
	buf := make([]byte, 18)
	b.Chip().Mem.Read(0x8000, buf)
	if string(buf) != "direct-put payload" {
		t.Fatalf("payload corrupted: %q", buf)
	}
}

func TestPutScatterGather(t *testing.T) {
	eng, a, b := twoNodeNet(t)
	a.Chip().Mem.Write(0x1000, []byte("AAAA"))
	a.Chip().Mem.Write(0x3000, []byte("BBBB"))
	eng.Go("put", func(c *sim.Coro) {
		a.Put(b.Coord(),
			[]PhysRange{{0x1000, 4}, {0x3000, 4}},
			[]PhysRange{{0x9000, 8}},
			nil)
	})
	eng.RunUntilIdle()
	buf := make([]byte, 8)
	b.Chip().Mem.Read(0x9000, buf)
	if string(buf) != "AAAABBBB" {
		t.Fatalf("gather: %q", buf)
	}
	if a.Descriptors != 2 {
		t.Fatalf("descriptors = %d, want 2 (one per source range)", a.Descriptors)
	}
}

func TestPutSizeMismatchPanics(t *testing.T) {
	_, a, b := twoNodeNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Put(b.Coord(), []PhysRange{{0, 4}}, []PhysRange{{0, 8}}, nil)
}

func TestGetFetchesRemote(t *testing.T) {
	eng, a, b := twoNodeNet(t)
	b.Chip().Mem.Write(0x2000, []byte("remote data!"))
	var doneAt sim.Cycles
	eng.Go("get", func(c *sim.Coro) {
		a.Get(b.Coord(), []PhysRange{{0x2000, 12}}, []PhysRange{{0x7000, 12}},
			func(error) { doneAt = eng.Now() })
	})
	eng.RunUntilIdle()
	buf := make([]byte, 12)
	a.Chip().Mem.Read(0x7000, buf)
	if string(buf) != "remote data!" {
		t.Fatalf("get: %q", buf)
	}
	if doneAt == 0 {
		t.Fatal("completion missing")
	}
}

func TestGetCostsMoreThanPut(t *testing.T) {
	// A get is a request + a put, so its completion time must exceed a
	// same-size put's (Table I: DCMF Get 1.6us vs Put 0.9us).
	eng, a, b := twoNodeNet(t)
	b.Chip().Mem.Write(0x2000, make([]byte, 64))
	a.Chip().Mem.Write(0x2000, make([]byte, 64))
	var putDone, getDone sim.Cycles
	eng.Go("put", func(c *sim.Coro) {
		a.Put(b.Coord(), []PhysRange{{0x2000, 64}}, []PhysRange{{0x9000, 64}},
			func(error) { putDone = eng.Now() })
	})
	eng.RunUntilIdle()
	eng.Go("get", func(c *sim.Coro) {
		a.Get(b.Coord(), []PhysRange{{0x2000, 64}}, []PhysRange{{0xA000, 64}},
			func(error) { getDone = eng.Now() - putDone })
	})
	eng.RunUntilIdle()
	if getDone <= putDone {
		t.Fatalf("get (%d) should cost more than put (%d)", getDone, putDone)
	}
}

func TestDescriptorOverheadVisible(t *testing.T) {
	// The same 64KB transfer split into 16 descriptors (FWK 4KB pages)
	// must finish later than as a single descriptor (CNK contiguous).
	run := func(ranges int) sim.Cycles {
		eng, a, b := twoNodeNet(t)
		total := uint64(64 << 10)
		var src []PhysRange
		per := total / uint64(ranges)
		for r := 0; r < ranges; r++ {
			src = append(src, PhysRange{PA: hw.PAddr(uint64(r) * per), Len: per})
		}
		var done sim.Cycles
		eng.Go("put", func(c *sim.Coro) {
			a.Put(b.Coord(), src, []PhysRange{{0, total}}, func(error) { done = eng.Now() })
		})
		eng.RunUntilIdle()
		return done
	}
	one := run(1)
	sixteen := run(16)
	if sixteen <= one {
		t.Fatalf("scatter (%d) should cost more than contiguous (%d)", sixteen, one)
	}
}

func TestLinkContentionBetweenTransfers(t *testing.T) {
	eng, a, b := twoNodeNet(t)
	var t1, t2 sim.Cycles
	eng.Go("puts", func(c *sim.Coro) {
		a.Put(b.Coord(), []PhysRange{{0, 32 << 10}}, []PhysRange{{0x10000, 32 << 10}}, func(error) { t1 = eng.Now() })
		a.Put(b.Coord(), []PhysRange{{0, 32 << 10}}, []PhysRange{{0x20000, 32 << 10}}, func(error) { t2 = eng.Now() })
	})
	eng.RunUntilIdle()
	ser := sim.Cycles(float64(32<<10) * 2.0)
	if t2-t1 < ser/2 {
		t.Fatalf("transfers did not serialize on the link: %d vs %d", t1, t2)
	}
}

func TestBrokenTorusUnitPanics(t *testing.T) {
	_, a, b := twoNodeNet(t)
	a.Chip().SetUnitEnabled(hw.UnitTorus, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic using broken torus")
		}
	}()
	a.SendPacket(b.Coord(), 1, 0, nil)
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{2, 1, 1}))
	net.Attach(hw.NewChip(hw.ChipConfig{ID: 0}), Coord{0, 0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Attach(hw.NewChip(hw.ChipConfig{ID: 1}), Coord{0, 0, 0})
}
