// Package torus models the Blue Gene/P 3-D torus network and its DMA
// engine. Two properties of the real machine matter to the paper and are
// preserved here:
//
//  1. Applications drive the DMA directly from user space under CNK, with
//     no per-message system call (Table I's sub-microsecond latencies).
//     The cost model therefore separates software overhead (charged by the
//     messaging library) from network cost (charged here).
//
//  2. A DMA descriptor covers one physically contiguous range. CNK's
//     static map turns any user buffer into a single descriptor; an FWK's
//     scattered 4KB pages need a descriptor per page, with per-descriptor
//     injection overhead — the mechanism behind Fig 8's bandwidth gap.
package torus

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/obs"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Coord is a 3-D torus coordinate.
type Coord [3]int

// Config is the torus cost model. Defaults approximate BG/P: 425 MB/s per
// link direction (2 cycles/byte at 850 MHz), ~100 ns per hop, and a
// per-descriptor DMA injection overhead.
type Config struct {
	Dims          Coord
	HopLatency    sim.Cycles
	CyclesPerByte float64
	PerPacket     sim.Cycles // 256B torus packet processing
	PerDescriptor sim.Cycles // DMA injection cost per descriptor
	RecvOverhead  sim.Cycles // reception-side DMA/counter cost
}

// PacketBytes is the torus packet payload size.
const PacketBytes = 256

// DefaultConfig returns a BG/P-like model for a dims-sized torus.
func DefaultConfig(dims Coord) Config {
	return Config{
		Dims:          dims,
		HopLatency:    85, // ~100ns
		CyclesPerByte: 2.0,
		PerPacket:     10,
		PerDescriptor: 170, // ~200ns injection FIFO work
		RecvOverhead:  100,
	}
}

// Network is the torus fabric: interfaces per node and directed-link
// serialization state.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	ifcs map[Coord]*Interface
	// busyUntil per directed link, keyed by (coord, dim, positive?).
	links map[linkKey]sim.Cycles
	// Hard-fault layer; nil until ArmFaults, and every code path below
	// runs the exact legacy sequence when it is nil.
	faults *faultState
	// obs, when non-nil, receives one msg span per delivered packet
	// (send to delivery); emitting charges no cycles.
	obs *obs.Recorder
}

// AttachObs wires the machine-wide span recorder (nil is a no-op
// recorder).
func (n *Network) AttachObs(r *obs.Recorder) { n.obs = r }

type linkKey struct {
	c   Coord
	dim int
	pos bool
}

// New builds a torus of the configured dimensions.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{eng: eng, cfg: cfg, ifcs: make(map[Coord]*Interface), links: make(map[linkKey]sim.Cycles)}
}

// Attach creates the interface for a chip at coord.
func (n *Network) Attach(chip *hw.Chip, coord Coord) *Interface {
	if _, dup := n.ifcs[coord]; dup {
		panic(fmt.Sprintf("torus: coordinate %v already attached", coord))
	}
	ifc := &Interface{net: n, chip: chip, coord: coord}
	n.ifcs[coord] = ifc
	return ifc
}

// At returns the interface at coord.
func (n *Network) At(coord Coord) *Interface {
	ifc, ok := n.ifcs[coord]
	if !ok {
		panic(fmt.Sprintf("torus: no interface at %v", coord))
	}
	return ifc
}

// Hops returns the dimension-ordered hop count between two coordinates
// with wraparound.
func (n *Network) Hops(a, b Coord) int {
	total := 0
	for d := 0; d < 3; d++ {
		dim := n.cfg.Dims[d]
		if dim <= 1 {
			continue
		}
		diff := a[d] - b[d]
		if diff < 0 {
			diff = -diff
		}
		if wrap := dim - diff; wrap < diff {
			diff = wrap
		}
		total += diff
	}
	return total
}

// reserve serializes n bytes onto a directed link and returns the cycle at
// which the tail leaves the link.
func (n *Network) reserve(k linkKey, bytes int, earliest sim.Cycles) sim.Cycles {
	packets := (bytes + PacketBytes - 1) / PacketBytes
	if packets == 0 {
		packets = 1
	}
	ser := sim.Cycles(float64(bytes)*n.cfg.CyclesPerByte) + sim.Cycles(packets)*n.cfg.PerPacket
	start := earliest
	if bu := n.links[k]; bu > start {
		start = bu
	}
	n.links[k] = start + ser
	return start + ser
}

// transferDone computes the arrival time of a transfer of size bytes from
// a to b, reserving the injection and reception links. First-hop direction
// determines the contended injection link.
func (n *Network) transferDone(a, b Coord, bytes int) sim.Cycles {
	now := n.eng.Now()
	dim, pos := n.firstHop(a, b)
	var tail sim.Cycles
	if dim < 0 { // self-send: no wire
		tail = now
	} else {
		tail = n.reserve(linkKey{a, dim, pos}, bytes, now)
		tail = n.reserve(linkKey{b, dim, !pos}, bytes, tail-reserveOverlap(bytes, n.cfg))
	}
	hops := n.Hops(a, b)
	return tail + sim.Cycles(hops)*n.cfg.HopLatency
}

// reserveOverlap lets the reception link overlap the injection link
// (cut-through routing): all but one packet's worth of time overlaps.
func reserveOverlap(bytes int, cfg Config) sim.Cycles {
	ser := sim.Cycles(float64(bytes) * cfg.CyclesPerByte)
	onePkt := sim.Cycles(float64(PacketBytes) * cfg.CyclesPerByte)
	if ser > onePkt {
		return ser - onePkt
	}
	return 0
}

func (n *Network) firstHop(a, b Coord) (int, bool) {
	for d := 0; d < 3; d++ {
		dim := n.cfg.Dims[d]
		if dim <= 1 || a[d] == b[d] {
			continue
		}
		fwd := (b[d] - a[d] + dim) % dim
		bwd := (a[d] - b[d] + dim) % dim
		return d, fwd <= bwd
	}
	return -1, false
}

// Packet is an active-message packet (eager data or protocol control).
type Packet struct {
	From    Coord
	Tag     uint32
	Kind    uint8
	Seq     uint64 // per-sender sequence number (reliable-delivery identity)
	Payload []byte
}

// Interface is one node's torus port plus DMA engine.
type Interface struct {
	net   *Network
	chip  *hw.Chip
	coord Coord
	seq   uint64 // last sequence number issued
	dead  bool   // interface killed by a NodeFault

	inbox   []Packet
	waiters []*sim.Coro

	PacketsSent uint64
	BytesPut    uint64
	Descriptors uint64
}

// Coord returns the interface's coordinate.
func (i *Interface) Coord() Coord { return i.coord }

// Chip returns the attached chip.
func (i *Interface) Chip() *hw.Chip { return i.chip }

// retransBackoff is the base sender backoff after a CRC-corrupted torus
// transfer; it doubles per consecutive corruption.
const retransBackoff = sim.Cycles(170)

// retransPenalty draws this transfer's seeded CRC corruptions (if the
// chip has a fault source attached) and returns the extra link time:
// each corrupted attempt re-serializes the transfer after an
// exponentially growing backoff, counted in the UPC unit.
func (i *Interface) retransPenalty(bytes int) sim.Cycles {
	f := i.chip.Faults
	if f == nil {
		return 0
	}
	n := f.LinkRetransmits("torus")
	if n == 0 {
		return 0
	}
	packets := (bytes + PacketBytes - 1) / PacketBytes
	if packets == 0 {
		packets = 1
	}
	ser := sim.Cycles(float64(bytes)*i.net.cfg.CyclesPerByte) + sim.Cycles(packets)*i.net.cfg.PerPacket
	var extra sim.Cycles
	for a := 0; a < n; a++ {
		extra += ser + (retransBackoff << a)
	}
	u := i.chip.UPC
	u.Add(upc.ChipScope, upc.LinkCRC, uint64(n))
	u.Add(upc.ChipScope, upc.LinkRetransmit, uint64(n))
	return extra
}

// chargeRetrans extends a transfer's link reservations by its drawn
// retransmission time: a corrupted attempt re-serializes on the same
// wires, so followers must see them busy for the extra cycles too, not
// just the arrival pushed out.
func (n *Network) chargeRetrans(a, b Coord, extra sim.Cycles) {
	if extra == 0 {
		return
	}
	dim, pos := n.firstHop(a, b)
	if dim < 0 {
		return
	}
	n.links[linkKey{a, dim, pos}] += extra
	n.links[linkKey{b, dim, !pos}] += extra
}

func (i *Interface) requireUnits() {
	if !i.chip.UnitEnabled(hw.UnitTorus) {
		panic(fmt.Sprintf("torus: torus unit broken on chip %d", i.chip.ID))
	}
	if !i.chip.UnitEnabled(hw.UnitDMA) {
		panic(fmt.Sprintf("torus: DMA unit broken on chip %d", i.chip.ID))
	}
}

// SendPacket injects an active-message packet toward dst; it is delivered
// to dst's inbox after network traversal. Non-blocking (memfifo
// injection); the caller charges its own software overhead.
func (i *Interface) SendPacket(dst Coord, tag uint32, kind uint8, payload []byte) {
	i.requireUnits()
	if len(payload) > PacketBytes {
		panic("torus: active-message payload exceeds one packet; use Put")
	}
	i.seq++
	p := Packet{From: i.coord, Tag: tag, Kind: kind, Seq: i.seq, Payload: append([]byte(nil), payload...)}
	i.PacketsSent++
	u := i.chip.UPC
	u.Inc(upc.ChipScope, upc.TorusPacket)
	u.Trace.Emit(upc.EvTorusPacket, upc.ChipScope, i.net.eng.Now(), uint64(tag))
	if i.net.faults != nil {
		target := i.net.At(dst)
		sendAt := i.net.eng.Now()
		node := i.chip.ID
		i.sendArmed(dst, len(payload), 0, func(err error) {
			if err == nil {
				// The armed path's delivery instant is only known here
				// (retransmits and detours moved it), so the span closes
				// at delivery.
				i.net.obs.Emit(obs.CatMsg, "torus:pkt", node, 0, sendAt, i.net.eng.Now(), uint64(len(p.Payload)))
				target.deliver(p)
			}
		})
		return
	}
	pen := i.retransPenalty(len(payload))
	done := i.net.transferDone(i.coord, dst, len(payload)) + pen
	i.net.chargeRetrans(i.coord, dst, pen)
	target := i.net.At(dst)
	i.net.obs.Emit(obs.CatMsg, "torus:pkt", i.chip.ID, 0, i.net.eng.Now(), done+i.net.cfg.RecvOverhead, uint64(len(payload)))
	i.net.eng.At(done+i.net.cfg.RecvOverhead, func() { target.deliver(p) })
}

func (i *Interface) deliver(p Packet) {
	i.inbox = append(i.inbox, p)
	for _, c := range i.waiters {
		c.Wake()
	}
}

// RecvMatch blocks until a packet satisfying pred arrives and returns it.
func (i *Interface) RecvMatch(c *sim.Coro, pred func(Packet) bool) Packet {
	for {
		for idx, p := range i.inbox {
			if pred(p) {
				i.inbox = append(i.inbox[:idx], i.inbox[idx+1:]...)
				return p
			}
		}
		i.waiters = append(i.waiters, c)
		c.Park(sim.Forever)
		for idx, w := range i.waiters {
			if w == c {
				i.waiters = append(i.waiters[:idx], i.waiters[idx+1:]...)
				break
			}
		}
	}
}

// RecvMatchErr is RecvMatch with delivery-failure semantics: on a
// network without hard faults armed it blocks exactly like RecvMatch,
// but on an armed network the wait is bounded by the end-to-end receive
// timeout and surfaces a typed *DeliveryError — instead of a coro parked
// forever — when the local interface dies or expected traffic never
// arrives (lost on a dead wire, sender dead, route gone).
func (i *Interface) RecvMatchErr(c *sim.Coro, pred func(Packet) bool) (Packet, error) {
	if i.net.faults == nil {
		return i.RecvMatch(c, pred), nil
	}
	f := i.net.faults
	deadline := i.net.eng.Now() + f.recvTimeout
	for {
		for idx, p := range i.inbox {
			if pred(p) {
				i.inbox = append(i.inbox[:idx], i.inbox[idx+1:]...)
				return p, nil
			}
		}
		if i.dead {
			i.chip.UPC.Inc(upc.ChipScope, upc.TorusE2ETimeout)
			return Packet{}, &DeliveryError{From: i.coord, To: i.coord, Reason: "local node dead"}
		}
		now := i.net.eng.Now()
		if now >= deadline {
			i.chip.UPC.Inc(upc.ChipScope, upc.TorusE2ETimeout)
			return Packet{}, &DeliveryError{From: i.coord, To: i.coord, Reason: "receive timed out waiting for delivery"}
		}
		i.waiters = append(i.waiters, c)
		c.Park(deadline - now)
		for idx, w := range i.waiters {
			if w == c {
				i.waiters = append(i.waiters[:idx], i.waiters[idx+1:]...)
				break
			}
		}
	}
}

// Poll returns a packet matching pred without blocking.
func (i *Interface) Poll(pred func(Packet) bool) (Packet, bool) {
	for idx, p := range i.inbox {
		if pred(p) {
			i.inbox = append(i.inbox[:idx], i.inbox[idx+1:]...)
			return p, true
		}
	}
	return Packet{}, false
}

// PhysRange mirrors mem.PhysRange at the hardware level.
type PhysRange struct {
	PA  hw.PAddr
	Len uint64
}

// Put performs a direct-put DMA: bytes from src physical ranges on this
// node are written to dst physical ranges on the remote node. onDone (if
// non-nil) runs when the transfer completes at the destination (the
// reception counter hitting zero), with a nil error — or, on an armed
// network, with a *DeliveryError when the transfer could not be
// delivered. The injection cost is charged per descriptor: one per
// source range.
func (i *Interface) Put(dst Coord, src, dstRanges []PhysRange, onDone func(error)) sim.Cycles {
	i.requireUnits()
	target := i.net.At(dst)
	var total uint64
	for _, r := range src {
		total += r.Len
	}
	var dtotal uint64
	for _, r := range dstRanges {
		dtotal += r.Len
	}
	if total != dtotal {
		panic(fmt.Sprintf("torus: put size mismatch %d vs %d", total, dtotal))
	}
	// Copy the bytes now (source buffer at injection time) and deliver at
	// the modelled completion time.
	data := make([]byte, 0, total)
	buf := make([]byte, 0)
	for _, r := range src {
		if uint64(cap(buf)) < r.Len {
			buf = make([]byte, r.Len)
		}
		b := buf[:r.Len]
		i.chip.Mem.Read(r.PA, b)
		data = append(data, b...)
	}
	descCost := sim.Cycles(uint64(len(src))) * i.net.cfg.PerDescriptor
	i.Descriptors += uint64(len(src))
	i.BytesPut += total
	u := i.chip.UPC
	u.Add(upc.ChipScope, upc.DMADescriptor, uint64(len(src)))
	u.Add(upc.ChipScope, upc.TorusBytes, total)
	u.Trace.Emit(upc.EvDMAInject, upc.ChipScope, i.net.eng.Now(), total)
	land := func() {
		off := uint64(0)
		for _, r := range dstRanges {
			target.chip.Mem.Write(r.PA, data[off:off+r.Len])
			off += r.Len
		}
		if onDone != nil {
			onDone(nil)
		}
	}
	if i.net.faults != nil {
		return i.sendArmed(dst, int(total), descCost, func(err error) {
			if err != nil {
				if onDone != nil {
					onDone(err)
				}
				return
			}
			land()
		})
	}
	pen := i.retransPenalty(int(total))
	done := i.net.transferDone(i.coord, dst, int(total)) + descCost +
		i.net.cfg.RecvOverhead + pen
	i.net.chargeRetrans(i.coord, dst, pen)
	i.net.eng.At(done, land)
	return done
}

// Get fetches bytes from remote physical ranges into local ranges: a
// request packet travels to the remote DMA, which responds with a put.
// onDone runs locally when the data has landed (nil error), or with a
// *DeliveryError when either leg of an armed transfer failed.
func (i *Interface) Get(dst Coord, remote, local []PhysRange, onDone func(error)) {
	i.requireUnits()
	target := i.net.At(dst)
	i.Descriptors++
	i.chip.UPC.Inc(upc.ChipScope, upc.DMADescriptor)
	i.chip.UPC.Trace.Emit(upc.EvDMAInject, upc.ChipScope, i.net.eng.Now(), 16)
	if i.net.faults != nil {
		// Reliable request leg; the data leg is the remote's armed Put,
		// which passes its own delivery error through onDone.
		i.sendArmed(dst, 16, 0, func(err error) {
			if err != nil {
				if onDone != nil {
					onDone(err)
				}
				return
			}
			target.Put(i.coord, remote, local, onDone)
		})
		return
	}
	pen := i.retransPenalty(16) // request descriptor packet
	reqDone := i.net.transferDone(i.coord, dst, 16) + pen
	i.net.chargeRetrans(i.coord, dst, pen)
	i.net.eng.At(reqDone+i.net.cfg.RecvOverhead, func() {
		target.Put(i.coord, remote, local, onDone)
	})
}

// Requeue returns a polled packet to the front of the inbox (used by
// protocol layers that peek to choose a receive path). Waiters are woken:
// the requeued packet may be exactly what a parked RecvMatch is matching
// on, and without the wake that coro would sleep forever.
func (i *Interface) Requeue(p Packet) {
	i.inbox = append([]Packet{p}, i.inbox...)
	for _, c := range i.waiters {
		c.Wake()
	}
}
