// Hard network faults: seeded link/node deaths, fault-region routing and
// end-to-end reliable delivery.
//
// The lessons-learned half of the paper is about RAS: on a real machine
// links and nodes die, and the network must either route around the
// damage or surface a clean partition-level failure to the control
// system. This file makes hard network failure a first-class,
// cycle-exactly-replayable event: a FaultPlan drawn from a dedicated RNG
// stream kills directed links and whole interfaces at drawn cycles, a
// per-network route table is recomputed deterministically on every
// failure, transfers crossing a dead wire are lost and retransmitted
// end-to-end with exponential backoff, and when no route survives the
// sender gets a typed DeliveryError instead of a silently hung coroutine.
//
// Everything here is gated on ArmFaults: a network that never arms hard
// faults runs the exact legacy code path, event for event.
package torus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// ErrUnroutable is wrapped by DeliveryError when no path survives the
// fault set between two live endpoints; test with errors.Is.
var ErrUnroutable = errors.New("torus: no route survives the fault set")

// DeliveryError is the typed failure a reliable transfer surfaces into
// the messaging layers (dcmf, collective, barrier) instead of hanging a
// parked coroutine.
type DeliveryError struct {
	From, To   Coord
	Retries    int    // retransmit attempts consumed before giving up
	Reason     string // human-readable cause
	Unroutable bool   // no surviving route (wraps ErrUnroutable)
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("torus: delivery %v -> %v failed after %d retries: %s",
		e.From, e.To, e.Retries, e.Reason)
}

// Unwrap lets errors.Is(err, ErrUnroutable) see through a routing death.
func (e *DeliveryError) Unwrap() error {
	if e.Unroutable {
		return ErrUnroutable
	}
	return nil
}

// LinkFault kills the directed link leaving C along dimension Dim
// (positive or negative direction) at cycle At.
type LinkFault struct {
	C   Coord
	Dim int
	Pos bool
	At  sim.Cycles
}

// NodeFault kills the whole interface at C — every link it owns — at
// cycle At.
type NodeFault struct {
	C  Coord
	At sim.Cycles
}

// FaultPlan is a drawn schedule of hard network faults. Plans are values:
// two machines armed with equal plans fail identically.
type FaultPlan struct {
	Links []LinkFault
	Nodes []NodeFault
}

// Empty reports whether the plan kills nothing.
func (p *FaultPlan) Empty() bool { return p == nil || (len(p.Links) == 0 && len(p.Nodes) == 0) }

func coordLess(a, b Coord) bool {
	for d := 0; d < 3; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

func linkFaultLess(a, b LinkFault) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.C != b.C {
		return coordLess(a.C, b.C)
	}
	if a.Dim != b.Dim {
		return a.Dim < b.Dim
	}
	return a.Pos && !b.Pos
}

func nodeFaultLess(a, b NodeFault) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return coordLess(a.C, b.C)
}

// enumCoords lists every coordinate of a dims-sized torus in x,y,z
// lexicographic order.
// EnumCoords lists every coordinate of a dims-shaped torus in canonical
// row-major order (x outermost) — the rank-to-coordinate mapping the
// machine layer uses for non-ring topologies.
func EnumCoords(dims Coord) []Coord { return enumCoords(dims) }

func enumCoords(dims Coord) []Coord {
	var out []Coord
	for x := 0; x < max1(dims[0]); x++ {
		for y := 0; y < max1(dims[1]); y++ {
			for z := 0; z < max1(dims[2]); z++ {
				out = append(out, Coord{x, y, z})
			}
		}
	}
	return out
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// step returns the neighbor of c one hop along dim in the given
// direction, with wraparound.
func step(c Coord, dim int, pos bool, dims Coord) Coord {
	n := dims[dim]
	if pos {
		c[dim] = (c[dim] + 1) % n
	} else {
		c[dim] = (c[dim] - 1 + n) % n
	}
	return c
}

// DrawFaultPlan draws nLinks directed-link deaths and nNodes node deaths
// (without replacement) with death cycles uniform in (0, window], purely
// from rng — a pure function of (rng seed, dims, counts, window), so a
// plan replays bit-identically. At least one node always survives.
func DrawFaultPlan(rng *sim.RNG, dims Coord, nLinks, nNodes int, window sim.Cycles) *FaultPlan {
	if window <= 0 {
		window = 1
	}
	p := &FaultPlan{}
	coords := enumCoords(dims)

	var links []LinkFault
	for _, c := range coords {
		for d := 0; d < 3; d++ {
			if dims[d] <= 1 {
				continue
			}
			links = append(links, LinkFault{C: c, Dim: d, Pos: true})
			links = append(links, LinkFault{C: c, Dim: d, Pos: false})
		}
	}
	if nLinks > len(links) {
		nLinks = len(links)
	}
	// Partial Fisher-Yates: the first nLinks entries become the sample.
	for i := 0; i < nLinks; i++ {
		j := i + rng.Intn(len(links)-i)
		links[i], links[j] = links[j], links[i]
		links[i].At = 1 + rng.Cycles(window)
		p.Links = append(p.Links, links[i])
	}

	if nNodes >= len(coords) {
		nNodes = len(coords) - 1 // the machine keeps at least one survivor
	}
	nodes := append([]Coord(nil), coords...)
	for i := 0; i < nNodes; i++ {
		j := i + rng.Intn(len(nodes)-i)
		nodes[i], nodes[j] = nodes[j], nodes[i]
		p.Nodes = append(p.Nodes, NodeFault{C: nodes[i], At: 1 + rng.Cycles(window)})
	}

	sort.Slice(p.Links, func(i, j int) bool { return linkFaultLess(p.Links[i], p.Links[j]) })
	sort.Slice(p.Nodes, func(i, j int) bool { return nodeFaultLess(p.Nodes[i], p.Nodes[j]) })
	return p
}

// ---- fault-plan codec ----
//
// Versioned canonical binary form, fuzzed (FuzzFaultPlan): any bytes
// Unmarshal accepts must re-Marshal to exactly the input.

var faultPlanMagic = [4]byte{'T', 'N', 'F', '1'}

// maxPlanEntries bounds decoded entry counts so corrupt input cannot ask
// for gigabytes.
const maxPlanEntries = 1 << 16

// maxCoordVal bounds coordinates in the wire form (no real torus
// dimension approaches it).
const maxCoordVal = 1 << 20

// Marshal encodes the plan in its canonical wire form (entries sorted by
// death cycle, then coordinate/dimension/direction).
func (p *FaultPlan) Marshal() []byte {
	links := append([]LinkFault(nil), p.Links...)
	nodes := append([]NodeFault(nil), p.Nodes...)
	sort.Slice(links, func(i, j int) bool { return linkFaultLess(links[i], links[j]) })
	sort.Slice(nodes, func(i, j int) bool { return nodeFaultLess(nodes[i], nodes[j]) })

	b := make([]byte, 0, 12+len(links)*22+len(nodes)*20)
	b = append(b, faultPlanMagic[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(links)))
	for _, lf := range links {
		for d := 0; d < 3; d++ {
			b = binary.BigEndian.AppendUint32(b, uint32(lf.C[d]))
		}
		b = append(b, byte(lf.Dim))
		if lf.Pos {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, uint64(lf.At))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(nodes)))
	for _, nf := range nodes {
		for d := 0; d < 3; d++ {
			b = binary.BigEndian.AppendUint32(b, uint32(nf.C[d]))
		}
		b = binary.BigEndian.AppendUint64(b, uint64(nf.At))
	}
	return b
}

type planReader struct {
	b   []byte
	off int
	err error
}

func (r *planReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = errors.New("torus: truncated fault plan")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *planReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = errors.New("torus: truncated fault plan")
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *planReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.err = errors.New("torus: truncated fault plan")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *planReader) coord() Coord {
	var c Coord
	for d := 0; d < 3; d++ {
		v := r.u32()
		if r.err == nil && v >= maxCoordVal {
			r.err = fmt.Errorf("torus: fault-plan coordinate %d out of range", v)
		}
		c[d] = int(v)
	}
	return c
}

// UnmarshalFaultPlan decodes a canonical fault-plan wire image, strictly
// rejecting truncation, trailing bytes, out-of-range fields and
// non-canonical ordering.
func UnmarshalFaultPlan(b []byte) (*FaultPlan, error) {
	if len(b) < 4 || [4]byte(b[:4]) != faultPlanMagic {
		return nil, errors.New("torus: bad fault-plan magic")
	}
	r := &planReader{b: b, off: 4}
	p := &FaultPlan{}
	nl := r.u32()
	if r.err == nil && nl > maxPlanEntries {
		return nil, fmt.Errorf("torus: fault plan claims %d link faults", nl)
	}
	for i := uint32(0); i < nl && r.err == nil; i++ {
		lf := LinkFault{C: r.coord()}
		dim := r.u8()
		pos := r.u8()
		lf.At = sim.Cycles(r.u64())
		if r.err != nil {
			break
		}
		if dim > 2 || pos > 1 {
			return nil, errors.New("torus: fault-plan link field out of range")
		}
		if lf.At < 1 {
			return nil, errors.New("torus: fault-plan death cycle must be positive")
		}
		lf.Dim, lf.Pos = int(dim), pos == 1
		if n := len(p.Links); n > 0 && !linkFaultLess(p.Links[n-1], lf) {
			return nil, errors.New("torus: fault-plan links not in canonical order")
		}
		p.Links = append(p.Links, lf)
	}
	nn := r.u32()
	if r.err == nil && nn > maxPlanEntries {
		return nil, fmt.Errorf("torus: fault plan claims %d node faults", nn)
	}
	for i := uint32(0); i < nn && r.err == nil; i++ {
		nf := NodeFault{C: r.coord(), At: sim.Cycles(r.u64())}
		if r.err != nil {
			break
		}
		if nf.At < 1 {
			return nil, errors.New("torus: fault-plan death cycle must be positive")
		}
		if n := len(p.Nodes); n > 0 && !nodeFaultLess(p.Nodes[n-1], nf) {
			return nil, errors.New("torus: fault-plan nodes not in canonical order")
		}
		p.Nodes = append(p.Nodes, nf)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, errors.New("torus: trailing bytes after fault plan")
	}
	return p, nil
}

// ---- route table ----

// Route is one surviving source→destination path: the successive
// coordinates after Src, ending at Dst.
type Route struct {
	Src, Dst Coord
	Hops     []Coord
}

// RouteTable is the per-network routing state recomputed deterministically
// on every failure event: for every ordered pair of coordinates with a
// surviving path, the shortest detour (BFS over healthy directed links,
// dimensions ascending, positive direction first — a fixed exploration
// order, so the table is a pure function of the dead set).
type RouteTable struct {
	Dims   Coord
	Epoch  uint32
	Routes []Route // sorted by (Src, Dst) lexicographic
}

// BuildRouteTable computes the all-pairs table over links/nodes the
// callbacks report alive.
func BuildRouteTable(dims Coord, epoch uint32, linkAlive func(linkKey) bool, nodeAlive func(Coord) bool) *RouteTable {
	rt := &RouteTable{Dims: dims, Epoch: epoch}
	coords := enumCoords(dims)
	for _, src := range coords {
		if !nodeAlive(src) {
			continue
		}
		parent := map[Coord]Coord{src: src}
		queue := []Coord{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for d := 0; d < 3; d++ {
				if dims[d] <= 1 {
					continue
				}
				for _, pos := range [2]bool{true, false} {
					k := linkKey{u, d, pos}
					if !linkAlive(k) {
						continue
					}
					v := step(u, d, pos, dims)
					if !nodeAlive(v) {
						continue
					}
					if _, seen := parent[v]; seen {
						continue
					}
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for _, dst := range coords {
			if dst == src {
				continue
			}
			if _, ok := parent[dst]; !ok {
				continue
			}
			var rev []Coord
			for c := dst; c != src; c = parent[c] {
				rev = append(rev, c)
			}
			hops := make([]Coord, len(rev))
			for i, c := range rev {
				hops[len(rev)-1-i] = c
			}
			rt.Routes = append(rt.Routes, Route{Src: src, Dst: dst, Hops: hops})
		}
	}
	return rt
}

// ---- route-table codec ----

var routeTableMagic = [4]byte{'T', 'R', 'T', '1'}

// Marshal encodes the table in canonical wire form.
func (rt *RouteTable) Marshal() []byte {
	b := append([]byte(nil), routeTableMagic[:]...)
	for d := 0; d < 3; d++ {
		b = binary.BigEndian.AppendUint32(b, uint32(rt.Dims[d]))
	}
	b = binary.BigEndian.AppendUint32(b, rt.Epoch)
	b = binary.BigEndian.AppendUint32(b, uint32(len(rt.Routes)))
	for _, r := range rt.Routes {
		for d := 0; d < 3; d++ {
			b = binary.BigEndian.AppendUint32(b, uint32(r.Src[d]))
		}
		for d := 0; d < 3; d++ {
			b = binary.BigEndian.AppendUint32(b, uint32(r.Dst[d]))
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Hops)))
		for _, h := range r.Hops {
			for d := 0; d < 3; d++ {
				b = binary.BigEndian.AppendUint32(b, uint32(h[d]))
			}
		}
	}
	return b
}

// routeLess orders routes by (Src, Dst) lexicographic.
func routeLess(a, b Route) bool {
	if a.Src != b.Src {
		return coordLess(a.Src, b.Src)
	}
	return coordLess(a.Dst, b.Dst)
}

// UnmarshalRouteTable decodes a canonical route-table wire image. Beyond
// framing, it validates the semantic invariants: coordinates in bounds,
// routes sorted strictly by (src, dst), and every path a chain of unit
// torus steps from src to dst.
func UnmarshalRouteTable(b []byte) (*RouteTable, error) {
	if len(b) < 4 || [4]byte(b[:4]) != routeTableMagic {
		return nil, errors.New("torus: bad route-table magic")
	}
	r := &planReader{b: b, off: 4}
	rt := &RouteTable{}
	for d := 0; d < 3; d++ {
		v := r.u32()
		if r.err == nil && (v < 1 || v >= maxCoordVal) {
			return nil, errors.New("torus: route-table dims out of range")
		}
		rt.Dims[d] = int(v)
	}
	rt.Epoch = r.u32()
	nr := r.u32()
	if r.err == nil && nr > maxPlanEntries {
		return nil, fmt.Errorf("torus: route table claims %d routes", nr)
	}
	inBounds := func(c Coord) bool {
		for d := 0; d < 3; d++ {
			if c[d] < 0 || c[d] >= max1(rt.Dims[d]) {
				return false
			}
		}
		return true
	}
	for i := uint32(0); i < nr && r.err == nil; i++ {
		rte := Route{Src: r.coord(), Dst: r.coord()}
		nh := r.u32()
		if r.err != nil {
			break
		}
		if nh < 1 || nh > maxPlanEntries {
			return nil, errors.New("torus: route hop count out of range")
		}
		for h := uint32(0); h < nh && r.err == nil; h++ {
			rte.Hops = append(rte.Hops, r.coord())
		}
		if r.err != nil {
			break
		}
		if !inBounds(rte.Src) || !inBounds(rte.Dst) || rte.Src == rte.Dst {
			return nil, errors.New("torus: route endpoints invalid")
		}
		cur := rte.Src
		for _, h := range rte.Hops {
			if !inBounds(h) || !unitStep(cur, h, rt.Dims) {
				return nil, errors.New("torus: route hop is not a unit torus step")
			}
			cur = h
		}
		if cur != rte.Dst {
			return nil, errors.New("torus: route does not end at its destination")
		}
		if n := len(rt.Routes); n > 0 && !routeLess(rt.Routes[n-1], rte) {
			return nil, errors.New("torus: routes not in canonical order")
		}
		rt.Routes = append(rt.Routes, rte)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, errors.New("torus: trailing bytes after route table")
	}
	return rt, nil
}

// unitStep reports whether b is exactly one torus hop from a.
func unitStep(a, b Coord, dims Coord) bool {
	diff := -1
	for d := 0; d < 3; d++ {
		if a[d] == b[d] {
			continue
		}
		if diff >= 0 || dims[d] <= 1 {
			return false
		}
		n := dims[d]
		if b[d] != (a[d]+1)%n && b[d] != (a[d]-1+n)%n {
			return false
		}
		diff = d
	}
	return diff >= 0
}

// ---- armed fault state ----

// End-to-end reliable-delivery parameters.
const (
	// maxE2ERetries bounds retransmit attempts per transfer.
	maxE2ERetries = 5
	// e2eBackoff is the base retransmit delay, doubling per attempt.
	e2eBackoff = sim.Cycles(2_000)
)

// DefaultE2ERecvTimeout is how long an armed receiver waits for expected
// traffic before surfacing a DeliveryError: generous against any healthy
// wait in our workloads, far below the run limits a silent hang would eat.
var DefaultE2ERecvTimeout = sim.FromSeconds(0.05)

type faultState struct {
	resilient   bool
	onNodeDead  func(Coord)
	recvTimeout sim.Cycles

	deadLinks map[linkKey]sim.Cycles // death cycle per dead directed link
	deadNodes map[Coord]sim.Cycles
	epoch     uint32
	routes    *RouteTable
	paths     map[[2]Coord][]linkKey // resilient next-path cache, rebuilt per epoch
}

// ArmFaults arms the hard-fault layer: the plan's deaths are scheduled as
// engine events, the route table is built, and (with resilient true)
// transfers detour around dead links and retransmit lost deliveries.
// With resilient false routing stays static dimension-ordered and lost
// packets stay lost — the degrade experiment's baseline. onNodeDead (may
// be nil) runs at each node death, after the RAS event is logged.
func (n *Network) ArmFaults(plan *FaultPlan, resilient bool, onNodeDead func(Coord)) {
	if n.faults != nil {
		panic("torus: hard faults armed twice")
	}
	f := &faultState{
		resilient:   resilient,
		onNodeDead:  onNodeDead,
		recvTimeout: DefaultE2ERecvTimeout,
		deadLinks:   make(map[linkKey]sim.Cycles),
		deadNodes:   make(map[Coord]sim.Cycles),
	}
	n.faults = f
	f.recompute(n)
	for _, lf := range plan.Links {
		k := linkKey{lf.C, lf.Dim, lf.Pos}
		n.eng.At(lf.At, func() { n.killLink(k) })
	}
	for _, nf := range plan.Nodes {
		c := nf.C
		n.eng.At(nf.At, func() { n.killNode(c) })
	}
}

// FaultsArmed reports whether the hard-fault layer is active.
func (n *Network) FaultsArmed() bool { return n.faults != nil }

// SetE2ERecvTimeout overrides the armed receiver timeout (tests).
func (n *Network) SetE2ERecvTimeout(d sim.Cycles) {
	if n.faults != nil {
		n.faults.recvTimeout = d
	}
}

// RouteEpoch returns the current route-table epoch (0 when unarmed).
func (n *Network) RouteEpoch() uint32 {
	if n.faults == nil {
		return 0
	}
	return n.faults.epoch
}

// Routes returns the current route table (nil when unarmed).
func (n *Network) Routes() *RouteTable {
	if n.faults == nil {
		return nil
	}
	return n.faults.routes
}

// DeadLinks counts directed links currently dead (node deaths included).
func (n *Network) DeadLinks() int {
	if n.faults == nil {
		return 0
	}
	return len(n.faults.deadLinks)
}

func (f *faultState) linkAlive(k linkKey) bool {
	if _, dead := f.deadLinks[k]; dead {
		return false
	}
	return true
}

func (f *faultState) nodeAlive(c Coord) bool {
	_, dead := f.deadNodes[c]
	return !dead
}

// recompute rebuilds the route table and path cache — the deterministic
// per-failure recomputation the paper's fault-region routing requires.
func (f *faultState) recompute(n *Network) {
	f.epoch++
	f.routes = BuildRouteTable(n.cfg.Dims, f.epoch, f.linkAlive, f.nodeAlive)
	f.paths = make(map[[2]Coord][]linkKey, len(f.routes.Routes))
	for _, r := range f.routes.Routes {
		f.paths[[2]Coord{r.Src, r.Dst}] = coordsToLinks(r.Src, r.Hops, n.cfg.Dims, f.linkAlive)
	}
}

// coordsToLinks converts a coordinate path into the directed links it
// crosses. On a size-2 dimension both wires connect the same coordinate
// pair, so the coordinate hop alone cannot name the wire; alive (may be
// nil) resolves the ambiguity toward a live link, matching the wire the
// route BFS actually traversed.
func coordsToLinks(src Coord, hops []Coord, dims Coord, alive func(linkKey) bool) []linkKey {
	out := make([]linkKey, 0, len(hops))
	cur := src
	for _, h := range hops {
		for d := 0; d < 3; d++ {
			if cur[d] == h[d] {
				continue
			}
			pos := h[d] == (cur[d]+1)%dims[d]
			if dims[d] == 2 && alive != nil && !alive(linkKey{cur, d, pos}) {
				pos = !pos
			}
			out = append(out, linkKey{cur, d, pos})
			break
		}
		cur = h
	}
	return out
}

// killLink marks one directed link dead: RAS-logged against the owning
// node, counted in its UPC unit, and the route table recomputed.
func (n *Network) killLink(k linkKey) {
	f := n.faults
	if _, dead := f.deadLinks[k]; dead {
		return
	}
	f.deadLinks[k] = n.eng.Now()
	dir := "-"
	if k.pos {
		dir = "+"
	}
	if ifc, ok := n.ifcs[k.c]; ok {
		ifc.chip.UPC.Inc(upc.ChipScope, upc.TorusLinkDead)
		if ifc.chip.Faults != nil {
			ifc.chip.Faults.Report(ras.LinkFail, "torus",
				fmt.Sprintf("directed link %v dim %d%s died", k.c, k.dim, dir))
		}
	}
	f.recompute(n)
}

// killNode marks a whole interface dead: every link it owns dies with it,
// the event is RAS-logged, blocked receivers are woken so they surface
// errors instead of sleeping forever, and onNodeDead runs last (the
// machine layer uses it to kill the job partition-wide).
func (n *Network) killNode(c Coord) {
	f := n.faults
	if _, dead := f.deadNodes[c]; dead {
		return
	}
	now := n.eng.Now()
	f.deadNodes[c] = now
	ifc := n.ifcs[c]
	for d := 0; d < 3; d++ {
		if n.cfg.Dims[d] <= 1 {
			continue
		}
		for _, pos := range [2]bool{true, false} {
			k := linkKey{c, d, pos}
			if _, dead := f.deadLinks[k]; !dead {
				f.deadLinks[k] = now
				if ifc != nil {
					ifc.chip.UPC.Inc(upc.ChipScope, upc.TorusLinkDead)
				}
			}
		}
	}
	if ifc != nil {
		ifc.dead = true
		if ifc.chip.Faults != nil {
			ifc.chip.Faults.Report(ras.NodeFail, "torus",
				fmt.Sprintf("node %v torus interface died with all its links", c))
		}
	}
	f.recompute(n)
	if ifc != nil {
		for _, w := range ifc.waiters {
			w.Wake()
		}
	}
	if f.onNodeDead != nil {
		f.onNodeDead(c)
	}
}

// ValidateRoutable verifies every pair of live attached interfaces can
// still reach each other over surviving links — the boot-time partition
// wiring validation. Returns an error wrapping ErrUnroutable naming the
// first unreachable pair.
func (n *Network) ValidateRoutable() error {
	f := n.faults
	if f == nil {
		return nil
	}
	coords := make([]Coord, 0, len(n.ifcs))
	for c := range n.ifcs {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool { return coordLess(coords[i], coords[j]) })
	for _, a := range coords {
		if !f.nodeAlive(a) {
			continue
		}
		for _, b := range coords {
			if a == b || !f.nodeAlive(b) {
				continue
			}
			if _, ok := f.paths[[2]Coord{a, b}]; !ok {
				return fmt.Errorf("torus: partition wiring %v -> %v: %w", a, b, ErrUnroutable)
			}
		}
	}
	return nil
}

// ValidatePlanRoutable verifies that even after every death in plan has
// landed, the surviving attached interfaces can all still reach each
// other. This is the boot-time partition wiring validation: a seeded
// fault schedule is part of the partition's configuration, and a
// topology it will disconnect must fail fast at boot instead of
// stranding a job mid-run.
func (n *Network) ValidatePlanRoutable(plan *FaultPlan) error {
	deadL := make(map[linkKey]bool, len(plan.Links))
	deadN := make(map[Coord]bool, len(plan.Nodes))
	for _, lf := range plan.Links {
		deadL[linkKey{lf.C, lf.Dim, lf.Pos}] = true
	}
	for _, nf := range plan.Nodes {
		deadN[nf.C] = true
	}
	rt := BuildRouteTable(n.cfg.Dims, 0,
		func(k linkKey) bool { return !deadL[k] },
		func(c Coord) bool { return !deadN[c] })
	ok := make(map[[2]Coord]bool, len(rt.Routes))
	for _, r := range rt.Routes {
		ok[[2]Coord{r.Src, r.Dst}] = true
	}
	coords := make([]Coord, 0, len(n.ifcs))
	for c := range n.ifcs {
		if !deadN[c] {
			coords = append(coords, c)
		}
	}
	sort.Slice(coords, func(i, j int) bool { return coordLess(coords[i], coords[j]) })
	for _, a := range coords {
		for _, b := range coords {
			if a == b {
				continue
			}
			if !ok[[2]Coord{a, b}] {
				return fmt.Errorf("torus: partition wiring %v -> %v after planned faults: %w", a, b, ErrUnroutable)
			}
		}
	}
	return nil
}

// legacyPath is the static dimension-ordered minimal route, dead links
// ignored — what a torus without fault-region routing injects into. Used
// by the resilience-off arm so its losses are the unmitigated baseline.
func legacyPath(a, b Coord, dims Coord) []linkKey {
	var out []linkKey
	cur := a
	for d := 0; d < 3; d++ {
		n := dims[d]
		if n <= 1 || cur[d] == b[d] {
			continue
		}
		fwd := (b[d] - cur[d] + n) % n
		bwd := (cur[d] - b[d] + n) % n
		pos := fwd <= bwd
		steps := fwd
		if !pos {
			steps = bwd
		}
		for s := 0; s < steps; s++ {
			out = append(out, linkKey{cur, d, pos})
			cur = step(cur, d, pos, dims)
		}
	}
	return out
}

// path returns the links a transfer a→b crosses under the current fault
// state: the recomputed detour route when resilient, the static
// dimension-ordered route when not. nil means unroutable (resilient only).
func (f *faultState) path(a, b Coord, dims Coord) []linkKey {
	if !f.resilient {
		return legacyPath(a, b, dims)
	}
	return f.paths[[2]Coord{a, b}]
}

// lost reports whether a transfer over path, arriving at done, crossed a
// link (or reached a destination) that died before the arrival.
func (f *faultState) lost(path []linkKey, dst Coord, done sim.Cycles) bool {
	for _, k := range path {
		if at, dead := f.deadLinks[k]; dead && at < done {
			return true
		}
	}
	if at, dead := f.deadNodes[dst]; dead && at < done {
		return true
	}
	return false
}

// routedDone is transferDone for an armed network: the route comes from
// the fault state, detour links are reserved for contention and the
// extra hops charged at HopLatency. Returns the tail-arrival time, the
// links crossed (for in-flight loss checks) and the extra hop count.
func (n *Network) routedDone(a, b Coord, bytes int) (done sim.Cycles, path []linkKey, extraHops int, err error) {
	now := n.eng.Now()
	f := n.faults
	if a == b {
		return now, nil, 0, nil
	}
	path = f.path(a, b, n.cfg.Dims)
	if path == nil {
		return 0, nil, 0, &DeliveryError{From: a, To: b, Unroutable: true, Reason: "no surviving route"}
	}
	min := n.Hops(a, b)
	L := len(path)
	tail := n.reserve(path[0], bytes, now)
	if L > min {
		// Detouring: the extra wires are real contended links, charged like
		// any other reservation (cut-through overlapped).
		for _, k := range path[1 : L-1] {
			tail = n.reserve(k, bytes, tail-reserveOverlap(bytes, n.cfg))
		}
		extraHops = L - min
	}
	if L > 1 {
		// Reception port at b, mirroring the legacy model: keyed as b's
		// reverse direction of the final hop.
		last := path[L-1]
		tail = n.reserve(linkKey{b, last.dim, !last.pos}, bytes, tail-reserveOverlap(bytes, n.cfg))
	}
	return tail + sim.Cycles(L)*n.cfg.HopLatency, path, extraHops, nil
}

// sendArmed drives one end-to-end reliable transfer on an armed network:
// sequence the attempt, route it, detect in-flight loss at the would-be
// arrival, retransmit with exponential backoff over a freshly recomputed
// route, and surface a typed DeliveryError when delivery is impossible.
// complete runs exactly once — at the arrival instant with nil, or at
// abandonment with the error. extraCost is per-attempt injection overhead
// (DMA descriptors). Returns the first attempt's arrival estimate.
func (i *Interface) sendArmed(dst Coord, bytes int, extraCost sim.Cycles, complete func(error)) sim.Cycles {
	f := i.net.faults
	u := i.chip.UPC
	first := sim.Cycles(0)
	var attempt func(try int)
	attempt = func(try int) {
		if !f.nodeAlive(i.coord) {
			u.Inc(upc.ChipScope, upc.TorusE2ETimeout)
			complete(&DeliveryError{From: i.coord, To: dst, Retries: try, Reason: "local node dead"})
			return
		}
		done, path, extra, err := i.net.routedDone(i.coord, dst, bytes)
		if err != nil {
			u.Inc(upc.ChipScope, upc.TorusE2ETimeout)
			if de, ok := err.(*DeliveryError); ok {
				de.Retries = try
			}
			complete(err)
			return
		}
		if extra > 0 {
			u.Add(upc.ChipScope, upc.TorusRouteDetour, uint64(extra))
		}
		if pen := i.retransPenalty(bytes); pen > 0 {
			// CRC retransmits re-serialize on the injection wire: charge the
			// link reservation too, not just the arrival.
			if len(path) > 0 {
				i.net.links[path[0]] += pen
			}
			done += pen
		}
		arrival := done + extraCost + i.net.cfg.RecvOverhead
		if try == 0 {
			first = arrival
		}
		i.net.eng.At(arrival, func() {
			if !f.lost(path, dst, arrival) {
				complete(nil)
				return
			}
			if f.resilient && try < maxE2ERetries {
				u.Inc(upc.ChipScope, upc.TorusE2ERetry)
				i.net.eng.After(e2eBackoff<<uint(try), func() { attempt(try + 1) })
				return
			}
			u.Inc(upc.ChipScope, upc.TorusE2ETimeout)
			complete(&DeliveryError{From: i.coord, To: dst, Retries: try, Reason: "delivery lost on dead path"})
		})
	}
	attempt(0)
	return first
}
