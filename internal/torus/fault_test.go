package torus

import (
	"bytes"
	"errors"
	"testing"

	"bgcnk/internal/hw"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// propDims is the asymmetric-dimension battery for the routing property
// tests, including degenerate dims <= 1.
var propDims = []Coord{
	{8, 1, 1}, {5, 3, 1}, {4, 4, 2}, {1, 1, 7}, {2, 2, 2}, {3, 1, 4}, {1, 1, 1},
}

func TestHopsFirstHopProperties(t *testing.T) {
	for _, dims := range propDims {
		eng := sim.NewEngine()
		net := New(eng, DefaultConfig(dims))
		coords := enumCoords(dims)
		for _, a := range coords {
			for _, b := range coords {
				h := net.Hops(a, b)
				if hb := net.Hops(b, a); hb != h {
					t.Fatalf("dims %v: Hops(%v,%v)=%d but Hops(%v,%v)=%d", dims, a, b, h, b, a, hb)
				}
				if (h == 0) != (a == b) {
					t.Fatalf("dims %v: Hops(%v,%v)=%d", dims, a, b, h)
				}
				dim, _ := net.firstHop(a, b)
				if (dim < 0) != (h == 0) {
					t.Fatalf("dims %v: firstHop(%v,%v) dim=%d with hops=%d", dims, a, b, dim, h)
				}
				// Greedy walk by firstHop must reach b in exactly Hops steps:
				// wraparound and tie-breaking must never lengthen the route.
				cur := a
				for steps := 0; cur != b; steps++ {
					if steps > h {
						t.Fatalf("dims %v: firstHop walk %v->%v exceeded %d hops", dims, a, b, h)
					}
					d, pos := net.firstHop(cur, b)
					cur = step(cur, d, pos, dims)
				}
			}
		}
	}
}

func TestFirstHopTieBreaksForward(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{4, 6, 1}))
	// Equal forward/backward distance (4/2=2 each way): forward wins.
	if d, pos := net.firstHop(Coord{0, 0, 0}, Coord{2, 0, 0}); d != 0 || !pos {
		t.Fatalf("tie on dim 0: got dim %d pos %v, want 0/forward", d, pos)
	}
	if d, pos := net.firstHop(Coord{1, 1, 0}, Coord{1, 4, 0}); d != 1 || !pos {
		t.Fatalf("tie on dim 1: got dim %d pos %v, want 1/forward", d, pos)
	}
	// Strictly shorter backward must win over the tie-break.
	if d, pos := net.firstHop(Coord{0, 1, 0}, Coord{0, 5, 0}); d != 1 || pos {
		t.Fatalf("shorter backward: got dim %d pos %v, want 1/backward", d, pos)
	}
}

func TestLegacyPathMatchesHops(t *testing.T) {
	for _, dims := range propDims {
		eng := sim.NewEngine()
		net := New(eng, DefaultConfig(dims))
		for _, a := range enumCoords(dims) {
			for _, b := range enumCoords(dims) {
				if got, want := len(legacyPath(a, b, dims)), net.Hops(a, b); got != want {
					t.Fatalf("dims %v: legacyPath(%v,%v) length %d, want %d", dims, a, b, got, want)
				}
			}
		}
	}
}

func TestDrawFaultPlanDeterministic(t *testing.T) {
	dims := Coord{6, 1, 1}
	p1 := DrawFaultPlan(sim.NewRNG(42), dims, 4, 2, 1000)
	p2 := DrawFaultPlan(sim.NewRNG(42), dims, 4, 2, 1000)
	if !bytes.Equal(p1.Marshal(), p2.Marshal()) {
		t.Fatal("same seed drew different plans")
	}
	p3 := DrawFaultPlan(sim.NewRNG(43), dims, 4, 2, 1000)
	if bytes.Equal(p1.Marshal(), p3.Marshal()) {
		t.Fatal("different seeds drew identical plans")
	}
	if len(p1.Links) != 4 || len(p1.Nodes) != 2 {
		t.Fatalf("drew %d links / %d nodes, want 4/2", len(p1.Links), len(p1.Nodes))
	}
	seen := map[LinkFault]bool{}
	for _, lf := range p1.Links {
		if lf.At < 1 || lf.At > 1000 {
			t.Fatalf("death cycle %d outside (0, 1000]", lf.At)
		}
		k := lf
		k.At = 0
		if seen[k] {
			t.Fatalf("link %v drawn twice", k)
		}
		seen[k] = true
	}
	// At least one node always survives even when asked to kill them all.
	pAll := DrawFaultPlan(sim.NewRNG(7), dims, 0, 100, 1000)
	if len(pAll.Nodes) != 5 {
		t.Fatalf("killed %d of 6 nodes, want 5 (one survivor)", len(pAll.Nodes))
	}
}

func TestFaultPlanCodecRoundTrip(t *testing.T) {
	p := DrawFaultPlan(sim.NewRNG(9), Coord{4, 3, 1}, 5, 2, 2_000_000)
	b := p.Marshal()
	got, err := UnmarshalFaultPlan(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !bytes.Equal(got.Marshal(), b) {
		t.Fatal("round trip not identical")
	}
	if _, err := UnmarshalFaultPlan(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := UnmarshalFaultPlan(b[:len(b)-1]); err == nil {
		t.Fatal("truncation accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] = 'X'
	if _, err := UnmarshalFaultPlan(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Duplicate entries survive Marshal's sort unchanged, and the decoder's
	// strictly-increasing order check must reject them.
	dup := &FaultPlan{Links: []LinkFault{p.Links[0], p.Links[0]}}
	if _, err := UnmarshalFaultPlan(dup.Marshal()); err == nil {
		t.Fatal("duplicate (non-strictly-ordered) links accepted")
	}
}

func TestRouteTableHealthyMinimal(t *testing.T) {
	for _, dims := range propDims {
		eng := sim.NewEngine()
		net := New(eng, DefaultConfig(dims))
		rt := BuildRouteTable(dims, 1, func(linkKey) bool { return true }, func(Coord) bool { return true })
		for _, r := range rt.Routes {
			if got, want := len(r.Hops), net.Hops(r.Src, r.Dst); got != want {
				t.Fatalf("dims %v: healthy route %v->%v has %d hops, want %d", dims, r.Src, r.Dst, got, want)
			}
		}
	}
}

func TestRouteTableCodecRoundTrip(t *testing.T) {
	rt := BuildRouteTable(Coord{4, 2, 1}, 3, func(linkKey) bool { return true }, func(Coord) bool { return true })
	b := rt.Marshal()
	got, err := UnmarshalRouteTable(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !bytes.Equal(got.Marshal(), b) {
		t.Fatal("round trip not identical")
	}
	if _, err := UnmarshalRouteTable(append(b, 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := UnmarshalRouteTable(b[:7]); err == nil {
		t.Fatal("truncation accepted")
	}
	// Corrupt one hop coordinate: the path is no longer a unit-step chain.
	bad := append([]byte(nil), b...)
	bad[len(bad)-1] ^= 0x55
	if _, err := UnmarshalRouteTable(bad); err == nil {
		t.Fatal("non-unit-step route accepted")
	}
}

func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(""))
	f.Add(DrawFaultPlan(sim.NewRNG(1), Coord{4, 1, 1}, 2, 1, 1000).Marshal())
	f.Add(BuildRouteTable(Coord{3, 1, 1}, 1,
		func(linkKey) bool { return true }, func(Coord) bool { return true }).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := UnmarshalFaultPlan(data); err == nil {
			if !bytes.Equal(p.Marshal(), data) {
				t.Fatalf("fault plan accepted a non-canonical image")
			}
		}
		if rt, err := UnmarshalRouteTable(data); err == nil {
			if !bytes.Equal(rt.Marshal(), data) {
				t.Fatalf("route table accepted a non-canonical image")
			}
		}
	})
}

// armedRing builds an n-node 1-D torus with UPC-only chips, arms the
// given plan, and returns the network plus interfaces.
func armedRing(t *testing.T, n int, plan *FaultPlan, resilient bool) (*sim.Engine, *Network, []*Interface) {
	t.Helper()
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{n, 1, 1}))
	ifcs := make([]*Interface, n)
	for i := 0; i < n; i++ {
		ifcs[i] = net.Attach(hw.NewChip(hw.ChipConfig{ID: i}), Coord{i, 0, 0})
	}
	net.ArmFaults(plan, resilient, nil)
	return eng, net, ifcs
}

func TestRouteDetourAroundDeadLink(t *testing.T) {
	plan := &FaultPlan{Links: []LinkFault{{C: Coord{0, 0, 0}, Dim: 0, Pos: true, At: 1}}}
	eng, net, ifcs := armedRing(t, 4, plan, true)
	eng.At(5, func() {}) // advance past the kill
	eng.RunUntilIdle()
	if net.DeadLinks() != 1 {
		t.Fatalf("dead links = %d, want 1", net.DeadLinks())
	}
	var got Packet
	eng.Go("recv", func(c *sim.Coro) {
		p, err := ifcs[1].RecvMatchErr(c, func(p Packet) bool { return p.Tag == 7 })
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got = p
	})
	eng.Go("send", func(c *sim.Coro) {
		ifcs[0].SendPacket(Coord{1, 0, 0}, 7, 1, []byte("detour"))
	})
	eng.RunUntilIdle()
	if string(got.Payload) != "detour" {
		t.Fatalf("packet not delivered around the dead link: %+v", got)
	}
	// 0->1 detours 0->3->2->1: two extra hops on the sender's unit.
	if d := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusRouteDetour); d != 2 {
		t.Fatalf("torus_route_detour = %d, want 2", d)
	}
	if dl := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusLinkDead); dl != 1 {
		t.Fatalf("torus_link_dead = %d, want 1", dl)
	}
}

func TestE2ERetryAfterMidFlightDeath(t *testing.T) {
	// The link dies at cycle 1, while the first attempt (injected at cycle
	// 0) is still in flight: the delivery is lost, retransmitted over the
	// recomputed detour route, and completes.
	plan := &FaultPlan{Links: []LinkFault{{C: Coord{0, 0, 0}, Dim: 0, Pos: true, At: 1}}}
	eng, _, ifcs := armedRing(t, 4, plan, true)
	var got Packet
	eng.Go("recv", func(c *sim.Coro) {
		p, err := ifcs[1].RecvMatchErr(c, func(p Packet) bool { return p.Tag == 9 })
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got = p
	})
	eng.Go("send", func(c *sim.Coro) {
		ifcs[0].SendPacket(Coord{1, 0, 0}, 9, 1, []byte("retry"))
	})
	eng.RunUntilIdle()
	if string(got.Payload) != "retry" {
		t.Fatalf("lost delivery was not retransmitted: %+v", got)
	}
	if r := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusE2ERetry); r < 1 {
		t.Fatalf("torus_e2e_retry = %d, want >= 1", r)
	}
}

func TestResilienceOffDropsAndTimesOut(t *testing.T) {
	plan := &FaultPlan{Links: []LinkFault{{C: Coord{0, 0, 0}, Dim: 0, Pos: true, At: 1}}}
	eng, net, ifcs := armedRing(t, 4, plan, false)
	net.SetE2ERecvTimeout(500_000)
	var rerr error
	eng.Go("recv", func(c *sim.Coro) {
		_, rerr = ifcs[1].RecvMatchErr(c, func(p Packet) bool { return p.Tag == 3 })
	})
	eng.Go("send", func(c *sim.Coro) {
		ifcs[0].SendPacket(Coord{1, 0, 0}, 3, 1, []byte("lost"))
	})
	eng.RunUntilIdle()
	var de *DeliveryError
	if !errors.As(rerr, &de) {
		t.Fatalf("receiver error = %v, want *DeliveryError timeout", rerr)
	}
	if r := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusE2ERetry); r != 0 {
		t.Fatalf("resilience off retransmitted %d times", r)
	}
	if to := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusE2ETimeout); to < 1 {
		t.Fatalf("sender never abandoned the delivery")
	}
}

func TestUnroutableSurfacesTypedError(t *testing.T) {
	// Both directed links out of node 0 die: node 0 can send nowhere.
	plan := &FaultPlan{Links: []LinkFault{
		{C: Coord{0, 0, 0}, Dim: 0, Pos: false, At: 1},
		{C: Coord{0, 0, 0}, Dim: 0, Pos: true, At: 2},
	}}
	eng, net, ifcs := armedRing(t, 4, plan, true)
	eng.At(5, func() {})
	eng.RunUntilIdle()
	if err := net.ValidateRoutable(); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("ValidateRoutable = %v, want ErrUnroutable", err)
	}
	var perr error
	done := false
	eng.Go("put", func(c *sim.Coro) {
		ifcs[0].chip.Mem.Write(0x1000, []byte("data"))
		ifcs[0].Put(Coord{2, 0, 0},
			[]PhysRange{{PA: 0x1000, Len: 4}}, []PhysRange{{PA: 0x2000, Len: 4}},
			func(err error) { done, perr = true, err })
	})
	eng.RunUntilIdle()
	if !done {
		t.Fatal("put completion never ran")
	}
	if !errors.Is(perr, ErrUnroutable) {
		t.Fatalf("put error = %v, want ErrUnroutable", perr)
	}
}

func TestNodeFailKillsInterface(t *testing.T) {
	plan := &FaultPlan{Nodes: []NodeFault{{C: Coord{2, 0, 0}, At: 1}}}
	var deadNode Coord
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{4, 1, 1}))
	ifcs := make([]*Interface, 4)
	for i := 0; i < 4; i++ {
		ifcs[i] = net.Attach(hw.NewChip(hw.ChipConfig{ID: i}), Coord{i, 0, 0})
	}
	net.ArmFaults(plan, true, func(c Coord) { deadNode = c })
	// A receiver parked on the dying node must be released with an error,
	// not left sleeping forever.
	var rerr error
	eng.Go("recv", func(c *sim.Coro) {
		_, rerr = ifcs[2].RecvMatchErr(c, func(p Packet) bool { return p.Tag == 1 })
	})
	eng.RunUntilIdle()
	if deadNode != (Coord{2, 0, 0}) {
		t.Fatalf("onNodeDead got %v", deadNode)
	}
	var de *DeliveryError
	if !errors.As(rerr, &de) || de.Reason != "local node dead" {
		t.Fatalf("receiver on dead node got %v", rerr)
	}
	// Both of the node's directed links died with it.
	if dl := ifcs[2].chip.UPC.Get(upc.ChipScope, upc.TorusLinkDead); dl != 2 {
		t.Fatalf("torus_link_dead = %d, want 2", dl)
	}
	// Senders targeting the dead node exhaust retries and surface the error.
	var serr error
	sdone := false
	eng.Go("send", func(c *sim.Coro) {
		ifcs[0].chip.Mem.Write(0x1000, []byte("dead"))
		ifcs[0].Put(Coord{2, 0, 0},
			[]PhysRange{{PA: 0x1000, Len: 4}}, []PhysRange{{PA: 0x2000, Len: 4}},
			func(err error) { sdone, serr = true, err })
	})
	eng.RunUntilIdle()
	if !sdone || serr == nil {
		t.Fatalf("put to dead node: done=%v err=%v, want delivery error", sdone, serr)
	}
	// The route table has already dropped the dead node, so the sender
	// learns unroutability immediately rather than burning retransmits.
	if !errors.Is(serr, ErrUnroutable) {
		t.Fatalf("put error = %v, want ErrUnroutable", serr)
	}
	if to := ifcs[0].chip.UPC.Get(upc.ChipScope, upc.TorusE2ETimeout); to < 1 {
		t.Fatal("delivery never abandoned")
	}
}

func TestRasLogsHardFaults(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{3, 1, 1}))
	log := ras.NewLog()
	inj := ras.NewInjector(eng, log, ras.Plan{Seed: 1})
	for i := 0; i < 3; i++ {
		chip := hw.NewChip(hw.ChipConfig{ID: i})
		chip.AttachFaults(inj.Node(i))
		net.Attach(chip, Coord{i, 0, 0})
	}
	net.ArmFaults(&FaultPlan{
		Links: []LinkFault{{C: Coord{1, 0, 0}, Dim: 0, Pos: true, At: 10}},
		Nodes: []NodeFault{{C: Coord{2, 0, 0}, At: 20}},
	}, true, nil)
	eng.At(30, func() {})
	eng.RunUntilIdle()
	if n := log.Count(ras.LinkFail); n != 1 {
		t.Fatalf("link_fail events = %d, want 1", n)
	}
	if n := log.Count(ras.NodeFail); n != 1 {
		t.Fatalf("node_fail events = %d, want 1", n)
	}
}

func TestRequeueWakesWaiters(t *testing.T) {
	// A coro parked in RecvMatch must be woken when a peeked packet is
	// returned to the inbox — Requeue used to re-insert silently, leaving
	// the waiter asleep forever.
	eng, a, b := twoNodeNet(t)
	_ = a
	var got Packet
	eng.Go("recv", func(c *sim.Coro) {
		got = b.RecvMatch(c, func(p Packet) bool { return p.Tag == 5 })
	})
	eng.RunUntilIdle() // receiver is now parked with an empty inbox
	eng.Go("requeue", func(c *sim.Coro) {
		b.Requeue(Packet{From: Coord{0, 0, 0}, Tag: 5, Payload: []byte("peeked")})
	})
	eng.RunUntilIdle()
	if string(got.Payload) != "peeked" {
		t.Fatal("parked RecvMatch never woke for the requeued packet")
	}
}

func TestRetransExtendsLinkReservation(t *testing.T) {
	// With CRC corruption near certainty, back-to-back sends must see each
	// other's retransmission time on the wire: the second arrival is pushed
	// out by the first transfer's penalty, not just its clean serialization.
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(Coord{2, 1, 1}))
	log := ras.NewLog()
	inj := ras.NewInjector(eng, log, ras.Plan{Seed: 3, LinkCRC: 0.999})
	chips := make([]*hw.Chip, 2)
	ifcs := make([]*Interface, 2)
	for i := 0; i < 2; i++ {
		chips[i] = hw.NewChip(hw.ChipConfig{ID: i})
		chips[i].AttachFaults(inj.Node(i))
		ifcs[i] = net.Attach(chips[i], Coord{i, 0, 0})
	}
	var arrivals []sim.Cycles
	eng.Go("recv", func(c *sim.Coro) {
		for len(arrivals) < 2 {
			ifcs[1].RecvMatch(c, func(p Packet) bool { return p.Tag == 4 })
			arrivals = append(arrivals, eng.Now())
		}
	})
	eng.Go("send", func(c *sim.Coro) {
		ifcs[0].SendPacket(Coord{1, 0, 0}, 4, 1, make([]byte, PacketBytes))
		ifcs[0].SendPacket(Coord{1, 0, 0}, 4, 1, make([]byte, PacketBytes))
	})
	eng.RunUntilIdle()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	ser := sim.Cycles(float64(PacketBytes)*2.0) + 10
	// At LinkCRC 0.999 each transfer draws the full 8 bounded corruptions;
	// the inter-arrival gap must carry the first transfer's ~8 re-serializations,
	// which the old accounting (arrival-only penalty) dropped.
	if gap := arrivals[1] - arrivals[0]; gap < 9*ser {
		t.Fatalf("inter-arrival gap %d under-charges retransmission (want >= %d)", gap, 9*ser)
	}
}
