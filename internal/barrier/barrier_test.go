package barrier

import (
	"testing"

	"bgcnk/internal/sim"
)

func TestBarrierReleasesAllTogether(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4, 1000)
	var release []sim.Cycles
	for i := 0; i < 4; i++ {
		i := i
		eng.Go("p", func(c *sim.Coro) {
			c.Sleep(sim.Cycles(100 * (i + 1))) // staggered arrival
			b.Enter(c, i)
			release = append(release, c.Now())
		})
	}
	eng.RunUntilIdle()
	if len(release) != 4 {
		t.Fatalf("released %d of 4", len(release))
	}
	for _, r := range release {
		// Last arrival at 400, plus wire latency 1000.
		if r != 1400 {
			t.Fatalf("release at %d, want 1400 (all: %v)", r, release)
		}
	}
	if b.Barriers != 1 {
		t.Fatalf("barrier count = %d", b.Barriers)
	}
}

func TestBarrierReusable(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 2, 10)
	count := 0
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("p", func(c *sim.Coro) {
			for round := 0; round < 5; round++ {
				b.Enter(c, i)
			}
			count++
		})
	}
	eng.RunUntilIdle()
	if count != 2 || b.Barriers != 5 {
		t.Fatalf("count=%d barriers=%d", count, b.Barriers)
	}
}

func TestDoubleEnterPanics(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 2, 10)
	panicked := false
	eng.Go("p", func(c *sim.Coro) {
		defer func() {
			if recover() != nil {
				panicked = true
				panic("rethrow") // keep coroutine unwinding
			}
		}()
		b.Enter(c, 0)
	})
	eng.Go("q", func(c *sim.Coro) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		b.Enter(c, 0) // same id while 0 is still waiting
	})
	func() {
		defer func() { recover() }()
		eng.RunUntilIdle()
	}()
	if !panicked {
		t.Fatal("double enter must panic")
	}
}

func TestArbiterStateAndReset(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 1, 10)
	eng.Go("p", func(c *sim.Coro) {
		b.Enter(c, 0)
		b.Enter(c, 0)
	})
	eng.RunUntilIdle()
	if b.ArbiterState() != 2 {
		t.Fatalf("arbiter state = %d", b.ArbiterState())
	}
	b.ResetArbiters()
	if b.ArbiterState() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWaitingCount(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 3, 10)
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("p", func(c *sim.Coro) { b.Enter(c, i) })
	}
	eng.RunUntilIdle()
	if b.Waiting() != 2 {
		t.Fatalf("waiting = %d", b.Waiting())
	}
	eng.Shutdown()
}
