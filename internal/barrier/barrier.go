// Package barrier models the Blue Gene/P global barrier/interrupt
// network: a dedicated AND/OR wire spanning the partition with
// ~microsecond latency. MPI_Barrier maps onto it, and the multichip
// reproducible-reboot protocol of paper Section III uses it to coordinate
// reboots so that chips restart on exactly the same relative cycle.
package barrier

import (
	"fmt"

	"bgcnk/internal/sim"
)

// Network is one global barrier channel over n participants.
type Network struct {
	eng     *sim.Engine
	n       int
	latency sim.Cycles

	entered map[int]*sim.Coro
	// ArbiterState models the hardware arbiter/state-machine content that
	// the multichip reproducible reboot must leave consistent (paper:
	// "special code ensured a consistent state in all arbiters and state
	// machines involved in the barrier network hardware"). Every
	// completed barrier advances it; ResetArbiters restores the
	// power-on value.
	arbiterState uint64

	Barriers uint64 // completed barriers
}

// DefaultLatency is the full-partition barrier latency (~1.3us).
var DefaultLatency = sim.FromMicros(1.3)

// New builds a barrier network over n participants.
func New(eng *sim.Engine, n int, latency sim.Cycles) *Network {
	if n <= 0 {
		panic("barrier: need at least one participant")
	}
	if latency == 0 {
		latency = DefaultLatency
	}
	return &Network{eng: eng, n: n, latency: latency, entered: make(map[int]*sim.Coro)}
}

// Participants returns the configured participant count.
func (b *Network) Participants() int { return b.n }

// Enter blocks participant id until all n participants have entered, then
// releases everyone latency cycles after the last arrival. Entering twice
// concurrently with the same id panics (a wired-AND cannot distinguish).
func (b *Network) Enter(c *sim.Coro, id int) {
	if id < 0 || id >= b.n {
		panic(fmt.Sprintf("barrier: participant %d of %d", id, b.n))
	}
	if _, dup := b.entered[id]; dup {
		panic(fmt.Sprintf("barrier: participant %d entered twice", id))
	}
	b.entered[id] = c
	if len(b.entered) == b.n {
		waiters := make([]*sim.Coro, 0, b.n)
		for _, w := range b.entered {
			waiters = append(waiters, w)
		}
		b.entered = make(map[int]*sim.Coro)
		b.arbiterState++
		b.Barriers++
		me := c
		b.eng.At(b.eng.Now()+b.latency, func() {
			for _, w := range waiters {
				if w != me {
					w.Wake()
				}
			}
		})
		// The last arriver also waits out the wire latency.
		c.Sleep(b.latency)
		return
	}
	c.Park(sim.Forever)
}

// ArbiterState exposes the hardware state machines' content.
func (b *Network) ArbiterState() uint64 { return b.arbiterState }

// ResetArbiters restores the arbiters to their power-on state, as the
// multichip reproducible-reboot code does while keeping the network
// "active and configured".
func (b *Network) ResetArbiters() { b.arbiterState = 0 }

// Waiting reports how many participants are currently blocked.
func (b *Network) Waiting() int { return len(b.entered) }
