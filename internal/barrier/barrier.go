// Package barrier models the Blue Gene/P global barrier/interrupt
// network: a dedicated AND/OR wire spanning the partition with
// ~microsecond latency. MPI_Barrier maps onto it, and the multichip
// reproducible-reboot protocol of paper Section III uses it to coordinate
// reboots so that chips restart on exactly the same relative cycle.
package barrier

import (
	"errors"
	"fmt"
	"sort"

	"bgcnk/internal/sim"
)

// ErrDeadParticipant is returned by EnterErr when a participant's torus
// interface has died: a wired-AND with a permanently-low input can never
// fire, so waiting is hopeless and the caller must fail the job instead
// of parking forever.
var ErrDeadParticipant = errors.New("barrier: participant dead, barrier can never complete")

// Network is one global barrier channel over n participants.
type Network struct {
	eng     *sim.Engine
	n       int
	latency sim.Cycles

	dead   map[int]bool
	failed map[*sim.Coro]bool

	entered map[int]*sim.Coro
	// ArbiterState models the hardware arbiter/state-machine content that
	// the multichip reproducible reboot must leave consistent (paper:
	// "special code ensured a consistent state in all arbiters and state
	// machines involved in the barrier network hardware"). Every
	// completed barrier advances it; ResetArbiters restores the
	// power-on value.
	arbiterState uint64

	Barriers uint64 // completed barriers
}

// DefaultLatency is the full-partition barrier latency (~1.3us).
var DefaultLatency = sim.FromMicros(1.3)

// New builds a barrier network over n participants.
func New(eng *sim.Engine, n int, latency sim.Cycles) *Network {
	if n <= 0 {
		panic("barrier: need at least one participant")
	}
	if latency == 0 {
		latency = DefaultLatency
	}
	return &Network{eng: eng, n: n, latency: latency, entered: make(map[int]*sim.Coro),
		dead: make(map[int]bool), failed: make(map[*sim.Coro]bool)}
}

// MarkDead declares participant id permanently gone (node failure).
// Everyone currently blocked in the barrier is released immediately with
// ErrDeadParticipant — woken in participant order so same-cycle wakeups
// stay reproducible — and every future EnterErr fails fast. Idempotent.
func (b *Network) MarkDead(id int) {
	if b.dead[id] {
		return
	}
	b.dead[id] = true
	if len(b.entered) == 0 {
		return
	}
	ids := make([]int, 0, len(b.entered))
	for wid := range b.entered {
		ids = append(ids, wid)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		w := b.entered[wid]
		b.failed[w] = true
		w.Wake()
	}
	b.entered = make(map[int]*sim.Coro)
}

// Participants returns the configured participant count.
func (b *Network) Participants() int { return b.n }

// Enter blocks participant id until all n participants have entered, then
// releases everyone latency cycles after the last arrival. Entering twice
// concurrently with the same id panics (a wired-AND cannot distinguish).
// If a participant has died the entry returns immediately (legacy void
// entry point; callers that must distinguish use EnterErr).
func (b *Network) Enter(c *sim.Coro, id int) {
	_ = b.EnterErr(c, id)
}

// EnterErr is Enter with node-failure semantics: it returns
// ErrDeadParticipant — instead of parking forever — when any participant
// is already dead, or dies while this one waits.
func (b *Network) EnterErr(c *sim.Coro, id int) error {
	if id < 0 || id >= b.n {
		panic(fmt.Sprintf("barrier: participant %d of %d", id, b.n))
	}
	if _, dup := b.entered[id]; dup {
		panic(fmt.Sprintf("barrier: participant %d entered twice", id))
	}
	if len(b.dead) > 0 {
		return ErrDeadParticipant
	}
	b.entered[id] = c
	if len(b.entered) == b.n {
		waiters := make([]*sim.Coro, 0, b.n)
		for _, w := range b.entered {
			waiters = append(waiters, w)
		}
		b.entered = make(map[int]*sim.Coro)
		b.arbiterState++
		b.Barriers++
		me := c
		b.eng.At(b.eng.Now()+b.latency, func() {
			for _, w := range waiters {
				if w != me {
					w.Wake()
				}
			}
		})
		// The last arriver also waits out the wire latency.
		c.Sleep(b.latency)
		return nil
	}
	c.Park(sim.Forever)
	if b.failed[c] {
		delete(b.failed, c)
		return ErrDeadParticipant
	}
	return nil
}

// ArbiterState exposes the hardware state machines' content.
func (b *Network) ArbiterState() uint64 { return b.arbiterState }

// ResetArbiters restores the arbiters to their power-on state, as the
// multichip reproducible-reboot code does while keeping the network
// "active and configured".
func (b *Network) ResetArbiters() { b.arbiterState = 0 }

// Waiting reports how many participants are currently blocked.
func (b *Network) Waiting() int { return len(b.entered) }
