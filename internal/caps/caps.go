// Package caps reproduces the paper's Tables II and III: the ease of
// using and of implementing a set of HPC-relevant capabilities on CNK
// versus Linux. Where a capability is mechanically measurable, the grade
// is backed by a probe run against both kernel models (TLB miss counters,
// physical-range queries, trace hashes, fault behaviour); the grading
// rules are spelled out per row.
package caps

import (
	"fmt"
	"strings"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Grade is a Table II/III cell.
type Grade string

// Grades used by the paper.
const (
	Easy       Grade = "easy"
	Medium     Grade = "medium"
	Hard       Grade = "hard"
	EasyHard   Grade = "easy - hard"
	MediumHard Grade = "medium - hard"
	EasyNA     Grade = "easy - not avail"
	NotAvail   Grade = "not avail"
	Avail      Grade = "avail"
)

// Row is one capability comparison.
type Row struct {
	Capability string
	CNK        Grade
	Linux      Grade
	// Evidence records what the probes measured (empty for rows graded
	// from design analysis only).
	Evidence string
}

// probeEnv runs fn once on each kernel and returns what it observed.
type observation struct {
	tlbMisses      uint64
	physRanges     int
	roWriteFault   bool
	textWritable   bool
	computeSpread  sim.Cycles
	overcommitOK   bool
	traceRepro     bool
	seedsIdentical bool

	// UPC counter readings: the hardware-counter view of the same run,
	// cited as Table II evidence.
	upcTLBMisses    uint64
	upcSmallRefills uint64 // 4K/64K TLB installs
	upcLargeRefills uint64 // 1MB and larger TLB installs
}

func observe(kind machine.KernelKind) (observation, error) {
	var o observation
	run := func(seed uint64) (uint64, error) {
		m, err := machine.New(machine.Config{
			Nodes: 1, Kind: kind, Seed: seed,
			Reproducible:      kind == machine.KindCNK,
			MaxThreadsPerCore: 1,
		})
		if err != nil {
			return 0, err
		}
		defer m.Shutdown()
		var spreadMin, spreadMax sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			base := m.HeapBase(ctx)
			// Touch 8MB, interleaved, then query contiguity.
			for _, off := range []uint64{0, 2 << 20, 1 << 20, 3 << 20} {
				for p := uint64(0); p < 1<<20; p += 65536 {
					ctx.Touch(base+hw.VAddr(off+p), 64, true)
				}
			}
			prs, errno := ctx.VtoP(base, 4<<20)
			if errno == kernel.OK {
				o.physRanges = len(prs)
			}
			// Read-only mapping probe.
			ctx.RegisterSignal(kernel.SIGSEGV, func(kernel.Context, kernel.SigInfo) {
				o.roWriteFault = true
			})
			ro, errno := ctx.Syscall(kernel.SysMmap, 0, 4096, kernel.ProtRead, kernel.MapAnonymous, ^uint64(0), 0)
			if errno == kernel.OK {
				if e := ctx.Store(hw.VAddr(ro), []byte{1}); e == kernel.OK {
					o.textWritable = true
				}
			}
			// Fixed-work spread.
			for i := 0; i < 40; i++ {
				s := ctx.Now()
				ctx.Compute(100_000)
				d := ctx.Now() - s
				if spreadMin == 0 || d < spreadMin {
					spreadMin = d
				}
				if d > spreadMax {
					spreadMax = d
				}
			}
			// Overcommit probe: more threads than cores.
			okAll := true
			for i := 0; i < 6; i++ {
				if _, errno := ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags,
					Fn: func(c kernel.Context) { c.Compute(1000) }}); errno != kernel.OK {
					okAll = false
				}
			}
			o.overcommitOK = okAll
			// Run long enough for daemon wakeups to land (their phases
			// are what make FWK timing seed-dependent).
			ctx.Compute(70_000_000)
		}, kernel.JobParams{}, 0)
		if err != nil {
			return 0, err
		}
		o.computeSpread = spreadMax - spreadMin
		for _, c := range m.Chips[0].Cores {
			o.tlbMisses += c.TLB.Misses
		}
		snap := m.CounterSnapshot(0)
		o.upcTLBMisses += snap.Total(upc.TLBMiss)
		o.upcSmallRefills += snap.Total(upc.TLBRefill4K) + snap.Total(upc.TLBRefill64K)
		o.upcLargeRefills += snap.Total(upc.TLBRefill1M) + snap.Total(upc.TLBRefill16M) +
			snap.Total(upc.TLBRefill256M) + snap.Total(upc.TLBRefill1G)
		return m.Eng.Trace().Hash(), nil
	}
	h1, err := run(1)
	if err != nil {
		return o, err
	}
	h1b, err := run(1)
	if err != nil {
		return o, err
	}
	h2, err := run(2)
	if err != nil {
		return o, err
	}
	o.traceRepro = h1 == h1b
	o.seedsIdentical = h1 == h2
	return o, nil
}

// TableII computes the "ease of using" comparison. Measurable rows carry
// probe evidence; the remaining cells follow the paper's judgement, with
// the model's behaviour noted.
func TableII() ([]Row, error) {
	cnk, err := observe(machine.KindCNK)
	if err != nil {
		return nil, err
	}
	lnx, err := observe(machine.KindFWK)
	if err != nil {
		return nil, err
	}
	rows := []Row{
		{Capability: "Large page use", CNK: Easy, Linux: Medium,
			Evidence: fmt.Sprintf("UPC refill counters: CNK installed %d large-page (1MB+) vs %d small translations; Linux %d vs %d (all demand-paged 4K)",
				cnk.upcLargeRefills, cnk.upcSmallRefills, lnx.upcLargeRefills, lnx.upcSmallRefills)},
		{Capability: "Using multiple large page sizes", CNK: Easy, Linux: Medium,
			Evidence: "partitioner mixes 1MB/16MB/256MB/1GB tiles automatically"},
		{Capability: "Large physically contiguous memory", CNK: Easy, Linux: EasyHard,
			Evidence: fmt.Sprintf("VtoP(4MB): CNK %d range(s), Linux %d ranges", cnk.physRanges, lnx.physRanges)},
		{Capability: "No TLB misses", CNK: Easy, Linux: NotAvail,
			Evidence: fmt.Sprintf("UPC tlb_miss counter: CNK %d, Linux %d", cnk.upcTLBMisses, lnx.upcTLBMisses)},
		{Capability: "Full memory protection", CNK: NotAvail, Linux: Easy,
			Evidence: fmt.Sprintf("write to PROT_READ mapping: CNK allowed=%v, Linux faulted=%v", cnk.textWritable, lnx.roWriteFault)},
		{Capability: "General dynamic linking", CNK: NotAvail, Linux: Easy,
			Evidence: "CNK loads whole libraries eagerly without honouring page permissions"},
		{Capability: "Full mmap support", CNK: NotAvail, Linux: Easy,
			Evidence: "CNK file mmap is copy-in, read-only"},
		{Capability: "Predictable scheduling", CNK: Easy, Linux: Medium,
			Evidence: fmt.Sprintf("fixed-work spread: CNK %d cycles, Linux %d cycles", cnk.computeSpread, lnx.computeSpread)},
		{Capability: "Over commit of threads", CNK: EasyNA, Linux: Medium,
			Evidence: fmt.Sprintf("6 threads on 4 cores: CNK ok=%v (fixed budget), Linux ok=%v", cnk.overcommitOK, lnx.overcommitOK)},
		{Capability: "Performance reproducible", CNK: Easy, Linux: MediumHard,
			Evidence: fmt.Sprintf("identical runs across seeds: CNK %v, Linux %v", cnk.seedsIdentical, lnx.seedsIdentical)},
		{Capability: "Cycle reproducible execution", CNK: Easy, Linux: NotAvail,
			Evidence: fmt.Sprintf("identical under ANY ambient conditions (seeds): CNK %v, Linux %v (Linux repeats only when the uncontrollable conditions repeat)", cnk.seedsIdentical, lnx.seedsIdentical)},
	}
	// Sanity: the probes must actually support the grades.
	if cnk.tlbMisses != 0 || lnx.tlbMisses == 0 {
		return rows, fmt.Errorf("caps: TLB probe contradicts Table II (cnk=%d lnx=%d)", cnk.tlbMisses, lnx.tlbMisses)
	}
	if cnk.upcTLBMisses != cnk.tlbMisses || lnx.upcTLBMisses != lnx.tlbMisses {
		return rows, fmt.Errorf("caps: UPC tlb_miss disagrees with the TLB's own counter (cnk %d vs %d, lnx %d vs %d)",
			cnk.upcTLBMisses, cnk.tlbMisses, lnx.upcTLBMisses, lnx.tlbMisses)
	}
	if cnk.upcLargeRefills == 0 || lnx.upcLargeRefills != 0 {
		return rows, fmt.Errorf("caps: large-page refill counters contradict Table II (cnk=%d lnx=%d)",
			cnk.upcLargeRefills, lnx.upcLargeRefills)
	}
	if cnk.physRanges != 1 || lnx.physRanges <= 1 {
		return rows, fmt.Errorf("caps: contiguity probe contradicts Table II (cnk=%d lnx=%d)", cnk.physRanges, lnx.physRanges)
	}
	if !cnk.traceRepro {
		return rows, fmt.Errorf("caps: CNK not cycle-reproducible")
	}
	return rows, nil
}

// TableIII is the "ease of implementing the missing capability" table
// (paper Table III). These grades are design analysis, recorded with the
// rationale; the "avail" cells are cross-checked against Table II probes.
func TableIII() []Row {
	return []Row{
		{Capability: "Large physically contiguous memory", CNK: Avail, Linux: Medium,
			Evidence: "Linux: needs boot-time reservation or compaction machinery"},
		{Capability: "No TLB misses", CNK: Avail, Linux: Hard,
			Evidence: "Linux: would require static pinned mappings against the whole VM design"},
		{Capability: "Full memory protection", CNK: Medium, Linux: Avail,
			Evidence: "CNK: would need per-page translations, forfeiting the static large-page map"},
		{Capability: "General dynamic linking", CNK: Medium, Linux: Avail,
			Evidence: "CNK: needs demand faults from networked storage plus permission granularity"},
		{Capability: "Full mmap support", CNK: Hard, Linux: Avail,
			Evidence: "CNK: needs a page cache, writeback, and fault handling it deliberately lacks"},
		{Capability: "Cycle reproducible execution", CNK: Avail, Linux: Medium,
			Evidence: "Linux: interrupt/daemon timing would have to be made deterministic"},
	}
}

// Render formats rows as the paper's tables.
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-38s | %-16s | %-13s\n", "Description", "CNK", "Linux")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 75))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-38s | %-16s | %-13s\n", r.Capability, r.CNK, r.Linux)
	}
	return b.String()
}
