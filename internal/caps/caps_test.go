package caps

import (
	"strings"
	"testing"

	"bgcnk/internal/machine"
)

func TestObserveCNK(t *testing.T) {
	o, err := observe(machine.KindCNK)
	if err != nil {
		t.Fatal(err)
	}
	if o.tlbMisses != 0 {
		t.Errorf("CNK TLB misses = %d", o.tlbMisses)
	}
	if o.physRanges != 1 {
		t.Errorf("CNK phys ranges = %d, want 1 (contiguous)", o.physRanges)
	}
	if !o.textWritable {
		t.Error("CNK must not enforce mapping permissions")
	}
	if o.computeSpread != 0 {
		t.Errorf("CNK fixed-work spread = %d, want 0", o.computeSpread)
	}
	if o.overcommitOK {
		t.Error("CNK must reject overcommitted threads")
	}
	if !o.traceRepro || !o.seedsIdentical {
		t.Error("CNK must be reproducible under any conditions")
	}
}

func TestObserveFWK(t *testing.T) {
	o, err := observe(machine.KindFWK)
	if err != nil {
		t.Fatal(err)
	}
	if o.tlbMisses == 0 {
		t.Error("FWK must take TLB misses")
	}
	if o.physRanges <= 1 {
		t.Errorf("FWK phys ranges = %d, want scattered", o.physRanges)
	}
	if !o.roWriteFault {
		t.Error("FWK must fault on a read-only write")
	}
	if o.textWritable {
		t.Error("FWK must enforce permissions")
	}
	if !o.overcommitOK {
		t.Error("FWK must allow thread overcommit")
	}
	if o.seedsIdentical {
		t.Error("FWK must differ across ambient seeds")
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Table II has %d rows, the paper has 11", len(rows))
	}
	want := map[string][2]Grade{
		"No TLB misses":                {Easy, NotAvail},
		"Full memory protection":       {NotAvail, Easy},
		"Cycle reproducible execution": {Easy, NotAvail},
		"Performance reproducible":     {Easy, MediumHard},
		"Full mmap support":            {NotAvail, Easy},
	}
	for _, r := range rows {
		if w, ok := want[r.Capability]; ok {
			if r.CNK != w[0] || r.Linux != w[1] {
				t.Errorf("%s: got %s/%s want %s/%s", r.Capability, r.CNK, r.Linux, w[0], w[1])
			}
		}
	}
}

func TestTableIIIStructure(t *testing.T) {
	rows := TableIII()
	if len(rows) != 6 {
		t.Fatalf("Table III has %d rows, the paper has 6", len(rows))
	}
	// Every row must have exactly one "avail" side (it lists capabilities
	// missing from one system).
	for _, r := range rows {
		availCNK := r.CNK == Avail
		availLnx := r.Linux == Avail
		if availCNK == availLnx {
			t.Errorf("%s: exactly one side should be avail (%s/%s)", r.Capability, r.CNK, r.Linux)
		}
	}
}

func TestRenderContainsRows(t *testing.T) {
	s := Render("TABLE II", []Row{{Capability: "No TLB misses", CNK: Easy, Linux: NotAvail}})
	if !strings.Contains(s, "No TLB misses") || !strings.Contains(s, "not avail") {
		t.Fatalf("render: %s", s)
	}
}
