package ciod

import (
	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/ion"
	"bgcnk/internal/kernel"
	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// costMarshal is the CN-side cost of marshalling a request and posting it
// to the collective-network send FIFO. Kept small: "the amount of code
// required in CNK to implement the offload is minimal" (Section IV-A).
const costMarshal = sim.Cycles(300)

// RetryPolicy bounds how long a function-shipped call waits for its reply
// and how persistently it resends. The zero value is the legacy blocking
// protocol: wait forever, never resend — which schedules no timer events,
// so fault-free runs are unchanged to the cycle.
type RetryPolicy struct {
	// Timeout is the per-attempt reply deadline; 0 waits forever.
	Timeout sim.Cycles
	// MaxRetries is how many resends follow the first attempt.
	MaxRetries int
	// Backoff is the delay before the first resend, doubling per retry.
	Backoff sim.Cycles
}

// DefaultRetryPolicy covers a CIOD crash+restart: five attempts whose
// window comfortably exceeds the default daemon respawn delay.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 60_000, MaxRetries: 4, Backoff: 4_000}
}

// Client ships requests from a compute node to CIOD over the collective
// network and blocks the calling coroutine for the round trip. CNK does
// not yield the core during a shipped call (paper Section VI-C), so the
// wait is a simple park of the calling thread, not a reschedule.
type Client struct {
	ep      *collective.Endpoint
	nextTag uint32
	upc     *upc.UPC
	policy  RetryPolicy
	faults  *ras.NodeFaults
	ion     *ion.Node
	obs     *obs.Recorder
	node    int

	Calls    uint64
	Timeouts uint64
	Retries  uint64
}

// AttachObs wires the machine-wide span recorder: each shipped call
// emits one io span covering ship→execute→reply, and an ION
// ingress-credit wait emits a stall span. node is this client's compute
// node ID (the span's pid).
func (cl *Client) AttachObs(r *obs.Recorder, node int) {
	cl.obs = r
	cl.node = node
}

// NewClient wraps a compute node's tree endpoint.
func NewClient(ep *collective.Endpoint) *Client {
	return &Client{ep: ep}
}

// AttachUPC routes the function-ship round-trip counter to the compute
// node's UPC unit. Counting here (not in the kernel's ship path) covers
// every caller — shipIO and mmap copy-in alike — exactly once.
func (cl *Client) AttachUPC(u *upc.UPC) { cl.upc = u }

// SetRetryPolicy arms function-ship timeouts and bounded retries.
func (cl *Client) SetRetryPolicy(p RetryPolicy) { cl.policy = p }

// AttachFaults routes the client's give-up events (retries exhausted,
// EIO surfaced) to the machine's RAS log.
func (cl *Client) AttachFaults(f *ras.NodeFaults) { cl.faults = f }

// AttachION arms the I/O-node aggregation path: every attempt first
// acquires an ingress credit from the shared ION — stalling, with the
// stall cycles on this chip's UPC unit, when the fan-in is saturated —
// and crosses the uplink wrapped in a mux frame naming this compute
// node and reply tag. The serving daemon releases the credit when it
// disposes of the message.
func (cl *Client) AttachION(n *ion.Node) { cl.ion = n }

// Call implements Transport. With a retry policy armed, each attempt uses
// a fresh tag (so a late reply to an abandoned attempt can never be
// mistaken for the current one; stale replies simply age in the inbox),
// resends back off exponentially, and exhaustion surfaces EIO — the errno
// the application would see from a dead I/O path on the real machine.
func (cl *Client) Call(c *sim.Coro, req *Request) *Reply {
	if cl.upc != nil {
		cl.upc.Inc(upc.ChipScope, upc.FunctionShip)
	}
	if cl.obs != nil {
		start := c.Now()
		defer func() {
			cl.obs.Emit(obs.CatIO, OpName(req.Op), cl.node, int(req.PID), start, c.Now(), uint64(req.Op))
		}()
	}
	c.Sleep(costMarshal)
	data := MarshalRequest(req)
	attempts := 1
	if cl.policy.Timeout > 0 {
		attempts += cl.policy.MaxRetries
	}
	for a := 0; a < attempts; a++ {
		if a > 0 {
			cl.Retries++
			if cl.upc != nil {
				cl.upc.Inc(upc.ChipScope, upc.CIODRetry)
			}
			c.Sleep(cl.policy.Backoff << (a - 1))
		}
		cl.nextTag++
		tag := cl.nextTag
		wire := data
		if cl.ion != nil {
			creditStart := c.Now()
			cl.ion.Acquire(c, cl.ep.ID(), cl.upc)
			if waited := c.Now(); waited > creditStart {
				cl.obs.Emit(obs.CatStall, "ion:credit", cl.node, int(req.PID), creditStart, waited, 0)
			}
			wire = ion.MarshalFrame(&ion.Frame{
				CN: int32(cl.ep.ID()), PID: req.PID, Tag: tag, Payload: data,
			})
		}
		cl.ep.Send(-1, tag, wire)
		timeout := sim.Forever
		if cl.policy.Timeout > 0 {
			timeout = cl.policy.Timeout
		}
		msg, ok := cl.ep.RecvTagTimeout(c, tag, timeout)
		if !ok {
			cl.Timeouts++
			if cl.upc != nil {
				cl.upc.Inc(upc.ChipScope, upc.CIODTimeout)
			}
			continue
		}
		rep, err := UnmarshalReply(msg.Data)
		if err != nil {
			// A truncated reply is indistinguishable from a lost one at
			// this layer: resend if the policy allows.
			if cl.policy.Timeout > 0 {
				cl.Timeouts++
				if cl.upc != nil {
					cl.upc.Inc(upc.ChipScope, upc.CIODTimeout)
				}
				continue
			}
			return &Reply{Errno: kernel.EIO}
		}
		cl.Calls++
		return rep
	}
	if cl.faults != nil {
		cl.faults.Report(ras.CIODGiveUp, "ciod-client",
			OpName(req.Op)+" retries exhausted, surfacing EIO")
	}
	return &Reply{Errno: kernel.EIO}
}

// Loopback is a Transport that executes against a local filesystem with a
// fixed modelled delay, for unit-testing the CN kernel without standing up
// an I/O node. Semantics match the Server exactly (same execute path).
type Loopback struct {
	srv   *Server
	Delay sim.Cycles
}

// NewLoopback builds a loopback transport over f.
func NewLoopback(eng *sim.Engine, f *fs.FS) *Loopback {
	// A server without a dispatcher: we reuse only its execute logic.
	s := &Server{eng: eng, fs: f, prox: make(map[proxyKey]*ioproxy)}
	return &Loopback{srv: s, Delay: costMarshal + costDispatch + costExecute}
}

// Call implements Transport.
func (l *Loopback) Call(c *sim.Coro, req *Request) *Reply {
	c.Sleep(l.Delay)
	key := proxyKey{node: 0, pid: req.PID}
	switch req.Op {
	case OpProcStart:
		l.srv.prox[key] = &ioproxy{
			pid:     req.PID,
			client:  fs.NewClient(l.srv.fs, fs.Cred{UID: req.UID, GID: req.GID}),
			threads: make(map[uint32]*proxyThread),
		}
		return &Reply{}
	case OpProcExit:
		delete(l.srv.prox, key)
		return &Reply{}
	}
	p, ok := l.srv.prox[key]
	if !ok {
		return &Reply{Errno: kernel.ESRCH}
	}
	l.srv.Calls++
	return l.srv.execute(c, p, req)
}
