package ciod

import (
	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// costMarshal is the CN-side cost of marshalling a request and posting it
// to the collective-network send FIFO. Kept small: "the amount of code
// required in CNK to implement the offload is minimal" (Section IV-A).
const costMarshal = sim.Cycles(300)

// Client ships requests from a compute node to CIOD over the collective
// network and blocks the calling coroutine for the round trip. CNK does
// not yield the core during a shipped call (paper Section VI-C), so the
// wait is a simple park of the calling thread, not a reschedule.
type Client struct {
	ep      *collective.Endpoint
	nextTag uint32
	upc     *upc.UPC
	Calls   uint64
}

// NewClient wraps a compute node's tree endpoint.
func NewClient(ep *collective.Endpoint) *Client {
	return &Client{ep: ep}
}

// AttachUPC routes the function-ship round-trip counter to the compute
// node's UPC unit. Counting here (not in the kernel's ship path) covers
// every caller — shipIO and mmap copy-in alike — exactly once.
func (cl *Client) AttachUPC(u *upc.UPC) { cl.upc = u }

// Call implements Transport.
func (cl *Client) Call(c *sim.Coro, req *Request) *Reply {
	cl.nextTag++
	tag := cl.nextTag
	if cl.upc != nil {
		cl.upc.Inc(upc.ChipScope, upc.FunctionShip)
	}
	c.Sleep(costMarshal)
	cl.ep.Send(-1, tag, MarshalRequest(req))
	msg := cl.ep.RecvTag(c, tag)
	rep, err := UnmarshalReply(msg.Data)
	if err != nil {
		return &Reply{Errno: kernel.EIO}
	}
	cl.Calls++
	return rep
}

// Loopback is a Transport that executes against a local filesystem with a
// fixed modelled delay, for unit-testing the CN kernel without standing up
// an I/O node. Semantics match the Server exactly (same execute path).
type Loopback struct {
	srv   *Server
	Delay sim.Cycles
}

// NewLoopback builds a loopback transport over f.
func NewLoopback(eng *sim.Engine, f *fs.FS) *Loopback {
	// A server without a dispatcher: we reuse only its execute logic.
	s := &Server{eng: eng, fs: f, prox: make(map[proxyKey]*ioproxy)}
	return &Loopback{srv: s, Delay: costMarshal + costDispatch + costExecute}
}

// Call implements Transport.
func (l *Loopback) Call(c *sim.Coro, req *Request) *Reply {
	c.Sleep(l.Delay)
	key := proxyKey{node: 0, pid: req.PID}
	switch req.Op {
	case OpProcStart:
		l.srv.prox[key] = &ioproxy{
			pid:     req.PID,
			client:  fs.NewClient(l.srv.fs, fs.Cred{UID: req.UID, GID: req.GID}),
			threads: make(map[uint32]*proxyThread),
		}
		return &Reply{}
	case OpProcExit:
		delete(l.srv.prox, key)
		return &Reply{}
	}
	p, ok := l.srv.prox[key]
	if !ok {
		return &Reply{Errno: kernel.ESRCH}
	}
	l.srv.Calls++
	return l.srv.execute(p, req)
}
