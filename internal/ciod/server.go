package ciod

import (
	"fmt"
	"sort"

	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
)

// Costs on the I/O-node side (Linux syscall execution plus the CIOD shared
// buffer handoff of paper Fig 2).
const (
	costDispatch = sim.Cycles(600)  // CIOD retrieve + route via shared buffer
	costExecute  = sim.Cycles(2500) // Linux syscall on the I/O node
)

// Server is the Control and I/O Daemon running on an I/O node: it
// retrieves messages from the collective network and directs them to
// ioproxy threads; each ioproxy is associated with a specific compute-node
// process and mirrors its filesystem state.
// proxyKey identifies an ioproxy: compute-node endpoint plus process ID
// (PIDs are only unique per node).
type proxyKey struct {
	node int
	pid  uint32
}

type Server struct {
	eng  *sim.Engine
	ep   *collective.Endpoint
	fs   *fs.FS
	prox map[proxyKey]*ioproxy

	// faults draws seeded reply drops and daemon crashes; nil on a
	// perfect machine. down is true between a crash and the respawn; gen
	// counts daemon incarnations so a respawn event scheduled before a
	// partition reboot cannot revive the daemon the reboot replaced.
	faults       *ras.NodeFaults
	restartDelay sim.Cycles
	down         bool
	gen          uint64

	Calls    uint64 // function-shipped calls served
	Proxies  int    // ioproxies ever created
	MaxProxy int    // high-water mark of live proxies
	Crashes  int    // daemon crash+restart cycles
	Dropped  uint64 // replies lost to injected faults
}

type ioproxy struct {
	pid     uint32
	client  *fs.Client
	threads map[uint32]*proxyThread
}

type proxyThread struct {
	queue []pendingCall
	coro  *sim.Coro
	// dead tells the proxy coroutine to exit: its process left or the
	// daemon crashed. Any reply it produces after dying is discarded.
	dead bool
}

type pendingCall struct {
	req  *Request
	from int
	tag  uint32
}

// NewServer starts CIOD on the given tree endpoint, serving filesystem f.
// The dispatcher coroutine starts immediately.
func NewServer(eng *sim.Engine, ep *collective.Endpoint, f *fs.FS) *Server {
	s := &Server{eng: eng, ep: ep, fs: f, prox: make(map[proxyKey]*ioproxy)}
	eng.Go("ciod", s.dispatcher)
	return s
}

// SetFaults wires the I/O node's seeded fault source into the daemon:
// replies may be dropped, and after a configured number of served calls
// the daemon crashes and respawns restartDelay cycles later.
func (s *Server) SetFaults(f *ras.NodeFaults, restartDelay sim.Cycles) {
	s.faults = f
	s.restartDelay = restartDelay
}

// dispatcher is CIOD's main loop: receive, route to the proxy thread.
func (s *Server) dispatcher(c *sim.Coro) {
	for {
		msg := s.ep.Recv(c)
		if s.down {
			// Messages addressed to a dead daemon vanish; the client's
			// timeout/retry path covers the loss.
			s.Dropped++
			continue
		}
		c.Sleep(costDispatch)
		req, err := UnmarshalRequest(msg.Data)
		if err != nil {
			s.ep.Send(msg.From, msg.Tag, MarshalReply(&Reply{Errno: kernel.EINVAL}))
			continue
		}
		s.route(req, msg.From, msg.Tag)
	}
}

func (s *Server) route(req *Request, from int, tag uint32) {
	key := proxyKey{node: from, pid: req.PID}
	switch req.Op {
	case OpProcStart:
		p := &ioproxy{
			pid:     req.PID,
			client:  fs.NewClient(s.fs, fs.Cred{UID: req.UID, GID: req.GID}),
			threads: make(map[uint32]*proxyThread),
		}
		s.prox[key] = p
		s.Proxies++
		if live := len(s.prox); live > s.MaxProxy {
			s.MaxProxy = live
		}
		s.ep.Send(from, tag, MarshalReply(&Reply{}))
		return
	case OpProcExit:
		// Fail any calls still queued on the dying proxy's threads with
		// EIO before tearing it down — otherwise the compute-node
		// coroutines behind them would block forever on replies that can
		// no longer come.
		if p, ok := s.prox[key]; ok {
			s.failProxy(p)
		}
		delete(s.prox, key)
		s.ep.Send(from, tag, MarshalReply(&Reply{}))
		return
	}
	p, ok := s.prox[key]
	if !ok {
		s.ep.Send(from, tag, MarshalReply(&Reply{Errno: kernel.ESRCH}))
		return
	}
	// One proxy thread per application thread (paper Section IV-A): the
	// thread is created lazily on its first shipped call.
	t, ok := p.threads[req.TID]
	if !ok {
		t = &proxyThread{}
		p.threads[req.TID] = t
		pid, tid := req.PID, req.TID
		t.coro = s.eng.Go(fmt.Sprintf("ioproxy.%d.%d", pid, tid), func(c *sim.Coro) {
			s.proxyLoop(c, p, t)
		})
	}
	t.queue = append(t.queue, pendingCall{req: req, from: from, tag: tag})
	t.coro.Wake()
}

func (s *Server) proxyLoop(c *sim.Coro, p *ioproxy, t *proxyThread) {
	for {
		for len(t.queue) == 0 {
			if t.dead {
				return
			}
			c.Park(sim.Forever)
		}
		if t.dead {
			return
		}
		call := t.queue[0]
		t.queue = t.queue[1:]
		c.Sleep(costExecute)
		rep := s.execute(p, call.req)
		s.Calls++
		if t.dead {
			// The daemon died mid-call; the reply has nowhere to go (the
			// crash already flushed EIO for whatever was still queued).
			return
		}
		if s.faults != nil && s.faults.ReplyDrop() {
			s.Dropped++
		} else {
			s.ep.Send(call.from, call.tag, MarshalReply(rep))
		}
		if s.faults != nil && s.faults.CrashDue() {
			s.crash()
		}
	}
}

// failProxy flushes EIO replies for every call still queued on the
// proxy's threads and retires the threads, in deterministic (TID) order.
func (s *Server) failProxy(p *ioproxy) {
	tids := make([]uint32, 0, len(p.threads))
	for tid := range p.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := p.threads[tid]
		for _, call := range t.queue {
			s.ep.Send(call.from, call.tag, MarshalReply(&Reply{Errno: kernel.EIO}))
		}
		t.queue = nil
		t.dead = true
		if t.coro != nil {
			t.coro.Wake()
		}
	}
}

// crash kills the daemon: every ioproxy dies with it (queued calls get a
// last-gasp EIO flush from the shared buffer), inbound messages are
// dropped until the control system respawns CIOD restartDelay cycles
// later. Respawned daemons know nothing of old processes, so the first
// post-restart call from a live job draws ESRCH and the compute-node
// kernel re-ships OpProcStart to reconnect.
func (s *Server) crash() {
	s.Crashes++
	s.down = true
	keys := make([]proxyKey, 0, len(s.prox))
	for k := range s.prox {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].pid < keys[j].pid
	})
	for _, k := range keys {
		s.failProxy(s.prox[k])
	}
	s.prox = make(map[proxyKey]*ioproxy)
	delay := s.restartDelay
	if delay <= 0 {
		delay = 1
	}
	gen := s.gen
	s.eng.At(s.eng.Now()+delay, func() {
		if s.gen == gen {
			s.down = false
		}
	})
}

// DropProxies retires every ioproxy without sending anything: the proxy
// coroutines are told to exit and the map is cleared. Unlike a crash there
// is no EIO flush — the callers behind any queued calls are gone (their
// job was cleared), and replies to dead clients would only age in their
// inboxes.
func (s *Server) DropProxies() {
	keys := make([]proxyKey, 0, len(s.prox))
	for k := range s.prox {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].pid < keys[j].pid
	})
	for _, k := range keys {
		p := s.prox[k]
		tids := make([]uint32, 0, len(p.threads))
		for tid := range p.threads {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			t := p.threads[tid]
			t.queue = nil
			t.dead = true
			if t.coro != nil {
				t.coro.Wake()
			}
		}
	}
	s.prox = make(map[proxyKey]*ioproxy)
}

// Reset returns the daemon to its just-started state for a partition
// reboot: proxies are dropped, a pending respawn from an earlier crash is
// invalidated (the rebooted daemon is a new incarnation), and the daemon
// comes up serving fsys (nil keeps the current filesystem).
func (s *Server) Reset(fsys *fs.FS) {
	s.DropProxies()
	s.gen++
	s.down = false
	if fsys != nil {
		s.fs = fsys
	}
}

// Down reports whether the daemon is currently crashed (for tests).
func (s *Server) Down() bool { return s.down }

// execute performs the request against the proxy's filesystem client —
// "the ioproxy decodes the message, demarshals the arguments, and performs
// the system call that was requested by the compute node process".
func (s *Server) execute(p *ioproxy, r *Request) *Reply {
	cl := p.client
	switch r.Op {
	case OpOpen:
		fd, errno := cl.Open(r.Path, r.Flags, fs.Mode(r.Mode))
		return &Reply{Ret: uint64(int64(fd)), Errno: errno}
	case OpClose:
		return &Reply{Errno: cl.Close(int(r.FD))}
	case OpRead:
		buf := make([]byte, r.Size)
		n, errno := cl.Read(int(r.FD), buf)
		return &Reply{Ret: uint64(n), Errno: errno, Data: buf[:n]}
	case OpWrite:
		n, errno := cl.Write(int(r.FD), r.Data)
		return &Reply{Ret: uint64(n), Errno: errno}
	case OpLseek:
		pos, errno := cl.Lseek(int(r.FD), r.Off, int(r.Whence))
		return &Reply{Ret: pos, Errno: errno}
	case OpStat:
		st, errno := cl.Stat(r.Path)
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		return &Reply{Ret: st.Size, Data: MarshalStat(st)}
	case OpFstat:
		st, errno := cl.Fstat(int(r.FD))
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		return &Reply{Ret: st.Size, Data: MarshalStat(st)}
	case OpUnlink:
		return &Reply{Errno: cl.Unlink(r.Path)}
	case OpRename:
		return &Reply{Errno: cl.Rename(r.Path, r.Path2)}
	case OpMkdir:
		return &Reply{Errno: cl.Mkdir(r.Path, fs.Mode(r.Mode))}
	case OpRmdir:
		return &Reply{Errno: cl.Rmdir(r.Path)}
	case OpDup:
		fd, errno := cl.Dup(int(r.FD))
		return &Reply{Ret: uint64(int64(fd)), Errno: errno}
	case OpGetcwd:
		return &Reply{Str: cl.Cwd()}
	case OpChdir:
		return &Reply{Errno: cl.Chdir(r.Path)}
	case OpTruncate:
		return &Reply{Errno: cl.Truncate(r.Path, r.Size)}
	case OpReaddir:
		names, errno := cl.Readdir(r.Path)
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		e := &enc{}
		e.u32(uint32(len(names)))
		for _, n := range names {
			e.str(n)
		}
		return &Reply{Data: e.b}
	}
	return &Reply{Errno: kernel.ENOSYS}
}

// DecodeNames parses an OpReaddir reply payload.
func DecodeNames(b []byte) ([]string, error) {
	d := &dec{b: b}
	n := int(d.u32())
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, d.str())
	}
	return names, d.err
}

// FileTable returns the mirrored open-file table of the ioproxy serving
// (node, pid), in ascending-fd order, or nil if no such proxy is alive.
// Checkpoints record this table: the ioproxy's descriptor state IS the
// compute process's file state (paper Section IV-A), so capturing it here
// is what lets a restarted job resume its I/O mid-file.
func (s *Server) FileTable(node int, pid uint32) []fs.OpenFileState {
	p, ok := s.prox[proxyKey{node: node, pid: pid}]
	if !ok {
		return nil
	}
	return p.client.OpenFiles()
}

// RestoreFiles rebuilds the (node, pid) ioproxy's descriptor table from a
// checkpoint image, creating the proxy if the restarted process has not
// shipped a call yet. Returns ESRCH only if no filesystem is mounted.
func (s *Server) RestoreFiles(node int, pid uint32, uid, gid uint32, files []fs.OpenFileState) kernel.Errno {
	key := proxyKey{node: node, pid: pid}
	p, ok := s.prox[key]
	if !ok {
		p = &ioproxy{
			pid:     pid,
			client:  fs.NewClient(s.fs, fs.Cred{UID: uid, GID: gid}),
			threads: make(map[uint32]*proxyThread),
		}
		s.prox[key] = p
		s.Proxies++
		if live := len(s.prox); live > s.MaxProxy {
			s.MaxProxy = live
		}
	}
	return p.client.RestoreFiles(files)
}

// LiveProxies reports the number of ioproxies currently alive.
func (s *Server) LiveProxies() int { return len(s.prox) }

// ProxyThreads reports the proxy-thread count for a PID, summed over
// nodes (PIDs are per-node; tests typically have one node).
func (s *Server) ProxyThreads(pid uint32) int {
	n := 0
	for k, p := range s.prox {
		if k.pid == pid {
			n += len(p.threads)
		}
	}
	return n
}
