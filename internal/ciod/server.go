package ciod

import (
	"fmt"
	"sort"

	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/ion"
	"bgcnk/internal/kernel"
	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Costs on the I/O-node side (Linux syscall execution plus the CIOD shared
// buffer handoff of paper Fig 2).
const (
	costDispatch = sim.Cycles(600)  // CIOD retrieve + route via shared buffer
	costExecute  = sim.Cycles(2500) // Linux syscall on the I/O node
	// costCoalescedWrite is what each extra same-fd write merged into one
	// batch costs instead of a full costExecute — the request coalescer's
	// win on the serving side.
	costCoalescedWrite = sim.Cycles(400)
)

// Server is the Control and I/O Daemon running on an I/O node: it
// retrieves messages from the collective network and directs them to
// ioproxy threads; each ioproxy is associated with a specific compute-node
// process and mirrors its filesystem state.
// proxyKey identifies an ioproxy: compute-node endpoint plus process ID
// (PIDs are only unique per node).
type proxyKey struct {
	node int
	pid  uint32
}

type Server struct {
	eng  *sim.Engine
	ep   *collective.Endpoint
	fs   *fs.FS
	prox map[proxyKey]*ioproxy

	// faults draws seeded reply drops and daemon crashes; nil on a
	// perfect machine. down is true between a crash and the respawn; gen
	// counts daemon incarnations so a respawn event scheduled before a
	// partition reboot cannot revive the daemon the reboot replaced.
	faults       *ras.NodeFaults
	restartDelay sim.Cycles
	down         bool
	gen          uint64

	// ionNode, when set, arms the I/O-node aggregation path: inbound
	// messages are mux frames to unwrap, every disposed message releases
	// its ingress credit, same-fd writes batch through the coalescer, and
	// file data moves through the write-back buffer cache.
	ionNode *ion.Node

	// obs, when non-nil, receives one io span per served batch
	// (execute→reply); node is the ION's span pid, -(tree+1).
	obs     *obs.Recorder
	obsNode int

	Calls    uint64 // function-shipped calls served
	Proxies  int    // ioproxies ever created
	MaxProxy int    // high-water mark of live proxies
	Crashes  int    // daemon crash+restart cycles
	Dropped  uint64 // replies lost to injected faults
}

// AttachObs wires the machine-wide span recorder; node is this I/O
// node's span pid (the machine uses -(tree+1)).
func (s *Server) AttachObs(r *obs.Recorder, node int) {
	s.obs = r
	s.obsNode = node
}

type ioproxy struct {
	pid     uint32
	client  *fs.Client
	threads map[uint32]*proxyThread
}

type proxyThread struct {
	queue []pendingCall
	coro  *sim.Coro
	// dead tells the proxy coroutine to exit: its process left or the
	// daemon crashed. Any reply it produces after dying is discarded.
	dead bool
}

type pendingCall struct {
	req  *Request
	from int
	tag  uint32
}

// NewServer starts CIOD on the given tree endpoint, serving filesystem f.
// The dispatcher coroutine starts immediately.
func NewServer(eng *sim.Engine, ep *collective.Endpoint, f *fs.FS) *Server {
	s := &Server{eng: eng, ep: ep, fs: f, prox: make(map[proxyKey]*ioproxy)}
	eng.Go("ciod", s.dispatcher)
	return s
}

// SetFaults wires the I/O node's seeded fault source into the daemon:
// replies may be dropped, and after a configured number of served calls
// the daemon crashes and respawns restartDelay cycles later.
func (s *Server) SetFaults(f *ras.NodeFaults, restartDelay sim.Cycles) {
	s.faults = f
	s.restartDelay = restartDelay
}

// AttachION arms the I/O-node aggregation path on the serving side. The
// same Node must be attached to every Client sharing this daemon; the
// server releases each admitted message's ingress credit at exactly one
// of its disposal points (served, EIO-flushed, EINVAL-rejected, or
// dropped by a dead daemon).
func (s *Server) AttachION(n *ion.Node) { s.ionNode = n }

// ionRelease retires one admitted message's ingress credit.
func (s *Server) ionRelease() {
	if s.ionNode != nil {
		s.ionNode.Release()
	}
}

// dispatcher is CIOD's main loop: receive, route to the proxy thread.
func (s *Server) dispatcher(c *sim.Coro) {
	for {
		msg := s.ep.Recv(c)
		if s.down {
			// Messages addressed to a dead daemon vanish; the client's
			// timeout/retry path covers the loss.
			s.Dropped++
			s.ionRelease()
			continue
		}
		c.Sleep(costDispatch)
		payload := msg.Data
		if s.ionNode != nil {
			fr, err := ion.UnmarshalFrame(msg.Data)
			if err != nil || int(fr.CN) != msg.From || fr.Tag != msg.Tag {
				// A corrupt or misrouted frame cannot be demultiplexed;
				// reject it to the link-level sender rather than guess.
				s.ep.Send(msg.From, msg.Tag, MarshalReply(&Reply{Errno: kernel.EINVAL}))
				s.ionRelease()
				continue
			}
			payload = fr.Payload
		}
		req, err := UnmarshalRequest(payload)
		if err != nil {
			s.ep.Send(msg.From, msg.Tag, MarshalReply(&Reply{Errno: kernel.EINVAL}))
			s.ionRelease()
			continue
		}
		s.route(req, msg.From, msg.Tag)
	}
}

func (s *Server) route(req *Request, from int, tag uint32) {
	key := proxyKey{node: from, pid: req.PID}
	switch req.Op {
	case OpProcStart:
		p := &ioproxy{
			pid:     req.PID,
			client:  fs.NewClient(s.fs, fs.Cred{UID: req.UID, GID: req.GID}),
			threads: make(map[uint32]*proxyThread),
		}
		s.prox[key] = p
		s.Proxies++
		if live := len(s.prox); live > s.MaxProxy {
			s.MaxProxy = live
		}
		s.ep.Send(from, tag, MarshalReply(&Reply{}))
		s.ionRelease()
		return
	case OpProcExit:
		// Fail any calls still queued on the dying proxy's threads with
		// EIO before tearing it down — otherwise the compute-node
		// coroutines behind them would block forever on replies that can
		// no longer come.
		if p, ok := s.prox[key]; ok {
			s.flushProxyFiles(p)
			s.failProxy(p)
		}
		delete(s.prox, key)
		s.ep.Send(from, tag, MarshalReply(&Reply{}))
		s.ionRelease()
		return
	}
	p, ok := s.prox[key]
	if !ok {
		s.ep.Send(from, tag, MarshalReply(&Reply{Errno: kernel.ESRCH}))
		s.ionRelease()
		return
	}
	// One proxy thread per application thread (paper Section IV-A): the
	// thread is created lazily on its first shipped call.
	t, ok := p.threads[req.TID]
	if !ok {
		t = &proxyThread{}
		p.threads[req.TID] = t
		pid, tid := req.PID, req.TID
		t.coro = s.eng.Go(fmt.Sprintf("ioproxy.%d.%d", pid, tid), func(c *sim.Coro) {
			s.proxyLoop(c, p, t)
		})
	}
	t.queue = append(t.queue, pendingCall{req: req, from: from, tag: tag})
	t.coro.Wake()
}

func (s *Server) proxyLoop(c *sim.Coro, p *ioproxy, t *proxyThread) {
	for {
		for len(t.queue) == 0 {
			if t.dead {
				return
			}
			c.Park(sim.Forever)
		}
		if t.dead {
			return
		}
		call := t.queue[0]
		t.queue = t.queue[1:]
		// Request coalescing (ION armed): adjacent queued writes to the
		// same descriptor merge into one batch that pays a single
		// costExecute plus a small per-extra cost, instead of a full
		// syscall each — the fan-in's bandwidth win.
		batch := []pendingCall{call}
		if s.ionNode != nil && call.req.Op == OpWrite {
			max := s.ionNode.Config().CoalesceMax
			for len(batch) < max && len(t.queue) > 0 {
				nxt := t.queue[0]
				if nxt.req.Op != OpWrite || nxt.req.FD != call.req.FD {
					break
				}
				batch = append(batch, nxt)
				t.queue = t.queue[1:]
			}
		}
		execStart := c.Now()
		c.Sleep(costExecute + costCoalescedWrite*sim.Cycles(len(batch)-1))
		if len(batch) > 1 {
			s.ionNode.Counters().Add(upc.ChipScope, upc.IONCoalesce, uint64(len(batch)-1))
		}
		for _, pc := range batch {
			if t.dead {
				// The daemon died mid-batch: the rest of the batch was
				// conceptually still queued, so it gets the same EIO flush
				// a crash gives queued calls.
				s.ep.Send(pc.from, pc.tag, MarshalReply(&Reply{Errno: kernel.EIO}))
				s.ionRelease()
				continue
			}
			rep := s.execute(c, p, pc.req)
			s.Calls++
			if t.dead {
				// Died during execution; the reply has nowhere to go (the
				// crash already flushed EIO for whatever was still queued).
				s.ionRelease()
				continue
			}
			if s.faults != nil && s.faults.ReplyDrop() {
				s.Dropped++
			} else {
				s.ep.Send(pc.from, pc.tag, MarshalReply(rep))
			}
			s.ionRelease()
			if s.faults != nil {
				if s.faults.CrashDue() {
					s.crash()
				}
				if s.ionNode != nil && s.faults.IONCrashDue() {
					// The whole I/O node dies: the daemon crashes exactly
					// as under CrashDue, and the buffer cache loses every
					// unflushed block.
					if !s.down {
						s.crash()
					}
					s.ionNode.Crash()
				}
			}
		}
		s.obs.Emit(obs.CatIO, "ciod:execute", s.obsNode, int(p.pid), execStart, c.Now(), uint64(len(batch)))
		if t.dead {
			return
		}
	}
}

// failProxy flushes EIO replies for every call still queued on the
// proxy's threads and retires the threads, in deterministic (TID) order.
func (s *Server) failProxy(p *ioproxy) {
	tids := make([]uint32, 0, len(p.threads))
	for tid := range p.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := p.threads[tid]
		for _, call := range t.queue {
			s.ep.Send(call.from, call.tag, MarshalReply(&Reply{Errno: kernel.EIO}))
			s.ionRelease()
		}
		t.queue = nil
		t.dead = true
		if t.coro != nil {
			t.coro.Wake()
		}
	}
}

// flushProxyFiles writes back dirty cache blocks for every regular file
// the proxy holds open: process exit must leave its output durable even
// without explicit closes. Ascending-fd order keeps it deterministic;
// nil coroutine models the daemon's background writeback.
func (s *Server) flushProxyFiles(p *ioproxy) {
	if s.ionNode == nil || s.ionNode.Cache() == nil {
		return
	}
	for _, f := range p.client.OpenFiles() {
		if ino, _, _, regular, errno := p.client.FileInfo(f.FD); errno == kernel.OK && regular {
			s.ionNode.Cache().Flush(nil, ino)
		}
	}
}

// crash kills the daemon: every ioproxy dies with it (queued calls get a
// last-gasp EIO flush from the shared buffer), inbound messages are
// dropped until the control system respawns CIOD restartDelay cycles
// later. Respawned daemons know nothing of old processes, so the first
// post-restart call from a live job draws ESRCH and the compute-node
// kernel re-ships OpProcStart to reconnect.
func (s *Server) crash() {
	s.Crashes++
	s.down = true
	keys := make([]proxyKey, 0, len(s.prox))
	for k := range s.prox {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].pid < keys[j].pid
	})
	for _, k := range keys {
		s.failProxy(s.prox[k])
	}
	s.prox = make(map[proxyKey]*ioproxy)
	delay := s.restartDelay
	if delay <= 0 {
		delay = 1
	}
	gen := s.gen
	s.eng.At(s.eng.Now()+delay, func() {
		if s.gen == gen {
			s.down = false
		}
	})
}

// DropProxies retires every ioproxy without sending anything: the proxy
// coroutines are told to exit and the map is cleared. Unlike a crash there
// is no EIO flush — the callers behind any queued calls are gone (their
// job was cleared), and replies to dead clients would only age in their
// inboxes. With the ION armed the caller must Reset the ION afterwards:
// queued calls' credits are not individually released here (their owners
// are dead coroutines), the reset restores the whole pool.
func (s *Server) DropProxies() {
	keys := make([]proxyKey, 0, len(s.prox))
	for k := range s.prox {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].pid < keys[j].pid
	})
	for _, k := range keys {
		p := s.prox[k]
		tids := make([]uint32, 0, len(p.threads))
		for tid := range p.threads {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			t := p.threads[tid]
			t.queue = nil
			t.dead = true
			if t.coro != nil {
				t.coro.Wake()
			}
		}
	}
	s.prox = make(map[proxyKey]*ioproxy)
}

// Reset returns the daemon to its just-started state for a partition
// reboot: proxies are dropped, a pending respawn from an earlier crash is
// invalidated (the rebooted daemon is a new incarnation), and the daemon
// comes up serving fsys (nil keeps the current filesystem).
func (s *Server) Reset(fsys *fs.FS) {
	s.DropProxies()
	s.gen++
	s.down = false
	if fsys != nil {
		s.fs = fsys
	}
}

// Down reports whether the daemon is currently crashed (for tests).
func (s *Server) Down() bool { return s.down }

// execute performs the request against the proxy's filesystem client —
// "the ioproxy decodes the message, demarshals the arguments, and performs
// the system call that was requested by the compute node process".
func (s *Server) execute(c *sim.Coro, p *ioproxy, r *Request) *Reply {
	cl := p.client
	if s.ionNode != nil {
		if rep, handled := s.executeCached(c, p, r); handled {
			return rep
		}
	}
	switch r.Op {
	case OpOpen:
		fd, errno := cl.Open(r.Path, r.Flags, fs.Mode(r.Mode))
		return &Reply{Ret: uint64(int64(fd)), Errno: errno}
	case OpClose:
		return &Reply{Errno: cl.Close(int(r.FD))}
	case OpRead:
		buf := make([]byte, r.Size)
		n, errno := cl.Read(int(r.FD), buf)
		return &Reply{Ret: uint64(n), Errno: errno, Data: buf[:n]}
	case OpWrite:
		n, errno := cl.Write(int(r.FD), r.Data)
		return &Reply{Ret: uint64(n), Errno: errno}
	case OpLseek:
		pos, errno := cl.Lseek(int(r.FD), r.Off, int(r.Whence))
		return &Reply{Ret: pos, Errno: errno}
	case OpStat:
		st, errno := cl.Stat(r.Path)
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		return &Reply{Ret: st.Size, Data: MarshalStat(st)}
	case OpFstat:
		st, errno := cl.Fstat(int(r.FD))
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		return &Reply{Ret: st.Size, Data: MarshalStat(st)}
	case OpUnlink:
		return &Reply{Errno: cl.Unlink(r.Path)}
	case OpRename:
		return &Reply{Errno: cl.Rename(r.Path, r.Path2)}
	case OpMkdir:
		return &Reply{Errno: cl.Mkdir(r.Path, fs.Mode(r.Mode))}
	case OpRmdir:
		return &Reply{Errno: cl.Rmdir(r.Path)}
	case OpDup:
		fd, errno := cl.Dup(int(r.FD))
		return &Reply{Ret: uint64(int64(fd)), Errno: errno}
	case OpGetcwd:
		return &Reply{Str: cl.Cwd()}
	case OpChdir:
		return &Reply{Errno: cl.Chdir(r.Path)}
	case OpTruncate:
		return &Reply{Errno: cl.Truncate(r.Path, r.Size)}
	case OpReaddir:
		names, errno := cl.Readdir(r.Path)
		if errno != kernel.OK {
			return &Reply{Errno: errno}
		}
		e := &enc{}
		e.u32(uint32(len(names)))
		for _, n := range names {
			e.str(n)
		}
		return &Reply{Data: e.b}
	case OpFsync:
		// Without a cache in front there is nothing to flush; validate
		// the descriptor like the real daemon would.
		return &Reply{Errno: cl.Fsync(int(r.FD))}
	}
	return &Reply{Errno: kernel.ENOSYS}
}

// executeCached routes cacheable file operations through the ION's
// write-back buffer cache. It returns handled=false for everything that
// should fall through to the direct path — non-regular files, seeks the
// cache does not care about, and metadata ops (which only need a flush
// first so the fs view is current). Access-mode checks mirror the fs
// client's: the cache sits below the VFS layer and must not widen what a
// descriptor may do.
func (s *Server) executeCached(c *sim.Coro, p *ioproxy, r *Request) (*Reply, bool) {
	ca := s.ionNode.Cache()
	if ca == nil {
		return nil, false
	}
	cl := p.client
	switch r.Op {
	case OpOpen:
		fd, errno := cl.Open(r.Path, r.Flags, fs.Mode(r.Mode))
		if errno == kernel.OK && r.Flags&kernel.OTrunc != 0 && r.Flags&3 != kernel.ORdonly {
			// Open just truncated the inode underneath the cache; trim
			// cached blocks too so stale data cannot resurface.
			if ino, _, _, regular, e := cl.FileInfo(fd); e == kernel.OK && regular {
				ca.Truncate(c, ino, 0)
			}
		}
		return &Reply{Ret: uint64(int64(fd)), Errno: errno}, true
	case OpRead:
		ino, off, flags, regular, errno := cl.FileInfo(int(r.FD))
		if errno != kernel.OK || !regular {
			return nil, false
		}
		if flags&3 == kernel.OWronly {
			return &Reply{Errno: kernel.EBADF}, true
		}
		data := ca.Read(c, ino, off, int(r.Size))
		cl.SetOffset(int(r.FD), off+uint64(len(data)))
		return &Reply{Ret: uint64(len(data)), Data: data}, true
	case OpWrite:
		ino, off, flags, regular, errno := cl.FileInfo(int(r.FD))
		if errno != kernel.OK || !regular {
			return nil, false
		}
		if flags&3 == kernel.ORdonly {
			return &Reply{Errno: kernel.EBADF}, true
		}
		if flags&kernel.OAppend != 0 {
			off = ca.Size(ino) // effective EOF, unflushed extents included
		}
		ca.Write(c, ino, off, r.Data)
		cl.SetOffset(int(r.FD), off+uint64(len(r.Data)))
		return &Reply{Ret: uint64(len(r.Data))}, true
	case OpFsync:
		ino, _, _, regular, errno := cl.FileInfo(int(r.FD))
		if errno != kernel.OK {
			return &Reply{Errno: errno}, true
		}
		if regular {
			ca.Flush(c, ino)
		}
		return &Reply{}, true
	case OpClose:
		// Flush-on-close (close-to-open consistency, as NFS gives the
		// real ION): data must be durable once the descriptor is gone.
		// The direct path then performs the close itself.
		if ino, _, _, regular, errno := cl.FileInfo(int(r.FD)); errno == kernel.OK && regular {
			ca.Flush(c, ino)
		}
		return nil, false
	case OpLseek:
		// Only SEEK_END depends on the size the cache may have extended.
		if int(r.Whence) != kernel.SeekEnd {
			return nil, false
		}
		ino, _, _, regular, errno := cl.FileInfo(int(r.FD))
		if errno != kernel.OK || !regular {
			return nil, false
		}
		pos := int64(ca.Size(ino)) + r.Off
		if pos < 0 {
			return &Reply{Errno: kernel.EINVAL}, true
		}
		cl.SetOffset(int(r.FD), uint64(pos))
		return &Reply{Ret: uint64(pos)}, true
	case OpFstat:
		// Flush so the direct stat sees every cached extent.
		if ino, _, _, regular, errno := cl.FileInfo(int(r.FD)); errno == kernel.OK && regular {
			ca.Flush(c, ino)
		}
		return nil, false
	case OpStat:
		if st, errno := cl.Stat(r.Path); errno == kernel.OK && st.Type == fs.TypeFile {
			ca.Flush(c, st.Ino)
		}
		return nil, false
	case OpTruncate:
		st, errno := cl.Stat(r.Path)
		if errno != kernel.OK || st.Type != fs.TypeFile {
			return nil, false
		}
		if errno := cl.Truncate(r.Path, r.Size); errno != kernel.OK {
			return &Reply{Errno: errno}, true
		}
		ca.Truncate(c, st.Ino, r.Size)
		return &Reply{}, true
	}
	return nil, false
}

// DecodeNames parses an OpReaddir reply payload.
func DecodeNames(b []byte) ([]string, error) {
	d := &dec{b: b}
	n := int(d.u32())
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, d.str())
	}
	return names, d.err
}

// FileTable returns the mirrored open-file table of the ioproxy serving
// (node, pid), in ascending-fd order, or nil if no such proxy is alive.
// Checkpoints record this table: the ioproxy's descriptor state IS the
// compute process's file state (paper Section IV-A), so capturing it here
// is what lets a restarted job resume its I/O mid-file.
func (s *Server) FileTable(node int, pid uint32) []fs.OpenFileState {
	p, ok := s.prox[proxyKey{node: node, pid: pid}]
	if !ok {
		return nil
	}
	return p.client.OpenFiles()
}

// RestoreFiles rebuilds the (node, pid) ioproxy's descriptor table from a
// checkpoint image, creating the proxy if the restarted process has not
// shipped a call yet. Returns ESRCH only if no filesystem is mounted.
func (s *Server) RestoreFiles(node int, pid uint32, uid, gid uint32, files []fs.OpenFileState) kernel.Errno {
	key := proxyKey{node: node, pid: pid}
	p, ok := s.prox[key]
	if !ok {
		p = &ioproxy{
			pid:     pid,
			client:  fs.NewClient(s.fs, fs.Cred{UID: uid, GID: gid}),
			threads: make(map[uint32]*proxyThread),
		}
		s.prox[key] = p
		s.Proxies++
		if live := len(s.prox); live > s.MaxProxy {
			s.MaxProxy = live
		}
	}
	return p.client.RestoreFiles(files)
}

// LiveProxies reports the number of ioproxies currently alive.
func (s *Server) LiveProxies() int { return len(s.prox) }

// ProxyThreads reports the proxy-thread count for a PID, summed over
// nodes (PIDs are per-node; tests typically have one node).
func (s *Server) ProxyThreads(pid uint32) int {
	n := 0
	for k, p := range s.prox {
		if k.pid == pid {
			n += len(p.threads)
		}
	}
	return n
}
