package ciod

import (
	"reflect"
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
)

// FuzzMarshal feeds arbitrary bytes to every wire decoder and checks the
// round-trip property: any message a decoder accepts must re-marshal and
// re-decode to the identical structure (the canonical-form invariant the
// ioproxy relies on), and no input may panic or over-read.
func FuzzMarshal(f *testing.F) {
	f.Add(MarshalRequest(&Request{Op: OpOpen, PID: 3, TID: 1, UID: 0, GID: 0,
		Flags: uint64(kernel.OCreat | kernel.OWronly), Mode: 0644, Path: "/gpfs/rank0.out"}))
	f.Add(MarshalRequest(&Request{Op: OpWrite, PID: 3, TID: 2, FD: 4,
		Size: 5, Data: []byte("hello")}))
	f.Add(MarshalRequest(&Request{Op: OpRename, PID: 9, Path: "/a", Path2: "/b"}))
	f.Add(MarshalReply(&Reply{Ret: 42, Errno: kernel.OK, Data: []byte("payload")}))
	f.Add(MarshalReply(&Reply{Ret: ^uint64(0), Errno: kernel.ENOENT, Str: "/cwd"}))
	f.Add(MarshalStat(fs.Stat{Ino: 7, Type: fs.TypeFile, Mode: 0600, Size: 4096, Nlink: 1}))
	// Retry/retransmit framing seeds: the shapes the RAS layer puts on
	// the wire — a re-shipped proc start (the reconnect after a CIOD
	// crash), the EIO reply surfaced after retry exhaustion, and CRC-cut
	// truncations of previously valid frames (what a corrupted or
	// half-dropped retransmission would look like to the decoders).
	f.Add(MarshalRequest(&Request{Op: OpProcStart, PID: 3, UID: 7, GID: 8}))
	f.Add(MarshalReply(&Reply{Errno: kernel.EIO}))
	retrans := MarshalReply(&Reply{Ret: 9, Data: []byte("retransmitted payload")})
	f.Add(retrans[:len(retrans)/2])
	f.Add(retrans[:len(retrans)-1])
	retry := MarshalRequest(&Request{Op: OpWrite, PID: 1, TID: 5, FD: 3,
		Size: 8, Data: []byte("deadbeef")})
	f.Add(retry[:len(retry)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, wire []byte) {
		if req, err := UnmarshalRequest(wire); err == nil {
			again, err2 := UnmarshalRequest(MarshalRequest(req))
			if err2 != nil {
				t.Fatalf("re-decode of accepted request failed: %v", err2)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("request round trip changed:\n%+v\nvs\n%+v", req, again)
			}
		}
		if rep, err := UnmarshalReply(wire); err == nil {
			again, err2 := UnmarshalReply(MarshalReply(rep))
			if err2 != nil {
				t.Fatalf("re-decode of accepted reply failed: %v", err2)
			}
			if !reflect.DeepEqual(rep, again) {
				t.Fatalf("reply round trip changed:\n%+v\nvs\n%+v", rep, again)
			}
		}
		if st, err := UnmarshalStat(wire); err == nil {
			st2, err2 := UnmarshalStat(MarshalStat(st))
			if err2 != nil || st2 != st {
				t.Fatalf("stat round trip changed: %+v vs %+v (%v)", st, st2, err2)
			}
		}
	})
}

// TestMarshalRoundTripExhaustive pins the typed round trip for every op
// code with fully populated fields (the fuzzer's seed property, asserted
// deterministically so `go test` alone covers it).
func TestMarshalRoundTripExhaustive(t *testing.T) {
	for op := OpOpen; op <= OpFsync; op++ {
		req := &Request{
			Op: op, PID: 100 + uint32(op), TID: 7, UID: 1, GID: 2,
			FD: int32(op) - 3, FD2: 9, Flags: 0xdeadbeefcafe, Mode: 0755,
			Off: -1 << 40, Whence: 2, Size: 1 << 33,
			Path: "/gpfs/some/path", Path2: "../other", Data: []byte{0, 1, 2, 255},
		}
		got, err := UnmarshalRequest(MarshalRequest(req))
		if err != nil {
			t.Fatalf("op %s: %v", OpName(op), err)
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("op %s round trip:\n%+v\nvs\n%+v", OpName(op), req, got)
		}
	}
}
