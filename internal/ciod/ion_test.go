package ciod

import (
	"bytes"
	"fmt"
	"testing"

	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/ion"
	"bgcnk/internal/kernel"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// ionRig is one ION-armed daemon serving nCN compute-node clients over a
// shared-uplink tree.
type ionRig struct {
	eng     *sim.Engine
	tree    *collective.Tree
	fsys    *fs.FS
	node    *ion.Node
	srv     *Server
	clients map[int]*Client
	units   map[int]*upc.UPC
}

func newIONRig(nCN int, cfg ion.Config) *ionRig {
	eng := sim.NewEngine()
	ids := make([]int, nCN)
	for i := range ids {
		ids[i] = i
	}
	tree := collective.NewTree(eng, collective.DefaultConfig(), ids)
	tree.ShareUplink()
	fsys := fs.New()
	fsys.MustMkdirAll("/gpfs")
	node := ion.NewNode(cfg, ion.NewCache(fsys, cfg.CacheBlocks))
	srv := NewServer(eng, tree.ION(), fsys)
	srv.AttachION(node)
	r := &ionRig{eng: eng, tree: tree, fsys: fsys, node: node, srv: srv,
		clients: make(map[int]*Client), units: make(map[int]*upc.UPC)}
	for _, id := range ids {
		cl := NewClient(tree.CN(id))
		cl.AttachION(node)
		u := upc.New()
		cl.AttachUPC(u)
		r.clients[id] = cl
		r.units[id] = u
	}
	return r
}

// TestIONPathEndToEnd drives several compute nodes through one ION-armed
// daemon: every write lands in the buffer cache, fsync makes it durable,
// and reads see cached extents before any flush.
func TestIONPathEndToEnd(t *testing.T) {
	r := newIONRig(4, ion.Config{QueueDepth: 4, CacheBlocks: 32})
	for cn := 0; cn < 4; cn++ {
		cn := cn
		cl := r.clients[cn]
		r.eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
			pid := uint32(cn + 1)
			if rep := cl.Call(c, &Request{Op: OpProcStart, PID: pid}); rep.Errno != kernel.OK {
				t.Errorf("cn%d proc start: %v", cn, rep.Errno)
				return
			}
			path := fmt.Sprintf("/gpfs/rank%d.out", cn)
			rep := cl.Call(c, &Request{Op: OpOpen, PID: pid, TID: 1, Path: path,
				Flags: kernel.OCreat | kernel.ORdwr, Mode: 0644})
			if rep.Errno != kernel.OK {
				t.Errorf("cn%d open: %v", cn, rep.Errno)
				return
			}
			fd := int32(rep.Ret)
			payload := bytes.Repeat([]byte{byte('A' + cn)}, 600)
			if rep := cl.Call(c, &Request{Op: OpWrite, PID: pid, TID: 1, FD: fd, Data: payload}); rep.Ret != 600 {
				t.Errorf("cn%d write ret %d: %v", cn, rep.Ret, rep.Errno)
			}
			// The cached read must see the unflushed write.
			cl.Call(c, &Request{Op: OpLseek, PID: pid, TID: 1, FD: fd, Whence: int32(kernel.SeekSet)})
			if rep := cl.Call(c, &Request{Op: OpRead, PID: pid, TID: 1, FD: fd, Size: 600}); !bytes.Equal(rep.Data, payload) {
				t.Errorf("cn%d read-back mismatch (%d bytes)", cn, len(rep.Data))
			}
			if rep := cl.Call(c, &Request{Op: OpFsync, PID: pid, TID: 1, FD: fd}); rep.Errno != kernel.OK {
				t.Errorf("cn%d fsync: %v", cn, rep.Errno)
			}
			cl.Call(c, &Request{Op: OpClose, PID: pid, TID: 1, FD: fd})
			cl.Call(c, &Request{Op: OpProcExit, PID: pid})
		})
	}
	r.eng.RunUntilIdle()
	r.eng.Shutdown()
	for cn := 0; cn < 4; cn++ {
		data, errno := r.fsys.ReadFile(fmt.Sprintf("/gpfs/rank%d.out", cn), fs.Root)
		if errno != kernel.OK || !bytes.Equal(data, bytes.Repeat([]byte{byte('A' + cn)}, 600)) {
			t.Fatalf("cn%d file not durable after fsync+close: %v len=%d", cn, errno, len(data))
		}
	}
	st := r.node.Stats()
	if st.Admitted == 0 || st.Flushes == 0 {
		t.Fatalf("ion stats show no traffic: %+v", st)
	}
	if st.Depth != 0 {
		t.Fatalf("credits leaked: depth %d after idle", st.Depth)
	}
}

// TestIONWriteCoalescing queues adjacent same-fd writes on one proxy
// thread and checks the daemon merges them into one batch.
func TestIONWriteCoalescing(t *testing.T) {
	r := newIONRig(1, ion.Config{QueueDepth: 8, CacheBlocks: 16, CoalesceMax: 4})
	cl := r.clients[0]
	ep := r.tree.CN(0)
	var fd int32
	r.eng.Go("cn0", func(c *sim.Coro) {
		cl.Call(c, &Request{Op: OpProcStart, PID: 1})
		rep := cl.Call(c, &Request{Op: OpOpen, PID: 1, TID: 1, Path: "/gpfs/coal.out",
			Flags: kernel.OCreat | kernel.OWronly, Mode: 0644})
		fd = int32(rep.Ret)
		// Fire three writes back-to-back without waiting for replies, so
		// they pile up on the same proxy thread's queue and the coalescer
		// sees them together. Tags are far from the client's own stream.
		for i := 0; i < 3; i++ {
			req := &Request{Op: OpWrite, PID: 1, TID: 1, FD: fd,
				Data: bytes.Repeat([]byte{byte('0' + i)}, 100)}
			tag := uint32(1000 + i)
			r.node.Acquire(c, 0, nil)
			ep.Send(-1, tag, ion.MarshalFrame(&ion.Frame{CN: 0, PID: 1, Tag: tag,
				Payload: MarshalRequest(req)}))
		}
		for i := 0; i < 3; i++ {
			msg := ep.RecvTag(c, uint32(1000+i))
			rep, err := UnmarshalReply(msg.Data)
			if err != nil || rep.Errno != kernel.OK || rep.Ret != 100 {
				t.Errorf("burst write %d: %v %+v", i, err, rep)
			}
		}
		cl.Call(c, &Request{Op: OpFsync, PID: 1, TID: 1, FD: fd})
	})
	r.eng.RunUntilIdle()
	r.eng.Shutdown()
	if st := r.node.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalescing despite queued same-fd writes: %+v", st)
	}
	data, _ := r.fsys.ReadFile("/gpfs/coal.out", fs.Root)
	want := append(append(bytes.Repeat([]byte{'0'}, 100), bytes.Repeat([]byte{'1'}, 100)...),
		bytes.Repeat([]byte{'2'}, 100)...)
	if !bytes.Equal(data, want) {
		t.Fatalf("coalesced writes corrupted the file: len=%d", len(data))
	}
}

// TestIONBackpressureStalls saturates a depth-1 ingress queue from two
// compute nodes: both must finish correctly and at least one must record
// stall cycles on its own chip's UPC unit.
func TestIONBackpressureStalls(t *testing.T) {
	r := newIONRig(2, ion.Config{QueueDepth: 1, CacheBlocks: 16})
	for cn := 0; cn < 2; cn++ {
		cn := cn
		cl := r.clients[cn]
		r.eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
			pid := uint32(cn + 1)
			cl.Call(c, &Request{Op: OpProcStart, PID: pid})
			rep := cl.Call(c, &Request{Op: OpOpen, PID: pid, TID: 1,
				Path: fmt.Sprintf("/gpfs/bp%d", cn), Flags: kernel.OCreat | kernel.OWronly, Mode: 0644})
			fd := int32(rep.Ret)
			for i := 0; i < 8; i++ {
				cl.Call(c, &Request{Op: OpWrite, PID: pid, TID: 1, FD: fd,
					Data: bytes.Repeat([]byte{byte(i)}, 512)})
			}
			cl.Call(c, &Request{Op: OpClose, PID: pid, TID: 1, FD: fd})
		})
	}
	r.eng.RunUntilIdle()
	r.eng.Shutdown()
	stalls := r.units[0].Get(upc.ChipScope, upc.IONStall) + r.units[1].Get(upc.ChipScope, upc.IONStall)
	if stalls == 0 {
		t.Fatal("depth-1 queue under two writers recorded no stalls")
	}
	for cn := 0; cn < 2; cn++ {
		data, errno := r.fsys.ReadFile(fmt.Sprintf("/gpfs/bp%d", cn), fs.Root)
		if errno != kernel.OK || len(data) != 8*512 {
			t.Fatalf("cn%d data incomplete under backpressure: %v len=%d", cn, errno, len(data))
		}
	}
	if st := r.node.Stats(); st.Depth != 0 || st.MaxDepth != 1 {
		t.Fatalf("credit accounting: %+v", st)
	}
}

// TestIONAppendMultiProxy has three compute nodes append records to the
// same file through the write-back cache. O_APPEND must position each
// write at the *effective* EOF — cached unflushed extents included — so
// after flush no record is lost, torn, or overwritten, whatever the
// interleaving of the three proxies.
func TestIONAppendMultiProxy(t *testing.T) {
	const nCN, records, recLen = 3, 4, 128
	r := newIONRig(nCN, ion.Config{QueueDepth: 2, CacheBlocks: 8})
	for cn := 0; cn < nCN; cn++ {
		cn := cn
		cl := r.clients[cn]
		r.eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
			pid := uint32(cn + 1)
			cl.Call(c, &Request{Op: OpProcStart, PID: pid})
			rep := cl.Call(c, &Request{Op: OpOpen, PID: pid, TID: 1, Path: "/gpfs/shared.log",
				Flags: kernel.OCreat | kernel.OWronly | kernel.OAppend, Mode: 0644})
			if rep.Errno != kernel.OK {
				t.Errorf("cn%d open: %v", cn, rep.Errno)
				return
			}
			fd := int32(rep.Ret)
			for i := 0; i < records; i++ {
				rec := bytes.Repeat([]byte{byte('a' + cn)}, recLen)
				if rep := cl.Call(c, &Request{Op: OpWrite, PID: pid, TID: 1, FD: fd, Data: rec}); rep.Ret != recLen {
					t.Errorf("cn%d append %d ret %d: %v", cn, i, rep.Ret, rep.Errno)
				}
			}
			cl.Call(c, &Request{Op: OpFsync, PID: pid, TID: 1, FD: fd})
			cl.Call(c, &Request{Op: OpClose, PID: pid, TID: 1, FD: fd})
		})
	}
	r.eng.RunUntilIdle()
	r.eng.Shutdown()
	data, errno := r.fsys.ReadFile("/gpfs/shared.log", fs.Root)
	if errno != kernel.OK || len(data) != nCN*records*recLen {
		t.Fatalf("appended file: errno %v len %d, want %d", errno, len(data), nCN*records*recLen)
	}
	got := make(map[byte]int)
	for off := 0; off < len(data); off += recLen {
		rec := data[off : off+recLen]
		for _, b := range rec {
			if b != rec[0] {
				t.Fatalf("torn record at offset %d", off)
			}
		}
		got[rec[0]]++
	}
	for cn := 0; cn < nCN; cn++ {
		if got[byte('a'+cn)] != records {
			t.Fatalf("cn%d records lost: found %d of %d (%v)", cn, got[byte('a'+cn)], records, got)
		}
	}
}

// TestIONCrashFlushesEIOAndDropsCache arms an ion_crash fault: the whole
// I/O node dies after N served calls. The unflushed write is lost, the
// caller rides the retry path to completion, and the credit pool drains
// back to zero depth.
func TestIONCrashFlushesEIOAndDropsCache(t *testing.T) {
	r := newIONRig(1, ion.Config{QueueDepth: 4, CacheBlocks: 16})
	inj := ras.NewInjector(r.eng, ras.NewLog(), ras.Plan{Seed: 7, IONCrashEvery: 4})
	r.srv.SetFaults(inj.Node(-1), 20_000)
	cl := r.clients[0]
	cl.SetRetryPolicy(DefaultRetryPolicy())
	var errs []kernel.Errno
	r.eng.Go("cn0", func(c *sim.Coro) {
		cl.Call(c, &Request{Op: OpProcStart, PID: 1})
		rep := cl.Call(c, &Request{Op: OpOpen, PID: 1, TID: 1, Path: "/gpfs/victim",
			Flags: kernel.OCreat | kernel.OWronly, Mode: 0644})
		fd := int32(rep.Ret)
		for i := 0; i < 6; i++ {
			rep := cl.Call(c, &Request{Op: OpWrite, PID: 1, TID: 1, FD: fd, Data: []byte("unflushed")})
			errs = append(errs, rep.Errno)
		}
	})
	r.eng.RunUntilIdle()
	r.eng.Shutdown()
	if r.srv.Crashes == 0 {
		t.Fatal("ion_crash plan never fired")
	}
	sawEIO := false
	for _, e := range errs {
		if e == kernel.EIO || e == kernel.ESRCH {
			sawEIO = true
		}
	}
	if !sawEIO {
		t.Fatalf("no caller saw the ION die: errnos %v", errs)
	}
	if r.node.Cache().DirtyBlocks() != 0 {
		t.Fatal("dirty blocks survived the ION crash")
	}
	if st := r.node.Stats(); st.Depth != 0 {
		t.Fatalf("credits leaked through the crash: depth %d", st.Depth)
	}
}

// TestIONPathDeterministic runs the contended end-to-end scenario twice
// and requires identical counter sets — the bit-identity contract the
// machine-level harness relies on.
func TestIONPathDeterministic(t *testing.T) {
	runOnce := func() (string, string) {
		r := newIONRig(4, ion.Config{QueueDepth: 2, CacheBlocks: 8})
		for cn := 0; cn < 4; cn++ {
			cn := cn
			cl := r.clients[cn]
			r.eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
				pid := uint32(cn + 1)
				cl.Call(c, &Request{Op: OpProcStart, PID: pid})
				rep := cl.Call(c, &Request{Op: OpOpen, PID: pid, TID: 1,
					Path: fmt.Sprintf("/gpfs/d%d", cn), Flags: kernel.OCreat | kernel.OWronly, Mode: 0644})
				fd := int32(rep.Ret)
				for i := 0; i < 5; i++ {
					cl.Call(c, &Request{Op: OpWrite, PID: pid, TID: 1, FD: fd,
						Data: bytes.Repeat([]byte{byte(cn)}, 300)})
				}
				cl.Call(c, &Request{Op: OpFsync, PID: pid, TID: 1, FD: fd})
				cl.Call(c, &Request{Op: OpClose, PID: pid, TID: 1, FD: fd})
			})
		}
		r.eng.RunUntilIdle()
		r.eng.Shutdown()
		stalls := ""
		for cn := 0; cn < 4; cn++ {
			stalls += fmt.Sprint(r.units[cn].Get(upc.ChipScope, upc.IONStallCycles), ";")
		}
		return fmt.Sprintf("%+v", r.node.Stats()), stalls
	}
	s1, st1 := runOnce()
	s2, st2 := runOnce()
	if s1 != s2 || st1 != st2 {
		t.Fatalf("runs diverged:\n%s / %s\nvs\n%s / %s", s1, st1, s2, st2)
	}
}
