package ciod

import (
	"testing"
	"testing/quick"

	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

func TestRequestWireRoundTrip(t *testing.T) {
	f := func(op uint8, pid, tid uint32, fd int32, flags uint64, off int64, path string, data []byte) bool {
		r := &Request{
			Op: op % 18, PID: pid, TID: tid, UID: 1, GID: 2, FD: fd,
			Flags: flags, Mode: 0644, Off: off, Whence: 1, Size: 99,
			Path: path, Path2: "p2", Data: data,
		}
		b := MarshalRequest(r)
		got, err := UnmarshalRequest(b)
		if err != nil {
			return false
		}
		return got.Op == r.Op && got.PID == r.PID && got.TID == r.TID &&
			got.FD == r.FD && got.Flags == r.Flags && got.Off == r.Off &&
			got.Path == r.Path && got.Path2 == r.Path2 && string(got.Data) == string(r.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyWireRoundTrip(t *testing.T) {
	r := &Reply{Ret: 42, Errno: kernel.ENOENT, Data: []byte{1, 2, 3}, Str: "/cwd"}
	got, err := UnmarshalReply(MarshalReply(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != 42 || got.Errno != kernel.ENOENT || got.Str != "/cwd" || len(got.Data) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestTruncatedMessageError(t *testing.T) {
	b := MarshalRequest(&Request{Op: OpWrite, Data: []byte("hello")})
	if _, err := UnmarshalRequest(b[:len(b)-3]); err == nil {
		t.Fatal("truncated request must error")
	}
	if _, err := UnmarshalReply([]byte{1, 2}); err == nil {
		t.Fatal("truncated reply must error")
	}
}

func TestStatWireRoundTrip(t *testing.T) {
	st := fs.Stat{Ino: 9, Type: fs.TypeDir, Mode: 0755, UID: 3, GID: 4, Size: 100, Nlink: 2, Mtime: 77}
	got, err := UnmarshalStat(MarshalStat(st))
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("got %+v want %+v", got, st)
	}
}

// shipped runs one client coroutine against a live CIOD server and returns
// the replies of the requested calls.
func shipped(t *testing.T, reqs []*Request) []*Reply {
	t.Helper()
	eng := sim.NewEngine()
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	filesystem := fs.New()
	filesystem.MustMkdirAll("/gpfs/job")
	NewServer(eng, tree.ION(), filesystem)
	cl := NewClient(tree.CN(0))
	var reps []*Reply
	eng.Go("cn", func(c *sim.Coro) {
		for _, r := range reqs {
			reps = append(reps, cl.Call(c, r))
		}
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	if len(reps) != len(reqs) {
		t.Fatalf("got %d replies for %d requests", len(reps), len(reqs))
	}
	return reps
}

func TestFunctionShipOpenWriteReadClose(t *testing.T) {
	reps := shipped(t, []*Request{
		{Op: OpProcStart, PID: 1, UID: 0},
		{Op: OpOpen, PID: 1, TID: 1, Path: "/gpfs/job/out.dat", Flags: kernel.OCreat | kernel.ORdwr, Mode: 0644},
		{Op: OpWrite, PID: 1, TID: 1, FD: 0, Data: []byte("function shipped")},
		{Op: OpLseek, PID: 1, TID: 1, FD: 0, Off: 0, Whence: kernel.SeekSet},
		{Op: OpRead, PID: 1, TID: 1, FD: 0, Size: 16},
		{Op: OpClose, PID: 1, TID: 1, FD: 0},
	})
	for i, r := range reps {
		if r.Errno != kernel.OK {
			t.Fatalf("call %d failed: %v", i, r.Errno)
		}
	}
	if string(reps[4].Data) != "function shipped" {
		t.Fatalf("read back %q", reps[4].Data)
	}
	if reps[2].Ret != 16 {
		t.Fatalf("write returned %d", reps[2].Ret)
	}
}

func TestCallWithoutProcStartFails(t *testing.T) {
	reps := shipped(t, []*Request{
		{Op: OpOpen, PID: 99, TID: 1, Path: "/x", Flags: kernel.ORdonly},
	})
	if reps[0].Errno != kernel.ESRCH {
		t.Fatalf("errno = %v, want ESRCH", reps[0].Errno)
	}
}

func TestProxyStateMirrorsProcess(t *testing.T) {
	// Working directory and seek offsets live in the ioproxy, mirroring
	// the CN process (paper Section IV-A).
	reps := shipped(t, []*Request{
		{Op: OpProcStart, PID: 1, UID: 0},
		{Op: OpChdir, PID: 1, TID: 1, Path: "/gpfs/job"},
		{Op: OpGetcwd, PID: 1, TID: 1},
		{Op: OpOpen, PID: 1, TID: 1, Path: "rel.txt", Flags: kernel.OCreat | kernel.OWronly, Mode: 0644},
		{Op: OpWrite, PID: 1, TID: 1, FD: 0, Data: []byte("x")},
		{Op: OpStat, PID: 1, TID: 1, Path: "/gpfs/job/rel.txt"},
	})
	if reps[2].Str != "/gpfs/job" {
		t.Fatalf("cwd = %q", reps[2].Str)
	}
	if reps[5].Errno != kernel.OK {
		t.Fatal("relative open did not resolve against proxy cwd")
	}
	st, _ := UnmarshalStat(reps[5].Data)
	if st.Size != 1 {
		t.Fatalf("stat size = %d", st.Size)
	}
}

func TestProxyCredentialsEnforced(t *testing.T) {
	eng := sim.NewEngine()
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	filesystem := fs.New()
	filesystem.MustMkdirAll("/secure")
	filesystem.Chmod("/", "/secure", 0700, fs.Root)
	NewServer(eng, tree.ION(), filesystem)
	cl := NewClient(tree.CN(0))
	var rep *Reply
	eng.Go("cn", func(c *sim.Coro) {
		cl.Call(c, &Request{Op: OpProcStart, PID: 1, UID: 1000, GID: 1000})
		rep = cl.Call(c, &Request{Op: OpOpen, PID: 1, TID: 1, Path: "/secure/f", Flags: kernel.OCreat | kernel.OWronly, Mode: 0644})
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	if rep.Errno != kernel.EACCES {
		t.Fatalf("errno = %v, want EACCES (proxy must mirror user creds)", rep.Errno)
	}
}

func TestOneProxyThreadPerAppThread(t *testing.T) {
	eng := sim.NewEngine()
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	srv := NewServer(eng, tree.ION(), fs.New())
	cl := NewClient(tree.CN(0))
	eng.Go("cn", func(c *sim.Coro) {
		cl.Call(c, &Request{Op: OpProcStart, PID: 5, UID: 0})
		for tid := uint32(1); tid <= 3; tid++ {
			cl.Call(c, &Request{Op: OpGetcwd, PID: 5, TID: tid})
		}
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	if n := srv.ProxyThreads(5); n != 3 {
		t.Fatalf("proxy threads = %d, want 3 (one per app thread)", n)
	}
	if srv.LiveProxies() != 1 {
		t.Fatalf("live proxies = %d", srv.LiveProxies())
	}
}

func TestProcExitTearsDownProxy(t *testing.T) {
	eng := sim.NewEngine()
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	srv := NewServer(eng, tree.ION(), fs.New())
	cl := NewClient(tree.CN(0))
	eng.Go("cn", func(c *sim.Coro) {
		cl.Call(c, &Request{Op: OpProcStart, PID: 5, UID: 0})
		cl.Call(c, &Request{Op: OpProcExit, PID: 5})
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	if srv.LiveProxies() != 0 {
		t.Fatal("proxy survived proc exit")
	}
	if srv.Proxies != 1 {
		t.Fatalf("Proxies counter = %d", srv.Proxies)
	}
}

func TestLoopbackMatchesServerSemantics(t *testing.T) {
	eng := sim.NewEngine()
	filesystem := fs.New()
	lb := NewLoopback(eng, filesystem)
	var reps []*Reply
	eng.Go("cn", func(c *sim.Coro) {
		reps = append(reps, lb.Call(c, &Request{Op: OpProcStart, PID: 1, UID: 0}))
		reps = append(reps, lb.Call(c, &Request{Op: OpOpen, PID: 1, TID: 1, Path: "/f", Flags: kernel.OCreat | kernel.OWronly, Mode: 0644}))
		reps = append(reps, lb.Call(c, &Request{Op: OpWrite, PID: 1, TID: 1, FD: 0, Data: []byte("lb")}))
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	for i, r := range reps {
		if r.Errno != kernel.OK {
			t.Fatalf("loopback call %d: %v", i, r.Errno)
		}
	}
	data, errno := filesystem.ReadFile("/f", fs.Root)
	if errno != kernel.OK || string(data) != "lb" {
		t.Fatalf("loopback write lost: %v %q", errno, data)
	}
}

func TestShippedCallChargesRoundTripTime(t *testing.T) {
	eng := sim.NewEngine()
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	NewServer(eng, tree.ION(), fs.New())
	cl := NewClient(tree.CN(0))
	var took sim.Cycles
	eng.Go("cn", func(c *sim.Coro) {
		start := c.Now()
		cl.Call(c, &Request{Op: OpProcStart, PID: 1})
		took = c.Now() - start
	})
	eng.RunUntilIdle()
	eng.Shutdown()
	min := 2 * collective.DefaultConfig().Latency
	if took < min {
		t.Fatalf("round trip %d cycles; must include two tree traversals (%d)", took, min)
	}
}

func TestReaddirShipped(t *testing.T) {
	reps := shipped(t, []*Request{
		{Op: OpProcStart, PID: 1, UID: 0},
		{Op: OpMkdir, PID: 1, TID: 1, Path: "/dir", Mode: 0755},
		{Op: OpOpen, PID: 1, TID: 1, Path: "/dir/a", Flags: kernel.OCreat | kernel.OWronly, Mode: 0644},
		{Op: OpOpen, PID: 1, TID: 1, Path: "/dir/b", Flags: kernel.OCreat | kernel.OWronly, Mode: 0644},
		{Op: OpReaddir, PID: 1, TID: 1, Path: "/dir"},
	})
	names, err := DecodeNames(reps[4].Data)
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("readdir: %v %v", err, names)
	}
}
