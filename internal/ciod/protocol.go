// Package ciod implements the CNK ⇔ CIOD function-shipped I/O protocol of
// paper Section IV-A (Fig 2). When an application on a compute node makes
// a file-I/O system call, CNK marshals the parameters into a message and
// ships it over the collective network to the Control and I/O Daemon on
// the I/O node. CIOD routes the message to an ioproxy dedicated to that
// compute-node process (with one proxy thread per application thread),
// which performs the real call against the I/O node's filesystem and ships
// the results back.
package ciod

import (
	"encoding/binary"
	"fmt"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// Op codes on the wire (aligned with the syscalls CNK function-ships, plus
// proxy lifecycle management).
const (
	OpOpen uint8 = iota
	OpClose
	OpRead
	OpWrite
	OpLseek
	OpStat
	OpFstat
	OpUnlink
	OpRename
	OpMkdir
	OpRmdir
	OpDup
	OpGetcwd
	OpChdir
	OpTruncate
	OpReaddir
	OpProcStart // create the ioproxy for a process
	OpProcExit  // tear it down
	OpFsync     // flush a descriptor's dirty cache blocks to stable storage
)

var opNames = [...]string{"open", "close", "read", "write", "lseek", "stat",
	"fstat", "unlink", "rename", "mkdir", "rmdir", "dup", "getcwd", "chdir",
	"truncate", "readdir", "proc_start", "proc_exit", "fsync"}

// OpName returns a debug name for an op code.
func OpName(op uint8) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// Request is one function-shipped call.
type Request struct {
	Op     uint8
	PID    uint32
	TID    uint32
	UID    uint32
	GID    uint32
	FD     int32
	FD2    int32 // unused except where noted
	Flags  uint64
	Mode   uint16
	Off    int64
	Whence int32
	Size   uint64
	Path   string
	Path2  string
	Data   []byte
}

// Reply is the result shipped back.
type Reply struct {
	Ret   uint64
	Errno kernel.Errno
	Data  []byte
	Str   string
}

// Transport is what the compute-node kernel uses to ship a request and
// block for its reply. Implementations: Client (over the collective
// network to a Server) and Loopback (directly against a filesystem, for
// unit tests of the CN kernel).
type Transport interface {
	Call(c *sim.Coro, req *Request) *Reply
}

// --- wire marshalling (encoding/binary, big-endian like the hardware) ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) need(n int) []byte {
	if d.err == nil && n >= 0 && len(d.b) >= n {
		v := d.b[:n]
		d.b = d.b[n:]
		return v
	}
	d.err = fmt.Errorf("ciod: truncated message")
	// Never allocate the claimed length: a corrupt header can claim 4GB.
	// Fixed-width readers need at most 8 zero bytes to limp along.
	if n > 8 || n < 0 {
		n = 8
	}
	return make([]byte, n)
}
func (d *dec) u8() uint8   { return d.need(1)[0] }
func (d *dec) u16() uint16 { return binary.BigEndian.Uint16(d.need(2)) }
func (d *dec) u32() uint32 { return binary.BigEndian.Uint32(d.need(4)) }
func (d *dec) u64() uint64 { return binary.BigEndian.Uint64(d.need(8)) }
func (d *dec) i32() int32  { return int32(d.u32()) }
func (d *dec) i64() int64  { return int64(d.u64()) }
func (d *dec) str() string { return string(d.need(int(d.u32()))) }
func (d *dec) bytes() []byte {
	n := int(d.u32())
	return append([]byte(nil), d.need(n)...)
}

// MarshalRequest renders the request in wire format.
func MarshalRequest(r *Request) []byte {
	e := &enc{}
	e.u8(r.Op)
	e.u32(r.PID)
	e.u32(r.TID)
	e.u32(r.UID)
	e.u32(r.GID)
	e.i32(r.FD)
	e.i32(r.FD2)
	e.u64(r.Flags)
	e.u16(r.Mode)
	e.i64(r.Off)
	e.i32(r.Whence)
	e.u64(r.Size)
	e.str(r.Path)
	e.str(r.Path2)
	e.bytes(r.Data)
	return e.b
}

// UnmarshalRequest parses wire format.
func UnmarshalRequest(b []byte) (*Request, error) {
	d := &dec{b: b}
	r := &Request{
		Op: d.u8(), PID: d.u32(), TID: d.u32(), UID: d.u32(), GID: d.u32(),
		FD: d.i32(), FD2: d.i32(), Flags: d.u64(), Mode: d.u16(),
		Off: d.i64(), Whence: d.i32(), Size: d.u64(),
		Path: d.str(), Path2: d.str(), Data: d.bytes(),
	}
	return r, d.err
}

// MarshalReply renders a reply in wire format.
func MarshalReply(r *Reply) []byte {
	e := &enc{}
	e.u64(r.Ret)
	e.i32(int32(r.Errno))
	e.str(r.Str)
	e.bytes(r.Data)
	return e.b
}

// UnmarshalReply parses a reply.
func UnmarshalReply(b []byte) (*Reply, error) {
	d := &dec{b: b}
	r := &Reply{Ret: d.u64(), Errno: kernel.Errno(d.i32()), Str: d.str(), Data: d.bytes()}
	return r, d.err
}

// StatWireSize is the byte length of a marshalled Stat.
const StatWireSize = 8 + 1 + 2 + 4 + 4 + 8 + 4 + 8

// MarshalStat encodes a Stat into reply data.
func MarshalStat(st fs.Stat) []byte {
	e := &enc{}
	e.u64(st.Ino)
	e.u8(uint8(st.Type))
	e.u16(uint16(st.Mode))
	e.u32(st.UID)
	e.u32(st.GID)
	e.u64(st.Size)
	e.u32(st.Nlink)
	e.u64(st.Mtime)
	return e.b
}

// UnmarshalStat decodes MarshalStat's output.
func UnmarshalStat(b []byte) (fs.Stat, error) {
	d := &dec{b: b}
	st := fs.Stat{
		Ino: d.u64(), Type: fs.FileType(d.u8()), Mode: fs.Mode(d.u16()),
		UID: d.u32(), GID: d.u32(), Size: d.u64(), Nlink: d.u32(), Mtime: d.u64(),
	}
	return st, d.err
}
