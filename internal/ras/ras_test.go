package ras

import (
	"strings"
	"testing"

	"bgcnk/internal/sim"
)

// drawAll exercises every site on two nodes and returns the log hash.
func drawAll(seed uint64) uint64 {
	eng := sim.NewEngine()
	l := NewLog()
	in := NewInjector(eng, l, Plan{
		Seed: seed, DDRCorrectable: 0.2, DDRUncorrectable: 0.05,
		TLBParity: 0.1, LinkCRC: 0.3, CIODDrop: 0.4, CIODCrashEvery: 3,
	})
	for _, n := range []int{0, 1, -1} {
		f := in.Node(n)
		for i := 0; i < 50; i++ {
			f.DDRAccess()
			f.TLBParity()
			f.LinkRetransmits("torus")
			f.ReplyDrop()
			f.CrashDue()
		}
	}
	return l.Hash()
}

func TestScheduleDeterministic(t *testing.T) {
	if drawAll(7) != drawAll(7) {
		t.Fatal("same seed must give identical fault schedules")
	}
	if drawAll(7) == drawAll(8) {
		t.Fatal("different seeds should diverge")
	}
}

func TestStreamsIndependentOfCreationOrder(t *testing.T) {
	eng := sim.NewEngine()
	plan := Plan{Seed: 3, LinkCRC: 0.5}
	a := NewInjector(eng, NewLog(), plan)
	b := NewInjector(eng, NewLog(), plan)
	a.Node(0)
	a.Node(5)
	b.Node(5) // reversed creation order
	b.Node(0)
	for i := 0; i < 20; i++ {
		if a.Node(5).LinkRetransmits("x") != b.Node(5).LinkRetransmits("x") {
			t.Fatal("stream depends on Node() creation order")
		}
	}
}

func TestResetRewindsSchedule(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, NewLog(), Plan{Seed: 11, DDRUncorrectable: 0.3, CIODCrashEvery: 2})
	f := in.Node(0)
	var first []bool
	for i := 0; i < 30; i++ {
		u, _ := f.DDRAccess()
		first = append(first, u, f.CrashDue())
	}
	in.Reset()
	for i := 0; i < 30; i++ {
		u, _ := f.DDRAccess()
		if u != first[2*i] {
			t.Fatalf("draw %d not replayed after Reset", i)
		}
		if f.CrashDue() != first[2*i+1] {
			t.Fatalf("crash countdown %d not rewound after Reset", i)
		}
	}
}

func TestLogTableAndCounts(t *testing.T) {
	l := NewLog()
	if got := l.Table(); got != "no RAS events\n" {
		t.Fatalf("empty table: %q", got)
	}
	l.Append(Event{Node: 0, Comp: "ddr", Class: CorrectableECC})
	l.Append(Event{Node: 0, Comp: "ddr", Class: CorrectableECC})
	l.Append(Event{Node: 1, Comp: "cnk", Class: JobKill, Detail: "x"})
	if l.Count(CorrectableECC) != 2 || l.Count(JobKill) != 1 || l.Total() != 3 {
		t.Fatalf("counts: %d %d %d", l.Count(CorrectableECC), l.Count(JobKill), l.Total())
	}
	tab := l.Table()
	if !strings.Contains(tab, "correctable_ecc") || !strings.Contains(tab, "job_kill") {
		t.Fatalf("table: %q", tab)
	}
	if strings.Contains(tab, "link_crc") {
		t.Fatal("zero classes must not render")
	}
}

func TestAttachTraceMirrorsEvents(t *testing.T) {
	tr := sim.NewTrace()
	before := tr.Hash()
	l := NewLog()
	l.AttachTrace(tr)
	l.Append(Event{Node: 2, Comp: "torus", Class: LinkCRC})
	if tr.Hash() == before {
		t.Fatal("RAS events must feed the reproducibility trace hash")
	}
}

func TestPlanEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() || (&Plan{Seed: 9}).Enabled() {
		t.Fatal("empty plans must be disabled")
	}
	if !(&Plan{CIODCrashEvery: 1}).Enabled() || !(&Plan{LinkCRC: 0.1}).Enabled() {
		t.Fatal("non-empty plans must be enabled")
	}
	if !DefaultPlan(1).Enabled() {
		t.Fatal("DefaultPlan must inject")
	}
}
