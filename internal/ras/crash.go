package ras

import "bgcnk/internal/sim"

// Service-node crash injection. The control system's crash-only story is
// only testable if service-node death is as deterministic as every other
// fault in this package: a CrashPlan seeds a CrashInjector whose draws
// are a pure function of (plan seed, incarnation generation, journal
// LSN), so a crash schedule replays exactly — yet differs between
// incarnations, so a recovered service node is not killed at the same
// LSN forever and the drain always makes progress.

// CrashSite is where in the control system's commit pipeline the
// injector is being consulted. The site constrains which crash classes
// can fire there (a mid-boot crash can only happen at a boot append).
type CrashSite int

const (
	SiteAppend     CrashSite = iota // a generic journal append
	SiteBoot                        // the partition-boot append
	SiteCkptCommit                  // a checkpoint-commit append
	SiteRecovery                    // an append issued by recovery itself
)

// CrashClass partitions service-node crashes by where the death lands
// relative to the journal, which is exactly what recovery has to get
// right: whether the record under append is durable, torn, or absent.
type CrashClass int

const (
	// CrashPreAppend kills the node before the record reaches the
	// journal: the transition never happened.
	CrashPreAppend CrashClass = iota
	// CrashPostAppend kills the node after the record is durable but
	// before the in-memory state applies it: replay must reapply.
	CrashPostAppend
	// CrashMidBoot kills the node between a partition-boot record and
	// the job's completion record: recovery finds an orphaned boot.
	CrashMidBoot
	// CrashMidCkptCommit tears the checkpoint-commit record itself:
	// replay must drop the torn tail and resume from the previous
	// committed checkpoint.
	CrashMidCkptCommit
	// CrashDuringRecovery kills the node while recovery is writing its
	// own reconciliation records: recovery must be idempotent.
	CrashDuringRecovery

	NumCrashClasses
)

var crashClassNames = [NumCrashClasses]string{
	"pre_append", "post_append", "mid_boot", "mid_ckpt_commit", "during_recovery",
}

func (c CrashClass) String() string {
	if c >= 0 && c < NumCrashClasses {
		return crashClassNames[c]
	}
	return "crash(?)"
}

// CrashPlan configures deterministic service-node crash injection. The
// zero value injects nothing.
type CrashPlan struct {
	// Seed drives every draw; same seed, same crash schedule.
	Seed uint64
	// Rate is the per-consultation probability that the service node
	// dies at an eligible crash point.
	Rate float64
	// MaxCrashes caps total deaths per drain so the crash matrix always
	// terminates; 0 means DefaultMaxCrashes.
	MaxCrashes int
	// Classes restricts which crash classes may fire; nil or empty
	// allows all of them.
	Classes []CrashClass
}

// DefaultMaxCrashes bounds a drain's total service-node deaths when the
// plan does not say otherwise.
const DefaultMaxCrashes = 8

// Enabled reports whether the plan can inject anything at all.
func (p *CrashPlan) Enabled() bool { return p != nil && p.Rate > 0 }

func (p *CrashPlan) maxCrashes() int {
	if p.MaxCrashes > 0 {
		return p.MaxCrashes
	}
	return DefaultMaxCrashes
}

func (p *CrashPlan) allows(c CrashClass) bool {
	if len(p.Classes) == 0 {
		return true
	}
	for _, a := range p.Classes {
		if a == c {
			return true
		}
	}
	return false
}

// CrashInjector decides, at each journal append, whether the service
// node dies there and how. Draws are keyed to (seed, generation, LSN):
// generation is the number of crashes fired so far, so each incarnation
// sees a fresh — but fully reproducible — schedule.
type CrashInjector struct {
	plan  *CrashPlan
	fired int
}

// NewCrashInjector builds an injector for plan (nil-safe: a nil or
// disabled plan never fires).
func NewCrashInjector(plan *CrashPlan) *CrashInjector {
	return &CrashInjector{plan: plan}
}

// Crashes returns how many times the injector has fired.
func (ci *CrashInjector) Crashes() int { return ci.fired }

// Exhausted reports whether the MaxCrashes cap disarmed the injector.
func (ci *CrashInjector) Exhausted() bool {
	return ci.plan.Enabled() && ci.fired >= ci.plan.maxCrashes()
}

// At consults the injector at the append of journal record lsn from
// site. It returns the crash class and true if the service node dies
// here, advancing the generation so the next incarnation draws a
// different schedule.
func (ci *CrashInjector) At(lsn uint64, site CrashSite) (CrashClass, bool) {
	p := ci.plan
	if !p.Enabled() || ci.fired >= p.maxCrashes() {
		return 0, false
	}
	rng := sim.NewRNG(p.Seed ^ 0xc7a5_4c9d_0b5e_d00d).Fork(uint64(ci.fired)).Fork(lsn)
	if rng.Float64() >= p.Rate {
		return 0, false
	}
	var class CrashClass
	switch site {
	case SiteBoot:
		class = CrashMidBoot
	case SiteCkptCommit:
		class = CrashMidCkptCommit
	case SiteRecovery:
		class = CrashDuringRecovery
	default:
		if rng.Float64() < 0.5 {
			class = CrashPreAppend
		} else {
			class = CrashPostAppend
		}
	}
	if !p.allows(class) {
		return 0, false
	}
	ci.fired++
	return class, true
}
