// Package ras models the machine's Reliability, Availability and
// Serviceability layer: a machine-wide RAS event log plus a deterministic,
// seed-driven fault injector.
//
// The paper's operational claims — LINPACK runs differing by <0.01%,
// week-long stability, a reproducible-reset protocol that brings a chip
// back bit-identically — are reliability claims, yet a simulator that only
// ever runs on a perfect machine cannot exercise them. The injector here
// draws every fault from sim.RNG streams forked per (node, site) from one
// plan seed, so a given seed yields a bit-identical fault schedule: runs
// remain a pure function of their seeds even while DDR flips bits, links
// corrupt packets, and CIOD crashes. That determinism is what makes fault
// tolerance debuggable (Aviram et al.) and is the property the bringup
// methodology of paper Section III relies on for fault localization.
package ras

import (
	"fmt"
	"hash/fnv"
	"strings"

	"bgcnk/internal/sim"
)

// Class identifies one kind of RAS event. The first group are injected
// faults; the reaction classes record what a kernel or client did about
// them.
type Class uint8

// RAS event classes.
const (
	// Injected faults.
	CorrectableECC   Class = iota // DDR single-bit error, corrected by ECC
	UncorrectableECC              // DDR multi-bit error, data lost
	TLBParity                     // parity error on a matched TLB entry
	LinkCRC                       // network packet failed CRC, retransmitted
	CIODDrop                      // CIOD reply lost on the tree
	CIODCrash                     // CIOD daemon died and restarted
	// Reactions.
	CIODGiveUp      // client exhausted retries and surfaced EIO
	JobKill         // kernel terminated the job cleanly
	Recovery        // kernel absorbed/recovered the fault in place
	ServiceCrash    // service node died at an injected crash point
	ServiceRecovery // service node replayed its journal and reconciled
	IONCrash        // I/O node died: every attached CN's in-flight calls EIO-flushed
	// Hard network faults (injected at drawn cycles, machine-wide).
	LinkFail // a directed torus link died; traffic must detour or be lost
	NodeFail // a whole node's torus interface died with all its links

	NumClasses
)

var classNames = [NumClasses]string{
	"correctable_ecc", "uncorrectable_ecc", "tlb_parity", "link_crc",
	"ciod_drop", "ciod_crash", "ciod_give_up", "job_kill", "recovery",
	"service_crash", "service_recovery", "ion_crash", "link_fail", "node_fail",
}

func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "class(?)"
}

// Event is one RAS log entry.
type Event struct {
	At     sim.Cycles
	Node   int // compute node ID; I/O nodes use -1-treeIndex
	Comp   string
	Class  Class
	Detail string
}

// Log is the machine-wide RAS event log: an append-only event list,
// per-class counts, and a running FNV hash in the style of sim.Trace, so
// two runs produced the same fault schedule and reactions iff their RAS
// hashes match.
type Log struct {
	events []Event
	counts [NumClasses]uint64
	hash   uint64
	trace  *sim.Trace
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{hash: 14695981039346656037} }

// AttachTrace mirrors every appended event into tr, so the run's
// cycle-reproducibility hash covers the fault schedule and the kernel's
// reactions to it.
func (l *Log) AttachTrace(tr *sim.Trace) { l.trace = tr }

// Append records an event.
func (l *Log) Append(e Event) {
	l.events = append(l.events, e)
	l.counts[e.Class]++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d|%s", uint64(e.At), e.Node, e.Comp, e.Class, e.Detail)
	l.hash = l.hash*1099511628211 ^ h.Sum64()
	if l.trace != nil {
		l.trace.Record(e.At, "ras", fmt.Sprintf("node %d %s %s: %s", e.Node, e.Comp, e.Class, e.Detail))
	}
}

// Count returns the number of events of one class.
func (l *Log) Count(c Class) uint64 { return l.counts[c] }

// Mark is a position in the log, taken before a region of a run so the
// region's events can be hashed independently of what preceded them.
type Mark int

// Mark returns the current log position.
func (l *Log) Mark() Mark { return Mark(len(l.events)) }

// CountSince returns the number of events appended after m.
func (l *Log) CountSince(m Mark) uint64 { return uint64(len(l.events) - int(m)) }

// HashSince digests the events appended after m with their times rebased
// to base (normally the job's boot instant). The running Hash covers
// absolute cycle times, which is right for whole-run identity but useless
// for comparing a job on a rebooted machine against the same job on a
// fresh one — the reboot shifts every timestamp. Two time-shifted but
// otherwise identical event sequences HashSince-equal.
func (l *Log) HashSince(m Mark, base sim.Cycles) uint64 {
	hash := uint64(14695981039346656037)
	for _, e := range l.events[m:] {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%d|%s|%d|%s", uint64(e.At-base), e.Node, e.Comp, e.Class, e.Detail)
		hash = hash*1099511628211 ^ h.Sum64()
	}
	return hash
}

// Total returns the number of events logged.
func (l *Log) Total() uint64 { return uint64(len(l.events)) }

// Hash returns the running hash over all events.
func (l *Log) Hash() uint64 { return l.hash }

// Events returns the recorded events, oldest first.
func (l *Log) Events() []Event { return l.events }

// Table renders the per-class counts (non-zero classes only), aligned for
// reports; empty logs render a single "no RAS events" line.
func (l *Log) Table() string {
	var b strings.Builder
	any := false
	for c := Class(0); c < NumClasses; c++ {
		if l.counts[c] == 0 {
			continue
		}
		any = true
		fmt.Fprintf(&b, "%-18s %8d\n", c.String(), l.counts[c])
	}
	if !any {
		return "no RAS events\n"
	}
	return b.String()
}
