package ras

import "bgcnk/internal/sim"

// maxLinkRetrans bounds consecutive CRC corruptions of one transfer so a
// pathological plan cannot stall a link forever.
const maxLinkRetrans = 8

// defaultRestartDelay is how long a crashed CIOD takes to respawn when the
// plan does not say.
const defaultRestartDelay = sim.Cycles(100_000)

// Plan configures the fault injector. Every field is a probability per
// opportunity (one DDR fill, one TLB lookup, one link transfer, one CIOD
// reply) except the crash cadence. The zero value injects nothing.
type Plan struct {
	// Seed determines the entire fault schedule. Two machines built from
	// equal plans draw bit-identical faults.
	Seed uint64

	DDRCorrectable   float64 // single-bit ECC per DDR (L3-miss) fill
	DDRUncorrectable float64 // multi-bit ECC per DDR fill
	TLBParity        float64 // parity per TLB lookup that matched an entry
	LinkCRC          float64 // CRC corruption per link transfer attempt
	CIODDrop         float64 // reply loss per CIOD reply

	// CIODCrashEvery crashes the daemon after every N served calls
	// (0 = never); it restarts CIODRestartDelay cycles later with all
	// ioproxy state lost.
	CIODCrashEvery   uint64
	CIODRestartDelay sim.Cycles

	// IONCrashEvery kills the whole I/O node after every N served calls
	// (0 = never): the daemon dies exactly as under CIODCrashEvery — every
	// attached CN's in-flight calls are EIO-flushed by the same machinery —
	// and additionally the ION's write-back buffer cache loses its dirty
	// blocks. A deterministic counter rather than a probability: it must
	// not consume RNG draws, so arming it cannot perturb the DDR/TLB/link
	// fault schedules shared with ION-off runs.
	IONCrashEvery uint64

	// Hard network faults. LinkFails directed torus links and NodeFails
	// whole torus interfaces die at cycles drawn uniformly from
	// (0, NetFailWindow] (defaulted by NetWindow when zero). The draw
	// comes from a dedicated machine-wide stream derived from NetSeed, so
	// arming hard network faults consumes no draws from the per-node
	// DDR/TLB/link/CIOD streams: the probabilistic fault schedule stays
	// byte-identical whether or not the network is breaking.
	LinkFails     int
	NodeFails     int
	NetFailWindow sim.Cycles

	// NetResilienceOff disables the torus's fault-region rerouting and
	// end-to-end retransmit layer, leaving only the hard faults: packets
	// crossing a dead link are silently lost and receivers surface
	// timeouts. The "degrade" experiment's baseline arm.
	NetResilienceOff bool

	// FWKPanicEvery makes the FWK treat every Nth uncorrectable DDR error
	// it observes as fatal (0 = never, the default: the FWK's scrub
	// absorbs them all). The real full-weight kernel cannot always paper
	// over a multi-bit error either — when the corrupted line belongs to
	// kernel or daemon state the node panics — and the resilience
	// experiments need that fatal path to compare restart behaviour
	// across kernels. A deterministic counter rather than a probability:
	// it must not consume RNG draws, so arming it cannot perturb the DDR
	// fault schedule shared with CNK runs.
	FWKPanicEvery uint64
}

// Enabled reports whether the plan injects anything.
func (p *Plan) Enabled() bool {
	return p != nil && (p.DDRCorrectable > 0 || p.DDRUncorrectable > 0 ||
		p.TLBParity > 0 || p.LinkCRC > 0 || p.CIODDrop > 0 || p.CIODCrashEvery > 0 ||
		p.IONCrashEvery > 0 || p.NetEnabled())
}

// NetEnabled reports whether the plan kills torus links or nodes.
func (p *Plan) NetEnabled() bool {
	return p != nil && (p.LinkFails > 0 || p.NodeFails > 0)
}

// defaultNetWindow bounds drawn network-fault cycles when the plan does
// not say: ~2.4ms, early enough to land inside even quick jobs.
const defaultNetWindow = sim.Cycles(2_000_000)

// NetWindow returns the network-fault draw window, defaulted.
func (p *Plan) NetWindow() sim.Cycles {
	if p.NetFailWindow > 0 {
		return p.NetFailWindow
	}
	return defaultNetWindow
}

// NetSeed derives the dedicated machine-wide stream seed for the hard
// network-fault draw. Keeping it disjoint from the per-(node, site)
// streams means arming LinkFails/NodeFails cannot perturb any
// probabilistic fault schedule.
func (p *Plan) NetSeed() uint64 { return p.Seed ^ 0x6e65745fdead11bc }

// RestartDelay returns the CIOD respawn time, defaulted.
func (p *Plan) RestartDelay() sim.Cycles {
	if p.CIODRestartDelay > 0 {
		return p.CIODRestartDelay
	}
	return defaultRestartDelay
}

// DefaultPlan returns a moderate all-classes plan for the CLI and the
// stability-under-fault experiment: enough activity to populate every
// counter over a quick LINPACK run without drowning the machine.
func DefaultPlan(seed uint64) *Plan {
	return &Plan{
		Seed:             seed,
		DDRCorrectable:   2e-4,
		DDRUncorrectable: 2e-6,
		TLBParity:        1e-6,
		LinkCRC:          1e-2,
		CIODDrop:         0.1,
		CIODCrashEvery:   300,
		CIODRestartDelay: defaultRestartDelay,
	}
}

// Injector owns the machine's fault streams. All draws come from sim.RNG
// children derived purely from (plan seed, node, site), so stream creation
// order cannot perturb the schedule and Reset can rewind it exactly — a
// reproducible restart replays the same faults (fault localization, paper
// Section III).
type Injector struct {
	eng   *sim.Engine
	log   *Log
	plan  Plan
	nodes map[int]*NodeFaults
}

// NewInjector builds the injector for one machine.
func NewInjector(eng *sim.Engine, log *Log, plan Plan) *Injector {
	return &Injector{eng: eng, log: log, plan: plan, nodes: make(map[int]*NodeFaults)}
}

// Plan returns the configured plan.
func (in *Injector) Plan() Plan { return in.plan }

// Log returns the injector's RAS log.
func (in *Injector) Log() *Log { return in.log }

// Per-node fault sites, each with a private RNG stream.
const (
	siteDDR = iota
	siteTLB
	siteLink
	siteCIOD
	numSites
)

// stream derives the (node, site) generator independent of creation order.
func (in *Injector) stream(node int, site uint64) *sim.RNG {
	return sim.NewRNG(in.plan.Seed ^ 0x5a17c0de5eed1234).
		Fork(uint64(int64(node))*numSites + site)
}

// Node returns node n's fault source, creating it on first use. I/O nodes
// conventionally use negative IDs (-1-treeIndex) so their streams never
// collide with compute nodes'.
func (in *Injector) Node(n int) *NodeFaults {
	if f, ok := in.nodes[n]; ok {
		return f
	}
	f := &NodeFaults{in: in, node: n}
	f.rewind()
	in.nodes[n] = f
	return f
}

// Reset rewinds every node's streams and crash counters to their initial
// state, replaying the schedule from the top. The reproducible-reset
// recovery path calls this so a restarted run faces the identical fault
// schedule the interrupted run did.
func (in *Injector) Reset() {
	for _, f := range in.nodes {
		f.rewind()
	}
}

// NodeFaults is one node's view of the injector: per-site RNG streams plus
// the CIOD crash countdown (I/O-node side).
type NodeFaults struct {
	in   *Injector
	node int

	ddr, tlb, link, ciod *sim.RNG
	served               uint64
	ionServed            uint64
	uncorrSeen           uint64
}

func (f *NodeFaults) rewind() {
	f.ddr = f.in.stream(f.node, siteDDR)
	f.tlb = f.in.stream(f.node, siteTLB)
	f.link = f.in.stream(f.node, siteLink)
	f.ciod = f.in.stream(f.node, siteCIOD)
	f.served = 0
	f.ionServed = 0
	f.uncorrSeen = 0
}

func (f *NodeFaults) report(class Class, comp, detail string) {
	f.in.log.Append(Event{
		At: f.in.eng.Now(), Node: f.node, Comp: comp, Class: class, Detail: detail,
	})
}

// Report records a reaction event observed by a kernel or client
// (JobKill, Recovery, CIODGiveUp) against this node.
func (f *NodeFaults) Report(class Class, comp, detail string) {
	f.report(class, comp, detail)
}

// DDRAccess draws one DDR-fill fault. At most one of the results is true;
// the event is logged here so every consumer charges consistently.
func (f *NodeFaults) DDRAccess() (uncorrectable, correctable bool) {
	p := &f.in.plan
	if p.DDRUncorrectable <= 0 && p.DDRCorrectable <= 0 {
		return false, false
	}
	v := f.ddr.Float64()
	switch {
	case v < p.DDRUncorrectable:
		f.report(UncorrectableECC, "ddr", "multi-bit ECC error on L3-miss fill")
		return true, false
	case v < p.DDRUncorrectable+p.DDRCorrectable:
		f.report(CorrectableECC, "ddr", "single-bit error corrected by ECC")
		return false, true
	}
	return false, false
}

// TLBParity draws one lookup's parity fault.
func (f *NodeFaults) TLBParity() bool {
	if f.in.plan.TLBParity <= 0 {
		return false
	}
	if f.tlb.Float64() < f.in.plan.TLBParity {
		f.report(TLBParity, "tlb", "parity error on matched entry, invalidated")
		return true
	}
	return false
}

// LinkRetransmits draws how many consecutive CRC-corrupted attempts one
// link transfer suffers before going through clean (geometric, bounded).
// Each corrupted attempt is logged; the caller charges the retransmit and
// backoff cycles.
func (f *NodeFaults) LinkRetransmits(comp string) int {
	p := f.in.plan.LinkCRC
	if p <= 0 {
		return 0
	}
	n := 0
	for n < maxLinkRetrans && f.link.Float64() < p {
		n++
		f.report(LinkCRC, comp, "packet CRC mismatch, sender retransmitting")
	}
	return n
}

// ReplyDrop draws whether one CIOD reply is lost on the tree.
func (f *NodeFaults) ReplyDrop() bool {
	if f.in.plan.CIODDrop <= 0 {
		return false
	}
	if f.ciod.Float64() < f.in.plan.CIODDrop {
		f.report(CIODDrop, "ciod", "reply lost on collective tree")
		return true
	}
	return false
}

// CrashDue counts one served CIOD call and reports whether the daemon
// crashes after it.
func (f *NodeFaults) CrashDue() bool {
	every := f.in.plan.CIODCrashEvery
	if every == 0 {
		return false
	}
	f.served++
	if f.served >= every {
		f.served = 0
		f.report(CIODCrash, "ciod", "daemon crashed, ioproxy state lost")
		return true
	}
	return false
}

// IONCrashDue counts one served call against the IONCrashEvery cadence
// and reports whether the whole I/O node dies after it. Like FWKPanicDue
// it is purely a counter — no RNG draw — so arming ION crashes leaves
// every probabilistic fault stream byte-identical.
func (f *NodeFaults) IONCrashDue() bool {
	every := f.in.plan.IONCrashEvery
	if every == 0 {
		return false
	}
	f.ionServed++
	if f.ionServed >= every {
		f.ionServed = 0
		f.report(IONCrash, "ion", "I/O node died, buffer cache and ioproxy state lost")
		return true
	}
	return false
}

// FWKPanicDue counts one uncorrectable DDR error observed by an FWK and
// reports whether this one is fatal under the plan's FWKPanicEvery
// cadence. Purely a counter — no RNG draw — so the DDR schedule itself is
// byte-identical whether or not the fatal path is armed.
func (f *NodeFaults) FWKPanicDue() bool {
	every := f.in.plan.FWKPanicEvery
	if every == 0 {
		return false
	}
	f.uncorrSeen++
	if f.uncorrSeen >= every {
		f.uncorrSeen = 0
		return true
	}
	return false
}

// RestartDelay returns the daemon respawn time from the plan.
func (f *NodeFaults) RestartDelay() sim.Cycles { return f.in.plan.RestartDelay() }
