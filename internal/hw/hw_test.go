package hw

import (
	"bytes"
	"testing"
	"testing/quick"

	"bgcnk/internal/sim"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(1 << 20)
	src := []byte("the quick brown fox")
	m.Write(100, src)
	dst := make([]byte, len(src))
	m.Read(100, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("round trip: got %q", dst)
	}
}

func TestMemoryCrossesChunkBoundary(t *testing.T) {
	m := NewMemory(1 << 20)
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i)
	}
	pa := PAddr(memChunk - 500)
	m.Write(pa, src)
	dst := make([]byte, len(src))
	m.Read(pa, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("chunk-spanning round trip failed")
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory(1 << 20)
	dst := []byte{1, 2, 3, 4}
	m.Read(5000, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("unwritten memory should read as zero")
		}
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	m := NewMemory(1024)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.Write(1020, []byte{1, 2, 3, 4, 5})
}

func TestMemoryU64BigEndian(t *testing.T) {
	m := NewMemory(1 << 16)
	m.WriteU64(64, 0x0102030405060708)
	var b [8]byte
	m.Read(64, b[:])
	if b[0] != 1 || b[7] != 8 {
		t.Fatalf("not big-endian: % x", b)
	}
	if v := m.ReadU64(64); v != 0x0102030405060708 {
		t.Fatalf("ReadU64 = %#x", v)
	}
}

func TestMemoryU64PropertyRoundTrip(t *testing.T) {
	m := NewMemory(1 << 16)
	f := func(v uint64, off uint16) bool {
		pa := PAddr(off % 60000)
		m.WriteU64(pa, v)
		return m.ReadU64(pa) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfRefreshPreservesAcrossReset(t *testing.T) {
	ch := NewChip(ChipConfig{ID: 0})
	ch.Mem.Write(4096, []byte("persistent"))
	ch.Mem.EnterSelfRefresh()
	ch.Reset()
	got := make([]byte, 10)
	ch.Mem.Read(4096, got)
	if string(got) != "persistent" {
		t.Fatalf("self-refresh lost data: %q", got)
	}
}

func TestResetWithoutSelfRefreshLosesDDR(t *testing.T) {
	ch := NewChip(ChipConfig{ID: 0})
	ch.Mem.Write(4096, []byte("volatile"))
	ch.Reset()
	got := make([]byte, 8)
	ch.Mem.Read(4096, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("reset without self-refresh should scramble DDR")
		}
	}
}

func TestTLBStaticMapNoMisses(t *testing.T) {
	var tlb TLB
	tlb.InsertPinned(TLBEntry{PID: 1, VBase: 0, PBase: 0x1000000, Size: Page16M, Perms: PermRWX})
	for va := VAddr(0); va < VAddr(Page16M); va += 123457 {
		pa, perm, ok := tlb.Lookup(1, va)
		if !ok {
			t.Fatalf("miss at %#x under static map", uint64(va))
		}
		if pa != 0x1000000+PAddr(va) {
			t.Fatalf("bad translation %#x -> %#x", uint64(va), uint64(pa))
		}
		if !perm.Has(PermRW) {
			t.Fatal("perms lost")
		}
	}
	if tlb.Misses != 0 {
		t.Fatalf("misses = %d, want 0", tlb.Misses)
	}
}

func TestTLBMissAndDynamicFill(t *testing.T) {
	var tlb TLB
	if _, _, ok := tlb.Lookup(1, 0x5000); ok {
		t.Fatal("empty TLB must miss")
	}
	tlb.Insert(TLBEntry{PID: 1, VBase: 0x5000, PBase: 0x9000, Size: Page4K, Perms: PermRW})
	if pa, _, ok := tlb.Lookup(1, 0x5FFF); !ok || pa != 0x9FFF {
		t.Fatalf("fill failed: pa=%#x ok=%v", uint64(pa), ok)
	}
}

func TestTLBASIDIsolation(t *testing.T) {
	var tlb TLB
	tlb.Insert(TLBEntry{PID: 1, VBase: 0, PBase: 0, Size: Page1M, Perms: PermRW})
	if _, _, ok := tlb.Lookup(2, 100); ok {
		t.Fatal("translation leaked across address spaces")
	}
	tlb.InvalidateASID(1)
	if _, _, ok := tlb.Lookup(1, 100); ok {
		t.Fatal("InvalidateASID left entry")
	}
}

func TestTLBRoundRobinEvictionSparesPinned(t *testing.T) {
	var tlb TLB
	tlb.InsertPinned(TLBEntry{PID: 9, VBase: 0xF0000000, PBase: 0, Size: Page1M, Perms: PermRW})
	// Overfill with dynamic entries.
	for i := 0; i < TLBSize*2; i++ {
		tlb.Insert(TLBEntry{PID: 1, VBase: VAddr(i) * VAddr(Page4K), PBase: 0, Size: Page4K, Perms: PermRW})
	}
	if _, _, ok := tlb.Lookup(9, 0xF0000000); !ok {
		t.Fatal("pinned entry evicted")
	}
	if tlb.ValidCount() != TLBSize {
		t.Fatalf("valid = %d, want %d", tlb.ValidCount(), TLBSize)
	}
}

func TestTLBAllPinnedInsertPanics(t *testing.T) {
	var tlb TLB
	for i := 0; i < TLBSize; i++ {
		tlb.InsertPinned(TLBEntry{PID: 1, VBase: VAddr(i) << 20, PBase: 0, Size: Page1M, Perms: PermRW})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic inserting into fully pinned TLB")
		}
	}()
	tlb.Insert(TLBEntry{PID: 1, VBase: 0xFF000000, Size: Page4K, Perms: PermRW})
}

func TestCacheL1HitAfterWarmup(t *testing.T) {
	cs := NewCacheSim(4)
	c0, _ := cs.Access(0, 0x1000, 2048, false, 0)
	if c0 == 0 {
		t.Fatal("cold access should cost cycles")
	}
	c1, _ := cs.Access(0, 0x1000, 2048, false, 1000)
	if c1 != 0 {
		t.Fatalf("warm L1 access cost %d, want 0", c1)
	}
	if cs.L1Misses[0] == 0 || cs.L1Hits[0] == 0 {
		t.Fatal("counters not updated")
	}
}

func TestCachePrivateL1SharedL3(t *testing.T) {
	cs := NewCacheSim(4)
	cs.Access(0, 0x2000, 64, false, 0) // cold: misses to DDR
	cost1, _ := cs.Access(1, 0x2000, 64, false, 100)
	// Core 1 misses its private L1 but hits shared L3.
	if cost1 == 0 {
		t.Fatal("core 1 should miss its own L1")
	}
	if cost1 >= CostDDR {
		t.Fatalf("core 1 cost %d should be an L3 hit (<%d)", cost1, CostDDR)
	}
}

func TestCacheDeterministicCosts(t *testing.T) {
	run := func() sim.Cycles {
		cs := NewCacheSim(4)
		var total sim.Cycles
		for i := 0; i < 1000; i++ {
			c, _ := cs.Access(i%4, PAddr(i*37)%(1<<20), 64, i%2 == 0, sim.Cycles(i*13))
			total += c
		}
		return total
	}
	if run() != run() {
		t.Fatal("cache cost model is not deterministic")
	}
}

func TestCacheRefreshWindowStalls(t *testing.T) {
	cs := NewCacheSim(1)
	// An access inside the refresh window costs more than one outside.
	inWin, _ := cs.Access(0, 0x100000, 4, false, 0) // phase 0 < RefreshLen
	cs2 := NewCacheSim(1)
	outWin, _ := cs2.Access(0, 0x100000, 4, false, RefreshLen+10)
	if inWin <= outWin {
		t.Fatalf("refresh stall missing: in=%d out=%d", inWin, outWin)
	}
	if cs.RefreshStalls != 1 {
		t.Fatalf("RefreshStalls = %d", cs.RefreshStalls)
	}
}

func TestCacheParityInjection(t *testing.T) {
	cs := NewCacheSim(2)
	cs.ArmL1Parity(1)
	_, ev := cs.Access(0, 0, 4, false, 0)
	if ev != EvNone {
		t.Fatal("parity delivered to wrong core")
	}
	_, ev = cs.Access(1, 0, 4, false, 0)
	if ev != EvL1Parity {
		t.Fatal("armed parity not delivered")
	}
	_, ev = cs.Access(1, 0, 4, false, 0)
	if ev != EvNone {
		t.Fatal("parity should fire once")
	}
}

func TestCacheFlushAllColdAfter(t *testing.T) {
	cs := NewCacheSim(1)
	cs.Access(0, 0x3000, 64, false, 0)
	cs.FlushAll()
	cost, _ := cs.Access(0, 0x3000, 64, false, RefreshLen+1)
	if cost < CostDDR {
		t.Fatalf("post-flush access cost %d, want DDR miss", cost)
	}
}

func TestChipUnits(t *testing.T) {
	ch := NewChip(ChipConfig{ID: 3})
	for _, u := range AllUnits() {
		if !ch.UnitEnabled(u) {
			t.Fatalf("unit %v should default enabled", u)
		}
	}
	ch.SetUnitEnabled(UnitTorus, false)
	if ch.UnitEnabled(UnitTorus) {
		t.Fatal("disable failed")
	}
	ch.Reset()
	if ch.UnitEnabled(UnitTorus) {
		t.Fatal("unit fuses must survive reset (they model broken hardware)")
	}
}

func TestChipDACGuard(t *testing.T) {
	ch := NewChip(ChipConfig{})
	core := ch.Cores[2]
	core.DAC[0] = DACRange{Enabled: true, PID: 7, Lo: 0x10000, Hi: 0x11000}
	if !core.CheckDAC(7, 0x10800) {
		t.Fatal("store in guard range must trip DAC")
	}
	if core.CheckDAC(7, 0x11000) {
		t.Fatal("Hi bound is exclusive")
	}
	if core.CheckDAC(8, 0x10800) {
		t.Fatal("DAC must be PID-qualified")
	}
}

func TestChipScanIsDestructive(t *testing.T) {
	ch := NewChip(ChipConfig{})
	h1 := ch.Scan()
	if !ch.Scanned {
		t.Fatal("scan must mark chip")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("use after scan must panic")
			}
		}()
		ch.MustBeUsable()
	}()
	ch.Reset()
	ch.MustBeUsable()
	h2 := ch.Scan()
	if h1 != h2 {
		// After reset both chips are in the pristine state, so the scans
		// should agree (counters cleared).
		t.Fatalf("pristine scans differ: %x vs %x", h1, h2)
	}
}

func TestChipStateHashReflectsActivity(t *testing.T) {
	a := NewChip(ChipConfig{})
	b := NewChip(ChipConfig{})
	if a.StateHash() != b.StateHash() {
		t.Fatal("identical pristine chips must hash equal")
	}
	a.Cores[0].Interrupts++
	if a.StateHash() == b.StateHash() {
		t.Fatal("state change must alter hash")
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignDown(0x12345, 0x1000) != 0x12000 {
		t.Fatal("AlignDown")
	}
	if AlignUp(0x12345, 0x1000) != 0x13000 {
		t.Fatal("AlignUp")
	}
	if AlignUp(0x12000, 0x1000) != 0x12000 {
		t.Fatal("AlignUp exact")
	}
}

func TestPageSizeValidity(t *testing.T) {
	for _, s := range PageSizes {
		if !s.Valid() {
			t.Fatalf("%v should be valid", s)
		}
	}
	if PageSize(12345).Valid() {
		t.Fatal("arbitrary size should be invalid")
	}
	if Page1M.String() != "1MB" || Page1G.String() != "1GB" || Page4K.String() != "4KB" {
		t.Fatal("String forms")
	}
}

func TestPermString(t *testing.T) {
	if PermRWX.String() != "rwx" || PermRX.String() != "r-x" || Perm(0).String() != "---" {
		t.Fatal("perm strings")
	}
	if !PermRWX.Has(PermRead) || PermRead.Has(PermWrite) {
		t.Fatal("Has")
	}
}
