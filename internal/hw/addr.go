// Package hw models the Blue Gene/P compute chip: a quad-core 850 MHz
// System-On-a-Chip with software-managed TLBs, an L1/L3/DDR memory
// hierarchy, Debug Address Compare (DAC) registers, Boot SRAM, DDR
// self-refresh, per-unit enable flags for bringup on partial hardware, and
// L1 parity-error injection.
//
// The model is a deterministic cost model, not a gate-level simulator: it
// answers "how many cycles does this access cost and what state does it
// change", which is the level at which the paper's arguments (TLB misses,
// interrupt noise, reproducible reset) live.
package hw

import "fmt"

// VAddr is a virtual address in a process address space.
type VAddr uint64

// PAddr is a physical DDR address.
type PAddr uint64

// PageSize is one of the hardware translation sizes. The PPC450 supports
// many; Blue Gene/P's CNK uses the large ones (1MB..1GB) for its static
// map, while a Linux-style kernel uses 4KB pages.
type PageSize uint64

// Hardware page sizes available to the TLB.
const (
	Page4K   PageSize = 4 << 10
	Page64K  PageSize = 64 << 10
	Page1M   PageSize = 1 << 20
	Page16M  PageSize = 16 << 20
	Page256M PageSize = 256 << 20
	Page1G   PageSize = 1 << 30
)

// PageSizes lists the supported sizes in increasing order.
var PageSizes = []PageSize{Page4K, Page64K, Page1M, Page16M, Page256M, Page1G}

// LargePageSizes lists the sizes CNK's static partitioner tiles with
// (paper Section IV-C: 1MB, 16MB, 256MB, 1GB).
var LargePageSizes = []PageSize{Page1M, Page16M, Page256M, Page1G}

// Valid reports whether s is a supported hardware page size.
func (s PageSize) Valid() bool {
	for _, p := range PageSizes {
		if p == s {
			return true
		}
	}
	return false
}

func (s PageSize) String() string {
	switch {
	case s >= Page1G:
		return fmt.Sprintf("%dGB", uint64(s)>>30)
	case s >= Page1M:
		return fmt.Sprintf("%dMB", uint64(s)>>20)
	default:
		return fmt.Sprintf("%dKB", uint64(s)>>10)
	}
}

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW and friends are common combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Has reports whether p includes all bits of q.
func (p Perm) Has(q Perm) bool { return p&q == q }

// AlignDown rounds a down to a multiple of size.
func AlignDown(a uint64, size uint64) uint64 { return a &^ (size - 1) }

// AlignUp rounds a up to a multiple of size.
func AlignUp(a uint64, size uint64) uint64 { return (a + size - 1) &^ (size - 1) }
