package hw

import (
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Cache geometry and cost constants, approximating Blue Gene/P.
const (
	L1LineSize    = 32   // bytes per L1 line (PPC450)
	L1Sets        = 64   // 64 sets x 16 ways x 32B = 32KB
	L1Ways        = 16   //
	L3LineSize    = 128  // bytes per L3 line
	L3Sets        = 4096 // 4096 sets x 16 ways x 128B = 8MB shared eDRAM
	L3Ways        = 16   //
	CostL3Hit     = 46   // extra cycles for an L1 load miss filled from L3
	CostDDR       = 104  // extra cycles for an L3 miss filled from DDR
	CostStoreMiss = 2    // store-queue throttle for a write-through L1 store miss
	RefreshInt    = 6630 // DRAM refresh interval: 7.8us at 850MHz
	RefreshLen    = 94   // DRAM busy per refresh: ~110ns
	CostECCFix    = 28   // extra stall while ECC corrects a single-bit error
)

// MemEvent is an exceptional condition raised by a memory access.
type MemEvent uint8

// Memory access events.
const (
	EvNone MemEvent = iota
	// EvL1Parity is a soft error in the L1 data array. CNK delivers it to
	// the application for recovery (paper Section V-B, the Gordon Bell
	// "Kelvin-Helmholtz" run); an FWK typically panics or kills the task.
	EvL1Parity
	// EvDDRUncorrectable is a multi-bit DDR error ECC cannot repair: the
	// data is gone. CNK logs the RAS event and kills the job cleanly (the
	// chip is then recoverable via the reproducible-reset path); an FWK
	// scrubs and presses on in-kernel.
	EvDDRUncorrectable
)

type cacheSet struct {
	tags   []uint64
	valid  []bool
	victim int // round-robin, as on the real part — deterministic
}

func newCacheArray(sets, ways int) []cacheSet {
	a := make([]cacheSet, sets)
	for i := range a {
		a[i] = cacheSet{tags: make([]uint64, ways), valid: make([]bool, ways)}
	}
	return a
}

// hit probes without filling.
func (s *cacheSet) hit(tag uint64) bool {
	for i, t := range s.tags {
		if s.valid[i] && t == tag {
			return true
		}
	}
	return false
}

// access returns true on hit; on miss it fills the line.
func (s *cacheSet) access(tag uint64) bool {
	if s.hit(tag) {
		return true
	}
	s.tags[s.victim] = tag
	s.valid[s.victim] = true
	s.victim = (s.victim + 1) % len(s.tags)
	return false
}

func (s *cacheSet) invalidateAll() {
	for i := range s.valid {
		s.valid[i] = false
	}
	s.victim = 0
}

// CacheSim is the chip's memory-hierarchy cost model: private L1 per core,
// a shared 8MB L3, and DDR with a refresh window. It is a deterministic
// state machine: given the same access stream it produces the same costs,
// which is a precondition for the paper's cycle-reproducibility claims.
//
// The model intentionally keeps a real tag array rather than a flat cost:
// the residual "noise floor" CNK shows in FWQ (Fig 7, max variation
// <0.006%) emerges from genuine L1 set conflicts between a benchmark's
// working set and its results buffer, plus DDR refresh collisions — not
// from a tunable jitter dial.
// L3Mapping selects how physical lines map to L3 banks/sets. The BG/P
// memory system exposed configuration parameters controlling "the mapping
// of physical memory to cache controllers and to memory banks within the
// cache", which CNK's bringup controls let designers sweep while running
// application kernels (paper Section III).
type L3Mapping uint8

// L3 mapping policies.
const (
	// L3ModuloMap is the naive modulo index: power-of-two strides
	// collide on a single set.
	L3ModuloMap L3Mapping = iota
	// L3XorFoldMap folds high address bits into the index, spreading
	// power-of-two strides across banks.
	L3XorFoldMap
)

type CacheSim struct {
	l1 [][]cacheSet // per core
	l3 []cacheSet

	// l3map is the configured bank mapping (a chip design parameter).
	l3map L3Mapping

	// parityArm, when set for a core, makes that core's next L1 access
	// report EvL1Parity (soft-error injection for the recovery tests).
	parityArm []bool

	// faults, when attached, draws a seeded soft-error for every DDR fill
	// (the seeded RAS injector; nil on a perfect machine).
	faults *ras.NodeFaults

	// upc routes hit/miss counts to the owning chip's UPC unit; nil for
	// standalone CacheSims in unit tests.
	upc *upc.UPC

	// refreshBase is when the DRAM controller's refresh timer last
	// (re)started; reproducible resets restart it so replayed runs see
	// refresh windows at the same run-relative offsets.
	refreshBase sim.Cycles

	L1Hits, L1Misses   []uint64
	StoreMisses        []uint64
	L3Hits, L3Misses   uint64
	RefreshStalls      uint64
	RefreshStallCycles sim.Cycles
}

// NewCacheSim builds the hierarchy for a chip with cores cores.
func NewCacheSim(cores int) *CacheSim {
	cs := &CacheSim{
		l1:          make([][]cacheSet, cores),
		l3:          newCacheArray(L3Sets, L3Ways),
		parityArm:   make([]bool, cores),
		L1Hits:      make([]uint64, cores),
		L1Misses:    make([]uint64, cores),
		StoreMisses: make([]uint64, cores),
	}
	for i := range cs.l1 {
		cs.l1[i] = newCacheArray(L1Sets, L1Ways)
	}
	return cs
}

// SetL3Mapping reconfigures the L3 bank mapping (a bringup control flag;
// normally fixed at boot).
func (cs *CacheSim) SetL3Mapping(m L3Mapping) { cs.l3map = m }

// L3MappingConfigured returns the active mapping.
func (cs *CacheSim) L3MappingConfigured() L3Mapping { return cs.l3map }

// l3index maps an L3 line number to its set under the configured policy.
func (cs *CacheSim) l3index(l3line uint64) uint64 {
	if cs.l3map == L3XorFoldMap {
		l3line ^= l3line >> 12
		l3line ^= l3line >> 24
	}
	return l3line % L3Sets
}

// ArmL1Parity makes core's next L1 access raise EvL1Parity.
func (cs *CacheSim) ArmL1Parity(core int) { cs.parityArm[core] = true }

// Access charges the cost of touching [pa, pa+size) from core at time now.
// The returned cost covers only hierarchy penalties; the consumer charges
// its own instruction cycles. L1-resident accesses cost zero extra.
func (cs *CacheSim) Access(core int, pa PAddr, size uint32, write bool, now sim.Cycles) (sim.Cycles, MemEvent) {
	ev := EvNone
	if cs.parityArm[core] {
		cs.parityArm[core] = false
		ev = EvL1Parity
	}
	var cost sim.Cycles
	first := uint64(pa) / L1LineSize
	last := (uint64(pa) + uint64(size) - 1) / L1LineSize
	if size == 0 {
		last = first
	}
	u := cs.upc
	for line := first; line <= last; line++ {
		addr := line * L1LineSize
		set := &cs.l1[core][line%L1Sets]
		if set.hit(line) {
			cs.L1Hits[core]++
			if u != nil {
				u.Inc(core, upc.L1Hit)
			}
			continue
		}
		if write {
			// The PPC450 L1 is write-through with no allocate-on-store:
			// a store miss goes to the store queue and the L2/L3 without
			// installing an L1 line (and without evicting anything). The
			// store buffer absorbs the downstream latency.
			cs.StoreMisses[core]++
			if u != nil {
				u.Inc(core, upc.StoreMiss)
			}
			l3line := addr / L3LineSize
			cs.l3[cs.l3index(l3line)].access(l3line)
			cost += CostStoreMiss
			continue
		}
		cs.L1Misses[core]++
		if u != nil {
			u.Inc(core, upc.L1Miss)
		}
		set.access(line) // allocate on load miss
		l3line := addr / L3LineSize
		l3set := &cs.l3[cs.l3index(l3line)]
		if l3set.access(l3line) {
			cs.L3Hits++
			if u != nil {
				u.Inc(upc.ChipScope, upc.L3Hit)
			}
			cost += CostL3Hit
			continue
		}
		cs.L3Misses++
		if u != nil {
			u.Inc(upc.ChipScope, upc.L3Miss)
		}
		c := sim.Cycles(CostDDR)
		if cs.faults != nil {
			if unc, corr := cs.faults.DDRAccess(); unc {
				if ev == EvNone {
					ev = EvDDRUncorrectable
				}
				if u != nil {
					u.Inc(upc.ChipScope, upc.RASUncorrectable)
				}
			} else if corr {
				// ECC repairs the word in place; the fill just stalls.
				c += CostECCFix
				if u != nil {
					u.Inc(upc.ChipScope, upc.RASCorrectable)
				}
			}
		}
		// DDR refresh: if the access lands in the refresh window it
		// stalls for the remainder of the window.
		phase := uint64(now+cost-cs.refreshBase) % RefreshInt
		if phase < RefreshLen {
			stall := sim.Cycles(RefreshLen - phase)
			c += stall
			cs.RefreshStalls++
			cs.RefreshStallCycles += stall
			if u != nil {
				u.Inc(upc.ChipScope, upc.RefreshStall)
			}
		}
		cost += c
	}
	return cost, ev
}

// ResetRefreshPhase restarts the DRAM refresh timer at now, as toggling
// reset to the memory controller does on the real part. The timer is not
// architectural state: Chip.Reset leaves it alone, and the kernel's
// reset protocol restamps it at the reset instant.
func (cs *CacheSim) ResetRefreshPhase(now sim.Cycles) { cs.refreshBase = now }

// FlushAll writes back and invalidates every level, as CNK does before
// putting DDR in self-refresh for a reproducible reset.
func (cs *CacheSim) FlushAll() {
	for _, l1 := range cs.l1 {
		for i := range l1 {
			l1[i].invalidateAll()
		}
	}
	for i := range cs.l3 {
		cs.l3[i].invalidateAll()
	}
}

// FlushCore invalidates one core's L1.
func (cs *CacheSim) FlushCore(core int) {
	for i := range cs.l1[core] {
		cs.l1[core][i].invalidateAll()
	}
}

func (cs *CacheSim) reset() {
	cs.FlushAll()
	for i := range cs.L1Hits {
		cs.L1Hits[i], cs.L1Misses[i], cs.StoreMisses[i] = 0, 0, 0
		cs.parityArm[i] = false
	}
	cs.L3Hits, cs.L3Misses = 0, 0
	cs.RefreshStalls, cs.RefreshStallCycles = 0, 0
}
