package hw

import (
	"fmt"
	"hash/fnv"

	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// CoresPerChip is the Blue Gene/P core count.
const CoresPerChip = 4

// Unit identifies a functional unit that can be individually disabled,
// modelling chip bringup on partial or broken hardware (paper Section III:
// "CNK was designed to be functional without requiring the entire chip
// logic to be working").
type Unit int

// Functional units.
const (
	UnitDDR Unit = iota
	UnitTorus
	UnitCollective
	UnitBarrier
	UnitDMA
	UnitFPU
	UnitL2Prefetch
	UnitLockbox
	numUnits
)

var unitNames = [...]string{"DDR", "Torus", "Collective", "Barrier", "DMA", "FPU", "L2Prefetch", "Lockbox"}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", int(u))
}

// AllUnits lists every functional unit.
func AllUnits() []Unit {
	us := make([]Unit, numUnits)
	for i := range us {
		us[i] = Unit(i)
	}
	return us
}

// DACRange is a Debug Address Compare register pair: a watched virtual
// range that traps on store. CNK uses one per core to implement the stack
// guard area without page tables (paper Fig 4).
type DACRange struct {
	Enabled bool
	PID     uint32
	Lo, Hi  VAddr // [Lo, Hi)
}

// Matches reports whether a store to va in address space pid trips the
// watch.
func (d *DACRange) Matches(pid uint32, va VAddr) bool {
	return d.Enabled && d.PID == pid && va >= d.Lo && va < d.Hi
}

// Core is one PPC450 core: its TLB, DAC registers, and counters.
type Core struct {
	ID   int
	Chip *Chip
	TLB  TLB
	DAC  [2]DACRange

	Interrupts uint64 // external + timer interrupts taken
	IPIs       uint64 // inter-processor interrupts received
}

// GlobalID returns a machine-unique core identifier.
func (c *Core) GlobalID() string { return fmt.Sprintf("chip%d.core%d", c.Chip.ID, c.ID) }

// CheckDAC reports whether a store to va trips either DAC range.
func (c *Core) CheckDAC(pid uint32, va VAddr) bool {
	return c.DAC[0].Matches(pid, va) || c.DAC[1].Matches(pid, va)
}

// Chip is one Blue Gene/P compute (or I/O) chip.
type Chip struct {
	ID    int
	Coord [3]int // torus coordinates

	Cores []*Core
	Mem   *Memory
	Cache *CacheSim

	// UPC is the chip's Universal Performance Counter unit: every layer
	// that charges cycles against this chip also increments a counter
	// here, so "where did the cycles go" is queryable (paper Section III).
	UPC *upc.UPC

	// BootSRAM models the on-chip SRAM where cores rendezvous during the
	// reproducible-reset protocol; its contents survive reset.
	BootSRAM [4096]byte

	// Faults is this node's seeded fault source (nil on a perfect
	// machine). It lives outside the chip's architectural state: a chip
	// Reset does not touch it, so a recovery reboot faces whatever
	// schedule the injector dictates.
	Faults *ras.NodeFaults

	units       [numUnits]bool
	Resets      int        // number of chip resets since construction
	Scanned     bool       // a destructive logic scan has been taken
	ClockStopAt sim.Cycles // armed Clock-Stop cycle (0 = disarmed)
}

// ChipConfig parameterizes chip construction.
type ChipConfig struct {
	ID      int
	Coord   [3]int
	MemSize uint64 // DDR bytes; default 256MB
}

// NewChip builds a chip with all units enabled.
func NewChip(cfg ChipConfig) *Chip {
	if cfg.MemSize == 0 {
		cfg.MemSize = 256 << 20
	}
	ch := &Chip{
		ID:    cfg.ID,
		Coord: cfg.Coord,
		Mem:   NewMemory(cfg.MemSize),
		Cache: NewCacheSim(CoresPerChip),
		UPC:   upc.New(),
	}
	ch.Mem.upc = ch.UPC
	ch.Cache.upc = ch.UPC
	for i := 0; i < CoresPerChip; i++ {
		c := &Core{ID: i, Chip: ch}
		c.TLB.upc, c.TLB.coreID = ch.UPC, i
		ch.Cores = append(ch.Cores, c)
	}
	for u := range ch.units {
		ch.units[u] = true
	}
	return ch
}

// AttachFaults wires the node's seeded fault source into every injection
// point on the chip: DDR fills in the cache model and per-core TLB
// lookups. Call once, before the kernel boots.
func (ch *Chip) AttachFaults(f *ras.NodeFaults) {
	ch.Faults = f
	ch.Cache.faults = f
	for _, c := range ch.Cores {
		c.TLB.faults = f
	}
}

// UnitEnabled reports whether a functional unit works on this chip.
func (ch *Chip) UnitEnabled(u Unit) bool { return ch.units[u] }

// SetUnitEnabled marks a unit working or broken.
func (ch *Chip) SetUnitEnabled(u Unit, on bool) { ch.units[u] = on }

// Reset models toggling reset to all functional units: cores, TLBs, caches
// and counters clear; DDR contents survive only under self-refresh;
// BootSRAM survives. The unit-enable fuses and coordinates survive (they
// are physical).
func (ch *Chip) Reset() {
	ch.Resets++
	ch.Scanned = false
	ch.ClockStopAt = 0
	for _, c := range ch.Cores {
		c.TLB.reset()
		c.DAC = [2]DACRange{}
		c.Interrupts, c.IPIs = 0, 0
	}
	ch.Cache.reset()
	ch.Mem.reset()
	ch.UPC.Reset()
}

// StateHash digests the architecturally visible chip state: core counters,
// TLB contents, DAC registers. Two chips at the same point of
// cycle-reproducible runs hash identically; the bringup waveform tooling
// treats this as the "signals" captured by a logic scan.
func (ch *Chip) StateHash() uint64 {
	h := fnv.New64a()
	for _, c := range ch.Cores {
		fmt.Fprintf(h, "c%d:%d:%d;", c.ID, c.Interrupts, c.IPIs)
		fmt.Fprintf(h, "tlb:%d:%d:%d;", c.TLB.ValidCount(), c.TLB.Hits, c.TLB.Misses)
		for _, d := range c.DAC {
			fmt.Fprintf(h, "dac:%v:%d:%d;", d.Enabled, d.Lo, d.Hi)
		}
	}
	fmt.Fprintf(h, "l3:%d:%d;", ch.Cache.L3Hits, ch.Cache.L3Misses)
	for i := range ch.Cores {
		fmt.Fprintf(h, "l1:%d:%d;", ch.Cache.L1Hits[i], ch.Cache.L1Misses[i])
	}
	fmt.Fprintf(h, "mem:%d:%d:%v;", ch.Mem.Reads, ch.Mem.Writes, ch.Mem.InSelfRefresh())
	h.Write(ch.BootSRAM[:])
	return h.Sum64()
}

// Scan performs a destructive logic scan: it returns the state hash and
// marks the chip scanned. A scanned chip must be Reset before further use;
// this models the real constraint that drove the whole reproducible-reboot
// methodology (paper Section III: "logic scans ... are destructive to the
// chip state").
func (ch *Chip) Scan() uint64 {
	h := ch.StateHash()
	ch.Scanned = true
	return h
}

// MustBeUsable panics if the chip has been destructively scanned and not
// reset.
func (ch *Chip) MustBeUsable() {
	if ch.Scanned {
		panic(fmt.Sprintf("hw: chip %d used after destructive scan without reset", ch.ID))
	}
}
