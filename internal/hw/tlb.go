package hw

import (
	"fmt"

	"bgcnk/internal/ras"
	"bgcnk/internal/upc"
)

// TLBSize is the number of entries in a PPC450-class software-managed TLB.
const TLBSize = 64

// TLBEntry is one translation: a virtual page of a given size mapped to a
// physical frame with permissions, tagged by process (address-space) ID.
// Pinned entries are CNK's static map: they are installed at job start and
// never evicted, which is what makes "no TLB misses" (Table II) possible.
type TLBEntry struct {
	Valid  bool
	Pinned bool
	PID    uint32
	VBase  VAddr
	PBase  PAddr
	Size   PageSize
	Perms  Perm
}

// Covers reports whether the entry translates va for address space pid.
func (e *TLBEntry) Covers(pid uint32, va VAddr) bool {
	return e.Valid && e.PID == pid &&
		uint64(va) >= uint64(e.VBase) && uint64(va) < uint64(e.VBase)+uint64(e.Size)
}

// Translate maps va through the entry.
func (e *TLBEntry) Translate(va VAddr) PAddr {
	return e.PBase + PAddr(va-e.VBase)
}

// TLB is one core's translation lookaside buffer. Replacement of unpinned
// entries is round-robin, as on the real part (and conveniently
// deterministic).
type TLB struct {
	entries [TLBSize]TLBEntry
	victim  int

	// upc/coreID route counter updates to the owning chip's UPC unit;
	// nil for standalone TLBs in unit tests.
	upc    *upc.UPC
	coreID int

	// faults draws seeded parity errors on matched entries; nil on a
	// perfect machine.
	faults *ras.NodeFaults

	Hits   uint64
	Misses uint64
}

// refillCounter maps a hardware page size to its per-size refill counter.
func refillCounter(s PageSize) upc.Counter {
	switch s {
	case Page4K:
		return upc.TLBRefill4K
	case Page64K:
		return upc.TLBRefill64K
	case Page1M:
		return upc.TLBRefill1M
	case Page16M:
		return upc.TLBRefill16M
	case Page256M:
		return upc.TLBRefill256M
	default:
		return upc.TLBRefill1G
	}
}

// Lookup translates (pid, va). On success it returns the physical address
// and the entry's permissions.
func (t *TLB) Lookup(pid uint32, va VAddr) (PAddr, Perm, bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.Covers(pid, va) {
			if t.faults != nil && t.faults.TLBParity() {
				// Parity error on the matched entry: the hardware
				// invalidates it and the lookup misses; the kernel's
				// refill path is the recovery (re-install from the static
				// map under CNK, software refill under an FWK).
				t.entries[i] = TLBEntry{}
				break
			}
			t.Hits++
			if t.upc != nil {
				t.upc.Inc(t.coreID, upc.TLBHit)
			}
			return e.Translate(va), e.Perms, true
		}
	}
	t.Misses++
	if t.upc != nil {
		t.upc.Inc(t.coreID, upc.TLBMiss)
	}
	return 0, 0, false
}

// InsertPinned installs a static, never-evicted translation. It panics if
// all slots hold pinned entries (the static map must fit the hardware —
// this is exactly the constraint CNK's partitioning algorithm respects).
func (t *TLB) InsertPinned(e TLBEntry) {
	e.Valid, e.Pinned = true, true
	if !e.Size.Valid() {
		panic(fmt.Sprintf("hw: invalid page size %d", e.Size))
	}
	if t.upc != nil {
		t.upc.Inc(t.coreID, refillCounter(e.Size))
	}
	for i := range t.entries {
		if !t.entries[i].Valid {
			t.entries[i] = e
			return
		}
	}
	panic("hw: TLB full of pinned entries; static map exceeds hardware capacity")
}

// Insert installs a replaceable translation, evicting round-robin among
// unpinned slots. It panics if every slot is pinned.
func (t *TLB) Insert(e TLBEntry) {
	e.Valid = true
	e.Pinned = false
	if !e.Size.Valid() {
		panic(fmt.Sprintf("hw: invalid page size %d", e.Size))
	}
	if t.upc != nil {
		t.upc.Inc(t.coreID, refillCounter(e.Size))
	}
	for i := range t.entries {
		if !t.entries[i].Valid {
			t.entries[i] = e
			return
		}
	}
	for tries := 0; tries < TLBSize; tries++ {
		v := t.victim
		t.victim = (t.victim + 1) % TLBSize
		if !t.entries[v].Pinned {
			t.entries[v] = e
			return
		}
	}
	panic("hw: TLB full of pinned entries; cannot insert dynamic entry")
}

// InvalidateASID drops all entries (pinned or not) for address space pid.
func (t *TLB) InvalidateASID(pid uint32) {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].PID == pid {
			t.entries[i] = TLBEntry{}
		}
	}
}

// InvalidateAll drops every entry.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = TLBEntry{}
	}
	t.victim = 0
}

// PinnedCount returns the number of pinned entries.
func (t *TLB) PinnedCount() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Pinned {
			n++
		}
	}
	return n
}

// ValidCount returns the number of valid entries.
func (t *TLB) ValidCount() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}

func (t *TLB) reset() {
	t.InvalidateAll()
	t.Hits, t.Misses = 0, 0
}
