package hw

import (
	"fmt"

	"bgcnk/internal/upc"
)

// memChunk is the sparse-allocation granule for DDR contents.
const memChunk = 64 << 10

// Memory models node DDR: a sparse byte store plus the self-refresh state
// machine used by CNK's reproducible-reset protocol (paper Section III).
// While in self-refresh, contents are preserved across a chip reset;
// otherwise a reset scrambles them (modelled as dropping all chunks).
type Memory struct {
	size        uint64
	chunks      map[uint64][]byte
	selfRefresh bool

	// upc routes access counts to the owning chip's UPC unit; nil for
	// standalone Memories in unit tests.
	upc *upc.UPC

	// Access statistics, reset with the chip.
	Reads  uint64
	Writes uint64
}

// NewMemory returns a zeroed DDR of the given byte size.
func NewMemory(size uint64) *Memory {
	return &Memory{size: size, chunks: make(map[uint64][]byte)}
}

// Size returns the DDR capacity in bytes.
func (m *Memory) Size() uint64 { return m.size }

func (m *Memory) check(pa PAddr, n int) {
	if uint64(pa)+uint64(n) > m.size {
		panic(fmt.Sprintf("hw: DDR access [%#x,+%d) beyond size %#x", uint64(pa), n, m.size))
	}
}

func (m *Memory) chunk(idx uint64, create bool) []byte {
	c := m.chunks[idx]
	if c == nil && create {
		c = make([]byte, memChunk)
		m.chunks[idx] = c
	}
	return c
}

// Read copies len(dst) bytes at pa into dst.
func (m *Memory) Read(pa PAddr, dst []byte) {
	m.check(pa, len(dst))
	m.Reads++
	if m.upc != nil {
		m.upc.Inc(upc.ChipScope, upc.DDRRead)
	}
	off := uint64(pa)
	for len(dst) > 0 {
		idx, in := off/memChunk, off%memChunk
		n := memChunk - in
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if c := m.chunk(idx, false); c != nil {
			copy(dst[:n], c[in:in+n])
		} else {
			for i := range dst[:n] {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
}

// Write copies src into DDR at pa.
func (m *Memory) Write(pa PAddr, src []byte) {
	m.check(pa, len(src))
	m.Writes++
	if m.upc != nil {
		m.upc.Inc(upc.ChipScope, upc.DDRWrite)
	}
	off := uint64(pa)
	for len(src) > 0 {
		idx, in := off/memChunk, off%memChunk
		n := memChunk - in
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.chunk(idx, true)[in:in+n], src[:n])
		src = src[n:]
		off += n
	}
}

// ReadU64 reads a big-endian (PowerPC byte order) 64-bit word.
func (m *Memory) ReadU64(pa PAddr) uint64 {
	var b [8]byte
	m.Read(pa, b[:])
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// WriteU64 writes a big-endian 64-bit word.
func (m *Memory) WriteU64(pa PAddr, v uint64) {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	m.Write(pa, b[:])
}

// EnterSelfRefresh puts the DDR into self-refresh: contents survive reset.
func (m *Memory) EnterSelfRefresh() { m.selfRefresh = true }

// ExitSelfRefresh returns the DDR to normal operation.
func (m *Memory) ExitSelfRefresh() { m.selfRefresh = false }

// InSelfRefresh reports whether the DDR is in self-refresh.
func (m *Memory) InSelfRefresh() bool { return m.selfRefresh }

// reset models a full chip reset: DDR in self-refresh keeps contents; DDR
// not in self-refresh loses them (the only persistent state in a BG/P chip
// is DRAM during self-refresh — paper Section III).
func (m *Memory) reset() {
	m.Reads, m.Writes = 0, 0
	if !m.selfRefresh {
		m.chunks = make(map[uint64][]byte)
	}
}
