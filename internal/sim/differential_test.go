package sim

import (
	"fmt"
	"testing"
)

// schedKinds are the implementations the differential battery holds to
// identical observable behaviour.
var schedKinds = []SchedulerKind{SchedHeap, SchedWheel}

// workloadResult captures everything observable about a run: the trace
// hash (covering every recorded event in order), the retained entries,
// the final clock, and the number of events executed.
type workloadResult struct {
	hash    uint64
	count   uint64
	end     Cycles
	nevents int
	entries []TraceEntry
}

func sameResult(t *testing.T, label string, a, b workloadResult) {
	t.Helper()
	if a.hash != b.hash || a.count != b.count || a.end != b.end || a.nevents != b.nevents {
		t.Fatalf("%s: heap vs wheel diverged: hash %016x/%016x count %d/%d end %d/%d events %d/%d",
			label, a.hash, b.hash, a.count, b.count, a.end, b.end, a.nevents, b.nevents)
	}
	if len(a.entries) != len(b.entries) {
		t.Fatalf("%s: retained %d vs %d trace entries", label, len(a.entries), len(b.entries))
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			t.Fatalf("%s: trace entry %d differs:\n  heap:  %v\n  wheel: %v",
				label, i, a.entries[i], b.entries[i])
		}
	}
}

// runRandomEvents replays a seeded pure-event workload: bursts of
// same-cycle events, zero-delay chains, random offsets spanning every
// wheel level, and far-future events beyond the wheel horizon (the
// overflow path). Each event records itself to the trace, so the hash is
// a total order witness.
func runRandomEvents(kind SchedulerKind, seed uint64) workloadResult {
	e := NewEngineWith(EngineConfig{Scheduler: kind})
	rng := NewRNG(seed)
	id := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		id++
		me := id
		var d Cycles
		switch rng.Intn(10) {
		case 0:
			d = 0 // same-cycle chain
		case 1, 2, 3:
			d = Cycles(rng.Intn(4)) // dense
		case 4, 5, 6:
			d = Cycles(rng.Intn(100_000)) // levels 0-2
		case 7, 8:
			d = Cycles(rng.Intn(1 << 30)) // level 3
		default:
			d = Cycles(1)<<32 + Cycles(rng.Intn(1<<30)) // overflow horizon
		}
		e.After(d, func() {
			e.Trace().Record(e.Now(), "ev", fmt.Sprintf("id%d", me))
			if depth > 0 && rng.Intn(3) > 0 {
				schedule(depth - 1)
				if rng.Intn(4) == 0 {
					schedule(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 40; i++ {
		schedule(6)
	}
	// Bursts at one instant exercise batch dispatch FIFO.
	for i := 0; i < 64; i++ {
		i := i
		e.At(500, func() { e.Trace().Record(e.Now(), "burst", fmt.Sprintf("b%d", i)) })
	}
	n := e.RunUntilIdle()
	return workloadResult{
		hash: e.Trace().Hash(), count: e.Trace().Count(), end: e.Now(),
		nevents: n, entries: e.Trace().Entries(),
	}
}

// runRandomCoros replays a seeded coroutine workload: sleepers, parkers
// with timeouts, cross-coroutine wakes, and killed-at-shutdown parkers —
// the full resume/yield machinery on top of the scheduler under test.
func runRandomCoros(kind SchedulerKind, seed uint64) workloadResult {
	e := NewEngineWith(EngineConfig{Scheduler: kind})
	rng := NewRNG(seed)
	var coros []*Coro
	for i := 0; i < 8; i++ {
		i := i
		r := rng.Fork(uint64(i))
		c := e.Go(fmt.Sprintf("w%d", i), func(c *Coro) {
			for j := 0; j < 40; j++ {
				switch r.Intn(4) {
				case 0:
					c.Sleep(1 + r.Cycles(2000))
				case 1:
					reason := c.Park(1 + r.Cycles(500))
					e.Trace().Record(c.Now(), c.Name(), "woke "+reason.String())
				case 2:
					if len(coros) > 0 {
						coros[r.Intn(len(coros))].Wake()
					}
					c.Sleep(1 + r.Cycles(50))
				default:
					c.Sleep(r.Cycles(5))
				}
				e.Trace().Record(c.Now(), c.Name(), fmt.Sprintf("step%d", j))
			}
		})
		coros = append(coros, c)
	}
	n := e.RunUntilIdle()
	out := workloadResult{
		hash: e.Trace().Hash(), count: e.Trace().Count(), end: e.Now(),
		nevents: n, entries: e.Trace().Entries(),
	}
	e.Shutdown()
	return out
}

// runSegmented drives the same event workload through Run(limit) windows
// instead of RunUntilIdle, exercising peek() (the wheel's non-mutating
// lookahead) against the heap's.
func runSegmented(kind SchedulerKind, seed uint64) workloadResult {
	e := NewEngineWith(EngineConfig{Scheduler: kind})
	rng := NewRNG(seed)
	for i := 0; i < 300; i++ {
		i := i
		d := Cycles(rng.Intn(1_000_000))
		if i%17 == 0 {
			d = Cycles(1)<<33 + Cycles(rng.Intn(1000))
		}
		e.At(d, func() { e.Trace().Record(e.Now(), "seg", fmt.Sprintf("s%d", i)) })
	}
	n := 0
	limit := Cycles(0)
	for e.Pending() > 0 {
		limit += 1 + Cycles(rng.Intn(50_000_000))
		n += e.Run(limit)
	}
	return workloadResult{
		hash: e.Trace().Hash(), count: e.Trace().Count(), end: e.Now(),
		nevents: n, entries: e.Trace().Entries(),
	}
}

// TestDifferentialSchedulers is the scheduler substitution proof at the
// engine level: seeded random workloads replayed on the reference heap
// and the timer wheel must produce bit-identical traces, clocks, and
// event counts. A divergence here means the wheel broke the (time, seq)
// FIFO ordering contract.
func TestDifferentialSchedulers(t *testing.T) {
	workloads := []struct {
		name string
		run  func(SchedulerKind, uint64) workloadResult
	}{
		{"events", runRandomEvents},
		{"coros", runRandomCoros},
		{"segmented", runSegmented},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				ref := w.run(SchedHeap, seed)
				got := w.run(SchedWheel, seed)
				sameResult(t, fmt.Sprintf("%s seed %d", w.name, seed), ref, got)
			}
		})
	}
}

// TestDifferentialOverflowTieFIFO pins the subtlest ordering case: an
// event scheduled beyond the wheel horizon (overflow-resident) and an
// event scheduled later for the same cycle (wheel-resident) must run in
// seq order — overflow first.
func TestDifferentialOverflowTieFIFO(t *testing.T) {
	target := Cycles(1)<<33 + 17
	for _, kind := range schedKinds {
		e := NewEngineWith(EngineConfig{Scheduler: kind})
		var order []string
		e.At(target, func() { order = append(order, "far") }) // seq 1, beyond horizon
		e.At(target-1000, func() {
			// Scheduled close to the target: wheel-resident.
			e.At(target, func() { order = append(order, "near") })
		})
		e.RunUntilIdle()
		if len(order) != 2 || order[0] != "far" || order[1] != "near" {
			t.Fatalf("%v: same-cycle overflow/wheel tie out of seq order: %v", kind, order)
		}
	}
}

// TestDifferentialHorizonSweep walks event deltas across every wheel
// level boundary (and the overflow horizon) to catch off-by-one
// classification errors.
func TestDifferentialHorizonSweep(t *testing.T) {
	deltas := []Cycles{0, 1, 255, 256, 257, 65_535, 65_536, 65_537,
		1<<24 - 1, 1 << 24, 1<<24 + 1, 1<<32 - 1, 1 << 32, 1<<32 + 1, 1 << 40}
	run := func(kind SchedulerKind) workloadResult {
		e := NewEngineWith(EngineConfig{Scheduler: kind})
		for round := 0; round < 3; round++ {
			base := Cycles(round) * 7919
			for i, d := range deltas {
				i, d := i, d
				e.At(base+d, func() {
					e.Trace().Record(e.Now(), "sweep", fmt.Sprintf("r%dd%d", round, i))
				})
			}
		}
		n := e.RunUntilIdle()
		return workloadResult{hash: e.Trace().Hash(), count: e.Trace().Count(),
			end: e.Now(), nevents: n, entries: e.Trace().Entries()}
	}
	sameResult(t, "horizon sweep", run(SchedHeap), run(SchedWheel))
}
