// Package replica fans independent simulation replicas across a bounded
// worker pool, deterministically.
//
// A replica is any self-contained simulation: one Engine, its machine,
// its seeds. Because a replica shares no state with its siblings, the
// host's execution order cannot affect any replica's result, and merging
// results strictly in input order makes the whole fan-out bit-identical
// at every worker count — the experiment sweeps, fault batteries, and
// control-system drains get near-linear wall-clock speedup with none of
// the replay guarantees given up. The worker-count invariance is gated in
// CI (see TestReplicaWorkerInvariance and the experiments render tests).
package replica

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when callers pass workers <= 0:
// one per host CPU, clamped to [2, 8] — enough to saturate the medium
// sweeps without oversubscribing nested fan-outs.
func DefaultWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 2 {
		w = 2
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in input order. workers <= 0 means DefaultWorkers;
// workers == 1 runs inline on the caller's goroutine (the serial
// reference execution). fn must be self-contained: it must not share
// mutable state with other replicas.
func Map[T any](workers, n int, fn func(int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 || n == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out
}

// Run is Map for fallible replicas. Every replica executes (failures do
// not cancel siblings — they are deterministic, a rerun would fail the
// same way); the error returned is the lowest-index one, so error
// reporting is as order-independent as the results.
func Run[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	errs := make([]error, n)
	out := Map(workers, n, func(i int) T {
		v, err := fn(i)
		errs[i] = err
		return v
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
