package replica

import (
	"errors"
	"fmt"
	"testing"

	"bgcnk/internal/sim"
)

// simulate runs one self-contained replica: a seeded engine workload
// whose trace hash is a total witness of its event order.
func simulate(seed uint64) uint64 {
	e := sim.NewEngine()
	rng := sim.NewRNG(seed)
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(c *sim.Coro) {
			for j := 0; j < 30; j++ {
				c.Sleep(1 + rng.Cycles(1000))
				e.Trace().Record(c.Now(), c.Name(), "tick")
			}
		})
	}
	e.RunUntilIdle()
	return e.Trace().Hash()
}

// TestReplicaWorkerInvariance is the runner's contract: the merged
// result vector is bit-identical at 1, 2, and 8 workers (run under -race
// in CI).
func TestReplicaWorkerInvariance(t *testing.T) {
	const n = 24
	ref := Map(1, n, func(i int) uint64 { return simulate(uint64(i + 1)) })
	for _, workers := range []int{2, 8} {
		got := Map(workers, n, func(i int) uint64 { return simulate(uint64(i + 1)) })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: replica %d hash %016x != serial %016x",
					workers, i, got[i], ref[i])
			}
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapZeroAndOne(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("n=0 returned %d results", len(out))
	}
	if out := Map(0, 1, func(i int) int { return 7 }); out[0] != 7 {
		t.Fatalf("n=1 = %v", out)
	}
}

// TestRunReportsLowestIndexError: error identity must not depend on
// which replica finishes first.
func TestRunReportsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, workers := range []int{1, 8} {
		out, err := Run(workers, 10, func(i int) (int, error) {
			if i == 7 {
				return 0, errors.New("boom-7")
			}
			if i == 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom-3" {
			t.Fatalf("workers=%d: err = %v, want boom-3", workers, err)
		}
		if out[4] != 4 {
			t.Fatalf("workers=%d: successful replicas not retained: %v", workers, out)
		}
	}
}

func TestRunNoError(t *testing.T) {
	out, err := Run(3, 5, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out = %v", out)
		}
	}
}
