package sim

import (
	"testing"
)

// TestCoroKillWhileParked is the basic shutdown-unwind path: a coroutine
// parked forever is killed, its deferred cleanup runs, and the code after
// the park never does.
func TestCoroKillWhileParked(t *testing.T) {
	e := NewEngine()
	cleaned := false
	resumed := false
	c := e.Go("p", func(c *Coro) {
		defer func() { cleaned = true }()
		c.Park(Forever)
		resumed = true
	})
	e.RunUntilIdle()
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if resumed {
		t.Fatal("killed coroutine ran past its park")
	}
	if !c.Done() {
		t.Fatal("killed coroutine should report Done once unwound")
	}
}

// TestCoroKillWhileParkedWithTimeout kills a coroutine that still has an
// in-flight timeout event; the queue is torn down with it and nothing
// resumes or panics.
func TestCoroKillWhileParkedWithTimeout(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(c *Coro) {
		c.Park(1_000_000)
		t.Error("should never resume")
	})
	// Drive only the initial dispatch, leaving the timeout pending.
	e.Run(0)
	if e.Pending() == 0 {
		t.Fatal("expected the park timeout to be pending")
	}
	e.Shutdown()
	if e.Pending() != 0 {
		t.Fatalf("Shutdown left %d events queued", e.Pending())
	}
}

// TestCoroKillAfterFinish: killing a coroutine whose function already
// returned is a no-op (no panic, no deadlock, Done stays true).
func TestCoroKillAfterFinish(t *testing.T) {
	e := NewEngine()
	c := e.Go("p", func(c *Coro) {})
	e.RunUntilIdle()
	if !c.Done() {
		t.Fatal("coroutine should be done")
	}
	c.kill()
	if !c.Done() {
		t.Fatal("kill flipped Done on a finished coroutine")
	}
	e.Shutdown() // and the engine-level sweep must tolerate it too
}

// TestCoroDoubleKill: killing an already-killed coroutine is a no-op, as
// is shutting the engine down twice.
func TestCoroDoubleKill(t *testing.T) {
	e := NewEngine()
	c := e.Go("p", func(c *Coro) {
		c.Park(Forever)
	})
	e.RunUntilIdle()
	c.kill()
	c.kill() // second kill must not re-send on the resume channel
	e.Shutdown()
	e.Shutdown() // idempotent
}

// TestCoroWakeAfterKillIsNoop: a killed coroutine is dead; a stray Wake
// must neither panic nor schedule a resume.
func TestCoroWakeAfterKillIsNoop(t *testing.T) {
	e := NewEngine()
	c := e.Go("p", func(c *Coro) {
		c.Park(Forever)
	})
	e.RunUntilIdle()
	c.kill()
	c.Wake()
	if n := e.RunUntilIdle(); n != 0 {
		t.Fatalf("wake on a dead coroutine scheduled %d events", n)
	}
}

// TestCoroKillRunsInStartOrder: Shutdown unwinds every live coroutine,
// regardless of how many are parked, and runs all their cleanups.
func TestCoroKillRunsInStartOrder(t *testing.T) {
	e := NewEngine()
	var cleaned []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("p", func(c *Coro) {
			defer func() { cleaned = append(cleaned, i) }()
			c.Park(Forever)
		})
	}
	e.RunUntilIdle()
	e.Shutdown()
	if len(cleaned) != 5 {
		t.Fatalf("only %d of 5 parked coroutines were unwound", len(cleaned))
	}
	for i, v := range cleaned {
		if v != i {
			t.Fatalf("cleanup order %v not start order", cleaned)
		}
	}
}

// TestShutdownInsideEventPanics pins the Shutdown contract: calling it
// from inside an event callback used to silently corrupt the dispatch in
// flight; it must panic instead.
func TestShutdownInsideEventPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.At(10, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Shutdown()
	})
	e.RunUntilIdle()
	if !panicked {
		t.Fatal("Shutdown inside an event did not panic")
	}
}

// TestShutdownInsideCoroutinePanics: same contract from coroutine
// context — a coroutine cannot unwind itself synchronously.
func TestShutdownInsideCoroutinePanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Go("suicidal", func(c *Coro) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Shutdown()
	})
	e.RunUntilIdle()
	if !panicked {
		t.Fatal("Shutdown inside a coroutine did not panic")
	}
	e.Shutdown() // still legal from host context afterwards
}

// TestShutdownAfterIdleThenReuseKeepsPanicGuard: the stepping flag must
// be cleared between events so legal host-side Shutdown stays legal.
func TestShutdownAfterIdleThenReuseKeepsPanicGuard(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.RunUntilIdle()
	e.Shutdown() // must not panic: engine is idle, caller is host code
}
