package sim

import (
	"fmt"
	"hash/fnv"
)

// TraceEntry is one recorded simulation event: an instant, a source tag
// (e.g. "core0", "torus"), and a detail string.
type TraceEntry struct {
	At     Cycles
	Tag    string
	Detail string
}

func (t TraceEntry) String() string {
	return fmt.Sprintf("[%12d] %-10s %s", uint64(t.At), t.Tag, t.Detail)
}

// Trace records the externally visible behaviour of a run, both as a
// bounded ring of entries (for inspection) and as a running FNV-1a hash of
// every entry (for cycle-reproducibility proofs: two runs are
// cycle-identical iff their trace hashes match). Recording can be disabled
// entirely for performance-sensitive runs; the hash is always maintained
// while enabled.
type Trace struct {
	enabled bool
	keepAll bool
	hash    uint64
	count   uint64
	ring    []TraceEntry
	ringCap int
}

// NewTrace returns an enabled trace with a 4096-entry ring.
func NewTrace() *Trace {
	return &Trace{enabled: true, ring: nil, ringCap: 4096, hash: 14695981039346656037}
}

// SetEnabled turns recording on or off.
func (tr *Trace) SetEnabled(on bool) { tr.enabled = on }

// Enabled reports whether the trace records events.
func (tr *Trace) Enabled() bool { return tr.enabled }

// KeepAll makes the trace retain every entry instead of a bounded ring.
func (tr *Trace) KeepAll() { tr.keepAll = true }

// Record appends an entry at time at.
func (tr *Trace) Record(at Cycles, tag, detail string) {
	if !tr.enabled {
		return
	}
	tr.count++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", uint64(at), tag, detail)
	tr.hash = tr.hash*1099511628211 ^ h.Sum64()
	e := TraceEntry{At: at, Tag: tag, Detail: detail}
	if tr.keepAll {
		tr.ring = append(tr.ring, e)
		return
	}
	if len(tr.ring) < tr.ringCap {
		tr.ring = append(tr.ring, e)
	} else {
		copy(tr.ring, tr.ring[1:])
		tr.ring[len(tr.ring)-1] = e
	}
}

// Hash returns the running hash over all recorded entries. Two runs with
// equal hashes executed the same tagged events at the same cycles in the
// same order.
func (tr *Trace) Hash() uint64 { return tr.hash }

// Count returns the number of entries recorded (including ones evicted
// from the ring).
func (tr *Trace) Count() uint64 { return tr.count }

// Entries returns the retained entries, oldest first.
func (tr *Trace) Entries() []TraceEntry { return tr.ring }
