package sim

import (
	"fmt"
	"strconv"
)

// TraceEntry is one recorded simulation event: an instant, a source tag
// (e.g. "core0", "torus"), and a detail string.
type TraceEntry struct {
	At     Cycles
	Tag    string
	Detail string
}

func (t TraceEntry) String() string {
	return fmt.Sprintf("[%12d] %-10s %s", uint64(t.At), t.Tag, t.Detail)
}

// Trace records the externally visible behaviour of a run, both as a
// bounded ring of entries (for inspection) and as a running FNV-1a hash of
// every entry (for cycle-reproducibility proofs: two runs are
// cycle-identical iff their trace hashes match). Recording can be disabled
// entirely for performance-sensitive runs; the hash is always maintained
// while enabled.
type Trace struct {
	enabled bool
	keepAll bool
	hash    uint64
	count   uint64
	ring    []TraceEntry
	ringCap int
	head    int    // oldest entry once the ring is full (circular buffer)
	scratch []byte // reused decimal buffer; keeps Record allocation-free
}

// NewTrace returns an enabled trace with a 4096-entry ring.
func NewTrace() *Trace {
	return &Trace{enabled: true, ring: nil, ringCap: 4096, hash: fnvOffset64}
}

// SetEnabled turns recording on or off.
func (tr *Trace) SetEnabled(on bool) { tr.enabled = on }

// Enabled reports whether the trace records events.
func (tr *Trace) Enabled() bool { return tr.enabled }

// KeepAll makes the trace retain every entry instead of a bounded ring.
func (tr *Trace) KeepAll() { tr.keepAll = true }

// fnv1a64 constants (hash/fnv's offset basis and prime); the hash is
// computed inline over the exact byte stream "%d|%s|%s" so it stays
// bit-identical to the fmt/hash.Hash64 formulation while the hot path
// allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Record appends an entry at time at.
func (tr *Trace) Record(at Cycles, tag, detail string) {
	if !tr.enabled {
		return
	}
	tr.count++
	tr.scratch = strconv.AppendUint(tr.scratch[:0], uint64(at), 10)
	h := uint64(fnvOffset64)
	for _, b := range tr.scratch {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	h = (h ^ '|') * fnvPrime64
	h = fnv1aString(h, tag)
	h = (h ^ '|') * fnvPrime64
	h = fnv1aString(h, detail)
	tr.hash = tr.hash*fnvPrime64 ^ h
	e := TraceEntry{At: at, Tag: tag, Detail: detail}
	if tr.keepAll {
		tr.ring = append(tr.ring, e)
		return
	}
	if len(tr.ring) < tr.ringCap {
		tr.ring = append(tr.ring, e)
	} else {
		tr.ring[tr.head] = e
		tr.head++
		if tr.head == tr.ringCap {
			tr.head = 0
		}
	}
}

// Hash returns the running hash over all recorded entries. Two runs with
// equal hashes executed the same tagged events at the same cycles in the
// same order.
func (tr *Trace) Hash() uint64 { return tr.hash }

// Count returns the number of entries recorded (including ones evicted
// from the ring).
func (tr *Trace) Count() uint64 { return tr.count }

// Entries returns the retained entries, oldest first.
func (tr *Trace) Entries() []TraceEntry {
	if tr.head == 0 {
		return tr.ring
	}
	out := make([]TraceEntry, 0, len(tr.ring))
	out = append(out, tr.ring[tr.head:]...)
	return append(out, tr.ring[:tr.head]...)
}
