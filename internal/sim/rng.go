package sim

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every stochastic element of the machine model (daemon phase offsets,
// manufacturing variability, electrical noise) draws from an RNG seeded
// from the run configuration, so a run is a pure function of its seeds.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child generator labelled by id. Forking lets
// subsystems own private streams whose draws do not perturb each other.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Cycles returns a duration in [0, n).
func (r *RNG) Cycles(n Cycles) Cycles {
	if n == 0 {
		return 0
	}
	return Cycles(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the sum
// of twelve uniforms (Irwin–Hall); adequate for jitter modelling and free
// of math package state.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
