package sim

import (
	"container/heap"
	"math/bits"
)

// SchedulerKind selects the Engine's pending-event queue implementation.
type SchedulerKind int

const (
	// SchedWheel is the hierarchical timer wheel: O(1) scheduling and
	// same-cycle dispatch. It is the default fast path.
	SchedWheel SchedulerKind = iota
	// SchedHeap is the original binary-heap scheduler, kept as the simple
	// reference implementation the wheel is differentially tested against
	// (see differential_test.go and scripts/ci.sh).
	SchedHeap
)

func (k SchedulerKind) String() string {
	if k == SchedHeap {
		return "heap"
	}
	return "wheel"
}

// scheduler is the engine's pending-event queue. Implementations must pop
// events in strictly nondecreasing (at, seq) order — the FIFO-within-a-
// cycle ordering contract every simulation above relies on. The engine
// guarantees pushes never schedule before the last popped time.
type scheduler interface {
	push(*event)
	// pop removes and returns the earliest pending event (nil when empty).
	pop() *event
	// peek reports the earliest pending time without disturbing order.
	peek() (Cycles, bool)
	len() int
	reset()
}

// ---------------------------------------------------------------------------
// Reference scheduler: binary heap ordered by (at, seq).

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type heapSched struct{ h eventHeap }

func (s *heapSched) push(ev *event) { heap.Push(&s.h, ev) }

func (s *heapSched) pop() *event {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*event)
}

func (s *heapSched) peek() (Cycles, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].at, true
}

func (s *heapSched) len() int { return len(s.h) }
func (s *heapSched) reset()   { s.h = nil }

// ---------------------------------------------------------------------------
// Fast scheduler: hierarchical timer wheel.
//
// Four levels of 256 slots give a 2^32-cycle (~5 simulated seconds)
// lookahead horizon; events beyond it wait in a small overflow heap. An
// event lives at the level of the most significant base-256 digit in
// which its time differs from the wheel's current time, in the slot named
// by its own digit there. Scheduling is O(1); popping scans a 256-bit
// occupancy bitmap per level and cascades one higher-level slot down when
// the current 256-cycle window drains.
//
// Ordering argument (the part the differential harness proves): within
// one level-0 slot all events share the exact same cycle, and every path
// that adds to a bucket — direct push, or a cascade from the level above —
// appends in nondecreasing seq order, because cascades happen exactly
// when the wheel enters a window (before any same-time push can target
// level 0) and a slot's list preserves insertion order. Overflow events
// at a given cycle were necessarily scheduled earlier (when that cycle
// was still beyond the horizon) than any wheel-resident event at the same
// cycle, so draining overflow first at time ties preserves seq order too.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64
)

type wheelSched struct {
	cur     Cycles // wheel time; equals the engine's now between pops
	inWheel int    // events resident in the levels (excludes overflow)
	slots   [wheelLevels][wheelSlots][]*event
	occ     [wheelLevels][wheelWords]uint64
	head0   [wheelSlots]int32 // consumed prefix of each level-0 bucket
	over    eventHeap         // beyond-horizon events, ordered (at, seq)
}

func newWheelSched() *wheelSched { return &wheelSched{} }

func (w *wheelSched) len() int { return w.inWheel + len(w.over) }

func (w *wheelSched) reset() { *w = wheelSched{} }

func (w *wheelSched) push(ev *event) {
	d := ev.at ^ w.cur
	if d>>(wheelBits*wheelLevels) != 0 {
		heap.Push(&w.over, ev)
		return
	}
	lvl := 0
	for d >= wheelSlots {
		d >>= wheelBits
		lvl++
	}
	slot := int(ev.at>>(wheelBits*lvl)) & wheelMask
	w.slots[lvl][slot] = append(w.slots[lvl][slot], ev)
	w.occ[lvl][slot>>6] |= 1 << (slot & 63)
	w.inWheel++
}

// firstOcc returns the first occupied slot index >= from at level l.
func (w *wheelSched) firstOcc(l, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	bs := w.occ[l][word] >> (from & 63) << (from & 63)
	for {
		if bs != 0 {
			return word<<6 + bits.TrailingZeros64(bs), true
		}
		word++
		if word >= wheelWords {
			return 0, false
		}
		bs = w.occ[l][word]
	}
}

func (w *wheelSched) pop() *event {
	// Same-cycle batch fast path: every event in the level-0 slot at the
	// wheel's own digit is scheduled for exactly cur, so draining a burst
	// of same-cycle events is a pointer bump per event. Overflow can only
	// preempt it with an equal-time, earlier-seq event.
	s0 := int(w.cur) & wheelMask
	if int(w.head0[s0]) < len(w.slots[0][s0]) {
		if len(w.over) == 0 || w.over[0].at > w.cur {
			return w.takeL0(s0)
		}
		return w.popOver()
	}
	if w.inWheel == 0 {
		if len(w.over) == 0 {
			return nil
		}
		return w.popOver()
	}
	for {
		if s, ok := w.firstOcc(0, int(w.cur)&wheelMask); ok {
			t := w.cur&^Cycles(wheelMask) | Cycles(s)
			if len(w.over) > 0 && w.over[0].at <= t {
				return w.popOver()
			}
			w.cur = t
			return w.takeL0(s)
		}
		// The current 256-cycle window is dry: advance to the next
		// occupied window, cascading one higher-level slot down.
		advanced := false
		for l := 1; l < wheelLevels; l++ {
			digit := int(w.cur>>(wheelBits*l)) & wheelMask
			s, ok := w.firstOcc(l, digit+1)
			if !ok {
				continue
			}
			span := uint(wheelBits * (l + 1))
			boundary := w.cur>>span<<span | Cycles(s)<<(wheelBits*l)
			if len(w.over) > 0 && w.over[0].at < boundary {
				return w.popOver()
			}
			w.cur = boundary
			w.cascade(l, s)
			advanced = true
			break
		}
		if !advanced {
			// Only overflow events remain.
			return w.popOver()
		}
	}
}

// takeL0 pops the head of level-0 bucket s. All events there share the
// same cycle, so this never needs a comparison.
func (w *wheelSched) takeL0(s int) *event {
	b := w.slots[0][s]
	h := w.head0[s]
	ev := b[h]
	b[h] = nil
	h++
	if int(h) == len(b) {
		w.slots[0][s] = b[:0]
		w.head0[s] = 0
		w.occ[0][s>>6] &^= 1 << (s & 63)
	} else {
		w.head0[s] = h
	}
	w.inWheel--
	return ev
}

// cascade redistributes higher-level slot (l, s) into lower levels after
// the wheel advanced into its window. List order is preserved, which
// keeps same-cycle buckets in seq order.
func (w *wheelSched) cascade(l, s int) {
	evs := w.slots[l][s]
	if len(evs) == 0 {
		return
	}
	w.slots[l][s] = evs[:0]
	w.occ[l][s>>6] &^= 1 << (s & 63)
	w.inWheel -= len(evs)
	for i, ev := range evs {
		evs[i] = nil
		w.push(ev)
	}
}

// popOver pops the earliest overflow event and jumps wheel time to it,
// re-filing any wheel-resident events whose digit classification the jump
// invalidates. (Nothing in the wheel is pending before the popped time —
// pop only takes this path after proving that.)
func (w *wheelSched) popOver() *event {
	ev := heap.Pop(&w.over).(*event)
	t := ev.at
	if t != w.cur {
		hi := 0
		for d := (t ^ w.cur) >> wheelBits; d != 0; d >>= wheelBits {
			hi++
		}
		w.cur = t
		if w.inWheel > 0 {
			if hi >= wheelLevels {
				hi = wheelLevels - 1
			}
			for l := hi; l >= 1; l-- {
				w.cascade(l, int(t>>(wheelBits*l))&wheelMask)
			}
		}
	}
	return ev
}

func (w *wheelSched) peek() (Cycles, bool) {
	best := Cycles(0)
	have := false
	if len(w.over) > 0 {
		best, have = w.over[0].at, true
	}
	if w.inWheel > 0 {
		if s, ok := w.firstOcc(0, int(w.cur)&wheelMask); ok {
			t := w.cur&^Cycles(wheelMask) | Cycles(s)
			if !have || t < best {
				best = t
			}
			return best, true
		}
		// The earliest occupied slot at the lowest non-empty level bounds
		// every later window; its bucket min is the wheel's minimum.
		for l := 1; l < wheelLevels; l++ {
			digit := int(w.cur>>(wheelBits*l)) & wheelMask
			s, ok := w.firstOcc(l, digit+1)
			if !ok {
				continue
			}
			min := Cycles(0)
			for i, ev := range w.slots[l][s] {
				if i == 0 || ev.at < min {
					min = ev.at
				}
			}
			if !have || min < best {
				best = min
			}
			return best, true
		}
	}
	return best, have
}
