package sim

import (
	"fmt"
)

// event is a single scheduled callback.
type event struct {
	at  Cycles
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

// EngineConfig selects engine implementation details that must never
// change observable behaviour: every configuration runs the same events
// at the same cycles in the same order (the differential harness in
// differential_test.go holds the implementations to that).
type EngineConfig struct {
	// Scheduler picks the pending-event queue: SchedWheel (default, the
	// timer-wheel fast path) or SchedHeap (the reference binary heap).
	Scheduler SchedulerKind
}

// Engine is a deterministic discrete-event simulator. All state mutation in
// a simulation happens either inside event callbacks or inside coroutines
// resumed by event callbacks; the engine guarantees that exactly one of
// these runs at a time and that their order depends only on (time, schedule
// order), never on the Go runtime scheduler.
type Engine struct {
	now   Cycles
	seq   uint64
	sched scheduler
	coros []*Coro // all coroutines ever started, for shutdown
	trace *Trace

	// free recycles event structs: the simulation's hot path schedules
	// millions of events, and pooling them leaves the per-schedule cost
	// at the callback closure alone.
	free []*event

	// stepping guards against event-queue mutation racing a running
	// coroutine: engine methods may only be called from simulation context,
	// and Shutdown only from outside it.
	stepping bool

	// advance, when set, is called each time Step moves the clock
	// forward, before the event at the new time dispatches. Observability
	// layers hang periodic samplers here instead of scheduling events of
	// their own: a self-rescheduling sampler event would keep Pending
	// nonzero forever and perturb every run-until-idle loop. The hook
	// must only observe — it runs outside any coroutine and must not
	// schedule events, sleep, or mutate simulation state.
	advance func(prev, now Cycles)
}

// NewEngine returns an engine at cycle 0 with an empty event queue, using
// the default (timer wheel) scheduler.
func NewEngine() *Engine { return NewEngineWith(EngineConfig{}) }

// NewEngineWith returns an engine configured by cfg.
func NewEngineWith(cfg EngineConfig) *Engine {
	e := &Engine{trace: NewTrace()}
	if cfg.Scheduler == SchedHeap {
		e.sched = &heapSched{}
	} else {
		e.sched = newWheelSched()
	}
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycles { return e.now }

// Trace returns the engine's trace recorder.
func (e *Engine) Trace() *Trace { return e.trace }

// At schedules fn to run at absolute cycle t. Scheduling in the past is an
// error in simulation logic and panics.
func (e *Engine) At(t Cycles, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.sched.push(ev)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// SetAdvanceHook installs fn as the clock-advance observer (nil clears
// it); see the field comment for the contract.
func (e *Engine) SetAdvanceHook(fn func(prev, now Cycles)) { e.advance = fn }

// Step runs the next pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	ev := e.sched.pop()
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	if e.advance != nil && ev.at > e.now {
		prev := e.now
		e.now = ev.at
		e.advance(prev, ev.at)
	} else {
		e.now = ev.at
	}
	fn := ev.fn
	ev.fn = nil
	e.free = append(e.free, ev)
	e.stepping = true
	fn()
	e.stepping = false
	return true
}

// Run executes events until the queue is empty or the next event lies
// beyond the limit. It returns the number of events executed.
func (e *Engine) Run(limit Cycles) int {
	n := 0
	for {
		t, ok := e.sched.peek()
		if !ok || t > limit {
			break
		}
		e.Step()
		n++
	}
	return n
}

// RunUntilIdle executes events until no events remain. Coroutines parked
// without a pending wake are not counted as work; a deadlocked simulation
// simply stops. It returns the number of events executed.
func (e *Engine) RunUntilIdle() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.sched.len() }

// Shutdown kills every live coroutine so their goroutines exit. The engine
// must not be used afterwards.
//
// Contract: Shutdown is only legal on an idle engine, from host code —
// never from inside an event callback or coroutine. A coroutine cannot
// unwind itself synchronously, and tearing the queue down mid-step would
// corrupt the dispatch in flight; instead of silently corrupting state,
// calling Shutdown from simulation context panics. Let the run finish (or
// stop driving the engine) and shut down from the outside.
func (e *Engine) Shutdown() {
	if e.stepping {
		panic("sim: Engine.Shutdown called from inside an event or coroutine; Shutdown is only legal on an idle engine from host code")
	}
	for _, c := range e.coros {
		c.kill()
	}
	e.coros = nil
	e.sched.reset()
	e.free = nil
}
