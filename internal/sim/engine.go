package sim

import (
	"container/heap"
	"fmt"
)

// event is a single scheduled callback.
type event struct {
	at  Cycles
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. All state mutation in
// a simulation happens either inside event callbacks or inside coroutines
// resumed by event callbacks; the engine guarantees that exactly one of
// these runs at a time and that their order depends only on (time, schedule
// order), never on the Go runtime scheduler.
type Engine struct {
	now    Cycles
	seq    uint64
	events eventHeap
	coros  []*Coro // all coroutines ever started, for shutdown
	trace  *Trace

	// inCoroutine guards against event-queue mutation racing a running
	// coroutine: engine methods may only be called from simulation context.
	stepping bool
}

// NewEngine returns an engine at cycle 0 with an empty event queue.
func NewEngine() *Engine {
	return &Engine{trace: NewTrace()}
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycles { return e.now }

// Trace returns the engine's trace recorder.
func (e *Engine) Trace() *Trace { return e.trace }

// At schedules fn to run at absolute cycle t. Scheduling in the past is an
// error in simulation logic and panics.
func (e *Engine) At(t Cycles, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// Step runs the next pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.stepping = true
	ev.fn()
	e.stepping = false
	return true
}

// Run executes events until the queue is empty or the next event lies
// beyond the limit. It returns the number of events executed.
func (e *Engine) Run(limit Cycles) int {
	n := 0
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.Step()
		n++
	}
	return n
}

// RunUntilIdle executes events until no events remain. Coroutines parked
// without a pending wake are not counted as work; a deadlocked simulation
// simply stops. It returns the number of events executed.
func (e *Engine) RunUntilIdle() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Shutdown kills every live coroutine so their goroutines exit. The engine
// must not be used afterwards. It is safe to call on an idle engine only
// (never from inside an event or coroutine).
func (e *Engine) Shutdown() {
	for _, c := range e.coros {
		c.kill()
	}
	e.coros = nil
	e.events = nil
}
