package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Cycles
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.RunUntilIdle()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	ran := 0
	for _, c := range []Cycles{10, 20, 30, 40} {
		e.At(c, func() { ran++ })
	}
	n := e.Run(25)
	if n != 2 || ran != 2 {
		t.Fatalf("Run(25) executed %d events, want 2", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntilIdle()
	if ran != 4 {
		t.Fatalf("remaining events not run: %d", ran)
	}
}

func TestCoroSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var wake Cycles
	e.Go("sleeper", func(c *Coro) {
		c.Sleep(1000)
		wake = c.Now()
	})
	e.RunUntilIdle()
	if wake != 1000 {
		t.Fatalf("woke at %d, want 1000", wake)
	}
}

func TestCoroInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(c *Coro) {
		order = append(order, "a0")
		c.Sleep(10)
		order = append(order, "a10")
		c.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(c *Coro) {
		order = append(order, "b0")
		c.Sleep(15)
		order = append(order, "b15")
	})
	e.RunUntilIdle()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCoroParkTimeout(t *testing.T) {
	e := NewEngine()
	var reason WakeReason
	var at Cycles
	e.Go("p", func(c *Coro) {
		reason = c.Park(500)
		at = c.Now()
	})
	e.RunUntilIdle()
	if reason != WakeTimeout || at != 500 {
		t.Fatalf("park returned %v at %d, want timeout at 500", reason, at)
	}
}

func TestCoroParkWake(t *testing.T) {
	e := NewEngine()
	var reason WakeReason
	var at Cycles
	var p *Coro
	p = e.Go("p", func(c *Coro) {
		reason = c.Park(Forever)
		at = c.Now()
	})
	e.At(200, func() { p.Wake() })
	e.RunUntilIdle()
	if reason != WakeSignal || at != 200 {
		t.Fatalf("park returned %v at %d, want signal at 200", reason, at)
	}
}

func TestCoroWakeCancelsTimeout(t *testing.T) {
	e := NewEngine()
	var wakes []WakeReason
	var times []Cycles
	var p *Coro
	p = e.Go("p", func(c *Coro) {
		wakes = append(wakes, c.Park(1000)) // woken early at 100
		times = append(times, c.Now())
		wakes = append(wakes, c.Park(50)) // times out at 150
		times = append(times, c.Now())
	})
	e.At(100, func() { p.Wake() })
	e.RunUntilIdle()
	if len(wakes) != 2 || wakes[0] != WakeSignal || wakes[1] != WakeTimeout {
		t.Fatalf("wakes = %v, want [signal timeout]", wakes)
	}
	// The stale 1000-cycle timeout must not resume the coroutine a third
	// time or perturb the second park.
	if times[0] != 100 || times[1] != 150 {
		t.Fatalf("wake times = %v, want [100 150]", times)
	}
}

func TestCoroWakeWhileRunningIsPending(t *testing.T) {
	e := NewEngine()
	var reason WakeReason
	var self *Coro
	self = e.Go("p", func(c *Coro) {
		self.Wake() // signal posted while running
		reason = c.Park(Forever)
	})
	e.RunUntilIdle()
	if reason != WakeSignal {
		t.Fatalf("pending wake not consumed: %v", reason)
	}
}

func TestCoroMultipleWakesCollapse(t *testing.T) {
	e := NewEngine()
	count := 0
	var p *Coro
	p = e.Go("p", func(c *Coro) {
		c.Park(Forever)
		count++
		c.Park(Forever) // never woken again; sim ends with it parked
		count++
	})
	e.At(10, func() { p.Wake(); p.Wake(); p.Wake() })
	e.RunUntilIdle()
	if count != 1 {
		t.Fatalf("coroutine woke %d times, want 1", count)
	}
	e.Shutdown()
}

func TestCoroWakeAfterDoneIsNoop(t *testing.T) {
	e := NewEngine()
	p := e.Go("p", func(c *Coro) {})
	e.RunUntilIdle()
	if !p.Done() {
		t.Fatal("coroutine should be done")
	}
	p.Wake() // must not panic or deadlock
	e.RunUntilIdle()
}

func TestEngineShutdownUnwindsParked(t *testing.T) {
	e := NewEngine()
	cleaned := false
	e.Go("p", func(c *Coro) {
		defer func() { cleaned = true }()
		c.Park(Forever)
		t.Error("should never resume")
	})
	e.RunUntilIdle()
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on shutdown")
	}
}

func TestDeterminismIdenticalRuns(t *testing.T) {
	run := func() (uint64, Cycles) {
		e := NewEngine()
		rng := NewRNG(42)
		for i := 0; i < 4; i++ {
			i := i
			e.Go("w", func(c *Coro) {
				for j := 0; j < 50; j++ {
					d := 1 + rng.Cycles(100)
					c.Sleep(d)
					e.Trace().Record(c.Now(), "w", c.Name())
					_ = i
				}
			})
		}
		e.RunUntilIdle()
		return e.Trace().Hash(), e.Now()
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("identical configs diverged: hash %x vs %x, end %d vs %d", h1, h2, t1, t2)
	}
}

func TestRNGDeterministicAndForkIndependent(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(7)
	f1 := c.Fork(1)
	f2 := c.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestTraceHashSensitivity(t *testing.T) {
	a := NewTrace()
	b := NewTrace()
	a.Record(10, "x", "p")
	b.Record(10, "x", "p")
	if a.Hash() != b.Hash() {
		t.Fatal("identical traces must hash equal")
	}
	b.Record(11, "x", "p")
	if a.Hash() == b.Hash() {
		t.Fatal("different traces must hash differently")
	}
	c := NewTrace()
	c.Record(10, "x", "q")
	if a.Hash() == c.Hash() {
		t.Fatal("detail must affect hash")
	}
}

func TestTraceRingBounded(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10000; i++ {
		tr.Record(Cycles(i), "t", "d")
	}
	if len(tr.Entries()) != 4096 {
		t.Fatalf("ring size %d, want 4096", len(tr.Entries()))
	}
	if tr.Count() != 10000 {
		t.Fatalf("count %d, want 10000", tr.Count())
	}
	if tr.Entries()[0].At != Cycles(10000-4096) {
		t.Fatalf("oldest retained entry at %d", tr.Entries()[0].At)
	}
}

func TestTraceDisabled(t *testing.T) {
	tr := NewTrace()
	h0 := tr.Hash()
	tr.SetEnabled(false)
	tr.Record(1, "t", "d")
	if tr.Hash() != h0 || tr.Count() != 0 {
		t.Fatal("disabled trace must not record")
	}
}

func TestCyclesConversions(t *testing.T) {
	if CyclesPerMicro != 850 {
		t.Fatalf("CyclesPerMicro = %d, want 850", CyclesPerMicro)
	}
	if got := FromMicros(1.0); got != 850 {
		t.Fatalf("FromMicros(1) = %d", got)
	}
	if got := Cycles(850).Micros(); got != 1.0 {
		t.Fatalf("Micros = %v", got)
	}
	if got := FromSeconds(1); got != ClockHz {
		t.Fatalf("FromSeconds(1) = %d", got)
	}
	if got := FromMillis(1); got != 850_000 {
		t.Fatalf("FromMillis(1) = %d", got)
	}
}

func TestCyclesStringForms(t *testing.T) {
	cases := map[Cycles]string{
		100:     "100cy",
		Forever: "forever",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint64(c), got, want)
		}
	}
	if s := FromSeconds(2).String(); s != "2.000s" {
		t.Errorf("seconds form = %q", s)
	}
	if s := FromMillis(3).String(); s != "3.000ms" {
		t.Errorf("millis form = %q", s)
	}
}
