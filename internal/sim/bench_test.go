package sim

import "testing"

// The scheduler micro-benchmarks drive both implementations through the
// three shapes the machine model produces: raw scheduling, dense
// same-window dispatch (barrier storms, packet bursts), and sparse
// far-flung timers (daemon periods, checkpoint intervals). cmd/simbench
// runs the same workloads to emit BENCH_sim.json.

func benchBoth(b *testing.B, fn func(b *testing.B, kind SchedulerKind)) {
	for _, kind := range []SchedulerKind{SchedHeap, SchedWheel} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			fn(b, kind)
		})
	}
}

// BenchmarkSchedule measures At() with a steady queue: each op schedules
// one event into a standing population of pending events, draining
// periodically so the queue neither empties nor grows without bound.
func BenchmarkSchedule(b *testing.B) {
	benchBoth(b, func(b *testing.B, kind SchedulerKind) {
		e := NewEngineWith(EngineConfig{Scheduler: kind})
		e.Trace().SetEnabled(false)
		rng := NewRNG(1)
		nop := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(rng.Cycles(100_000), nop)
			if e.Pending() >= 8192 {
				e.Run(e.Now() + 50_000)
			}
		}
	})
}

// BenchmarkStepDense measures dispatch when events cluster: every event
// reschedules itself 0-3 cycles out, so most steps hit the same-cycle
// batch path.
func BenchmarkStepDense(b *testing.B) {
	benchBoth(b, func(b *testing.B, kind SchedulerKind) {
		e := NewEngineWith(EngineConfig{Scheduler: kind})
		e.Trace().SetEnabled(false)
		rng := NewRNG(2)
		var tick func()
		tick = func() { e.After(rng.Cycles(4), tick) }
		for i := 0; i < 512; i++ {
			e.After(rng.Cycles(4), tick)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
}

// BenchmarkStepSparse measures dispatch when events are scattered across
// the timer range: every event reschedules itself up to a billion cycles
// out, exercising the wheel's higher levels, cascades, and overflow.
func BenchmarkStepSparse(b *testing.B) {
	benchBoth(b, func(b *testing.B, kind SchedulerKind) {
		e := NewEngineWith(EngineConfig{Scheduler: kind})
		e.Trace().SetEnabled(false)
		rng := NewRNG(3)
		var tick func()
		tick = func() { e.After(1+rng.Cycles(1_000_000_000), tick) }
		for i := 0; i < 512; i++ {
			e.After(1+rng.Cycles(1_000_000_000), tick)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
}

// BenchmarkTraceRecord measures the trace hot path (hash + ring append);
// it must stay allocation-free.
func BenchmarkTraceRecord(b *testing.B) {
	b.ReportAllocs()
	tr := NewTrace()
	for i := 0; i < b.N; i++ {
		tr.Record(Cycles(i), "core0", "tracepoint")
	}
}
