package sim

// WakeReason tells a parked coroutine why it resumed.
type WakeReason int

const (
	// WakeTimeout means the park's deadline expired.
	WakeTimeout WakeReason = iota
	// WakeSignal means another simulation actor woke the coroutine
	// explicitly (interrupt, futex wake, message arrival, ...).
	WakeSignal
)

func (r WakeReason) String() string {
	if r == WakeTimeout {
		return "timeout"
	}
	return "signal"
}

// coroKilled is the sentinel panic value used to unwind a coroutine during
// Engine.Shutdown.
type coroKilled struct{}

type resumeMsg struct {
	reason WakeReason
	kill   bool
}

// Coro is a cooperative simulated thread of execution. A coroutine runs on
// its own goroutine, but the engine guarantees only one simulation
// goroutine (event callback or coroutine) executes at a time: every resume
// flows through the event queue and every yield hands control back to the
// engine synchronously.
//
// Coro methods must only be called from simulation context.
type Coro struct {
	eng    *Engine
	name   string
	resume chan resumeMsg
	yield  chan struct{}

	parked  bool   // currently parked awaiting resume
	wakeGen uint64 // invalidates in-flight timeout events after a signal wake
	pending bool   // a signal arrived while the coroutine was running
	done    bool
	dead    bool
}

// Go starts fn as a new coroutine named name. The coroutine begins running
// at the current cycle, after already-queued events at this cycle.
func (e *Engine) Go(name string, fn func(c *Coro)) *Coro {
	c := &Coro{
		eng:    e,
		name:   name,
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
	}
	e.coros = append(e.coros, c)
	go func() {
		msg := <-c.resume // initial dispatch
		if !msg.kill {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(coroKilled); !ok {
							panic(r)
						}
					}
				}()
				fn(c)
			}()
		}
		c.done = true
		c.yield <- struct{}{}
	}()
	c.parked = true
	e.After(0, func() { c.dispatch(resumeMsg{reason: WakeSignal}) })
	return c
}

// Name returns the coroutine's debug name.
func (c *Coro) Name() string { return c.name }

// Done reports whether the coroutine's function has returned.
func (c *Coro) Done() bool { return c.done }

// Engine returns the engine this coroutine runs on.
func (c *Coro) Engine() *Engine { return c.eng }

// Now returns the current simulation time.
func (c *Coro) Now() Cycles { return c.eng.Now() }

// dispatch hands control to the coroutine and blocks until it yields or
// finishes. Must run on the engine goroutine (inside an event).
func (c *Coro) dispatch(msg resumeMsg) {
	if c.done || c.dead {
		return
	}
	c.parked = false
	c.resume <- msg
	<-c.yield
}

// park yields control to the engine and blocks until resumed. Returns the
// resume message.
func (c *Coro) park() resumeMsg {
	c.parked = true
	c.yield <- struct{}{}
	msg := <-c.resume
	if msg.kill {
		panic(coroKilled{})
	}
	return msg
}

// Sleep advances this coroutine's time by d cycles. Other simulation
// activity proceeds during the sleep. Signals (Wake) arriving during the
// sleep are absorbed: every blocking construct in the simulator rechecks
// its state after waking, so a swallowed signal cannot lose information —
// it only means the state it advertised is already visible.
func (c *Coro) Sleep(d Cycles) {
	deadline := c.eng.Now() + d
	for {
		now := c.eng.Now()
		if now >= deadline {
			return
		}
		c.pending = false // absorb any signal posted while running
		if c.Park(deadline-now) == WakeTimeout {
			return
		}
	}
}

// Park blocks the coroutine until either an explicit Wake (WakeSignal) or
// the timeout elapses (WakeTimeout). A timeout of Forever (or greater)
// means no deadline. If a signal was posted with Wake while the coroutine
// was still running, Park consumes it and returns immediately.
func (c *Coro) Park(timeout Cycles) WakeReason {
	if c.pending {
		c.pending = false
		return WakeSignal
	}
	gen := c.bumpGen()
	if timeout < Forever {
		c.eng.At(c.eng.Now()+timeout, func() { c.timeoutWake(gen) })
	}
	return c.park().reason
}

// Wake delivers a signal to the coroutine. If it is parked it resumes (via
// the event queue, preserving deterministic ordering) with WakeSignal; if
// it is currently running, the signal is remembered and consumed by its
// next Park. Waking a finished coroutine is a no-op. Multiple wakes before
// the coroutine parks collapse into one.
func (c *Coro) Wake() {
	if c.done || c.dead {
		return
	}
	if !c.parked {
		c.pending = true
		return
	}
	gen := c.bumpGen() // invalidate any in-flight timeout
	c.eng.After(0, func() {
		if c.wakeGen != gen || !c.parked {
			return // superseded
		}
		c.dispatch(resumeMsg{reason: WakeSignal})
	})
}

func (c *Coro) bumpGen() uint64 {
	c.wakeGen++
	return c.wakeGen
}

func (c *Coro) timeoutWake(gen uint64) {
	if c.wakeGen != gen || !c.parked {
		return // stale: the coroutine was woken or re-parked since
	}
	c.dispatch(resumeMsg{reason: WakeTimeout})
}

// kill unwinds the coroutine if it is still parked. Called only from
// Engine.Shutdown (outside simulation context, with the engine idle).
func (c *Coro) kill() {
	if c.done || c.dead {
		return
	}
	if !c.parked {
		// A non-parked, non-done coroutine outside simulation context
		// cannot exist; nothing to do but mark it dead.
		c.dead = true
		return
	}
	c.dead = true
	c.resume <- resumeMsg{kill: true}
	<-c.yield
}
