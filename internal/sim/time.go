// Package sim provides the deterministic discrete-event simulation engine
// underlying the Blue Gene/P machine model.
//
// Determinism is the load-bearing property: the paper's Section III
// (cycle-by-cycle reproducible execution for chip bringup) is reproduced by
// running the whole machine inside a single event loop whose event order is a
// pure function of (configuration, seeds). Simulated threads of execution are
// cooperative coroutines; exactly one goroutine is runnable at any instant,
// and all cross-thread signalling flows through the event queue, which is
// ordered by (time, insertion sequence).
package sim

import "fmt"

// Cycles counts processor clock cycles. The Blue Gene/P PowerPC 450 runs at
// 850 MHz, so one microsecond is 850 cycles.
type Cycles uint64

// ClockHz is the modelled core frequency (Blue Gene/P: 850 MHz).
const ClockHz = 850_000_000

// CyclesPerMicro is the number of core cycles in one microsecond.
const CyclesPerMicro = ClockHz / 1_000_000

// Forever is a sentinel "no deadline" duration.
const Forever = Cycles(1) << 62

// Micros converts a cycle count to microseconds.
func (c Cycles) Micros() float64 { return float64(c) / float64(CyclesPerMicro) }

// Seconds converts a cycle count to seconds.
func (c Cycles) Seconds() float64 { return float64(c) / float64(ClockHz) }

// FromMicros converts microseconds to cycles, rounding to nearest.
func FromMicros(us float64) Cycles {
	return Cycles(us*float64(CyclesPerMicro) + 0.5)
}

// FromMillis converts milliseconds to cycles.
func FromMillis(ms float64) Cycles { return FromMicros(ms * 1000) }

// FromSeconds converts seconds to cycles.
func FromSeconds(s float64) Cycles { return Cycles(s*float64(ClockHz) + 0.5) }

func (c Cycles) String() string {
	switch {
	case c >= Forever:
		return "forever"
	case c >= ClockHz:
		return fmt.Sprintf("%.3fs", c.Seconds())
	case c >= CyclesPerMicro*1000:
		return fmt.Sprintf("%.3fms", c.Micros()/1000)
	default:
		return fmt.Sprintf("%dcy", uint64(c))
	}
}
