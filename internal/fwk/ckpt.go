package fwk

import (
	"sort"

	"bgcnk/internal/ckpt"
	"bgcnk/internal/fs"
	"bgcnk/internal/sim"
)

// Checkpoint cost model (cycles). A full-weight kernel pays for
// everything CNK's static map avoids: it must walk the page table to
// discover what is resident, flush the page cache, and park every daemon
// before the memory image is stable enough to capture — and the image
// itself is a pile of scattered 4 KB pages rather than a few large
// extents (paper V-B / Table II).
const (
	ckptFlushCost   = sim.Cycles(60_000) // page-cache flush + writeback barrier
	ckptDaemonCost  = sim.Cycles(6_000)  // quiesce/park one daemon
	ckptPageCost    = sim.Cycles(520)    // walk + capture one resident 4KB page
	restorePageCost = sim.Cycles(640)    // re-fault + fill one 4KB page
)

// CheckpointRegions walks pid's resident set and coalesces it into
// maximal runs of contiguous resident pages, sorted by virtual base, plus
// the resident byte count. Where CNK reports a handful of large extents,
// the FWK answer is typically dozens of short runs — the image format
// itself records the contiguity difference of Table II.
func (k *Kernel) CheckpointRegions(pid uint32) ([]ckpt.Region, uint64) {
	p := k.procs[pid]
	if p == nil {
		return nil, 0
	}
	vps := make([]uint64, 0, len(p.pages))
	for vp := range p.pages {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	var out []ckpt.Region
	for _, vp := range vps {
		va := vp * pageSize
		if n := len(out); n > 0 && out[n-1].VBase+out[n-1].Size == va {
			out[n-1].Size += pageSize
			continue
		}
		out = append(out, ckpt.Region{VBase: va, Size: pageSize})
	}
	total := uint64(0)
	for i := range out {
		out[i].Digest = ckpt.RegionDigest("fwk", out[i].VBase, out[i].Size)
		total += out[i].Size
	}
	return out, total
}

// RestoreImage rebuilds pid's resident set to exactly the image's page
// set: every current frame is freed, then each image page is repopulated
// through the frame allocator. Deliberately silent to the UPC block and
// fault statistics — the restore is kernel work below the counters, and
// the counter state itself is reloaded from the image afterwards.
func (k *Kernel) RestoreImage(pid uint32, regions []ckpt.Region) {
	p := k.procs[pid]
	if p == nil {
		return
	}
	vps := make([]uint64, 0, len(p.pages))
	for vp := range p.pages {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	for _, vp := range vps {
		k.freeFrame(p.pages[vp])
		delete(p.pages, vp)
	}
	for _, c := range k.cpus {
		c.core.TLB.InvalidateASID(pid)
	}
	for _, r := range regions {
		for off := uint64(0); off < r.Size; off += pageSize {
			f, ok := k.allocFrame()
			if !ok {
				return // image larger than memory cannot happen for own images
			}
			p.pages[(r.VBase+off)/pageSize] = f
		}
	}
}

// CheckpointCost models the snapshot: flush the page cache, quiesce the
// daemon population, then capture each resident page individually.
func (k *Kernel) CheckpointCost(pid uint32) sim.Cycles {
	_, bytes := k.CheckpointRegions(pid)
	return ckptFlushCost +
		ckptDaemonCost*sim.Cycles(len(k.cfg.Daemons)) +
		ckptPageCost*sim.Cycles(bytes/pageSize)
}

// RestoreCost models faulting the image's pages back in one at a time
// after a restart boot.
func (k *Kernel) RestoreCost(pid uint32) sim.Cycles {
	_, bytes := k.CheckpointRegions(pid)
	return ckptFlushCost/2 +
		restorePageCost*sim.Cycles(bytes/pageSize)
}

// OpenFiles returns the process's descriptor table for a checkpoint. The
// FWK keeps its file state locally (it mounts the ION filesystem itself)
// rather than in a CIOD ioproxy, so the harvest comes from the process.
func (p *Proc) OpenFiles() []fs.OpenFileState { return p.fsc.OpenFiles() }

// RestoreFiles rebuilds the process's descriptor table from a checkpoint.
func (p *Proc) RestoreFiles(files []fs.OpenFileState) { p.fsc.RestoreFiles(files) }

// ThreadRegs returns synthesized per-thread register state for a
// checkpoint, sorted by TID: the program counter stands in for the resume
// epoch (the caller stamps it) and SP anchors at the stack top.
func (p *Proc) ThreadRegs(epoch uint32) []ckpt.RegState {
	tids := make([]uint32, 0, len(p.Threads))
	for tid := range p.Threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	out := make([]ckpt.RegState, 0, len(tids))
	for _, tid := range tids {
		out = append(out, ckpt.RegState{TID: tid, PC: uint64(epoch), SP: uint64(p.StackTop)})
	}
	return out
}
