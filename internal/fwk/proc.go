package fwk

import (
	"fmt"

	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/mem"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Virtual layout constants. A 32-bit Linux task tops out at 3GB (paper
// VII-A: "Linux typically limits a task to 3GB of the address space due to
// 32-bit limitations"), versus CNK's nearly-4GB.
const (
	vTextBase = hw.VAddr(16 << 20)
	vUserTop  = hw.VAddr(0xC0000000) // 3GB
	stackSize = uint64(8 << 20)
	pageSize  = uint64(4096)
)

// Proc is one FWK process: VMAs, page table, file table.
type Proc struct {
	PID uint32
	UID uint32
	GID uint32

	vmas  *mem.MmapTracker // all mappings, 4KB granularity
	pages map[uint64]hw.PAddr
	Brk   *mem.Brk
	Sig   kernel.SignalTable

	fsc *fs.Client

	Threads     map[uint32]*kernel.Thread
	Main        *kernel.Thread
	liveThreads int
	exitCode    int
	done        bool

	StackTop hw.VAddr
	HeapBase hw.VAddr

	// Fault statistics.
	MinorFaults uint64
}

// Done reports process completion.
func (p *Proc) Done() bool { return p.done }

// ExitCode returns the exit status.
func (p *Proc) ExitCode() int { return p.exitCode }

// JobSpec mirrors cnk.JobSpec so experiments can run the same workload on
// both kernels.
type JobSpec struct {
	Params    kernel.JobParams
	TextBytes uint64
	DataBytes uint64
	UID, GID  uint32
	Main      func(ctx kernel.Context, rank int)
}

// Job tracks the launched processes.
type Job struct{ Procs []*Proc }

// Done reports whether all processes exited.
func (j *Job) Done() bool {
	for _, p := range j.Procs {
		if !p.done {
			return false
		}
	}
	return true
}

// Launch creates the requested processes. Unlike CNK there is no static
// partition: every process gets the full (3GB) address space, demand-paged.
func (k *Kernel) Launch(spec JobSpec) (*Job, error) {
	if !k.booted {
		return nil, fmt.Errorf("fwk: launch before boot")
	}
	if spec.Params.ProcsPerNode == 0 {
		spec.Params.ProcsPerNode = 1
	}
	if spec.TextBytes == 0 {
		spec.TextBytes = 1 << 20
	}
	job := &Job{}
	for i := 0; i < spec.Params.ProcsPerNode; i++ {
		p := k.newProc(spec)
		job.Procs = append(job.Procs, p)
		rank := i
		k.startThread(p, nil, func(ctx kernel.Context) { spec.Main(ctx, rank) }, true)
	}
	return job, nil
}

func (k *Kernel) newProc(spec JobSpec) *Proc {
	k.nextPID++
	p := &Proc{
		PID: k.nextPID, UID: spec.UID, GID: spec.GID,
		vmas:    mem.NewMmapTracker(vTextBase, vUserTop, pageSize),
		pages:   make(map[uint64]hw.PAddr),
		fsc:     fs.NewClient(k.FS, fs.Cred{UID: spec.UID, GID: spec.GID}),
		Threads: make(map[uint32]*kernel.Thread),
	}
	text := hw.AlignUp(spec.TextBytes, pageSize)
	data := hw.AlignUp(maxU64(spec.DataBytes, pageSize), pageSize)
	p.vmas.AllocFixed(vTextBase, text, hw.PermRX)
	dataBase := vTextBase + hw.VAddr(text)
	p.vmas.AllocFixed(dataBase, data, hw.PermRW)
	p.HeapBase = dataBase + hw.VAddr(data)
	heapMax := uint64(512 << 20)
	p.vmas.AllocFixed(p.HeapBase, heapMax, hw.PermRW)
	p.Brk = mem.NewBrk(p.HeapBase, p.HeapBase+hw.VAddr(heapMax))
	p.StackTop = vUserTop
	p.vmas.AllocFixed(vUserTop-hw.VAddr(stackSize), stackSize, hw.PermRW)
	k.procs[p.PID] = p
	return p
}

// startThread creates a thread in p. pin, when non-nil, forces the CPU.
func (k *Kernel) startThread(p *Proc, pin *cpu, fn kernel.ThreadFunc, isMain bool) *kernel.Thread {
	k.nextTID++
	t := kernel.NewThread(k, k.nextTID, p.PID)
	p.Threads[t.TID()] = t
	p.liveThreads++
	if isMain {
		p.Main = t
	}
	c := pin
	if c == nil {
		c = k.pickCPU()
	}
	k.Eng.Go(fmt.Sprintf("fwk.pid%d.tid%d", p.PID, t.TID()), func(co *sim.Coro) {
		defer k.recoverExit()
		t.Bind(co, c.core)
		if co.Now() < k.BootedAt {
			co.Sleep(k.BootedAt - co.Now()) // jobs start once the kernel is up
		}
		c.acquire(t)
		fn(t)
		k.exitThread(t, 0)
	})
	return t
}

// Clone implements kernel.OS. An FWK accepts thread creation with the NPTL
// flags and also over-committed thread counts (Table II: "Over commit of
// threads: medium" — possible, needs no special setup here).
func (k *Kernel) Clone(t *kernel.Thread, args kernel.CloneArgs) (uint32, kernel.Errno) {
	p := k.procs[t.PID()]
	if p == nil {
		return 0, kernel.ESRCH
	}
	if args.Flags&kernel.CloneVM == 0 {
		return 0, kernel.EINVAL // process-style clone goes through Fork
	}
	nt := k.startThread(p, nil, args.Fn, false)
	nt.ClearTID = args.ChildTID
	if args.ParentTID != 0 {
		t.StoreU32(args.ParentTID, nt.TID())
	}
	return nt.TID(), kernel.OK
}

// Fork is the typed face of fork(): a full new process whose memory is a
// copy of the parent's. childMain runs as the child's initial thread (in a
// real fork it would "return 0 from fork"; closures stand in for the
// program counter). CNK has no equivalent (paper VII-B).
func (k *Kernel) Fork(t *kernel.Thread, childMain kernel.ThreadFunc) (uint32, kernel.Errno) {
	parent := k.procs[t.PID()]
	if parent == nil {
		return 0, kernel.ESRCH
	}
	k.nextPID++
	child := &Proc{
		PID: k.nextPID, UID: parent.UID, GID: parent.GID,
		vmas:     mem.NewMmapTracker(vTextBase, vUserTop, pageSize),
		pages:    make(map[uint64]hw.PAddr),
		fsc:      fs.NewClient(k.FS, fs.Cred{UID: parent.UID, GID: parent.GID}),
		Threads:  make(map[uint32]*kernel.Thread),
		Brk:      mem.NewBrk(parent.Brk.Base, parent.Brk.Limit),
		HeapBase: parent.HeapBase,
		StackTop: parent.StackTop,
	}
	child.Brk.Cur = parent.Brk.Cur
	for _, r := range parent.vmas.Allocated() {
		child.vmas.AllocFixed(r.VA, r.Size, r.Perms)
	}
	// Copy resident pages (eager copy; COW is an optimization the model
	// doesn't need). Charged per page.
	buf := make([]byte, pageSize)
	for vp, frame := range parent.pages {
		nf, ok := k.allocFrame()
		if !ok {
			return 0, kernel.ENOMEM
		}
		k.Chip.Mem.Read(frame, buf)
		k.Chip.Mem.Write(nf, buf)
		child.pages[vp] = nf
	}
	t.Coro().Sleep(sim.Cycles(uint64(len(parent.pages)))*40 + 8000)
	k.procs[child.PID] = child
	k.startThread(child, nil, childMain, true)
	return child.PID, kernel.OK
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Proc returns the process with the given PID.
func (k *Kernel) Proc(pid uint32) *Proc { return k.procs[pid] }

// Translate implements kernel.OS: VMA check, TLB lookup, software refill,
// demand paging. Every cost a static map avoids lives here.
func (k *Kernel) Translate(t *kernel.Thread, va hw.VAddr, write bool) (hw.PAddr, uint64, hw.Perm, kernel.Errno) {
	p := k.procs[t.PID()]
	if p == nil {
		return 0, 0, 0, kernel.ESRCH
	}
	vma, ok := p.vmas.Find(va)
	if !ok {
		return 0, 0, 0, kernel.EFAULT
	}
	core := t.HWCore()
	if pa, perm, ok := core.TLB.Lookup(t.PID(), va); ok {
		return pa, pageSize - uint64(va)%pageSize, perm, kernel.OK
	}
	// Software TLB refill.
	k.Chip.UPC.Trace.Emit(upc.EvTLBRefill, core.ID, k.Eng.Now(), uint64(va))
	t.Coro().Sleep(tlbRefillCost)
	vp := uint64(va) / pageSize
	frame, present := p.pages[vp]
	if !present {
		// Demand paging: minor fault, fresh zeroed frame.
		k.Chip.UPC.Inc(core.ID, upc.PageFault)
		k.Chip.UPC.Trace.Emit(upc.EvPageFault, core.ID, k.Eng.Now(), uint64(va))
		t.Coro().Sleep(pageFaultCost)
		f, ok := k.allocFrame()
		if !ok {
			return 0, 0, 0, kernel.ENOMEM
		}
		zero := make([]byte, pageSize)
		k.Chip.Mem.Write(f, zero)
		p.pages[vp] = f
		p.MinorFaults++
		frame = f
	}
	core.TLB.Insert(hw.TLBEntry{
		PID: t.PID(), VBase: hw.VAddr(vp * pageSize), PBase: frame,
		Size: hw.Page4K, Perms: vma.Perms,
	})
	return frame + hw.PAddr(uint64(va)%pageSize), pageSize - uint64(va)%pageSize, vma.Perms, kernel.OK
}

// VtoP implements kernel.OS: on an FWK this is a pinning operation — a
// system call per range plus per-page work, and the result is one range
// per (scattered) 4KB page. Compare CNK's free, single-range answer.
func (k *Kernel) VtoP(t *kernel.Thread, va hw.VAddr, size uint64) ([]kernel.PhysRange, kernel.Errno) {
	t.Coro().Sleep(syscallCost)
	p := k.procs[t.PID()]
	if p == nil {
		return nil, kernel.ESRCH
	}
	var out []kernel.PhysRange
	for size > 0 {
		pa, contig, _, errno := k.Translate(t, va, false)
		if errno != kernel.OK {
			return nil, errno
		}
		t.Coro().Sleep(45) // per-page pin cost
		n := size
		if n > contig {
			n = contig
		}
		if len(out) > 0 && out[len(out)-1].PA+hw.PAddr(out[len(out)-1].Len) == pa {
			out[len(out)-1].Len += n
		} else {
			out = append(out, kernel.PhysRange{PA: pa, Len: n})
		}
		va += hw.VAddr(n)
		size -= n
	}
	return out, kernel.OK
}

// Exec is the typed face of execve: the process's memory image is torn
// down and replaced, and control transfers to the new program (newMain
// never returns to the caller). Together with Fork this is what lets an
// FWK application "be structured as a shell script that forks off related
// executables" — the capability CNK deliberately lacks (paper VII-B).
func (k *Kernel) Exec(t *kernel.Thread, textBytes, dataBytes uint64, newMain kernel.ThreadFunc) kernel.Errno {
	p := k.procs[t.PID()]
	if p == nil {
		return kernel.ESRCH
	}
	if p.liveThreads > 1 {
		return kernel.EBUSY // exec with live sibling threads unsupported in the model
	}
	// Release the old image.
	for vp, f := range p.pages {
		k.freeFrame(f)
		delete(p.pages, vp)
	}
	for _, c := range k.cpus {
		c.core.TLB.InvalidateASID(p.PID)
	}
	// Fresh VMAs.
	p.vmas = mem.NewMmapTracker(vTextBase, vUserTop, pageSize)
	text := hw.AlignUp(maxU64(textBytes, pageSize), pageSize)
	data := hw.AlignUp(maxU64(dataBytes, pageSize), pageSize)
	p.vmas.AllocFixed(vTextBase, text, hw.PermRX)
	dataBase := vTextBase + hw.VAddr(text)
	p.vmas.AllocFixed(dataBase, data, hw.PermRW)
	p.HeapBase = dataBase + hw.VAddr(data)
	heapMax := uint64(512 << 20)
	p.vmas.AllocFixed(p.HeapBase, heapMax, hw.PermRW)
	p.Brk = mem.NewBrk(p.HeapBase, p.HeapBase+hw.VAddr(heapMax))
	p.vmas.AllocFixed(vUserTop-hw.VAddr(stackSize), stackSize, hw.PermRW)
	p.Sig = kernel.SignalTable{}
	t.Coro().Sleep(12_000) // image load
	newMain(t)
	k.exitThread(t, 0)
	return kernel.OK // unreachable
}
