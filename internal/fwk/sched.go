package fwk

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/obs"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// cpu is one core's preemptive scheduler state.
type cpu struct {
	k    *Kernel
	core *hw.Core

	cur   *kernel.Thread
	ready []*kernel.Thread

	nextTick sim.Cycles
	daemons  []*daemon

	Ticks           uint64
	ContextSwitches uint64
	DaemonRuns      uint64
}

// daemon is a background kernel thread with its own coroutine. When due,
// it preempts whatever user thread holds the core, runs its burst
// (polluting the caches with its working set), and hands the core back.
type daemon struct {
	spec    DaemonSpec
	cpu     *cpu
	coro    *sim.Coro
	nextRun sim.Cycles
	jitter  *sim.RNG
	// handshake with the preempted thread
	active   bool
	resumeMe *kernel.Thread
	wsBase   hw.PAddr // private working-set physical base
}

func (k *Kernel) startDaemon(spec DaemonSpec) {
	c := k.cpus[spec.Core]
	d := &daemon{
		spec:   spec,
		cpu:    c,
		jitter: k.rng.Fork(uint64(len(c.daemons)) + uint64(spec.Core)<<8),
		wsBase: hw.PAddr(32<<20 + uint64(spec.Core)<<20 + uint64(len(c.daemons))*(64<<10)),
	}
	d.nextRun = k.BootedAt + spec.Period/4 + d.jitter.Cycles(spec.Period)
	c.daemons = append(c.daemons, d)
	d.coro = k.Eng.Go("daemon."+spec.Name, d.loop)
}

// loop waits to be dispatched by the tick handler, then runs one burst.
func (d *daemon) loop(c *sim.Coro) {
	for {
		for !d.active {
			c.Park(sim.Forever)
		}
		// Burst: CPU time plus cache pollution from the daemon's working
		// set walking through L1.
		runStart := c.Now()
		burst := d.spec.Burst + d.jitter.Cycles(d.spec.Burst/8)
		if cost, _ := d.cpu.core.Chip.Cache.Access(d.cpu.core.ID, d.wsBase, d.spec.WorkingSet, false, c.Now()); cost > 0 {
			c.Sleep(cost)
		}
		c.Sleep(burst)
		d.cpu.DaemonRuns++
		u := d.cpu.core.Chip.UPC
		u.Inc(d.cpu.core.ID, upc.DaemonRun)
		u.Trace.Emit(upc.EvDaemon, d.cpu.core.ID, c.Now(), uint64(d.spec.Core))
		d.cpu.k.obs.Emit(obs.CatSched, d.spec.Name, d.cpu.k.Chip.ID, d.spec.Core, runStart, c.Now(), d.cpu.DaemonRuns)
		d.nextRun = c.Now() + d.spec.Period + d.jitter.Cycles(d.spec.Period/16)
		d.active = false
		if t := d.resumeMe; t != nil {
			d.resumeMe = nil
			t.Coro().Wake()
		}
	}
}

// NextInterrupt implements kernel.OS: the next timer tick on the thread's
// core.
func (k *Kernel) NextInterrupt(t *kernel.Thread) sim.Cycles {
	return k.cpus[t.CoreID()].nextTick
}

// ServiceInterrupt implements kernel.OS: the tick handler. It charges the
// ISR, dispatches due daemons (preempting the caller), round-robins the
// run queue, and delivers signals.
func (k *Kernel) ServiceInterrupt(t *kernel.Thread) {
	c := k.cpus[t.CoreID()]
	now := k.Eng.Now()
	if now >= c.nextTick {
		for now >= c.nextTick {
			c.nextTick += tickPeriod
		}
		c.Ticks++
		c.core.Interrupts++
		u := k.Chip.UPC
		u.Inc(c.core.ID, upc.TimerTick)
		u.Inc(c.core.ID, upc.Interrupt)
		u.Trace.Emit(upc.EvTick, c.core.ID, now, uint64(c.Ticks))
		t.Coro().Sleep(tickISRCost)
		k.obs.Emit(obs.CatSched, "fwk:tick", k.Chip.ID, t.CoreID(), now, k.Eng.Now(), uint64(c.Ticks))

		// Dispatch due daemons: the user thread waits while they run.
		for _, d := range c.daemons {
			if k.Eng.Now() >= d.nextRun && !d.active {
				// The user thread is involuntarily descheduled for the
				// daemon's burst: that is a preemption as FWQ sees it.
				u.Inc(c.core.ID, upc.Preemption)
				u.Trace.Emit(upc.EvPreempt, c.core.ID, k.Eng.Now(), uint64(t.TID()))
				d.active = true
				d.resumeMe = t
				d.coro.Wake()
				for d.active {
					t.Coro().Park(sim.Forever)
				}
			}
		}

		// Round-robin among user threads sharing the core (overcommit is
		// allowed on an FWK — Table II).
		if len(c.ready) > 0 && c.cur == t {
			t.Coro().Sleep(ctxSwitchCost)
			c.rotate(t)
		}
	}
	k.deliverSignals(t)
}

// rotate moves t to the tail of the run queue and grants the core to the
// next ready thread; t blocks until granted again.
func (c *cpu) rotate(t *kernel.Thread) {
	c.ContextSwitches++
	u := c.core.Chip.UPC
	u.Inc(c.core.ID, upc.ContextSwitch)
	u.Inc(c.core.ID, upc.Preemption)
	u.Trace.Emit(upc.EvCtxSwitch, c.core.ID, c.k.Eng.Now(), uint64(t.TID()))
	next := c.ready[0]
	c.ready = c.ready[1:]
	c.ready = append(c.ready, t)
	c.cur = next
	next.Coro().Wake()
	for c.cur != t {
		t.Coro().Park(sim.Forever)
	}
}

// acquire blocks t until it owns the core.
func (c *cpu) acquire(t *kernel.Thread) {
	if c.cur == t {
		t.State = kernel.ThreadRunning
		return
	}
	if c.cur == nil && len(c.ready) == 0 {
		c.cur = t
		t.State = kernel.ThreadRunning
		return
	}
	c.ready = append(c.ready, t)
	if c.cur == nil && c.ready[0] == t {
		c.ready = c.ready[1:]
		c.cur = t
		t.State = kernel.ThreadRunning
		return
	}
	c.grant()
	for c.cur != t {
		t.Coro().Park(sim.Forever)
	}
	t.State = kernel.ThreadRunning
}

func (c *cpu) grant() {
	if c.cur != nil || len(c.ready) == 0 {
		return
	}
	c.cur = c.ready[0]
	c.ready = c.ready[1:]
	c.ContextSwitches++
	u := c.core.Chip.UPC
	u.Inc(c.core.ID, upc.ContextSwitch)
	u.Trace.Emit(upc.EvCtxSwitch, c.core.ID, c.k.Eng.Now(), uint64(c.cur.TID()))
	c.cur.Coro().Wake()
}

func (c *cpu) release(t *kernel.Thread) {
	if c.cur != t {
		panic("fwk: release by non-owner")
	}
	c.cur = nil
	c.grant()
}

func (c *cpu) remove(t *kernel.Thread) {
	for i, x := range c.ready {
		if x == t {
			c.ready = append(c.ready[:i], c.ready[i+1:]...)
			return
		}
	}
}

// pickCPU places a new thread on the least-loaded core (an FWK balances
// rather than pinning; affinity is possible but "medium" effort —
// Table II).
func (k *Kernel) pickCPU() *cpu {
	best := k.cpus[0]
	bestLoad := best.load()
	for _, c := range k.cpus[1:] {
		if l := c.load(); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

func (c *cpu) load() int {
	n := len(c.ready)
	if c.cur != nil {
		n++
	}
	return n
}

// --- futex (same contract as CNK's; different scheduler underneath) ---

type futexKey struct {
	pid   uint32
	uaddr hw.VAddr
}

type futexWaiter struct {
	t     *kernel.Thread
	woken bool
}

func (k *Kernel) futexWait(t *kernel.Thread, uaddr hw.VAddr, val uint32, timeout sim.Cycles) kernel.Errno {
	cur, errno := t.LoadU32(uaddr)
	if errno != kernel.OK {
		return errno
	}
	if cur != val {
		return kernel.EAGAIN
	}
	key := futexKey{t.PID(), uaddr}
	w := &futexWaiter{t: t}
	k.futexes[key] = append(k.futexes[key], w)
	c := k.cpus[t.CoreID()]
	k.Chip.UPC.Inc(c.core.ID, upc.FutexWait)
	k.Chip.UPC.Trace.Emit(upc.EvFutexWait, c.core.ID, k.Eng.Now(), uint64(uaddr))
	c.release(t)
	t.State = kernel.ThreadBlocked
	deadline := sim.Forever
	if timeout != 0 && timeout < sim.Forever {
		deadline = timeout
	}
	start := t.Coro().Now()
	timedOut := false
	for !w.woken {
		remaining := sim.Forever
		if deadline != sim.Forever {
			elapsed := t.Coro().Now() - start
			if elapsed >= deadline {
				timedOut = true
				break
			}
			remaining = deadline - elapsed
		}
		if t.Coro().Park(remaining) == sim.WakeTimeout && deadline != sim.Forever {
			timedOut = true
			break
		}
	}
	if timedOut && !w.woken {
		ws := k.futexes[key]
		for i, x := range ws {
			if x == w {
				k.futexes[key] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
	c.acquire(t)
	k.deliverSignals(t)
	if timedOut && !w.woken {
		return kernel.ETIMEDOUT
	}
	return kernel.OK
}

func (k *Kernel) futexWake(t *kernel.Thread, uaddr hw.VAddr, n uint32) uint64 {
	k.Chip.UPC.Inc(t.CoreID(), upc.FutexWake)
	k.Chip.UPC.Trace.Emit(upc.EvFutexWake, t.CoreID(), k.Eng.Now(), uint64(uaddr))
	key := futexKey{t.PID(), uaddr}
	ws := k.futexes[key]
	woken := uint64(0)
	for len(ws) > 0 && woken < uint64(n) {
		w := ws[0]
		ws = ws[1:]
		w.woken = true
		w.t.State = kernel.ThreadReady
		w.t.Coro().Wake()
		woken++
	}
	if len(ws) == 0 {
		delete(k.futexes, key)
	} else {
		k.futexes[key] = ws
	}
	return woken
}

type threadExit struct{ code int }

func (k *Kernel) exitThread(t *kernel.Thread, code int) {
	if t.State == kernel.ThreadExited {
		panic(threadExit{code})
	}
	p := k.procs[t.PID()]
	t.State = kernel.ThreadExited
	t.ExitCode = code
	if addr := t.ClearTID; addr != 0 {
		t.ClearTID = 0
		var zero [4]byte
		t.StoreKernel(addr, zero[:])
		k.futexWake(t, addr, 1<<30)
	}
	c := k.cpus[t.CoreID()]
	if c.cur == t {
		c.release(t)
	}
	c.remove(t)
	if p != nil {
		p.liveThreads--
		if p.liveThreads == 0 {
			p.done = true
			p.exitCode = code
			k.Eng.Trace().Record(k.Eng.Now(), k.tag(), fmt.Sprintf("pid %d exited %d", p.PID, code))
		}
	}
	panic(threadExit{code})
}

func (k *Kernel) recoverExit() {
	if r := recover(); r != nil {
		if _, ok := r.(threadExit); ok {
			return
		}
		panic(r)
	}
}
