package fwk

import (
	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/obs"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// fsOpCost is the local filesystem/VFS work per call, on top of the
// syscall entry and any configured network-filesystem latency.
const fsOpCost = sim.Cycles(900)

// Syscall implements kernel.OS: the same numbers as CNK, but file I/O runs
// locally against the node's filesystem (VFS + NFS client in the model),
// fork/exec exist, and mmap is fully honoured including permissions.
func (k *Kernel) Syscall(t *kernel.Thread, num kernel.Sys, args []uint64) (uint64, kernel.Errno) {
	if k.obs != nil {
		// Deferred so the span survives exit's thread unwind (exitThread
		// panics threadExit through this frame).
		start := k.Eng.Now()
		core := t.CoreID()
		defer func() {
			k.obs.Emit(obs.CatSyscall, num.String(), k.Chip.ID, core, start, k.Eng.Now(), uint64(num))
		}()
	}
	p := k.procs[t.PID()]
	if p == nil {
		return 0, kernel.ESRCH
	}
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	if num.IsFileIO() {
		t.Coro().Sleep(fsOpCost + k.cfg.FSLatency)
		ret, errno := k.fileIO(t, p, num, args)
		if k.cfg.Uplink != nil && errno == kernel.OK {
			// Data operations cross the shared I/O-node uplink as a
			// synchronous RPC: the caller sits in the kernel for the whole
			// transfer, and link contention lands on this chip's stall
			// counters. Metadata stays local (NFS attribute caching).
			var bytes int
			switch num {
			case kernel.SysRead:
				bytes = int(ret)
			case kernel.SysWrite:
				bytes = int(arg(2))
			}
			if bytes > 0 {
				uplinkStart := k.Eng.Now()
				if stall := k.cfg.Uplink(t.Coro(), bytes); stall > 0 {
					u := k.Chip.UPC
					u.Inc(upc.ChipScope, upc.IONStall)
					u.Add(upc.ChipScope, upc.IONStallCycles, uint64(stall))
					k.obs.Emit(obs.CatStall, "fwk:uplink", k.Chip.ID, t.CoreID(), uplinkStart, uplinkStart+stall, uint64(bytes))
				}
			}
		}
		return ret, errno
	}
	switch num {
	case kernel.SysBrk:
		cur, ok := p.Brk.Set(hw.VAddr(arg(0)))
		if !ok {
			return uint64(p.Brk.Cur), kernel.ENOMEM
		}
		return uint64(cur), kernel.OK
	case kernel.SysMmap:
		addr, length, prot, flags := hw.VAddr(arg(0)), arg(1), arg(2), arg(3)
		if length == 0 {
			return 0, kernel.EINVAL
		}
		perms := permFromProt(prot)
		var va hw.VAddr
		if flags&kernel.MapFixed != 0 {
			if err := p.vmas.AllocFixed(addr, length, perms); err != nil {
				return 0, kernel.ENOMEM
			}
			va = addr
		} else {
			a, err := p.vmas.Alloc(length, perms)
			if err != nil {
				return 0, kernel.ENOMEM
			}
			va = a
		}
		if flags&kernel.MapAnonymous == 0 && int64(arg(4)) >= 0 {
			if errno := k.mmapFile(t, p, va, length, int(arg(4)), int64(arg(5)), perms); errno != kernel.OK {
				p.vmas.Free(va, length)
				return 0, errno
			}
		}
		return uint64(va), kernel.OK
	case kernel.SysMunmap:
		va, length := hw.VAddr(arg(0)), arg(1)
		for vp := uint64(va) / pageSize; vp < (uint64(va)+length+pageSize-1)/pageSize; vp++ {
			if f, ok := p.pages[vp]; ok {
				k.freeFrame(f)
				delete(p.pages, vp)
			}
		}
		t.HWCore().TLB.InvalidateASID(p.PID) // coarse shootdown
		p.vmas.Free(va, length)
		return 0, kernel.OK
	case kernel.SysMprotect:
		// Full permission enforcement (Table II: "Full memory
		// protection: easy" on Linux): the VMA perms change AND the TLB
		// entries are shot down so the next access re-checks.
		if err := p.vmas.Protect(hw.VAddr(arg(0)), arg(1), permFromProt(arg(2))); err != nil {
			return 0, kernel.ENOMEM
		}
		for _, c := range k.cpus {
			c.core.TLB.InvalidateASID(p.PID)
		}
		return 0, kernel.OK
	case kernel.SysShmGet:
		return 0, kernel.ENOSYS // use mmap(MAP_SHARED); not needed by the experiments
	case kernel.SysFutex:
		uaddr := hw.VAddr(arg(0))
		switch arg(1) {
		case kernel.FutexWait:
			return 0, k.futexWait(t, uaddr, uint32(arg(2)), sim.Cycles(arg(3)))
		case kernel.FutexWake:
			return k.futexWake(t, uaddr, uint32(arg(2))), kernel.OK
		}
		return 0, kernel.EINVAL
	case kernel.SysSetTidAddress:
		t.ClearTID = hw.VAddr(arg(0))
		return uint64(t.TID()), kernel.OK
	case kernel.SysYield:
		c := k.cpus[t.CoreID()]
		if len(c.ready) > 0 && c.cur == t {
			t.Coro().Sleep(ctxSwitchCost)
			c.rotate(t)
		}
		return 0, kernel.OK
	case kernel.SysExit:
		k.exitThread(t, int(arg(0)))
		return 0, kernel.OK
	case kernel.SysGetpid:
		return uint64(t.PID()), kernel.OK
	case kernel.SysGettid:
		return uint64(t.TID()), kernel.OK
	case kernel.SysUname:
		if errno := t.StoreCString(hw.VAddr(arg(0)), "2.6.30-fwk"); errno != kernel.OK {
			return 0, errno
		}
		return 0, kernel.OK
	case kernel.SysGettimeofday:
		return uint64(k.Eng.Now()), kernel.OK
	case kernel.SysPersistOpen:
		return 0, kernel.ENOSYS // no persistent-memory extension on the FWK
	case kernel.SysFork, kernel.SysExec:
		return 0, kernel.EINVAL // use the typed Fork/Exec helpers
	case kernel.SysClone, kernel.SysSigaction, kernel.SysSigreturn:
		return 0, kernel.EINVAL // typed paths
	}
	return 0, kernel.ENOSYS
}

// fileIO executes a filesystem call against the local (or NFS-modelled)
// filesystem through the process's own client.
func (k *Kernel) fileIO(t *kernel.Thread, p *Proc, num kernel.Sys, args []uint64) (uint64, kernel.Errno) {
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	path := func(i int) (string, kernel.Errno) {
		return t.LoadCString(hw.VAddr(arg(i)), 1024)
	}
	switch num {
	case kernel.SysOpen:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		fd, errno := p.fsc.Open(pth, arg(1), fs.Mode(arg(2)))
		return uint64(int64(fd)), errno
	case kernel.SysClose:
		return 0, p.fsc.Close(int(arg(0)))
	case kernel.SysRead:
		buf := make([]byte, arg(2))
		n, errno := p.fsc.Read(int(arg(0)), buf)
		if errno != kernel.OK {
			return 0, errno
		}
		if n > 0 {
			if errno := t.Store(hw.VAddr(arg(1)), buf[:n]); errno != kernel.OK {
				return 0, errno
			}
		}
		return uint64(n), kernel.OK
	case kernel.SysWrite:
		buf := make([]byte, arg(2))
		if errno := t.Load(hw.VAddr(arg(1)), buf); errno != kernel.OK {
			return 0, errno
		}
		n, errno := p.fsc.Write(int(arg(0)), buf)
		return uint64(n), errno
	case kernel.SysLseek:
		pos, errno := p.fsc.Lseek(int(arg(0)), int64(arg(1)), int(arg(2)))
		return pos, errno
	case kernel.SysStat, kernel.SysFstat:
		var st fs.Stat
		var errno kernel.Errno
		if num == kernel.SysStat {
			pth, e := path(0)
			if e != kernel.OK {
				return 0, e
			}
			st, errno = p.fsc.Stat(pth)
		} else {
			st, errno = p.fsc.Fstat(int(arg(0)))
		}
		if errno != kernel.OK {
			return 0, errno
		}
		if hw.VAddr(arg(1)) != 0 {
			if errno := t.StoreU64(hw.VAddr(arg(1)), st.Size); errno != kernel.OK {
				return 0, errno
			}
		}
		return st.Size, kernel.OK
	case kernel.SysUnlink:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Unlink(pth)
	case kernel.SysRename:
		o, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		n, errno := path(1)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Rename(o, n)
	case kernel.SysMkdir:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Mkdir(pth, fs.Mode(arg(1)))
	case kernel.SysRmdir:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Rmdir(pth)
	case kernel.SysDup:
		fd, errno := p.fsc.Dup(int(arg(0)))
		return uint64(int64(fd)), errno
	case kernel.SysFsync:
		// The local/NFS-modelled fs is always stable storage; validate the
		// descriptor like the real kernel would.
		return 0, p.fsc.Fsync(int(arg(0)))
	case kernel.SysGetcwd:
		s := p.fsc.Cwd()
		if uint64(len(s)+1) > arg(1) {
			return 0, kernel.ENAMETOOLONG
		}
		if errno := t.StoreCString(hw.VAddr(arg(0)), s); errno != kernel.OK {
			return 0, errno
		}
		return uint64(len(s)), kernel.OK
	case kernel.SysChdir:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Chdir(pth)
	case kernel.SysTruncate:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		return 0, p.fsc.Truncate(pth, arg(1))
	case kernel.SysReaddir:
		pth, errno := path(0)
		if errno != kernel.OK {
			return 0, errno
		}
		names, errno := p.fsc.Readdir(pth)
		if errno != kernel.OK {
			return 0, errno
		}
		var out []byte
		for _, n := range names {
			out = append(out, n...)
			out = append(out, 0)
		}
		if uint64(len(out)) > arg(2) {
			return 0, kernel.EOVERFLOW
		}
		if len(out) > 0 {
			if errno := t.Store(hw.VAddr(arg(1)), out); errno != kernel.OK {
				return 0, errno
			}
		}
		return uint64(len(names)), kernel.OK
	}
	return 0, kernel.ENOSYS
}

// mmapFile reads file contents into the mapping (model simplification:
// eager read; the FWK does honour the mapping's permissions, unlike CNK).
func (k *Kernel) mmapFile(t *kernel.Thread, p *Proc, va hw.VAddr, length uint64, fd int, off int64, perms hw.Perm) kernel.Errno {
	if _, errno := p.fsc.Lseek(fd, off, kernel.SeekSet); errno != kernel.OK {
		return errno
	}
	buf := make([]byte, 64<<10)
	var done uint64
	for done < length {
		chunk := length - done
		if chunk > uint64(len(buf)) {
			chunk = uint64(len(buf))
		}
		n, errno := p.fsc.Read(fd, buf[:chunk])
		if errno != kernel.OK {
			return errno
		}
		if n == 0 {
			break
		}
		// Store via kernel mode: the mapping may be read-only for the
		// user, but the kernel populates it.
		if errno := t.StoreKernel(va+hw.VAddr(done), buf[:n]); errno != kernel.OK {
			return errno
		}
		done += uint64(n)
	}
	return kernel.OK
}

func permFromProt(prot uint64) hw.Perm {
	var p hw.Perm
	if prot&kernel.ProtRead != 0 {
		p |= hw.PermRead
	}
	if prot&kernel.ProtWrite != 0 {
		p |= hw.PermWrite
	}
	if prot&kernel.ProtExec != 0 {
		p |= hw.PermExec
	}
	return p
}
