package fwk

import (
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

func fnode(t *testing.T, cfg Config) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	k := New(eng, chip, cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return eng, k
}

func frun(t *testing.T, eng *sim.Engine, k *Kernel, spec JobSpec) *Job {
	t.Helper()
	job, err := k.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + sim.FromSeconds(30)) // daemons run forever; bounded drive
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job did not finish")
	}
	return job
}

func TestBootSlowerThanCNK(t *testing.T) {
	eng, k := fnode(t, Config{})
	_ = eng
	if k.BootInstr < 10_000_000 {
		t.Fatalf("full FWK boot = %d instructions; should dwarf CNK's", k.BootInstr)
	}
	eng2 := sim.NewEngine()
	k2 := New(eng2, hw.NewChip(hw.ChipConfig{}), Config{Stripped: true})
	k2.Boot()
	if k2.BootInstr >= k.BootInstr {
		t.Fatal("stripped boot should be faster than full")
	}
}

func TestBootNeedsWorkingUnits(t *testing.T) {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{})
	chip.SetUnitEnabled(hw.UnitTorus, false)
	if err := New(eng, chip, Config{}).Boot(); err == nil {
		t.Fatal("FWK has no broken-hardware workaround flags; boot must fail")
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	eng, k := fnode(t, Config{})
	ran := false
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.Compute(100_000)
		ran = true
	}})
	if !ran {
		t.Fatal("main did not run")
	}
}

func TestComputeIsNoisy(t *testing.T) {
	// The defining FWK property: fixed work takes variable wall time.
	eng, k := fnode(t, Config{Seed: 42})
	var durations []sim.Cycles
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		for i := 0; i < 300; i++ {
			start := ctx.Now()
			ctx.Compute(658_958)
			durations = append(durations, ctx.Now()-start)
		}
	}})
	min, max := durations[0], durations[0]
	for _, d := range durations {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < 658_958 {
		t.Fatalf("compute undercounted: %d", min)
	}
	if max == min {
		t.Fatal("FWK compute showed zero jitter; ticks/daemons not firing")
	}
	if max-min < 2000 {
		t.Fatalf("jitter %d cycles is implausibly small", max-min)
	}
}

func TestDemandPagingCountsFaults(t *testing.T) {
	eng, k := fnode(t, Config{})
	var pid uint32
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		pid = ctx.PID()
		p := k.Proc(pid)
		for off := uint64(0); off < 1<<20; off += pageSize {
			ctx.Touch(p.HeapBase+hw.VAddr(off), 8, true)
		}
	}})
	p := k.Proc(pid)
	if p.MinorFaults < 256 {
		t.Fatalf("minor faults = %d, want ~256 (one per 4KB page)", p.MinorFaults)
	}
	misses := uint64(0)
	for _, c := range k.Chip.Cores {
		misses += c.TLB.Misses
	}
	if misses == 0 {
		t.Fatal("no TLB misses under 4KB paging — impossible")
	}
}

func TestMemoryProtectionEnforced(t *testing.T) {
	eng, k := fnode(t, Config{})
	var faulted bool
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.RegisterSignal(kernel.SIGSEGV, func(c kernel.Context, info kernel.SigInfo) {
			faulted = true
		})
		va, errno := ctx.Syscall(kernel.SysMmap, 0, 4096, kernel.ProtRead, kernel.MapAnonymous, ^uint64(0), 0)
		if errno != kernel.OK {
			t.Errorf("mmap: %v", errno)
			return
		}
		// Read is fine; write must fault (full memory protection —
		// Table II, available on Linux, not on CNK).
		if errno := ctx.Touch(hw.VAddr(va), 8, false); errno != kernel.OK {
			t.Errorf("read of PROT_READ: %v", errno)
		}
		ctx.Store(hw.VAddr(va), []byte{1})
	}})
	if !faulted {
		t.Fatal("write to read-only mapping did not fault")
	}
}

func TestMprotectChangesEnforcement(t *testing.T) {
	eng, k := fnode(t, Config{})
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		va, _ := ctx.Syscall(kernel.SysMmap, 0, 4096, kernel.ProtRead|kernel.ProtWrite, kernel.MapAnonymous, ^uint64(0), 0)
		if errno := ctx.Store(hw.VAddr(va), []byte{1}); errno != kernel.OK {
			t.Errorf("initial write: %v", errno)
		}
		if _, errno := ctx.Syscall(kernel.SysMprotect, va, 4096, kernel.ProtRead); errno != kernel.OK {
			t.Errorf("mprotect: %v", errno)
		}
		ctx.RegisterSignal(kernel.SIGSEGV, func(kernel.Context, kernel.SigInfo) {})
		if errno := ctx.Store(hw.VAddr(va), []byte{2}); errno == kernel.OK {
			t.Error("write after mprotect(PROT_READ) must fail")
		}
	}})
}

func TestVtoPScattered(t *testing.T) {
	eng, k := fnode(t, Config{})
	var ranges int
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		// Fault pages in an interleaved order so physical frames are
		// scattered (as they generally are on a busy FWK).
		for _, off := range []uint64{0, 8192, 4096, 24576, 16384, 12288, 20480, 28672} {
			ctx.Touch(p.HeapBase+hw.VAddr(off), 8, true)
		}
		prs, errno := ctx.VtoP(p.HeapBase, 32768)
		if errno != kernel.OK {
			t.Errorf("VtoP: %v", errno)
			return
		}
		ranges = len(prs)
	}})
	if ranges < 3 {
		t.Fatalf("VtoP returned %d ranges; interleaved faulting must scatter frames", ranges)
	}
}

func TestOvercommitThreadsAllProgress(t *testing.T) {
	eng, k := fnode(t, Config{Seed: 1})
	const nThreads = 8 // 2x the cores
	done := 0
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		for i := 0; i < nThreads; i++ {
			_, errno := ctx.Clone(kernel.CloneArgs{
				Flags: kernel.NPTLCloneFlags,
				Fn: func(c kernel.Context) {
					c.Compute(3_000_000) // several ticks worth
					done++
				},
			})
			if errno != kernel.OK {
				t.Errorf("clone %d: %v (FWK allows overcommit)", i, errno)
			}
		}
		ctx.Compute(2_000_000)
	}})
	if done != nThreads {
		t.Fatalf("only %d/%d overcommitted threads finished", done, nThreads)
	}
}

func TestFutexAcrossThreads(t *testing.T) {
	eng, k := fnode(t, Config{})
	woke := false
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		futexVA := p.HeapBase + 4096
		ctx.StoreU32(futexVA, 0)
		ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags, Fn: func(c kernel.Context) {
			if _, errno := c.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWait, 0, 0); errno != kernel.OK {
				t.Errorf("wait: %v", errno)
			}
			woke = true
		}})
		ctx.Compute(100_000)
		ctx.StoreU32(futexVA, 1)
		ctx.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWake, 1)
		ctx.Compute(100_000)
	}})
	if !woke {
		t.Fatal("futex waiter never woke")
	}
}

func TestLocalFileIO(t *testing.T) {
	eng, k := fnode(t, Config{})
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		pathVA := p.HeapBase + 4096
		ctx.Store(pathVA, append([]byte("/local.txt"), 0))
		fd, errno := ctx.Syscall(kernel.SysOpen, uint64(pathVA), kernel.OCreat|kernel.ORdwr, 0644)
		if errno != kernel.OK {
			t.Errorf("open: %v", errno)
			return
		}
		buf := p.HeapBase + 8192
		ctx.Store(buf, []byte("local write"))
		if n, errno := ctx.Syscall(kernel.SysWrite, fd, uint64(buf), 11); errno != kernel.OK || n != 11 {
			t.Errorf("write: %v %d", errno, n)
		}
		ctx.Syscall(kernel.SysLseek, fd, 0, uint64(kernel.SeekSet))
		rb := p.HeapBase + 12288
		if n, errno := ctx.Syscall(kernel.SysRead, fd, uint64(rb), 11); errno != kernel.OK || n != 11 {
			t.Errorf("read: %v %d", errno, n)
		}
		got := make([]byte, 11)
		ctx.Load(rb, got)
		if string(got) != "local write" {
			t.Errorf("read back %q", got)
		}
		ctx.Syscall(kernel.SysClose, fd)
	}})
	data, errno := k.FS.ReadFile("/local.txt", fs.Root)
	if errno != kernel.OK || string(data) != "local write" {
		t.Fatalf("fs: %v %q", errno, data)
	}
}

func TestForkCreatesProcessWithCopiedMemory(t *testing.T) {
	eng, k := fnode(t, Config{})
	var childSaw string
	var childPID uint32
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		va := p.HeapBase + 4096
		ctx.Store(va, []byte("inherited"))
		pid, errno := k.Fork(ctx.(*kernel.Thread), func(c kernel.Context) {
			buf := make([]byte, 9)
			c.Load(va, buf) // same VA, copied contents
			childSaw = string(buf)
			// Child writes; parent must not see it (copy, not share).
			c.Store(va, []byte("childmods"))
		})
		if errno != kernel.OK {
			t.Errorf("fork: %v", errno)
			return
		}
		childPID = pid
		ctx.Compute(5_000_000)
		buf := make([]byte, 9)
		ctx.Load(va, buf)
		if string(buf) != "inherited" {
			t.Errorf("parent memory polluted by child: %q", buf)
		}
	}})
	if childSaw != "inherited" {
		t.Fatalf("child saw %q", childSaw)
	}
	if cp := k.Proc(childPID); cp == nil || !cp.Done() {
		t.Fatal("child process did not complete")
	}
}

func TestParityKillsTaskOnFWK(t *testing.T) {
	eng, k := fnode(t, Config{})
	job, err := k.Launch(JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.RegisterSignal(kernel.SIGBUS, func(kernel.Context, kernel.SigInfo) {
			t.Error("FWK must not offer application parity recovery")
		})
		k.Chip.Cache.ArmL1Parity(ctx.CoreID())
		p := k.Proc(ctx.PID())
		ctx.Touch(p.HeapBase, 64, false)
		ctx.Compute(1000)
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + sim.FromSeconds(5))
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job hung")
	}
	if job.Procs[0].ExitCode() != 128+int(kernel.SIGKILL) {
		t.Fatalf("exit code %d; machine check should kill the task", job.Procs[0].ExitCode())
	}
}

func TestSeedChangesTiming(t *testing.T) {
	// Different boot seeds → different daemon phases → different wall
	// time for identical work: the FWK is not performance-reproducible.
	elapsed := func(seed uint64) sim.Cycles {
		eng := sim.NewEngine()
		k := New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), Config{Seed: seed})
		k.Boot()
		var d sim.Cycles
		job, _ := k.Launch(JobSpec{Main: func(ctx kernel.Context, rank int) {
			start := ctx.Now()
			ctx.Compute(50_000_000)
			d = ctx.Now() - start
		}})
		eng.Run(eng.Now() + sim.FromSeconds(30))
		eng.Shutdown()
		if !job.Done() {
			t.Fatal("stuck")
		}
		return d
	}
	if elapsed(1) == elapsed(2) {
		t.Fatal("different seeds produced identical timing")
	}
	if elapsed(7) != elapsed(7) {
		t.Fatal("same seed must reproduce timing exactly")
	}
}

func TestTickCounterAdvances(t *testing.T) {
	eng, k := fnode(t, Config{})
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.Compute(10 * 850_000) // ~10ms
	}})
	if k.cpus[0].Ticks < 8 {
		t.Fatalf("ticks = %d, want ~10 over 10ms", k.cpus[0].Ticks)
	}
}

func TestExecReplacesImage(t *testing.T) {
	eng, k := fnode(t, Config{})
	var oldData, newData string
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		ctx.Store(p.HeapBase, []byte("old image"))
		buf := make([]byte, 9)
		ctx.Load(p.HeapBase, buf)
		oldData = string(buf)
		k.Exec(ctx.(*kernel.Thread), 1<<20, 1<<20, func(c kernel.Context) {
			// The new program sees a fresh (zeroed) image.
			np := k.Proc(c.PID())
			nb := make([]byte, 9)
			c.Load(np.HeapBase, nb)
			newData = string(nb)
		})
		t.Error("exec returned to the old program")
	}})
	if oldData != "old image" {
		t.Fatalf("setup: %q", oldData)
	}
	if newData == "old image" {
		t.Fatal("exec leaked the old image into the new program")
	}
}

func TestShellScriptPattern(t *testing.T) {
	// The paper's VII-B con, inverted: on an FWK an application CAN be
	// structured as a shell that forks children which exec different
	// executables. (CNK returns ENOSYS for fork/exec; see the cnk tests.)
	eng, k := fnode(t, Config{})
	var outputs []string
	frun(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		for _, prog := range []string{"preprocess", "solve"} {
			prog := prog
			_, errno := k.Fork(ctx.(*kernel.Thread), func(c kernel.Context) {
				k.Exec(c.(*kernel.Thread), 1<<20, 1<<20, func(c2 kernel.Context) {
					c2.Compute(100_000)
					outputs = append(outputs, prog)
				})
			})
			if errno != kernel.OK {
				t.Errorf("fork %s: %v", prog, errno)
			}
		}
		ctx.Compute(3_000_000) // "wait" for the children
	}})
	if len(outputs) != 2 {
		t.Fatalf("executables that ran: %v", outputs)
	}
}
