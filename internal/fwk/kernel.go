// Package fwk implements the Full-Weight Kernel model: a Linux-like
// compute-node kernel used as the comparison point for every experiment in
// the paper (the FWQ noise figures, the capability tables, boot time,
// reproducibility). Its jitter is produced by real mechanisms, not a dial:
// a 1 kHz timer tick whose ISR steals cycles, daemon kernel threads that
// preempt user threads and pollute the caches, and 4 KB demand paging with
// software TLB refills.
package fwk

import (
	"fmt"

	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
)

// Cost model constants.
const (
	tickPeriod     = sim.Cycles(850_000) // 1 kHz at 850 MHz
	tickISRCost    = sim.Cycles(550)     // timer interrupt service
	syscallCost    = sim.Cycles(350)     // heavier entry/exit than CNK
	tlbRefillCost  = sim.Cycles(90)      // software TLB reload from page tables
	pageFaultCost  = sim.Cycles(2800)    // demand-paging a fresh anonymous page
	ctxSwitchCost  = sim.Cycles(1200)    // full context switch
	bootFullInstr  = 15_000_000          // full distro boot (weeks at 10 Hz VHDL)
	bootStripInstr = 2_500_000           // stripped-down boot (days at 10 Hz)
	fwkScrubBase   = sim.Cycles(40_000)  // DDR scrub-and-remap floor
	fwkScrubJitter = sim.Cycles(120_000) // allocator-state-dependent spread
)

// DaemonSpec describes one background kernel daemon: which core it is
// (mostly) scheduled on, how often it wakes, how long it runs, and how much
// memory it touches (cache pollution).
type DaemonSpec struct {
	Name       string
	Core       int
	Period     sim.Cycles
	Burst      sim.Cycles
	WorkingSet uint32 // bytes touched per burst
}

// DefaultDaemons is the daemon population of a trimmed compute-node Linux:
// "all processes were suspended except for init, a single shell, the FWQ
// benchmark, and various kernel daemons that cannot be suspended" (paper
// Section V-A). Bursts are sized to produce the paper's per-core noise
// profile: >5% spikes on cores 0, 2 and 3 and ~1.2% on core 1.
func DefaultDaemons() []DaemonSpec {
	ms := func(m float64) sim.Cycles { return sim.FromMillis(m) }
	return []DaemonSpec{
		{Name: "init", Core: 0, Period: ms(900), Burst: 36_000, WorkingSet: 16 << 10},
		{Name: "shell", Core: 0, Period: ms(1400), Burst: 20_000, WorkingSet: 8 << 10},
		{Name: "ksoftirqd/0", Core: 0, Period: ms(60), Burst: 2_500, WorkingSet: 2 << 10},
		{Name: "ksoftirqd/1", Core: 1, Period: ms(140), Burst: 9_000, WorkingSet: 2 << 10},
		{Name: "klogd", Core: 2, Period: ms(800), Burst: 40_000, WorkingSet: 24 << 10},
		{Name: "ksoftirqd/2", Core: 2, Period: ms(70), Burst: 2_500, WorkingSet: 2 << 10},
		{Name: "kflush", Core: 3, Period: ms(600), Burst: 34_000, WorkingSet: 24 << 10},
		{Name: "kswapd", Core: 3, Period: ms(1700), Burst: 12_000, WorkingSet: 32 << 10},
	}
}

// Config parameterizes the kernel.
type Config struct {
	// Seed determines daemon phases and burst jitter. Two boots with
	// different seeds behave differently — which is exactly why an FWK
	// is not performance-reproducible (Table II).
	Seed uint64
	// Daemons overrides DefaultDaemons; empty slice = no daemons
	// (unrealistic but useful for ablations). Nil = default set.
	Daemons []DaemonSpec
	// Stripped models a minimized kernel build: faster boot, same
	// mechanisms.
	Stripped bool
	// FS is the node's filesystem (local or NFS-like). Nil = fresh fs.
	FS *fs.FS
	// FSLatency adds per-operation latency modelling a network
	// filesystem client (NFS on the paper's I/O nodes).
	FSLatency sim.Cycles
	// Uplink, when set, charges read/write data bytes to a shared
	// I/O-node uplink (the machine wires it to the collective tree's
	// shared link when the ION subsystem is armed). Only data operations
	// pay: NFS attribute caching keeps metadata local, which is the
	// asymmetry against CNK's ship-everything protocol.
	Uplink func(c *sim.Coro, bytes int) sim.Cycles
}

// Kernel is one node's FWK instance.
type Kernel struct {
	Eng  *sim.Engine
	Chip *hw.Chip
	cfg  Config
	rng  *sim.RNG

	FS *fs.FS

	BootedAt  sim.Cycles
	BootInstr uint64
	booted    bool

	cpus    []*cpu
	procs   map[uint32]*Proc
	futexes map[futexKey][]*futexWaiter
	nextPID uint32
	nextTID uint32

	// physAlloc hands out 4KB frames; a simple hashed free list produces
	// the physical fragmentation real anonymous memory has, which is what
	// makes "large physically contiguous memory" hard on an FWK
	// (Table II).
	physNext  uint64
	physLimit uint64
	physIdx   uint64
	physFree  []hw.PAddr

	// obs, when non-nil, receives boot, syscall, tick, daemon and
	// uplink-stall spans; emitting charges no cycles.
	obs *obs.Recorder
}

// AttachObs wires the machine-wide span recorder (call before Boot so
// the boot span is captured; nil is a no-op recorder).
func (k *Kernel) AttachObs(r *obs.Recorder) { k.obs = r }

// New constructs an FWK instance for chip.
func New(eng *sim.Engine, chip *hw.Chip, cfg Config) *Kernel {
	if cfg.Daemons == nil {
		cfg.Daemons = DefaultDaemons()
	}
	if cfg.FS == nil {
		cfg.FS = fs.New()
	}
	k := &Kernel{
		Eng: eng, Chip: chip, cfg: cfg,
		rng:       sim.NewRNG(cfg.Seed ^ 0xf00dface),
		FS:        cfg.FS,
		procs:     make(map[uint32]*Proc),
		futexes:   make(map[futexKey][]*futexWaiter),
		physNext:  64 << 20, // kernel image + page tables below
		physLimit: chip.Mem.Size(),
	}
	for _, c := range chip.Cores {
		k.cpus = append(k.cpus, &cpu{k: k, core: c})
	}
	return k
}

// Name implements kernel.OS.
func (k *Kernel) Name() string { return "FWK" }

// Boot brings the kernel up: slow (relative to CNK), with daemon phases
// drawn from the seed. An FWK needs all major units working.
func (k *Kernel) Boot() error {
	if k.booted {
		return fmt.Errorf("fwk: already booted")
	}
	for _, u := range []hw.Unit{hw.UnitDDR, hw.UnitTorus, hw.UnitCollective} {
		if !k.Chip.UnitEnabled(u) {
			return fmt.Errorf("fwk: cannot boot with %v broken (no workaround flags)", u)
		}
	}
	k.BootInstr = bootFullInstr
	if k.cfg.Stripped {
		k.BootInstr = bootStripInstr
	}
	k.BootedAt = k.Eng.Now() + sim.Cycles(k.BootInstr)
	k.booted = true
	k.Eng.Trace().Record(k.BootedAt, k.tag(), "boot: complete")
	k.obs.Emit(obs.CatBoot, "fwk:boot", k.Chip.ID, 0, k.Eng.Now(), k.BootedAt, k.BootInstr)
	// Start ticks and daemons.
	for i, c := range k.cpus {
		c.nextTick = k.BootedAt + tickPeriod + k.rng.Cycles(tickPeriod) + sim.Cycles(i*997)
	}
	for _, spec := range k.cfg.Daemons {
		if spec.Core >= len(k.cpus) {
			continue
		}
		k.startDaemon(spec)
	}
	return nil
}

// ResetJobState forgets per-job structures — processes, futex queues,
// PID/TID counters, run queues — so a reused kernel numbers and places the
// next job's threads like a fresh one would. The physical-frame allocator
// is deliberately NOT rewound here: a live FWK never compacts its pool, so
// job-to-job frame placement drifts (the Table II contiguity story);
// Reboot is what restores the pristine permutation.
func (k *Kernel) ResetJobState() {
	k.procs = make(map[uint32]*Proc)
	k.futexes = make(map[futexKey][]*futexWaiter)
	k.nextPID, k.nextTID = 0, 0
	for _, c := range k.cpus {
		c.cur, c.ready = nil, nil
	}
}

// Reboot brings the kernel back up after a partition reset, replaying the
// full boot sequence with the same seed: the kernel RNG, the frame
// allocator, tick phases and daemon schedules all restart exactly as a
// fresh boot's would, just shifted to the new boot instant. fsys, when
// non-nil, replaces the node's (NFS) filesystem — a partition reboot
// remounts a clean export. The previous incarnation's daemon coroutines
// stay parked forever (nothing dispatches them once cpus[i].daemons is
// replaced); they are reclaimed at engine Shutdown.
func (k *Kernel) Reboot(fsys *fs.FS) error {
	k.ResetJobState()
	k.booted = false
	k.BootInstr = 0
	k.rng = sim.NewRNG(k.cfg.Seed ^ 0xf00dface)
	k.physIdx = 0
	k.physFree = nil
	if fsys != nil {
		k.cfg.FS = fsys
		k.FS = fsys
	}
	for _, c := range k.cpus {
		c.daemons = nil
		c.nextTick = 0
		c.Ticks, c.ContextSwitches, c.DaemonRuns = 0, 0, 0
	}
	return k.Boot()
}

func (k *Kernel) tag() string { return fmt.Sprintf("fwk%d", k.Chip.ID) }

// SyscallEntryCost implements kernel.OS.
func (k *Kernel) SyscallEntryCost() sim.Cycles { return syscallCost }

// allocFrame hands out one 4KB physical frame. Frames are drawn from a
// deterministic permutation of the pool rather than sequentially: on a
// real FWK the buddy allocator's state after boot leaves anonymous pages
// physically scattered, which is exactly why user buffers resolve to long
// scatter lists (Table II: "Large physically contiguous memory:
// easy-hard"). Frees are reused LIFO.
func (k *Kernel) allocFrame() (hw.PAddr, bool) {
	if n := len(k.physFree); n > 0 {
		f := k.physFree[n-1]
		k.physFree = k.physFree[:n-1]
		return f, true
	}
	// Pool: largest power-of-two page count below the limit.
	pool := uint64(1)
	for pool*2 <= (k.physLimit-k.physNext)/4096 {
		pool *= 2
	}
	if k.physIdx >= pool {
		return 0, false
	}
	// Odd multiplier => bijection over the power-of-two pool.
	slot := (k.physIdx * 0x9E3779B1) & (pool - 1)
	k.physIdx++
	return hw.PAddr(k.physNext + slot*4096), true
}

func (k *Kernel) freeFrame(f hw.PAddr) { k.physFree = append(k.physFree, f) }

// RegisterSignal implements kernel.OS.
func (k *Kernel) RegisterSignal(t *kernel.Thread, sig kernel.Signal, h kernel.SigHandler) kernel.Errno {
	p := k.procs[t.PID()]
	if p == nil {
		return kernel.ESRCH
	}
	if sig == kernel.SIGKILL {
		return kernel.EINVAL
	}
	p.Sig.Register(sig, h)
	return kernel.OK
}

// MemEvent implements kernel.OS. Unlike CNK, an L1 parity error on a
// general-purpose kernel has no application recovery path: the kernel
// kills the task (machine-check semantics).
func (k *Kernel) MemEvent(t *kernel.Thread, ev hw.MemEvent, va hw.VAddr, write bool) {
	switch ev {
	case hw.EvL1Parity:
		k.Eng.Trace().Record(k.Eng.Now(), k.tag(), "machine check: killing task")
		k.exitThread(t, 128+int(kernel.SIGKILL))
	case hw.EvDDRUncorrectable:
		// When the plan arms FWKPanicEvery, every Nth multi-bit error
		// lands in state the kernel cannot scrub around (its own
		// structures, a daemon's heap) and the node panics, killing the
		// job — the fatal path the resilience experiments restart from.
		if k.Chip.Faults != nil && k.Chip.Faults.FWKPanicDue() {
			k.Eng.Trace().Record(k.Eng.Now(), k.tag(), "machine check: kernel panic, killing job")
			k.Chip.Faults.Report(ras.JobKill, "fwk",
				fmt.Sprintf("kernel panic on uncorrectable DDR error at va %#x", uint64(va)))
			k.exitThread(t, 128+int(kernel.SIGBUS))
			return
		}
		// Otherwise the full-weight kernel absorbs the error in place: an
		// in-kernel scrub-and-remap pass whose length depends on allocator
		// state, modelled as kernel-RNG jitter. The task keeps running —
		// at the cost of an unpredictable stall that widens OS noise, and
		// a run that can never be replayed cycle-for-cycle.
		scrub := fwkScrubBase + k.rng.Cycles(fwkScrubJitter)
		k.Eng.Trace().Record(k.Eng.Now(), k.tag(),
			fmt.Sprintf("machine check: DDR scrub-and-remap, %d cycle stall", scrub))
		if k.Chip.Faults != nil {
			k.Chip.Faults.Report(ras.Recovery, "fwk",
				fmt.Sprintf("scrubbed uncorrectable DDR error at va %#x in place", uint64(va)))
		}
		t.Coro().Sleep(scrub)
	default:
		t.PostSignal(kernel.SigInfo{Sig: kernel.SIGSEGV, Addr: va, Code: 2})
		k.deliverSignals(t)
	}
}

func (k *Kernel) deliverSignals(t *kernel.Thread) {
	if t.State == kernel.ThreadExited {
		return
	}
	for _, info := range t.TakePendingSignals() {
		p := k.procs[t.PID()]
		if p == nil {
			return
		}
		if h, ok := p.Sig.Lookup(info.Sig); ok {
			t.Coro().Sleep(300)
			h(t, info)
			continue
		}
		if info.Sig == kernel.SIGKILL || info.Sig == kernel.SIGSEGV || info.Sig == kernel.SIGBUS {
			k.exitThread(t, 128+int(info.Sig))
		}
	}
}
