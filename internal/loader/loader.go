// Package loader implements the BELF image format (the model's stand-in
// for ELF) and the dynamic linker of paper Section IV-B2: a ld.so-like
// loader that lives at a fixed virtual address distinct from the
// application's, needs only open/fstat/mmap(MAP_COPY)/close from the
// kernel, eagerly loads whole libraries (no demand paging of library
// pages), and deliberately does not honour page permissions on library
// text — so an application *can* scribble on its own code, the documented
// lightweight-philosophy consequence.
package loader

import (
	"encoding/binary"
	"fmt"
	"sort"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// Magic identifies a BELF image.
var Magic = [4]byte{'B', 'E', 'L', 'F'}

// Sym is one exported symbol: a name and an offset into the text section.
type Sym struct {
	Name   string
	Offset uint64
	// Cost is the modelled cycles one call of this function burns (our
	// stand-in for actual instructions).
	Cost uint64
}

// Image is a BELF executable or shared library.
type Image struct {
	Name    string
	Text    []byte   // code + rodata
	Data    []byte   // initialized data
	BSS     uint64   // zero-initialized size
	Needed  []string // dynamic dependencies (DT_NEEDED)
	Symbols []Sym
}

// TextSize and DataSize report segment footprints for the partitioner.
func (im *Image) TextSize() uint64 { return uint64(len(im.Text)) }

// DataSize includes BSS.
func (im *Image) DataSize() uint64 { return uint64(len(im.Data)) + im.BSS }

// Lookup finds a symbol.
func (im *Image) Lookup(name string) (Sym, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}

// Marshal renders the image in wire/file format (big-endian).
func (im *Image) Marshal() []byte {
	var b []byte
	b = append(b, Magic[:]...)
	putStr := func(s string) {
		b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	putBytes := func(p []byte) {
		b = binary.BigEndian.AppendUint64(b, uint64(len(p)))
		b = append(b, p...)
	}
	putStr(im.Name)
	putBytes(im.Text)
	putBytes(im.Data)
	b = binary.BigEndian.AppendUint64(b, im.BSS)
	b = binary.BigEndian.AppendUint32(b, uint32(len(im.Needed)))
	for _, n := range im.Needed {
		putStr(n)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(im.Symbols)))
	for _, s := range im.Symbols {
		putStr(s.Name)
		b = binary.BigEndian.AppendUint64(b, s.Offset)
		b = binary.BigEndian.AppendUint64(b, s.Cost)
	}
	return b
}

// Unmarshal parses a BELF image.
func Unmarshal(b []byte) (*Image, error) {
	if len(b) < 4 || b[0] != 'B' || b[1] != 'E' || b[2] != 'L' || b[3] != 'F' {
		return nil, fmt.Errorf("loader: bad magic")
	}
	b = b[4:]
	fail := fmt.Errorf("loader: truncated image")
	need := func(n int) ([]byte, bool) {
		if len(b) < n {
			return nil, false
		}
		v := b[:n]
		b = b[n:]
		return v, true
	}
	getStr := func() (string, bool) {
		lb, ok := need(4)
		if !ok {
			return "", false
		}
		sb, ok := need(int(binary.BigEndian.Uint32(lb)))
		return string(sb), ok
	}
	getBytes := func() ([]byte, bool) {
		lb, ok := need(8)
		if !ok {
			return nil, false
		}
		db, ok := need(int(binary.BigEndian.Uint64(lb)))
		return append([]byte(nil), db...), ok
	}
	im := &Image{}
	var ok bool
	if im.Name, ok = getStr(); !ok {
		return nil, fail
	}
	if im.Text, ok = getBytes(); !ok {
		return nil, fail
	}
	if im.Data, ok = getBytes(); !ok {
		return nil, fail
	}
	bb, ok := need(8)
	if !ok {
		return nil, fail
	}
	im.BSS = binary.BigEndian.Uint64(bb)
	nb, ok := need(4)
	if !ok {
		return nil, fail
	}
	for i := uint32(0); i < binary.BigEndian.Uint32(nb); i++ {
		s, ok := getStr()
		if !ok {
			return nil, fail
		}
		im.Needed = append(im.Needed, s)
	}
	sb, ok := need(4)
	if !ok {
		return nil, fail
	}
	for i := uint32(0); i < binary.BigEndian.Uint32(sb); i++ {
		var s Sym
		if s.Name, ok = getStr(); !ok {
			return nil, fail
		}
		ob, ok := need(8)
		if !ok {
			return nil, fail
		}
		s.Offset = binary.BigEndian.Uint64(ob)
		cb, ok := need(8)
		if !ok {
			return nil, fail
		}
		s.Cost = binary.BigEndian.Uint64(cb)
		im.Symbols = append(im.Symbols, s)
	}
	return im, nil
}

// LoadedLib is a library mapped into a process.
type LoadedLib struct {
	Image *Image
	Base  hw.VAddr // text base
	Data  hw.VAddr
}

// SymAddr resolves a symbol to its mapped virtual address.
func (ll *LoadedLib) SymAddr(name string) (hw.VAddr, bool) {
	s, ok := ll.Image.Lookup(name)
	if !ok {
		return 0, false
	}
	return ll.Base + hw.VAddr(s.Offset), true
}

// Linker is the ld.so model for one process. It is created by the process
// during startup (CNK statically loads ld.so at a fixed virtual address
// that differs from the application's initial addresses).
type Linker struct {
	libs   map[string]*LoadedLib
	bySyms map[string]*LoadedLib

	// Stats for the experiments: all library I/O happens at load time.
	LoadCalls uint64
	BytesRead uint64
}

// NewLinker initializes the dynamic linker.
func NewLinker() *Linker {
	return &Linker{libs: make(map[string]*LoadedLib), bySyms: make(map[string]*LoadedLib)}
}

// Dlopen loads the library at path (plus its DT_NEEDED closure) through
// the kernel's file and mmap interface: open, fstat for the size, one
// mmap(MAP_COPY) that pulls the ENTIRE file across the network at once
// (no lazy page faults afterwards — the noise is contained in this call),
// then close. Idempotent per path.
func (ld *Linker) Dlopen(ctx kernel.Context, path string) (*LoadedLib, error) {
	if lib, ok := ld.libs[path]; ok {
		return lib, nil
	}
	// Scratch strings go just below the break.
	brk, _ := ctx.Syscall(kernel.SysBrk, 0)
	ctx.Syscall(kernel.SysBrk, brk+4096)
	pathVA := hw.VAddr(brk)
	if errno := ctx.StoreCString(pathVA, path); errno != kernel.OK {
		return nil, fmt.Errorf("dlopen %s: %v", path, errno)
	}
	fd, errno := ctx.Syscall(kernel.SysOpen, uint64(pathVA), kernel.ORdonly, 0)
	if errno != kernel.OK {
		return nil, fmt.Errorf("dlopen %s: open: %v", path, errno)
	}
	defer ctx.Syscall(kernel.SysClose, fd)
	size, errno := ctx.Syscall(kernel.SysFstat, fd, 0)
	if errno != kernel.OK {
		return nil, fmt.Errorf("dlopen %s: fstat: %v", path, errno)
	}
	if size == 0 {
		return nil, fmt.Errorf("dlopen %s: empty library", path)
	}
	va, errno := ctx.Syscall(kernel.SysMmap, 0, size,
		kernel.ProtRead|kernel.ProtExec, kernel.MapPrivate|kernel.MapCopy, fd, 0)
	if errno != kernel.OK {
		return nil, fmt.Errorf("dlopen %s: mmap: %v", path, errno)
	}
	ld.LoadCalls++
	ld.BytesRead += size
	raw := make([]byte, size)
	if errno := ctx.Load(hw.VAddr(va), raw); errno != kernel.OK {
		return nil, fmt.Errorf("dlopen %s: read mapping: %v", path, errno)
	}
	im, err := Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("dlopen %s: %v", path, err)
	}
	lib := &LoadedLib{Image: im, Base: hw.VAddr(va), Data: hw.VAddr(va) + hw.VAddr(len(im.Text))}
	ld.libs[path] = lib
	for _, s := range im.Symbols {
		if _, dup := ld.bySyms[s.Name]; !dup {
			ld.bySyms[s.Name] = lib
		}
	}
	// Load the DT_NEEDED closure, breadth-first, deterministically.
	needed := append([]string(nil), im.Needed...)
	sort.Strings(needed)
	for _, dep := range needed {
		if _, err := ld.Dlopen(ctx, dep); err != nil {
			return nil, fmt.Errorf("dlopen %s: needed %s: %v", path, dep, err)
		}
	}
	return lib, nil
}

// Dlsym resolves name across all loaded libraries.
func (ld *Linker) Dlsym(ctx kernel.Context, name string) (hw.VAddr, *LoadedLib, error) {
	lib, ok := ld.bySyms[name]
	if !ok {
		return 0, nil, fmt.Errorf("dlsym: undefined symbol %q", name)
	}
	va, _ := lib.SymAddr(name)
	return va, lib, nil
}

// Call invokes a loaded function: it charges the symbol's modelled cost
// and touches its text (so the cache model sees instruction fetches).
func (ld *Linker) Call(ctx kernel.Context, name string) error {
	_, lib, err := ld.Dlsym(ctx, name)
	if err != nil {
		return err
	}
	s, _ := lib.Image.Lookup(name)
	va := lib.Base + hw.VAddr(s.Offset)
	span := uint32(64)
	if rem := uint64(len(lib.Image.Text)) - s.Offset; rem < 64 {
		span = uint32(rem)
	}
	if errno := ctx.Touch(va, span, false); errno != kernel.OK {
		return fmt.Errorf("call %s: text fetch: %v", name, errno)
	}
	ctx.Compute(sim.Cycles(s.Cost))
	return nil
}

// Loaded reports the libraries mapped so far.
func (ld *Linker) Loaded() []string {
	var ns []string
	for n := range ld.libs {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
