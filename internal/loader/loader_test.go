package loader

import (
	"testing"
	"testing/quick"

	"bgcnk/internal/ciod"
	"bgcnk/internal/cnk"
	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

func testImage(name string, needed ...string) *Image {
	return &Image{
		Name:   name,
		Text:   append([]byte("CODE:"+name), make([]byte, 2048)...),
		Data:   []byte("DATA"),
		BSS:    512,
		Needed: needed,
		Symbols: []Sym{
			{Name: name + "_init", Offset: 0, Cost: 1000},
			{Name: name + "_work", Offset: 64, Cost: 25_000},
		},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	im := testImage("libfoo.so", "libm.so", "libc.so")
	got, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != im.Name || string(got.Text) != string(im.Text) ||
		string(got.Data) != string(im.Data) || got.BSS != im.BSS {
		t.Fatal("round trip lost fields")
	}
	if len(got.Needed) != 2 || got.Needed[0] != "libm.so" {
		t.Fatalf("needed: %v", got.Needed)
	}
	if len(got.Symbols) != 2 || got.Symbols[1].Cost != 25_000 {
		t.Fatalf("symbols: %+v", got.Symbols)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("ELF?")); err == nil {
		t.Fatal("bad magic accepted")
	}
	im := testImage("x")
	b := im.Marshal()
	if _, err := Unmarshal(b[:len(b)-5]); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(name string, text, data []byte, bss uint16) bool {
		im := &Image{Name: name, Text: text, Data: data, BSS: uint64(bss)}
		got, err := Unmarshal(im.Marshal())
		if err != nil {
			return false
		}
		return got.Name == name && string(got.Text) == string(text) &&
			string(got.Data) == string(data) && got.BSS == uint64(bss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// withCNK runs fn inside a CNK job with the given libraries installed on
// the I/O node's filesystem.
func withCNK(t *testing.T, libs []*Image, fn func(ctx kernel.Context)) {
	t.Helper()
	eng := sim.NewEngine()
	ionFS := fs.New()
	ionFS.MustMkdirAll("/lib")
	for _, im := range libs {
		if errno := ionFS.WriteFile("/lib/"+im.Name, im.Marshal(), 0755, fs.Root); errno != kernel.OK {
			t.Fatal(errno)
		}
	}
	k := cnk.New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), cnk.Config{IO: ciod.NewLoopback(eng, ionFS)})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	job, err := k.Launch(cnk.JobSpec{Main: func(ctx kernel.Context, rank int) { fn(ctx) }})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job stuck")
	}
}

func TestDlopenLoadsWholeLibraryEagerly(t *testing.T) {
	lib := testImage("libphys.so")
	withCNK(t, []*Image{lib}, func(ctx kernel.Context) {
		ld := NewLinker()
		ll, err := ld.Dlopen(ctx, "/lib/libphys.so")
		if err != nil {
			t.Error(err)
			return
		}
		if ld.BytesRead != uint64(len(lib.Marshal())) {
			t.Errorf("read %d bytes, want the whole file %d (eager load)", ld.BytesRead, len(lib.Marshal()))
		}
		if _, ok := ll.SymAddr("libphys.so_work"); !ok {
			t.Error("symbol missing after load")
		}
	})
}

func TestDlopenNeededClosure(t *testing.T) {
	libc := testImage("libc.so")
	libm := testImage("libm.so", "/lib/libc.so")
	app := testImage("libapp.so", "/lib/libm.so")
	withCNK(t, []*Image{libc, libm, app}, func(ctx kernel.Context) {
		ld := NewLinker()
		if _, err := ld.Dlopen(ctx, "/lib/libapp.so"); err != nil {
			t.Error(err)
			return
		}
		if n := len(ld.Loaded()); n != 3 {
			t.Errorf("loaded %d libs, want 3 (DT_NEEDED closure): %v", n, ld.Loaded())
		}
	})
}

func TestDlsymAndCall(t *testing.T) {
	lib := testImage("libcompute.so")
	withCNK(t, []*Image{lib}, func(ctx kernel.Context) {
		ld := NewLinker()
		if _, err := ld.Dlopen(ctx, "/lib/libcompute.so"); err != nil {
			t.Error(err)
			return
		}
		start := ctx.Now()
		if err := ld.Call(ctx, "libcompute.so_work"); err != nil {
			t.Error(err)
			return
		}
		if ctx.Now()-start < 25_000 {
			t.Error("call did not charge the function's cost")
		}
		if _, _, err := ld.Dlsym(ctx, "no_such_symbol"); err == nil {
			t.Error("dlsym of missing symbol must fail")
		}
	})
}

func TestDlopenIdempotent(t *testing.T) {
	lib := testImage("libonce.so")
	withCNK(t, []*Image{lib}, func(ctx kernel.Context) {
		ld := NewLinker()
		a, err := ld.Dlopen(ctx, "/lib/libonce.so")
		if err != nil {
			t.Error(err)
			return
		}
		b, _ := ld.Dlopen(ctx, "/lib/libonce.so")
		if a != b || ld.LoadCalls != 1 {
			t.Error("second dlopen must reuse the mapping")
		}
	})
}

func TestDlopenMissingLibrary(t *testing.T) {
	withCNK(t, nil, func(ctx kernel.Context) {
		ld := NewLinker()
		if _, err := ld.Dlopen(ctx, "/lib/nope.so"); err == nil {
			t.Error("missing library must fail")
		}
	})
}

func TestLibraryTextIsWritableOnCNK(t *testing.T) {
	// Paper IV-B2: CNK does not honour page permissions on library text;
	// "applications could therefore unintentionally modify their text".
	lib := testImage("libscribble.so")
	withCNK(t, []*Image{lib}, func(ctx kernel.Context) {
		ld := NewLinker()
		ll, err := ld.Dlopen(ctx, "/lib/libscribble.so")
		if err != nil {
			t.Error(err)
			return
		}
		va, _ := ll.SymAddr("libscribble.so_init")
		if errno := ctx.Store(va, []byte{0xDE, 0xAD}); errno != kernel.OK {
			t.Errorf("store to library text: %v (CNK must allow this)", errno)
		}
		buf := make([]byte, 2)
		ctx.Load(va, buf)
		if buf[0] != 0xDE {
			t.Error("text modification did not stick")
		}
	})
}
