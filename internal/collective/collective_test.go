package collective

import (
	"testing"

	"bgcnk/internal/sim"
)

func TestSendRecvRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTree(eng, DefaultConfig(), []int{0, 1})
	var got Message
	eng.Go("ion", func(c *sim.Coro) {
		got = tr.ION().Recv(c)
	})
	eng.Go("cn0", func(c *sim.Coro) {
		tr.CN(0).Send(-1, 7, []byte("write request"))
	})
	eng.RunUntilIdle()
	if got.Tag != 7 || got.From != 0 || string(got.Data) != "write request" {
		t.Fatalf("got %+v", got)
	}
}

func TestLatencyCharged(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	tr := NewTree(eng, cfg, []int{0})
	var at sim.Cycles
	eng.Go("ion", func(c *sim.Coro) {
		tr.ION().Recv(c)
		at = c.Now()
	})
	eng.Go("cn", func(c *sim.Coro) {
		c.Sleep(100)
		tr.CN(0).Send(-1, 1, make([]byte, 100))
	})
	eng.RunUntilIdle()
	if at <= 100+cfg.Latency {
		t.Fatalf("message arrived too fast: %d", at)
	}
}

func TestTagRouting(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTree(eng, DefaultConfig(), []int{0})
	var order []uint32
	// Two waiters on the CN endpoint for different reply tags; replies
	// sent in reverse order must still route correctly.
	for _, tag := range []uint32{10, 20} {
		tag := tag
		eng.Go("waiter", func(c *sim.Coro) {
			m := tr.CN(0).RecvTag(c, tag)
			order = append(order, m.Tag)
		})
	}
	eng.Go("ion", func(c *sim.Coro) {
		tr.ION().Send(0, 20, []byte("b"))
		c.Sleep(10000)
		tr.ION().Send(0, 10, []byte("a"))
	})
	eng.RunUntilIdle()
	if len(order) != 2 || order[0] != 20 || order[1] != 10 {
		t.Fatalf("order = %v", order)
	}
}

func TestLinkSerializationContention(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	tr := NewTree(eng, cfg, []int{0})
	var arrivals []sim.Cycles
	eng.Go("ion", func(c *sim.Coro) {
		for i := 0; i < 2; i++ {
			tr.ION().Recv(c)
			arrivals = append(arrivals, c.Now())
		}
	})
	eng.Go("cn", func(c *sim.Coro) {
		// Two back-to-back large sends share the outgoing link.
		tr.CN(0).Send(-1, 1, make([]byte, 64<<10))
		tr.CN(0).Send(-1, 2, make([]byte, 64<<10))
	})
	eng.RunUntilIdle()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	ser := sim.Cycles(float64(64<<10) * cfg.CyclesPerByte)
	if gap < ser {
		t.Fatalf("second message did not queue behind the first: gap %d < ser %d", gap, ser)
	}
}

func TestBandwidthApproximation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	tr := NewTree(eng, cfg, []int{0})
	const total = 1 << 20
	var done sim.Cycles
	eng.Go("ion", func(c *sim.Coro) {
		for got := 0; got < total; {
			m := tr.ION().Recv(c)
			got += len(m.Data)
		}
		done = c.Now()
	})
	eng.Go("cn", func(c *sim.Coro) {
		for sent := 0; sent < total; sent += 64 << 10 {
			tr.CN(0).Send(-1, 1, make([]byte, 64<<10))
		}
	})
	eng.RunUntilIdle()
	bw := float64(total) / done.Seconds() / 1e6 // MB/s
	if bw < 400 || bw > 900 {
		t.Fatalf("tree bandwidth %.0f MB/s, want ~850", bw)
	}
}

func TestStatsCounters(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTree(eng, DefaultConfig(), []int{3})
	eng.Go("x", func(c *sim.Coro) {
		tr.CN(3).Send(-1, 1, make([]byte, 10))
	})
	eng.RunUntilIdle()
	if tr.CN(3).Sent != 1 || tr.CN(3).BytesSent != 10 || tr.ION().Received != 1 {
		t.Fatal("counters wrong")
	}
	if tr.ION().Pending() != 1 {
		t.Fatal("inbox should hold the message")
	}
}
