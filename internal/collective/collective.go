// Package collective models the Blue Gene/P collective (tree) network that
// connects compute nodes to their I/O node. CNK function-ships filesystem
// system calls over this network to CIOD (paper Fig 2). The model carries
// real bytes in 256-byte packets over per-endpoint serialized links, so
// protocol cost, aggregation, and bandwidth contention are observable.
package collective

import (
	"errors"
	"fmt"
	"sort"

	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// ErrDeadParticipant is returned by Combine.AllreduceErr when a
// participant's node has died: the tree can never finish summing with a
// contribution permanently missing, so the caller must fail the job
// instead of parking forever.
var ErrDeadParticipant = errors.New("collective: participant dead, combine can never complete")

// PacketBytes is the collective network packet payload size.
const PacketBytes = 256

// RetransBackoff is the base sender backoff after a CRC-corrupted
// transfer; it doubles per consecutive corruption of the same transfer.
const RetransBackoff = sim.Cycles(200)

// Config sets the link cost model. Defaults approximate BG/P's tree:
// ~0.85 GB/s per link and a few microseconds of tree latency.
type Config struct {
	Latency       sim.Cycles // one-way tree traversal latency
	CyclesPerByte float64    // serialization cost
	PerPacket     sim.Cycles // per-packet header/processing cost
}

// DefaultConfig returns the BG/P-like cost model.
func DefaultConfig() Config {
	return Config{
		Latency:       sim.FromMicros(1.3),
		CyclesPerByte: 1.0, // 850 MB/s at 850 MHz
		PerPacket:     40,
	}
}

// Message is one function-ship message (request or reply).
type Message struct {
	From int    // sender endpoint ID
	Tag  uint32 // request/reply matching tag
	Data []byte
}

// Tree is one collective-network class route: a set of compute-node
// endpoints all connected to one I/O-node endpoint.
type Tree struct {
	eng *sim.Engine
	cfg Config
	ion *Endpoint
	cns map[int]*Endpoint

	// shareUp serializes every CN→ION transfer on one shared uplink (the
	// physical tree's root edge into the I/O node) in addition to each
	// sender's own NIC. Armed by the ION aggregation subsystem; off, the
	// legacy per-endpoint model is byte-identical.
	shareUp bool
	upBusy  sim.Cycles

	// obs, when non-nil, receives one msg span per tree send
	// (serialization start to delivery); emitting charges no cycles.
	obs *obs.Recorder
}

// AttachObs wires the machine-wide span recorder to every endpoint of
// this tree (nil is a no-op recorder).
func (t *Tree) AttachObs(r *obs.Recorder) { t.obs = r }

// Endpoint is one node's tree interface: an inbox plus a serialized
// outgoing link.
type Endpoint struct {
	tree      *Tree
	id        int
	ion       bool
	inbox     []Message
	waiters   []waiter
	busyUntil sim.Cycles // outgoing link serialization

	// upc is the owning node's counter unit; nil until AttachUPC (the
	// tree is built before the chips are wired to it).
	upc *upc.UPC

	// faults draws seeded link-CRC corruption for outgoing transfers;
	// nil on a perfect machine.
	faults *ras.NodeFaults

	Sent, Received uint64
	BytesSent      uint64
	Retransmits    uint64
}

type waiter struct {
	coro   *sim.Coro
	tag    uint32
	anyTag bool
}

// NewTree builds a tree with one ION endpoint (id -1) and the given
// compute-node endpoint IDs.
func NewTree(eng *sim.Engine, cfg Config, cnIDs []int) *Tree {
	t := &Tree{eng: eng, cfg: cfg, cns: make(map[int]*Endpoint)}
	t.ion = &Endpoint{tree: t, id: -1, ion: true}
	for _, id := range cnIDs {
		t.cns[id] = &Endpoint{tree: t, id: id}
	}
	return t
}

// ION returns the I/O-node endpoint.
func (t *Tree) ION() *Endpoint { return t.ion }

// ShareUplink arms shared-uplink serialization: all CN→ION traffic on
// this tree contends for the single link into the I/O node, on top of
// each sender's own NIC serialization. This is what makes fan-in
// bandwidth saturate as the CN:ION ratio grows.
func (t *Tree) ShareUplink() { t.shareUp = true }

// UplinkTransfer blocks c while n bytes cross the shared uplink and
// returns the cycles spent waiting for the link to come free. The FWK's
// network-filesystem client uses this for data operations: unlike CNK's
// function shipping there is no asynchronous send FIFO — the caller
// sits in the kernel for the whole synchronous RPC.
func (t *Tree) UplinkTransfer(c *sim.Coro, n int) sim.Cycles {
	ser := t.ion.sendCost(n)
	now := t.eng.Now()
	start := now
	if t.upBusy > start {
		start = t.upBusy
	}
	t.upBusy = start + ser
	stall := start - now
	c.Sleep(stall + ser + t.cfg.Latency)
	return stall
}

// CN returns the compute-node endpoint with the given ID.
func (t *Tree) CN(id int) *Endpoint {
	ep, ok := t.cns[id]
	if !ok {
		panic(fmt.Sprintf("collective: no CN endpoint %d", id))
	}
	return ep
}

// ID returns the endpoint's node ID (-1 for the ION).
func (e *Endpoint) ID() int { return e.id }

// AttachUPC routes this endpoint's traffic counters to a chip's UPC unit.
func (e *Endpoint) AttachUPC(u *upc.UPC) { e.upc = u }

// AttachFaults wires the owning node's seeded fault source into this
// endpoint's outgoing link.
func (e *Endpoint) AttachFaults(f *ras.NodeFaults) { e.faults = f }

// Drain discards every undelivered inbox message: replies that arrived
// after their caller gave up (or died) age in the inbox, and a partition
// reboot must not let job N's stragglers leak into job N+1.
func (e *Endpoint) Drain() { e.inbox = nil }

// sendCost computes serialization cycles for n bytes.
func (e *Endpoint) sendCost(n int) sim.Cycles {
	packets := (n + PacketBytes - 1) / PacketBytes
	if packets == 0 {
		packets = 1
	}
	ser := sim.Cycles(float64(n)*e.tree.cfg.CyclesPerByte) + sim.Cycles(packets)*e.tree.cfg.PerPacket
	return ser
}

// Send transmits msg to the tree peer (CN→ION or ION→CN addressed by
// msg destination to). The sender's coroutine is NOT blocked: the cost is
// paid on the link (DMA-like). Use SendFrom for an explicit source tag.
func (e *Endpoint) Send(to int, tag uint32, data []byte) {
	var dst *Endpoint
	if e.ion {
		dst = e.tree.CN(to)
	} else {
		dst = e.tree.ion
	}
	ser := e.sendCost(len(data))
	if e.faults != nil {
		// Link-level CRC: the receiver NAKs a corrupted transfer and the
		// sender re-serializes it after an exponentially growing backoff.
		// The whole protocol is charged on the link, keeping Send
		// non-blocking (DMA-like), and counted so experiments can read
		// the cost back out.
		if n := e.faults.LinkRetransmits("collective"); n > 0 {
			clean := ser
			for a := 0; a < n; a++ {
				ser += clean + (RetransBackoff << a)
			}
			e.Retransmits += uint64(n)
			if e.upc != nil {
				e.upc.Add(upc.ChipScope, upc.LinkCRC, uint64(n))
				e.upc.Add(upc.ChipScope, upc.LinkRetransmit, uint64(n))
			}
		}
	}
	start := e.tree.eng.Now()
	if e.busyUntil > start {
		start = e.busyUntil
	}
	if !e.ion && e.tree.shareUp && e.tree.upBusy > start {
		start = e.tree.upBusy
	}
	e.busyUntil = start + ser
	if !e.ion && e.tree.shareUp {
		e.tree.upBusy = e.busyUntil
	}
	arrive := e.busyUntil + e.tree.cfg.Latency
	msg := Message{From: e.id, Tag: tag, Data: append([]byte(nil), data...)}
	e.Sent++
	e.BytesSent += uint64(len(data))
	if e.upc != nil {
		packets := (len(data) + PacketBytes - 1) / PacketBytes
		if packets == 0 {
			packets = 1
		}
		e.upc.Add(upc.ChipScope, upc.CollPacket, uint64(packets))
		e.upc.Add(upc.ChipScope, upc.CollBytes, uint64(len(data)))
		e.upc.Trace.Emit(upc.EvCollSend, upc.ChipScope, e.tree.eng.Now(), uint64(len(data)))
	}
	e.tree.obs.Emit(obs.CatMsg, "coll:send", e.id, 0, e.tree.eng.Now(), arrive, uint64(len(data)))
	e.tree.eng.At(arrive, func() { dst.deliver(msg) })
}

func (e *Endpoint) deliver(m Message) {
	e.inbox = append(e.inbox, m)
	e.Received++
	// Wake every waiter that could match; they re-check on resume.
	for _, w := range e.waiters {
		if w.anyTag || w.tag == m.Tag {
			w.coro.Wake()
		}
	}
}

// take removes and returns the first inbox message matching (tag, anyTag).
func (e *Endpoint) take(tag uint32, anyTag bool) (Message, bool) {
	for i, m := range e.inbox {
		if anyTag || m.Tag == tag {
			e.inbox = append(e.inbox[:i], e.inbox[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Recv blocks the calling coroutine until any message arrives and returns
// it.
func (e *Endpoint) Recv(c *sim.Coro) Message {
	for {
		if m, ok := e.take(0, true); ok {
			return m
		}
		e.waiters = append(e.waiters, waiter{coro: c, anyTag: true})
		c.Park(sim.Forever)
		e.removeWaiter(c)
	}
}

// RecvTag blocks until a message with the given tag arrives. Multiple
// coroutines may wait on the same endpoint with different tags (one I/O
// proxy thread per application thread — paper Section IV-A).
func (e *Endpoint) RecvTag(c *sim.Coro, tag uint32) Message {
	for {
		if m, ok := e.take(tag, false); ok {
			return m
		}
		e.waiters = append(e.waiters, waiter{coro: c, tag: tag})
		c.Park(sim.Forever)
		e.removeWaiter(c)
	}
}

// RecvTagTimeout is RecvTag with a deadline: it returns ok=false if no
// message with the tag arrives within timeout cycles. A timeout of
// sim.Forever behaves exactly like RecvTag (and schedules no timer event,
// so fault-free runs are unchanged to the cycle).
func (e *Endpoint) RecvTagTimeout(c *sim.Coro, tag uint32, timeout sim.Cycles) (Message, bool) {
	if timeout >= sim.Forever {
		return e.RecvTag(c, tag), true
	}
	deadline := e.tree.eng.Now() + timeout
	for {
		if m, ok := e.take(tag, false); ok {
			return m, true
		}
		now := e.tree.eng.Now()
		if now >= deadline {
			return Message{}, false
		}
		e.waiters = append(e.waiters, waiter{coro: c, tag: tag})
		r := c.Park(deadline - now)
		e.removeWaiter(c)
		if r == sim.WakeTimeout {
			if m, ok := e.take(tag, false); ok {
				return m, true
			}
			return Message{}, false
		}
	}
}

func (e *Endpoint) removeWaiter(c *sim.Coro) {
	for i, w := range e.waiters {
		if w.coro == c {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// Pending reports queued inbox messages (for tests).
func (e *Endpoint) Pending() int { return len(e.inbox) }

// Combine is the collective network's arithmetic-combine (ALU) class
// route: all n participants contribute a double, the tree sums on the way
// up and broadcasts on the way down with a fixed hardware latency. This is
// what MPI_Allreduce maps onto on Blue Gene, and why its per-iteration
// time is constant to the cycle under CNK (paper V-D).
type Combine struct {
	eng     *sim.Engine
	n       int
	latency sim.Cycles

	entered map[int]*sim.Coro
	sum     float64
	results map[int]float64
	dead    map[int]bool
	failed  map[int]bool

	// upcs routes per-participant combine counts to each node's UPC unit.
	upcs map[int]*upc.UPC

	Ops uint64
}

// AttachUPC routes participant id's combine-operation counter to a chip's
// UPC unit.
func (cb *Combine) AttachUPC(id int, u *upc.UPC) {
	if cb.upcs == nil {
		cb.upcs = make(map[int]*upc.UPC)
	}
	cb.upcs[id] = u
}

// NewCombine builds an n-participant combining route. latency 0 selects a
// BG/P-like ~2.5us tree traversal.
func NewCombine(eng *sim.Engine, n int, latency sim.Cycles) *Combine {
	if latency == 0 {
		latency = sim.FromMicros(2.5)
	}
	return &Combine{eng: eng, n: n, latency: latency,
		entered: make(map[int]*sim.Coro), results: make(map[int]float64),
		dead: make(map[int]bool), failed: make(map[int]bool)}
}

// MarkDead declares participant id permanently gone (node failure):
// everyone currently blocked in the combine is released immediately with
// ErrDeadParticipant — woken in participant order for reproducibility —
// and every future AllreduceErr fails fast. Idempotent.
func (cb *Combine) MarkDead(id int) {
	if cb.dead[id] {
		return
	}
	cb.dead[id] = true
	if len(cb.entered) == 0 {
		return
	}
	ids := make([]int, 0, len(cb.entered))
	for wid := range cb.entered {
		ids = append(ids, wid)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		cb.failed[wid] = true
		cb.entered[wid].Wake()
	}
	cb.entered = make(map[int]*sim.Coro)
	cb.sum = 0
}

// Allreduce contributes v for participant id and blocks until the global
// sum returns down the tree. On a dead combine (a participant's node has
// failed) it returns 0 immediately; callers that must distinguish use
// AllreduceErr.
func (cb *Combine) Allreduce(c *sim.Coro, id int, v float64) float64 {
	r, _ := cb.AllreduceErr(c, id, v)
	return r
}

// AllreduceErr is Allreduce with node-failure semantics: it returns
// ErrDeadParticipant — instead of parking forever — when any participant
// is already dead, or dies while this one waits.
func (cb *Combine) AllreduceErr(c *sim.Coro, id int, v float64) (float64, error) {
	if _, dup := cb.entered[id]; dup {
		panic(fmt.Sprintf("collective: participant %d re-entered combine", id))
	}
	if len(cb.dead) > 0 {
		return 0, ErrDeadParticipant
	}
	cb.entered[id] = c
	cb.sum += v
	if u := cb.upcs[id]; u != nil {
		u.Inc(upc.ChipScope, upc.CombineOp)
	}
	if len(cb.entered) == cb.n {
		sum := cb.sum
		waiters := cb.entered
		cb.entered = make(map[int]*sim.Coro)
		cb.sum = 0
		cb.Ops++
		for wid := range waiters {
			cb.results[wid] = sum
		}
		me := c
		cb.eng.At(cb.eng.Now()+cb.latency, func() {
			// Wake in participant order: map iteration order would permute
			// same-cycle wakeups and break cycle reproducibility.
			ids := make([]int, 0, len(waiters))
			for wid := range waiters {
				ids = append(ids, wid)
			}
			sort.Ints(ids)
			for _, wid := range ids {
				if w := waiters[wid]; w != me {
					w.Wake()
				}
			}
		})
		c.Sleep(cb.latency)
		r := cb.results[id]
		delete(cb.results, id)
		return r, nil
	}
	c.Park(sim.Forever)
	if cb.failed[id] {
		delete(cb.failed, id)
		return 0, ErrDeadParticipant
	}
	r := cb.results[id]
	delete(cb.results, id)
	return r, nil
}
