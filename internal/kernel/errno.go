// Package kernel holds the kernel-neutral contract between user-level code
// (the nptl, libc, and messaging layers, and the applications) and a
// compute-node kernel (CNK or the Linux-like FWK): syscall numbers, errno
// values, clone flags, futex operations, signals, and the Context interface
// a user thread executes against.
//
// Keeping this boundary stable mirrors the paper's observation (Section IV)
// that "the interface between glibc and the kernel tends to be more stable,
// while internal kernel interfaces tend to be more fluid": everything above
// this package runs unmodified on both kernels.
package kernel

// Errno is a POSIX-style error number. Zero means success.
type Errno int

// Errno values (the subset the simulated syscall surface can produce).
const (
	OK           Errno = 0
	EPERM        Errno = 1
	ENOENT       Errno = 2
	ESRCH        Errno = 3
	EINTR        Errno = 4
	EIO          Errno = 5
	EBADF        Errno = 9
	EAGAIN       Errno = 11
	ENOMEM       Errno = 12
	EACCES       Errno = 13
	EFAULT       Errno = 14
	EBUSY        Errno = 16
	EEXIST       Errno = 17
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	ENFILE       Errno = 23
	EMFILE       Errno = 24
	ENOSPC       Errno = 28
	ESPIPE       Errno = 29
	EROFS        Errno = 30
	ENAMETOOLONG Errno = 36
	ENOSYS       Errno = 38
	ENOTEMPTY    Errno = 39
	ELOOP        Errno = 40
	EOVERFLOW    Errno = 75
	ETIMEDOUT    Errno = 110
)

var errnoNames = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
	EIO: "EIO", EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM",
	EACCES: "EACCES", EFAULT: "EFAULT", EBUSY: "EBUSY", EEXIST: "EEXIST",
	ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL", ENFILE: "ENFILE",
	EMFILE: "EMFILE", ENOSPC: "ENOSPC", ESPIPE: "ESPIPE", EROFS: "EROFS",
	ENAMETOOLONG: "ENAMETOOLONG", ENOSYS: "ENOSYS", ENOTEMPTY: "ENOTEMPTY",
	ELOOP: "ELOOP", EOVERFLOW: "EOVERFLOW", ETIMEDOUT: "ETIMEDOUT",
}

func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return "Errno(" + itoa(int(e)) + ")"
}

// Error makes Errno usable as an error. OK must not be treated as an
// error value; callers check `errno != OK`.
func (e Errno) Error() string { return e.String() }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
