package kernel

import (
	"bgcnk/internal/hw"
	"bgcnk/internal/sim"
)

// PhysRange is one physically contiguous piece of a virtual buffer. CNK's
// static map yields a single range for any in-bounds buffer; an FWK's 4KB
// anonymous pages yield one range per page, which is what makes
// user-driven DMA (and Fig 8's bandwidth) harder there.
type PhysRange struct {
	PA  hw.PAddr
	Len uint64
}

// SigInfo accompanies a delivered signal.
type SigInfo struct {
	Sig  Signal
	Addr hw.VAddr // faulting or affected address, if any
	Code int
}

// SigHandler is a user-registered signal handler. It runs on the thread's
// own execution context, like a real signal frame.
type SigHandler func(ctx Context, info SigInfo)

// ThreadFunc is the entry point of a cloned thread. It stands in for the
// function-pointer argument of the clone system call.
type ThreadFunc func(ctx Context)

// CloneArgs carries the non-flag arguments of clone: the child's stack and
// thread-local-storage pointers and the parent/child TID addresses, as
// glibc passes them (paper Section IV-B1).
type CloneArgs struct {
	Flags      uint64
	ChildStack hw.VAddr
	TLS        hw.VAddr
	ParentTID  hw.VAddr // store child's TID here in parent (CLONE_PARENT_SETTID)
	ChildTID   hw.VAddr // cleared+futex-woken on child exit (CLONE_CHILD_CLEARTID)
	Fn         ThreadFunc
}

// Context is a user thread's view of the machine: the only way application
// and runtime-library code interacts with a kernel. Implementations exist
// for CNK and for the FWK; user-level packages (nptl, libc, dcmf, apps)
// must compile against this interface only.
type Context interface {
	// Compute burns c CPU cycles of pure computation. On a preemptive
	// kernel the thread may be interrupted and rescheduled during the
	// burn; the cycle count of actual work is preserved.
	Compute(c sim.Cycles)

	// Now returns the current cycle (the timebase register).
	Now() sim.Cycles

	// PID and TID identify the process and thread.
	PID() uint32
	TID() uint32

	// CoreID returns the hardware core currently executing the thread.
	CoreID() int

	// Syscall invokes a numeric system call.
	Syscall(num Sys, args ...uint64) (uint64, Errno)

	// Clone creates a new thread (or, on an FWK with different flags, a
	// process). It is the typed face of the clone syscall.
	Clone(args CloneArgs) (uint32, Errno)

	// Load and Store move data between the caller and virtual memory,
	// charging memory-hierarchy costs and honouring page permissions.
	Load(va hw.VAddr, buf []byte) Errno
	Store(va hw.VAddr, buf []byte) Errno

	// Word and string conveniences over Load/Store (big-endian, like the
	// PowerPC). Futex words are 32-bit.
	LoadU32(va hw.VAddr) (uint32, Errno)
	StoreU32(va hw.VAddr, v uint32) Errno
	LoadU64(va hw.VAddr) (uint64, Errno)
	StoreU64(va hw.VAddr, v uint64) Errno
	LoadCString(va hw.VAddr, max int) (string, Errno)
	StoreCString(va hw.VAddr, s string) Errno

	// Atomic read-modify-write primitives (lwarx/stwcx on the real
	// part): the read and write happen with no intervening scheduling
	// point, and the memory-hierarchy cost is charged afterwards.
	CASU32(va hw.VAddr, old, new uint32) (bool, Errno)
	SwapU32(va hw.VAddr, v uint32) (uint32, Errno)
	AddU32(va hw.VAddr, delta uint32) (uint32, Errno)

	// Touch charges the cost of accessing [va, va+size) without moving
	// data; compute kernels use it to model their access patterns.
	Touch(va hw.VAddr, size uint32, write bool) Errno

	// VtoP resolves a virtual buffer to physical ranges. Under CNK this
	// is a user-space query of the static map (free); under an FWK it is
	// a pinning syscall with per-page cost.
	VtoP(va hw.VAddr, size uint64) ([]PhysRange, Errno)

	// RegisterSignal installs a user handler (the typed face of
	// sigaction).
	RegisterSignal(sig Signal, h SigHandler) Errno
}

// JobParams describes a job launch: how many processes share a node, the
// up-front shared-memory size (paper Section VII-B: "CNK requires the user
// to define the size of the shared memory allocation up-front"), and the
// per-thread guard size.
type JobParams struct {
	ProcsPerNode int    // 1 (SMP), 2 (DUAL) or 4 (VN)
	ShmBytes     uint64 // node-wide shared memory region
	GuardBytes   uint64 // stack guard area size (default 4KB)
}

// Mode returns the Blue Gene name for the process count.
func (j JobParams) Mode() string {
	switch j.ProcsPerNode {
	case 1:
		return "SMP"
	case 2:
		return "DUAL"
	case 4:
		return "VN"
	}
	return "custom"
}
