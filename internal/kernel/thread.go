package kernel

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// OS is the kernel-side contract Thread executes against. CNK and the FWK
// each implement it; Thread provides the user-visible Context on top.
type OS interface {
	// Name identifies the kernel ("CNK", "FWK").
	Name() string

	// NextInterrupt returns the next cycle at which the thread's core
	// must take an interrupt (timer tick, pending IPI), or sim.Forever.
	NextInterrupt(t *Thread) sim.Cycles

	// ServiceInterrupt runs interrupt work due for the thread's core at
	// the current time. It charges ISR cycles on the thread's coroutine
	// and may reschedule (park) the thread.
	ServiceInterrupt(t *Thread)

	// Translate resolves va for the thread, charging TLB-miss or
	// page-fault costs. It returns the physical address, the number of
	// bytes valid from va within the mapping, and the page permissions.
	Translate(t *Thread, va hw.VAddr, write bool) (hw.PAddr, uint64, hw.Perm, Errno)

	// Syscall handles a numeric system call.
	Syscall(t *Thread, num Sys, args []uint64) (uint64, Errno)

	// Clone creates a thread (or process) per args.
	Clone(t *Thread, args CloneArgs) (uint32, Errno)

	// VtoP is the physical-ranges query (free under CNK; a pinning
	// syscall under an FWK).
	VtoP(t *Thread, va hw.VAddr, size uint64) ([]PhysRange, Errno)

	// RegisterSignal installs a handler.
	RegisterSignal(t *Thread, sig Signal, h SigHandler) Errno

	// MemEvent handles an exceptional memory event (L1 parity, DAC/guard
	// hit) raised by an access at va.
	MemEvent(t *Thread, ev hw.MemEvent, va hw.VAddr, write bool)

	// SyscallEntryCost is the kernel entry/exit overhead in cycles.
	SyscallEntryCost() sim.Cycles
}

// ThreadState tracks scheduling state.
type ThreadState int

// Thread states.
const (
	ThreadReady ThreadState = iota
	ThreadRunning
	ThreadBlocked
	ThreadExited
)

func (s ThreadState) String() string {
	return [...]string{"ready", "running", "blocked", "exited"}[s]
}

// Thread is one software thread: the kernel-neutral execution context
// bound to a simulation coroutine and (when running) a hardware core.
type Thread struct {
	os   OS
	id   uint32
	pid  uint32
	core *hw.Core
	coro *sim.Coro

	State    ThreadState
	ExitCode int

	// ClearTID is the CLONE_CHILD_CLEARTID address: zeroed and
	// futex-woken when the thread exits (pthread_join relies on it).
	ClearTID hw.VAddr

	// pendingSigs are asynchronous signals awaiting delivery at the next
	// interruption point.
	pendingSigs []SigInfo

	// Work counters.
	ComputeCycles sim.Cycles
	Syscalls      uint64
}

// NewThread wires a thread; the owning kernel sets the coroutine and core
// before running it.
func NewThread(os OS, id, pid uint32) *Thread {
	return &Thread{os: os, id: id, pid: pid, State: ThreadReady}
}

// Bind attaches the coroutine and core.
func (t *Thread) Bind(coro *sim.Coro, core *hw.Core) {
	t.coro = coro
	t.core = core
}

// SetCore migrates the thread to a core (FWK load balancing; CNK never
// moves a thread after placement).
func (t *Thread) SetCore(core *hw.Core) { t.core = core }

// Coro exposes the coroutine to the owning kernel.
func (t *Thread) Coro() *sim.Coro { return t.coro }

// HWCore exposes the bound core to the owning kernel.
func (t *Thread) HWCore() *hw.Core { return t.core }

// OS returns the owning kernel.
func (t *Thread) OS() OS { return t.os }

// PostSignal queues an asynchronous signal and pokes the thread.
func (t *Thread) PostSignal(info SigInfo) {
	t.pendingSigs = append(t.pendingSigs, info)
	if t.coro != nil {
		t.coro.Wake()
	}
}

// TakePendingSignals drains queued signals (owning-kernel use).
func (t *Thread) TakePendingSignals() []SigInfo {
	s := t.pendingSigs
	t.pendingSigs = nil
	return s
}

// HasPendingSignals reports queued asynchronous signals.
func (t *Thread) HasPendingSignals() bool { return len(t.pendingSigs) > 0 }

// --- Context implementation ---

// PID implements Context.
func (t *Thread) PID() uint32 { return t.pid }

// TID implements Context.
func (t *Thread) TID() uint32 { return t.id }

// CoreID implements Context.
func (t *Thread) CoreID() int { return t.core.ID }

// Now implements Context.
func (t *Thread) Now() sim.Cycles { return t.coro.Now() }

// Compute implements Context: it burns c cycles of work, taking interrupts
// at the points the kernel dictates. Cycles consumed by interrupt service
// or preemption do not count toward the requested work — which is exactly
// why FWQ observes them as noise.
func (t *Thread) Compute(c sim.Cycles) {
	remaining := c
	for remaining > 0 {
		now := t.coro.Now()
		next := t.os.NextInterrupt(t)
		if next <= now {
			t.os.ServiceInterrupt(t)
			continue
		}
		slice := remaining
		if next != sim.Forever && next-now < slice {
			slice = next - now
		}
		start := t.coro.Now()
		reason := t.coro.Park(slice)
		ran := t.coro.Now() - start
		if ran > remaining {
			ran = remaining
		}
		remaining -= ran
		t.ComputeCycles += ran
		if reason == sim.WakeSignal {
			t.os.ServiceInterrupt(t)
		}
	}
}

// countSyscall charges the kernel entry against the chip's UPC unit. It
// lives here, on the kernel-neutral path, so both CNK and the FWK are
// counted once per entry with no per-kernel bookkeeping.
func (t *Thread) countSyscall(num Sys) {
	if t.core == nil || t.core.Chip == nil {
		return
	}
	u := t.core.Chip.UPC
	u.Syscall(t.core.ID, int(num))
	u.Trace.Emit(upc.EvSyscall, t.core.ID, t.coro.Now(), uint64(num))
}

// Syscall implements Context.
func (t *Thread) Syscall(num Sys, args ...uint64) (uint64, Errno) {
	t.Syscalls++
	t.countSyscall(num)
	t.coro.Sleep(t.os.SyscallEntryCost())
	ret, errno := t.os.Syscall(t, num, args)
	return ret, errno
}

// Clone implements Context.
func (t *Thread) Clone(args CloneArgs) (uint32, Errno) {
	t.Syscalls++
	t.countSyscall(SysClone)
	t.coro.Sleep(t.os.SyscallEntryCost())
	return t.os.Clone(t, args)
}

// VtoP implements Context.
func (t *Thread) VtoP(va hw.VAddr, size uint64) ([]PhysRange, Errno) {
	return t.os.VtoP(t, va, size)
}

// RegisterSignal implements Context.
func (t *Thread) RegisterSignal(sig Signal, h SigHandler) Errno {
	t.Syscalls++
	t.countSyscall(SysSigaction)
	t.coro.Sleep(t.os.SyscallEntryCost())
	return t.os.RegisterSignal(t, sig, h)
}

// access performs the translation, permission, guard, and cache work for
// one memory operation, chunked by mapping. move, when non-nil, copies
// bytes between buf and physical memory.
func (t *Thread) access(va hw.VAddr, size uint32, write bool, buf []byte) Errno {
	if size == 0 {
		return OK
	}
	chip := t.core.Chip
	off := uint32(0)
	for off < size {
		cur := va + hw.VAddr(off)
		// The DAC watch precedes translation: it matches on virtual
		// addresses (guard-page mechanism, paper Fig 4).
		if write && t.core.CheckDAC(t.pid, cur) {
			t.os.MemEvent(t, hw.EvNone, cur, write)
			return EFAULT
		}
		pa, contig, perm, errno := t.os.Translate(t, cur, write)
		if errno != OK {
			return errno
		}
		want := hw.PermRead
		if write {
			want = hw.PermWrite
		}
		if !perm.Has(want) {
			t.os.MemEvent(t, hw.EvNone, cur, write)
			return EFAULT
		}
		n := size - off
		if uint64(n) > contig {
			n = uint32(contig)
		}
		cost, ev := chip.Cache.Access(t.core.ID, pa, n, write, t.coro.Now())
		if cost > 0 {
			t.coro.Sleep(cost)
		}
		if ev != hw.EvNone {
			t.os.MemEvent(t, ev, cur, write)
		}
		if buf != nil {
			if write {
				chip.Mem.Write(pa, buf[off:off+n])
			} else {
				chip.Mem.Read(pa, buf[off:off+n])
			}
		}
		off += n
	}
	return OK
}

// StoreKernel is a kernel-mode store: it bypasses the DAC watch and page
// permissions (kernel accesses are not subject to user watchpoints on the
// real part). Used for CLONE_CHILD_CLEARTID and similar kernel-side
// writes. Unmapped addresses fail silently with EFAULT.
func (t *Thread) StoreKernel(va hw.VAddr, buf []byte) Errno {
	off := 0
	for off < len(buf) {
		pa, contig, _, errno := t.os.Translate(t, va+hw.VAddr(off), true)
		if errno != OK {
			return errno
		}
		n := len(buf) - off
		if uint64(n) > contig {
			n = int(contig)
		}
		t.core.Chip.Mem.Write(pa, buf[off:off+n])
		off += n
	}
	return OK
}

// Load implements Context.
func (t *Thread) Load(va hw.VAddr, buf []byte) Errno {
	return t.access(va, uint32(len(buf)), false, buf)
}

// Store implements Context.
func (t *Thread) Store(va hw.VAddr, buf []byte) Errno {
	return t.access(va, uint32(len(buf)), true, buf)
}

// Touch implements Context.
func (t *Thread) Touch(va hw.VAddr, size uint32, write bool) Errno {
	return t.access(va, size, write, nil)
}

// LoadU64 is a convenience big-endian load.
func (t *Thread) LoadU64(va hw.VAddr) (uint64, Errno) {
	var b [8]byte
	if errno := t.Load(va, b[:]); errno != OK {
		return 0, errno
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v, OK
}

// StoreU64 is a convenience big-endian store.
func (t *Thread) StoreU64(va hw.VAddr, v uint64) Errno {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return t.Store(va, b[:])
}

// LoadU32 loads a big-endian 32-bit word (futex words are 32-bit).
func (t *Thread) LoadU32(va hw.VAddr) (uint32, Errno) {
	var b [4]byte
	if errno := t.Load(va, b[:]); errno != OK {
		return 0, errno
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), OK
}

// StoreU32 stores a big-endian 32-bit word.
func (t *Thread) StoreU32(va hw.VAddr, v uint32) Errno {
	b := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	return t.Store(va, b[:])
}

// LoadCString reads a NUL-terminated string (bounded).
func (t *Thread) LoadCString(va hw.VAddr, max int) (string, Errno) {
	var out []byte
	for len(out) < max {
		var b [1]byte
		if errno := t.Load(va+hw.VAddr(len(out)), b[:]); errno != OK {
			return "", errno
		}
		if b[0] == 0 {
			return string(out), OK
		}
		out = append(out, b[0])
	}
	return "", ENAMETOOLONG
}

// StoreCString writes a NUL-terminated string.
func (t *Thread) StoreCString(va hw.VAddr, s string) Errno {
	return t.Store(va, append([]byte(s), 0))
}

// atomicRMW performs fn on the 32-bit word at va as one indivisible step:
// translation, read, and conditional write occur with no scheduling point
// in between, then the cache cost is charged. This models lwarx/stwcx.
func (t *Thread) atomicRMW(va hw.VAddr, fn func(cur uint32) (uint32, bool)) (uint32, Errno) {
	if write := true; t.core.CheckDAC(t.pid, va) && write {
		t.os.MemEvent(t, hw.EvNone, va, true)
		return 0, EFAULT
	}
	pa, _, perm, errno := t.os.Translate(t, va, true)
	if errno != OK {
		return 0, errno
	}
	if !perm.Has(hw.PermRW) {
		t.os.MemEvent(t, hw.EvNone, va, true)
		return 0, EFAULT
	}
	chip := t.core.Chip
	var b [4]byte
	chip.Mem.Read(pa, b[:])
	cur := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	nv, doWrite := fn(cur)
	if doWrite {
		b = [4]byte{byte(nv >> 24), byte(nv >> 16), byte(nv >> 8), byte(nv)}
		chip.Mem.Write(pa, b[:])
	}
	cost, ev := chip.Cache.Access(t.core.ID, pa, 4, doWrite, t.coro.Now())
	t.coro.Sleep(cost + 8) // reservation pair cost
	if ev != hw.EvNone {
		t.os.MemEvent(t, ev, va, true)
	}
	return cur, OK
}

// CASU32 implements Context: atomic compare-and-swap.
func (t *Thread) CASU32(va hw.VAddr, old, new uint32) (bool, Errno) {
	cur, errno := t.atomicRMW(va, func(c uint32) (uint32, bool) {
		return new, c == old
	})
	return errno == OK && cur == old, errno
}

// SwapU32 implements Context: atomic exchange.
func (t *Thread) SwapU32(va hw.VAddr, v uint32) (uint32, Errno) {
	return t.atomicRMW(va, func(uint32) (uint32, bool) { return v, true })
}

// AddU32 implements Context: atomic add, returning the NEW value.
func (t *Thread) AddU32(va hw.VAddr, delta uint32) (uint32, Errno) {
	cur, errno := t.atomicRMW(va, func(c uint32) (uint32, bool) { return c + delta, true })
	return cur + delta, errno
}

func (t *Thread) String() string {
	return fmt.Sprintf("%s pid=%d tid=%d", t.os.Name(), t.pid, t.id)
}

// Statically assert Thread satisfies Context.
var _ Context = (*Thread)(nil)

// SignalTable is the per-process registered-handler table.
type SignalTable struct {
	handlers map[Signal]SigHandler
}

// Register installs h for sig.
func (s *SignalTable) Register(sig Signal, h SigHandler) {
	if s.handlers == nil {
		s.handlers = make(map[Signal]SigHandler)
	}
	s.handlers[sig] = h
}

// Lookup returns the handler for sig.
func (s *SignalTable) Lookup(sig Signal) (SigHandler, bool) {
	h, ok := s.handlers[sig]
	return h, ok
}
