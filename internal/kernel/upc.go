package kernel

import "bgcnk/internal/upc"

// The UPC per-syscall table must have room for every syscall number.
// This fails to compile if NumSys outgrows upc.MaxSyscalls.
var _ [upc.MaxSyscalls - int(NumSys)]struct{}

func init() {
	// upc cannot import kernel (hw sits between them), so it renders
	// syscall numbers through this hook.
	upc.SyscallNamer = func(num int) string { return Sys(num).String() }
}
