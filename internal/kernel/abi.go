package kernel

// Sys is a system call number.
type Sys int

// System calls. The set mirrors what the paper reports CNK needed: the
// file-I/O calls it function-ships (Section IV-A), the small set NPTL and
// ld.so require (clone, futex, set_tid_address, sigaction, mmap with
// MAP_COPY, mprotect, brk, uname — Section IV-B), and the CNK extensions
// (persistent memory, Section IV-D). The FWK implements the same numbers
// plus fork/exec, which CNK deliberately lacks (Section VII-B).
const (
	SysRead Sys = iota
	SysWrite
	SysOpen
	SysClose
	SysLseek
	SysStat
	SysFstat
	SysUnlink
	SysRename
	SysMkdir
	SysRmdir
	SysDup
	SysGetcwd
	SysChdir
	SysTruncate
	SysReaddir

	SysBrk
	SysMmap
	SysMunmap
	SysMprotect
	SysShmGet // query the preconfigured shared-memory region

	SysClone
	SysFutex
	SysSetTidAddress
	SysSigaction
	SysSigreturn
	SysYield
	SysExit
	SysGetpid
	SysGettid
	SysUname
	SysGettimeofday

	SysFork // FWK only: CNK returns ENOSYS (paper: "MPI cannot spawn dynamic tasks")
	SysExec // FWK only

	SysPersistOpen // CNK extension: named persistent memory (Section IV-D)

	SysFsync // flush a file's dirty buffer-cache blocks to stable storage

	NumSys
)

var sysNames = [...]string{
	"read", "write", "open", "close", "lseek", "stat", "fstat", "unlink",
	"rename", "mkdir", "rmdir", "dup", "getcwd", "chdir", "truncate",
	"readdir", "brk", "mmap", "munmap", "mprotect", "shmget", "clone",
	"futex", "set_tid_address", "sigaction", "sigreturn", "yield", "exit",
	"getpid", "gettid", "uname", "gettimeofday", "fork", "exec",
	"persist_open", "fsync",
}

func (s Sys) String() string {
	if int(s) >= 0 && int(s) < len(sysNames) {
		return sysNames[s]
	}
	return "sys(" + itoa(int(s)) + ")"
}

// IsFileIO reports whether the call operates on the filesystem and is
// therefore function-shipped by CNK to its I/O node (paper Fig 2).
func (s Sys) IsFileIO() bool {
	switch s {
	case SysRead, SysWrite, SysOpen, SysClose, SysLseek, SysStat, SysFstat,
		SysUnlink, SysRename, SysMkdir, SysRmdir, SysDup, SysGetcwd,
		SysChdir, SysTruncate, SysReaddir, SysFsync:
		return true
	}
	return false
}

// Clone flags. glibc's NPTL uses exactly this static combination for
// pthread_create; CNK validates the flags against it and rejects anything
// else (Section IV-B1).
const (
	CloneVM            uint64 = 0x00000100
	CloneFS            uint64 = 0x00000200
	CloneFiles         uint64 = 0x00000400
	CloneSighand       uint64 = 0x00000800
	CloneThread        uint64 = 0x00010000
	CloneSysvsem       uint64 = 0x00040000
	CloneSettls        uint64 = 0x00080000
	CloneParentSettid  uint64 = 0x00100000
	CloneChildCleartid uint64 = 0x00200000
)

// NPTLCloneFlags is the static flag set glibc passes to clone for
// pthread_create.
const NPTLCloneFlags = CloneVM | CloneFS | CloneFiles | CloneSighand |
	CloneThread | CloneSysvsem | CloneSettls | CloneParentSettid |
	CloneChildCleartid

// Futex operations.
const (
	FutexWait uint64 = 0
	FutexWake uint64 = 1
)

// Mmap flags (subset).
const (
	MapPrivate   uint64 = 0x02
	MapFixed     uint64 = 0x10
	MapAnonymous uint64 = 0x20
	MapCopy      uint64 = 0x8000 // demanded by ld.so (Section IV-B2)
	MapShared    uint64 = 0x01
)

// Mmap prot bits (match hw.Perm bit order for convenience).
const (
	ProtRead  uint64 = 1
	ProtWrite uint64 = 2
	ProtExec  uint64 = 4
)

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Open flags (subset).
const (
	ORdonly uint64 = 0x0
	OWronly uint64 = 0x1
	ORdwr   uint64 = 0x2
	OCreat  uint64 = 0x40
	OExcl   uint64 = 0x80
	OTrunc  uint64 = 0x200
	OAppend uint64 = 0x400
)

// Signal numbers (subset).
type Signal int

// Signals.
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGSEGV Signal = 11
	SIGBUS  Signal = 7 // L1 parity recovery is delivered as SIGBUS-with-info
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
)

func (s Signal) String() string {
	switch s {
	case SIGHUP:
		return "SIGHUP"
	case SIGINT:
		return "SIGINT"
	case SIGKILL:
		return "SIGKILL"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGBUS:
		return "SIGBUS"
	case SIGUSR1:
		return "SIGUSR1"
	case SIGUSR2:
		return "SIGUSR2"
	case SIGTERM:
		return "SIGTERM"
	}
	return "SIG(" + itoa(int(s)) + ")"
}

// UnameVersion is the kernel version CNK reports so glibc concludes the
// kernel supports NPTL (paper Section IV-B1: "we set CNK's version field
// in uname to 2.6.19.2").
const UnameVersion = "2.6.19.2"
