package kernel

import "testing"

func TestErrnoStrings(t *testing.T) {
	cases := map[Errno]string{
		OK: "OK", ENOENT: "ENOENT", EINVAL: "EINVAL", ENOSYS: "ENOSYS",
		Errno(999): "Errno(999)",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
	if ENOENT.Error() != "ENOENT" {
		t.Fatal("Error() form")
	}
}

func TestSysNames(t *testing.T) {
	if SysRead.String() != "read" || SysPersistOpen.String() != "persist_open" {
		t.Fatal("syscall names")
	}
	if Sys(200).String() != "sys(200)" {
		t.Fatal("unknown syscall name")
	}
	if int(NumSys) != len(sysNames) {
		t.Fatalf("sysNames has %d entries for %d syscalls", len(sysNames), NumSys)
	}
}

func TestIsFileIO(t *testing.T) {
	for _, s := range []Sys{SysRead, SysWrite, SysOpen, SysStat, SysReaddir, SysDup} {
		if !s.IsFileIO() {
			t.Errorf("%v should be file I/O (function-shipped)", s)
		}
	}
	for _, s := range []Sys{SysBrk, SysMmap, SysFutex, SysClone, SysExit, SysPersistOpen} {
		if s.IsFileIO() {
			t.Errorf("%v must be handled locally by CNK", s)
		}
	}
}

func TestNPTLCloneFlags(t *testing.T) {
	// The static set glibc uses must include thread-ness and TID plumbing.
	for _, f := range []uint64{CloneVM, CloneThread, CloneSettls, CloneParentSettid, CloneChildCleartid} {
		if NPTLCloneFlags&f == 0 {
			t.Errorf("NPTL flags missing %#x", f)
		}
	}
}

func TestSignalStrings(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" || SIGBUS.String() != "SIGBUS" {
		t.Fatal("signal names")
	}
	if Signal(99).String() != "SIG(99)" {
		t.Fatal("unknown signal name")
	}
}

func TestJobParamsMode(t *testing.T) {
	cases := map[int]string{1: "SMP", 2: "DUAL", 4: "VN", 3: "custom"}
	for n, want := range cases {
		if got := (JobParams{ProcsPerNode: n}).Mode(); got != want {
			t.Errorf("%d procs = %q, want %q", n, got, want)
		}
	}
}

func TestSignalTable(t *testing.T) {
	var st SignalTable
	if _, ok := st.Lookup(SIGUSR1); ok {
		t.Fatal("empty table lookup")
	}
	called := false
	st.Register(SIGUSR1, func(Context, SigInfo) { called = true })
	h, ok := st.Lookup(SIGUSR1)
	if !ok {
		t.Fatal("registered handler missing")
	}
	h(nil, SigInfo{})
	if !called {
		t.Fatal("handler not invoked")
	}
}

func TestThreadStateString(t *testing.T) {
	if ThreadReady.String() != "ready" || ThreadExited.String() != "exited" {
		t.Fatal("state strings")
	}
}
