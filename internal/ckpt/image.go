// Package ckpt defines the checkpoint image: the versioned, strictly
// validated wire format a job's state is serialized into at a barrier
// quiesce point and restored from after an uncorrectable fault.
//
// The paper's reliability story (Section V-B) leans on exactly this
// artifact: the 2007 Gordon Bell sustained-petaflop run survived hardware
// faults by restarting from checkpoints, and CNK's deterministic,
// statically mapped processes are what made the snapshot cheap — the
// kernel knows every region of a process a priori, so a checkpoint is a
// single pass over a handful of large contiguous extents. An FWK has to
// walk scattered 4 KB pages, flush its page cache and quiesce daemons
// first; the cost difference is measured by the "mtbf" experiment.
//
// An image records, per node: the process's memory regions (descriptors
// plus digests — the simulation models the traffic, not the bytes), the
// thread register state, the node's full UPC counter block, and the open
// CIOD file table mirrored by the node's ioproxy. Decoding is strict:
// bad magic or version, truncation, hostile length prefixes, unsorted or
// overlapping regions, and trailing garbage are all rejected, and any
// accepted input re-marshals to itself (the canonical property
// FuzzCheckpointImage enforces).
package ckpt

import (
	"fmt"
	"hash/fnv"

	"bgcnk/internal/upc"
)

// Wire-format constants. Caps bound what a hostile length prefix can make
// the decoder allocate.
const (
	imageMagic   = 0x4247434b // "BGCK"
	imageVersion = 1

	// MaxNodes bounds the per-image node count.
	MaxNodes = 4096
	// MaxRegions bounds the per-node region count.
	MaxRegions = 4096
	// MaxThreads bounds the per-node thread count.
	MaxThreads = 4096
	// MaxFiles bounds the per-node open-file count (mirrors fs.MaxFDs).
	MaxFiles = 256
	// MaxPath bounds an open file's recorded path length.
	MaxPath = 4096
)

// Image is one whole-job checkpoint: the state of every node of the
// partition at one barrier quiesce point.
type Image struct {
	JobID int32
	Epoch uint32 // exchange rounds completed when the snapshot was taken
	Kind  uint8  // kernel kind (machine.KernelKind)
	Nodes []NodeState
}

// NodeState is one node's contribution to the image.
type NodeState struct {
	Node     int32
	Regions  []Region   // sorted by VBase, non-overlapping
	Threads  []RegState // sorted by TID
	Counters upc.Snapshot
	Files    []FileState // sorted by FD
}

// Region describes one checkpointed memory extent. Under CNK these are
// the few large statically mapped regions; under an FWK they are runs of
// contiguous resident 4 KB pages (typically many, typically short — the
// contiguity story of Table II, visible in the image itself).
type Region struct {
	VBase  uint64
	Size   uint64
	Digest uint64
}

// RegState is one thread's saved register state. The simulation does not
// execute real instructions, so PC stands in for the resume point (the
// epoch) and SP for the stack anchor.
type RegState struct {
	TID uint32
	PC  uint64
	SP  uint64
}

// FileState is one entry of the open CIOD file table: enough to reopen
// the file and seek back to the mirrored offset on restart.
type FileState struct {
	FD     int32
	Offset uint64
	Flags  uint64
	Path   string
}

// RegionDigest is the digest recorded for a region's (modelled) contents.
func RegionDigest(name string, vbase, size uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%#x|%d", name, vbase, size)
	return h.Sum64()
}

// Marshal encodes the image.
func (img *Image) Marshal() []byte {
	e := &cenc{}
	e.u32(imageMagic)
	e.u8(imageVersion)
	e.u32(uint32(img.JobID))
	e.u32(img.Epoch)
	e.u8(img.Kind)
	// Counter-block dimensions are part of the format: an image written
	// by a kernel with a different UPC layout must not decode silently.
	e.u8(upc.NumSlots)
	e.u8(uint8(upc.NumCounters))
	e.u8(upc.MaxSyscalls)
	e.u32(uint32(len(img.Nodes)))
	for i := range img.Nodes {
		n := &img.Nodes[i]
		e.u32(uint32(n.Node))
		e.u32(uint32(len(n.Regions)))
		for _, r := range n.Regions {
			e.u64(r.VBase)
			e.u64(r.Size)
			e.u64(r.Digest)
		}
		e.u32(uint32(len(n.Threads)))
		for _, t := range n.Threads {
			e.u32(t.TID)
			e.u64(t.PC)
			e.u64(t.SP)
		}
		for sl := 0; sl < upc.NumSlots; sl++ {
			for c := 0; c < int(upc.NumCounters); c++ {
				e.u64(n.Counters.Vals[sl][c])
			}
			for s := 0; s < upc.MaxSyscalls; s++ {
				e.u64(n.Counters.Sys[sl][s])
			}
		}
		e.u32(uint32(len(n.Files)))
		for _, f := range n.Files {
			e.u32(uint32(f.FD))
			e.u64(f.Offset)
			e.u64(f.Flags)
			e.str(f.Path)
		}
	}
	return e.b
}

// Unmarshal decodes and validates a checkpoint image. It rejects bad
// magic, unknown versions, mismatched counter dimensions, every form of
// truncation and length-prefix abuse, unsorted or overlapping regions,
// unsorted threads or files, and trailing bytes. Any accepted input
// re-marshals to the identical byte string.
func Unmarshal(b []byte) (*Image, error) {
	d := &cdec{b: b}
	if m := d.u32(); d.err == nil && m != imageMagic {
		return nil, fmt.Errorf("ckpt: bad image magic %#x", m)
	}
	if v := d.u8(); d.err == nil && v != imageVersion {
		return nil, fmt.Errorf("ckpt: unsupported image version %d", v)
	}
	img := &Image{}
	img.JobID = int32(d.u32())
	img.Epoch = d.u32()
	img.Kind = d.u8()
	slots, counters, syscalls := d.u8(), d.u8(), d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if slots != upc.NumSlots || counters != uint8(upc.NumCounters) || syscalls != upc.MaxSyscalls {
		return nil, fmt.Errorf("ckpt: counter dimensions %d/%d/%d do not match this kernel (%d/%d/%d)",
			slots, counters, syscalls, upc.NumSlots, upc.NumCounters, upc.MaxSyscalls)
	}
	nodes := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if nodes > MaxNodes {
		return nil, fmt.Errorf("ckpt: image claims %d nodes (max %d)", nodes, MaxNodes)
	}
	// A node costs at least 9 bytes on the wire even when empty; bound the
	// allocation by what the buffer could actually hold.
	if nodes > len(b) {
		return nil, fmt.Errorf("ckpt: image claims %d nodes in %d bytes", nodes, len(b))
	}
	img.Nodes = make([]NodeState, 0, nodes)
	for i := 0; i < nodes; i++ {
		n, err := d.node()
		if err != nil {
			return nil, err
		}
		if i > 0 && n.Node <= img.Nodes[i-1].Node {
			return nil, fmt.Errorf("ckpt: node %d out of order after node %d", n.Node, img.Nodes[i-1].Node)
		}
		img.Nodes = append(img.Nodes, n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after image", len(d.b)-d.off)
	}
	return img, nil
}

func (d *cdec) node() (NodeState, error) {
	var n NodeState
	n.Node = int32(d.u32())
	regions := int(d.u32())
	if d.err != nil {
		return n, d.err
	}
	if regions > MaxRegions {
		return n, fmt.Errorf("ckpt: node %d claims %d regions (max %d)", n.Node, regions, MaxRegions)
	}
	if regions*24 > len(d.b)-d.off {
		return n, fmt.Errorf("ckpt: node %d region table truncated", n.Node)
	}
	n.Regions = make([]Region, 0, regions)
	for r := 0; r < regions; r++ {
		reg := Region{VBase: d.u64(), Size: d.u64(), Digest: d.u64()}
		if d.err != nil {
			return n, d.err
		}
		if reg.Size == 0 {
			return n, fmt.Errorf("ckpt: node %d region %d has zero size", n.Node, r)
		}
		if reg.VBase+reg.Size < reg.VBase {
			return n, fmt.Errorf("ckpt: node %d region %d wraps the address space", n.Node, r)
		}
		if r > 0 {
			prev := n.Regions[r-1]
			if reg.VBase < prev.VBase+prev.Size {
				return n, fmt.Errorf("ckpt: node %d region %d overlaps or precedes region %d", n.Node, r, r-1)
			}
		}
		n.Regions = append(n.Regions, reg)
	}
	threads := int(d.u32())
	if d.err != nil {
		return n, d.err
	}
	if threads > MaxThreads {
		return n, fmt.Errorf("ckpt: node %d claims %d threads (max %d)", n.Node, threads, MaxThreads)
	}
	if threads*20 > len(d.b)-d.off {
		return n, fmt.Errorf("ckpt: node %d thread table truncated", n.Node)
	}
	n.Threads = make([]RegState, 0, threads)
	for t := 0; t < threads; t++ {
		ts := RegState{TID: d.u32(), PC: d.u64(), SP: d.u64()}
		if d.err != nil {
			return n, d.err
		}
		if t > 0 && ts.TID <= n.Threads[t-1].TID {
			return n, fmt.Errorf("ckpt: node %d thread %d out of order", n.Node, t)
		}
		n.Threads = append(n.Threads, ts)
	}
	for sl := 0; sl < upc.NumSlots; sl++ {
		for c := 0; c < int(upc.NumCounters); c++ {
			n.Counters.Vals[sl][c] = d.u64()
		}
		for s := 0; s < upc.MaxSyscalls; s++ {
			n.Counters.Sys[sl][s] = d.u64()
		}
	}
	files := int(d.u32())
	if d.err != nil {
		return n, d.err
	}
	if files > MaxFiles {
		return n, fmt.Errorf("ckpt: node %d claims %d open files (max %d)", n.Node, files, MaxFiles)
	}
	if files*24 > len(d.b)-d.off {
		return n, fmt.Errorf("ckpt: node %d file table truncated", n.Node)
	}
	n.Files = make([]FileState, 0, files)
	for f := 0; f < files; f++ {
		fe := FileState{FD: int32(d.u32()), Offset: d.u64(), Flags: d.u64(), Path: d.str()}
		if d.err != nil {
			return n, d.err
		}
		if fe.FD < 0 {
			return n, fmt.Errorf("ckpt: node %d file %d has negative descriptor", n.Node, f)
		}
		if f > 0 && fe.FD <= n.Files[f-1].FD {
			return n, fmt.Errorf("ckpt: node %d file %d out of order", n.Node, f)
		}
		n.Files = append(n.Files, fe)
	}
	return n, d.err
}

// WorkSignature digests the counters that are a pure function of the
// application's logical execution: per-number syscall counts, function
// ships, network packets and bytes, DMA descriptors, combining-tree
// operations, futex traffic, and page faults. Counters that legitimately
// differ across a checkpoint/restart cycle — cache hits and misses, TLB
// refills, refresh stalls, timer ticks, daemon runs, retries and RAS
// reactions, all of which depend on microarchitectural state or absolute
// time that a restart does not preserve — are excluded. A job that
// restarts N times must WorkSignature-equal its fault-free run; that is
// the restart-determinism property the resilience tests gate.
func WorkSignature(s upc.Snapshot) uint64 {
	h := fnv.New64a()
	for _, c := range workCounters {
		for sl := 0; sl < upc.NumSlots; sl++ {
			fmt.Fprintf(h, "%d|%d|%d;", c, sl, s.Vals[sl][c])
		}
	}
	for sl := 0; sl < upc.NumSlots; sl++ {
		for n := 0; n < upc.MaxSyscalls; n++ {
			fmt.Fprintf(h, "s%d|%d|%d;", sl, n, s.Sys[sl][n])
		}
	}
	return h.Sum64()
}

var workCounters = []upc.Counter{
	upc.PageFault, upc.SyscallTotal, upc.FunctionShip,
	upc.DMADescriptor, upc.TorusPacket, upc.TorusBytes,
	upc.CollPacket, upc.CollBytes, upc.CombineOp,
	upc.FutexWait, upc.FutexWake,
}

type cenc struct{ b []byte }

func (e *cenc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *cenc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *cenc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *cenc) str(s string) {
	if len(s) > MaxPath {
		s = s[:MaxPath]
	}
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type cdec struct {
	b   []byte
	off int
	err error
}

func (d *cdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: truncated image at offset %d", d.off)
	}
}

func (d *cdec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *cdec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *cdec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *cdec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	// Bound the allocation by both the path cap and the bytes actually
	// present (a hostile length must not drive a huge allocation).
	if n > MaxPath || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
