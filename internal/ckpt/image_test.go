package ckpt

import (
	"strings"
	"testing"

	"bgcnk/internal/upc"
)

// testImage is a representative two-node image: CNK-shaped regions on one
// node, FWK-shaped page runs on the other, threads, counters and files.
func testImage() *Image {
	var c1, c2 upc.Snapshot
	c1.Vals[0][upc.SyscallTotal] = 17
	c1.Sys[0][4] = 9
	c2.Vals[1][upc.TorusPacket] = 123456
	return &Image{
		JobID: 7,
		Epoch: 3,
		Kind:  1,
		Nodes: []NodeState{
			{
				Node: 0,
				Regions: []Region{
					{VBase: 0x0100_0000, Size: 8 << 20, Digest: RegionDigest("text", 0x0100_0000, 8<<20)},
					{VBase: 0x0900_0000, Size: 64 << 20, Digest: RegionDigest("heap", 0x0900_0000, 64<<20)},
				},
				Threads:  []RegState{{TID: 1, PC: 3, SP: 0x0d00_0000}, {TID: 2, PC: 3, SP: 0x0cf0_0000}},
				Counters: c1,
				Files: []FileState{
					{FD: 0, Offset: 0, Flags: 0, Path: "/dev/console"},
					{FD: 3, Offset: 4096, Flags: 1, Path: "/gpfs/out.dat"},
				},
			},
			{
				Node: 1,
				Regions: []Region{
					{VBase: 0x1000, Size: 4096, Digest: RegionDigest("fwk", 0x1000, 4096)},
					{VBase: 0x3000, Size: 8192, Digest: RegionDigest("fwk", 0x3000, 8192)},
				},
				Threads:  []RegState{{TID: 1, PC: 3, SP: 0x7fff_f000}},
				Counters: c2,
			},
		},
	}
}

func imagesEqual(a, b *Image) bool {
	if a.JobID != b.JobID || a.Epoch != b.Epoch || a.Kind != b.Kind || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.Node != y.Node || x.Counters != y.Counters ||
			len(x.Regions) != len(y.Regions) || len(x.Threads) != len(y.Threads) ||
			len(x.Files) != len(y.Files) {
			return false
		}
		for j := range x.Regions {
			if x.Regions[j] != y.Regions[j] {
				return false
			}
		}
		for j := range x.Threads {
			if x.Threads[j] != y.Threads[j] {
				return false
			}
		}
		for j := range x.Files {
			if x.Files[j] != y.Files[j] {
				return false
			}
		}
	}
	return true
}

func TestImageRoundTrip(t *testing.T) {
	img := testImage()
	wire := img.Marshal()
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, got) {
		t.Fatalf("round trip changed image:\n%+v\nvs\n%+v", img, got)
	}
	// Canonical: re-marshal is byte-identical.
	if string(got.Marshal()) != string(wire) {
		t.Fatal("re-marshal differs from original wire bytes")
	}

	// The empty image round-trips too.
	empty := &Image{}
	got, err = Unmarshal(empty.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(empty, got) {
		t.Fatalf("empty image round trip: %+v", got)
	}
}

func TestImageRejects(t *testing.T) {
	wire := testImage().Marshal()

	for cut := 0; cut < len(wire); cut++ {
		if _, err := Unmarshal(wire[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := Unmarshal(append(append([]byte{}, wire...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte{}, wire...))
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0x01; return b })
	mutate("unknown version", func(b []byte) []byte { b[4] = imageVersion + 1; return b })
	mutate("wrong slot dimension", func(b []byte) []byte { b[14] = upc.NumSlots + 1; return b })
	// Offset 17..20 is the node count; a hostile value must be rejected
	// before any proportional allocation.
	mutate("hostile node count", func(b []byte) []byte {
		b[17], b[18], b[19], b[20] = 0xff, 0xff, 0xff, 0x7f
		return b
	})
	// Offset 25..28 is node 0's region count.
	mutate("hostile region count", func(b []byte) []byte {
		b[25], b[26], b[27], b[28] = 0xff, 0xff, 0xff, 0x7f
		return b
	})

	reject := func(name string, img *Image) {
		if _, err := Unmarshal(img.Marshal()); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	bad := testImage()
	bad.Nodes[0].Regions[1].VBase = bad.Nodes[0].Regions[0].VBase + 1 // inside region 0
	reject("overlapping regions", bad)

	bad = testImage()
	bad.Nodes[0].Regions[0], bad.Nodes[0].Regions[1] = bad.Nodes[0].Regions[1], bad.Nodes[0].Regions[0]
	reject("unsorted regions", bad)

	bad = testImage()
	bad.Nodes[0].Regions[0].Size = 0
	reject("zero-size region", bad)

	bad = testImage()
	bad.Nodes[0].Regions[1].VBase = ^uint64(0) - 16
	reject("address-wrapping region", bad)

	bad = testImage()
	bad.Nodes[0].Threads[1].TID = bad.Nodes[0].Threads[0].TID
	reject("duplicate thread IDs", bad)

	bad = testImage()
	bad.Nodes[0].Files[1].FD = bad.Nodes[0].Files[0].FD
	reject("duplicate descriptors", bad)

	bad = testImage()
	bad.Nodes[1].Node = bad.Nodes[0].Node
	reject("duplicate nodes", bad)

	bad = testImage()
	bad.Nodes[0].Files[0].FD = -1
	reject("negative descriptor", bad)
}

func TestImagePathCap(t *testing.T) {
	img := &Image{Nodes: []NodeState{{
		Node:  0,
		Files: []FileState{{FD: 0, Path: strings.Repeat("p", MaxPath+100)}},
	}}}
	got, err := Unmarshal(img.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes[0].Files[0].Path) != MaxPath {
		t.Errorf("path cap not applied: %d bytes survived", len(got.Nodes[0].Files[0].Path))
	}
}

// TestWorkSignatureSelectivity: the signature must move with work
// counters (syscalls, network traffic, page faults) and must NOT move
// with the counters a restart legitimately perturbs (cache misses, timer
// ticks, RAS reactions, retries).
func TestWorkSignatureSelectivity(t *testing.T) {
	var s upc.Snapshot
	base := WorkSignature(s)

	moved := s
	moved.Vals[0][upc.SyscallTotal]++
	if WorkSignature(moved) == base {
		t.Error("signature ignores SyscallTotal")
	}
	moved = s
	moved.Vals[2][upc.TorusBytes] += 4096
	if WorkSignature(moved) == base {
		t.Error("signature ignores TorusBytes")
	}
	moved = s
	moved.Sys[0][3]++
	if WorkSignature(moved) == base {
		t.Error("signature ignores per-number syscall counts")
	}

	for _, c := range []upc.Counter{
		upc.L1Miss, upc.L3Miss, upc.TLBMiss, upc.RefreshStall, upc.TimerTick,
		upc.DaemonRun, upc.CIODRetry, upc.CIODTimeout,
		upc.RASCorrectable, upc.RASUncorrectable, upc.LinkCRC, upc.LinkRetransmit,
	} {
		jitter := s
		jitter.Vals[0][c] += 1000
		if WorkSignature(jitter) != base {
			t.Errorf("signature moves with restart-variant counter %v", c)
		}
	}
}
