package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzSeedImages are the hand-picked images seeded into the corpus: the
// empty image, the representative two-node image, extreme field values,
// a path at the cap, and a many-region FWK-shaped node.
func fuzzSeedImages() []*Image {
	pages := &Image{Nodes: []NodeState{{Node: 0}}}
	for i := 0; i < 64; i++ {
		vb := uint64(0x1000 + i*0x2000)
		pages.Nodes[0].Regions = append(pages.Nodes[0].Regions,
			Region{VBase: vb, Size: 4096, Digest: RegionDigest("fwk", vb, 4096)})
	}
	return []*Image{
		{},
		testImage(),
		{
			JobID: -1, Epoch: ^uint32(0), Kind: 0xff,
			Nodes: []NodeState{{
				Node:    -2,
				Regions: []Region{{VBase: 0, Size: ^uint64(0), Digest: ^uint64(0)}},
				Threads: []RegState{{TID: ^uint32(0), PC: ^uint64(0), SP: ^uint64(0)}},
				Files:   []FileState{{FD: 0x7fffffff, Offset: ^uint64(0), Flags: ^uint64(0)}},
			}},
		},
		{Nodes: []NodeState{{Node: 0, Files: []FileState{{FD: 1, Path: strings.Repeat("p", MaxPath)}}}}},
		pages,
	}
}

// FuzzCheckpointImage drives the decoder with corrupted, truncated and
// hostile inputs. The invariant on every accepted input is canonicality:
// it re-marshals to exactly the bytes that were accepted, and the
// re-decode yields the same image. Rejections just need to be clean (no
// panic, no huge allocation — length prefixes are validated against the
// bytes actually present before any make()).
func FuzzCheckpointImage(f *testing.F) {
	for _, img := range fuzzSeedImages() {
		wire := img.Marshal()
		f.Add(wire)
		f.Add(wire[:len(wire)-1]) // truncated tail
		f.Add(wire[:len(wire)/2]) // truncated mid-image
	}
	// Length-prefix abuse: huge node and region counts.
	hostile := testImage().Marshal()
	for _, off := range []int{17, 25} {
		b := append([]byte{}, hostile...)
		b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0xff, 0x7f
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("go test fuzz is not a checkpoint"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; the property is about accepted inputs
		}
		wire := img.Marshal()
		if !bytes.Equal(wire, data) {
			t.Fatalf("accepted non-canonical input:\n in  %x\n out %x", data, wire)
		}
		again, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("re-decode of own marshal failed: %v", err)
		}
		if !imagesEqual(img, again) {
			t.Fatal("round trip changed image")
		}
	})
}

// TestWriteCheckpointCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzCheckpointImage. Skipped unless GEN_CORPUS=1; rerun
// after changing the wire format or the seed set.
func TestWriteCheckpointCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the committed fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointImage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seeds := fuzzSeedImages()
	write("seed_empty_image", seeds[0].Marshal())
	write("seed_typical", seeds[1].Marshal())
	write("seed_extremes", seeds[2].Marshal())
	write("seed_maxpath", seeds[3].Marshal())
	write("seed_pageruns", seeds[4].Marshal())
	typical := seeds[1].Marshal()
	write("seed_trunc_tail", typical[:len(typical)-1])
	write("seed_trunc_half", typical[:len(typical)/2])
	hostileNodes := append([]byte{}, typical...)
	hostileNodes[17], hostileNodes[18], hostileNodes[19], hostileNodes[20] = 0xff, 0xff, 0xff, 0x7f
	write("seed_hostile_nodes", hostileNodes)
	hostileRegions := append([]byte{}, typical...)
	hostileRegions[25], hostileRegions[26], hostileRegions[27], hostileRegions[28] = 0xff, 0xff, 0xff, 0x7f
	write("seed_hostile_regions", hostileRegions)
	write("seed_empty", []byte{})
	write("seed_junk", []byte{0xff, 0xff, 0xff, 0xff})
}
