package mem

import (
	"fmt"

	"bgcnk/internal/hw"
)

// PersistRegion is a named memory region that survives job boundaries
// (paper Section IV-D). The virtual address used by the first job is
// preserved for later jobs, so the region can hold linked-list-style
// pointer structures.
type PersistRegion struct {
	Name  string
	VA    hw.VAddr
	PA    hw.PAddr
	Size  uint64
	Owner uint32 // uid that created the region
}

// PersistRegistry lives on the node (not in any process) and maps names to
// persistent regions, in a manner similar to shm_open()/mmap().
type PersistRegistry struct {
	regions map[string]*PersistRegion
	nextVA  hw.VAddr
	physLo  hw.PAddr
	physHi  hw.PAddr
	physCur hw.PAddr
}

// NewPersistRegistry manages a physical window [physLo, physHi) dedicated
// to persistent memory, assigning virtual addresses downward from the top
// of the shared-memory area.
func NewPersistRegistry(physLo, physHi hw.PAddr) *PersistRegistry {
	return &PersistRegistry{
		regions: make(map[string]*PersistRegion),
		nextVA:  VShmBase + hw.VAddr(1<<28), // above the shm window
		physLo:  physLo,
		physHi:  physHi,
		physCur: physLo,
	}
}

// Open returns the region called name, creating it with the given size on
// first use. Reopening with a different size fails; reopening from a
// different uid fails (persistence assumes "the correct privileges").
// The boolean reports whether the region was created by this call.
func (p *PersistRegistry) Open(name string, size uint64, uid uint32) (*PersistRegion, bool, error) {
	if name == "" {
		return nil, false, fmt.Errorf("mem: persistent region needs a name")
	}
	if r, ok := p.regions[name]; ok {
		if r.Owner != uid {
			return nil, false, fmt.Errorf("mem: persistent region %q owned by uid %d", name, r.Owner)
		}
		if size != 0 && size != r.Size {
			return nil, false, fmt.Errorf("mem: persistent region %q has size %d, not %d", name, r.Size, size)
		}
		return r, false, nil
	}
	if size == 0 {
		return nil, false, fmt.Errorf("mem: persistent region %q does not exist", name)
	}
	size = hw.AlignUp(size, 4096)
	if uint64(p.physCur)+size > uint64(p.physHi) {
		return nil, false, fmt.Errorf("mem: persistent window exhausted")
	}
	r := &PersistRegion{Name: name, VA: p.nextVA, PA: p.physCur, Size: size, Owner: uid}
	p.regions[name] = r
	p.nextVA += hw.VAddr(hw.AlignUp(size, 1<<20))
	p.physCur += hw.PAddr(size)
	return r, true, nil
}

// Remove deletes a region (requires the owning uid).
func (p *PersistRegistry) Remove(name string, uid uint32) error {
	r, ok := p.regions[name]
	if !ok {
		return fmt.Errorf("mem: persistent region %q does not exist", name)
	}
	if r.Owner != uid {
		return fmt.Errorf("mem: persistent region %q owned by uid %d", name, r.Owner)
	}
	delete(p.regions, name)
	return nil
}

// Names lists existing regions.
func (p *PersistRegistry) Names() []string {
	var ns []string
	for n := range p.regions {
		ns = append(ns, n)
	}
	return ns
}
