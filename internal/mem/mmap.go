package mem

import (
	"fmt"
	"sort"

	"bgcnk/internal/hw"
)

// MmapRange is one allocated virtual range with its protection.
type MmapRange struct {
	VA    hw.VAddr
	Size  uint64
	Perms hw.Perm
}

// End returns the exclusive end address.
func (r MmapRange) End() hw.VAddr { return r.VA + hw.VAddr(r.Size) }

// MmapTracker implements CNK's mmap bookkeeping (paper Section IV-C): the
// static map means mmap never adjusts translations or handles faults — it
// "merely provides free addresses to the application", tracking which
// ranges are allocated and coalescing on free and on permission change.
type MmapTracker struct {
	lo, hi hw.VAddr    // managed arena (inside the heap/stack region)
	ranges []MmapRange // sorted by VA, non-overlapping
	gran   uint64      // allocation granularity
}

// NewMmapTracker manages [lo, hi) with the given allocation granularity.
func NewMmapTracker(lo, hi hw.VAddr, granularity uint64) *MmapTracker {
	if granularity == 0 {
		granularity = 4096
	}
	return &MmapTracker{lo: lo, hi: hi, gran: granularity}
}

// Bounds returns the managed arena.
func (m *MmapTracker) Bounds() (hw.VAddr, hw.VAddr) { return m.lo, m.hi }

// Allocated returns the allocated ranges, sorted.
func (m *MmapTracker) Allocated() []MmapRange {
	out := make([]MmapRange, len(m.ranges))
	copy(out, m.ranges)
	return out
}

// AllocatedBytes totals the currently allocated bytes.
func (m *MmapTracker) AllocatedBytes() uint64 {
	var t uint64
	for _, r := range m.ranges {
		t += r.Size
	}
	return t
}

func (m *MmapTracker) insert(r MmapRange) {
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].VA >= r.VA })
	m.ranges = append(m.ranges, MmapRange{})
	copy(m.ranges[i+1:], m.ranges[i:])
	m.ranges[i] = r
	m.coalesce()
}

// coalesce merges adjacent ranges with identical permissions.
func (m *MmapTracker) coalesce() {
	if len(m.ranges) < 2 {
		return
	}
	out := m.ranges[:1]
	for _, r := range m.ranges[1:] {
		last := &out[len(out)-1]
		if last.End() == r.VA && last.Perms == r.Perms {
			last.Size += r.Size
		} else {
			out = append(out, r)
		}
	}
	m.ranges = out
}

// Alloc finds a free range of size bytes (rounded up to granularity) and
// marks it allocated. It returns the chosen address.
func (m *MmapTracker) Alloc(size uint64, perms hw.Perm) (hw.VAddr, error) {
	size = hw.AlignUp(size, m.gran)
	if size == 0 {
		return 0, fmt.Errorf("mem: mmap of zero length")
	}
	cursor := m.lo
	for _, r := range m.ranges {
		if uint64(r.VA-cursor) >= size {
			break
		}
		if r.End() > cursor {
			cursor = r.End()
		}
	}
	if uint64(m.hi-cursor) < size {
		return 0, fmt.Errorf("mem: arena exhausted (%d bytes requested)", size)
	}
	m.insert(MmapRange{VA: cursor, Size: size, Perms: perms})
	return cursor, nil
}

// AllocFixed marks [va, va+size) allocated at a caller-chosen address
// (MAP_FIXED, which ld.so uses to place itself — paper Section IV-B2). It
// fails if the range overlaps an existing allocation or leaves the arena.
func (m *MmapTracker) AllocFixed(va hw.VAddr, size uint64, perms hw.Perm) error {
	size = hw.AlignUp(size, m.gran)
	if va < m.lo || va+hw.VAddr(size) > m.hi || uint64(va)%m.gran != 0 {
		return fmt.Errorf("mem: fixed mapping [%#x,+%d) outside arena", uint64(va), size)
	}
	for _, r := range m.ranges {
		if va < r.End() && r.VA < va+hw.VAddr(size) {
			return fmt.Errorf("mem: fixed mapping overlaps [%#x,+%d)", uint64(r.VA), r.Size)
		}
	}
	m.insert(MmapRange{VA: va, Size: size, Perms: perms})
	return nil
}

// Free releases [va, va+size), splitting partially covered ranges. Freeing
// unallocated space is a no-op, as with munmap.
func (m *MmapTracker) Free(va hw.VAddr, size uint64) {
	size = hw.AlignUp(size, m.gran)
	end := va + hw.VAddr(size)
	var out []MmapRange
	for _, r := range m.ranges {
		if r.End() <= va || r.VA >= end { // untouched
			out = append(out, r)
			continue
		}
		if r.VA < va { // left remainder
			out = append(out, MmapRange{VA: r.VA, Size: uint64(va - r.VA), Perms: r.Perms})
		}
		if r.End() > end { // right remainder
			out = append(out, MmapRange{VA: end, Size: uint64(r.End() - end), Perms: r.Perms})
		}
	}
	m.ranges = out
	m.coalesce()
}

// Protect changes permissions on [va, va+size), splitting ranges as
// needed. It fails if any part of the range is unallocated.
func (m *MmapTracker) Protect(va hw.VAddr, size uint64, perms hw.Perm) error {
	size = hw.AlignUp(size, m.gran)
	end := va + hw.VAddr(size)
	// Verify coverage first.
	cursor := va
	for _, r := range m.ranges {
		if cursor >= end {
			break
		}
		if r.End() <= cursor {
			continue
		}
		if r.VA > cursor {
			return fmt.Errorf("mem: mprotect over unallocated hole at %#x", uint64(cursor))
		}
		cursor = r.End()
	}
	if cursor < end {
		return fmt.Errorf("mem: mprotect over unallocated hole at %#x", uint64(cursor))
	}
	var out []MmapRange
	for _, r := range m.ranges {
		if r.End() <= va || r.VA >= end {
			out = append(out, r)
			continue
		}
		if r.VA < va {
			out = append(out, MmapRange{VA: r.VA, Size: uint64(va - r.VA), Perms: r.Perms})
		}
		lo, hi := r.VA, r.End()
		if lo < va {
			lo = va
		}
		if hi > end {
			hi = end
		}
		out = append(out, MmapRange{VA: lo, Size: uint64(hi - lo), Perms: perms})
		if r.End() > end {
			out = append(out, MmapRange{VA: end, Size: uint64(r.End() - end), Perms: r.Perms})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VA < out[j].VA })
	m.ranges = out
	m.coalesce()
	return nil
}

// Find returns the range containing va.
func (m *MmapTracker) Find(va hw.VAddr) (MmapRange, bool) {
	for _, r := range m.ranges {
		if va >= r.VA && va < r.End() {
			return r, true
		}
	}
	return MmapRange{}, false
}

// Brk is the classic break pointer inside the heap region.
type Brk struct {
	Base  hw.VAddr
	Cur   hw.VAddr
	Limit hw.VAddr
}

// NewBrk returns a break starting at base, unable to pass limit.
func NewBrk(base, limit hw.VAddr) *Brk {
	return &Brk{Base: base, Cur: base, Limit: limit}
}

// Set moves the break. Set(0) (or any address below Base) queries. It
// returns the resulting break and whether the move succeeded.
func (b *Brk) Set(to hw.VAddr) (hw.VAddr, bool) {
	if to < b.Base {
		return b.Cur, true
	}
	if to > b.Limit {
		return b.Cur, false
	}
	b.Cur = to
	return b.Cur, true
}

// Grow extends the break by n bytes and returns the old break.
func (b *Brk) Grow(n uint64) (hw.VAddr, bool) {
	old := b.Cur
	if _, ok := b.Set(b.Cur + hw.VAddr(n)); !ok {
		return 0, false
	}
	return old, true
}
