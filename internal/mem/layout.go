// Package mem implements CNK's memory-management substrate: the static
// partitioning algorithm that tiles a process's four contiguous address
// ranges (text, data, heap+stack, shared memory — paper Fig 3) onto
// hardware pages of 1MB/16MB/256MB/1GB, the mmap range tracker, brk, and
// the named persistent-memory registry (paper Section IV-D).
package mem

import (
	"fmt"

	"bgcnk/internal/hw"
)

// Virtual-address map constants (paper Fig 3: text, then data, then heap
// growing up towards a stack growing down, with shared memory on top).
const (
	VTextBase = hw.VAddr(16 << 20)   // 0x0100_0000
	VShmBase  = hw.VAddr(0xE0000000) // node-wide shared region, same VA in all procs
	VAddrTop  = hw.VAddr(1) << 32    // nearly the full 4GB is mappable (paper VII-A)
)

// KernelPhysReserve is the physical memory CNK itself occupies. CNK
// allocates all of its structures statically (paper Section VI-B).
const KernelPhysReserve = uint64(16 << 20)

// Tile is one hardware page mapping.
type Tile struct {
	V    hw.VAddr
	P    hw.PAddr
	Size hw.PageSize
}

// Region is a contiguous virtual range backed by contiguous physical
// memory, covered by Tiles. Covered may exceed Req: large-page tiling
// wastes physical memory (paper Section VII-B).
type Region struct {
	Name    string
	VBase   hw.VAddr
	PBase   hw.PAddr
	Req     uint64 // bytes requested
	Covered uint64 // bytes actually mapped (multiple of the tile sizes)
	Perms   hw.Perm
	Tiles   []Tile
}

// Contains reports whether va falls inside the mapped region.
func (r *Region) Contains(va hw.VAddr) bool {
	return va >= r.VBase && uint64(va-r.VBase) < r.Covered
}

// Translate maps va (which must be inside the region) to its physical
// address.
func (r *Region) Translate(va hw.VAddr) hw.PAddr {
	return r.PBase + hw.PAddr(va-r.VBase)
}

// Waste returns physical bytes mapped but not requested.
func (r *Region) Waste() uint64 { return r.Covered - r.Req }

// ProcLayout is the static map of one process.
type ProcLayout struct {
	Index     int // process slot on the node (0..ProcsPerNode-1)
	Text      Region
	Data      Region
	HeapStack Region
	Shm       *Region // shared with the other procs on the node

	HeapBase hw.VAddr // heap grows up from here
	StackTop hw.VAddr // main stack grows down from here (top of HeapStack)
}

// Regions returns the process's regions including the shared one.
func (p *ProcLayout) Regions() []*Region {
	return []*Region{&p.Text, &p.Data, &p.HeapStack, p.Shm}
}

// Translate resolves va through the static map.
func (p *ProcLayout) Translate(va hw.VAddr) (hw.PAddr, hw.Perm, bool) {
	for _, r := range p.Regions() {
		if r.Contains(va) {
			return r.Translate(va), r.Perms, true
		}
	}
	return 0, 0, false
}

// PhysRanges resolves [va, va+size) to physically contiguous ranges. Under
// the static map any buffer within one region is a single range — the
// property DCMF's DMA relies on (paper Section V-C).
func (p *ProcLayout) PhysRanges(va hw.VAddr, size uint64) ([]PhysRange, bool) {
	var out []PhysRange
	for size > 0 {
		found := false
		for _, r := range p.Regions() {
			if !r.Contains(va) {
				continue
			}
			avail := r.Covered - uint64(va-r.VBase)
			n := size
			if n > avail {
				n = avail
			}
			out = append(out, PhysRange{PA: r.Translate(va), Len: n})
			va += hw.VAddr(n)
			size -= n
			found = true
			break
		}
		if !found {
			return nil, false
		}
	}
	// Merge physically adjacent ranges.
	merged := out[:0]
	for _, pr := range out {
		if len(merged) > 0 && merged[len(merged)-1].PA+hw.PAddr(merged[len(merged)-1].Len) == pr.PA {
			merged[len(merged)-1].Len += pr.Len
		} else {
			merged = append(merged, pr)
		}
	}
	return merged, true
}

// PhysRange mirrors kernel.PhysRange without importing it (mem sits below
// kernel in the package graph).
type PhysRange struct {
	PA  hw.PAddr
	Len uint64
}

// TLBEntries renders the layout as pinned TLB entries for address space
// pid.
func (p *ProcLayout) TLBEntries(pid uint32) []hw.TLBEntry {
	var es []hw.TLBEntry
	for _, r := range p.Regions() {
		for _, t := range r.Tiles {
			es = append(es, hw.TLBEntry{
				PID: pid, VBase: t.V, PBase: t.P, Size: t.Size, Perms: r.Perms,
			})
		}
	}
	return es
}

// NodeLayout is the whole node's static partition.
type NodeLayout struct {
	Config PartitionConfig
	Procs  []ProcLayout
	Shm    Region
	// MinPage is the smallest page size the tiler needed to stay within
	// the TLB budget.
	MinPage hw.PageSize
}

// TotalWaste sums physical bytes tiled but not requested across the node.
func (n *NodeLayout) TotalWaste() uint64 {
	w := n.Shm.Waste()
	for i := range n.Procs {
		p := &n.Procs[i]
		w += p.Text.Waste() + p.Data.Waste() + p.HeapStack.Waste()
	}
	return w
}

// EntriesPerProc returns the pinned-TLB-entry count for one process.
func (n *NodeLayout) EntriesPerProc() int {
	if len(n.Procs) == 0 {
		return 0
	}
	p := &n.Procs[0]
	return len(p.Text.Tiles) + len(p.Data.Tiles) + len(p.HeapStack.Tiles) + len(n.Shm.Tiles)
}

// PartitionConfig is the partitioner input: what the ELF header and the
// job launch parameters provide (paper Section IV-C: "This information is
// passed into a partitioning algorithm, which tiles the virtual and
// physical memory").
type PartitionConfig struct {
	DDRBytes      uint64
	Procs         int    // 1, 2 or 4
	TextBytes     uint64 // .text + .rodata
	DataBytes     uint64 // .data + .bss
	ShmBytes      uint64 // user-specified, up-front
	MaxTLBEntries int    // static-map budget per core (default 60 of 64)
}

// Partition computes the node's static memory map, choosing hardware page
// sizes that respect alignment constraints and fit the TLB entry budget.
// Memory not consumed by text/data/shm is divided evenly among the
// processes as heap+stack (paper Section VII-B: "CNK divides memory on a
// node evenly among the tasks").
func Partition(cfg PartitionConfig) (*NodeLayout, error) {
	if cfg.Procs != 1 && cfg.Procs != 2 && cfg.Procs != 4 {
		return nil, fmt.Errorf("mem: procs per node must be 1, 2 or 4 (got %d)", cfg.Procs)
	}
	if cfg.MaxTLBEntries == 0 {
		cfg.MaxTLBEntries = 60
	}
	if cfg.TextBytes == 0 || cfg.DDRBytes == 0 {
		return nil, fmt.Errorf("mem: text size and DDR size are required")
	}

	for _, minPage := range hw.LargePageSizes {
		nl, err := partitionWith(cfg, minPage)
		if err != nil {
			return nil, err
		}
		if nl.EntriesPerProc() <= cfg.MaxTLBEntries {
			nl.MinPage = minPage
			return nl, nil
		}
	}
	return nil, fmt.Errorf("mem: cannot fit static map into %d TLB entries", cfg.MaxTLBEntries)
}

// coAlign picks the virtual base for a region: the smallest address >= vmin
// that is congruent to the region's physical base modulo the largest page
// size the region could use. Virtual address space is plentiful; spending
// it on alignment lets the tiler promote to large pages at every level
// without wasting physical memory beyond minPage granularity.
func coAlign(vmin, phys, covered, mp uint64) uint64 {
	align := mp
	for _, ps := range hw.LargePageSizes {
		if uint64(ps) <= covered {
			align = uint64(ps)
		}
	}
	vmin = hw.AlignUp(vmin, mp)
	delta := (phys%align + align - vmin%align) % align
	return vmin + delta
}

func partitionWith(cfg PartitionConfig, minPage hw.PageSize) (*NodeLayout, error) {
	mp := uint64(minPage)
	phys := hw.AlignUp(KernelPhysReserve, mp) // running physical cursor

	physAlloc := func(name string, req uint64) (uint64, uint64, error) {
		if req == 0 {
			req = 1
		}
		covered := hw.AlignUp(req, mp)
		base := phys
		if base+covered > cfg.DDRBytes {
			return 0, 0, fmt.Errorf("mem: out of physical memory tiling %s (need %d at %#x of %d)", name, covered, base, cfg.DDRBytes)
		}
		phys = base + covered
		return base, covered, nil
	}
	mkRegion := func(name string, vmin uint64, pbase, covered, req uint64, perms hw.Perm) Region {
		v := coAlign(vmin, pbase, covered, mp)
		r := Region{Name: name, VBase: hw.VAddr(v), PBase: hw.PAddr(pbase), Req: req, Covered: covered, Perms: perms}
		r.Tiles = tileRange(v, pbase, covered, minPage)
		return r
	}

	nl := &NodeLayout{Config: cfg}

	// Physical allocation order: shm, then each process's text and data,
	// then (with the remainder divided evenly) each process's heap+stack.
	shmReq := maxU64(cfg.ShmBytes, 1)
	shmPhys, shmCovered, err := physAlloc("shm", shmReq)
	if err != nil {
		return nil, err
	}

	type fixed struct{ textP, textC, dataP, dataC uint64 }
	fixeds := make([]fixed, cfg.Procs)
	for i := range fixeds {
		if fixeds[i].textP, fixeds[i].textC, err = physAlloc(fmt.Sprintf("text.%d", i), cfg.TextBytes); err != nil {
			return nil, err
		}
		if fixeds[i].dataP, fixeds[i].dataC, err = physAlloc(fmt.Sprintf("data.%d", i), maxU64(cfg.DataBytes, 1)); err != nil {
			return nil, err
		}
	}

	remaining := cfg.DDRBytes - phys
	perHeap := hw.AlignDown(remaining/uint64(cfg.Procs), mp)
	if perHeap == 0 {
		return nil, fmt.Errorf("mem: no physical memory left for heaps")
	}

	var maxHeapEnd uint64
	for i := 0; i < cfg.Procs; i++ {
		var p ProcLayout
		p.Index = i
		f := fixeds[i]
		p.Text = mkRegion(fmt.Sprintf("text.%d", i), uint64(VTextBase), f.textP, f.textC, cfg.TextBytes, hw.PermRX)
		p.Data = mkRegion(fmt.Sprintf("data.%d", i), uint64(p.Text.VBase)+p.Text.Covered, f.dataP, f.dataC, maxU64(cfg.DataBytes, 1), hw.PermRW)
		heapP, heapC, err := physAlloc(fmt.Sprintf("heap.%d", i), perHeap)
		if err != nil {
			return nil, err
		}
		p.HeapStack = mkRegion(fmt.Sprintf("heap.%d", i), uint64(p.Data.VBase)+p.Data.Covered, heapP, heapC, perHeap, hw.PermRW)
		p.HeapBase = p.HeapStack.VBase
		p.StackTop = p.HeapStack.VBase + hw.VAddr(p.HeapStack.Covered)
		if end := uint64(p.StackTop); end > maxHeapEnd {
			maxHeapEnd = end
		}
		nl.Procs = append(nl.Procs, p)
	}

	// Shared memory sits above every heap, at (or above) the canonical
	// VShmBase, identical in every process.
	shmVMin := maxU64(uint64(VShmBase), maxHeapEnd)
	nl.Shm = mkRegion("shm", shmVMin, shmPhys, shmCovered, shmReq, hw.PermRW)
	for i := range nl.Procs {
		nl.Procs[i].Shm = &nl.Shm
	}
	return nl, nil
}

// tileRange greedily covers [v, v+size) with the largest hardware pages
// whose alignment constraints (virtual AND physical) are satisfied, never
// using a page smaller than minPage. size must be a multiple of minPage
// and v, p must be minPage-aligned.
func tileRange(v, p, size uint64, minPage hw.PageSize) []Tile {
	var tiles []Tile
	off := uint64(0)
	for off < size {
		remaining := size - off
		var pick hw.PageSize
		for i := len(hw.LargePageSizes) - 1; i >= 0; i-- {
			ps := hw.LargePageSizes[i]
			if ps < minPage {
				break
			}
			u := uint64(ps)
			if u <= remaining && (v+off)%u == 0 && (p+off)%u == 0 {
				pick = ps
				break
			}
		}
		if pick == 0 {
			pick = minPage
		}
		tiles = append(tiles, Tile{V: hw.VAddr(v + off), P: hw.PAddr(p + off), Size: pick})
		off += uint64(pick)
	}
	return tiles
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
