package mem

import (
	"testing"
	"testing/quick"

	"bgcnk/internal/hw"
)

func defaultCfg(procs int) PartitionConfig {
	return PartitionConfig{
		DDRBytes:  2 << 30,
		Procs:     procs,
		TextBytes: 3 << 20,
		DataBytes: 9 << 20,
		ShmBytes:  16 << 20,
	}
}

func TestPartitionSMPMode(t *testing.T) {
	nl, err := Partition(defaultCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Procs) != 1 {
		t.Fatalf("procs = %d", len(nl.Procs))
	}
	p := &nl.Procs[0]
	if p.Text.VBase != VTextBase {
		t.Fatalf("text at %#x", uint64(p.Text.VBase))
	}
	if p.Text.Covered < p.Text.Req || p.Data.Covered < p.Data.Req {
		t.Fatal("regions must cover their requests")
	}
	if p.HeapBase >= p.StackTop {
		t.Fatal("heap must be below stack top")
	}
	if nl.Shm.VBase != VShmBase {
		t.Fatalf("shm at %#x", uint64(nl.Shm.VBase))
	}
}

func TestPartitionVNModeEvenDivision(t *testing.T) {
	nl, err := Partition(defaultCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Procs) != 4 {
		t.Fatalf("procs = %d", len(nl.Procs))
	}
	h0 := nl.Procs[0].HeapStack.Covered
	for i := 1; i < 4; i++ {
		// Paper VII-B: memory is divided evenly among the tasks.
		if diff := int64(nl.Procs[i].HeapStack.Covered) - int64(h0); diff < -int64(Page1MBytes) || diff > int64(Page1MBytes) {
			t.Fatalf("uneven heap division: %d vs %d", nl.Procs[i].HeapStack.Covered, h0)
		}
	}
	// All procs share the same shm region, at the same VA and PA.
	for i := range nl.Procs {
		if nl.Procs[i].Shm != &nl.Shm {
			t.Fatal("shm must be shared")
		}
	}
}

const Page1MBytes = uint64(hw.Page1M)

func TestPartitionInvalidProcs(t *testing.T) {
	cfg := defaultCfg(3)
	if _, err := Partition(cfg); err == nil {
		t.Fatal("3 procs/node must be rejected")
	}
}

func TestPartitionTLBBudget(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		nl, err := Partition(defaultCfg(procs))
		if err != nil {
			t.Fatal(err)
		}
		if n := nl.EntriesPerProc(); n > 60 {
			t.Fatalf("procs=%d: %d entries exceeds TLB budget", procs, n)
		}
	}
}

func TestPartitionEntriesFitRealTLB(t *testing.T) {
	nl, err := Partition(defaultCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	var tlb hw.TLB
	for _, e := range nl.Procs[0].TLBEntries(1) {
		tlb.InsertPinned(e)
	}
	// Every address in every region must translate without a miss.
	p := &nl.Procs[0]
	probes := []hw.VAddr{
		p.Text.VBase, p.Text.VBase + hw.VAddr(p.Text.Req-1),
		p.Data.VBase, p.HeapBase, p.StackTop - 1,
		nl.Shm.VBase, nl.Shm.VBase + hw.VAddr(nl.Shm.Req-1),
	}
	for _, va := range probes {
		if _, _, ok := tlb.Lookup(1, va); !ok {
			t.Fatalf("static map misses at %#x", uint64(va))
		}
	}
	if tlb.Misses != 0 {
		t.Fatalf("static map took %d misses", tlb.Misses)
	}
}

func TestPartitionTranslationConsistent(t *testing.T) {
	nl, err := Partition(defaultCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	p := &nl.Procs[1]
	pa, perm, ok := p.Translate(p.HeapBase + 12345)
	if !ok {
		t.Fatal("heap address must translate")
	}
	if !perm.Has(hw.PermRW) {
		t.Fatal("heap must be RW")
	}
	if pa != p.HeapStack.PBase+hw.PAddr(p.HeapBase+12345-p.HeapStack.VBase) {
		t.Fatal("translation arithmetic wrong")
	}
	if _, _, ok := p.Translate(0x100); ok {
		t.Fatal("unmapped low address must not translate")
	}
}

func TestPartitionProcIsolation(t *testing.T) {
	nl, err := Partition(defaultCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// Same virtual text address maps to different physical addresses per
	// process; shm maps to the same physical address.
	pa0, _, _ := nl.Procs[0].Translate(VTextBase)
	pa1, _, _ := nl.Procs[1].Translate(VTextBase)
	if pa0 == pa1 {
		t.Fatal("text must be private per process")
	}
	s0, _, _ := nl.Procs[0].Translate(VShmBase)
	s1, _, _ := nl.Procs[1].Translate(VShmBase)
	if s0 != s1 {
		t.Fatal("shm must be shared")
	}
}

func TestPartitionPhysRangesContiguous(t *testing.T) {
	nl, err := Partition(defaultCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	p := &nl.Procs[0]
	// Any buffer inside one region is a single physically contiguous
	// range — the property DCMF's single-descriptor DMA needs.
	prs, ok := p.PhysRanges(p.HeapBase+4096, 8<<20)
	if !ok {
		t.Fatal("heap buffer must resolve")
	}
	if len(prs) != 1 {
		t.Fatalf("heap buffer resolved to %d ranges, want 1", len(prs))
	}
}

func TestPartitionTilesAligned(t *testing.T) {
	nl, err := Partition(defaultCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range nl.Procs {
		for _, r := range p.Regions() {
			var covered uint64
			for _, tl := range r.Tiles {
				u := uint64(tl.Size)
				if uint64(tl.V)%u != 0 || uint64(tl.P)%u != 0 {
					t.Fatalf("tile %v/%#x not aligned to %v", tl.V, uint64(tl.P), tl.Size)
				}
				covered += u
			}
			if covered != r.Covered {
				t.Fatalf("region %s: tiles cover %d of %d", r.Name, covered, r.Covered)
			}
		}
	}
}

func TestPartitionWasteAccounting(t *testing.T) {
	cfg := defaultCfg(1)
	cfg.TextBytes = 1<<20 + 1 // forces a second 1MB tile: ~1MB waste
	nl, err := Partition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Procs[0].Text.Waste() != uint64(hw.Page1M)-1 {
		t.Fatalf("text waste = %d", nl.Procs[0].Text.Waste())
	}
	if nl.TotalWaste() < nl.Procs[0].Text.Waste() {
		t.Fatal("node waste must include text waste")
	}
}

func TestPartitionPropertyNoPhysOverlap(t *testing.T) {
	f := func(text, data, shm uint32, procsSel uint8) bool {
		cfg := PartitionConfig{
			DDRBytes:  2 << 30,
			Procs:     []int{1, 2, 4}[int(procsSel)%3],
			TextBytes: uint64(text%64+1) << 20,
			DataBytes: uint64(data % (64 << 20)),
			ShmBytes:  uint64(shm % (64 << 20)),
		}
		nl, err := Partition(cfg)
		if err != nil {
			return true // infeasible configs may fail; they must not mis-partition
		}
		type span struct{ lo, hi uint64 }
		var spans []span
		add := func(r *Region) {
			spans = append(spans, span{uint64(r.PBase), uint64(r.PBase) + r.Covered})
		}
		add(&nl.Shm)
		for i := range nl.Procs {
			p := &nl.Procs[i]
			add(&p.Text)
			add(&p.Data)
			add(&p.HeapStack)
		}
		for i := range spans {
			if spans[i].lo < KernelPhysReserve || spans[i].hi > cfg.DDRBytes {
				return false
			}
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMmapAllocFree(t *testing.T) {
	m := NewMmapTracker(0x1000000, 0x2000000, 4096)
	a, err := m.Alloc(10000, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(4096, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+hw.VAddr(hw.AlignUp(10000, 4096)) {
		t.Fatal("allocations overlap")
	}
	m.Free(a, 10000)
	c, err := m.Alloc(8192, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed space not reused: got %#x want %#x", uint64(c), uint64(a))
	}
}

func TestMmapCoalesceOnFree(t *testing.T) {
	m := NewMmapTracker(0, 1<<20, 4096)
	a, _ := m.Alloc(4096, hw.PermRW)
	b, _ := m.Alloc(4096, hw.PermRW)
	c, _ := m.Alloc(4096, hw.PermRW)
	_ = a
	_ = c
	if n := len(m.Allocated()); n != 1 {
		t.Fatalf("adjacent same-perm allocations should coalesce: %d ranges", n)
	}
	m.Free(b, 4096)
	if n := len(m.Allocated()); n != 2 {
		t.Fatalf("free should split: %d ranges", n)
	}
}

func TestMmapFixed(t *testing.T) {
	m := NewMmapTracker(0x10000, 0x100000, 4096)
	if err := m.AllocFixed(0x20000, 8192, hw.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocFixed(0x21000, 4096, hw.PermRW); err == nil {
		t.Fatal("overlapping fixed mapping must fail")
	}
	if err := m.AllocFixed(0x0, 4096, hw.PermRW); err == nil {
		t.Fatal("out-of-arena fixed mapping must fail")
	}
}

func TestMmapProtectSplits(t *testing.T) {
	m := NewMmapTracker(0, 1<<20, 4096)
	a, _ := m.Alloc(3*4096, hw.PermRW)
	if err := m.Protect(a+4096, 4096, hw.PermRead); err != nil {
		t.Fatal(err)
	}
	rs := m.Allocated()
	if len(rs) != 3 {
		t.Fatalf("protect should split into 3, got %d", len(rs))
	}
	if rs[1].Perms != hw.PermRead {
		t.Fatal("middle range perms wrong")
	}
	// Restoring perms re-coalesces.
	if err := m.Protect(a+4096, 4096, hw.PermRW); err != nil {
		t.Fatal(err)
	}
	if len(m.Allocated()) != 1 {
		t.Fatal("restore should re-coalesce")
	}
}

func TestMmapProtectHoleFails(t *testing.T) {
	m := NewMmapTracker(0, 1<<20, 4096)
	a, _ := m.Alloc(4096, hw.PermRW)
	if err := m.Protect(a, 3*4096, hw.PermRead); err == nil {
		t.Fatal("mprotect across a hole must fail")
	}
}

func TestMmapExhaustion(t *testing.T) {
	m := NewMmapTracker(0, 16*4096, 4096)
	if _, err := m.Alloc(17*4096, hw.PermRW); err == nil {
		t.Fatal("oversized alloc must fail")
	}
	for i := 0; i < 16; i++ {
		if _, err := m.Alloc(4096, hw.PermRW); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := m.Alloc(4096, hw.PermRW); err == nil {
		t.Fatal("arena exhausted; alloc must fail")
	}
}

func TestMmapPropertyAllocationsDisjoint(t *testing.T) {
	m := NewMmapTracker(0, 8<<20, 4096)
	var live []MmapRange
	f := func(op uint8, size uint16) bool {
		if op%3 == 0 && len(live) > 0 {
			r := live[0]
			live = live[1:]
			m.Free(r.VA, r.Size)
			return true
		}
		sz := uint64(size%64+1) * 4096
		va, err := m.Alloc(sz, hw.PermRW)
		if err != nil {
			return true
		}
		for _, r := range live {
			if va < r.End() && r.VA < va+hw.VAddr(sz) {
				return false
			}
		}
		live = append(live, MmapRange{VA: va, Size: sz})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBrkGrowAndQuery(t *testing.T) {
	b := NewBrk(0x1000, 0x8000)
	if cur, ok := b.Set(0); !ok || cur != 0x1000 {
		t.Fatal("query must return current break")
	}
	old, ok := b.Grow(0x2000)
	if !ok || old != 0x1000 || b.Cur != 0x3000 {
		t.Fatalf("grow: old=%#x cur=%#x", uint64(old), uint64(b.Cur))
	}
	if _, ok := b.Set(0x9000); ok {
		t.Fatal("break beyond limit must fail")
	}
	if b.Cur != 0x3000 {
		t.Fatal("failed set must not move break")
	}
}

func TestPersistCreateAndReopen(t *testing.T) {
	p := NewPersistRegistry(0x1000000, 0x2000000)
	r1, created, err := p.Open("checkpoint", 1<<20, 100)
	if err != nil || !created {
		t.Fatalf("create: %v created=%v", err, created)
	}
	r2, created, err := p.Open("checkpoint", 1<<20, 100)
	if err != nil || created {
		t.Fatalf("reopen: %v created=%v", err, created)
	}
	// The virtual address used by the first job is preserved (paper IV-D).
	if r1.VA != r2.VA || r1.PA != r2.PA {
		t.Fatal("reopen must preserve addresses")
	}
	// Reopen without knowing the size also works (size 0 = existing).
	r3, _, err := p.Open("checkpoint", 0, 100)
	if err != nil || r3.VA != r1.VA {
		t.Fatal("size-0 reopen failed")
	}
}

func TestPersistPrivileges(t *testing.T) {
	p := NewPersistRegistry(0, 1<<20)
	p.Open("mine", 4096, 100)
	if _, _, err := p.Open("mine", 4096, 200); err == nil {
		t.Fatal("wrong uid must be rejected")
	}
	if err := p.Remove("mine", 200); err == nil {
		t.Fatal("wrong uid must not remove")
	}
	if err := p.Remove("mine", 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Open("mine", 0, 100); err == nil {
		t.Fatal("removed region must not reopen")
	}
}

func TestPersistSizeMismatch(t *testing.T) {
	p := NewPersistRegistry(0, 1<<20)
	p.Open("r", 8192, 1)
	if _, _, err := p.Open("r", 4096, 1); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestPersistExhaustion(t *testing.T) {
	p := NewPersistRegistry(0, 8192)
	if _, _, err := p.Open("a", 8192, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Open("b", 4096, 1); err == nil {
		t.Fatal("window exhausted; create must fail")
	}
}
