package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func check(t *testing.T, r *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("experiment %s failed shape assertions:\n%s", r.ID, r.Render())
	}
	if len(r.Lines) == 0 {
		t.Fatalf("experiment %s produced no output", r.ID)
	}
	t.Log("\n" + r.Render())
}

func TestRunFWQ(t *testing.T)       { r, err := RunFWQ(quick); check(t, r, err) }
func TestRunTable1(t *testing.T)    { r, err := RunTable1(quick); check(t, r, err) }
func TestRunFig8(t *testing.T)      { r, err := RunFig8(quick); check(t, r, err) }
func TestRunLinpack(t *testing.T)   { r, err := RunLinpack(quick); check(t, r, err) }
func TestRunAllreduce(t *testing.T) { r, err := RunAllreduce(quick); check(t, r, err) }
func TestRunTable2(t *testing.T)    { r, err := RunTable2(quick); check(t, r, err) }
func TestRunTable3(t *testing.T)    { r, err := RunTable3(quick); check(t, r, err) }
func TestRunBoot(t *testing.T)      { r, err := RunBoot(quick); check(t, r, err) }
func TestRunRepro(t *testing.T)     { r, err := RunRepro(quick); check(t, r, err) }
func TestRunFaults(t *testing.T)    { r, err := RunFaults(quick); check(t, r, err) }
func TestRunMTBF(t *testing.T)      { r, err := RunMTBF(quick); check(t, r, err) }
func TestRunIOScale(t *testing.T)   { r, err := RunIOScale(quick); check(t, r, err) }

func TestRunDegrade(t *testing.T) { r, err := RunDegrade(quick); check(t, r, err) }

func TestRunAblations(t *testing.T) { r, err := RunAblations(quick); check(t, r, err) }

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Fatalf("missing runner %q", id)
		}
	}
}

func TestRenderForms(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Pass: true}
	r.addf("line %d", 1)
	r.notef("note %d", 2)
	s := r.Render()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "line 1") || !strings.Contains(s, "note: note 2") {
		t.Fatalf("render: %q", s)
	}
	r.Pass = false
	if !strings.Contains(r.Render(), "FAIL") {
		t.Fatal("FAIL marker missing")
	}
}
