package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGolden pins the rendered output of the deterministic experiments
// byte-for-byte against testdata/. The whole machine model is
// cycle-reproducible, so every measured number in these renders — minima,
// latencies, UPC counter deltas — must come out identical on every run
// and every host; a diff here means a determinism regression (or an
// intentional model change, in which case rerun with -update).
func TestGolden(t *testing.T) {
	for _, id := range []string{"fig5-7", "table1", "table2", "table3", "boot", "mtbf", "crashes", "ioscale", "degrade", "tracescale"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Registry[id](quick)
			if err != nil {
				t.Fatal(err)
			}
			got := r.Render()
			path := filepath.Join("testdata", "golden_"+id+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/experiments -run TestGolden -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("%s render drifted from golden file %s:\n--- got ---\n%s--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
