package experiments

import (
	"fmt"

	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/obs"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// The tracescale experiment: what does it cost to watch a machine? The
// obs layer charges zero simulated cycles by construction (pinned by
// TestObsOffChangesNothing); what remains is trace VOLUME — and volume
// is where the paper's noise argument becomes visible in a new way. A
// CNK node between syscalls is silent: nothing runs, so nothing traces.
// An FWK node is never silent: the 1 kHz tick and the daemon set emit
// scheduler spans all the way through a compute region. This sweep runs
// the same compute+I/O job at growing node counts on both kernels with
// the full span set and the UPC sampler armed, and pins (1) linear
// trace-volume growth with node count, (2) the CNK-vs-FWK span-count
// asymmetry (order-of-magnitude more sched spans under FWK), and (3)
// byte-identical exports on rerun.

const (
	// Per-rank compute: 16 bursts of 8M cycles ~= 150 ms simulated, long
	// enough for ~150 FWK timer ticks per rank while CNK's cores run the
	// same region without a single kernel entry.
	tracescaleBursts = 16
	tracescaleBurst  = sim.Cycles(8_000_000)
	tracescaleEvery  = sim.Cycles(4_000_000) // UPC sampler interval
)

// tracescaleApp: compute-dominated with a ring exchange and a small
// file-I/O coda, so every span category has a source.
func tracescaleApp(m *machine.Machine) machine.App {
	return func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		for i := 0; i < tracescaleBursts; i++ {
			ctx.Compute(tracescaleBurst)
		}
		if env.Size > 1 {
			next := (env.Rank + 1) % env.Size
			env.Dev.Send(ctx, next, 3, []byte("trace"))
			env.Dev.Recv(ctx, 3)
		}
		ctx.Store(base, append([]byte(fmt.Sprintf("/gpfs/tr%03d", env.Node)), 0))
		fd, errno := ctx.Syscall(kernel.SysOpen, uint64(base), kernel.OCreat|kernel.OWronly, 0644)
		if errno == kernel.OK {
			ctx.Store(base+4096, make([]byte, 256))
			ctx.Syscall(kernel.SysWrite, fd, uint64(base+4096), 256)
			ctx.Syscall(kernel.SysClose, fd)
		}
	}
}

type tracescaleCell struct {
	spans     int
	samples   int
	cats      [obs.NumCats]int
	jsonBytes int
	binBytes  int
	json      []byte
}

func tracescaleRun(kind machine.KernelKind, nodes int) (tracescaleCell, error) {
	m, err := machine.New(machine.Config{
		Nodes: nodes, Kind: kind, Seed: 1013, Reproducible: true,
		Obs: &obs.Config{SampleEvery: tracescaleEvery},
	})
	if err != nil {
		return tracescaleCell{}, err
	}
	defer m.Shutdown()
	if err := m.Run(tracescaleApp(m), kernel.JobParams{}, 0); err != nil {
		return tracescaleCell{}, err
	}
	for n, code := range m.ExitCodes() {
		if code != 0 {
			return tracescaleCell{}, fmt.Errorf("%v nodes %d: rank %d exited %d", kind, nodes, n, code)
		}
	}
	j, b := m.TraceJSON(), m.TraceBinary()
	if _, err := obs.Unmarshal(b); err != nil {
		return tracescaleCell{}, fmt.Errorf("%v nodes %d: binary trace does not decode: %v", kind, nodes, err)
	}
	return tracescaleCell{
		spans:     m.Obs.SpanCount(),
		samples:   m.Obs.SampleCount(),
		cats:      m.Obs.CatCounts(),
		jsonBytes: len(j),
		binBytes:  len(b),
		json:      j,
	}, nil
}

// TraceScaleMeasurement is one (kernel, nodes) cell of the tracescale
// sweep, exported for cmd/tracebench's machine-readable output.
type TraceScaleMeasurement struct {
	Spans        int
	Samples      int
	SchedSpans   int
	SyscallSpans int
	JSONBytes    int
	BinBytes     int
	SpansPerNode float64
	Identical    bool // a rerun's JSON export was byte-identical
}

// MeasureTraceScale runs one (kernel, nodes) cell twice and reports the
// trace-volume numbers plus rerun byte-identity of the JSON export.
func MeasureTraceScale(kind machine.KernelKind, nodes int) (TraceScaleMeasurement, error) {
	a, err := tracescaleRun(kind, nodes)
	if err != nil {
		return TraceScaleMeasurement{}, err
	}
	b, err := tracescaleRun(kind, nodes)
	if err != nil {
		return TraceScaleMeasurement{}, err
	}
	return TraceScaleMeasurement{
		Spans:        a.spans,
		Samples:      a.samples,
		SchedSpans:   a.cats[obs.CatSched],
		SyscallSpans: a.cats[obs.CatSyscall],
		JSONBytes:    a.jsonBytes,
		BinBytes:     a.binBytes,
		SpansPerNode: float64(a.spans) / float64(nodes),
		Identical:    string(a.json) == string(b.json),
	}, nil
}

// RunTraceScale sweeps node counts for both kernels with full tracing
// armed and asserts the volume and asymmetry shape.
func RunTraceScale(opt Options) (*Result, error) {
	counts := []int{1, 2, 4, 8}
	if opt.Quick {
		counts = []int{1, 4}
	}
	workers := opt.workers()

	r := &Result{ID: "tracescale", Title: "Span tracing: trace volume vs node count, CNK vs FWK", Pass: true}
	r.addf("per rank: %d x %.1f Mcyc compute + exchange + file coda; sampler every %.1f Mcyc; all span categories armed",
		tracescaleBursts, float64(tracescaleBurst)/1e6, float64(tracescaleEvery)/1e6)

	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "CNK"},
		{machine.KindFWK, "FWK"},
	}
	flat, err := replica.Run(workers, len(kinds)*len(counts), func(idx int) (tracescaleCell, error) {
		return tracescaleRun(kinds[idx/len(counts)].kind, counts[idx%len(counts)])
	})
	if err != nil {
		return nil, err
	}
	cells := make([][]tracescaleCell, len(kinds))
	for ki, k := range kinds {
		cells[ki] = flat[ki*len(counts) : (ki+1)*len(counts)]
		for ci, n := range counts {
			c := cells[ki][ci]
			r.addf("%s %2d nodes: %6d spans (%6.1f/node; sched %5d, syscall %4d, msg %3d, io %3d), %4d samples, json %7d B, bin %6d B (%4.1f%%)",
				k.name, n, c.spans, float64(c.spans)/float64(n),
				c.cats[obs.CatSched], c.cats[obs.CatSyscall], c.cats[obs.CatMsg], c.cats[obs.CatIO],
				c.samples, c.jsonBytes, c.binBytes, 100*float64(c.binBytes)/float64(c.jsonBytes))
		}
	}

	for ki, k := range kinds {
		// Volume grows with the machine: more nodes, more spans, more
		// bytes — strictly, at every step.
		for ci := 1; ci < len(counts); ci++ {
			prev, cur := cells[ki][ci-1], cells[ki][ci]
			if cur.spans <= prev.spans || cur.jsonBytes <= prev.jsonBytes {
				r.Pass = false
				r.notef("%s: trace volume did not grow %d -> %d nodes (%d -> %d spans)",
					k.name, counts[ci-1], counts[ci], prev.spans, cur.spans)
			}
		}
		// The binary ring must actually be compact.
		top := cells[ki][len(counts)-1]
		if top.binBytes >= top.jsonBytes {
			r.Pass = false
			r.notef("%s: binary trace (%d B) not smaller than JSON (%d B)", k.name, top.binBytes, top.jsonBytes)
		}
		if top.samples == 0 {
			r.Pass = false
			r.notef("%s: sampler recorded nothing over a %d Mcyc run", k.name, int(tracescaleBursts*tracescaleBurst/1e6))
		}
	}

	// The asymmetry: through an identical compute region, the FWK's tick
	// and daemons keep emitting scheduler spans while CNK's cores run
	// kernel-silent. Per node, FWK must carry at least 3x the spans and
	// an order of magnitude more sched spans.
	for ci, n := range counts {
		c, f := cells[0][ci], cells[1][ci]
		if f.spans < 3*c.spans {
			r.Pass = false
			r.notef("%d nodes: FWK %d spans < 3x CNK %d — tick/daemon chatter missing", n, f.spans, c.spans)
		}
		if f.cats[obs.CatSched] < 10*(c.cats[obs.CatSched]+1) {
			r.Pass = false
			r.notef("%d nodes: FWK sched spans %d vs CNK %d — expected an order of magnitude", n,
				f.cats[obs.CatSched], c.cats[obs.CatSched])
		}
	}

	// Byte-determinism spot check on the biggest FWK cell.
	again, err := tracescaleRun(machine.KindFWK, counts[len(counts)-1])
	if err != nil {
		return nil, err
	}
	if string(again.json) != string(cells[1][len(counts)-1].json) {
		r.Pass = false
		r.notef("FWK %d-node rerun JSON export not byte-identical — trace determinism broken", counts[len(counts)-1])
	}
	return r, nil
}
