package experiments

import (
	"bgcnk/internal/ctrlsys"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
)

// crashDrain drains the resilient queue with the write-ahead journal
// armed and service-node crashes injected at the given per-append rate
// (rate 0 with a nil plan is the crash-free reference drain, journal
// off — the fast path every crashed drain must be indistinguishable
// from).
func crashDrain(topo ctrlsys.Topology, kind machine.KernelKind, jobs []ctrlsys.Job,
	rate float64, workers int) (*ctrlsys.DrainResult, error) {
	cfg := ctrlsys.Config{
		Topology: topo, Kind: kind, Seed: 1009, Workers: workers,
		Faults: mtbfPlan(kind, 4e-3),
		Ckpt:   ctrlsys.CkptConfig{Enabled: true, Interval: 1},
	}
	if rate > 0 {
		cfg.Journal = ctrlsys.JournalConfig{Enabled: true, SegmentBytes: 4096}
		cfg.Crashes = &ras.CrashPlan{Seed: 0xdeadbeef, Rate: rate}
	}
	return ctrlsys.New(cfg).Drain(jobs)
}

// RunCrashes regenerates the crash-only control-system result: the same
// fault-ridden job queue is drained by a service node that is repeatedly
// killed at journal append points and recovered by WAL replay, across a
// sweep of crash rates. The claim under test is exactness, not
// degradation — every cell's final accounting (exit codes, work
// signatures, RAS streams, schedule) must be bit-identical to the
// crash-free drain, with only the crash/recovery bookkeeping differing.
// This is the paper's service-node single-point-of-failure lesson closed
// out: control-system state made as reproducible as the compute nodes'.
func RunCrashes(opt Options) (*Result, error) {
	topo := ctrlsys.Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2}
	jobs := mtbfJobs(5)
	if opt.Quick {
		jobs = mtbfJobs(4)
	}
	rates := []float64{0.05, 0.2}
	workers := opt.workers()

	r := &Result{ID: "crashes", Title: "Crash-only service node: WAL replay vs crash-free drain (exactness sweep)", Pass: true}
	// Worker count deliberately absent from the render: the commit
	// pipeline is serial, so crash schedules and recovery accounting are
	// bit-identical at any width and the render stays golden-pinned.
	r.addf("topology: %d midplanes x %d nodes, %d jobs, fault rate 4e-3, checkpoint interval 1",
		topo.Midplanes(), topo.NodesPerMidplane, len(jobs))

	for _, k := range []struct {
		kind machine.KernelKind
		name string
	}{{machine.KindCNK, "CNK"}, {machine.KindFWK, "FWK"}} {
		base, err := crashDrain(topo, k.kind, jobs, 0, workers)
		if err != nil {
			return nil, err
		}
		r.addf("%s crash-free: %d jobs, %d restarts, signature %016x",
			k.name, len(base.Results), base.Restarts, base.Signature())
		totalCrashes := 0
		for _, rate := range rates {
			res, err := crashDrain(topo, k.kind, jobs, rate, workers)
			if err != nil {
				return nil, err
			}
			exact := res.Signature() == base.Signature()
			r.addf("%s rate %.2f: %d crashes (%d during recovery), %d recoveries, %d records replayed, %d resumed / %d requeued, recovery latency %.0fus, journal %dB in %d segments, exact=%v",
				k.name, rate,
				res.Crash.Crashes, res.Crash.ByClass[ras.CrashDuringRecovery],
				res.Crash.Recoveries, res.Crash.RecordsReplayed,
				res.Crash.Resumed, res.Crash.Requeued,
				res.Crash.RecoveryLatency.Micros(),
				res.Journal.Bytes, res.Journal.Segments, exact)
			totalCrashes += res.Crash.Crashes
			if !exact {
				r.Pass = false
				r.notef("%s rate %.2f: crashed drain diverged from crash-free (%016x vs %016x)",
					k.name, rate, res.Signature(), base.Signature())
			}
			if res.CrashAborted != 0 {
				r.Pass = false
				r.notef("%s rate %.2f: journaled drain aborted %d jobs", k.name, rate, res.CrashAborted)
			}
		}
		if totalCrashes == 0 {
			r.Pass = false
			r.notef("%s: no crash fired across the sweep; the exactness claim is vacuous", k.name)
		}
	}
	r.notef("every recovery replays the journal into a fresh service node, kills orphaned partitions, and resumes from each job's last durable checkpoint")
	return r, nil
}
