package experiments

import (
	"fmt"
	"strings"

	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
	"bgcnk/internal/upc"
)

// faultPlan is the equal-rate plan both kernels face in the
// stability-under-fault comparison. The rates are per-opportunity (per
// DDR fill, per TLB match, per packet, per CIOD reply), tuned so a quick
// LINPACK run draws a handful of events of each class.
func faultPlan(seed uint64) *ras.Plan {
	return &ras.Plan{
		Seed:             seed,
		DDRCorrectable:   2e-4,
		DDRUncorrectable: 4e-5,
		TLBParity:        2e-6,
		LinkCRC:          2e-2,
		CIODDrop:         0.1,
	}
}

type faultRun struct {
	now       sim.Cycles
	hash      uint64
	rasHash   uint64
	completed bool
	table     string
	counters  upc.Snapshot
}

// faultyLinpackOnce runs the HPL proxy on a 4-node machine under the
// seeded fault plan. A matrix-sweep load phase precedes the solve:
// LINPACK's panel kernel is pure compute in our model, so the sweep
// stands in for its matrix traffic and gives the DDR fill path — where
// ECC faults are drawn — real opportunities.
func faultyLinpackOnce(kind machine.KernelKind, seed uint64, cfg apps.LinpackConfig) (faultRun, error) {
	m, err := machine.New(machine.Config{
		Nodes: 4, Kind: kind, Seed: seed,
		Reproducible: kind == machine.KindCNK,
		Faults:       faultPlan(seed),
	})
	if err != nil {
		return faultRun{}, err
	}
	defer m.Shutdown()
	runErr := m.Run(func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		buf := make([]byte, 128)
		for i := 0; i < 1500; i++ {
			ctx.Load(base+hw.VAddr((i*4096)%(4<<20)), buf)
		}
		apps.Linpack(ctx, env.MPI, base, cfg)
	}, kernel.JobParams{}, sim.FromSeconds(600))
	out := faultRun{
		now:      m.Eng.Now(),
		hash:     m.Eng.Trace().Hash(),
		rasHash:  m.RAS.Hash(),
		table:    m.RAS.Table(),
		counters: m.MergedCounters(),
	}
	// Under CNK an uncorrectable error kills one rank, which strands its
	// peers in the allreduce; the job "did not finish" is the
	// interruption we are measuring, not a harness error.
	if runErr == nil {
		out.completed = true
		for _, c := range m.ExitCodes() {
			if c != 0 {
				out.completed = false
			}
		}
	}
	return out, nil
}

type recoveryOutcome struct {
	latency        sim.Cycles
	dur1, dur2     sim.Cycles
	codes1, codes2 string
	kills          uint64
}

// recoveryUnderFault measures the paper's recovery story end to end: a
// memory-heavy job is killed by an injected uncorrectable DDR error, the
// machine performs the Section III coordinated reproducible reset with
// the fault schedule rewound, and the re-run replays the interrupted run
// cycle-exactly. The reported latency spans reset initiation (barrier,
// Boot SRAM rendezvous, cache flush, DDR self-refresh, reset toggle) to
// the restarted kernel's boot completing.
func recoveryUnderFault(seed uint64) (recoveryOutcome, error) {
	plan := &ras.Plan{Seed: seed, DDRUncorrectable: 2e-3, DDRCorrectable: 1e-3}
	m, err := machine.New(machine.Config{Nodes: 2, Kind: machine.KindCNK, Reproducible: true, Faults: plan})
	if err != nil {
		return recoveryOutcome{}, err
	}
	defer m.Shutdown()
	app := func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		buf := make([]byte, 128)
		for i := 0; i < 3000; i++ {
			ctx.Load(base+hw.VAddr((i*4096)%(4<<20)), buf)
		}
	}
	if err := m.Run(app, kernel.JobParams{}, sim.FromSeconds(600)); err != nil {
		return recoveryOutcome{}, err
	}
	out := recoveryOutcome{kills: m.RAS.Count(ras.JobKill)}
	if out.kills == 0 {
		return out, fmt.Errorf("no JobKill at fault seed %#x; retune the plan", seed)
	}
	out.codes1 = fmt.Sprint(m.ExitCodes())
	out.dur1 = m.Eng.Now() - m.CNKs[0].BootedAt

	resetStart := m.Eng.Now()
	for i, k := range m.CNKs {
		i, k := i, k
		m.Eng.Go("lowcore", func(c *sim.Coro) {
			k.CoordinatedReset(c, m.Bar, i)
		})
	}
	m.Eng.RunUntilIdle()
	m.ResetFaults()
	for i, k := range m.CNKs {
		if err := k.RestartReproducible(); err != nil {
			return out, fmt.Errorf("chip %d restart: %v", i, err)
		}
	}
	restartBoot := m.CNKs[0].BootedAt
	out.latency = restartBoot - resetStart
	m.ClearJobs()
	if err := m.Run(app, kernel.JobParams{}, sim.FromSeconds(600)); err != nil {
		return out, err
	}
	out.codes2 = fmt.Sprint(m.ExitCodes())
	out.dur2 = m.Eng.Now() - restartBoot
	return out, nil
}

func addRASTable(r *Result, label, table string) {
	r.addf("%s RAS counters:", label)
	for _, line := range strings.Split(strings.TrimRight(table, "\n"), "\n") {
		r.addf("    %s", line)
	}
}

// RunFaults is the stability-under-fault experiment: repeated LINPACK
// runs on both kernels under one seeded fault plan. The paper's
// reliability posture (Section III/V) is that CNK converts faults into
// clean, diagnosable outcomes — RAS events, a killed job, a reproducible
// reset that replays the failure — while a Linux-like kernel absorbs
// them in place and presses on with jittery in-kernel recovery. Both
// behaviours are deterministic here: a fault seed fully determines the
// schedule, so every completion, kill, and recovery is replayable.
func RunFaults(opt Options) (*Result, error) {
	runs := 12
	cfg := apps.DefaultLinpack()
	if opt.Quick {
		runs = 6
		cfg.Panels = 12
	}
	r := &Result{ID: "faults", Title: "Stability under injected faults: CNK vs FWK at equal fault rates", Pass: true}

	// Every faulty run is an independent replica (own machine, own fault
	// streams), so both kernels' whole run batteries fan across the
	// worker pool at once — flat index kind*runs+i — plus one same-seed
	// replay per kernel tacked on at the end for the bit-identity check.
	// All accounting happens after the barrier, in seed order.
	kinds := []machine.KernelKind{machine.KindCNK, machine.KindFWK}
	frs, err := replica.Run(opt.workers(), len(kinds)*runs+len(kinds), func(idx int) (faultRun, error) {
		if idx >= len(kinds)*runs { // replay arm: seed 1 again
			return faultyLinpackOnce(kinds[idx-len(kinds)*runs], 1, cfg)
		}
		return faultyLinpackOnce(kinds[idx/runs], uint64(idx%runs+1), cfg)
	})
	if err != nil {
		return nil, err
	}
	var reps [2]faultRun
	var cnkDone faultRun
	done := map[machine.KernelKind]int{}
	for ki, kind := range kinds {
		for i := 0; i < runs; i++ {
			fr := frs[ki*runs+i]
			if fr.completed {
				if kind == machine.KindCNK && done[kind] == 0 {
					cnkDone = fr
				}
				done[kind]++
			}
			if i == 0 {
				reps[kind] = fr
				// The acceptance property: two runs at the same fault
				// seed are bit-identical — same cycle total, same trace
				// hash, same RAS log.
				again := frs[len(kinds)*runs+ki]
				if again.now != fr.now || again.hash != fr.hash || again.rasHash != fr.rasHash {
					r.Pass = false
					r.notef("%v: same fault seed did not replay identically (wall %d vs %d cycles, ras %x vs %x)",
						kind, fr.now, again.now, fr.rasHash, again.rasHash)
				}
			}
		}
	}
	r.addf("plan: per-opportunity rates — DDR ECC corr 2e-4 / unc 4e-5, TLB parity 2e-6, link CRC 2e-2 per transfer, CIOD reply drop 10%%")
	r.addf("CNK: %d/%d runs completed; interrupted runs were killed cleanly (SIGBUS) with the fault logged to RAS",
		done[machine.KindCNK], runs)
	r.addf("FWK: %d/%d runs completed; uncorrectable errors absorbed by jittery in-kernel scrub stalls",
		done[machine.KindFWK], runs)
	r.addf("same-seed replay: identical cycle totals, trace hashes and RAS logs on both kernels")
	c := cnkDone.counters
	r.addf("CNK completed-run UPC: link_crc=%d retrans=%d ciod_timeout=%d ciod_retry=%d ecc_corrected=%d ecc_uncorrectable=%d",
		c.Total(upc.LinkCRC), c.Total(upc.LinkRetransmit), c.Total(upc.CIODTimeout),
		c.Total(upc.CIODRetry), c.Total(upc.RASCorrectable), c.Total(upc.RASUncorrectable))
	addRASTable(r, "CNK seed-1", reps[machine.KindCNK].table)
	addRASTable(r, "FWK seed-1", reps[machine.KindFWK].table)
	if done[machine.KindFWK] != runs {
		r.Pass = false
		r.notef("FWK interrupted %d runs; the scrub path should absorb every fault", runs-done[machine.KindFWK])
	}
	if done[machine.KindCNK] == runs {
		r.Pass = false
		r.notef("no CNK run was interrupted; the uncorrectable rate is too low to exercise the kill path")
	}

	rec, err := recoveryUnderFault(0xfa1175eed)
	if err != nil {
		return nil, err
	}
	r.addf("recovery: uncorrectable ECC killed the job (%d kill events); coordinated reset + rewound fault schedule rebooted in %d cycles (%.1fus)",
		rec.kills, rec.latency, us(rec.latency))
	r.addf("replay after reset: %d vs %d cycles, exit codes %s vs %s",
		rec.dur1, rec.dur2, rec.codes1, rec.codes2)
	if rec.latency <= 0 {
		r.Pass = false
		r.notef("recovery latency not positive")
	}
	if rec.dur1 != rec.dur2 || rec.codes1 != rec.codes2 {
		r.Pass = false
		r.notef("the re-run after the reproducible reset did not replay the interrupted run cycle-exactly")
	}
	r.notef("paper Section III: reproducible mode makes a failed run replayable for diagnosis; the RAS tables show where equal fault rates land on each kernel")
	return r, nil
}
