// Package experiments regenerates every table and figure in the paper's
// evaluation: the FWQ noise plots (Figs 5–7), the messaging latency table
// (Table I), the rendezvous bandwidth curve (Fig 8), the LINPACK and
// allreduce stability results (Section V-D), the capability tables
// (Tables II–III), the VHDL boot-time comparison and the
// cycle-reproducibility demonstrations (Section III). Each runner returns
// a Result whose Pass field asserts the paper's qualitative shape.
package experiments

import (
	"fmt"
	"strings"

	"bgcnk/internal/sim"
)

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	Lines []string
	Pass  bool
	Notes []string
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result for a report.
func (r *Result) Render() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "   %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Options scales experiment sizes: Quick shrinks sample counts so the
// whole suite runs in seconds (used by tests); the full sizes match the
// paper's configurations.
type Options struct {
	Quick bool
}

// Runner produces one artifact.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs (paper artifact names) to runners.
var Registry = map[string]Runner{
	"fig5-7":     RunFWQ,
	"table1":     RunTable1,
	"fig8":       RunFig8,
	"linpack":    RunLinpack,
	"allreduce":  RunAllreduce,
	"table2":     RunTable2,
	"table3":     RunTable3,
	"boot":       RunBoot,
	"throughput": RunThroughput,
	"repro":      RunRepro,
	"faults":     RunFaults,
	"mtbf":       RunMTBF,
	"ablations":  RunAblations,
}

// Order lists the artifacts in paper order.
var Order = []string{"fig5-7", "table1", "fig8", "linpack", "allreduce", "table2", "table3", "boot", "throughput", "repro", "faults", "mtbf", "ablations"}

// RunAll executes every experiment in paper order.
func RunAll(opt Options) ([]*Result, error) {
	var out []*Result
	for _, id := range Order {
		r, err := Registry[id](opt)
		if err != nil {
			return out, fmt.Errorf("%s: %v", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func us(c sim.Cycles) float64 { return c.Micros() }
