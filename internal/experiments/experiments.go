// Package experiments regenerates every table and figure in the paper's
// evaluation: the FWQ noise plots (Figs 5–7), the messaging latency table
// (Table I), the rendezvous bandwidth curve (Fig 8), the LINPACK and
// allreduce stability results (Section V-D), the capability tables
// (Tables II–III), the VHDL boot-time comparison and the
// cycle-reproducibility demonstrations (Section III). Each runner returns
// a Result whose Pass field asserts the paper's qualitative shape.
package experiments

import (
	"fmt"
	"strings"

	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	Lines []string
	Pass  bool
	Notes []string
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result for a report.
func (r *Result) Render() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "   %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Options scales experiment sizes: Quick shrinks sample counts so the
// whole suite runs in seconds (used by tests); the full sizes match the
// paper's configurations. Workers bounds the replica pool the runners
// fan independent simulations across (sweep points, repeated runs,
// drain jobs); 0 means replica.DefaultWorkers, 1 is the serial
// reference. Renders are bit-identical at every worker count — that
// invariance is gated in CI (TestRenderWorkerInvariance).
type Options struct {
	Quick   bool
	Workers int
}

// workers resolves Options.Workers to a concrete pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return replica.DefaultWorkers()
}

// Runner produces one artifact.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs (paper artifact names) to runners.
var Registry = map[string]Runner{
	"fig5-7":     RunFWQ,
	"table1":     RunTable1,
	"fig8":       RunFig8,
	"linpack":    RunLinpack,
	"allreduce":  RunAllreduce,
	"table2":     RunTable2,
	"table3":     RunTable3,
	"boot":       RunBoot,
	"throughput": RunThroughput,
	"repro":      RunRepro,
	"faults":     RunFaults,
	"mtbf":       RunMTBF,
	"crashes":    RunCrashes,
	"ioscale":    RunIOScale,
	"degrade":    RunDegrade,
	"tracescale": RunTraceScale,
	"ablations":  RunAblations,
}

// Order lists the artifacts in paper order.
var Order = []string{"fig5-7", "table1", "fig8", "linpack", "allreduce", "table2", "table3", "boot", "throughput", "repro", "faults", "mtbf", "crashes", "ioscale", "degrade", "tracescale", "ablations"}

// RunAll executes every experiment and returns the results in paper
// order. Runners are independent replicas (each builds its own engines
// and machines), so they fan across the worker pool; the merge is in
// Order, and on failure the successful prefix is returned with the
// lowest-ordered error.
func RunAll(opt Options) ([]*Result, error) {
	type outcome struct {
		r   *Result
		err error
	}
	outs := replica.Map(opt.workers(), len(Order), func(i int) outcome {
		r, err := Registry[Order[i]](opt)
		return outcome{r, err}
	})
	var out []*Result
	for i, o := range outs {
		if o.err != nil {
			return out, fmt.Errorf("%s: %v", Order[i], o.err)
		}
		out = append(out, o.r)
	}
	return out, nil
}

func us(c sim.Cycles) float64 { return c.Micros() }
