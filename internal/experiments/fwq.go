package experiments

import (
	"fmt"

	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/noise"
	"bgcnk/internal/nptl"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// FWQOutcome is the raw material of Figs 5–7: per-core sample vectors plus
// the UPC counter delta attributed to the run (boot excluded).
type FWQOutcome struct {
	Kernel   string
	PerCore  [][]sim.Cycles
	Stats    []noise.Stats
	Counters upc.Snapshot
}

// fwqOn runs the paper's FWQ configuration (a thread per core) on the
// given kernel and returns per-core samples.
func fwqOn(kind machine.KernelKind, samples int, seed uint64) (*FWQOutcome, error) {
	m, err := machine.New(machine.Config{
		Nodes: 1, Kind: kind, Seed: seed, MaxThreadsPerCore: 1,
	})
	if err != nil {
		return nil, err
	}
	defer m.Shutdown()
	cfg := apps.DefaultFWQ()
	cfg.Samples = samples
	perCore := make([][]sim.Cycles, hw.CoresPerChip)
	before := m.CounterSnapshot(0)
	err = m.Run(func(ctx kernel.Context, env *machine.Env) {
		lib, err := nptl.Init(ctx)
		if err != nil {
			return
		}
		base := m.HeapBase(ctx) + hw.VAddr(1<<20)
		run := func(c kernel.Context) {
			slot := c.CoreID()
			perCore[slot] = apps.FWQ(c, base+hw.VAddr(slot)*hw.VAddr(512<<10), cfg)
		}
		var pts []*nptl.PThread
		for i := 0; i < hw.CoresPerChip-1; i++ {
			pt, errno := lib.PthreadCreate(ctx, run)
			if errno != kernel.OK {
				return
			}
			pts = append(pts, pt)
		}
		run(ctx)
		for _, pt := range pts {
			lib.PthreadJoin(ctx, pt)
		}
	}, kernel.JobParams{}, sim.FromSeconds(600))
	if err != nil {
		return nil, err
	}
	out := &FWQOutcome{
		Kernel:   kind.String(),
		PerCore:  perCore,
		Counters: upc.Delta(before, m.CounterSnapshot(0)),
	}
	for _, s := range perCore {
		out.Stats = append(out.Stats, noise.Analyze(s))
	}
	return out, nil
}

// RunFWQ regenerates Figs 5, 6 and 7: FWQ on the FWK (noisy, >5% on
// cores 0/2/3) and on CNK (max variation <0.006%), with the shared
// minimum of 658,958 cycles.
func RunFWQ(opt Options) (*Result, error) {
	samples := 12000
	if opt.Quick {
		samples = 1500
	}
	lnx, err := fwqOn(machine.KindFWK, samples, 1)
	if err != nil {
		return nil, err
	}
	cnk, err := fwqOn(machine.KindCNK, samples, 1)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig5-7", Title: "FWQ noise: Linux (Fig 5) vs CNK (Figs 6-7)", Pass: true}
	r.addf("%d samples/core of %d-cycle DAXPY quanta (paper min: %d)", samples, uint64(apps.FWQExpectedMin), uint64(apps.FWQExpectedMin))
	for core := 0; core < hw.CoresPerChip; core++ {
		l, c := lnx.Stats[core], cnk.Stats[core]
		r.addf("core %d: Linux min=%d max=%d (+%d cy, %.3f%%) | CNK min=%d max=%d (+%d cy, %.4f%%)",
			core, uint64(l.Min), uint64(l.Max), uint64(l.Max-l.Min), l.MaxVariationPct,
			uint64(c.Min), uint64(c.Max), uint64(c.Max-c.Min), c.MaxVariationPct)
	}

	// Shape assertions from the paper.
	for core := 0; core < hw.CoresPerChip; core++ {
		c := cnk.Stats[core]
		if c.Min != apps.FWQExpectedMin {
			r.Pass = false
			r.notef("CNK core %d min %d != calibrated 658958", core, uint64(c.Min))
		}
		if c.MaxVariationPct >= 0.006 {
			r.Pass = false
			r.notef("CNK core %d variation %.4f%% >= 0.006%%", core, c.MaxVariationPct)
		}
	}
	for _, core := range []int{0, 2, 3} {
		if lnx.Stats[core].MaxVariationPct < 5.0 {
			r.Pass = false
			r.notef("Linux core %d variation %.3f%% < 5%%", core, lnx.Stats[core].MaxVariationPct)
		}
	}
	if v := lnx.Stats[1].MaxVariationPct; v >= 5.0 || v < 0.5 {
		r.Pass = false
		r.notef("Linux core 1 variation %.3f%% out of the paper's ~1.2%% regime", v)
	}
	if lnx.Stats[0].Min != cnk.Stats[0].Min {
		r.notef("minima differ across kernels: Linux %d vs CNK %d (paper: both achieve 658958)",
			uint64(lnx.Stats[0].Min), uint64(cnk.Stats[0].Min))
	}

	// Fig 7's zoomed view: CNK still shows a tiny non-zero fuzz from real
	// L1 conflicts (the results array) — assert it exists but is tiny.
	var anyFuzz bool
	for _, c := range cnk.Stats {
		if c.Max > c.Min {
			anyFuzz = true
		}
	}
	if anyFuzz {
		r.addf("Fig 7 zoom: CNK per-sample fuzz present (conflict misses), bounded <0.006%%")
	} else {
		r.addf("Fig 7 zoom: CNK samples bit-identical")
	}
	// UPC counter table: the mechanisms behind the two noise profiles,
	// measured rather than inferred from the distributions.
	r.addf("UPC counters over the run (all cores summed):")
	r.addf("  %-14s %12s %12s", "counter", "Linux", "CNK")
	for _, c := range []upc.Counter{
		upc.TimerTick, upc.Preemption, upc.DaemonRun, upc.ContextSwitch,
		upc.Interrupt, upc.TLBMiss, upc.PageFault, upc.SyscallTotal,
	} {
		r.addf("  %-14s %12d %12d", c, lnx.Counters.Total(c), cnk.Counters.Total(c))
	}
	for _, c := range []upc.Counter{upc.TimerTick, upc.Preemption, upc.DaemonRun, upc.PageFault} {
		if n := cnk.Counters.Total(c); n != 0 {
			r.Pass = false
			r.notef("CNK %v count %d != 0 (tickless, non-preemptive, statically mapped)", c, n)
		}
	}
	for _, c := range []upc.Counter{upc.TimerTick, upc.Preemption, upc.DaemonRun} {
		if lnx.Counters.Total(c) == 0 {
			r.Pass = false
			r.notef("Linux %v count is 0; the noise sources should be visible in the counters", c)
		}
	}

	amp := noise.BSPAmplification(lnx.PerCore[0], 1024, 200, 7)
	r.addf("Petrini amplification of the Linux core-0 distribution at 1024 nodes: %.3fx", amp)
	cnkAmp := noise.BSPAmplification(cnk.PerCore[0], 1024, 200, 7)
	r.addf("same for CNK: %.5fx", cnkAmp)
	if cnkAmp > amp {
		r.Pass = false
		r.notef("CNK amplification exceeds Linux's")
	}
	_ = fmt.Sprintf
	return r, nil
}
