package experiments

import (
	"fmt"

	"bgcnk/internal/ion"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
	"bgcnk/internal/upc"
)

// The ioscale experiment: how far does one I/O node stretch? The paper's
// function-shipping design (Section IV-A) hangs on a CN:ION fan-in of 8
// to 128 compute nodes per I/O node, all funneling file syscalls over one
// collective-tree uplink into one CIOD. This sweep builds a machine per
// ratio with the aggregation subsystem armed — shared uplink, bounded
// ingress queue, coalescer, write-back cache — runs the same per-rank
// I/O workload, and measures where aggregate bandwidth saturates and how
// much of the cost surfaces as compute-node stall cycles in the UPC.
//
// The CNK-vs-FWK asymmetry under test: CNK ships *every* file syscall
// (metadata included) through the ION's credit gate, while the FWK's
// NFS-model client pays the shared uplink only for read/write data and
// keeps metadata in its local attribute cache.

const (
	ioscaleChunk    = 1024 // bytes per write
	ioscaleWrites   = 12   // writes per compute node
	ioscaleQueue    = 16  // ingress credits per ION
	ioscaleCacheBlk = 512 // cache blocks per ION (the ION runs Linux: a real page cache)
)

// ioscaleApp is the per-rank workload: stream chunks into a private file
// with a metadata probe every third write, then fsync and close. Only
// rank-local state, so the sweep scales to any node count.
func ioscaleApp(m *machine.Machine) machine.App {
	return func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		ctx.Store(base, append([]byte(fmt.Sprintf("/gpfs/io%03d", env.Node)), 0))
		fd, errno := ctx.Syscall(kernel.SysOpen, uint64(base), kernel.OCreat|kernel.OWronly, 0644)
		if errno != kernel.OK {
			ctx.Syscall(kernel.SysExit, uint64(errno))
			return
		}
		ctx.Store(base+4096, make([]byte, ioscaleChunk))
		for i := 0; i < ioscaleWrites; i++ {
			ctx.Syscall(kernel.SysWrite, fd, uint64(base+4096), ioscaleChunk)
			if i%3 == 2 {
				// Metadata: a shipped call on CNK, a local attribute-cache
				// hit on the FWK.
				ctx.Syscall(kernel.SysFstat, fd, uint64(base+8192))
			}
		}
		ctx.Syscall(kernel.SysFsync, fd)
		ctx.Syscall(kernel.SysClose, fd)
	}
}

type ioscaleCell struct {
	elapsed   sim.Cycles
	stall     uint64 // merged CN IONStallCycles
	admits    uint64
	coalesced uint64
	hits      uint64
	misses    uint64
	counters  upc.Snapshot
}

func (c ioscaleCell) mbps(ratio int) float64 {
	total := float64(ratio * ioscaleWrites * ioscaleChunk)
	return total / 1e6 / c.elapsed.Seconds()
}

func ioscaleRun(kind machine.KernelKind, ratio int) (ioscaleCell, error) {
	m, err := machine.New(machine.Config{
		Nodes: ratio, Kind: kind, Seed: 1009, CNsPerION: ratio,
		ION: &ion.Config{QueueDepth: ioscaleQueue, CacheBlocks: ioscaleCacheBlk},
	})
	if err != nil {
		return ioscaleCell{}, err
	}
	defer m.Shutdown()
	t0 := m.Eng.Now()
	if err := m.Run(ioscaleApp(m), kernel.JobParams{}, 0); err != nil {
		return ioscaleCell{}, err
	}
	for n, code := range m.ExitCodes() {
		if code != 0 {
			return ioscaleCell{}, fmt.Errorf("%v ratio %d: rank %d exited %d", kind, ratio, n, code)
		}
	}
	s := m.IONStats()[0]
	ctr := m.MergedCounters()
	return ioscaleCell{
		elapsed:   m.Eng.Now() - t0,
		stall:     ctr.Total(upc.IONStallCycles),
		admits:    s.Admitted,
		coalesced: s.Coalesced,
		hits:      s.CacheHits,
		misses:    s.CacheMisses,
		counters:  ctr,
	}, nil
}

// IOScaleMeasurement is one (kernel, ratio) cell of the ioscale sweep
// in report units, exported for cmd/ionbench's machine-readable output.
type IOScaleMeasurement struct {
	ElapsedMs float64
	AggMBps   float64
	PerCNMBps float64
	StallKcyc float64
	Admits    uint64
	Coalesced uint64
	HitRate   float64 // percent
	Identical bool    // a rerun was bit-identical (counters and cycles)
}

// MeasureIOScale runs one (kernel, ratio) cell of the ioscale sweep
// twice and reports the measured numbers plus whether the rerun came
// out bit-identical. The experiment itself (RunIOScale) gates the
// sweep's qualitative shape; this is the raw-number hook for benches.
func MeasureIOScale(kind machine.KernelKind, ratio int) (IOScaleMeasurement, error) {
	a, err := ioscaleRun(kind, ratio)
	if err != nil {
		return IOScaleMeasurement{}, err
	}
	b, err := ioscaleRun(kind, ratio)
	if err != nil {
		return IOScaleMeasurement{}, err
	}
	hitRate := 0.0
	if a.hits+a.misses > 0 {
		hitRate = 100 * float64(a.hits) / float64(a.hits+a.misses)
	}
	return IOScaleMeasurement{
		ElapsedMs: a.elapsed.Seconds() * 1e3,
		AggMBps:   a.mbps(ratio),
		PerCNMBps: a.mbps(ratio) / float64(ratio),
		StallKcyc: float64(a.stall) / 1e3,
		Admits:    a.admits,
		Coalesced: a.coalesced,
		HitRate:   hitRate,
		Identical: a.counters == b.counters && a.elapsed == b.elapsed,
	}, nil
}

// RunIOScale sweeps the CN:ION ratio for both kernels and asserts the
// paper's aggregation shape: per-CN bandwidth falls monotonically as more
// compute nodes share the I/O node (the shared uplink and ingress queue
// saturate), the lost time is visible as CN-side stall cycles, and the
// FWK's ship-only-data path stalls less than CNK's ship-everything path
// at the same fan-in.
func RunIOScale(opt Options) (*Result, error) {
	ratios := []int{8, 16, 32, 64, 128}
	if opt.Quick {
		ratios = []int{8, 32, 128}
	}
	workers := opt.workers()

	r := &Result{ID: "ioscale", Title: "I/O-node aggregation: bandwidth and backpressure vs CN:ION ratio", Pass: true}
	r.addf("per CN: %d writes x %d B + metadata probes, fsync, close; ION queue %d credits, cache %d blocks",
		ioscaleWrites, ioscaleChunk, ioscaleQueue, ioscaleCacheBlk)

	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "CNK"},
		{machine.KindFWK, "FWK"},
	}
	// Every (kernel, ratio) cell is an independent machine, so the whole
	// sweep fans across the worker pool; rendering happens after the
	// barrier in sweep order, identical at any pool size.
	flat, err := replica.Run(workers, len(kinds)*len(ratios), func(idx int) (ioscaleCell, error) {
		return ioscaleRun(kinds[idx/len(ratios)].kind, ratios[idx%len(ratios)])
	})
	if err != nil {
		return nil, err
	}
	cells := make([][]ioscaleCell, len(kinds))
	for ki, k := range kinds {
		cells[ki] = flat[ki*len(ratios) : (ki+1)*len(ratios)]
		for ri, ratio := range ratios {
			c := cells[ki][ri]
			hitRate := 0.0
			if c.hits+c.misses > 0 {
				hitRate = 100 * float64(c.hits) / float64(c.hits+c.misses)
			}
			r.addf("%s %3d CN/ION: %8.3f ms, %7.2f MB/s agg (%5.3f MB/s per CN), stall %8.1f kcyc, admits %5d, coalesced %4d, cache hit %5.1f%%",
				k.name, ratio, c.elapsed.Seconds()*1e3, c.mbps(ratio), c.mbps(ratio)/float64(ratio),
				float64(c.stall)/1e3, c.admits, c.coalesced, hitRate)
		}
	}

	for ki, k := range kinds {
		// Saturation: each doubling of the fan-in must cost per-CN
		// bandwidth — the shared uplink serializes, the credit gate
		// backpressures, and no cache can hide a link.
		for ri := 1; ri < len(ratios); ri++ {
			prev := cells[ki][ri-1].mbps(ratios[ri-1]) / float64(ratios[ri-1])
			cur := cells[ki][ri].mbps(ratios[ri]) / float64(ratios[ri])
			if cur >= prev {
				r.Pass = false
				r.notef("%s: per-CN bandwidth rose from %.4f to %.4f MB/s going %d -> %d CN/ION — no saturation",
					k.name, prev, cur, ratios[ri-1], ratios[ri])
			}
		}
		// The lost bandwidth must be *observable* as CN stall cycles, and
		// grow with the fan-in.
		top, bottom := cells[ki][len(ratios)-1], cells[ki][0]
		if top.stall == 0 {
			r.Pass = false
			r.notef("%s: no stall cycles at %d CN/ION — backpressure invisible", k.name, ratios[len(ratios)-1])
		}
		if top.stall <= bottom.stall {
			r.Pass = false
			r.notef("%s: stall cycles did not grow with fan-in (%d at %d vs %d at %d)",
				k.name, top.stall, ratios[len(ratios)-1], bottom.stall, ratios[0])
		}
		_ = ki
		_ = k
	}

	// The shipping asymmetry: CNK funnels every call through the ION's
	// ingress queue (admits > 0, coalescing active); the FWK never enters
	// the credit gate (admits 0) and, paying the uplink only for data,
	// stalls less at the same fan-in.
	topCNK, topFWK := cells[0][len(ratios)-1], cells[1][len(ratios)-1]
	if topCNK.admits == 0 || topCNK.coalesced == 0 {
		r.Pass = false
		r.notef("CNK at top ratio: admits %d, coalesced %d — aggregation not engaged", topCNK.admits, topCNK.coalesced)
	}
	if topFWK.admits != 0 {
		r.Pass = false
		r.notef("FWK entered the CIOD credit gate (%d admits); the NFS model ships no calls", topFWK.admits)
	}
	if topCNK.stall <= topFWK.stall {
		r.Pass = false
		r.notef("CNK stall %d <= FWK stall %d at %d CN/ION; ship-everything must stall more than ship-data-only",
			topCNK.stall, topFWK.stall, ratios[len(ratios)-1])
	}

	// Determinism spot check on the most contended cell: a rerun must be
	// bit-identical, counters and elapsed cycles both.
	again, err := ioscaleRun(machine.KindCNK, ratios[len(ratios)-1])
	if err != nil {
		return nil, err
	}
	if again.counters != topCNK.counters || again.elapsed != topCNK.elapsed {
		r.Pass = false
		r.notef("CNK %d CN/ION rerun diverged: %d vs %d cycles — determinism broken",
			ratios[len(ratios)-1], again.elapsed, topCNK.elapsed)
	}
	return r, nil
}
