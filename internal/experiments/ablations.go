package experiments

import (
	"bgcnk/internal/apps"
	"bgcnk/internal/fwk"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/noise"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// RunAblations isolates the design choices DESIGN.md calls out, one
// mechanism at a time:
//
//  1. L3 bank mapping sweep — the paper's Section III chip-design story:
//     CNK's config flags let application kernels run under varied
//     physical-memory-to-cache-bank mappings, "optimizing the memory
//     system hierarchy to minimize conflicts".
//  2. Noise-source ablation — FWK jitter decomposed: ticks only, ticks +
//     daemons; showing the daemons (not the tick ISR) carry the >5%
//     spikes of Fig 5.
//  3. Eager/rendezvous crossover — the protocol switch the MPI layer
//     makes at EagerMax, visible as a latency step.
//  4. I/O-path ablation — the same write syscall costs more one-way under
//     function shipping than against a local kernel filesystem, and the
//     paper's trade (CNK buys zero in-kernel filesystem complexity and 1
//     filesystem client) is what it buys with that latency.
func RunAblations(opt Options) (*Result, error) {
	r := &Result{ID: "ablations", Title: "Design-choice ablations (DESIGN.md §5)", Pass: true}

	if err := ablateL3Mapping(opt, r); err != nil {
		return nil, err
	}
	if err := ablateNoiseSources(opt, r); err != nil {
		return nil, err
	}
	if err := ablateCrossover(opt, r); err != nil {
		return nil, err
	}
	if err := ablateIOPath(opt, r); err != nil {
		return nil, err
	}
	return r, nil
}

// ablateL3Mapping runs a power-of-two-strided kernel (the pathological
// access pattern) under both L3 bank mappings and compares miss rates.
func ablateL3Mapping(opt Options, r *Result) error {
	run := func(mapping hw.L3Mapping) (uint64, uint64, error) {
		m, err := machine.New(machine.Config{Nodes: 1, Kind: machine.KindCNK, MemSize: 512 << 20})
		if err != nil {
			return 0, 0, err
		}
		defer m.Shutdown()
		m.Chips[0].Cache.SetL3Mapping(mapping)
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			base := m.HeapBase(ctx)
			// Stride of exactly L3Sets*L3LineSize: every access maps to
			// one set under the modulo policy.
			stride := uint64(hw.L3Sets * hw.L3LineSize)
			passes := 6
			if opt.Quick {
				passes = 3
			}
			for p := 0; p < passes; p++ {
				for i := uint64(0); i < 64; i++ {
					ctx.Touch(base+hw.VAddr(i*stride), hw.L3LineSize, false)
				}
			}
		}, kernel.JobParams{}, 0)
		if err != nil {
			return 0, 0, err
		}
		return m.Chips[0].Cache.L3Hits, m.Chips[0].Cache.L3Misses, nil
	}
	modHits, modMiss, err := run(hw.L3ModuloMap)
	if err != nil {
		return err
	}
	xorHits, xorMiss, err := run(hw.L3XorFoldMap)
	if err != nil {
		return err
	}
	r.addf("L3 mapping sweep (64 x %dKB-strided lines): modulo %d hits/%d misses, xor-fold %d hits/%d misses",
		hw.L3Sets*hw.L3LineSize/1024, modHits, modMiss, xorHits, xorMiss)
	if xorMiss >= modMiss {
		r.Pass = false
		r.notef("xor-fold mapping should reduce conflict misses (%d vs %d)", xorMiss, modMiss)
	}
	return nil
}

// ablateNoiseSources decomposes FWK jitter by daemon population, citing
// the UPC counter deltas so the decomposition is measured, not inferred
// from the sample distributions.
func ablateNoiseSources(opt Options, r *Result) error {
	samples := 4000
	if opt.Quick {
		samples = 1200
	}
	run := func(daemons []fwk.DaemonSpec) (noise.Stats, upc.Snapshot, error) {
		m, err := machine.New(machine.Config{Nodes: 1, Kind: machine.KindFWK, Seed: 7, Daemons: daemons})
		if err != nil {
			return noise.Stats{}, upc.Snapshot{}, err
		}
		defer m.Shutdown()
		var out []sim.Cycles
		cfg := apps.DefaultFWQ()
		cfg.Samples = samples
		before := m.CounterSnapshot(0)
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			out = apps.FWQ(ctx, m.HeapBase(ctx)+hw.VAddr(1<<20), cfg)
		}, kernel.JobParams{}, sim.FromSeconds(600))
		if err != nil {
			return noise.Stats{}, upc.Snapshot{}, err
		}
		return noise.Analyze(out), upc.Delta(before, m.CounterSnapshot(0)), nil
	}
	ticksOnly, ticksCtr, err := run([]fwk.DaemonSpec{})
	if err != nil {
		return err
	}
	full, fullCtr, err := run(nil) // nil = default population
	if err != nil {
		return err
	}
	r.addf("noise ablation: ticks-only maxvar=%.4f%%, ticks+daemons maxvar=%.4f%%",
		ticksOnly.MaxVariationPct, full.MaxVariationPct)
	r.addf("FWK noise decomposition (UPC counter deltas over the run):")
	r.addf("  %-14s %12s %12s", "counter", "ticks-only", "full")
	for _, c := range []upc.Counter{
		upc.TimerTick, upc.DaemonRun, upc.Preemption, upc.TLBMiss, upc.PageFault,
	} {
		r.addf("  %-14s %12d %12d", c, ticksCtr.Total(c), fullCtr.Total(c))
	}
	r.addf("  tlb_refills    %12d %12d", ticksCtr.TLBRefills(), fullCtr.TLBRefills())
	if ticksOnly.MaxVariationPct >= 1.0 {
		r.Pass = false
		r.notef("tick ISR alone should stay below 1%%")
	}
	if full.MaxVariationPct <= ticksOnly.MaxVariationPct {
		r.Pass = false
		r.notef("daemons must add noise over bare ticks")
	}
	if ticksCtr.Total(upc.DaemonRun) != 0 {
		r.Pass = false
		r.notef("ticks-only run recorded %d daemon dispatches", ticksCtr.Total(upc.DaemonRun))
	}
	if ticksCtr.Total(upc.TimerTick) == 0 || fullCtr.Total(upc.DaemonRun) == 0 {
		r.Pass = false
		r.notef("noise sources missing from the counters (ticks=%d daemons=%d)",
			ticksCtr.Total(upc.TimerTick), fullCtr.Total(upc.DaemonRun))
	}
	return nil
}

// ablateCrossover measures MPI one-way latency across the eager/rendezvous
// boundary.
func ablateCrossover(opt Options, r *Result) error {
	m, err := machine.New(machine.Config{Nodes: 2, Kind: machine.KindCNK})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	sizes := []uint64{64, 512, 1024, 2048, 8192}
	lat := make(map[uint64]sim.Cycles)
	err = m.Run(func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		var starts []sim.Cycles
		for i, size := range sizes {
			env.MPI.Barrier(ctx)
			tag := uint32(6000 + i)
			if env.Rank == 0 {
				starts = append(starts, ctx.Now())
				env.MPI.SendBuf(ctx, 1, tag, base, size)
			} else {
				t0 := ctx.Now()
				env.MPI.RecvBuf(ctx, tag, base, size)
				lat[size] = ctx.Now() - t0
			}
		}
	}, kernel.JobParams{}, 0)
	if err != nil {
		return err
	}
	r.addf("eager/rendezvous crossover at %dB:", 1200)
	for _, size := range sizes {
		r.addf("  MPI one-way %5dB: %6.2fus", size, lat[size].Micros())
	}
	// The protocol step: just above the crossover costs visibly more
	// than just below it (handshake), despite only 2x the bytes.
	if lat[2048] < lat[1024]+sim.FromMicros(1.5) {
		r.Pass = false
		r.notef("no rendezvous handshake step visible at the crossover")
	}
	return nil
}

// ablateIOPath compares one write syscall via function shipping (CNK)
// against a local kernel filesystem (FWK), and counts filesystem clients.
func ablateIOPath(opt Options, r *Result) error {
	measure := func(kind machine.KernelKind) (sim.Cycles, error) {
		m, err := machine.New(machine.Config{Nodes: 1, Kind: kind, Seed: 5})
		if err != nil {
			return 0, err
		}
		defer m.Shutdown()
		var d sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			base := m.HeapBase(ctx)
			ctx.Store(base, append([]byte("/gpfs/x"), 0))
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(base), kernel.OCreat|kernel.OWronly, 0644)
			if errno != kernel.OK {
				return
			}
			ctx.Store(base+1024, make([]byte, 256))
			start := ctx.Now()
			ctx.Syscall(kernel.SysWrite, fd, uint64(base+1024), 256)
			d = ctx.Now() - start
			ctx.Syscall(kernel.SysClose, fd)
		}, kernel.JobParams{}, sim.FromSeconds(120))
		return d, err
	}
	shipped, err := measure(machine.KindCNK)
	if err != nil {
		return err
	}
	local, err := measure(machine.KindFWK)
	if err != nil {
		return err
	}
	r.addf("write(256B): function-shipped %.2fus vs local kernel fs %.2fus", shipped.Micros(), local.Micros())
	r.addf("  the trade: CNK keeps zero filesystem code in-kernel and presents 1 client per I/O node")
	if shipped <= local {
		r.Pass = false
		r.notef("function shipping must cost wire latency over a local call")
	}
	return nil
}
