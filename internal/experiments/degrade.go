package experiments

import (
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
	"bgcnk/internal/torus"
	"bgcnk/internal/upc"
)

// The degrade experiment: what fraction of a partition's torus wiring can
// die before jobs stop completing? The paper's hard-fault story (Section
// VI) is that the control system either routes around a broken wire or
// refuses to boot the partition — never hands the application a network
// that silently eats packets. This sweep draws seeded link-death plans of
// growing size over an 8-node ring (deaths land at cycle 1, i.e. the
// partition is degraded from boot), runs the same neighbor-exchange
// workload with fault-region routing on and off, and scores each cell by
// its completion rate: the fraction of ranks that exit 0. A plan that
// disconnects the surviving topology is refused at machine construction
// and scores 0 — a deterministic outcome, not an error.
//
// Because the plan sampler is a partial Fisher-Yates with per-pick death
// cycles, same-seed plans of growing size are nested (every link dead at
// f is dead at f' > f), so per-seed completion is structurally monotone
// in the dead-link count and the sweep's shape is a property of the
// routing layer, not of lucky draws.

const (
	degradeNodes   = 16  // 4x4 torus; 64 directed links
	degradeLinks   = 64  // directed links in the 4x4 torus
	degradeRounds  = 3   // neighbor-exchange rounds per rank
	degradePayload = 600 // bytes per exchange (3 packets: eager path)
	degradeSeedTag = 0x5eed
)

// degradeDims is the partition shape: a 4x4 torus rather than a ring, so
// a dead wire on a used path has genuine alternatives (the other ring
// direction or the other dimension) and fault-region routing has real
// work to do: same-row neighbor hops have a unique minimal wire, so its
// death forces a measurably longer detour. On a directed ring any
// opposite-direction pair of dead links disconnects some ordered pair,
// which makes a ring sweep mostly a boot-refusal study.
var degradeDims = torus.Coord{4, 4, 1}

// degradeApp is a pure-torus workload: each rank eager-sends to its right
// neighbor and receives from its left, a few rounds, surfacing every
// network errno as its exit code. No collective-tree traffic, so the only
// fabric under test is the torus.
func degradeApp() machine.App {
	return func(ctx kernel.Context, env *machine.Env) {
		if env.MPI == nil {
			return
		}
		right := (env.Rank + 1) % env.Size
		payload := make([]byte, degradePayload)
		for round := 0; round < degradeRounds; round++ {
			tag := uint32(9000 + round)
			if errno := env.MPI.Send(ctx, right, tag, payload); errno != kernel.OK {
				ctx.Syscall(kernel.SysExit, uint64(errno))
				return
			}
			if _, _, errno := env.MPI.Recv(ctx, tag); errno != kernel.OK {
				ctx.Syscall(kernel.SysExit, uint64(errno))
				return
			}
		}
	}
}

type degradeCell struct {
	completion  float64 // fraction of ranks exiting 0; 0 on a refused boot
	elapsed     sim.Cycles
	detours     uint64
	retries     uint64
	timeouts    uint64
	deadLinks   uint64
	bootRefused bool
}

func degradeRun(kind machine.KernelKind, linkFails, nodeFails int, resilient bool, seed uint64) (degradeCell, error) {
	plan := &ras.Plan{
		Seed: seed ^ degradeSeedTag, LinkFails: linkFails, NodeFails: nodeFails,
		NetFailWindow: 1, NetResilienceOff: !resilient,
	}
	m, err := machine.New(machine.Config{
		Dims: degradeDims, Kind: kind, Seed: 7, Faults: plan,
		Reproducible: kind == machine.KindCNK,
	})
	if err != nil {
		// The plan disconnects the surviving topology: the wiring validator
		// refuses the partition at boot. Completion 0, by construction.
		return degradeCell{bootRefused: true}, nil
	}
	defer m.Shutdown()
	// Bound the off-arm horizon: a lost delivery surfaces as a timeout
	// after 5 ms of simulated time instead of the conservative default.
	m.Torus.SetE2ERecvTimeout(sim.FromSeconds(0.005))
	t0 := m.Eng.Now()
	if err := m.Run(degradeApp(), kernel.JobParams{}, 0); err != nil {
		return degradeCell{}, err
	}
	ok := 0
	for _, code := range m.ExitCodes() {
		if code == 0 {
			ok++
		}
	}
	ctr := m.MergedCounters()
	return degradeCell{
		completion: float64(ok) / float64(degradeNodes),
		elapsed:    m.Eng.Now() - t0,
		detours:    ctr.Total(upc.TorusRouteDetour),
		retries:    ctr.Total(upc.TorusE2ERetry),
		timeouts:   ctr.Total(upc.TorusE2ETimeout),
		deadLinks:  ctr.Total(upc.TorusLinkDead),
	}, nil
}

// RunDegrade sweeps dead-link counts for both kernels with fault-region
// routing on and off, plus a node-death arm, and asserts the resilience
// shape: an intact fabric completes everywhere, completion degrades
// monotonically as wiring dies, routing-on dominates routing-off at every
// point and strictly beats it somewhere, detours are observable where
// routing saves a run, and routing-off surfaces its losses as delivery
// timeouts rather than hangs.
func RunDegrade(opt Options) (*Result, error) {
	fails := []int{0, 2, 4, 8, 16}
	seeds := []uint64{1, 2, 3}
	if opt.Quick {
		seeds = []uint64{1, 2}
	}
	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "CNK"},
		{machine.KindFWK, "FWK"},
	}
	arms := []bool{true, false} // fault-region routing on, off

	r := &Result{ID: "degrade", Title: "Fault-tolerant torus: completion rate vs dead wiring", Pass: true}
	r.addf("%dx%d torus (%d nodes, %d directed links), %d x %d B neighbor exchanges; link deaths at cycle 1, %d seeds per cell",
		degradeDims[0], degradeDims[1], degradeNodes, degradeLinks, degradeRounds, degradePayload, len(seeds))

	// Flat fan-out: every (kernel, arm, fails, seed) cell is an
	// independent machine. Index decode order matches the render loops.
	nCells := len(kinds) * len(arms) * len(fails) * len(seeds)
	flat, err := replica.Run(opt.workers(), nCells, func(idx int) (degradeCell, error) {
		si := idx % len(seeds)
		fi := idx / len(seeds) % len(fails)
		ai := idx / (len(seeds) * len(fails)) % len(arms)
		ki := idx / (len(seeds) * len(fails) * len(arms))
		return degradeRun(kinds[ki].kind, fails[fi], 0, arms[ai], seeds[si])
	})
	if err != nil {
		return nil, err
	}
	// mean[ki][ai][fi] is the completion rate averaged over seeds.
	cellAt := func(ki, ai, fi, si int) degradeCell {
		return flat[((ki*len(arms)+ai)*len(fails)+fi)*len(seeds)+si]
	}
	mean := make([][][]float64, len(kinds))
	for ki, k := range kinds {
		mean[ki] = make([][]float64, len(arms))
		for ai, resilient := range arms {
			mean[ki][ai] = make([]float64, len(fails))
			armName := "route-on "
			if !resilient {
				armName = "route-off"
			}
			for fi, f := range fails {
				var sum float64
				var detours, retries, timeouts, dead uint64
				refused := 0
				var elapsed sim.Cycles
				for si := range seeds {
					c := cellAt(ki, ai, fi, si)
					sum += c.completion
					detours += c.detours
					retries += c.retries
					timeouts += c.timeouts
					dead += c.deadLinks
					if c.bootRefused {
						refused++
					}
					elapsed += c.elapsed
				}
				mean[ki][ai][fi] = sum / float64(len(seeds))
				r.addf("%s %s %2d dead links: completion %5.3f, mean %9.3f ms, detours %3d, retries %2d, timeouts %2d, boots refused %d/%d",
					k.name, armName, f, mean[ki][ai][fi],
					elapsed.Seconds()*1e3/float64(len(seeds)),
					detours, retries, timeouts, refused, len(seeds))
			}
		}
	}

	for ki, k := range kinds {
		// An intact fabric completes everywhere, routing on or off.
		for ai, resilient := range arms {
			if mean[ki][ai][0] != 1 {
				r.Pass = false
				r.notef("%s resilient=%v: completion %.3f with zero dead links", k.name, resilient, mean[ki][ai][0])
			}
			// Completion is monotone nonincreasing in the dead-link count
			// (structural, via nested same-seed plans).
			for fi := 1; fi < len(fails); fi++ {
				if mean[ki][ai][fi] > mean[ki][ai][fi-1]+1e-9 {
					r.Pass = false
					r.notef("%s resilient=%v: completion rose %.3f -> %.3f going %d -> %d dead links",
						k.name, resilient, mean[ki][ai][fi-1], mean[ki][ai][fi], fails[fi-1], fails[fi])
				}
			}
		}
		// Fault-region routing dominates: never worse, strictly better
		// somewhere in the sweep.
		strictly := false
		for fi, f := range fails {
			if mean[ki][0][fi] < mean[ki][1][fi]-1e-9 {
				r.Pass = false
				r.notef("%s: routing on completed %.3f < off %.3f at %d dead links",
					k.name, mean[ki][0][fi], mean[ki][1][fi], f)
			}
			if mean[ki][0][fi] > mean[ki][1][fi]+1e-9 {
				strictly = true
			}
		}
		if !strictly {
			r.Pass = false
			r.notef("%s: fault-region routing never beat the static path anywhere in the sweep", k.name)
		}
		// Where routing-on survives dead wiring, the detours must be
		// observable; where routing-off loses packets, the loss must
		// surface as delivery timeouts, not hangs.
		var onDetours, offTimeouts uint64
		for fi := 1; fi < len(fails); fi++ {
			for si := range seeds {
				on, off := cellAt(ki, 0, fi, si), cellAt(ki, 1, fi, si)
				if on.completion == 1 && !on.bootRefused {
					onDetours += on.detours
				}
				if off.completion < 1 && !off.bootRefused {
					offTimeouts += off.timeouts
				}
			}
		}
		if onDetours == 0 {
			r.Pass = false
			r.notef("%s: no detour ever counted on a run that survived dead wiring", k.name)
		}
		if offTimeouts == 0 {
			r.Pass = false
			r.notef("%s: routing-off losses produced no delivery timeouts — ranks hung or never lost", k.name)
		}
	}

	// Node-death arm: a whole interface dies at cycle 1. The dead node and
	// its ring neighbors fail with typed network errors, the rest of the
	// partition completes — partial completion, no hangs.
	for _, k := range kinds {
		c, err := degradeRun(k.kind, 0, 1, true, seeds[0])
		if err != nil {
			return nil, err
		}
		r.addf("%s node_fail x1:    completion %5.3f, %12.3f ms, dead links %d, timeouts %d",
			k.name, c.completion, c.elapsed.Seconds()*1e3, c.deadLinks, c.timeouts)
		if c.bootRefused || c.completion <= 0 || c.completion >= 1 {
			r.Pass = false
			r.notef("%s node_fail: completion %.3f (refused=%v); want partial completion", k.name, c.completion, c.bootRefused)
		}
	}

	// Determinism spot check: the most degraded surviving resilient cell
	// must replay bit-identically.
	ref := cellAt(0, 0, len(fails)-1, 0)
	again, err := degradeRun(machine.KindCNK, fails[len(fails)-1], 0, true, seeds[0])
	if err != nil {
		return nil, err
	}
	if again != ref {
		r.Pass = false
		r.notef("CNK %d dead links rerun diverged (completion %.3f vs %.3f, %d vs %d cycles)",
			fails[len(fails)-1], again.completion, ref.completion, again.elapsed, ref.elapsed)
	}
	return r, nil
}
