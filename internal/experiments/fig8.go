package experiments

import (
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// LinkMBs is the torus per-link bandwidth ceiling (425 MB/s at 2
// cycles/byte, 850 MHz).
const LinkMBs = 425.0

// fig8Point is one (message size, bandwidth) sample.
type fig8Point struct {
	Bytes uint64
	MBs   float64
}

// fig8Sweep measures near-neighbour rendezvous throughput for one kernel,
// returning the bandwidth curve and the machine-wide UPC counter delta.
func fig8Sweep(kind machine.KernelKind, sizes []uint64, reps int) ([]fig8Point, upc.Snapshot, error) {
	m, err := machine.New(machine.Config{Nodes: 2, Kind: kind, Seed: 3, MemSize: 512 << 20})
	if err != nil {
		return nil, upc.Snapshot{}, err
	}
	defer m.Shutdown()
	before := m.MergedCounters()
	var points []fig8Point
	err = m.Run(func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		mpi := env.MPI
		for _, size := range sizes {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				for i := 0; i < reps; i++ {
					env.Dev.SendRendezvous(ctx, 1, uint32(4000+size%97), base, size)
				}
			} else {
				start := ctx.Now()
				for i := 0; i < reps; i++ {
					env.Dev.RecvRendezvous(ctx, uint32(4000+size%97), base, size)
				}
				elapsed := ctx.Now() - start
				mbs := float64(size) * float64(reps) / elapsed.Seconds() / 1e6
				points = append(points, fig8Point{Bytes: size, MBs: mbs})
			}
		}
		mpi.Barrier(ctx)
	}, kernel.JobParams{}, sim.FromSeconds(600))
	if err != nil {
		return nil, upc.Snapshot{}, err
	}
	return points, upc.Delta(before, m.MergedCounters()), nil
}

// RunFig8 regenerates Fig 8: throughput of the rendezvous protocol for a
// near-neighbour exchange as message size grows. Under CNK the single
// contiguous DMA descriptor lets the protocol saturate the 425 MB/s link;
// the FWK pays pinning, scattered per-page descriptors and multi-packet
// CTS exchanges, so it reaches a lower fraction of the link at every
// size.
func RunFig8(opt Options) (*Result, error) {
	sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	reps := 4
	if opt.Quick {
		sizes = sizes[:5]
		reps = 2
	}
	cnk, cnkCtr, err := fig8Sweep(machine.KindCNK, sizes, reps)
	if err != nil {
		return nil, err
	}
	fwk, fwkCtr, err := fig8Sweep(machine.KindFWK, sizes, reps)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig8", Title: "Fig 8: rendezvous throughput, near-neighbour exchange", Pass: true}
	r.addf("%10s %14s %14s %12s", "size", "CNK MB/s", "FWK MB/s", "CNK/link")
	for i := range cnk {
		frac := cnk[i].MBs / LinkMBs
		fw := 0.0
		if i < len(fwk) {
			fw = fwk[i].MBs
		}
		r.addf("%10d %14.1f %14.1f %11.1f%%", cnk[i].Bytes, cnk[i].MBs, fw, frac*100)
		if i < len(fwk) && fwk[i].MBs > cnk[i].MBs {
			r.Pass = false
			r.notef("FWK outperformed CNK at %d bytes", cnk[i].Bytes)
		}
	}
	// UPC counter table: the descriptor-count mechanism behind the gap.
	// CNK's static map yields one DMA descriptor per contiguous transfer;
	// the FWK's scattered 4KB pages need one per page.
	r.addf("UPC counters over the sweep (both nodes merged):")
	r.addf("  %-16s %12s %12s", "counter", "CNK", "FWK")
	for _, c := range []upc.Counter{upc.DMADescriptor, upc.TorusBytes, upc.TorusPacket, upc.SyscallTotal} {
		r.addf("  %-16s %12d %12d", c, cnkCtr.Total(c), fwkCtr.Total(c))
	}
	if fwkCtr.Total(upc.DMADescriptor) <= cnkCtr.Total(upc.DMADescriptor) {
		r.Pass = false
		r.notef("FWK must inject more DMA descriptors than CNK for the same bytes (per-page scatter)")
	}

	// Shape: monotone non-decreasing for CNK and saturation at the top.
	last := cnk[len(cnk)-1]
	if last.MBs < 0.85*LinkMBs {
		r.Pass = false
		r.notef("CNK peak %.1f MB/s below 85%% of the %0.f MB/s link", last.MBs, LinkMBs)
	}
	for i := 1; i < len(cnk); i++ {
		if cnk[i].MBs < cnk[i-1].MBs*0.95 {
			r.Pass = false
			r.notef("CNK curve not rising at %d bytes", cnk[i].Bytes)
		}
	}
	return r, nil
}
