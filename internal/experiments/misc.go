package experiments

import (
	"bgcnk/internal/bringup"
	"bgcnk/internal/caps"
	"bgcnk/internal/cnk"
	"bgcnk/internal/ctrlsys"
	"bgcnk/internal/fwk"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// RunTable2 regenerates Table II via the capability probes.
func RunTable2(opt Options) (*Result, error) {
	rows, err := caps.TableII()
	r := &Result{ID: "table2", Title: "Table II: ease of using capabilities (CNK vs Linux)", Pass: err == nil}
	for _, row := range rows {
		r.addf("%-36s | CNK: %-16s | Linux: %-13s", row.Capability, row.CNK, row.Linux)
		if row.Evidence != "" {
			r.addf("    evidence: %s", row.Evidence)
		}
	}
	if err != nil {
		r.notef("probe contradiction: %v", err)
	}
	return r, nil
}

// RunTable3 regenerates Table III.
func RunTable3(opt Options) (*Result, error) {
	r := &Result{ID: "table3", Title: "Table III: ease of implementing missing capabilities", Pass: true}
	for _, row := range caps.TableIII() {
		r.addf("%-36s | CNK: %-8s | Linux: %-8s  (%s)", row.Capability, row.CNK, row.Linux, row.Evidence)
	}
	return r, nil
}

// RunBoot regenerates the Section III boot story in two parts: the
// single-node comparison under the 10 Hz VHDL simulator used during chip
// design ("CNK boots in a couple of hours, while Linux takes weeks. Even
// stripped down, Linux takes days."), and the control-system scaling
// comparison ("CNK boots a 72-rack machine in minutes"): CNK's broadcast
// boot is near-flat in node count while an FWK's staggered per-node image
// load grows linearly.
func RunBoot(opt Options) (*Result, error) {
	// The three single-node boots are independent replicas (one engine
	// and chip each); fan them and keep the rendered order fixed — this
	// render is golden-pinned, so it must be byte-identical at any
	// worker count.
	boots, err := replica.Run(opt.workers(), 3, func(i int) (uint64, error) {
		eng := sim.NewEngine()
		chip := hw.NewChip(hw.ChipConfig{ID: i})
		if i == 0 {
			k := cnk.New(eng, chip, cnk.Config{Reproducible: true})
			err := k.Boot()
			return k.BootInstr, err
		}
		k := fwk.New(eng, chip, fwk.Config{Stripped: i == 2})
		err := k.Boot()
		return k.BootInstr, err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "boot", Title: "Boot: VHDL bring-up time and boot-protocol scaling (paper Section III)", Pass: true}
	r.addf("%s", bringup.DescribeVHDLBoot("CNK", boots[0]))
	r.addf("%s", bringup.DescribeVHDLBoot("Linux (full)", boots[1]))
	r.addf("%s", bringup.DescribeVHDLBoot("Linux (stripped)", boots[2]))
	cnkH := bringup.VHDLBootTime(boots[0])
	fullH := bringup.VHDLBootTime(boots[1])
	stripH := bringup.VHDLBootTime(boots[2])
	if cnkH > 12 {
		r.Pass = false
		r.notef("CNK boot %.1fh is not 'a couple of hours'", cnkH)
	}
	if fullH < 24*7 {
		r.Pass = false
		r.notef("full Linux boot %.1fh is not 'weeks'", fullH)
	}
	if stripH < 24 || stripH > 24*14 {
		r.Pass = false
		r.notef("stripped Linux boot %.1fh is not 'days'", stripH)
	}

	// Part two: boot time vs node count through the control-system model.
	counts := []int{64, 128, 256, 512, 1024}
	if opt.Quick {
		counts = []int{32, 64, 128, 256}
	}
	r.addf("")
	r.addf("Boot protocol scaling (control-system model, %d nodes/midplane):", 32)
	r.addf("%6s | %14s | %14s | %9s", "nodes", "CNK broadcast", "FWK staggered", "FWK/CNK")
	// One replica per (node count, kernel) sweep point; render after the
	// barrier, in sweep order.
	type bootPt struct{ cnk, fwk sim.Cycles }
	pts := replica.Map(opt.workers(), len(counts), func(i int) bootPt {
		cb := ctrlsys.SimulateBoot(ctrlsys.BootConfig{Kind: machine.KindCNK, Nodes: counts[i], NodesPerMidplane: 32})
		fb := ctrlsys.SimulateBoot(ctrlsys.BootConfig{Kind: machine.KindFWK, Nodes: counts[i], NodesPerMidplane: 32})
		return bootPt{cb.Total, fb.Total}
	})
	var cnkTimes, fwkTimes []float64
	for i, n := range counts {
		cnkTimes = append(cnkTimes, pts[i].cnk.Seconds()*1e3)
		fwkTimes = append(fwkTimes, pts[i].fwk.Seconds()*1e3)
		r.addf("%6d | %11.3f ms | %11.1f ms | %8.0fx", n,
			pts[i].cnk.Seconds()*1e3, pts[i].fwk.Seconds()*1e3,
			float64(pts[i].fwk)/float64(pts[i].cnk))
	}
	last := len(counts) - 1
	span := float64(counts[last]) / float64(counts[0])
	cnkGrowth := cnkTimes[last] / cnkTimes[0]
	fwkGrowth := fwkTimes[last] / fwkTimes[0]
	r.addf("growth over a %gx node span: CNK %.2fx, FWK %.1fx", span, cnkGrowth, fwkGrowth)
	if cnkGrowth > 1.5 {
		r.Pass = false
		r.notef("CNK broadcast boot grew %.2fx over a %gx node span; should be near-flat", cnkGrowth, span)
	}
	if fwkGrowth < span/2 {
		r.Pass = false
		r.notef("FWK staggered boot grew only %.1fx over a %gx node span; should be ~linear", fwkGrowth, span)
	}
	return r, nil
}

// reproWorkload is a deterministic two-node job with computation, memory
// traffic, an MPI exchange and function-shipped I/O — everything that
// must replay cycle-identically.
func reproWorkload(ctx kernel.Context, env *machine.Env) {
	base := env.M.HeapBase(ctx)
	for i := 0; i < 6; i++ {
		ctx.Compute(50_000)
		ctx.Touch(base+hw.VAddr(i*4096), 1024, true)
	}
	if env.Rank == 0 {
		env.Dev.Send(ctx, 1, 77, []byte("lockstep"))
	} else {
		env.Dev.Recv(ctx, 77)
	}
	ctx.Compute(200_000)
}

// RunRepro regenerates the Section III methodology: (a) identical runs
// produce identical scans, (b) a waveform assembled from destructive
// scans of successive reruns localizes an injected marginal-timing fault
// to its trigger cycle, and (c) the fault is condition-dependent (it does
// not fire under every run seed).
func RunRepro(opt Options) (*Result, error) {
	r := &Result{ID: "repro", Title: "Cycle reproducibility + fault localization (paper Section III)", Pass: true}
	probe := bringup.Probe{Nodes: 2, Workload: reproWorkload}
	stop := sim.Cycles(1_200_000)

	ok, snaps, err := probe.VerifyReproducible(stop, 3)
	if err != nil {
		return nil, err
	}
	r.addf("3 independent runs to cycle %d: identical scans = %v (trace %x)", uint64(stop), ok, snaps[0].Trace)
	if !ok {
		r.Pass = false
		r.notef("reproducibility broken")
	}

	// Marginal-timing fault on chip 1, triggered by chip variance x
	// thermal conditions.
	fault := &bringup.FaultSpec{
		Node: 1, ChipVariance: 0.97,
		WindowStart: 400_000, WindowLen: 400_000,
	}
	// The bug manifests only under some ambient conditions; find a run
	// seed that reproduces it, as the bringup engineers did by rerunning.
	for seed := uint64(1); seed <= 64; seed++ {
		fault.RunSeed = seed
		if _, fires := fault.TriggerCycle(); fires {
			break
		}
	}
	trigger, fires := fault.TriggerCycle()
	r.addf("injected marginal path: fires=%v at cycle %d under run seed %d", fires, uint64(trigger), fault.RunSeed)
	if !fires {
		r.Pass = false
		r.notef("fault did not arm; adjust variance")
		return r, nil
	}
	// Not every ambient condition reproduces it (the paper's "did not
	// occur on every run").
	fickle := false
	for seed := uint64(1); seed <= 12; seed++ {
		f := *fault
		f.RunSeed = seed
		if _, fires := f.TriggerCycle(); !fires {
			fickle = true
			break
		}
	}
	r.addf("fault absent under some ambient conditions: %v", fickle)
	if !fickle {
		r.notef("fault fires under every seed; manifestation should be condition-dependent")
	}

	step := sim.Cycles(100_000)
	ref, err := probe.CaptureWaveform(100_000, stop, step)
	if err != nil {
		return nil, err
	}
	faulty := probe
	faulty.Fault = fault
	sus, err := faulty.CaptureWaveform(100_000, stop, step)
	if err != nil {
		return nil, err
	}
	at, chip, found := bringup.FindDivergence(ref, sus)
	r.addf("waveform divergence: found=%v at cycle %d on chip %d (fault fired at %d)", found, uint64(at), chip, uint64(trigger))
	if !found || chip != 1 {
		r.Pass = false
		r.notef("divergence not localized to the faulty chip")
		return r, nil
	}
	if at < trigger || at > trigger+step {
		r.Pass = false
		r.notef("divergence cycle %d not within one scan step of the trigger %d", uint64(at), uint64(trigger))
	}
	return r, nil
}
