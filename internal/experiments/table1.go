package experiments

import (
	"fmt"

	"bgcnk/internal/dcmf"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/torus"
)

// table1Row is one protocol measurement vs the paper's value.
type table1Row struct {
	Name    string
	PaperUs float64
	Us      float64
}

// RunTable1 regenerates Table I: latency for the programming models in
// SMP mode, measured between two nearest-neighbour nodes under CNK.
// Latencies are one-way (or to-completion for one-sided ops), exactly as
// each protocol defines completion.
func RunTable1(opt Options) (*Result, error) {
	m, err := machine.New(machine.Config{Nodes: 2, Kind: machine.KindCNK})
	if err != nil {
		return nil, err
	}
	defer m.Shutdown()

	const iters = 8
	var (
		eagerStart, eagerEnd   []sim.Cycles
		mpiStart, mpiEnd       []sim.Cycles
		rdvStart, rdvEnd       []sim.Cycles
		putLat, getLat         []sim.Cycles
		armciPutLat, armciGetL []sim.Cycles
	)

	err = m.Run(func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		mpi := env.MPI
		dev := env.Dev

		// Registration handshake for the one-sided tests: rank 1 exports
		// an 8KB window whose descriptor rank 0 fetches via an eager
		// message.
		var remote dcmf.MemRegion
		if env.Rank == 1 {
			reg, _ := dev.Register(ctx, base, 8192)
			payload := make([]byte, 16)
			pa, ln := uint64(reg.Ranges[0].PA), reg.Ranges[0].Len
			for i := 0; i < 8; i++ {
				payload[i] = byte(pa >> (56 - 8*i))
				payload[8+i] = byte(ln >> (56 - 8*i))
			}
			dev.Send(ctx, 0, 900, payload)
		} else {
			data, _, _ := dev.Recv(ctx, 900)
			var pa, ln uint64
			for i := 0; i < 8; i++ {
				pa = pa<<8 | uint64(data[i])
				ln = ln<<8 | uint64(data[8+i])
			}
			remote = dcmf.MemRegion{Rank: 1, Size: ln,
				Ranges: []torus.PhysRange{{PA: hw.PAddr(pa), Len: ln}}}
		}

		// 1. DCMF eager one-way.
		for i := 0; i < iters; i++ {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				eagerStart = append(eagerStart, ctx.Now())
				dev.Send(ctx, 1, 10, make([]byte, 8))
			} else {
				dev.Recv(ctx, 10)
				eagerEnd = append(eagerEnd, ctx.Now())
			}
		}
		// 2. MPI eager one-way.
		for i := 0; i < iters; i++ {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				mpiStart = append(mpiStart, ctx.Now())
				mpi.Send(ctx, 1, 20, make([]byte, 8))
			} else {
				mpi.Recv(ctx, 20)
				mpiEnd = append(mpiEnd, ctx.Now())
			}
		}
		// 3. MPI rendezvous one-way (protocol latency: small payload
		// forced through RTS/CTS/put/done).
		for i := 0; i < iters; i++ {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				rdvStart = append(rdvStart, ctx.Now())
				dev.SendRendezvous(ctx, 1, 30, base, 64)
			} else {
				dev.RecvRendezvous(ctx, 30, base+16384, 64)
				rdvEnd = append(rdvEnd, ctx.Now())
			}
		}
		// 4. DCMF Put (completes at target delivery).
		for i := 0; i < iters; i++ {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				s := ctx.Now()
				dev.Put(ctx, remote, 0, base, 8)
				putLat = append(putLat, ctx.Now()-s)
			}
		}
		// 5. DCMF Get.
		for i := 0; i < iters; i++ {
			mpi.Barrier(ctx)
			if env.Rank == 0 {
				s := ctx.Now()
				dev.Get(ctx, remote, 0, base+1024, 8)
				getLat = append(getLat, ctx.Now()-s)
			}
		}
		// 6-7. ARMCI blocking Put / Get. Rank 1 serves fence acks.
		armci := dcmf.NewARMCI(dev)
		if env.Rank == 1 {
			served := 0
			// iters timed puts plus the release put each need a fence ack.
			armci.ServeAcks(ctx, func() bool { served++; return served > iters+1 })
		} else {
			for i := 0; i < iters; i++ {
				s := ctx.Now()
				armci.PutBlocking(ctx, remote, 0, base, 8)
				armciPutLat = append(armciPutLat, ctx.Now()-s)
			}
			for i := 0; i < iters; i++ {
				s := ctx.Now()
				armci.GetBlocking(ctx, remote, 0, base+1024, 8)
				armciGetL = append(armciGetL, ctx.Now()-s)
			}
			// Release the server.
			armci.PutBlocking(ctx, remote, 0, base, 8)
		}
		mpi.Barrier(ctx)
	}, kernel.JobParams{}, 0)
	if err != nil {
		return nil, err
	}

	oneWay := func(starts, ends []sim.Cycles) sim.Cycles {
		best := sim.Forever
		for i := range ends {
			if i < len(starts) && ends[i] > starts[i] && ends[i]-starts[i] < best {
				best = ends[i] - starts[i]
			}
		}
		return best
	}
	minOf := func(v []sim.Cycles) sim.Cycles {
		best := sim.Forever
		for _, x := range v {
			if x < best {
				best = x
			}
		}
		return best
	}

	rows := []table1Row{
		{"DCMF Eager One-way", 1.6, us(oneWay(eagerStart, eagerEnd))},
		{"MPI Eager One-way", 2.4, us(oneWay(mpiStart, mpiEnd))},
		{"MPI Rendezvous One-way", 5.6, us(oneWay(rdvStart, rdvEnd))},
		{"DCMF Put", 0.9, us(minOf(putLat))},
		{"DCMF Get", 1.6, us(minOf(getLat))},
		{"ARMCI blocking Put", 2.0, us(minOf(armciPutLat))},
		{"ARMCI blocking Get", 3.3, us(minOf(armciGetL))},
	}
	r := &Result{ID: "table1", Title: "Table I: latency for programming models, SMP mode", Pass: true}
	r.addf("%-24s %10s %10s", "Protocol", "paper(us)", "model(us)")
	for _, row := range rows {
		r.addf("%-24s %10.1f %10.2f", row.Name, row.PaperUs, row.Us)
		if row.Us < row.PaperUs*0.5 || row.Us > row.PaperUs*1.6 {
			r.Pass = false
			r.notef("%s: %.2fus outside +-50%% of the paper's %.1fus", row.Name, row.Us, row.PaperUs)
		}
	}
	// Ordering assertions (the shape that must hold regardless of
	// absolute calibration).
	get := func(name string) float64 {
		for _, row := range rows {
			if row.Name == name {
				return row.Us
			}
		}
		return 0
	}
	if !(get("DCMF Put") < get("DCMF Eager One-way") &&
		get("DCMF Eager One-way") < get("MPI Eager One-way") &&
		get("MPI Eager One-way") < get("MPI Rendezvous One-way") &&
		get("DCMF Put") < get("ARMCI blocking Put") &&
		get("DCMF Get") < get("ARMCI blocking Get")) {
		r.Pass = false
		r.notef("protocol ordering violated")
	}
	_ = fmt.Sprintf
	return r, nil
}
