package experiments

import (
	"bgcnk/internal/apps"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/noise"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// linpackOnce runs the HPL-proxy job on a 4-node machine of the given
// kind and returns the slowest rank's wall time (which is what LINPACK
// reports).
func linpackOnce(kind machine.KernelKind, seed uint64, cfg apps.LinpackConfig) (sim.Cycles, error) {
	m, err := machine.New(machine.Config{Nodes: 4, Kind: kind, Seed: seed})
	if err != nil {
		return 0, err
	}
	defer m.Shutdown()
	var worst sim.Cycles
	err = m.Run(func(ctx kernel.Context, env *machine.Env) {
		d, errno := apps.Linpack(ctx, env.MPI, m.HeapBase(ctx), cfg)
		if errno != kernel.OK {
			return
		}
		if d > worst {
			worst = d
		}
	}, kernel.JobParams{}, sim.FromSeconds(600))
	return worst, err
}

// RunLinpack regenerates the Section V-D stability result: repeated
// LINPACK runs vary by at most 0.01% under CNK (the paper saw 2.11s over
// a 4.5-hour run, sigma < 1.14s), while the FWK's daemon phases make each
// run measurably different.
func RunLinpack(opt Options) (*Result, error) {
	runs := 36
	cfg := apps.DefaultLinpack()
	if opt.Quick {
		runs = 6
		cfg.Panels = 12
	}
	// Each repeated run is its own machine seeded by run index — an
	// independent replica — so both kernels' run series fan across the
	// worker pool; flat index kind*runs+i keeps the merge in run order.
	times, err := replica.Run(opt.workers(), 2*runs, func(idx int) (sim.Cycles, error) {
		kind := machine.KindCNK
		if idx >= runs {
			kind = machine.KindFWK
		}
		return linpackOnce(kind, uint64(idx%runs+1), cfg)
	})
	if err != nil {
		return nil, err
	}
	cnkTimes, fwkTimes := times[:runs], times[runs:]
	cs, fsx := noise.Analyze(cnkTimes), noise.Analyze(fwkTimes)
	r := &Result{ID: "linpack", Title: "LINPACK stability over repeated runs (paper V-D)", Pass: true}
	r.addf("%d runs of the fixed-work solve on 4 nodes", runs)
	r.addf("CNK: min=%.3fms max=%.3fms spread=%.4f%% sigma=%.1f cycles",
		cs.Min.Micros()/1000, cs.Max.Micros()/1000, cs.MaxVariationPct, cs.StdDev)
	r.addf("FWK: min=%.3fms max=%.3fms spread=%.4f%% sigma=%.1f cycles",
		fsx.Min.Micros()/1000, fsx.Max.Micros()/1000, fsx.MaxVariationPct, fsx.StdDev)
	if cs.MaxVariationPct > 0.01 {
		r.Pass = false
		r.notef("CNK spread %.4f%% exceeds the paper's 0.01%%", cs.MaxVariationPct)
	}
	if fsx.MaxVariationPct <= cs.MaxVariationPct {
		r.Pass = false
		r.notef("FWK should be less stable than CNK")
	}
	r.notef("paper: 36 runs, 16080.89s..16083.00s (0.01%%); our absolute scale is the simulator's, the spread comparison is the claim")
	return r, nil
}

// RunAllreduce regenerates the mpiBench_Allreduce comparison: a double-sum
// allreduce on 16 CNK nodes has a per-iteration standard deviation of
// effectively zero, while 4 FWK nodes (the paper used Linux I/O nodes on
// 10GbE with NFS in the background) show microsecond-scale deviation.
func RunAllreduce(opt Options) (*Result, error) {
	// The FWK window must span many timer ticks and daemon periods for
	// the noise to show (the paper ran 100K-1M iterations).
	cnkIters, fwkIters := 5000, 60000
	if opt.Quick {
		cnkIters, fwkIters = 400, 20000
	}
	measure := func(kind machine.KernelKind, nodes, iters int, fsLat sim.Cycles) (noise.Stats, error) {
		m, err := machine.New(machine.Config{Nodes: nodes, Kind: kind, Seed: 11, FSLatency: fsLat})
		if err != nil {
			return noise.Stats{}, err
		}
		defer m.Shutdown()
		var samples []sim.Cycles
		err = m.Run(func(ctx kernel.Context, env *machine.Env) {
			out, errno := apps.AllreduceBench(ctx, env.MPI, iters)
			if errno != kernel.OK {
				return
			}
			if env.Rank == 0 {
				samples = out
			}
		}, kernel.JobParams{}, sim.FromSeconds(600))
		if err != nil {
			return noise.Stats{}, err
		}
		// Discard the self-synchronization transient: the paper's numbers
		// are steady-state over huge iteration counts.
		return noise.Analyze(samples[len(samples)/4:]), nil
	}
	cs, err := measure(machine.KindCNK, 16, cnkIters, 0)
	if err != nil {
		return nil, err
	}
	fsx, err := measure(machine.KindFWK, 4, fwkIters, sim.FromMicros(25))
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "allreduce", Title: "mpiBench_Allreduce stability (paper V-D)", Pass: true}
	r.addf("CNK, 16 nodes, %d iterations: mean=%.2fus sigma=%.4fus (paper: sigma ~0.0007us)",
		cnkIters, cs.Mean/850, cs.StdDev/850)
	r.addf("FWK,  4 nodes, %d iterations: mean=%.2fus sigma=%.4fus (paper: sigma 8.9us)",
		fwkIters, fsx.Mean/850, fsx.StdDev/850)
	if cs.StdDev/850 > 0.01 {
		r.Pass = false
		r.notef("CNK allreduce sigma %.4fus should be ~0", cs.StdDev/850)
	}
	if fsx.StdDev < 85 || fsx.StdDev < 1000*maxF(cs.StdDev, 0.085) {
		r.Pass = false
		r.notef("FWK allreduce sigma %.4fus not orders of magnitude above CNK's", fsx.StdDev/850)
	}
	r.notef("paper's Linux test ran over 10GbE+NFS; our FWK uses the torus, scaling absolute sigma down — the reproduced claim is effectively-zero vs finite deviation (>1000x separation)")
	return r, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
