package experiments

import (
	"testing"
)

// TestRenderWorkerInvariance is the replica runner's contract stated at
// the artifact level: the experiments that fan replicas — the mtbf
// fault-rate sweep, the boot comparison, the control-system throughput
// drain, the ioscale aggregation sweep, and the degrade resilience sweep
// — must render byte-identically at 1, 2, and 8 workers. Most are
// golden-pinned, so any worker-count leak into a measured number or a
// rendered line fails twice over. Run under -race in CI.
func TestRenderWorkerInvariance(t *testing.T) {
	for _, id := range []string{"mtbf", "boot", "throughput", "ioscale", "degrade"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			ref, err := Registry[id](Options{Quick: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Registry[id](Options{Quick: true, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.Render() != ref.Render() {
					t.Errorf("workers=%d render differs from serial:\n--- workers=%d ---\n%s--- serial ---\n%s",
						workers, workers, got.Render(), ref.Render())
				}
			}
		})
	}
}
