package experiments

import (
	"bgcnk/internal/ctrlsys"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// mtbfNoCkptInterval is far beyond any job's exchange count, so the
// "checkpointing off" arm runs the identical resilient workload but never
// takes a snapshot: every restart is a cold start, and — because the
// rewound fault schedule replays the identical kill — a job that dies
// once dies on every incarnation. That is the counterfactual the sweep
// measures checkpointing against.
const mtbfNoCkptInterval = 1 << 20

// mtbfJobs are long enough (6-9 exchange rounds, checkpoint every round)
// that a mid-life kill leaves a checkpoint worth resuming from. The
// generator's 1-3 round jobs would mostly die before their first
// snapshot, which tests the restart budget, not the checkpoint.
func mtbfJobs(n int) []ctrlsys.Job {
	all := []ctrlsys.Job{
		{ID: 0, Name: "mtbf000", Midplanes: 1, Work: 20_000, Exchanges: 8, IOBytes: 512},
		{ID: 1, Name: "mtbf001", Midplanes: 2, Work: 30_000, Exchanges: 6, IOBytes: 256},
		{ID: 2, Name: "mtbf002", Midplanes: 1, Work: 25_000, Exchanges: 8, IOBytes: 512},
		{ID: 3, Name: "mtbf003", Midplanes: 1, Work: 15_000, Exchanges: 7, IOBytes: 0},
		{ID: 4, Name: "mtbf004", Midplanes: 2, Work: 22_000, Exchanges: 9, IOBytes: 128},
		{ID: 5, Name: "mtbf005", Midplanes: 1, Work: 18_000, Exchanges: 6, IOBytes: 256},
	}
	return all[:n]
}

// mtbfPlan arms the job-killing fault class at the swept rate. CNK kills
// the job on its first uncorrectable by design; the FWK normally scrubs
// them, so the panic cadence makes every one fatal there too — the sweep
// compares checkpointing, not fault tolerance philosophy.
func mtbfPlan(kind machine.KernelKind, rate float64) *ras.Plan {
	if rate == 0 {
		return nil
	}
	p := &ras.Plan{Seed: 0x6b1f, DDRUncorrectable: rate}
	if kind == machine.KindFWK {
		p.FWKPanicEvery = 1
	}
	return p
}

func mtbfDrain(topo ctrlsys.Topology, kind machine.KernelKind, jobs []ctrlsys.Job,
	rate float64, interval, workers int) (*ctrlsys.DrainResult, error) {
	s := ctrlsys.New(ctrlsys.Config{
		Topology: topo, Kind: kind, Seed: 1009, Workers: workers,
		Faults: mtbfPlan(kind, rate),
		Ckpt:   ctrlsys.CkptConfig{Enabled: true, Interval: interval},
	})
	return s.Drain(jobs)
}

// RunMTBF is the resilience experiment: sweep the uncorrectable-DDR fault
// rate and drain the same job queue with checkpointing on (every exchange
// round) and off (cold restarts only), for both kernels. Measured per
// cell: completed jobs, restart attempts, wasted partition occupancy, and
// time-to-solution (queue makespan). The paper's two claims under test:
// checkpointing strictly improves the completion rate once faults are
// nonzero (cold restarts replay the identical kill), and CNK's flat
// memory map makes its snapshot strictly cheaper than the FWK's
// flush-and-quiesce — measured directly as fault-free run-cycle overhead.
func RunMTBF(opt Options) (*Result, error) {
	topo := ctrlsys.Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2}
	jobs := mtbfJobs(6)
	if opt.Quick {
		jobs = mtbfJobs(4)
	}
	rates := []float64{0, 4e-3, 1e-2}
	workers := opt.workers()

	r := &Result{ID: "mtbf", Title: "Checkpoint/restart under a fault-rate sweep (completion, waste, time-to-solution)", Pass: true}
	// The worker count is deliberately absent from the render: results are
	// bit-identical at any worker count, and the render is golden-pinned.
	r.addf("topology: %d midplanes x %d nodes, %d jobs, restart budget %d, checkpoint interval 1",
		topo.Midplanes(), topo.NodesPerMidplane, len(jobs), 3)

	type cell struct {
		completed int
		restarts  int
		wasted    sim.Cycles
		makespan  sim.Cycles
		runTotal  sim.Cycles
	}
	// cells[kind][rate index][arm], arm 0 = ckpt on, arm 1 = off.
	kinds := []struct {
		kind machine.KernelKind
		name string
	}{
		{machine.KindCNK, "CNK"},
		{machine.KindFWK, "FWK"},
	}
	// Every sweep cell is an independent replica (its own service node,
	// machines and fault streams), so all 12 fan across the worker pool
	// at once; rendering happens after the barrier, strictly in sweep
	// order, so the golden-pinned output is identical at any pool size.
	arms := []int{1, mtbfNoCkptInterval}
	flat, err := replica.Run(workers, len(kinds)*len(rates)*len(arms), func(idx int) (cell, error) {
		ki := idx / (len(rates) * len(arms))
		ri := idx / len(arms) % len(rates)
		arm := idx % len(arms)
		res, err := mtbfDrain(topo, kinds[ki].kind, jobs, rates[ri], arms[arm], workers)
		if err != nil {
			return cell{}, err
		}
		c := cell{
			completed: len(jobs) - res.Failures,
			restarts:  res.Restarts,
			wasted:    res.Wasted,
			makespan:  res.Sched.Makespan,
		}
		for _, jr := range res.Results {
			c.runTotal += jr.Run
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	cells := make([][][2]cell, len(kinds))
	for ki, k := range kinds {
		cells[ki] = make([][2]cell, len(rates))
		for ri, rate := range rates {
			for arm := range arms {
				c := flat[(ki*len(rates)+ri)*len(arms)+arm]
				cells[ki][ri][arm] = c
				armName := "on "
				if arm == 1 {
					armName = "off"
				}
				r.addf("%s rate=%5.0e ckpt=%s: %d/%d completed, %2d restarts, wasted %8.3f ms, time-to-solution %8.3f ms",
					k.name, rate, armName, c.completed, len(jobs), c.restarts,
					c.wasted.Seconds()*1e3, c.makespan.Seconds()*1e3)
			}
		}
	}

	// Checkpointing must strictly improve completion at every nonzero
	// rate, for both kernels: a killed job can only finish by resuming
	// past the fault it already proved it cannot survive cold.
	for ki, k := range kinds {
		for ri, rate := range rates {
			on, off := cells[ki][ri][0], cells[ki][ri][1]
			if rate == 0 {
				if on.completed != len(jobs) || off.completed != len(jobs) {
					r.Pass = false
					r.notef("%s fault-free: %d/%d (ckpt on) and %d/%d (off) completed — all must",
						k.name, on.completed, len(jobs), off.completed, len(jobs))
				}
				continue
			}
			if on.completed <= off.completed {
				r.Pass = false
				r.notef("%s rate %.0e: checkpointing completed %d jobs vs %d without — must be strictly better",
					k.name, rate, on.completed, off.completed)
			}
		}
	}

	// Checkpoint cost, measured the honest way: extra run cycles the
	// fault-free drain pays for taking snapshots at all. CNK's single-pass
	// copy of a flat address space must undercut the FWK's page-cache
	// flush and daemon quiesce.
	cnkOver := cells[0][0][0].runTotal - cells[0][0][1].runTotal
	fwkOver := cells[1][0][0].runTotal - cells[1][0][1].runTotal
	r.addf("checkpoint overhead (fault-free run cycles): CNK +%.3f ms vs FWK +%.3f ms (%.1fx)",
		cnkOver.Seconds()*1e3, fwkOver.Seconds()*1e3, float64(fwkOver)/float64(cnkOver))
	if cnkOver <= 0 || fwkOver <= 0 {
		r.Pass = false
		r.notef("checkpoint overhead not positive: CNK %d, FWK %d cycles", cnkOver, fwkOver)
	}
	if cnkOver >= fwkOver {
		r.Pass = false
		r.notef("CNK checkpoint overhead %d cycles not below FWK %d", cnkOver, fwkOver)
	}

	// Determinism spot check on the hardest cell (highest rate, ckpt on):
	// the parallel drain must be bit-identical to the serial one. The
	// two kernels' checks are themselves independent replicas.
	type sigPair struct{ par, serial uint64 }
	sigs, err := replica.Run(workers, len(kinds), func(ki int) (sigPair, error) {
		par, err := mtbfDrain(topo, kinds[ki].kind, jobs, rates[len(rates)-1], 1, workers)
		if err != nil {
			return sigPair{}, err
		}
		serial, err := mtbfDrain(topo, kinds[ki].kind, jobs, rates[len(rates)-1], 1, 1)
		if err != nil {
			return sigPair{}, err
		}
		return sigPair{par.Signature(), serial.Signature()}, nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range kinds {
		if sigs[ki].par != sigs[ki].serial {
			r.Pass = false
			r.notef("%s: parallel drain signature %016x != serial %016x — determinism broken",
				k.name, sigs[ki].par, sigs[ki].serial)
		}
	}
	return r, nil
}
