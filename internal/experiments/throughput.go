package experiments

import (
	"bgcnk/internal/ctrlsys"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim/replica"
)

// RunThroughput drains a seeded stream of job submissions through the
// control system's FIFO+backfill queue, once per kernel kind, and checks
// the subsystem's two headline properties: (a) the parallel partition
// drain is bit-identical to the serial one (deterministic parallelism),
// and (b) CNK's cheap boot/teardown buys it strictly higher job
// throughput than an FWK on the same machine and the same queue, since
// every job repays the boot protocol.
func RunThroughput(opt Options) (*Result, error) {
	topo := ctrlsys.Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 2}
	cnkJobs, fwkJobs := 200, 48
	if opt.Quick {
		cnkJobs, fwkJobs = 36, 10
	}
	workers := opt.workers()

	r := &Result{ID: "throughput", Title: "Job throughput through the control system (FIFO + EASY backfill)", Pass: true}
	// The worker count is deliberately absent from the render: results
	// are bit-identical at any worker count, and the render must be too.
	r.addf("topology: %d midplanes x %d nodes", topo.Midplanes(), topo.NodesPerMidplane)

	type row struct {
		kind   machine.KernelKind
		name   string
		jobs   int
		result *ctrlsys.DrainResult
	}
	rows := []row{
		{kind: machine.KindCNK, name: "CNK", jobs: cnkJobs},
		{kind: machine.KindFWK, name: "FWK", jobs: fwkJobs},
	}
	// The four drains (serial and parallel, per kernel) are independent
	// replicas; flat index = row*2 + arm, arm 0 serial / arm 1 parallel.
	drains, err := replica.Run(workers, len(rows)*2, func(idx int) (*ctrlsys.DrainResult, error) {
		cfg := ctrlsys.Config{Topology: topo, Kind: rows[idx/2].kind, Seed: 1009, Workers: 1}
		if idx%2 == 1 {
			cfg.Workers = workers
		}
		jobs := ctrlsys.GenerateJobs(cfg.Seed, rows[idx/2].jobs, topo.Midplanes())
		return ctrlsys.New(cfg).Drain(jobs)
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		serial, par := drains[i*2], drains[i*2+1]
		if par.Signature() != serial.Signature() {
			r.Pass = false
			r.notef("%s: parallel drain signature %016x != serial %016x — determinism broken",
				rows[i].name, par.Signature(), serial.Signature())
		}
		rows[i].result = par

		r.addf("%s: %3d jobs drained, makespan %8.3f s, %6.2f jobs/s, %d backfilled, utilization %4.1f%%, %d failures",
			rows[i].name, len(par.Results), par.Sched.Makespan.Seconds(), par.JobsPerSecond(),
			par.Sched.Backfilled, par.Sched.Utilization*100, par.Failures)
		if par.Failures > 0 {
			r.Pass = false
			r.notef("%s: %d jobs failed", rows[i].name, par.Failures)
		}
	}

	cnkRate := rows[0].result.JobsPerSecond()
	fwkRate := rows[1].result.JobsPerSecond()
	if fwkRate > 0 {
		r.addf("CNK/FWK throughput ratio: %.0fx (boot+teardown dominate short jobs)", cnkRate/fwkRate)
	}
	if cnkRate <= fwkRate {
		r.Pass = false
		r.notef("CNK throughput %.2f jobs/s not above FWK %.2f", cnkRate, fwkRate)
	}
	return r, nil
}
