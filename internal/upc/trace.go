package upc

import (
	"fmt"

	"bgcnk/internal/sim"
)

// Category is a tracepoint enable-mask bit. Emitting a tracepoint whose
// category is masked off costs one AND and a branch — observability that
// is off is free.
type Category uint16

// Tracepoint categories.
const (
	CatSched Category = 1 << iota // context switches, preemption, daemons
	CatIRQ                        // ticks, IPIs
	CatSyscall                    // syscall entry
	CatMem                        // TLB refills, page faults
	CatNet                        // torus + collective traffic
	CatIO                         // function-ship calls

	// CatAll enables every category.
	CatAll Category = 0xffff
)

// Event identifies one tracepoint.
type Event uint8

// Tracepoint events.
const (
	EvTick Event = iota
	EvIPI
	EvCtxSwitch
	EvPreempt
	EvDaemon
	EvSyscall
	EvTLBRefill
	EvPageFault
	EvFutexWait
	EvFutexWake
	EvDMAInject
	EvTorusPacket
	EvCollSend
	EvShipCall

	NumEvents
)

var eventNames = [NumEvents]string{
	"tick", "ipi", "ctx_switch", "preempt", "daemon", "syscall",
	"tlb_refill", "page_fault", "futex_wait", "futex_wake",
	"dma_inject", "torus_packet", "coll_send", "ship_call",
}

var eventCats = [NumEvents]Category{
	CatIRQ, CatIRQ, CatSched, CatSched, CatSched, CatSyscall,
	CatMem, CatMem, CatSched, CatSched,
	CatNet, CatNet, CatNet, CatIO,
}

func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return "event(?)"
}

// Point is one recorded tracepoint occurrence.
type Point struct {
	Event Event
	Core  int8
	Cycle sim.Cycles
	Arg   uint64
}

func (p Point) String() string {
	return fmt.Sprintf("[%12d] core%d %-12s arg=%#x", uint64(p.Cycle), p.Core, p.Event, p.Arg)
}

// RingCap is the bounded tracepoint buffer size.
const RingCap = 4096

// Ring is the tracepoint buffer: a bounded ring of Points, a running
// FNV-1a hash over everything ever emitted (including evicted entries),
// and an optional mirror into the engine's sim.Trace so tracepoint
// contents feed the same reproducibility hash the rest of the run does.
//
// Emit never sleeps: recording happens outside simulated time, so a
// traced run and an untraced run execute the same cycle totals.
type Ring struct {
	mask  Category
	tr    *sim.Trace
	buf   []Point
	start int
	count uint64
	hash  uint64
}

// Enable turns on the given categories (OR into the mask).
func (r *Ring) Enable(c Category) { r.mask |= c }

// Disable turns off the given categories.
func (r *Ring) Disable(c Category) { r.mask &^= c }

// Mask returns the active category mask.
func (r *Ring) Mask() Category { return r.mask }

// Enabled reports whether event ev would currently be recorded.
func (r *Ring) Enabled(ev Event) bool { return r.mask&eventCats[ev] != 0 }

// AttachTrace mirrors recorded tracepoints into tr (the engine trace), so
// the run's reproducibility hash covers them.
func (r *Ring) AttachTrace(tr *sim.Trace) { r.tr = tr }

// Emit records one tracepoint occurrence if its category is enabled. It
// does not advance simulated time.
func (r *Ring) Emit(ev Event, core int, cycle sim.Cycles, arg uint64) {
	if r.mask&eventCats[ev] == 0 {
		return
	}
	if r.buf == nil {
		r.buf = make([]Point, 0, RingCap)
	}
	p := Point{Event: ev, Core: int8(core), Cycle: cycle, Arg: arg}
	if len(r.buf) < RingCap {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.start] = p
		r.start = (r.start + 1) % RingCap
	}
	r.count++
	h := uint64(14695981039346656037)
	h = fnvMix(h, uint64(ev))
	h = fnvMix(h, uint64(int64(core)))
	h = fnvMix(h, uint64(cycle))
	h = fnvMix(h, arg)
	r.hash = r.hash*1099511628211 ^ h
	if r.tr != nil {
		r.tr.Record(cycle, "upc", fmt.Sprintf("%s core%d arg=%#x", eventNames[ev], core, arg))
	}
}

// fnvMix folds the 8 bytes of v into an FNV-1a running hash.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Points returns the retained tracepoints, oldest first.
func (r *Ring) Points() []Point {
	if len(r.buf) < RingCap {
		return append([]Point(nil), r.buf...)
	}
	out := make([]Point, 0, RingCap)
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Count returns the number of tracepoints ever emitted (including evicted
// ones).
func (r *Ring) Count() uint64 { return r.count }

// Hash returns the running hash over every emitted tracepoint. Two traced
// replays of the same run produce the same hash.
func (r *Ring) Hash() uint64 { return r.hash }

// Reset clears the ring and hash; the enable mask and trace attachment
// survive (they are configuration, not state).
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.start, r.count, r.hash = 0, 0, 0
}

// UPC is one chip's Universal Performance Counter unit: the counter Set
// plus the tracepoint Ring. hw.Chip owns one; every layer above reaches it
// through the chip.
type UPC struct {
	Set
	Trace Ring
}

// New returns a fresh UPC unit with all counters zero and tracing off.
func New() *UPC { return &UPC{} }

// Reset clears counters and tracepoints (chip reset).
func (u *UPC) Reset() {
	u.Set.Reset()
	u.Trace.Reset()
}
