package upc

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a Set. It is a plain comparable
// value: snapshot equality (==) proves counter-identical runs, and
// Delta(a, b) turns two snapshots bracketing a region of interest into the
// counts charged inside it.
type Snapshot struct {
	Vals [NumSlots][NumCounters]uint64
	Sys  [NumSlots][MaxSyscalls]uint64
}

// Delta returns after-before, counter by counter. Counters are
// monotonically increasing between resets, so a delta over a bracketed
// region is exact attribution, not inference.
func Delta(before, after Snapshot) Snapshot {
	var d Snapshot
	for sl := 0; sl < NumSlots; sl++ {
		for c := 0; c < int(NumCounters); c++ {
			d.Vals[sl][c] = after.Vals[sl][c] - before.Vals[sl][c]
		}
		for n := 0; n < MaxSyscalls; n++ {
			d.Sys[sl][n] = after.Sys[sl][n] - before.Sys[sl][n]
		}
	}
	return d
}

// Merge sums snapshots element-wise (e.g. across the chips of a machine).
func Merge(snaps ...Snapshot) Snapshot {
	var m Snapshot
	for _, s := range snaps {
		for sl := 0; sl < NumSlots; sl++ {
			for c := 0; c < int(NumCounters); c++ {
				m.Vals[sl][c] += s.Vals[sl][c]
			}
			for n := 0; n < MaxSyscalls; n++ {
				m.Sys[sl][n] += s.Sys[sl][n]
			}
		}
	}
	return m
}

// Core reads counter c for one core (ChipScope for the chip slot).
func (s Snapshot) Core(core int, c Counter) uint64 { return s.Vals[slot(core)][c] }

// Chip reads the chip-scoped slot of counter c.
func (s Snapshot) Chip(c Counter) uint64 { return s.Vals[MaxCores][c] }

// Total sums counter c over every slot.
func (s Snapshot) Total(c Counter) uint64 {
	var t uint64
	for sl := 0; sl < NumSlots; sl++ {
		t += s.Vals[sl][c]
	}
	return t
}

// SyscallCount sums the per-number count for syscall num over every slot.
func (s Snapshot) SyscallCount(num int) uint64 {
	if num < 0 || num >= MaxSyscalls {
		return 0
	}
	var t uint64
	for sl := 0; sl < NumSlots; sl++ {
		t += s.Sys[sl][num]
	}
	return t
}

// TLBRefills sums the per-page-size refill counters over every slot.
func (s Snapshot) TLBRefills() uint64 {
	var t uint64
	for _, c := range RefillCounters {
		t += s.Total(c)
	}
	return t
}

// IsZero reports whether every counter in the snapshot is zero.
func (s Snapshot) IsZero() bool { return s == Snapshot{} }

// Text renders the non-zero counters as an aligned table: one row per
// counter with per-core columns and a total. Intended for -counters CLI
// output and experiment reports.
func (s Snapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s %12s %14s\n",
		"counter", "core0", "core1", "core2", "core3", "chip", "total")
	for c := Counter(0); c < NumCounters; c++ {
		if s.Total(c) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s", c.String())
		for sl := 0; sl < NumSlots; sl++ {
			fmt.Fprintf(&b, " %12d", s.Vals[sl][c])
		}
		fmt.Fprintf(&b, " %14d\n", s.Total(c))
	}
	if names := s.syscallLines(); len(names) > 0 {
		fmt.Fprintf(&b, "syscalls by number:\n")
		for _, l := range names {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SyscallNamer translates a syscall number to a name for rendering. The
// kernel package registers itself here at init; upc cannot import it
// (import order: upc < hw < kernel).
var SyscallNamer = func(num int) string { return fmt.Sprintf("sys%d", num) }

func (s Snapshot) syscallLines() []string {
	var out []string
	for n := 0; n < MaxSyscalls; n++ {
		if c := s.SyscallCount(n); c > 0 {
			out = append(out, fmt.Sprintf("  %-18s %12d", SyscallNamer(n), c))
		}
	}
	return out
}

// JSON renders the non-zero counters as a deterministic JSON object:
// {"counters":{name:{"core0":..,"chip":..,"total":..}},"syscalls":{name:n}}.
// Keys are emitted in fixed order so two equal snapshots render
// byte-identically (goldens diff cleanly).
func (s Snapshot) JSON() string {
	var b strings.Builder
	b.WriteString(`{"counters":{`)
	first := true
	for c := Counter(0); c < NumCounters; c++ {
		if s.Total(c) == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:{", c.String())
		for sl := 0; sl < NumSlots; sl++ {
			if sl > 0 {
				b.WriteByte(',')
			}
			key := fmt.Sprintf("core%d", sl)
			if sl == MaxCores {
				key = "chip"
			}
			fmt.Fprintf(&b, "%q:%d", key, s.Vals[sl][c])
		}
		fmt.Fprintf(&b, ",\"total\":%d}", s.Total(c))
	}
	b.WriteString(`},"syscalls":{`)
	type kv struct {
		name string
		n    uint64
	}
	var sys []kv
	for n := 0; n < MaxSyscalls; n++ {
		if c := s.SyscallCount(n); c > 0 {
			sys = append(sys, kv{SyscallNamer(n), c})
		}
	}
	sort.Slice(sys, func(i, j int) bool { return sys[i].name < sys[j].name })
	for i, e := range sys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", e.name, e.n)
	}
	b.WriteString("}}")
	return b.String()
}
