// Package upc models the Blue Gene/P Universal Performance Counter unit:
// a queryable, zero-allocation counter block plus a bounded tracepoint
// ring, threaded through every layer that charges simulated cycles.
//
// The real chip ships a UPC unit precisely because CNK's
// cycle-reproducible execution makes counters trustworthy: the same run
// produces the same counts, so "where did the cycles go" has one answer
// (paper Section III). The simulation already charges cycles for TLB
// refills, cache levels, interrupts, ticks and DMA; this package exposes
// those events as first-class counters so experiments measure their
// decompositions instead of inferring them.
//
// Design constraints, enforced by tests:
//
//   - Incrementing a counter on the hot path allocates nothing: the Set is
//     fixed-size arrays indexed by (core slot, counter id).
//   - Tracepoints cost nothing when their category is disabled (one mask
//     test), and when enabled they never advance simulated time — they
//     record, they do not Sleep — so enabling observability cannot perturb
//     a run's cycle totals (no Heisenberg effects).
//   - Snapshots are comparable values: two runs replayed from the same
//     seeds yield snapshots that compare equal with ==.
package upc

// MaxCores is the per-chip core-slot count (Blue Gene/P has 4). Counter
// values are tracked per core plus one chip-scoped slot for events with no
// core affinity (shared L3, DDR, network DMA).
const MaxCores = 4

// NumSlots is MaxCores core slots plus the chip-scoped slot.
const NumSlots = MaxCores + 1

// MaxSyscalls bounds the per-syscall-number counter array. It must be at
// least kernel.NumSys (statically asserted in the kernel package).
const MaxSyscalls = 48

// ChipScope is the core argument selecting the chip-scoped slot.
const ChipScope = -1

// Counter identifies one performance counter.
type Counter uint8

// Counters. Scope noted where chip-wide; all others are per-core.
const (
	// Address translation.
	TLBHit Counter = iota
	TLBMiss
	TLBRefill4K
	TLBRefill64K
	TLBRefill1M
	TLBRefill16M
	TLBRefill256M
	TLBRefill1G
	PageFault
	// Memory hierarchy.
	L1Hit
	L1Miss
	StoreMiss
	L3Hit        // chip
	L3Miss       // chip
	DDRRead      // chip
	DDRWrite     // chip
	RefreshStall // chip
	// Kernel events.
	Interrupt
	IPI
	TimerTick
	DaemonRun
	ContextSwitch
	Preemption
	SyscallTotal
	FutexWait
	FutexWake
	// I/O and networks.
	FunctionShip  // chip: CIOD round trips
	DMADescriptor // chip: torus DMA descriptors injected
	TorusPacket   // chip
	TorusBytes    // chip
	CollPacket    // chip: collective-network packets sent
	CollBytes     // chip
	CombineOp     // chip: combining-tree allreduce operations
	// RAS and recovery (all chip-scoped; zero on fault-free runs).
	LinkCRC          // chip: link transfer attempts corrupted by CRC faults
	LinkRetransmit   // chip: sender-side retransmissions
	CIODTimeout      // chip: function-ship replies that timed out
	CIODRetry        // chip: function-ship resends after timeout
	RASCorrectable   // chip: DDR ECC single-bit corrections
	RASUncorrectable // chip: DDR ECC uncorrectable errors
	// I/O-node aggregation (chip-scoped; zero unless the ION subsystem is
	// armed). The stall counters live on the compute node's set — the CN is
	// where the backpressure is felt — and the rest on the ION's own set.
	IONStall       // chip: CN-side stalls waiting for an ION ingress credit
	IONStallCycles // chip: CN-side cycles spent stalled on ION backpressure
	IONAdmit       // chip: requests admitted to the ION ingress queue
	IONCoalesce    // chip: writes merged by the ION request coalescer
	IONCacheHit    // chip: buffer-cache block hits
	IONCacheMiss   // chip: buffer-cache block misses (filled from fs)
	IONWriteback   // chip: dirty blocks written back to fs
	IONFlush       // chip: explicit cache flushes (fsync/close/quiesce)
	// Torus fault tolerance (chip-scoped; zero unless hard network faults
	// are armed). Detour counts extra hops taken around dead links; the
	// e2e counters account the reliable-delivery layer's retransmits and
	// abandoned deliveries.
	TorusRouteDetour // chip: extra hops routed around dead links
	TorusLinkDead    // chip: directed torus links declared dead on this node
	TorusE2ERetry    // chip: end-to-end retransmits after a lost delivery
	TorusE2ETimeout  // chip: deliveries abandoned (retries exhausted / unroutable / recv timeout)

	NumCounters
)

var counterNames = [NumCounters]string{
	"tlb_hit", "tlb_miss",
	"tlb_refill_4k", "tlb_refill_64k", "tlb_refill_1m", "tlb_refill_16m",
	"tlb_refill_256m", "tlb_refill_1g",
	"page_fault",
	"l1_hit", "l1_miss", "store_miss", "l3_hit", "l3_miss",
	"ddr_read", "ddr_write", "refresh_stall",
	"interrupt", "ipi", "timer_tick", "daemon_run",
	"context_switch", "preemption", "syscall",
	"futex_wait", "futex_wake",
	"function_ship", "dma_descriptor", "torus_packet", "torus_bytes",
	"coll_packet", "coll_bytes", "combine_op",
	"link_crc", "link_retransmit", "ciod_timeout", "ciod_retry",
	"ras_correctable", "ras_uncorrectable",
	"ion_stall", "ion_stall_cycles", "ion_admit", "ion_coalesce",
	"ion_cache_hit", "ion_cache_miss", "ion_writeback", "ion_flush",
	"torus_route_detour", "torus_link_dead", "torus_e2e_retry", "torus_e2e_timeout",
}

func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "counter(?)"
}

// RefillCounters lists the per-page-size TLB refill counters in increasing
// page-size order (4K, 64K, 1M, 16M, 256M, 1G), matching hw.PageSizes.
var RefillCounters = [6]Counter{
	TLBRefill4K, TLBRefill64K, TLBRefill1M, TLBRefill16M, TLBRefill256M, TLBRefill1G,
}

// slot maps a core index to its storage slot; ChipScope (or any
// out-of-range core) selects the chip slot.
func slot(core int) int {
	if core < 0 || core >= MaxCores {
		return MaxCores
	}
	return core
}

// Set is one chip's counter block. The zero value is ready to use; all
// mutation is fixed-array indexing, so the hot path never allocates.
type Set struct {
	vals [NumSlots][NumCounters]uint64
	sys  [NumSlots][MaxSyscalls]uint64
}

// Inc adds one to counter c on core (ChipScope for chip-wide events).
func (s *Set) Inc(core int, c Counter) { s.vals[slot(core)][c]++ }

// Add adds n to counter c on core.
func (s *Set) Add(core int, c Counter, n uint64) { s.vals[slot(core)][c] += n }

// Syscall counts one invocation of syscall number num on core, maintaining
// both the per-number array and the SyscallTotal counter.
func (s *Set) Syscall(core int, num int) {
	sl := slot(core)
	s.vals[sl][SyscallTotal]++
	if num >= 0 && num < MaxSyscalls {
		s.sys[sl][num]++
	}
}

// Get reads counter c on core without snapshotting.
func (s *Set) Get(core int, c Counter) uint64 { return s.vals[slot(core)][c] }

// Reset zeroes every counter (chip reset semantics).
func (s *Set) Reset() {
	s.vals = [NumSlots][NumCounters]uint64{}
	s.sys = [NumSlots][MaxSyscalls]uint64{}
}

// Snapshot captures the current counter values as a comparable value: two
// snapshots are equal (==) iff every per-slot counter and per-syscall
// count matches.
func (s *Set) Snapshot() Snapshot {
	return Snapshot{Vals: s.vals, Sys: s.sys}
}

// Load overwrites every counter with the values in sn. Checkpoint restore
// uses this to roll the UPC block back to its value at the snapshot's
// quiesce point, exactly as the real unit's counters are reloaded from a
// saved image on restart.
func (s *Set) Load(sn Snapshot) {
	s.vals = sn.Vals
	s.sys = sn.Sys
}
