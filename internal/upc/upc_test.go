package upc

import (
	"encoding/json"
	"strings"
	"testing"

	"bgcnk/internal/sim"
)

func TestSetIncAddSnapshotDelta(t *testing.T) {
	var s Set
	s.Inc(0, TLBMiss)
	s.Inc(0, TLBMiss)
	s.Add(2, L1Hit, 10)
	s.Inc(ChipScope, L3Miss)
	s.Syscall(1, 3)
	s.Syscall(1, 3)
	s.Syscall(1, 7)

	snap := s.Snapshot()
	if got := snap.Core(0, TLBMiss); got != 2 {
		t.Fatalf("core0 tlb_miss = %d, want 2", got)
	}
	if got := snap.Core(2, L1Hit); got != 10 {
		t.Fatalf("core2 l1_hit = %d, want 10", got)
	}
	if got := snap.Chip(L3Miss); got != 1 {
		t.Fatalf("chip l3_miss = %d, want 1", got)
	}
	if got := snap.Total(SyscallTotal); got != 3 {
		t.Fatalf("syscall total = %d, want 3", got)
	}
	if got := snap.SyscallCount(3); got != 2 {
		t.Fatalf("syscall #3 = %d, want 2", got)
	}

	// Delta over a bracketed region attributes exactly the inner counts.
	before := s.Snapshot()
	s.Add(1, TimerTick, 5)
	d := Delta(before, s.Snapshot())
	if got := d.Total(TimerTick); got != 5 {
		t.Fatalf("delta timer_tick = %d, want 5", got)
	}
	if got := d.Total(TLBMiss); got != 0 {
		t.Fatalf("delta tlb_miss = %d, want 0", got)
	}

	// Snapshots are comparable values.
	if s.Snapshot() != s.Snapshot() {
		t.Fatal("identical snapshots must compare equal")
	}
	s.Reset()
	if !s.Snapshot().IsZero() {
		t.Fatal("reset set must snapshot to zero")
	}
}

func TestSlotClamping(t *testing.T) {
	var s Set
	s.Inc(-1, DDRRead)
	s.Inc(99, DDRRead) // out of range clamps to the chip slot
	if got := s.Snapshot().Chip(DDRRead); got != 2 {
		t.Fatalf("chip ddr_read = %d, want 2", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Set
	a.Inc(0, Interrupt)
	b.Add(0, Interrupt, 3)
	b.Syscall(2, 5)
	m := Merge(a.Snapshot(), b.Snapshot())
	if got := m.Core(0, Interrupt); got != 4 {
		t.Fatalf("merged interrupt = %d, want 4", got)
	}
	if got := m.SyscallCount(5); got != 1 {
		t.Fatalf("merged syscall #5 = %d, want 1", got)
	}
}

func TestTextAndJSONRendering(t *testing.T) {
	var s Set
	s.Add(0, TimerTick, 42)
	s.Inc(ChipScope, FunctionShip)
	s.Syscall(0, 1)
	snap := s.Snapshot()

	txt := snap.Text()
	if !strings.Contains(txt, "timer_tick") || !strings.Contains(txt, "42") {
		t.Fatalf("text rendering missing counters:\n%s", txt)
	}
	js := snap.JSON()
	if !json.Valid([]byte(js)) {
		t.Fatalf("JSON rendering is not valid JSON: %s", js)
	}
	if !strings.Contains(js, `"timer_tick"`) || !strings.Contains(js, `"function_ship"`) {
		t.Fatalf("JSON rendering missing counters: %s", js)
	}
	// Deterministic rendering: equal snapshots render byte-identically.
	if snap.JSON() != snap.JSON() || snap.Text() != snap.Text() {
		t.Fatal("rendering must be deterministic")
	}
}

func TestRingMaskAndBounds(t *testing.T) {
	var r Ring
	// Disabled: emit is a no-op.
	r.Emit(EvTick, 0, 100, 0)
	if r.Count() != 0 || r.Hash() != 0 {
		t.Fatal("disabled tracepoint must record nothing")
	}
	r.Enable(CatIRQ)
	if !r.Enabled(EvTick) || r.Enabled(EvCtxSwitch) {
		t.Fatal("mask must gate by category")
	}
	r.Emit(EvTick, 1, 200, 7)
	r.Emit(EvCtxSwitch, 1, 201, 0) // CatSched still off
	if r.Count() != 1 {
		t.Fatalf("count = %d, want 1", r.Count())
	}
	pts := r.Points()
	if len(pts) != 1 || pts[0].Event != EvTick || pts[0].Core != 1 || pts[0].Arg != 7 {
		t.Fatalf("points = %+v", pts)
	}

	// Bounded: emitting beyond RingCap evicts oldest but keeps counting.
	r.Reset()
	r.Enable(CatAll)
	for i := 0; i < RingCap+10; i++ {
		r.Emit(EvTick, 0, sim.Cycles(i), uint64(i))
	}
	if r.Count() != RingCap+10 {
		t.Fatalf("count = %d, want %d", r.Count(), RingCap+10)
	}
	pts = r.Points()
	if len(pts) != RingCap {
		t.Fatalf("retained = %d, want %d", len(pts), RingCap)
	}
	if pts[0].Arg != 10 || pts[len(pts)-1].Arg != RingCap+9 {
		t.Fatalf("ring order wrong: first=%d last=%d", pts[0].Arg, pts[len(pts)-1].Arg)
	}
}

func TestRingHashDeterminism(t *testing.T) {
	run := func() uint64 {
		var r Ring
		r.Enable(CatAll)
		for i := 0; i < 100; i++ {
			r.Emit(Event(i%int(NumEvents)), i%4, sim.Cycles(i*13), uint64(i))
		}
		return r.Hash()
	}
	if run() != run() {
		t.Fatal("identical emit sequences must hash identically")
	}
}

func TestRingFeedsSimTrace(t *testing.T) {
	tr := sim.NewTrace()
	base := tr.Hash()
	var r Ring
	r.AttachTrace(tr)
	r.Enable(CatAll)
	r.Emit(EvShipCall, 2, 500, 3)
	if tr.Hash() == base {
		t.Fatal("enabled tracepoint must feed the sim trace hash")
	}
	if tr.Count() != 1 {
		t.Fatalf("trace count = %d, want 1", tr.Count())
	}
}
