package nptl

import (
	"testing"

	"bgcnk/internal/ciod"
	"bgcnk/internal/cnk"
	"bgcnk/internal/fs"
	"bgcnk/internal/fwk"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// onCNK runs main as a CNK job with 3 threads/core allowed.
func onCNK(t *testing.T, main func(ctx kernel.Context)) {
	t.Helper()
	eng := sim.NewEngine()
	k := cnk.New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), cnk.Config{
		MaxThreadsPerCore: 3,
		IO:                ciod.NewLoopback(eng, fs.New()),
	})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	job, err := k.Launch(cnk.JobSpec{Main: func(ctx kernel.Context, rank int) { main(ctx) }})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job did not finish")
	}
}

// onFWK runs main as an FWK job.
func onFWK(t *testing.T, main func(ctx kernel.Context)) {
	t.Helper()
	eng := sim.NewEngine()
	k := fwk.New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), fwk.Config{Seed: 3})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	job, err := k.Launch(fwk.JobSpec{Main: func(ctx kernel.Context, rank int) { main(ctx) }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + sim.FromSeconds(60))
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job did not finish")
	}
}

// onBoth runs the scenario on both kernels: the whole point of the NPTL
// layer is that it is kernel-agnostic.
func onBoth(t *testing.T, main func(ctx kernel.Context)) {
	t.Helper()
	t.Run("CNK", func(t *testing.T) { onCNK(t, main) })
	t.Run("FWK", func(t *testing.T) { onFWK(t, main) })
}

func TestInitChecksKernelVersion(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, err := Init(ctx)
		if err != nil {
			t.Errorf("Init: %v", err)
			return
		}
		if l.KernelVersion() < "2.6" {
			t.Errorf("version %q", l.KernelVersion())
		}
	})
}

func TestMallocFreeReuse(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		a, errno := l.Malloc(ctx, 100)
		if errno != kernel.OK {
			t.Errorf("malloc: %v", errno)
			return
		}
		if errno := ctx.Store(a, []byte("heap data")); errno != kernel.OK {
			t.Errorf("store: %v", errno)
		}
		l.Free(ctx, a, 100)
		b, _ := l.Malloc(ctx, 100)
		if b != a {
			t.Errorf("free list not reused: %#x vs %#x", uint64(b), uint64(a))
		}
	})
}

func TestLargeMallocUsesMmap(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		small, _ := l.Malloc(ctx, 512)
		big, errno := l.Malloc(ctx, 2<<20)
		if errno != kernel.OK {
			t.Errorf("big malloc: %v", errno)
			return
		}
		// mmap arena is far from the brk heap.
		diff := int64(big) - int64(small)
		if diff < 0 {
			diff = -diff
		}
		if diff < 1<<20 {
			t.Errorf("big allocation not from mmap arena (delta %d)", diff)
		}
		if errno := ctx.Store(big+hw.VAddr(2<<20-8), []byte{1}); errno != kernel.OK {
			t.Errorf("store to mmap tail: %v", errno)
		}
	})
}

func TestPthreadCreateJoin(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		ran := false
		pt, errno := l.PthreadCreate(ctx, func(c kernel.Context) {
			c.Compute(10_000)
			ran = true
		})
		if errno != kernel.OK {
			t.Errorf("create: %v", errno)
			return
		}
		if errno := l.PthreadJoin(ctx, pt); errno != kernel.OK {
			t.Errorf("join: %v", errno)
		}
		if !ran {
			t.Error("thread never ran before join returned")
		}
	})
}

func TestManyThreadsJoinAll(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		count := 0
		var pts []*PThread
		for i := 0; i < 3; i++ {
			pt, errno := l.PthreadCreate(ctx, func(c kernel.Context) {
				c.Compute(5_000)
				count++
			})
			if errno != kernel.OK {
				t.Errorf("create %d: %v", i, errno)
				return
			}
			pts = append(pts, pt)
		}
		for _, pt := range pts {
			l.PthreadJoin(ctx, pt)
		}
		if count != 3 {
			t.Errorf("count = %d", count)
		}
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		m, _ := l.NewMutex(ctx)
		counterVA, _ := l.Malloc(ctx, 8)
		ctx.StoreU32(counterVA, 0)
		worker := func(c kernel.Context) {
			for i := 0; i < 20; i++ {
				m.Lock(c)
				v, _ := c.LoadU32(counterVA)
				c.Compute(50) // widen the race window
				c.StoreU32(counterVA, v+1)
				m.Unlock(c)
			}
		}
		var pts []*PThread
		for i := 0; i < 3; i++ {
			pt, errno := l.PthreadCreate(ctx, worker)
			if errno != kernel.OK {
				t.Errorf("create: %v", errno)
				return
			}
			pts = append(pts, pt)
		}
		worker(ctx)
		for _, pt := range pts {
			l.PthreadJoin(ctx, pt)
		}
		v, _ := ctx.LoadU32(counterVA)
		if v != 80 {
			t.Errorf("counter = %d, want 80 (lost updates)", v)
		}
	})
}

func TestCondSignal(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		m, _ := l.NewMutex(ctx)
		cv, _ := l.NewCond(ctx)
		flagVA, _ := l.Malloc(ctx, 8)
		ctx.StoreU32(flagVA, 0)
		consumed := false
		pt, _ := l.PthreadCreate(ctx, func(c kernel.Context) {
			m.Lock(c)
			for {
				v, _ := c.LoadU32(flagVA)
				if v == 1 {
					break
				}
				cv.Wait(c, m)
			}
			consumed = true
			m.Unlock(c)
		})
		ctx.Compute(100_000)
		m.Lock(ctx)
		ctx.StoreU32(flagVA, 1)
		cv.Signal(ctx)
		m.Unlock(ctx)
		l.PthreadJoin(ctx, pt)
		if !consumed {
			t.Error("consumer never saw the flag")
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	onBoth(t, func(ctx kernel.Context) {
		l, _ := Init(ctx)
		const n = 4
		b, _ := l.NewBarrier(ctx, n)
		arriveVA, _ := l.Malloc(ctx, 8)
		ctx.StoreU32(arriveVA, 0)
		violated := false
		body := func(c kernel.Context, delay sim.Cycles) {
			c.Compute(delay)
			v, _ := c.LoadU32(arriveVA)
			c.StoreU32(arriveVA, v+1)
			b.Wait(c)
			// After the barrier, everyone must have arrived.
			if v, _ := c.LoadU32(arriveVA); v != n {
				violated = true
			}
		}
		var pts []*PThread
		for i := 0; i < n-1; i++ {
			d := sim.Cycles(10_000 * (i + 1))
			pt, errno := l.PthreadCreate(ctx, func(c kernel.Context) { body(c, d) })
			if errno != kernel.OK {
				t.Errorf("create: %v", errno)
				return
			}
			pts = append(pts, pt)
		}
		body(ctx, 40_000)
		for _, pt := range pts {
			l.PthreadJoin(ctx, pt)
		}
		if violated {
			t.Error("a thread passed the barrier before all arrived")
		}
	})
}

func TestGuardPageArmsOnClone(t *testing.T) {
	// The mprotect-before-clone handshake must arm a DAC guard on the
	// child's core under CNK: a store into the guard page faults.
	eng := sim.NewEngine()
	k := cnk.New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), cnk.Config{
		MaxThreadsPerCore: 3,
		IO:                ciod.NewLoopback(eng, fs.New()),
	})
	k.Boot()
	caught := false
	job, _ := k.Launch(cnk.JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.RegisterSignal(kernel.SIGSEGV, func(kernel.Context, kernel.SigInfo) { caught = true })
		l, _ := Init(ctx)
		var pt *PThread
		pt, errno := l.PthreadCreate(ctx, func(c kernel.Context) {
			// Overflow our own stack into the guard page.
			c.Store(pt.StackLo+8, []byte{0xAA})
		})
		if errno != kernel.OK {
			t.Errorf("create: %v", errno)
			return
		}
		ctx.Compute(500_000)
		_ = pt
	}})
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("stuck")
	}
	if !caught {
		t.Fatal("stack overflow into guard page not caught (paper Fig 4)")
	}
}

func TestSameBinaryBothKernels(t *testing.T) {
	// One workload closure, run unmodified on CNK and FWK — the paper's
	// "Linux environment without a Linux kernel" claim, end to end.
	workload := func(ctx kernel.Context) {
		l, err := Init(ctx)
		if err != nil {
			t.Errorf("init: %v", err)
			return
		}
		m, _ := l.NewMutex(ctx)
		sum, _ := l.Malloc(ctx, 8)
		ctx.StoreU32(sum, 0)
		var pts []*PThread
		for i := 0; i < 2; i++ {
			pt, errno := l.PthreadCreate(ctx, func(c kernel.Context) {
				m.Lock(c)
				v, _ := c.LoadU32(sum)
				c.StoreU32(sum, v+7)
				m.Unlock(c)
			})
			if errno != kernel.OK {
				t.Errorf("create: %v", errno)
				return
			}
			pts = append(pts, pt)
		}
		for _, pt := range pts {
			l.PthreadJoin(ctx, pt)
		}
		if v, _ := ctx.LoadU32(sum); v != 14 {
			t.Errorf("sum = %d", v)
		}
	}
	onBoth(t, workload)
}
