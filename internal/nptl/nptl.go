// Package nptl is the glibc/NPTL-equivalent runtime layer: pthreads,
// mutexes, condition variables, barriers and malloc, built ONLY on the
// kernel.Context syscall surface — clone with the static NPTL flag set,
// futex, set_tid_address, mprotect-before-clone for the stack guard, brk
// and mmap. This reproduces the paper's Section IV-B result: a full
// threading package needs only a handful of system calls, so the same
// binary-level runtime runs unmodified on CNK and on the FWK.
package nptl

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// Allocation constants. Stack allocations exceed 1MB and therefore come
// from mmap rather than brk, exactly as glibc behaves (paper IV-B1).
const (
	DefaultStackSize = 1 << 20
	GuardSize        = 4096
	MmapThreshold    = 1 << 20
)

// Lib is one process's runtime state (the loaded libc image). Threads of
// the process share it.
type Lib struct {
	kernelVersion string
	heapStart     hw.VAddr
	// free lists per size class for brk chunks, addresses only; chunk
	// headers live in simulated memory.
	free map[uint64][]hw.VAddr
	brkC hw.VAddr // current break cache

	Threads map[uint32]*PThread
}

// Init performs libc startup: uname to discover kernel capabilities (glibc
// refuses NPTL on old kernels) and set_tid_address for the main thread.
func Init(ctx kernel.Context) (*Lib, error) {
	// Scratch area for the uname string: the current break.
	brk, errno := ctx.Syscall(kernel.SysBrk, 0)
	if errno != kernel.OK {
		return nil, fmt.Errorf("nptl: brk query: %v", errno)
	}
	if _, errno := ctx.Syscall(kernel.SysBrk, brk+4096); errno != kernel.OK {
		return nil, fmt.Errorf("nptl: brk grow: %v", errno)
	}
	if _, errno := ctx.Syscall(kernel.SysUname, brk); errno != kernel.OK {
		return nil, fmt.Errorf("nptl: uname: %v", errno)
	}
	ver, errno := ctx.LoadCString(hw.VAddr(brk), 64)
	if errno != kernel.OK {
		return nil, fmt.Errorf("nptl: uname read: %v", errno)
	}
	if ver < "2.6" {
		return nil, fmt.Errorf("nptl: kernel %q too old for NPTL", ver)
	}
	ctx.Syscall(kernel.SysSetTidAddress, brk+8) // main thread's ctid slot
	l := &Lib{
		kernelVersion: ver,
		heapStart:     hw.VAddr(brk),
		free:          make(map[uint64][]hw.VAddr),
		brkC:          hw.VAddr(brk) + 4096,
		Threads:       make(map[uint32]*PThread),
	}
	return l, nil
}

// KernelVersion returns what uname reported.
func (l *Lib) KernelVersion() string { return l.kernelVersion }

// sizeClass rounds an allocation to its bucket.
func sizeClass(n uint64) uint64 {
	c := uint64(32)
	for c < n {
		c *= 2
	}
	return c
}

// Malloc allocates n bytes: small requests extend the break, requests of
// MmapThreshold or more go to mmap.
func (l *Lib) Malloc(ctx kernel.Context, n uint64) (hw.VAddr, kernel.Errno) {
	if n == 0 {
		n = 1
	}
	if n >= MmapThreshold {
		va, errno := ctx.Syscall(kernel.SysMmap, 0, n,
			kernel.ProtRead|kernel.ProtWrite, kernel.MapAnonymous|kernel.MapPrivate, ^uint64(0), 0)
		return hw.VAddr(va), errno
	}
	c := sizeClass(n)
	if lst := l.free[c]; len(lst) > 0 {
		va := lst[len(lst)-1]
		l.free[c] = lst[:len(lst)-1]
		return va, kernel.OK
	}
	va := l.brkC
	nb, errno := ctx.Syscall(kernel.SysBrk, uint64(l.brkC)+c)
	if errno != kernel.OK {
		return 0, errno
	}
	l.brkC = hw.VAddr(nb)
	return va, kernel.OK
}

// MallocSized frees require the size in this simplified allocator.
func (l *Lib) Free(ctx kernel.Context, va hw.VAddr, n uint64) {
	if n >= MmapThreshold {
		ctx.Syscall(kernel.SysMunmap, uint64(va), n)
		return
	}
	c := sizeClass(n)
	l.free[c] = append(l.free[c], va)
}

// PThread is one pthread's descriptor.
type PThread struct {
	TID      uint32
	StackLo  hw.VAddr
	StackSz  uint64
	ctid     hw.VAddr // CLONE_CHILD_CLEARTID word; zero when exited
	detached bool
}

// PthreadCreate starts fn on a new thread: allocate the stack (malloc →
// mmap, since it exceeds 1MB), mprotect the guard page at its low end
// (which CNK latches for the clone that follows — paper IV-C), then clone
// with the static NPTL flags.
func (l *Lib) PthreadCreate(ctx kernel.Context, fn func(ctx kernel.Context)) (*PThread, kernel.Errno) {
	stackSz := uint64(DefaultStackSize + GuardSize)
	stackLo, errno := l.Malloc(ctx, stackSz)
	if errno != kernel.OK {
		return nil, errno
	}
	// Guard page at the low end of the stack.
	if _, errno := ctx.Syscall(kernel.SysMprotect, uint64(stackLo), GuardSize, 0); errno != kernel.OK {
		return nil, errno
	}
	stackHi := stackLo + hw.VAddr(stackSz)
	ctid := stackHi - 8 // child-tid word lives at the stack top
	if errno := ctx.StoreU32(ctid, 1); errno != kernel.OK {
		return nil, errno
	}
	ptid := stackHi - 16
	tid, errno := ctx.Clone(kernel.CloneArgs{
		Flags:      kernel.NPTLCloneFlags,
		ChildStack: stackHi - 64,
		TLS:        stackHi - 256,
		ParentTID:  ptid,
		ChildTID:   ctid,
		Fn:         fn,
	})
	if errno != kernel.OK {
		l.Free(ctx, stackLo, stackSz)
		return nil, errno
	}
	pt := &PThread{TID: tid, StackLo: stackLo, StackSz: stackSz, ctid: ctid}
	l.Threads[tid] = pt
	return pt, kernel.OK
}

// PthreadJoin blocks until pt exits (futex on the CLEARTID word, which the
// kernel zeroes and wakes).
func (l *Lib) PthreadJoin(ctx kernel.Context, pt *PThread) kernel.Errno {
	for {
		v, errno := ctx.LoadU32(pt.ctid)
		if errno != kernel.OK {
			return errno
		}
		if v == 0 {
			delete(l.Threads, pt.TID)
			l.Free(ctx, pt.StackLo, pt.StackSz)
			return kernel.OK
		}
		_, errno = ctx.Syscall(kernel.SysFutex, uint64(pt.ctid), kernel.FutexWait, uint64(v), 0)
		if errno != kernel.OK && errno != kernel.EAGAIN {
			return errno
		}
	}
}

// Mutex is a futex-based pthread_mutex: 0 free, 1 locked, 2 contended.
type Mutex struct{ addr hw.VAddr }

// NewMutex allocates and initializes a mutex word.
func (l *Lib) NewMutex(ctx kernel.Context) (*Mutex, kernel.Errno) {
	va, errno := l.Malloc(ctx, 32)
	if errno != kernel.OK {
		return nil, errno
	}
	if errno := ctx.StoreU32(va, 0); errno != kernel.OK {
		return nil, errno
	}
	return &Mutex{addr: va}, kernel.OK
}

// Lock acquires the mutex: an atomic compare-and-swap fast path in pure
// user space (zero system calls when uncontended — the property CNK's
// futex implementation preserves), and a futex wait on contention.
func (m *Mutex) Lock(ctx kernel.Context) kernel.Errno {
	if ok, errno := ctx.CASU32(m.addr, 0, 1); errno != kernel.OK {
		return errno
	} else if ok {
		return kernel.OK
	}
	for {
		// Mark contended; if it was free we now own it (as contended,
		// which only costs a spurious wake at unlock).
		old, errno := ctx.SwapU32(m.addr, 2)
		if errno != kernel.OK {
			return errno
		}
		if old == 0 {
			return kernel.OK
		}
		_, errno = ctx.Syscall(kernel.SysFutex, uint64(m.addr), kernel.FutexWait, 2, 0)
		if errno != kernel.OK && errno != kernel.EAGAIN {
			return errno
		}
	}
}

// Unlock releases the mutex, waking one contended waiter.
func (m *Mutex) Unlock(ctx kernel.Context) kernel.Errno {
	old, errno := ctx.SwapU32(m.addr, 0)
	if errno != kernel.OK {
		return errno
	}
	if old == 2 {
		ctx.Syscall(kernel.SysFutex, uint64(m.addr), kernel.FutexWake, 1)
	}
	return kernel.OK
}

// Cond is a futex-sequence condition variable.
type Cond struct{ seq hw.VAddr }

// NewCond allocates a condition variable.
func (l *Lib) NewCond(ctx kernel.Context) (*Cond, kernel.Errno) {
	va, errno := l.Malloc(ctx, 32)
	if errno != kernel.OK {
		return nil, errno
	}
	if errno := ctx.StoreU32(va, 0); errno != kernel.OK {
		return nil, errno
	}
	return &Cond{seq: va}, kernel.OK
}

// Wait releases m, sleeps until signalled, and reacquires m.
func (c *Cond) Wait(ctx kernel.Context, m *Mutex) kernel.Errno {
	seq, errno := ctx.LoadU32(c.seq)
	if errno != kernel.OK {
		return errno
	}
	if errno := m.Unlock(ctx); errno != kernel.OK {
		return errno
	}
	_, errno = ctx.Syscall(kernel.SysFutex, uint64(c.seq), kernel.FutexWait, uint64(seq), 0)
	if errno != kernel.OK && errno != kernel.EAGAIN {
		return errno
	}
	return m.Lock(ctx)
}

// Signal wakes one waiter.
func (c *Cond) Signal(ctx kernel.Context) kernel.Errno {
	if _, errno := ctx.AddU32(c.seq, 1); errno != kernel.OK {
		return errno
	}
	ctx.Syscall(kernel.SysFutex, uint64(c.seq), kernel.FutexWake, 1)
	return kernel.OK
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(ctx kernel.Context) kernel.Errno {
	if _, errno := ctx.AddU32(c.seq, 1); errno != kernel.OK {
		return errno
	}
	ctx.Syscall(kernel.SysFutex, uint64(c.seq), kernel.FutexWake, 1<<30)
	return kernel.OK
}

// Barrier is a pthread_barrier over (count, generation) words.
type Barrier struct {
	n     uint32
	count hw.VAddr
	gen   hw.VAddr
}

// NewBarrier allocates a barrier for n participants.
func (l *Lib) NewBarrier(ctx kernel.Context, n uint32) (*Barrier, kernel.Errno) {
	va, errno := l.Malloc(ctx, 64)
	if errno != kernel.OK {
		return nil, errno
	}
	ctx.StoreU32(va, 0)
	ctx.StoreU32(va+8, 0)
	return &Barrier{n: n, count: va, gen: va + 8}, kernel.OK
}

// Wait blocks until n threads have arrived.
func (b *Barrier) Wait(ctx kernel.Context) kernel.Errno {
	gen, _ := ctx.LoadU32(b.gen)
	cnt, errno := ctx.AddU32(b.count, 1)
	if errno != kernel.OK {
		return errno
	}
	if cnt == b.n {
		ctx.StoreU32(b.count, 0)
		ctx.AddU32(b.gen, 1)
		ctx.Syscall(kernel.SysFutex, uint64(b.gen), kernel.FutexWake, 1<<30)
		return kernel.OK
	}
	for {
		g, errno := ctx.LoadU32(b.gen)
		if errno != kernel.OK {
			return errno
		}
		if g != gen {
			return kernel.OK
		}
		_, errno = ctx.Syscall(kernel.SysFutex, uint64(b.gen), kernel.FutexWait, uint64(gen), 0)
		if errno != kernel.OK && errno != kernel.EAGAIN {
			return errno
		}
	}
}

// Yield is sched_yield.
func Yield(ctx kernel.Context) { ctx.Syscall(kernel.SysYield) }

// Sleepish burns cycles (there is no nanosleep in either kernel; HPC code
// spins).
func Sleepish(ctx kernel.Context, d sim.Cycles) { ctx.Compute(d) }
