package ion

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzIONMux feeds arbitrary bytes to the multiplexed-frame decoder and
// checks the strict-format invariants: no input panics or over-reads, any
// accepted frame re-marshals to the identical bytes (the format has no
// redundancy, so canonical re-encoding must reproduce the input), and the
// typed round trip is exact.
func FuzzIONMux(f *testing.F) {
	f.Add(MarshalFrame(&Frame{CN: 0, PID: 1, Tag: 1}))
	f.Add(MarshalFrame(&Frame{CN: 7, PID: 100, Tag: 42, Payload: []byte("shipped request")}))
	f.Add(MarshalFrame(&Frame{CN: -1, PID: ^uint32(0), Tag: ^uint32(0),
		Payload: bytes.Repeat([]byte{0xab}, 300)}))
	// Corruption shapes a shared uplink would produce: truncated frames,
	// bad magic, and a payload-length field lying in both directions.
	whole := MarshalFrame(&Frame{CN: 3, PID: 9, Tag: 5, Payload: []byte("cut me")})
	f.Add(whole[:len(whole)/2])
	f.Add(whole[:len(whole)-1])
	f.Add(append(append([]byte(nil), whole...), 0xff))
	bad := append([]byte(nil), whole...)
	bad[0] = 0x00
	f.Add(bad)
	lying := append([]byte(nil), whole...)
	lying[16] = 0xff
	f.Add(lying)
	f.Add([]byte{})
	f.Add([]byte{frameMagic})
	f.Fuzz(func(t *testing.T, wire []byte) {
		fr, err := UnmarshalFrame(wire)
		if err != nil {
			return
		}
		again := MarshalFrame(fr)
		if !bytes.Equal(again, wire) {
			t.Fatalf("accepted frame is not canonical:\n in %x\nout %x", wire, again)
		}
		fr2, err := UnmarshalFrame(again)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("frame round trip changed:\n%+v\nvs\n%+v", fr, fr2)
		}
	})
}

// TestFrameRoundTrip pins the typed round trip deterministically.
func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{CN: 0, PID: 0, Tag: 0},
		{CN: 12, PID: 34, Tag: 56, Payload: []byte("payload")},
		{CN: -1, PID: 1 << 31, Tag: 7, Payload: make([]byte, BlockSize)},
	}
	for _, fr := range frames {
		got, err := UnmarshalFrame(MarshalFrame(fr))
		if err != nil {
			t.Fatalf("%+v: %v", fr, err)
		}
		if got.CN != fr.CN || got.PID != fr.PID || got.Tag != fr.Tag ||
			!bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("round trip changed: %+v vs %+v", fr, got)
		}
	}
}

// TestFrameRejects pins the strictness properties the demux relies on.
func TestFrameRejects(t *testing.T) {
	whole := MarshalFrame(&Frame{CN: 1, PID: 2, Tag: 3, Payload: []byte("abc")})
	cases := [][]byte{
		nil,
		whole[:frameHeader-1],
		whole[:len(whole)-1],                     // short payload
		append(append([]byte(nil), whole...), 0), // trailing garbage
	}
	bad := append([]byte(nil), whole...)
	bad[0] ^= 0xff
	cases = append(cases, bad)
	for i, wire := range cases {
		if _, err := UnmarshalFrame(wire); err == nil {
			t.Errorf("case %d: corrupt frame accepted", i)
		}
	}
}
