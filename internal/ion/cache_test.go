package ion

import (
	"bytes"
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// newCacheFixture returns a cache over a fresh fs with one empty file.
func newCacheFixture(t *testing.T, blocks int) (*Cache, *fs.FS, uint64) {
	t.Helper()
	fsys := fs.New()
	fsys.MustMkdirAll("/gpfs")
	if errno := fsys.WriteFile("/gpfs/f", nil, 0644, fs.Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	st, errno := fsys.Stat("/", "/gpfs/f", fs.Root)
	if errno != kernel.OK {
		t.Fatal(errno)
	}
	return NewCache(fsys, blocks), fsys, st.Ino
}

// run executes fn inside a simulation coroutine and drains the engine.
func run(fn func(c *sim.Coro)) {
	eng := sim.NewEngine()
	eng.Go("test", fn)
	eng.RunUntilIdle()
}

// Writes stay dirty in the cache (invisible to the fs) until Flush, after
// which the fs holds exactly the written bytes — write-back semantics.
func TestWriteBackVisibleOnlyAfterFlush(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 8)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 0, []byte("hello world"))
		if data, _ := fsys.ReadFile("/gpfs/f", fs.Root); len(data) != 0 {
			t.Errorf("dirty data leaked to fs before flush: %q", data)
		}
		if got := ca.Read(c, ino, 0, 64); string(got) != "hello world" {
			t.Errorf("cached read = %q", got)
		}
		ca.Flush(c, ino)
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	if string(data) != "hello world" {
		t.Fatalf("after flush fs holds %q", data)
	}
	if ca.DirtyBlocks() != 0 {
		t.Fatal("dirty blocks remain after flush")
	}
}

// Interleaved writes from different offsets — the multi-proxy pattern —
// must land with last-writer-wins POSIX semantics after flush.
func TestInterleavedOffsetsPOSIXAfterFlush(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 8)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 0, bytes.Repeat([]byte("a"), 100))
		ca.Write(c, ino, 50, bytes.Repeat([]byte("b"), 100))
		ca.Write(c, ino, 25, []byte("zz"))
		ca.Flush(c, ino)
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	want := append(bytes.Repeat([]byte("a"), 25), []byte("zz")...)
	want = append(want, bytes.Repeat([]byte("a"), 23)...)
	want = append(want, bytes.Repeat([]byte("b"), 100)...)
	if !bytes.Equal(data, want) {
		t.Fatalf("flushed file = %q, want %q", data, want)
	}
}

// The effective size (what O_APPEND and fstat see) covers unflushed
// extents.
func TestEffectiveSizeCoversDirtyExtents(t *testing.T) {
	ca, _, ino := newCacheFixture(t, 8)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 0, []byte("0123456789"))
		if sz := ca.Size(ino); sz != 10 {
			t.Errorf("effective size = %d, want 10", sz)
		}
		// An append lands at the effective EOF, not the fs EOF (0).
		ca.Write(c, ino, ca.Size(ino), []byte("abc"))
		if sz := ca.Size(ino); sz != 13 {
			t.Errorf("effective size after append = %d, want 13", sz)
		}
		if got := ca.Read(c, ino, 8, 10); string(got) != "89abc" {
			t.Errorf("read across extents = %q", got)
		}
	})
}

// A sparse write beyond EOF zero-fills the gap on flush.
func TestSparseWriteZeroFills(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 8)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 10_000, []byte("tail"))
		ca.Flush(c, ino)
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	if len(data) != 10_004 {
		t.Fatalf("flushed size = %d, want 10004", len(data))
	}
	for i, b := range data[:10_000] {
		if b != 0 {
			t.Fatalf("gap byte %d = %#x, want 0", i, b)
		}
	}
	if string(data[10_000:]) != "tail" {
		t.Fatalf("tail = %q", data[10_000:])
	}
}

// Truncate racing a dirty block: dirty data beyond the truncation point
// must never resurface, dirty data below it must survive the flush, and
// re-extension reads zeros (POSIX).
func TestTruncateRacesDirtyBlock(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 8)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 0, bytes.Repeat([]byte("d"), 2*BlockSize)) // 2 dirty blocks
		ca.Truncate(c, ino, 100)                                    // below the first block's end
		// Truncate is write-through for metadata.
		if st, _ := fsys.Stat("/", "/gpfs/f", fs.Root); st.Size != 100 {
			t.Errorf("fs size after truncate = %d, want 100", st.Size)
		}
		// Re-extend past the old dirty region: the hole must read zero.
		ca.Truncate(c, ino, BlockSize+10)
		if got := ca.Read(c, ino, 100, 50); !bytes.Equal(got, make([]byte, 50)) {
			t.Errorf("re-extended hole reads %q, want zeros", got)
		}
		ca.Flush(c, ino)
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	if len(data) != BlockSize+10 {
		t.Fatalf("final size = %d, want %d", len(data), BlockSize+10)
	}
	for i := 0; i < 100; i++ {
		if data[i] != 'd' {
			t.Fatalf("surviving byte %d = %#x, want 'd'", i, data[i])
		}
	}
	for i := 100; i < len(data); i++ {
		if data[i] != 0 {
			t.Fatalf("byte %d = %#x resurfaced after truncate", i, data[i])
		}
	}
}

// LRU eviction writes dirty victims back, so capacity pressure cannot
// lose data; adjacent dirty blocks flush as one coalesced write.
func TestEvictionWritesBackAndFlushCoalesces(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 2)
	run(func(c *sim.Coro) {
		// Three dirty blocks through a 2-block cache: block 0 is evicted
		// (written back) when block 2 enters.
		ca.Write(c, ino, 0, bytes.Repeat([]byte("x"), 3*BlockSize))
		ca.Flush(c, ino)
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	if len(data) != 3*BlockSize || !bytes.Equal(data, bytes.Repeat([]byte("x"), 3*BlockSize)) {
		t.Fatalf("file corrupted by eviction: len=%d", len(data))
	}
	// Blocks 1 and 2 were dirty at Flush and adjacent: one merged run.
	if ca.ctr.Get(upc.ChipScope, upc.IONCoalesce) == 0 {
		t.Fatal("expected coalesced writeback")
	}
}

// An ION crash clears the cache: dirty data is lost, the fs keeps only
// what was flushed — the durability hole the flush triggers exist for.
func TestCrashDropsDirtyData(t *testing.T) {
	ca, fsys, ino := newCacheFixture(t, 8)
	node := NewNode(Config{QueueDepth: 2}, ca)
	run(func(c *sim.Coro) {
		ca.Write(c, ino, 0, []byte("durable"))
		ca.Flush(c, ino)
		ca.Write(c, ino, 7, []byte(" lost"))
		node.Crash()
	})
	data, _ := fsys.ReadFile("/gpfs/f", fs.Root)
	if string(data) != "durable" {
		t.Fatalf("after crash fs holds %q, want %q", data, "durable")
	}
	if ca.DirtyBlocks() != 0 {
		t.Fatal("dirty blocks survived the crash")
	}
}

// FlushAll walks every dirty file in inode order; used by the barrier
// quiesce so checkpoints are durable through the cache.
func TestFlushAllDeterministicAndComplete(t *testing.T) {
	fsys := fs.New()
	fsys.MustMkdirAll("/gpfs")
	var inos []uint64
	for _, name := range []string{"/gpfs/a", "/gpfs/b", "/gpfs/c"} {
		fsys.WriteFile(name, nil, 0644, fs.Root)
		st, _ := fsys.Stat("/", name, fs.Root)
		inos = append(inos, st.Ino)
	}
	ca := NewCache(fsys, 16)
	run(func(c *sim.Coro) {
		for i, ino := range inos {
			ca.Write(c, ino, 0, bytes.Repeat([]byte{byte('a' + i)}, 10))
		}
		ca.FlushAll(nil) // nil coroutine: free, service-side
	})
	for i, name := range []string{"/gpfs/a", "/gpfs/b", "/gpfs/c"} {
		data, _ := fsys.ReadFile(name, fs.Root)
		if !bytes.Equal(data, bytes.Repeat([]byte{byte('a' + i)}, 10)) {
			t.Fatalf("%s = %q after FlushAll", name, data)
		}
	}
	if ca.DirtyBlocks() != 0 {
		t.Fatal("dirty blocks after FlushAll")
	}
}
