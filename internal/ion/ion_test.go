package ion

import (
	"fmt"
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

func newTestNode(depth int) *Node {
	return NewNode(Config{QueueDepth: depth, CacheBlocks: 8}, nil)
}

// With more callers than credits, grants must rotate round-robin over
// waiting CNs regardless of arrival order, and the stall cycles must land
// on the stalling chips' counters.
func TestAcquireRoundRobinFairness(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(1)
	units := map[int]*upc.UPC{}
	var order []int
	// CN 0 grabs the only credit and holds it; CNs 3, 1, 2 then queue in
	// that arrival order. RR order after lastGrant=0 must be 1, 2, 3.
	hold := eng.Go("holder", func(c *sim.Coro) {
		n.Acquire(c, 0, nil)
		c.Park(sim.Forever)
		n.Release()
	})
	for _, cn := range []int{3, 1, 2} {
		cn := cn
		units[cn] = upc.New()
		eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
			c.Sleep(sim.Cycles(10 + cn)) // queue strictly after the holder
			n.Acquire(c, cn, units[cn])
			order = append(order, cn)
			c.Sleep(5)
			n.Release()
		})
	}
	eng.Go("release", func(c *sim.Coro) {
		c.Sleep(100)
		hold.Wake()
	})
	eng.RunUntilIdle()
	if want := []int{1, 2, 3}; fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for _, cn := range []int{1, 2, 3} {
		if got := units[cn].Get(upc.ChipScope, upc.IONStall); got != 1 {
			t.Errorf("cn%d stalls = %d, want 1", cn, got)
		}
		if units[cn].Get(upc.ChipScope, upc.IONStallCycles) == 0 {
			t.Errorf("cn%d stall cycles = 0, want > 0", cn)
		}
	}
	if st := n.Stats(); st.Admitted != 4 || st.MaxDepth != 1 || st.Depth != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A free credit admits immediately with no stall counted.
func TestAcquireImmediateNoStall(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(4)
	u := upc.New()
	eng.Go("cn", func(c *sim.Coro) {
		n.Acquire(c, 7, u)
		n.Release()
	})
	eng.RunUntilIdle()
	if got := u.Get(upc.ChipScope, upc.IONStall); got != 0 {
		t.Fatalf("stalls = %d, want 0", got)
	}
	if st := n.Stats(); st.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1", st.Admitted)
	}
}

// The queue depth bounds concurrent holders; the high-water mark proves
// the bound was reached, never exceeded.
func TestQueueDepthBounds(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(3)
	live, maxLive := 0, 0
	for i := 0; i < 10; i++ {
		cn := i
		eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
			n.Acquire(c, cn, nil)
			live++
			if live > maxLive {
				maxLive = live
			}
			c.Sleep(50)
			live--
			n.Release()
		})
	}
	eng.RunUntilIdle()
	if maxLive != 3 {
		t.Fatalf("max concurrent holders = %d, want 3", maxLive)
	}
	if st := n.Stats(); st.MaxDepth != 3 || st.Admitted != 10 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Two identical runs produce identical grant orders and stall cycles —
// the determinism contract for the contended fan-in.
func TestAcquireDeterministic(t *testing.T) {
	run := func() (string, uint64) {
		eng := sim.NewEngine()
		n := newTestNode(2)
		u := upc.New()
		var order []int
		for i := 0; i < 8; i++ {
			cn := i
			eng.Go(fmt.Sprintf("cn%d", cn), func(c *sim.Coro) {
				c.Sleep(sim.Cycles(cn % 3))
				n.Acquire(c, cn, u)
				order = append(order, cn)
				c.Sleep(sim.Cycles(20 + cn))
				n.Release()
			})
		}
		eng.RunUntilIdle()
		return fmt.Sprint(order), u.Get(upc.ChipScope, upc.IONStallCycles)
	}
	o1, s1 := run()
	o2, s2 := run()
	if o1 != o2 || s1 != s2 {
		t.Fatalf("runs diverged: (%s, %d) vs (%s, %d)", o1, s1, o2, s2)
	}
}

// Reset restores the full credit pool and zeroes counters and cache.
func TestReset(t *testing.T) {
	eng := sim.NewEngine()
	fsys := fs.New()
	fsys.MustMkdirAll("/d")
	if errno := fsys.WriteFile("/d/f", []byte("x"), 0644, fs.Root); errno != 0 {
		t.Fatal(errno)
	}
	st, _ := fsys.Stat("/", "/d/f", fs.Root)
	n := NewNode(Config{QueueDepth: 2, CacheBlocks: 4}, NewCache(fsys, 4))
	eng.Go("cn", func(c *sim.Coro) {
		n.Acquire(c, 0, nil)
		n.Cache().Write(c, st.Ino, 0, []byte("dirty"))
	})
	eng.RunUntilIdle()
	if n.Cache().DirtyBlocks() == 0 {
		t.Fatal("expected a dirty block before reset")
	}
	n.Reset()
	if n.Cache().DirtyBlocks() != 0 {
		t.Fatal("dirty blocks survived reset")
	}
	if st := n.Stats(); st.Admitted != 0 || st.Depth != 0 || st.MaxDepth != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	// The credit pool is whole again.
	granted := 0
	eng2 := sim.NewEngine()
	eng2.Go("a", func(c *sim.Coro) { n.Acquire(c, 0, nil); granted++ })
	eng2.Go("b", func(c *sim.Coro) { n.Acquire(c, 1, nil); granted++ })
	eng2.RunUntilIdle()
	if granted != 2 {
		t.Fatalf("granted %d after reset, want 2", granted)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestNode(1).Release()
}
