// Package ion models the Blue Gene I/O node as a first-class simulated
// component. The paper's function-shipping design (Section IV-A) only
// works because one I/O node absorbs the syscall traffic of 8–128 compute
// nodes over the collective tree; this package supplies the aggregation
// machinery that makes that fan-in observable: a bounded ingress queue
// with deterministic round-robin fairness and explicit backpressure (the
// compute node stalls, and its stall cycles land in its UPC unit), a
// write-back buffer cache with dirty-block tracking and LRU eviction (the
// ION runs Linux; its page cache is what gives CNK applications buffered
// I/O semantics), and the multiplexed framing that lets one daemon serve
// many compute nodes over a single shared uplink.
//
// Everything here follows the repo's determinism contract: grants rotate
// round-robin over waiting compute nodes in node order, evictions follow
// the LRU list, and flushes walk dirty blocks in (inode, block) order —
// no map iteration ever reaches simulated time.
package ion

import (
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Defaults for Config's zero fields.
const (
	DefaultQueueDepth  = 16
	DefaultCacheBlocks = 128
	DefaultCoalesceMax = 8
)

// Config sizes one I/O node's aggregation machinery.
type Config struct {
	// QueueDepth is the number of ingress credits shared by every compute
	// node attached to this ION. A compute node acquires one credit per
	// function-shipped call before transmitting; when none are free it
	// stalls until the daemon retires an earlier call.
	QueueDepth int
	// CacheBlocks is the write-back buffer cache capacity in BlockSize
	// blocks.
	CacheBlocks int
	// CoalesceMax bounds how many queued same-fd writes the daemon merges
	// into one batch before touching the filesystem.
	CoalesceMax int
}

// WithDefaults fills zero fields with the defaults above.
func (c Config) WithDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = DefaultCacheBlocks
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = DefaultCoalesceMax
	}
	return c
}

// Node is one I/O node's aggregation state: the ingress credit gate and
// the buffer cache. The CIOD server owns a Node when the ION subsystem is
// armed; compute-node clients share it through the server.
type Node struct {
	cfg   Config
	cache *Cache

	free      int       // ingress credits not held by an in-flight call
	waiters   []*waiter // arrival order; grants rotate round-robin by CN
	lastGrant int       // CN id granted most recently
	depth     int       // credits currently held
	maxDepth  int       // high-water mark of depth

	// ctr is the ION's own counter set (admits, coalesces, cache traffic).
	// CN-side stall counters land on the stalling chip's unit instead.
	ctr upc.Set
}

type waiter struct {
	c       *sim.Coro
	cn      int
	granted bool
}

// NewNode builds an ION over cache (which the caller constructs via
// NewCache so the fs hookup stays explicit).
func NewNode(cfg Config, cache *Cache) *Node {
	cfg = cfg.WithDefaults()
	n := &Node{cfg: cfg, cache: cache, free: cfg.QueueDepth, lastGrant: -1}
	if cache != nil {
		cache.ctr = &n.ctr
	}
	return n
}

// Config returns the (defaulted) configuration.
func (n *Node) Config() Config { return n.cfg }

// Cache returns the write-back buffer cache.
func (n *Node) Cache() *Cache { return n.cache }

// Counters returns the ION's counter set.
func (n *Node) Counters() *upc.Set { return &n.ctr }

// Acquire blocks until an ingress credit is free, charging the stall to
// the calling compute node's UPC unit. Credits are granted round-robin
// over waiting compute nodes (ties broken by arrival order within a CN),
// so a chatty neighbour cannot starve anyone — the fairness the real
// CIOD gets from Linux scheduling its ioproxies, made deterministic.
func (n *Node) Acquire(c *sim.Coro, cn int, u *upc.UPC) {
	if n.free > 0 {
		n.free--
		n.admit()
		return
	}
	start := c.Now()
	w := &waiter{c: c, cn: cn}
	n.waiters = append(n.waiters, w)
	if u != nil {
		u.Inc(upc.ChipScope, upc.IONStall)
	}
	for !w.granted {
		c.Park(sim.Forever)
	}
	if u != nil {
		u.Add(upc.ChipScope, upc.IONStallCycles, uint64(c.Now()-start))
	}
	n.admit()
}

func (n *Node) admit() {
	n.depth++
	if n.depth > n.maxDepth {
		n.maxDepth = n.depth
	}
	n.ctr.Inc(upc.ChipScope, upc.IONAdmit)
}

// Release retires one in-flight call's credit. If compute nodes are
// waiting, the credit transfers directly to the next one in round-robin
// order; otherwise it returns to the free pool.
func (n *Node) Release() {
	if n.depth <= 0 {
		panic("ion: Release without Acquire")
	}
	n.depth--
	w := n.nextWaiter()
	if w == nil {
		n.free++
		return
	}
	n.lastGrant = w.cn
	w.granted = true
	w.c.Wake()
}

// nextWaiter pops the first-arrived waiter of the CN that follows
// lastGrant in cyclic node order; nil if nobody waits.
func (n *Node) nextWaiter() *waiter {
	if len(n.waiters) == 0 {
		return nil
	}
	// Two-pass selection: find the winning CN in cyclic order after
	// lastGrant, then that CN's earliest-arrived waiter.
	winCN := n.waiters[0].cn
	for _, w := range n.waiters[1:] {
		if rrBefore(w.cn, winCN, n.lastGrant) {
			winCN = w.cn
		}
	}
	for i, w := range n.waiters {
		if w.cn == winCN {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			return w
		}
	}
	return nil
}

// rrBefore reports whether CN a precedes CN b in the cyclic round-robin
// order that starts just after `last`.
func rrBefore(a, b, last int) bool {
	if a == b {
		return false
	}
	aw := a <= last // a wrapped: served only after the non-wrapped group
	bw := b <= last
	if aw != bw {
		return bw
	}
	return a < b
}

// Crash models the I/O node dying: the buffer cache loses everything,
// dirty blocks included — exactly the durability hole fsync/close flushes
// exist to plug. Credits are NOT reset here: every in-flight call's
// credit comes back through the CIOD server's own crash machinery (the
// EIO flush Releases each one), which keeps grant order deterministic
// through the crash.
func (n *Node) Crash() {
	if n.cache != nil {
		n.cache.Clear()
	}
}

// Reset returns the node to its just-built state for a partition reboot:
// full credit pool, empty cache, zeroed counters. Waiting coroutines are
// the previous job's and are being torn down by the caller.
func (n *Node) Reset() {
	n.free = n.cfg.QueueDepth
	n.waiters = nil
	n.lastGrant = -1
	n.depth = 0
	n.maxDepth = 0
	n.ctr.Reset()
	if n.cache != nil {
		n.cache.Clear()
	}
}

// Stats is a point-in-time summary of the node's aggregation counters.
type Stats struct {
	Admitted    uint64
	Coalesced   uint64
	CacheHits   uint64
	CacheMisses uint64
	Writebacks  uint64
	Flushes     uint64
	MaxDepth    int
	Depth       int
}

// Stats summarizes the counter set.
func (n *Node) Stats() Stats {
	return Stats{
		Admitted:    n.ctr.Get(upc.ChipScope, upc.IONAdmit),
		Coalesced:   n.ctr.Get(upc.ChipScope, upc.IONCoalesce),
		CacheHits:   n.ctr.Get(upc.ChipScope, upc.IONCacheHit),
		CacheMisses: n.ctr.Get(upc.ChipScope, upc.IONCacheMiss),
		Writebacks:  n.ctr.Get(upc.ChipScope, upc.IONWriteback),
		Flushes:     n.ctr.Get(upc.ChipScope, upc.IONFlush),
		MaxDepth:    n.maxDepth,
		Depth:       n.depth,
	}
}
