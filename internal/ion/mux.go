package ion

import (
	"encoding/binary"
	"fmt"
)

// Frame is the multiplexed CN→ION framing. When the ION subsystem is
// armed, every function-shipped request crosses the shared uplink wrapped
// in a frame naming its originating compute node, process and reply tag,
// so one daemon can demultiplex many compute nodes' traffic arriving
// interleaved on a single link. The format is strict — fixed magic, exact
// payload length, no trailing bytes — so a corrupted frame is rejected
// rather than misrouted.
type Frame struct {
	CN      int32  // originating compute node ID
	PID     uint32 // process whose ioproxy should serve the payload
	Tag     uint32 // reply tag the CN is waiting on
	Payload []byte // marshalled ciod request
}

// frameMagic guards against unframed traffic reaching a demux and vice
// versa.
const frameMagic = 0xB6

// frameHeader is magic(1) + cn(4) + pid(4) + tag(4) + paylen(4).
const frameHeader = 1 + 4 + 4 + 4 + 4

// MarshalFrame renders the frame in wire format (big-endian, like the
// rest of the protocol stack).
func MarshalFrame(f *Frame) []byte {
	b := make([]byte, 0, frameHeader+len(f.Payload))
	b = append(b, frameMagic)
	b = binary.BigEndian.AppendUint32(b, uint32(f.CN))
	b = binary.BigEndian.AppendUint32(b, f.PID)
	b = binary.BigEndian.AppendUint32(b, f.Tag)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Payload)))
	b = append(b, f.Payload...)
	return b
}

// UnmarshalFrame parses wire format strictly: bad magic, short buffers,
// and length mismatches (including trailing garbage) are all errors.
func UnmarshalFrame(b []byte) (*Frame, error) {
	if len(b) < frameHeader {
		return nil, fmt.Errorf("ion: frame truncated (%d bytes)", len(b))
	}
	if b[0] != frameMagic {
		return nil, fmt.Errorf("ion: bad frame magic %#x", b[0])
	}
	f := &Frame{
		CN:  int32(binary.BigEndian.Uint32(b[1:5])),
		PID: binary.BigEndian.Uint32(b[5:9]),
		Tag: binary.BigEndian.Uint32(b[9:13]),
	}
	n := binary.BigEndian.Uint32(b[13:17])
	rest := b[frameHeader:]
	if uint64(n) != uint64(len(rest)) {
		return nil, fmt.Errorf("ion: frame payload length %d, have %d", n, len(rest))
	}
	f.Payload = append([]byte(nil), rest...)
	return f, nil
}
