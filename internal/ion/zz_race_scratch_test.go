package ion

import (
	"bytes"
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// Scratch test (review only): two coroutines sharing the cache — A flushes
// an inode with two non-adjacent dirty blocks while B's fills force the
// eviction of A's second dirty block during A's first writeback sleep.
func TestScratchFlushEvictRace(t *testing.T) {
	fsys := fs.New()
	fsys.MustMkdirAll("/gpfs")
	if errno := fsys.WriteFile("/gpfs/a", nil, 0644, fs.Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	big := bytes.Repeat([]byte("x"), 8*BlockSize)
	if errno := fsys.WriteFile("/gpfs/b", big, 0644, fs.Root); errno != kernel.OK {
		t.Fatal(errno)
	}
	stA, _ := fsys.Stat("/", "/gpfs/a", fs.Root)
	stB, _ := fsys.Stat("/", "/gpfs/b", fs.Root)

	ca := NewCache(fsys, 4)
	eng := sim.NewEngine()
	eng.Go("A", func(c *sim.Coro) {
		ca.Write(c, stA.Ino, 0, []byte("one"))            // block 0 dirty
		ca.Write(c, stA.Ino, 2*BlockSize, []byte("three")) // block 2 dirty
		ca.Flush(c, stA.Ino) // two runs; sleeps between them
	})
	eng.Go("B", func(c *sim.Coro) {
		c.Sleep(1) // let A reach its first writeback sleep
		for i := 0; i < 6; i++ {
			ca.Read(c, stB.Ino, uint64(i)*BlockSize, 1) // fills force evictions
		}
	})
	eng.RunUntilIdle()
}
