package ion

import (
	"sort"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// BlockSize is the buffer cache's block granularity.
const BlockSize = 4096

// I/O-node block-layer costs, charged to the serving ioproxy coroutine.
// A fill or writeback touches the ION's "disk" (the backing fs); merged
// writebacks pay one base cost plus a small per-extra-block cost — the
// coalescing win the real ION gets from its elevator.
const (
	costFill          = sim.Cycles(1500) // read one block into the cache
	costWriteback     = sim.Cycles(1500) // write one dirty run's first block
	costWritebackNext = sim.Cycles(300)  // each further block in a merged run
)

type blockKey struct {
	ino uint64
	idx uint64 // block index within the file
}

type block struct {
	key   blockKey
	data  []byte // always BlockSize long
	dirty bool
	// LRU list links; head is most recently used.
	prev, next *block
}

// Cache is the I/O node's write-back buffer cache: fixed capacity,
// dirty-block tracking, LRU eviction. It sits below the VFS layer —
// permission checks happened when the ioproxy opened the file — and
// addresses the backing fs by inode. All traffic to cached files must
// flow through the cache (the machine wires it that way); mixing direct
// fs writes with cached ones on the same live inode is undefined, just
// as bypassing the Linux page cache is.
type Cache struct {
	fsys *fs.FS
	cap  int
	ctr  *upc.Set // shared with the owning Node

	blocks     map[blockKey]*block
	head, tail *block
	// sizes tracks each touched file's effective size: the fs size at
	// first touch, extended by cached writes, reset by truncate. Reads,
	// O_APPEND positioning and fstat all see this size — POSIX semantics
	// over unflushed data.
	sizes map[uint64]uint64
}

// NewCache builds a cache of capBlocks blocks over fsys. A standalone
// cache counts into its own set; NewNode repoints ctr at the node's.
func NewCache(fsys *fs.FS, capBlocks int) *Cache {
	if capBlocks <= 0 {
		capBlocks = DefaultCacheBlocks
	}
	return &Cache{fsys: fsys, cap: capBlocks, ctr: &upc.Set{},
		blocks: make(map[blockKey]*block), sizes: make(map[uint64]uint64)}
}

// SetFS repoints the cache at a new backing filesystem (partition reboot
// mounts a fresh one) and clears all cached state.
func (ca *Cache) SetFS(fsys *fs.FS) {
	ca.fsys = fsys
	ca.Clear()
}

// Size returns the file's effective size: the backing size overlaid with
// every cached write.
func (ca *Cache) Size(ino uint64) uint64 {
	if v, ok := ca.sizes[ino]; ok {
		return v
	}
	v, errno := ca.fsys.InodeSize(ino)
	if errno != kernel.OK {
		panic("ion: cache touched unknown inode")
	}
	ca.sizes[ino] = v
	return v
}

// Read returns up to count bytes at off, overlaying dirty blocks on fs
// content; short at the effective EOF. Block fills charge costFill to co.
func (ca *Cache) Read(co *sim.Coro, ino, off uint64, count int) []byte {
	sz := ca.Size(ino)
	if off >= sz || count <= 0 {
		return nil
	}
	if off+uint64(count) > sz {
		count = int(sz - off)
	}
	out := make([]byte, 0, count)
	for count > 0 {
		b := ca.touch(co, ino, off/BlockSize)
		bo := off % BlockSize
		n := BlockSize - int(bo)
		if n > count {
			n = count
		}
		out = append(out, b.data[bo:int(bo)+n]...)
		off += uint64(n)
		count -= n
	}
	return out
}

// Write stores data at off dirty in the cache, extending the effective
// size; nothing reaches the fs until eviction or an explicit flush.
func (ca *Cache) Write(co *sim.Coro, ino, off uint64, data []byte) {
	ca.Size(ino) // ensure the size entry exists before extending it
	for len(data) > 0 {
		b := ca.touch(co, ino, off/BlockSize)
		bo := off % BlockSize
		n := copy(b.data[bo:], data)
		b.dirty = true
		off += uint64(n)
		data = data[n:]
		// Extend the effective size as bytes land, not after the loop: a
		// capacity eviction inside touch writes back against this size.
		if off > ca.sizes[ino] {
			ca.sizes[ino] = off
		}
	}
}

// Truncate sets the file to size with write-through metadata: blocks
// wholly beyond the new size are discarded (dirty or not — their content
// must never resurface), a straddling block has its tail zeroed, and the
// backing fs is resized immediately.
func (ca *Cache) Truncate(co *sim.Coro, ino, size uint64) {
	ca.Size(ino)
	for _, key := range ca.inoBlocks(ino) {
		start := key.idx * BlockSize
		b := ca.blocks[key]
		switch {
		case start >= size:
			ca.unlink(b)
			delete(ca.blocks, key)
		case start+BlockSize > size:
			zero(b.data[size-start:])
		}
	}
	if errno := ca.fsys.TruncateInode(ino, size); errno != kernel.OK {
		panic("ion: truncate of unknown inode")
	}
	ca.sizes[ino] = size
}

// Flush writes the file's dirty blocks back to the fs, merging adjacent
// blocks into single contiguous writes (the request coalescer's second
// half: per-request merging happens in the daemon's batch path, and the
// writeback path merges whatever adjacency is left). Costs are charged
// to co; a nil co flushes for free (barrier quiesce, service-side).
func (ca *Cache) Flush(co *sim.Coro, ino uint64) {
	keys := ca.inoBlocks(ino)
	dirty := keys[:0]
	for _, k := range keys {
		if ca.blocks[k].dirty {
			dirty = append(dirty, k)
		}
	}
	if len(dirty) == 0 {
		return
	}
	sz := ca.Size(ino)
	run := []blockKey{dirty[0]}
	emit := func() {
		ca.writeRun(co, run, sz)
		if len(run) > 1 {
			ca.ctr.Add(upc.ChipScope, upc.IONCoalesce, uint64(len(run)-1))
		}
	}
	for _, k := range dirty[1:] {
		if k.idx == run[len(run)-1].idx+1 {
			run = append(run, k)
			continue
		}
		emit()
		run = []blockKey{k}
	}
	emit()
	ca.ctr.Inc(upc.ChipScope, upc.IONFlush)
}

// writeRun writes one contiguous dirty run (trimmed to the effective
// size) back in a single fs write and marks the blocks clean.
func (ca *Cache) writeRun(co *sim.Coro, run []blockKey, sz uint64) {
	start := run[0].idx * BlockSize
	end := (run[len(run)-1].idx + 1) * BlockSize
	if end > sz {
		end = sz
	}
	if start < end {
		buf := make([]byte, 0, end-start)
		for _, k := range run {
			b := ca.blocks[k]
			bs := k.idx * BlockSize
			be := bs + BlockSize
			if be > end {
				be = end
			}
			buf = append(buf, b.data[:be-bs]...)
		}
		if errno := ca.fsys.WriteInode(run[0].ino, start, buf); errno != kernel.OK {
			panic("ion: writeback to unknown inode")
		}
	}
	for _, k := range run {
		ca.blocks[k].dirty = false
	}
	ca.ctr.Add(upc.ChipScope, upc.IONWriteback, uint64(len(run)))
	if co != nil {
		co.Sleep(costWriteback + sim.Cycles(len(run)-1)*costWritebackNext)
	}
}

// FlushAll flushes every file with dirty blocks, in inode order. The
// barrier-quiesce path uses this (co nil) so checkpoints stay durable
// through the cache.
func (ca *Cache) FlushAll(co *sim.Coro) {
	seen := map[uint64]bool{}
	var inos []uint64
	for k, b := range ca.blocks {
		if b.dirty && !seen[k.ino] {
			seen[k.ino] = true
			inos = append(inos, k.ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		ca.Flush(co, ino)
	}
}

// DirtyBlocks reports how many blocks are currently dirty (for tests).
func (ca *Cache) DirtyBlocks() int {
	n := 0
	for _, b := range ca.blocks {
		if b.dirty {
			n++
		}
	}
	return n
}

// Clear drops every block — dirty ones included — and all size overlays.
// An ION crash loses unflushed data; that is the point of the flush
// triggers.
func (ca *Cache) Clear() {
	ca.blocks = make(map[blockKey]*block)
	ca.sizes = make(map[uint64]uint64)
	ca.head, ca.tail = nil, nil
}

// touch returns the block, filling it from the fs on a miss and evicting
// LRU (with writeback if dirty) past capacity.
func (ca *Cache) touch(co *sim.Coro, ino, idx uint64) *block {
	key := blockKey{ino: ino, idx: idx}
	if b, ok := ca.blocks[key]; ok {
		ca.ctr.Inc(upc.ChipScope, upc.IONCacheHit)
		ca.unlink(b)
		ca.pushFront(b)
		return b
	}
	ca.ctr.Inc(upc.ChipScope, upc.IONCacheMiss)
	data, errno := ca.fsys.ReadInode(ino, idx*BlockSize, BlockSize)
	if errno != kernel.OK {
		panic("ion: fill from unknown inode")
	}
	b := &block{key: key, data: append(data, make([]byte, BlockSize-len(data))...)}
	if co != nil {
		co.Sleep(costFill)
	}
	ca.blocks[key] = b
	ca.pushFront(b)
	for len(ca.blocks) > ca.cap {
		ca.evict(co)
	}
	return b
}

// evict drops the LRU block, writing it back first if dirty.
func (ca *Cache) evict(co *sim.Coro) {
	v := ca.tail
	if v == nil {
		return
	}
	if v.dirty {
		ca.writeRun(co, []blockKey{v.key}, ca.Size(v.key.ino))
	}
	ca.unlink(v)
	delete(ca.blocks, v.key)
}

// inoBlocks returns the file's cached block keys in ascending index
// order (map iteration sorted out of simulated time's way).
func (ca *Cache) inoBlocks(ino uint64) []blockKey {
	var keys []blockKey
	for k := range ca.blocks {
		if k.ino == ino {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].idx < keys[j].idx })
	return keys
}

func (ca *Cache) pushFront(b *block) {
	b.prev = nil
	b.next = ca.head
	if ca.head != nil {
		ca.head.prev = b
	}
	ca.head = b
	if ca.tail == nil {
		ca.tail = b
	}
}

func (ca *Cache) unlink(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if ca.head == b {
		ca.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if ca.tail == b {
		ca.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
