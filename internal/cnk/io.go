package cnk

import (
	"fmt"

	"bgcnk/internal/ciod"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/upc"
)

// maxPath bounds path strings copied from user space.
const maxPath = 1024

// ioCall ships one request, transparently reconnecting if CIOD answers
// ESRCH for a process it has already been told about: that means the
// daemon crashed and respawned, losing its ioproxies, so CNK re-ships
// OpProcStart and retries the original call once.
func (k *Kernel) ioCall(t *kernel.Thread, p *Proc, req *ciod.Request) *ciod.Reply {
	rep := k.cfg.IO.Call(t.Coro(), req)
	if rep.Errno == kernel.ESRCH && p.ioStarted &&
		req.Op != ciod.OpProcStart && req.Op != ciod.OpProcExit {
		k.trace(k.Eng.Now(), fmt.Sprintf("ciod forgot pid %d (daemon restart); re-shipping proc start", p.PID))
		start := k.cfg.IO.Call(t.Coro(), &ciod.Request{
			Op: ciod.OpProcStart, PID: p.PID, UID: p.UID, GID: p.GID,
		})
		if start.Errno != kernel.OK {
			return rep
		}
		rep = k.cfg.IO.Call(t.Coro(), req)
	}
	return rep
}

// shipIO marshals a file-I/O system call into a CIOD request, ships it
// over the collective network, and blocks the calling thread for the
// reply. The core is not yielded during the wait (paper VI-C: "I/O
// function shipping is made trivial by not yielding the core to another
// thread during an I/O system call") — the thread simply parks, and no
// kernel context switch happens.
func (k *Kernel) shipIO(t *kernel.Thread, p *Proc, num kernel.Sys, args []uint64) (uint64, kernel.Errno) {
	if k.cfg.IO == nil {
		return 0, kernel.ENOSYS
	}
	k.ioProcStart(t, p)
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	req := &ciod.Request{PID: p.PID, TID: t.TID(), UID: p.UID, GID: p.GID}
	loadPath := func(i int) (string, kernel.Errno) {
		return t.LoadCString(hw.VAddr(arg(i)), maxPath)
	}
	var outBuf hw.VAddr // reply data destination, if any
	var outMax uint64
	var errno kernel.Errno

	switch num {
	case kernel.SysOpen:
		req.Op = ciod.OpOpen
		req.Path, errno = loadPath(0)
		req.Flags = arg(1)
		req.Mode = uint16(arg(2))
	case kernel.SysClose:
		req.Op = ciod.OpClose
		req.FD = int32(arg(0))
	case kernel.SysRead:
		req.Op = ciod.OpRead
		req.FD = int32(arg(0))
		req.Size = arg(2)
		outBuf = hw.VAddr(arg(1))
		outMax = arg(2)
	case kernel.SysWrite:
		// write marshals the buffer contents into the message (paper
		// IV-A: "a write system call sends a message containing the file
		// descriptor number, length of the buffer, and the buffer data").
		req.Op = ciod.OpWrite
		req.FD = int32(arg(0))
		buf := make([]byte, arg(2))
		if errno = t.Load(hw.VAddr(arg(1)), buf); errno == kernel.OK {
			req.Data = buf
		}
	case kernel.SysLseek:
		req.Op = ciod.OpLseek
		req.FD = int32(arg(0))
		req.Off = int64(arg(1))
		req.Whence = int32(arg(2))
	case kernel.SysStat:
		req.Op = ciod.OpStat
		req.Path, errno = loadPath(0)
		outBuf = hw.VAddr(arg(1))
		outMax = 64
	case kernel.SysFstat:
		req.Op = ciod.OpFstat
		req.FD = int32(arg(0))
		outBuf = hw.VAddr(arg(1))
		outMax = 64
	case kernel.SysUnlink:
		req.Op = ciod.OpUnlink
		req.Path, errno = loadPath(0)
	case kernel.SysRename:
		req.Op = ciod.OpRename
		req.Path, errno = loadPath(0)
		if errno == kernel.OK {
			req.Path2, errno = loadPath(1)
		}
	case kernel.SysMkdir:
		req.Op = ciod.OpMkdir
		req.Path, errno = loadPath(0)
		req.Mode = uint16(arg(1))
	case kernel.SysRmdir:
		req.Op = ciod.OpRmdir
		req.Path, errno = loadPath(0)
	case kernel.SysDup:
		req.Op = ciod.OpDup
		req.FD = int32(arg(0))
	case kernel.SysFsync:
		// Shipped like any other file call; with the ION cache armed the
		// daemon writes the descriptor's dirty blocks back before replying.
		req.Op = ciod.OpFsync
		req.FD = int32(arg(0))
	case kernel.SysGetcwd:
		req.Op = ciod.OpGetcwd
		outBuf = hw.VAddr(arg(0))
		outMax = arg(1)
	case kernel.SysChdir:
		req.Op = ciod.OpChdir
		req.Path, errno = loadPath(0)
	case kernel.SysTruncate:
		req.Op = ciod.OpTruncate
		req.Path, errno = loadPath(0)
		req.Size = arg(1)
	case kernel.SysReaddir:
		req.Op = ciod.OpReaddir
		req.Path, errno = loadPath(0)
		outBuf = hw.VAddr(arg(1))
		outMax = arg(2)
	default:
		return 0, kernel.ENOSYS
	}
	if errno != kernel.OK {
		return 0, errno
	}

	k.Chip.UPC.Trace.Emit(upc.EvShipCall, t.CoreID(), k.Eng.Now(), uint64(num))
	rep := k.ioCall(t, p, req)
	if rep.Errno != kernel.OK {
		return rep.Ret, rep.Errno
	}

	// Demarshal results back into user memory.
	switch num {
	case kernel.SysRead:
		if uint64(len(rep.Data)) > outMax {
			rep.Data = rep.Data[:outMax]
		}
		if errno := t.Store(outBuf, rep.Data); errno != kernel.OK {
			return 0, errno
		}
		return uint64(len(rep.Data)), kernel.OK
	case kernel.SysStat, kernel.SysFstat:
		if outBuf != 0 {
			if errno := t.Store(outBuf, rep.Data); errno != kernel.OK {
				return 0, errno
			}
		}
		return rep.Ret, kernel.OK // the file size, as on the FWK
	case kernel.SysGetcwd:
		s := rep.Str
		if uint64(len(s)+1) > outMax {
			return 0, kernel.ENAMETOOLONG
		}
		if errno := t.StoreCString(outBuf, s); errno != kernel.OK {
			return 0, errno
		}
		return uint64(len(s)), kernel.OK
	case kernel.SysReaddir:
		names, err := ciod.DecodeNames(rep.Data)
		if err != nil {
			return 0, kernel.EIO
		}
		var out []byte
		for _, n := range names {
			out = append(out, n...)
			out = append(out, 0)
		}
		if uint64(len(out)) > outMax {
			return 0, kernel.EOVERFLOW
		}
		if len(out) > 0 {
			if errno := t.Store(outBuf, out); errno != kernel.OK {
				return 0, errno
			}
		}
		return uint64(len(names)), kernel.OK
	}
	return rep.Ret, kernel.OK
}

// mmapCopyIn reads a whole file through the function-ship path into the
// fresh mapping (no demand paging: the OS noise is contained in the mmap
// call itself — paper IV-B2).
func (k *Kernel) mmapCopyIn(t *kernel.Thread, p *Proc, va hw.VAddr, length uint64, fd int32, off int64) kernel.Errno {
	if k.cfg.IO == nil {
		return kernel.ENOSYS
	}
	// Seek then read the full range via the proxy, chunked.
	rep := k.ioCall(t, p, &ciod.Request{
		Op: ciod.OpLseek, PID: p.PID, TID: t.TID(), FD: fd, Off: off, Whence: int32(kernel.SeekSet),
	})
	if rep.Errno != kernel.OK {
		return rep.Errno
	}
	var done uint64
	for done < length {
		chunk := length - done
		if chunk > 64<<10 {
			chunk = 64 << 10
		}
		rep := k.ioCall(t, p, &ciod.Request{
			Op: ciod.OpRead, PID: p.PID, TID: t.TID(), FD: fd, Size: chunk,
		})
		if rep.Errno != kernel.OK {
			return rep.Errno
		}
		if len(rep.Data) == 0 {
			break // EOF: rest of mapping stays zero
		}
		if errno := t.Store(va+hw.VAddr(done), rep.Data); errno != kernel.OK {
			return errno
		}
		done += uint64(len(rep.Data))
	}
	return kernel.OK
}
