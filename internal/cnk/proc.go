package cnk

import (
	"fmt"

	"bgcnk/internal/ciod"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/mem"
	"bgcnk/internal/sim"
)

// Proc is one CNK process: a rank of the job on this node.
type Proc struct {
	PID  uint32
	Rank int // process slot on the node
	UID  uint32
	GID  uint32

	Layout *mem.ProcLayout
	Mmap   *mem.MmapTracker
	Brk    *mem.Brk
	Sig    kernel.SignalTable

	Threads map[uint32]*kernel.Thread
	Main    *kernel.Thread
	cores   []*coreSched // cores assigned to this process

	// lastMprotect is CNK's guard-page heuristic state: NPTL mprotects
	// the guard range just before clone, and CNK assumes the last
	// mprotect applies to the new thread (paper Section IV-C).
	lastMprotect struct {
		va    hw.VAddr
		size  uint64
		valid bool
	}

	// mainGuard tracks the main thread's guard range at the heap
	// boundary so it can be repositioned when the heap grows.
	mainGuard struct {
		size uint64
		set  bool
	}

	// persistMaps are persistent regions this process opened.
	persistMaps []*mem.PersistRegion

	// remoteCores are cores temporarily lent to this process by the
	// extended thread-affinity model (paper Section VIII).
	remoteCores []*coreSched

	liveThreads int
	exitCode    int
	done        bool
	ioStarted   bool
}

// Done reports whether every thread of the process has exited.
func (p *Proc) Done() bool { return p.done }

// ExitCode returns the process exit status (main thread's).
func (p *Proc) ExitCode() int { return p.exitCode }

// contigFrom reports how many bytes are mapped contiguously from va.
func (p *Proc) contigFrom(va hw.VAddr) uint64 {
	for _, r := range p.Layout.Regions() {
		if r.Contains(va) {
			return r.Covered - uint64(va-r.VBase)
		}
	}
	return 0
}

// persistEntry returns a pinned TLB entry covering va if it falls in one
// of the process's opened persistent regions.
func (p *Proc) persistEntry(va hw.VAddr) (hw.TLBEntry, bool) {
	for _, r := range p.persistMaps {
		if va >= r.VA && uint64(va-r.VA) < r.Size {
			return hw.TLBEntry{
				PID: p.PID, VBase: r.VA, PBase: r.PA,
				Size: persistPageFor(r.Size), Perms: hw.PermRW,
			}, true
		}
	}
	return hw.TLBEntry{}, false
}

func persistPageFor(size uint64) hw.PageSize {
	for i := len(hw.PageSizes) - 1; i >= 0; i-- {
		if uint64(hw.PageSizes[i]) <= size {
			return hw.PageSizes[i]
		}
	}
	return hw.Page4K
}

func (p *Proc) persistRange(va hw.VAddr, size uint64) ([]kernel.PhysRange, bool) {
	for _, r := range p.persistMaps {
		if va >= r.VA && uint64(va-r.VA)+size <= r.Size {
			return []kernel.PhysRange{{PA: r.PA + hw.PAddr(va-r.VA), Len: size}}, true
		}
	}
	return nil, false
}

// JobSpec describes a job launch on one node.
type JobSpec struct {
	Params    kernel.JobParams
	TextBytes uint64
	DataBytes uint64
	UID, GID  uint32
	// Main runs as each process's initial thread.
	Main func(ctx kernel.Context, rank int)
}

// Job tracks a launched job.
type Job struct {
	Procs  []*Proc
	Layout *mem.NodeLayout
}

// Done reports whether every process has exited.
func (j *Job) Done() bool {
	for _, p := range j.Procs {
		if !p.done {
			return false
		}
	}
	return true
}

// Launch partitions memory, creates the job's processes with their static
// TLB maps installed, starts ioproxies, and schedules the main threads.
// The engine must then be run to execute the job.
func (k *Kernel) Launch(spec JobSpec) (*Job, error) {
	if !k.booted {
		return nil, fmt.Errorf("cnk: launch before boot")
	}
	if spec.Params.ProcsPerNode == 0 {
		spec.Params.ProcsPerNode = 1
	}
	if spec.Params.GuardBytes == 0 {
		spec.Params.GuardBytes = 4096
	}
	if spec.TextBytes == 0 {
		spec.TextBytes = 1 << 20
	}
	nl, err := mem.Partition(mem.PartitionConfig{
		DDRBytes:  k.Chip.Mem.Size() - (64 << 20), // top window reserved for persistent memory
		Procs:     spec.Params.ProcsPerNode,
		TextBytes: spec.TextBytes,
		DataBytes: spec.DataBytes,
		ShmBytes:  spec.Params.ShmBytes,
	})
	if err != nil {
		return nil, err
	}
	job := &Job{Layout: nl}
	coresPerProc := len(k.cores) / spec.Params.ProcsPerNode
	for i := 0; i < spec.Params.ProcsPerNode; i++ {
		k.nextPID++
		p := &Proc{
			PID: k.nextPID, Rank: i, UID: spec.UID, GID: spec.GID,
			Layout:  &nl.Procs[i],
			Threads: make(map[uint32]*kernel.Thread),
		}
		// The mmap arena sits in the upper half of heap+stack, between
		// brk (growing up) and the stacks (growing down from the top).
		hs := &p.Layout.HeapStack
		arenaLo := hs.VBase + hw.VAddr(hs.Covered/2)
		stackReserve := hw.VAddr(hs.Covered / 8)
		p.Mmap = mem.NewMmapTracker(arenaLo, p.Layout.StackTop-stackReserve, 4096)
		p.Brk = mem.NewBrk(p.Layout.HeapBase, arenaLo)
		for c := 0; c < coresPerProc; c++ {
			p.cores = append(p.cores, k.cores[i*coresPerProc+c])
		}
		// Install the static map on every core assigned to the process.
		for _, cs := range p.cores {
			for _, e := range p.Layout.TLBEntries(p.PID) {
				cs.core.TLB.InsertPinned(e)
			}
		}
		k.procs[p.PID] = p
		job.Procs = append(job.Procs, p)
		k.trace(k.Eng.Now(), fmt.Sprintf("launch pid=%d rank=%d mode=%s", p.PID, i, spec.Params.Mode()))
		k.startMain(p, spec)
	}
	return job, nil
}

// startMain creates the process's initial thread on its first core.
func (k *Kernel) startMain(p *Proc, spec JobSpec) {
	k.nextTID++
	t := kernel.NewThread(k, k.nextTID, p.PID)
	cs := p.cores[0]
	p.Threads[t.TID()] = t
	p.Main = t
	p.liveThreads++
	// The main thread's guard page sits at the heap boundary (paper Fig
	// 4); reposition on heap growth is handled in the brk syscall.
	guard := spec.Params.GuardBytes
	p.mainGuard.size = guard
	p.mainGuard.set = true
	cs.core.DAC[0] = hw.DACRange{
		Enabled: true, PID: p.PID,
		Lo: p.Brk.Cur, Hi: p.Brk.Cur + hw.VAddr(guard),
	}
	// Position brk above the guard so ordinary allocations don't trip it.
	p.Brk.Base += hw.VAddr(guard)
	p.Brk.Cur = p.Brk.Base

	cs.place(t)
	k.Eng.Go(fmt.Sprintf("pid%d.main", p.PID), func(c *sim.Coro) {
		defer k.recoverExit(t)
		t.Bind(c, cs.core)
		if c.Now() < k.BootedAt {
			c.Sleep(k.BootedAt - c.Now()) // jobs start once the kernel is up
		}
		cs.acquire(t)
		k.ioProcStart(t, p)
		spec.Main(t, p.Rank)
		k.exitThread(t, 0)
	})
}

// recoverExit absorbs the threadExit unwind panic.
func (k *Kernel) recoverExit(t *kernel.Thread) {
	if r := recover(); r != nil {
		if _, ok := r.(threadExit); ok {
			return
		}
		panic(r)
	}
	// Normal return without exitThread: treat as exit(0) bookkeeping
	// (exitThread panics, so reaching here means it already ran).
}

// Clone implements kernel.OS: thread creation for NPTL. CNK validates the
// flags against the static set glibc uses and supports nothing else
// (paper Section IV-B1); fork-style clones are rejected.
func (k *Kernel) Clone(t *kernel.Thread, args kernel.CloneArgs) (uint32, kernel.Errno) {
	if args.Flags != kernel.NPTLCloneFlags {
		return 0, kernel.EINVAL
	}
	p := k.procs[t.PID()]
	if p == nil {
		return 0, kernel.ESRCH
	}
	cs := k.pickCore(p)
	if cs == nil {
		return 0, kernel.EAGAIN // thread budget exhausted (paper VII-B: no overcommit)
	}
	k.nextTID++
	nt := kernel.NewThread(k, k.nextTID, p.PID)
	nt.ClearTID = args.ChildTID
	p.Threads[nt.TID()] = nt
	p.liveThreads++
	if args.ParentTID != 0 {
		t.StoreU32(args.ParentTID, nt.TID())
	}
	// Guard-page heuristic: the last mprotect before clone covers the new
	// thread's stack guard; arm a DAC range on the child's core.
	if p.lastMprotect.valid {
		cs.core.DAC[1] = hw.DACRange{
			Enabled: true, PID: p.PID,
			Lo: p.lastMprotect.va, Hi: p.lastMprotect.va + hw.VAddr(p.lastMprotect.size),
		}
		p.lastMprotect.valid = false
	}
	fn := args.Fn
	cs.place(nt)
	k.Eng.Go(fmt.Sprintf("pid%d.tid%d", p.PID, nt.TID()), func(c *sim.Coro) {
		defer k.recoverExit(nt)
		nt.Bind(c, cs.core)
		cs.acquire(nt)
		fn(nt)
		k.exitThread(nt, 0)
	})
	return nt.TID(), kernel.OK
}

// pickCore chooses the new thread's core: fixed affinity, preferring an
// idle core of the process, never exceeding the per-core budget.
func (k *Kernel) pickCore(p *Proc) *coreSched {
	var best *coreSched
	pool := append(append([]*coreSched{}, p.cores...), p.remoteCores...)
	for _, cs := range pool {
		if cs.load() >= k.cfg.MaxThreadsPerCore {
			continue
		}
		if best == nil || cs.load() < best.load() {
			best = cs
		}
	}
	return best
}

// LendCore implements the extended thread-affinity model of paper Section
// VIII: a core of process from is designated to also execute pthreads of
// process to ("a given core [may] alternate between executing a pthread
// from its assigned process and executing a pthread from a single
// designated remote process"). Only one remote process per core.
func (k *Kernel) LendCore(coreID int, from, to *Proc) error {
	if coreID < 0 || coreID >= len(k.cores) {
		return fmt.Errorf("cnk: no core %d", coreID)
	}
	cs := k.cores[coreID]
	owned := false
	for _, c := range from.cores {
		if c == cs {
			owned = true
		}
	}
	if !owned {
		return fmt.Errorf("cnk: core %d is not assigned to pid %d", coreID, from.PID)
	}
	for _, c := range to.remoteCores {
		if c == cs {
			return fmt.Errorf("cnk: core %d already lent to pid %d", coreID, to.PID)
		}
	}
	if cs.lentTo != 0 {
		return fmt.Errorf("cnk: core %d already lent to pid %d", coreID, cs.lentTo)
	}
	cs.lentTo = to.PID
	to.remoteCores = append(to.remoteCores, cs)
	// The remote process's static map must be visible on the lent core.
	for _, e := range to.Layout.TLBEntries(to.PID) {
		cs.core.TLB.InsertPinned(e)
	}
	k.trace(k.Eng.Now(), fmt.Sprintf("core %d lent from pid %d to pid %d", coreID, from.PID, to.PID))
	return nil
}

// finishProc tears the process down: ioproxy exit, TLB invalidation on its
// cores, accounting. last is the thread performing the teardown (the final
// one to exit).
func (k *Kernel) finishProc(p *Proc, code int, last *kernel.Thread) {
	p.done = true
	p.exitCode = code
	if p.ioStarted && k.cfg.IO != nil {
		k.cfg.IO.Call(last.Coro(), &ciod.Request{Op: ciod.OpProcExit, PID: p.PID})
	}
	for _, cs := range p.cores {
		cs.core.TLB.InvalidateASID(p.PID)
		cs.core.DAC[0].Enabled = false
		cs.core.DAC[1].Enabled = false
	}
	k.trace(k.Eng.Now(), fmt.Sprintf("pid %d exited code %d", p.PID, code))
}

// ioProcStart registers the process's ioproxy with CIOD on first touch.
func (k *Kernel) ioProcStart(t *kernel.Thread, p *Proc) {
	if p.ioStarted || k.cfg.IO == nil {
		return
	}
	p.ioStarted = true
	k.cfg.IO.Call(t.Coro(), &ciod.Request{
		Op: ciod.OpProcStart, PID: p.PID, UID: p.UID, GID: p.GID,
	})
}

// Proc returns the process with the given pid.
func (k *Kernel) Proc(pid uint32) *Proc { return k.procs[pid] }
