package cnk

import (
	"fmt"

	"bgcnk/internal/barrier"
	"bgcnk/internal/sim"
)

// resetMagic is the Boot SRAM rendezvous stamp written by
// PrepareReproducibleReset and checked on restart.
const resetMagic = "CNK-REPRO-RESET"

// ResetError reports a reproducible-restart protocol violation: the chip
// was not taken through the Section III reset sequence before the restart
// was attempted.
type ResetError struct {
	Chip   int
	Reason string
}

func (e *ResetError) Error() string {
	return fmt.Sprintf("cnk: chip %d cannot restart reproducibly: %s", e.Chip, e.Reason)
}

// PrepareReproducibleReset executes the paper's Section III protocol:
// "CNK prepares for full reset by performing a barrier over all cores,
// rendezvousing all cores in the Boot SRAM, flushing all levels of cache
// to DDR, placing the DDR in self-refresh, and finally toggling reset to
// all functional units." After this returns, the chip has been reset with
// DDR contents intact; call RestartReproducible (typically via a fresh
// Kernel on the same chip) to come back up.
//
// The coroutine c stands in for the core executing the kernel's reset
// low-core.
func (k *Kernel) PrepareReproducibleReset(c *sim.Coro) {
	k.trace(c.Now(), "reset: barrier over all cores")
	c.Sleep(sim.Cycles(200 * len(k.Chip.Cores))) // core rendezvous
	k.trace(c.Now(), "reset: cores rendezvoused in Boot SRAM")
	copy(k.Chip.BootSRAM[:], resetMagic)
	k.Chip.Cache.FlushAll()
	c.Sleep(3000) // cache flush to DDR
	k.trace(c.Now(), "reset: caches flushed to DDR")
	k.Chip.Mem.EnterSelfRefresh()
	k.trace(c.Now(), "reset: DDR in self-refresh")
	k.Chip.Reset()
	k.Chip.Cache.ResetRefreshPhase(c.Now())
	k.trace(c.Now(), "reset: toggled reset to all functional units")
	k.booted = false
}

// RestartReproducible is the boot path after a reproducible reset: "Upon
// boot, CNK checks if it has been restarted in reproducible mode, and if
// so, rather than interacting with the service node, initializes all
// functional units on the chip and takes the DDR out of self-refresh."
func (k *Kernel) RestartReproducible() error {
	if string(k.Chip.BootSRAM[:len(resetMagic)]) != resetMagic {
		return &ResetError{Chip: k.Chip.ID, Reason: "Boot SRAM magic missing (reset protocol skipped)"}
	}
	if !k.Chip.Mem.InSelfRefresh() {
		return &ResetError{Chip: k.Chip.ID, Reason: "DDR not in self-refresh; memory contents did not survive the reset"}
	}
	k.cfg.Reproducible = true
	k.cfg.TraceSyscalls = true
	if err := k.Boot(); err != nil {
		return err
	}
	k.Chip.Mem.ExitSelfRefresh()
	k.trace(k.Eng.Now(), "restart: DDR out of self-refresh, reproducible run")
	return nil
}

// CoordinatedReset performs the multichip variant over the global barrier
// network: all participating kernels rendezvous so that every chip resets
// on the same cycle relative to the others, and the barrier arbiters are
// left in a consistent state (paper Section III: this allowed "one chip to
// initiate a packet transfer on exactly the same cycle relative to the
// other chip"). id is this kernel's participant slot.
func (k *Kernel) CoordinatedReset(c *sim.Coro, bnet *barrier.Network, id int) {
	k.trace(c.Now(), "reset: entering global barrier for coordinated reboot")
	bnet.Enter(c, id)
	// Leave the barrier network active and configured but with clean
	// arbiter state; participant 0 performs the (idempotent) cleanup.
	if id == 0 {
		bnet.ResetArbiters()
	}
	k.PrepareReproducibleReset(c)
}
