package cnk

import (
	"sort"

	"bgcnk/internal/ckpt"
	"bgcnk/internal/hw"
	"bgcnk/internal/sim"
)

// Checkpoint cost model (cycles). CNK's static map is what makes the
// snapshot cheap (paper V-B): the kernel knows every extent of the
// process a priori — no page-table walk, no dirty tracking, no page
// cache to flush, no daemons to park — so a checkpoint is a fixed setup
// plus a single streaming pass over a few large contiguous extents.
const (
	ckptSetupCost  = sim.Cycles(2_000)
	ckptRegionCost = sim.Cycles(150)
	ckptBytesPer   = 128 // bytes captured per cycle (streaming DMA rate)
	// restore streams the same bytes back plus TLB reinstate work.
	restoreBytesPer = 96

	// ckptHeapFloor is the minimum heap extent captured even when brk
	// never moved: the model's applications store into the low heap
	// directly, so the snapshot always covers the first chunk.
	ckptHeapFloor = uint64(64 << 10)
	// ckptStackSlice is the live stack extent captured below StackTop.
	ckptStackSlice = uint64(64 << 10)
)

// CheckpointRegions returns the extents a checkpoint of pid captures,
// sorted by virtual base, plus the total byte count. Because the map is
// static the answer is exact: text and data at their requested sizes, the
// heap from its base to the brk high-water mark (floored — see
// ckptHeapFloor), a slice of live stack, and shared memory if present.
func (k *Kernel) CheckpointRegions(pid uint32) ([]ckpt.Region, uint64) {
	p := k.procs[pid]
	if p == nil || p.Layout == nil {
		return nil, 0
	}
	l := p.Layout
	var out []ckpt.Region
	add := func(name string, vbase hw.VAddr, size uint64) {
		if size == 0 {
			return
		}
		out = append(out, ckpt.Region{
			VBase:  uint64(vbase),
			Size:   size,
			Digest: ckpt.RegionDigest(name, uint64(vbase), size),
		})
	}
	add(l.Text.Name, l.Text.VBase, l.Text.Req)
	add(l.Data.Name, l.Data.VBase, l.Data.Req)

	heapEnd := uint64(p.Brk.Cur)
	if floor := uint64(l.HeapBase) + ckptHeapFloor; heapEnd < floor {
		heapEnd = floor
	}
	stackBase := uint64(l.StackTop) - ckptStackSlice
	if heapEnd > stackBase {
		heapEnd = stackBase // heap ran into the stack slice; merge boundary
	}
	add("heap", l.HeapBase, heapEnd-uint64(l.HeapBase))
	add("stack", hw.VAddr(stackBase), ckptStackSlice)
	if l.Shm != nil {
		add(l.Shm.Name, l.Shm.VBase, l.Shm.Req)
	}
	total := uint64(0)
	for _, r := range out {
		total += r.Size
	}
	return out, total
}

// CheckpointCost models taking the snapshot at a quiesce point: fixed
// setup, a descriptor per region, one streaming pass over the bytes.
func (k *Kernel) CheckpointCost(pid uint32) sim.Cycles {
	regions, bytes := k.CheckpointRegions(pid)
	return ckptSetupCost +
		ckptRegionCost*sim.Cycles(len(regions)) +
		sim.Cycles(bytes/ckptBytesPer)
}

// RestoreCost models streaming the image back over the (already
// installed) static map after a restart boot.
func (k *Kernel) RestoreCost(pid uint32) sim.Cycles {
	regions, bytes := k.CheckpointRegions(pid)
	return ckptSetupCost +
		ckptRegionCost*sim.Cycles(len(regions)) +
		sim.Cycles(bytes/restoreBytesPer)
}

// ThreadRegs returns synthesized per-thread register state for a
// checkpoint, sorted by TID: PC stands in for the resume epoch (the
// caller stamps it) and SP anchors at the static stack top.
func (p *Proc) ThreadRegs(epoch uint32) []ckpt.RegState {
	tids := make([]uint32, 0, len(p.Threads))
	for tid := range p.Threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	out := make([]ckpt.RegState, 0, len(tids))
	for _, tid := range tids {
		out = append(out, ckpt.RegState{TID: tid, PC: uint64(epoch), SP: uint64(p.Layout.StackTop)})
	}
	return out
}
