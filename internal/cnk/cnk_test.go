package cnk

import (
	"errors"
	"testing"

	"bgcnk/internal/ciod"
	"bgcnk/internal/collective"
	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
)

// node builds a booted single-node CNK with a loopback I/O transport.
func node(t *testing.T, cfg Config) (*sim.Engine, *Kernel, *fs.FS) {
	t.Helper()
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	filesystem := fs.New()
	if cfg.IO == nil {
		cfg.IO = ciod.NewLoopback(eng, filesystem)
	}
	k := New(eng, chip, cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return eng, k, filesystem
}

// run launches the job and drives the engine until idle.
func run(t *testing.T, eng *sim.Engine, k *Kernel, spec JobSpec) *Job {
	t.Helper()
	job, err := k.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("job did not finish (deadlock?)")
	}
	return job
}

func TestBootFastAndDeterministic(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, hw.NewChip(hw.ChipConfig{}), Config{Reproducible: true})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	if k.BootInstr == 0 || k.BootInstr > 500_000 {
		t.Fatalf("CNK boot = %d instructions; must be tiny", k.BootInstr)
	}
	if err := k.Boot(); err == nil {
		t.Fatal("double boot must fail")
	}
}

func TestBootWithBrokenUnits(t *testing.T) {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{})
	chip.SetUnitEnabled(hw.UnitTorus, false)
	chip.SetUnitEnabled(hw.UnitFPU, false)
	k := New(eng, chip, Config{})
	if err := k.Boot(); err != nil {
		t.Fatalf("CNK must boot on partial hardware: %v", err)
	}
	if len(k.UnitsDown) != 2 {
		t.Fatalf("units down = %v", k.UnitsDown)
	}
	// DDR is mandatory.
	chip2 := hw.NewChip(hw.ChipConfig{})
	chip2.SetUnitEnabled(hw.UnitDDR, false)
	if err := New(eng, chip2, Config{}).Boot(); err == nil {
		t.Fatal("boot must fail without DDR")
	}
}

func TestJobRunsAndExits(t *testing.T) {
	eng, k, _ := node(t, Config{})
	ran := false
	job := run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			ctx.Compute(10_000)
			ran = true
		},
	})
	if !ran || job.Procs[0].ExitCode() != 0 {
		t.Fatal("main did not run cleanly")
	}
}

func TestVNModeFourProcesses(t *testing.T) {
	eng, k, _ := node(t, Config{})
	ranks := map[int]uint32{}
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 4},
		Main: func(ctx kernel.Context, rank int) {
			ranks[rank] = ctx.PID()
			ctx.Compute(1000)
		},
	})
	if len(ranks) != 4 {
		t.Fatalf("ranks ran: %v", ranks)
	}
	seen := map[uint32]bool{}
	for _, pid := range ranks {
		if seen[pid] {
			t.Fatal("two ranks shared a PID")
		}
		seen[pid] = true
	}
}

func TestComputeAdvancesExactCycles(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var start, end sim.Cycles
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			start = ctx.Now()
			ctx.Compute(123_456)
			end = ctx.Now()
		},
	})
	if end-start != 123_456 {
		t.Fatalf("compute took %d cycles, want exactly 123456 (CNK adds no noise)", end-start)
	}
}

func TestNoTLBMissesUnderStaticMap(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			// Touch memory all over the heap.
			base := p.Layout.HeapBase
			for off := uint64(0); off < 32<<20; off += 1 << 20 {
				if errno := ctx.Touch(base+hw.VAddr(off), 4096, true); errno != kernel.OK {
					t.Errorf("touch at +%d: %v", off, errno)
				}
			}
		},
	})
	for _, c := range k.Chip.Cores {
		if c.TLB.Misses != 0 {
			t.Fatalf("core %d took %d TLB misses under the static map", c.ID, c.TLB.Misses)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			va := p.Layout.HeapBase + 4096
			if errno := ctx.Store(va, []byte("store me")); errno != kernel.OK {
				t.Error(errno)
			}
			buf := make([]byte, 8)
			if errno := ctx.Load(va, buf); errno != kernel.OK || string(buf) != "store me" {
				t.Errorf("load: %v %q", errno, buf)
			}
			if errno := ctx.Touch(0x10, 4, false); errno != kernel.EFAULT {
				t.Errorf("unmapped access: %v, want EFAULT", errno)
			}
		},
	})
}

func TestBrkGrowsAndGuardRepositions(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var ipisBefore, ipisAfter uint64
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			ipisBefore = k.Chip.Cores[0].IPIs
			old, errno := ctx.Syscall(kernel.SysBrk, 0)
			if errno != kernel.OK {
				t.Error(errno)
			}
			nw, errno := ctx.Syscall(kernel.SysBrk, old+1<<20)
			if errno != kernel.OK || nw != old+1<<20 {
				t.Errorf("brk grow: %v %d", errno, nw)
			}
			// Touch the newly allocated storage: must NOT fault (guard
			// was repositioned above the new break).
			if errno := ctx.Touch(hw.VAddr(old), 4096, true); errno != kernel.OK {
				t.Errorf("legit store hit guard: %v", errno)
			}
			ctx.Compute(1000) // let the IPI be serviced
			ipisAfter = k.Chip.Cores[0].IPIs
		},
	})
	if ipisAfter == ipisBefore {
		t.Fatal("heap growth must IPI the main thread to reposition the guard")
	}
}

func TestGuardPageCatchesStackOverflow(t *testing.T) {
	eng, k, _ := node(t, Config{})
	caught := false
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			ctx.RegisterSignal(kernel.SIGSEGV, func(c kernel.Context, info kernel.SigInfo) {
				caught = true
			})
			// The guard sits just below the original break; storing into
			// it models the stack descending into the heap (paper Fig 4).
			p := k.Proc(ctx.PID())
			guardLo := p.Brk.Base - hw.VAddr(4096)
			ctx.Store(guardLo+8, []byte{1})
		},
	})
	if !caught {
		t.Fatal("guard store did not raise SIGSEGV")
	}
}

func TestMmapAnonymousAndFree(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			va, errno := ctx.Syscall(kernel.SysMmap, 0, 1<<20, kernel.ProtRead|kernel.ProtWrite, kernel.MapAnonymous|kernel.MapPrivate, ^uint64(0), 0)
			if errno != kernel.OK {
				t.Fatalf("mmap: %v", errno)
			}
			if errno := ctx.Store(hw.VAddr(va), []byte("mapped")); errno != kernel.OK {
				t.Errorf("store to mapping: %v", errno)
			}
			if _, errno := ctx.Syscall(kernel.SysMunmap, va, 1<<20); errno != kernel.OK {
				t.Errorf("munmap: %v", errno)
			}
			// Address is reusable.
			va2, errno := ctx.Syscall(kernel.SysMmap, 0, 1<<20, kernel.ProtRead|kernel.ProtWrite, kernel.MapAnonymous, ^uint64(0), 0)
			if errno != kernel.OK || va2 != va {
				t.Errorf("remap: %v %#x vs %#x", errno, va2, va)
			}
		},
	})
}

func TestShmSharedAcrossProcs(t *testing.T) {
	eng, k, _ := node(t, Config{})
	got := make(chan string, 1)
	_ = got
	var readBack string
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 2, ShmBytes: 1 << 20},
		Main: func(ctx kernel.Context, rank int) {
			base, errno := ctx.Syscall(kernel.SysShmGet, 0)
			if errno != kernel.OK {
				t.Errorf("shmget: %v", errno)
				return
			}
			if rank == 0 {
				ctx.Store(hw.VAddr(base), []byte("cross-proc"))
			} else {
				ctx.Compute(2_000_000) // let rank 0 write first
				buf := make([]byte, 10)
				ctx.Load(hw.VAddr(base), buf)
				readBack = string(buf)
			}
		},
	})
	if readBack != "cross-proc" {
		t.Fatalf("shm read %q", readBack)
	}
}

func TestCloneValidatesNPTLFlags(t *testing.T) {
	eng, k, _ := node(t, Config{MaxThreadsPerCore: 3})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			_, errno := ctx.Clone(kernel.CloneArgs{Flags: kernel.CloneVM, Fn: func(kernel.Context) {}})
			if errno != kernel.EINVAL {
				t.Errorf("nonstandard clone flags: %v, want EINVAL", errno)
			}
		},
	})
}

func TestCloneRunsThreadOnAnotherCore(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var mainCore, childCore int
	childRan := make(chan struct{})
	_ = childRan
	done := uint32(0)
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			mainCore = ctx.CoreID()
			tid, errno := ctx.Clone(kernel.CloneArgs{
				Flags: kernel.NPTLCloneFlags,
				Fn: func(c kernel.Context) {
					childCore = c.CoreID()
					c.Compute(5000)
					done = 1
				},
			})
			if errno != kernel.OK || tid == 0 {
				t.Errorf("clone: %v tid=%d", errno, tid)
			}
			ctx.Compute(100_000) // overlap with child
		},
	})
	if done != 1 {
		t.Fatal("child thread never ran")
	}
	if childCore == mainCore {
		t.Fatalf("child placed on main's core %d despite idle cores (strict affinity prefers empty cores)", childCore)
	}
}

func TestThreadBudgetEnforced(t *testing.T) {
	eng, k, _ := node(t, Config{MaxThreadsPerCore: 1})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			// 3 more threads fit (4 cores x 1); the 4th clone must fail —
			// CNK does not overcommit threads to cores (paper VII-B).
			for i := 0; i < 3; i++ {
				if _, errno := ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags, Fn: func(c kernel.Context) { c.Compute(1000) }}); errno != kernel.OK {
					t.Errorf("clone %d: %v", i, errno)
				}
			}
			if _, errno := ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags, Fn: func(c kernel.Context) {}}); errno != kernel.EAGAIN {
				t.Errorf("overcommitted clone: %v, want EAGAIN", errno)
			}
		},
	})
}

func TestFutexWaitWake(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var waiterWoke, order bool
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			futexVA := p.Layout.HeapBase + 8192
			ctx.StoreU32(futexVA, 0)
			ctx.Clone(kernel.CloneArgs{
				Flags: kernel.NPTLCloneFlags,
				Fn: func(c kernel.Context) {
					// Waits while *futex == 0.
					_, errno := c.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWait, 0, 0)
					if errno != kernel.OK {
						t.Errorf("futex wait: %v", errno)
					}
					v, _ := c.LoadU32(futexVA)
					waiterWoke = true
					order = v == 1
				},
			})
			ctx.Compute(50_000)
			ctx.StoreU32(futexVA, 1)
			ctx.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWake, 1)
			ctx.Compute(10_000)
		},
	})
	if !waiterWoke || !order {
		t.Fatalf("futex handoff broken: woke=%v sawStore=%v", waiterWoke, order)
	}
}

func TestFutexValMismatchReturnsEAGAIN(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			futexVA := p.Layout.HeapBase + 8192
			ctx.StoreU32(futexVA, 7)
			if _, errno := ctx.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWait, 0, 0); errno != kernel.EAGAIN {
				t.Errorf("futex stale wait: %v, want EAGAIN", errno)
			}
		},
	})
}

func TestFutexTimeout(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var errno kernel.Errno
	var took sim.Cycles
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			futexVA := p.Layout.HeapBase + 8192
			ctx.StoreU32(futexVA, 0)
			start := ctx.Now()
			_, errno = ctx.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWait, 0, 100_000)
			took = ctx.Now() - start
		},
	})
	if errno != kernel.ETIMEDOUT {
		t.Fatalf("errno = %v, want ETIMEDOUT", errno)
	}
	if took < 100_000 {
		t.Fatalf("woke after %d cycles, before the timeout", took)
	}
}

func TestThreadsShareCoreViaFutex(t *testing.T) {
	// Two threads on one core (MaxThreadsPerCore=3, 1 proc, force onto
	// core usage by saturating): the scheduler's only real decision.
	eng, k, _ := node(t, Config{MaxThreadsPerCore: 3})
	counts := 0
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 4}, // 1 core per proc
		Main: func(ctx kernel.Context, rank int) {
			if rank != 0 {
				return
			}
			p := k.Proc(ctx.PID())
			futexVA := p.Layout.HeapBase + 8192
			ctx.StoreU32(futexVA, 0)
			ctx.Clone(kernel.CloneArgs{
				Flags: kernel.NPTLCloneFlags,
				Fn: func(c kernel.Context) {
					// Same core as main (only one core in VN mode).
					if c.CoreID() != ctx.CoreID() {
						t.Error("thread escaped its process's core")
					}
					c.StoreU32(futexVA, 1)
					c.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWake, 1)
					counts++
				},
			})
			// Wait for the child; we share the core, so this futex wait
			// is what lets the child run at all.
			for {
				v, _ := ctx.LoadU32(futexVA)
				if v == 1 {
					break
				}
				ctx.Syscall(kernel.SysFutex, uint64(futexVA), kernel.FutexWait, 0, 0)
			}
			counts++
		},
	})
	if counts != 2 {
		t.Fatalf("counts = %d", counts)
	}
}

func TestSetTidAddressAndGettid(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			tid, _ := ctx.Syscall(kernel.SysGettid, 0)
			p := k.Proc(ctx.PID())
			ret, errno := ctx.Syscall(kernel.SysSetTidAddress, uint64(p.Layout.HeapBase+8192))
			if errno != kernel.OK || ret != tid {
				t.Errorf("set_tid_address: %v %d vs %d", errno, ret, tid)
			}
		},
	})
}

func TestUnameReportsNPTLVersion(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var got string
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			p := k.Proc(ctx.PID())
			va := p.Layout.HeapBase + 8192
			if _, errno := ctx.Syscall(kernel.SysUname, uint64(va)); errno != kernel.OK {
				t.Error(errno)
			}
			got, _ = ctx.LoadCString(va, 32)
		},
	})
	if got != kernel.UnameVersion {
		t.Fatalf("uname = %q, want %q", got, kernel.UnameVersion)
	}
}

func TestForkExecAbsent(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			if _, errno := ctx.Syscall(kernel.SysFork); errno != kernel.ENOSYS {
				t.Errorf("fork: %v, want ENOSYS", errno)
			}
			if _, errno := ctx.Syscall(kernel.SysExec); errno != kernel.ENOSYS {
				t.Errorf("exec: %v, want ENOSYS", errno)
			}
		},
	})
}

// writeString stores a C string in the process heap and returns its VA.
func writeString(ctx kernel.Context, k *Kernel, off uint64, s string) hw.VAddr {
	p := k.Proc(ctx.PID())
	va := p.Layout.HeapBase + hw.VAddr(1<<20+off)
	ctx.Store(va, append([]byte(s), 0))
	return va
}

func TestFunctionShippedFileIO(t *testing.T) {
	eng, k, filesystem := node(t, Config{})
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			path := writeString(ctx, k, 0, "/results.dat")
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(path), kernel.OCreat|kernel.ORdwr, 0644)
			if errno != kernel.OK {
				t.Fatalf("open: %v", errno)
			}
			p := k.Proc(ctx.PID())
			buf := p.Layout.HeapBase + 2<<20
			ctx.Store(buf, []byte("simulation output"))
			n, errno := ctx.Syscall(kernel.SysWrite, fd, uint64(buf), 17)
			if errno != kernel.OK || n != 17 {
				t.Fatalf("write: %v %d", errno, n)
			}
			if _, errno := ctx.Syscall(kernel.SysLseek, fd, 0, kernel.SeekSet); errno != kernel.OK {
				t.Fatalf("lseek: %v", errno)
			}
			rbuf := p.Layout.HeapBase + 3<<20
			n, errno = ctx.Syscall(kernel.SysRead, fd, uint64(rbuf), 17)
			if errno != kernel.OK || n != 17 {
				t.Fatalf("read: %v %d", errno, n)
			}
			got := make([]byte, 17)
			ctx.Load(rbuf, got)
			if string(got) != "simulation output" {
				t.Fatalf("read back %q", got)
			}
			ctx.Syscall(kernel.SysClose, fd)
		},
	})
	// The data must exist on the I/O node's filesystem.
	data, errno := filesystem.ReadFile("/results.dat", fs.Root)
	if errno != kernel.OK || string(data) != "simulation output" {
		t.Fatalf("ION fs: %v %q", errno, data)
	}
}

func TestFileIOOverRealCollectiveNetwork(t *testing.T) {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	ionFS := fs.New()
	srv := ciod.NewServer(eng, tree.ION(), ionFS)
	k := New(eng, chip, Config{IO: ciod.NewClient(tree.CN(0))})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	var wrote uint64
	job, err := k.Launch(JobSpec{Main: func(ctx kernel.Context, rank int) {
		path := writeString(ctx, k, 0, "/net.dat")
		fd, errno := ctx.Syscall(kernel.SysOpen, uint64(path), kernel.OCreat|kernel.OWronly, 0644)
		if errno != kernel.OK {
			t.Errorf("open: %v", errno)
			return
		}
		p := k.Proc(ctx.PID())
		buf := p.Layout.HeapBase + 2<<20
		ctx.Store(buf, []byte("over the tree"))
		wrote, _ = ctx.Syscall(kernel.SysWrite, fd, uint64(buf), 13)
		ctx.Syscall(kernel.SysClose, fd)
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() || wrote != 13 {
		t.Fatalf("job done=%v wrote=%d", job.Done(), wrote)
	}
	data, errno := ionFS.ReadFile("/net.dat", fs.Root)
	if errno != kernel.OK || string(data) != "over the tree" {
		t.Fatalf("ION fs: %v %q", errno, data)
	}
	if srv.Calls == 0 || srv.LiveProxies() != 0 {
		t.Fatalf("server calls=%d live=%d (proxy must exit with the proc)", srv.Calls, srv.LiveProxies())
	}
}

func TestStatThroughProxy(t *testing.T) {
	eng, k, filesystem := node(t, Config{})
	filesystem.WriteFile("/input.bin", make([]byte, 12345), 0644, fs.Root)
	var size uint64
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			path := writeString(ctx, k, 0, "/input.bin")
			p := k.Proc(ctx.PID())
			statVA := p.Layout.HeapBase + 2<<20
			n, errno := ctx.Syscall(kernel.SysStat, uint64(path), uint64(statVA))
			if errno != kernel.OK {
				t.Fatalf("stat: %v", errno)
			}
			if n != 12345 {
				t.Fatalf("stat returned %d, want the file size", n)
			}
			raw := make([]byte, ciod.StatWireSize)
			ctx.Load(statVA, raw)
			st, err := ciod.UnmarshalStat(raw)
			if err != nil {
				t.Fatal(err)
			}
			size = st.Size
		},
	})
	if size != 12345 {
		t.Fatalf("stat size = %d", size)
	}
}

func TestMmapFileCopyInReadOnly(t *testing.T) {
	eng, k, filesystem := node(t, Config{})
	filesystem.WriteFile("/lib.so", []byte("SHAREDLIBRARYCODE"), 0755, fs.Root)
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			path := writeString(ctx, k, 0, "/lib.so")
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(path), kernel.ORdonly, 0)
			if errno != kernel.OK {
				t.Fatalf("open: %v", errno)
			}
			va, errno := ctx.Syscall(kernel.SysMmap, 0, 17, kernel.ProtRead|kernel.ProtExec, kernel.MapPrivate|kernel.MapCopy, fd, 0)
			if errno != kernel.OK {
				t.Fatalf("mmap file: %v", errno)
			}
			buf := make([]byte, 17)
			if errno := ctx.Load(hw.VAddr(va), buf); errno != kernel.OK || string(buf) != "SHAREDLIBRARYCODE" {
				t.Fatalf("mapped contents: %v %q", errno, buf)
			}
		},
	})
}

func TestPersistentMemoryAcrossJobs(t *testing.T) {
	eng, k, _ := node(t, Config{})
	var va1, va2 uint64
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			name := writeString(ctx, k, 0, "table")
			va, errno := ctx.Syscall(kernel.SysPersistOpen, uint64(name), 1<<20)
			if errno != kernel.OK {
				t.Fatalf("persist_open: %v", errno)
			}
			va1 = va
			// Store a "pointer structure": a pointer to itself.
			ctx.StoreU64(hw.VAddr(va), va)
			ctx.Store(hw.VAddr(va)+8, []byte("persisted"))
		},
	})
	// Second job on the same node (same kernel instance — persistence
	// lives on the node).
	eng2 := k.Eng
	job2, err := k.Launch(JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			name := writeString(ctx, k, 0, "table")
			va, errno := ctx.Syscall(kernel.SysPersistOpen, uint64(name), 0)
			if errno != kernel.OK {
				t.Errorf("persist reopen: %v", errno)
				return
			}
			va2 = va
			ptr, _ := ctx.LoadU64(hw.VAddr(va))
			buf := make([]byte, 9)
			ctx.Load(hw.VAddr(va)+8, buf)
			if ptr != va || string(buf) != "persisted" {
				t.Errorf("persistent contents lost: ptr=%#x data=%q", ptr, buf)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunUntilIdle()
	if !job2.Done() {
		t.Fatal("second job stuck")
	}
	if va1 != va2 {
		t.Fatalf("virtual address not preserved: %#x vs %#x (paper IV-D)", va1, va2)
	}
}

func TestL1ParityDeliveredAsSignal(t *testing.T) {
	eng, k, _ := node(t, Config{})
	recovered := false
	run(t, eng, k, JobSpec{
		Main: func(ctx kernel.Context, rank int) {
			ctx.RegisterSignal(kernel.SIGBUS, func(c kernel.Context, info kernel.SigInfo) {
				recovered = true
			})
			k.Chip.Cache.ArmL1Parity(ctx.CoreID())
			p := k.Proc(ctx.PID())
			ctx.Touch(p.Layout.HeapBase, 64, false) // takes the parity hit
			ctx.Compute(1000)
		},
	})
	if !recovered {
		t.Fatal("application never saw the parity signal (paper V-B)")
	}
}

func TestExtendedThreadAffinity(t *testing.T) {
	// Paper Section VIII: n processes per node; in an OpenMP phase one
	// process borrows a designated remote core.
	eng, k, _ := node(t, Config{MaxThreadsPerCore: 3})
	var borrowedCore int
	borrowedRan := false
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 2},
		Main: func(ctx kernel.Context, rank int) {
			if rank != 0 {
				ctx.Compute(500_000) // rank 1 computes; its second core is idle
				return
			}
			ctx.Compute(1000)
			p0 := k.Proc(ctx.PID())
			p1 := k.Proc(ctx.PID() + 1)
			// Lend rank 1's second core (core 3) to rank 0.
			if err := k.LendCore(3, p1, p0); err != nil {
				t.Error(err)
				return
			}
			// Saturate own cores then spill onto the remote one.
			for i := 0; i < 5; i++ {
				_, errno := ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags, Fn: func(c kernel.Context) {
					if c.CoreID() == 3 {
						borrowedCore = c.CoreID()
						borrowedRan = true
					}
					c.Compute(10_000)
				}})
				if errno != kernel.OK {
					t.Errorf("clone %d: %v", i, errno)
				}
			}
			ctx.Compute(200_000)
		},
	})
	if !borrowedRan || borrowedCore != 3 {
		t.Fatalf("no thread ran on the lent core (ran=%v core=%d)", borrowedRan, borrowedCore)
	}
}

func TestLendCoreValidation(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 2},
		Main: func(ctx kernel.Context, rank int) {
			if rank != 0 {
				return
			}
			p0 := k.Proc(ctx.PID())
			p1 := k.Proc(ctx.PID() + 1)
			if err := k.LendCore(0, p1, p0); err == nil {
				t.Error("lending a core p1 does not own must fail")
			}
			if err := k.LendCore(3, p1, p0); err != nil {
				t.Error(err)
			}
			// Only ONE designated remote process per core.
			if err := k.LendCore(3, p1, p1); err == nil {
				t.Error("double lend must fail")
			}
		},
	})
}

func TestReproducibleResetProtocol(t *testing.T) {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	k := New(eng, chip, Config{Reproducible: true})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	chip.Mem.Write(0x100000, []byte("state to keep"))
	eng.Go("lowcore", func(c *sim.Coro) {
		k.PrepareReproducibleReset(c)
	})
	eng.RunUntilIdle()
	if chip.Resets != 1 {
		t.Fatal("chip was not reset")
	}
	if err := k.RestartReproducible(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 13)
	chip.Mem.Read(0x100000, buf)
	if string(buf) != "state to keep" {
		t.Fatalf("DDR lost across reproducible reset: %q", buf)
	}
	if chip.Mem.InSelfRefresh() {
		t.Fatal("restart must take DDR out of self-refresh")
	}
}

func TestRestartWithoutPrepareFails(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, hw.NewChip(hw.ChipConfig{ID: 0}), Config{})
	k.Boot()
	k.booted = false
	err := k.RestartReproducible()
	if err == nil {
		t.Fatal("restart without prepared Boot SRAM must fail")
	}
	var re *ResetError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResetError for missing magic, got %T: %v", err, err)
	}
	if re.Chip != 0 {
		t.Errorf("ResetError names chip %d, want 0", re.Chip)
	}
}

func TestRestartWithoutSelfRefreshFails(t *testing.T) {
	// The magic alone is not enough: if the reset protocol was skipped
	// (DDR never entered self-refresh), memory did not survive and the
	// restart must refuse with a typed error rather than come up on
	// garbage.
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 3})
	k := New(eng, chip, Config{})
	copy(chip.BootSRAM[:], resetMagic)
	err := k.RestartReproducible()
	if err == nil {
		t.Fatal("restart with DDR out of self-refresh must fail")
	}
	var re *ResetError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResetError for skipped self-refresh, got %T: %v", err, err)
	}
	if re.Chip != 3 {
		t.Errorf("ResetError names chip %d, want 3", re.Chip)
	}
}

func TestTwoIdenticalRunsAreCycleIdentical(t *testing.T) {
	runOnce := func() (uint64, sim.Cycles) {
		eng := sim.NewEngine()
		eng.Trace().SetEnabled(true)
		chip := hw.NewChip(hw.ChipConfig{ID: 0})
		k := New(eng, chip, Config{Reproducible: true, IO: ciod.NewLoopback(eng, fs.New())})
		k.Boot()
		job, _ := k.Launch(JobSpec{
			Params: kernel.JobParams{ProcsPerNode: 4},
			Main: func(ctx kernel.Context, rank int) {
				p := k.Proc(ctx.PID())
				for i := 0; i < 10; i++ {
					ctx.Compute(10_000)
					ctx.Touch(p.Layout.HeapBase+hw.VAddr(i*4096), 256, true)
					ctx.Syscall(kernel.SysGettimeofday)
				}
			},
		})
		eng.RunUntilIdle()
		eng.Shutdown()
		if !job.Done() {
			t.Fatal("job stuck")
		}
		return eng.Trace().Hash(), eng.Now()
	}
	h1, t1 := runOnce()
	h2, t2 := runOnce()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("two identical CNK runs diverged: %x@%d vs %x@%d", h1, t1, h2, t2)
	}
}

func TestIOProxyPerThread(t *testing.T) {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	tree := collective.NewTree(eng, collective.DefaultConfig(), []int{0})
	srv := ciod.NewServer(eng, tree.ION(), fs.New())
	k := New(eng, chip, Config{IO: ciod.NewClient(tree.CN(0)), MaxThreadsPerCore: 1})
	k.Boot()
	var pid uint32
	var gotThreads int
	job, _ := k.Launch(JobSpec{Main: func(ctx kernel.Context, rank int) {
		pid = ctx.PID()
		doIO := func(c kernel.Context, name string) {
			p := k.Proc(c.PID())
			va := p.Layout.HeapBase + hw.VAddr(4<<20) + hw.VAddr(c.TID())*4096
			c.Store(va, append([]byte("/f-"+name), 0))
			fd, _ := c.Syscall(kernel.SysOpen, uint64(va), kernel.OCreat|kernel.OWronly, 0644)
			c.Syscall(kernel.SysClose, fd)
		}
		for i := 0; i < 2; i++ {
			ctx.Clone(kernel.CloneArgs{Flags: kernel.NPTLCloneFlags, Fn: func(c kernel.Context) {
				doIO(c, "t")
				c.Compute(1000)
			}})
		}
		doIO(ctx, "m")
		ctx.Compute(3_000_000)
		// Sample while the job is live: the proxy is torn down at exit.
		gotThreads = srv.ProxyThreads(ctx.PID())
	}})
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job.Done() {
		t.Fatal("stuck")
	}
	_ = pid
	if gotThreads != 3 {
		t.Fatalf("ioproxy threads = %d, want 3 (1:1 with app threads)", gotThreads)
	}
	if srv.LiveProxies() != 0 {
		t.Fatal("proxy must be torn down when the process exits")
	}
}
