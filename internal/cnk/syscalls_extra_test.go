package cnk

import (
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
)

// TestShippedDirectoryOperations exercises the remaining function-shipped
// calls (mkdir/chdir/getcwd/readdir/rename/unlink/truncate/dup) end to
// end against the ioproxy.
func TestShippedDirectoryOperations(t *testing.T) {
	eng, k, filesystem := node(t, Config{})
	run(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		p := k.Proc(ctx.PID())
		scratch := p.Layout.HeapBase + 1<<20
		put := func(off uint64, s string) uint64 {
			va := scratch + hw.VAddr(off)
			ctx.Store(va, append([]byte(s), 0))
			return uint64(va)
		}
		if _, errno := ctx.Syscall(kernel.SysMkdir, put(0, "/run"), 0755); errno != kernel.OK {
			t.Fatalf("mkdir: %v", errno)
		}
		if _, errno := ctx.Syscall(kernel.SysChdir, put(0, "/run")); errno != kernel.OK {
			t.Fatalf("chdir: %v", errno)
		}
		cwdVA := scratch + 4096
		if _, errno := ctx.Syscall(kernel.SysGetcwd, uint64(cwdVA), 64); errno != kernel.OK {
			t.Fatalf("getcwd: %v", errno)
		}
		if cwd, _ := ctx.LoadCString(cwdVA, 64); cwd != "/run" {
			t.Fatalf("cwd = %q (proxy must mirror it)", cwd)
		}
		// Create two files with relative paths, rename one, unlink the other.
		for _, n := range []string{"a.dat", "b.dat"} {
			fd, errno := ctx.Syscall(kernel.SysOpen, put(0, n), kernel.OCreat|kernel.OWronly, 0644)
			if errno != kernel.OK {
				t.Fatalf("open %s: %v", n, errno)
			}
			// dup shares the offset; write through both descriptors.
			fd2, errno := ctx.Syscall(kernel.SysDup, fd)
			if errno != kernel.OK {
				t.Fatalf("dup: %v", errno)
			}
			buf := put(8192, "xy")
			ctx.Syscall(kernel.SysWrite, fd, buf, 2)
			ctx.Syscall(kernel.SysWrite, fd2, buf, 2)
			ctx.Syscall(kernel.SysClose, fd)
			ctx.Syscall(kernel.SysClose, fd2)
		}
		if _, errno := ctx.Syscall(kernel.SysRename, put(0, "a.dat"), put(512, "c.dat")); errno != kernel.OK {
			t.Fatalf("rename: %v", errno)
		}
		if _, errno := ctx.Syscall(kernel.SysUnlink, put(0, "b.dat")); errno != kernel.OK {
			t.Fatalf("unlink: %v", errno)
		}
		if _, errno := ctx.Syscall(kernel.SysTruncate, put(0, "c.dat"), 1); errno != kernel.OK {
			t.Fatalf("truncate: %v", errno)
		}
		// readdir must show exactly c.dat.
		listVA := scratch + 12288
		n, errno := ctx.Syscall(kernel.SysReaddir, put(0, "/run"), uint64(listVA), 256)
		if errno != kernel.OK || n != 1 {
			t.Fatalf("readdir: %v n=%d", errno, n)
		}
		name, _ := ctx.LoadCString(listVA, 32)
		if name != "c.dat" {
			t.Fatalf("entry = %q", name)
		}
	}})
	// Verify on the ION side: dup'd writes advanced one shared offset.
	data, errno := filesystem.ReadFile("/run/c.dat", fs.Root)
	if errno != kernel.OK || len(data) != 1 {
		t.Fatalf("final file: %v %q (dup offset sharing + truncate)", errno, data)
	}
}

func TestPersistPrivilegesViaSyscall(t *testing.T) {
	eng, k, _ := node(t, Config{})
	// Job 1 (uid 100) creates a region.
	job, err := k.Launch(JobSpec{UID: 100, Main: func(ctx kernel.Context, rank int) {
		name := writeString(ctx, k, 0, "secret")
		if _, errno := ctx.Syscall(kernel.SysPersistOpen, uint64(name), 4096); errno != kernel.OK {
			t.Errorf("create: %v", errno)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if !job.Done() {
		t.Fatal("job 1 stuck")
	}
	// Job 2 (uid 200) must be denied (paper IV-D: "assuming the correct
	// privileges").
	job2, err := k.Launch(JobSpec{UID: 200, Main: func(ctx kernel.Context, rank int) {
		name := writeString(ctx, k, 0, "secret")
		if _, errno := ctx.Syscall(kernel.SysPersistOpen, uint64(name), 0); errno != kernel.EACCES {
			t.Errorf("foreign uid open: %v, want EACCES", errno)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	eng.Shutdown()
	if !job2.Done() {
		t.Fatal("job 2 stuck")
	}
}

func TestMmapRejectsZeroLength(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		if _, errno := ctx.Syscall(kernel.SysMmap, 0, 0, kernel.ProtRead, kernel.MapAnonymous, ^uint64(0), 0); errno != kernel.EINVAL {
			t.Errorf("mmap(0): %v", errno)
		}
	}})
}

func TestYieldWithoutSiblingIsNoop(t *testing.T) {
	eng, k, _ := node(t, Config{})
	run(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		before := ctx.Now()
		if _, errno := ctx.Syscall(kernel.SysYield); errno != kernel.OK {
			t.Errorf("yield: %v", errno)
		}
		// Only the syscall entry cost; no context switch happened.
		if d := ctx.Now() - before; d > 1000 {
			t.Errorf("lone yield cost %d cycles", d)
		}
	}})
}

func TestDUALModeLayout(t *testing.T) {
	eng, k, _ := node(t, Config{})
	cores := map[int]int{}
	run(t, eng, k, JobSpec{
		Params: kernel.JobParams{ProcsPerNode: 2},
		Main: func(ctx kernel.Context, rank int) {
			cores[rank] = ctx.CoreID()
			ctx.Compute(1000)
		},
	})
	// DUAL mode: rank 0 on cores {0,1}, rank 1 on cores {2,3}.
	if cores[0] != 0 || cores[1] != 2 {
		t.Fatalf("DUAL placement: %v", cores)
	}
}

func TestSyscallTraceRecordsInReproducibleMode(t *testing.T) {
	eng, k, _ := node(t, Config{Reproducible: true})
	count0 := eng.Trace().Count()
	run(t, eng, k, JobSpec{Main: func(ctx kernel.Context, rank int) {
		ctx.Syscall(kernel.SysGetpid)
		ctx.Syscall(kernel.SysGettid)
	}})
	if eng.Trace().Count() <= count0 {
		t.Fatal("reproducible mode must trace syscalls (the scans depend on it)")
	}
}
