package cnk

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// coreSched is CNK's per-core "scheduler". It is deliberately trivial
// (paper Section VI-C): threads have fixed affinity to the core, are never
// preempted, and give it up only by blocking on a futex, yielding
// explicitly, or exiting. I/O system calls do NOT release the core.
type coreSched struct {
	k    *Kernel
	core *hw.Core

	assigned []*kernel.Thread // threads placed on this core (small, fixed)
	cur      *kernel.Thread   // thread owning the core (nil = idle)
	ready    []*kernel.Thread // runnable, waiting for the core

	// pendingIPIs are directed interrupts to service on this core.
	pendingIPIs []func(*kernel.Thread)

	// lentTo is the PID of the single designated remote process this
	// core may also execute threads for (extended thread-affinity model,
	// paper Section VIII). Zero when not lent.
	lentTo uint32

	ContextSwitches uint64
}

// proc returns the process this core is assigned to (via its threads).
func (cs *coreSched) load() int { return len(cs.assigned) }

// place assigns a thread to this core permanently.
func (cs *coreSched) place(t *kernel.Thread) {
	if len(cs.assigned) >= cs.k.cfg.MaxThreadsPerCore {
		panic(fmt.Sprintf("cnk: core %d thread budget exceeded", cs.core.ID))
	}
	cs.assigned = append(cs.assigned, t)
}

// remove drops an exited thread from the core's assignment list, freeing
// its slot for a later job on the same node.
func (cs *coreSched) remove(t *kernel.Thread) {
	for i, x := range cs.assigned {
		if x == t {
			cs.assigned = append(cs.assigned[:i], cs.assigned[i+1:]...)
			return
		}
	}
}

// grant hands the idle core to the next ready thread, if any.
func (cs *coreSched) grant() {
	if cs.cur != nil || len(cs.ready) == 0 {
		return
	}
	cs.cur = cs.ready[0]
	cs.ready = cs.ready[1:]
	cs.ContextSwitches++
	u := cs.core.Chip.UPC
	u.Inc(cs.core.ID, upc.ContextSwitch)
	u.Trace.Emit(upc.EvCtxSwitch, cs.core.ID, cs.k.Eng.Now(), uint64(cs.cur.TID()))
	cs.cur.Coro().Wake()
}

// acquire blocks t until it owns the core. Called at thread start and
// after blocking. Must run on t's own coroutine.
func (cs *coreSched) acquire(t *kernel.Thread) {
	if cs.cur == t {
		t.State = kernel.ThreadRunning
		return
	}
	if cs.cur == nil && len(cs.ready) == 0 {
		cs.cur = t // immediate self-grant; no wake needed
		t.State = kernel.ThreadRunning
		return
	}
	cs.ready = append(cs.ready, t)
	if cs.cur == nil && cs.ready[0] == t {
		cs.ready = cs.ready[1:]
		cs.cur = t
		t.State = kernel.ThreadRunning
		return
	}
	cs.grant()
	for cs.cur != t {
		t.Coro().Park(sim.Forever)
	}
	t.State = kernel.ThreadRunning
}

// release gives up the core (t must own it) and grants it onward.
func (cs *coreSched) release(t *kernel.Thread) {
	if cs.cur != t {
		panic("cnk: release by non-owner")
	}
	cs.cur = nil
	cs.grant()
}

// yield implements sched_yield: only meaningful when another thread shares
// the core ("Sharing a core is rare in HPC applications" — paper VI-C).
func (cs *coreSched) yield(t *kernel.Thread) {
	if len(cs.ready) == 0 {
		return // nothing to yield to; stay on core
	}
	cs.release(t)
	cs.acquire(t)
}

// postIPI queues fn for execution in interrupt context on this core and
// pokes the owning thread so a compute burst observes it.
func (cs *coreSched) postIPI(fn func(*kernel.Thread)) {
	cs.pendingIPIs = append(cs.pendingIPIs, fn)
	if cs.cur != nil {
		cs.cur.Coro().Wake()
	}
}

// --- futex ---

type futexKey struct {
	pid   uint32
	uaddr hw.VAddr
}

type futexWaiter struct {
	t     *kernel.Thread
	woken bool
}

// futexWait implements FUTEX_WAIT: block if *uaddr still equals val.
// The core is released while blocked — this is the one place CNK's
// scheduler makes a real decision (paper VI-C: "a thread enters the kernel
// only to wait until a futex may be granted by another core").
func (k *Kernel) futexWait(t *kernel.Thread, uaddr hw.VAddr, val uint32, timeout sim.Cycles) kernel.Errno {
	cur, errno := t.LoadU32(uaddr)
	if errno != kernel.OK {
		return errno
	}
	if cur != val {
		return kernel.EAGAIN
	}
	key := futexKey{t.PID(), uaddr}
	w := &futexWaiter{t: t}
	k.futexes[key] = append(k.futexes[key], w)
	cs := k.cores[t.CoreID()]
	k.Chip.UPC.Inc(cs.core.ID, upc.FutexWait)
	k.Chip.UPC.Trace.Emit(upc.EvFutexWait, cs.core.ID, k.Eng.Now(), uint64(uaddr))
	cs.release(t)
	t.State = kernel.ThreadBlocked

	deadline := sim.Forever
	if timeout != 0 && timeout < sim.Forever {
		deadline = timeout
	}
	start := t.Coro().Now()
	timedOut := false
	for !w.woken {
		remaining := sim.Forever
		if deadline != sim.Forever {
			elapsed := t.Coro().Now() - start
			if elapsed >= deadline {
				timedOut = true
				break
			}
			remaining = deadline - elapsed
		}
		if t.Coro().Park(remaining) == sim.WakeTimeout && deadline != sim.Forever {
			timedOut = true
			break
		}
	}
	if timedOut && !w.woken {
		k.futexRemove(key, w)
	}
	cs.acquire(t)
	k.ServiceInterrupt(t) // catch IPIs/signals that arrived while blocked
	if timedOut && !w.woken {
		return kernel.ETIMEDOUT
	}
	return kernel.OK
}

func (k *Kernel) futexRemove(key futexKey, w *futexWaiter) {
	ws := k.futexes[key]
	for i, x := range ws {
		if x == w {
			k.futexes[key] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

// futexWake implements FUTEX_WAKE: wake up to n waiters, returning the
// number woken.
func (k *Kernel) futexWake(t *kernel.Thread, uaddr hw.VAddr, n uint32) uint64 {
	k.Chip.UPC.Inc(t.CoreID(), upc.FutexWake)
	k.Chip.UPC.Trace.Emit(upc.EvFutexWake, t.CoreID(), k.Eng.Now(), uint64(uaddr))
	key := futexKey{t.PID(), uaddr}
	ws := k.futexes[key]
	woken := uint64(0)
	for len(ws) > 0 && woken < uint64(n) {
		w := ws[0]
		ws = ws[1:]
		w.woken = true
		w.t.State = kernel.ThreadReady
		w.t.Coro().Wake()
		woken++
	}
	if len(ws) == 0 {
		delete(k.futexes, key)
	} else {
		k.futexes[key] = ws
	}
	return woken
}

// exitThread finalizes a thread: CLONE_CHILD_CLEARTID semantics (store 0,
// futex-wake joiners), core release, process teardown when the last
// thread leaves.
func (k *Kernel) exitThread(t *kernel.Thread, code int) {
	if t.State == kernel.ThreadExited {
		panic(threadExit{code}) // already torn down; just unwind
	}
	p := k.procs[t.PID()]
	t.State = kernel.ThreadExited
	t.ExitCode = code
	if addr := t.ClearTID; addr != 0 {
		t.ClearTID = 0
		// Kernel-mode store: not subject to the DAC guard watch.
		var zero [4]byte
		t.StoreKernel(addr, zero[:])
		k.futexWake(t, addr, 1<<30)
	}
	cs := k.cores[t.CoreID()]
	if cs.cur == t {
		cs.release(t)
	}
	cs.remove(t)
	if p != nil {
		p.liveThreads--
		if p.liveThreads == 0 {
			k.finishProc(p, code, t)
		}
	}
	// Unwind the thread's coroutine.
	panic(threadExit{code})
}

// threadExit unwinds a thread coroutine on exit; recovered at the
// coroutine top.
type threadExit struct{ code int }
