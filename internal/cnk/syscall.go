package cnk

import (
	"fmt"

	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/mem"
	"bgcnk/internal/obs"
	"bgcnk/internal/sim"
)

// Syscall implements kernel.OS. Argument conventions follow the Linux ABI
// shape: buffers and paths are virtual addresses in the calling process.
//
// CNK implements locally only what the paper lists (Section IV): memory
// (brk/mmap/munmap/mprotect/shmget), threads (clone via the typed path,
// futex, set_tid_address, sigaction via the typed path, yield, exit),
// identity (getpid/gettid/uname/gettimeofday), and the persistent-memory
// extension. Every file-I/O call is function-shipped (io.go). fork and
// exec do not exist (paper VII-B: "MPI cannot spawn dynamic tasks because
// CNK does not allow fork/exec").
func (k *Kernel) Syscall(t *kernel.Thread, num kernel.Sys, args []uint64) (uint64, kernel.Errno) {
	if k.cfg.TraceSyscalls {
		k.trace(k.Eng.Now(), fmt.Sprintf("pid%d tid%d %v", t.PID(), t.TID(), num))
	}
	if k.obs != nil {
		// Deferred so the span survives exit's thread unwind (exitThread
		// panics threadExit through this frame).
		start := k.Eng.Now()
		core := t.CoreID()
		defer func() {
			k.obs.Emit(obs.CatSyscall, num.String(), k.Chip.ID, core, start, k.Eng.Now(), uint64(num))
		}()
	}
	p := k.procs[t.PID()]
	if p == nil {
		return 0, kernel.ESRCH
	}
	if num.IsFileIO() {
		return k.shipIO(t, p, num, args)
	}
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch num {
	case kernel.SysBrk:
		return k.sysBrk(t, p, hw.VAddr(arg(0)))
	case kernel.SysMmap:
		return k.sysMmap(t, p, args)
	case kernel.SysMunmap:
		p.Mmap.Free(hw.VAddr(arg(0)), arg(1))
		return 0, kernel.OK
	case kernel.SysMprotect:
		return k.sysMprotect(t, p, hw.VAddr(arg(0)), arg(1), arg(2))
	case kernel.SysShmGet:
		if outVA := hw.VAddr(arg(0)); outVA != 0 {
			t.StoreU64(outVA, p.Layout.Shm.Req)
		}
		return uint64(p.Layout.Shm.VBase), kernel.OK
	case kernel.SysFutex:
		uaddr := hw.VAddr(arg(0))
		switch arg(1) {
		case kernel.FutexWait:
			return 0, k.futexWait(t, uaddr, uint32(arg(2)), sim.Cycles(arg(3)))
		case kernel.FutexWake:
			return k.futexWake(t, uaddr, uint32(arg(2))), kernel.OK
		}
		return 0, kernel.EINVAL
	case kernel.SysSetTidAddress:
		t.ClearTID = hw.VAddr(arg(0))
		return uint64(t.TID()), kernel.OK
	case kernel.SysYield:
		k.cores[t.CoreID()].yield(t)
		return 0, kernel.OK
	case kernel.SysExit:
		k.exitThread(t, int(arg(0)))
		return 0, kernel.OK // unreachable: exitThread unwinds
	case kernel.SysGetpid:
		return uint64(t.PID()), kernel.OK
	case kernel.SysGettid:
		return uint64(t.TID()), kernel.OK
	case kernel.SysUname:
		// glibc checks the version to decide NPTL support (paper IV-B1).
		if errno := t.StoreCString(hw.VAddr(arg(0)), kernel.UnameVersion); errno != kernel.OK {
			return 0, errno
		}
		return 0, kernel.OK
	case kernel.SysGettimeofday:
		return uint64(k.Eng.Now()), kernel.OK
	case kernel.SysPersistOpen:
		return k.sysPersistOpen(t, p, args)
	case kernel.SysFork, kernel.SysExec:
		return 0, kernel.ENOSYS
	case kernel.SysSigaction, kernel.SysSigreturn:
		return 0, kernel.EINVAL // use the typed RegisterSignal path
	case kernel.SysClone:
		return 0, kernel.EINVAL // use the typed Clone path
	}
	return 0, kernel.ENOSYS
}

// sysBrk moves the break. Growing the heap repositions the main thread's
// guard area via an IPI to its core (paper Fig 4: "when the heap boundary
// is extended, CNK issues an inter-processor interrupt to the main thread
// in order to reposition the guard area").
func (k *Kernel) sysBrk(t *kernel.Thread, p *Proc, to hw.VAddr) (uint64, kernel.Errno) {
	old := p.Brk.Cur
	cur, ok := p.Brk.Set(to)
	if !ok {
		return uint64(p.Brk.Cur), kernel.ENOMEM
	}
	if cur > old && p.mainGuard.set {
		mainCore := k.cores[p.Main.CoreID()]
		guard := p.mainGuard.size
		pid := p.PID
		newLo := cur
		mainCore.postIPI(func(mt *kernel.Thread) {
			mt.Coro().Sleep(guardRepositionCost)
			mainCore.core.DAC[0] = hw.DACRange{
				Enabled: true, PID: pid,
				Lo: newLo, Hi: newLo + hw.VAddr(guard),
			}
		})
		// The DAC hardware is updated immediately so the allocating
		// thread cannot fault on legitimately allocated storage; the IPI
		// models the interrupt cost the main thread observes.
		mainCore.core.DAC[0] = hw.DACRange{
			Enabled: true, PID: pid,
			Lo: cur, Hi: cur + hw.VAddr(guard),
		}
	}
	return uint64(cur), kernel.OK
}

// sysMmap: with the static map, mmap "merely provides free addresses to
// the application" (paper IV-C). File-backed mappings copy the whole file
// in at map time and are read-only (paper VI-A).
func (k *Kernel) sysMmap(t *kernel.Thread, p *Proc, args []uint64) (uint64, kernel.Errno) {
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	addr, length, prot, flags := hw.VAddr(arg(0)), arg(1), arg(2), arg(3)
	fd, off := int64(arg(4)), int64(arg(5))
	if length == 0 {
		return 0, kernel.EINVAL
	}
	perms := permFromProt(prot)
	var va hw.VAddr
	if flags&kernel.MapFixed != 0 {
		if err := p.Mmap.AllocFixed(addr, length, perms); err != nil {
			return 0, kernel.ENOMEM
		}
		va = addr
	} else {
		a, err := p.Mmap.Alloc(length, perms)
		if err != nil {
			return 0, kernel.ENOMEM
		}
		va = a
	}
	if flags&kernel.MapAnonymous == 0 && fd >= 0 {
		// Load the full file contents now: no demand paging, no
		// page-fault noise later; the cost lands at map time (paper
		// IV-B2). The mapping is read-only regardless of prot; with
		// MAP_COPY (ld.so) the pages are private copies.
		if errno := k.mmapCopyIn(t, p, va, length, int32(fd), off); errno != kernel.OK {
			p.Mmap.Free(va, length)
			return 0, errno
		}
		p.Mmap.Protect(va, length, hw.PermRead|hw.PermExec)
	}
	return uint64(va), kernel.OK
}

func permFromProt(prot uint64) hw.Perm {
	var p hw.Perm
	if prot&kernel.ProtRead != 0 {
		p |= hw.PermRead
	}
	if prot&kernel.ProtWrite != 0 {
		p |= hw.PermWrite
	}
	if prot&kernel.ProtExec != 0 {
		p |= hw.PermExec
	}
	return p
}

// sysMprotect tracks the request (for the clone guard heuristic) and
// updates the range's bookkeeping. The static TLB map is NOT changed: CNK
// does not honour page permissions on dynamic library text/read-only data
// (paper IV-B2) — a conscious lightweight-philosophy decision whose
// consequence (applications can scribble on their own text) is tested.
func (k *Kernel) sysMprotect(t *kernel.Thread, p *Proc, va hw.VAddr, length, prot uint64) (uint64, kernel.Errno) {
	p.lastMprotect.va = va
	p.lastMprotect.size = length
	p.lastMprotect.valid = true
	p.Mmap.Protect(va, length, permFromProt(prot)) // bookkeeping only; ignore errors for unmapped (heap) guards
	return 0, kernel.OK
}

// sysPersistOpen opens (or creates) a named persistent region. The name is
// a C string at args[0]; args[1] is the size (0 = existing). Returns the
// region's virtual address, stable across jobs (paper IV-D).
func (k *Kernel) sysPersistOpen(t *kernel.Thread, p *Proc, args []uint64) (uint64, kernel.Errno) {
	if len(args) < 2 {
		return 0, kernel.EINVAL
	}
	name, errno := t.LoadCString(hw.VAddr(args[0]), 255)
	if errno != kernel.OK {
		return 0, errno
	}
	r, _, err := k.Persist.Open(name, args[1], p.UID)
	if err != nil {
		return 0, kernel.EACCES
	}
	p.persistMaps = append(p.persistMaps, r)
	// Map it on the calling thread's core now; other cores fault it in
	// lazily via Translate (still pinned — the map stays static during
	// execution).
	core := t.HWCore()
	if _, _, ok := core.TLB.Lookup(p.PID, r.VA); !ok {
		if e, ok := p.persistEntry(r.VA); ok {
			core.TLB.InsertPinned(e)
		}
	}
	return uint64(r.VA), kernel.OK
}

// ensure mem import is used even if future refactors drop other uses.
var _ = mem.KernelPhysReserve
