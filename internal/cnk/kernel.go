// Package cnk implements the Compute Node Kernel model: the paper's
// lightweight kernel, design decision by design decision. CNK owns one
// chip; it boots fast and deterministically, installs a static TLB map per
// process (no page faults, no TLB misses), schedules threads
// non-preemptively with fixed core affinity, function-ships file I/O to
// CIOD, implements the small syscall surface NPTL and ld.so need, guards
// stacks with DAC registers, and supports named persistent memory and the
// reproducible-reset protocol used for chip bringup.
package cnk

import (
	"fmt"

	"bgcnk/internal/ciod"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/mem"
	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Boot cost model (in instructions ≈ cycles). CNK's boot is tiny: this is
// what makes it usable under a 10 Hz VHDL simulator during chip design
// (paper Section III: "CNK boots in a couple of hours, while Linux takes
// weeks").
const (
	bootCoreInit        = 6_000  // per-core low-level init
	bootUnitInit        = 4_000  // per functional unit
	bootMemInit         = 18_000 // critical memory contents
	bootHandshake       = 9_000  // service-node interaction (skipped in reproducible restart)
	syscallCost         = 120    // kernel entry/exit
	ipiCost             = 400    // inter-processor interrupt service
	guardRepositionCost = 250
	tlbReinstallCost    = 120 // re-install a parity-invalidated static entry
)

// Config parameterizes the kernel.
type Config struct {
	// MaxThreadsPerCore is the fixed small thread budget. BG/P shipped
	// with 1 and later allowed 3; next-generation CNK planned a
	// compile-time variable count (paper Table II footnote 3).
	MaxThreadsPerCore int
	// IO is the function-ship transport to CIOD. Nil means file I/O
	// returns ENOSYS (a compute node with no I/O node).
	IO ciod.Transport
	// Reproducible boots the kernel in cycle-reproducible mode: no
	// service-node handshake, fully deterministic initialization.
	Reproducible bool
	// TraceSyscalls records each syscall in the engine trace. On by
	// default in reproducible mode.
	TraceSyscalls bool
}

// Kernel is one compute node's CNK instance.
type Kernel struct {
	Eng  *sim.Engine
	Chip *hw.Chip
	cfg  Config

	// Persist survives job boundaries on the node (paper Section IV-D).
	Persist *mem.PersistRegistry

	// Boot metrics.
	BootedAt  sim.Cycles
	BootInstr uint64
	booted    bool

	cores   []*coreSched
	procs   map[uint32]*Proc
	futexes map[futexKey][]*futexWaiter
	nextPID uint32
	nextTID uint32

	// IOUnavailable reports which units boot found broken (bringup on
	// partial hardware, paper Section III).
	UnitsDown []hw.Unit

	// obs, when non-nil, receives boot, syscall and IPI spans. Emitting
	// charges no cycles; a nil recorder is the off switch.
	obs *obs.Recorder
}

// AttachObs wires the machine-wide span recorder (call before Boot so
// the boot span is captured; nil is a no-op recorder).
func (k *Kernel) AttachObs(r *obs.Recorder) { k.obs = r }

// New constructs a CNK instance for chip. Call Boot before launching jobs.
func New(eng *sim.Engine, chip *hw.Chip, cfg Config) *Kernel {
	if cfg.MaxThreadsPerCore == 0 {
		cfg.MaxThreadsPerCore = 1
	}
	if cfg.Reproducible {
		cfg.TraceSyscalls = true
	}
	k := &Kernel{
		Eng:     eng,
		Chip:    chip,
		cfg:     cfg,
		procs:   make(map[uint32]*Proc),
		futexes: make(map[futexKey][]*futexWaiter),
		Persist: mem.NewPersistRegistry(hw.PAddr(chip.Mem.Size()-64<<20), hw.PAddr(chip.Mem.Size())),
	}
	for _, c := range chip.Cores {
		k.cores = append(k.cores, &coreSched{k: k, core: c})
	}
	return k
}

// Name implements kernel.OS.
func (k *Kernel) Name() string { return "CNK" }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Boot runs the kernel's startup sequence, charging its (small,
// deterministic) cost and probing functional units. With broken optional
// units CNK still comes up; only DDR is mandatory.
func (k *Kernel) Boot() error {
	if k.booted {
		return fmt.Errorf("cnk: already booted")
	}
	if !k.Chip.UnitEnabled(hw.UnitDDR) {
		return fmt.Errorf("cnk: chip %d has no working DDR", k.Chip.ID)
	}
	instr := uint64(0)
	tr := k.Eng.Trace()
	tr.Record(k.Eng.Now(), k.tag(), "boot: low-core start")
	instr += bootCoreInit * uint64(len(k.Chip.Cores))
	for _, u := range hw.AllUnits() {
		if !k.Chip.UnitEnabled(u) {
			k.UnitsDown = append(k.UnitsDown, u)
			tr.Record(k.Eng.Now(), k.tag(), "boot: unit "+u.String()+" down, continuing")
			continue
		}
		instr += bootUnitInit
	}
	instr += bootMemInit
	if !k.cfg.Reproducible {
		instr += bootHandshake
		tr.Record(k.Eng.Now(), k.tag(), "boot: service node handshake")
	} else {
		tr.Record(k.Eng.Now(), k.tag(), "boot: reproducible mode, skipping service node")
	}
	k.BootInstr = instr
	k.BootedAt = k.Eng.Now() + sim.Cycles(instr)
	k.booted = true
	tr.Record(k.BootedAt, k.tag(), "boot: complete")
	k.obs.Emit(obs.CatBoot, "cnk:boot", k.Chip.ID, 0, k.Eng.Now(), k.BootedAt, instr)
	return nil
}

// ResetJobState forgets every per-job structure — processes, futex
// queues, PID/TID counters, per-core run queues, core-lending grants — so
// the next Launch on this kernel numbers and places threads exactly like
// the first launch on a fresh kernel did. Persistent memory survives (its
// job-spanning contract, paper Section IV-D); Reboot is what loses it.
func (k *Kernel) ResetJobState() {
	k.procs = make(map[uint32]*Proc)
	k.futexes = make(map[futexKey][]*futexWaiter)
	k.nextPID, k.nextTID = 0, 0
	for _, cs := range k.cores {
		cs.assigned, cs.cur, cs.ready = nil, nil, nil
		cs.pendingIPIs = nil
		cs.lentTo = 0
		cs.ContextSwitches = 0
	}
}

// Reboot re-runs the boot sequence on a chip the control system has just
// reset, as a partition teardown/recreate does between queued jobs. DDR
// contents were lost with the chip reset, so the persistent-memory
// registry starts empty and broken-unit probing repeats from scratch.
func (k *Kernel) Reboot() error {
	k.ResetJobState()
	k.booted = false
	k.UnitsDown = nil
	k.BootInstr = 0
	k.Persist = mem.NewPersistRegistry(hw.PAddr(k.Chip.Mem.Size()-64<<20), hw.PAddr(k.Chip.Mem.Size()))
	return k.Boot()
}

func (k *Kernel) tag() string { return fmt.Sprintf("cnk%d", k.Chip.ID) }

func (k *Kernel) trace(at sim.Cycles, detail string) {
	k.Eng.Trace().Record(at, k.tag(), detail)
}

// SyscallEntryCost implements kernel.OS.
func (k *Kernel) SyscallEntryCost() sim.Cycles { return syscallCost }

// NextInterrupt implements kernel.OS: CNK has no timer tick. The only
// interrupts are directed IPIs.
func (k *Kernel) NextInterrupt(t *kernel.Thread) sim.Cycles {
	cs := k.cores[t.CoreID()]
	if len(cs.pendingIPIs) > 0 {
		return k.Eng.Now()
	}
	return sim.Forever
}

// ServiceInterrupt implements kernel.OS.
func (k *Kernel) ServiceInterrupt(t *kernel.Thread) {
	cs := k.cores[t.CoreID()]
	u := k.Chip.UPC
	for len(cs.pendingIPIs) > 0 {
		fn := cs.pendingIPIs[0]
		cs.pendingIPIs = cs.pendingIPIs[1:]
		cs.core.Interrupts++
		cs.core.IPIs++
		u.Inc(cs.core.ID, upc.Interrupt)
		u.Inc(cs.core.ID, upc.IPI)
		u.Trace.Emit(upc.EvIPI, cs.core.ID, k.Eng.Now(), 0)
		ipiStart := k.Eng.Now()
		t.Coro().Sleep(ipiCost)
		fn(t)
		k.obs.Emit(obs.CatSched, "cnk:ipi", k.Chip.ID, t.CoreID(), ipiStart, k.Eng.Now(), 0)
	}
	k.deliverSignals(t)
}

// deliverSignals runs queued user signal handlers on the thread.
func (k *Kernel) deliverSignals(t *kernel.Thread) {
	if t.State == kernel.ThreadExited {
		return
	}
	for _, info := range t.TakePendingSignals() {
		p := k.procs[t.PID()]
		if p == nil {
			return
		}
		if h, ok := p.Sig.Lookup(info.Sig); ok {
			t.Coro().Sleep(200) // signal frame setup
			h(t, info)
			continue
		}
		if info.Sig == kernel.SIGKILL || info.Sig == kernel.SIGSEGV || info.Sig == kernel.SIGBUS {
			k.trace(k.Eng.Now(), fmt.Sprintf("fatal %v in pid %d tid %d", info.Sig, t.PID(), t.TID()))
			k.exitThread(t, 128+int(info.Sig))
		}
	}
}

// MemEvent implements kernel.OS.
func (k *Kernel) MemEvent(t *kernel.Thread, ev hw.MemEvent, va hw.VAddr, write bool) {
	switch ev {
	case hw.EvL1Parity:
		// CNK signals the application so it can recover without a
		// checkpoint/restart cycle (paper Section V-B, the 2007 Gordon
		// Bell run).
		t.PostSignal(kernel.SigInfo{Sig: kernel.SIGBUS, Addr: va, Code: 1})
		k.deliverSignals(t)
	case hw.EvDDRUncorrectable:
		// An uncorrectable DDR error is not survivable: CNK logs the RAS
		// event and kills the job cleanly rather than risk silent data
		// corruption. Recovery is the control system's job — for bringup,
		// a reproducible reset and an identical re-run (contrast the FWK,
		// which scrubs in place with jittery in-kernel recovery).
		if k.Chip.Faults != nil {
			k.Chip.Faults.Report(ras.JobKill, "cnk",
				fmt.Sprintf("uncorrectable DDR error at va %#x, killing pid %d", uint64(va), t.PID()))
		}
		k.trace(k.Eng.Now(), fmt.Sprintf("uncorrectable DDR error at va %#x: killing pid %d", uint64(va), t.PID()))
		k.exitThread(t, 128+int(kernel.SIGBUS))
	default:
		// Permission or guard fault.
		t.PostSignal(kernel.SigInfo{Sig: kernel.SIGSEGV, Addr: va, Code: 2})
		k.deliverSignals(t)
	}
}

// Translate implements kernel.OS: a pure static-map lookup. There are no
// page faults; addresses outside the map are errors. The per-core hardware
// TLB is consulted so the zero-miss property is measured, not assumed.
func (k *Kernel) Translate(t *kernel.Thread, va hw.VAddr, write bool) (hw.PAddr, uint64, hw.Perm, kernel.Errno) {
	core := t.HWCore()
	if pa, perm, ok := core.TLB.Lookup(t.PID(), va); ok {
		p := k.procs[t.PID()]
		contig := p.contigFrom(va)
		if contig == 0 {
			// Not in a layout region: a persist-region hit.
			if e, ok := p.persistEntry(va); ok {
				contig = uint64(e.Size) - uint64(va-e.VBase)
			}
		}
		if contig == 0 {
			return 0, 0, 0, kernel.EFAULT
		}
		return pa, contig, perm, kernel.OK
	}
	// A miss under the static map means the address is unmapped (or a
	// persist region mapped on another core — install lazily, pinned).
	p := k.procs[t.PID()]
	if p != nil {
		if e, ok := p.persistEntry(va); ok {
			core.TLB.InsertPinned(e)
			return e.Translate(va), uint64(e.Size) - uint64(va-e.VBase), e.Perms, kernel.OK
		}
		// A layout-covered address can only miss if hardware invalidated
		// its entry (TLB parity): the static map is fully installed at
		// launch and never evicted. CNK's recovery is a re-install from
		// the map — cheap, deterministic, and logged to RAS.
		for _, e := range p.Layout.TLBEntries(p.PID) {
			if va >= e.VBase && uint64(va-e.VBase) < uint64(e.Size) {
				t.Coro().Sleep(tlbReinstallCost)
				core.TLB.InsertPinned(e)
				if k.Chip.Faults != nil {
					k.Chip.Faults.Report(ras.Recovery, "cnk",
						fmt.Sprintf("reinstalled static TLB entry for va %#x after parity invalidation", uint64(va)))
				}
				return e.Translate(va), uint64(e.Size) - uint64(va-e.VBase), e.Perms, kernel.OK
			}
		}
	}
	return 0, 0, 0, kernel.EFAULT
}

// VtoP implements kernel.OS: under CNK the process "can query the static
// map during initialization and reference it during runtime without having
// to coordinate with CNK" (paper Section IV-C) — zero cost, one contiguous
// range per region.
func (k *Kernel) VtoP(t *kernel.Thread, va hw.VAddr, size uint64) ([]kernel.PhysRange, kernel.Errno) {
	p := k.procs[t.PID()]
	if p == nil {
		return nil, kernel.ESRCH
	}
	prs, ok := p.Layout.PhysRanges(va, size)
	if !ok {
		if pr, ok2 := p.persistRange(va, size); ok2 {
			return pr, kernel.OK
		}
		return nil, kernel.EFAULT
	}
	out := make([]kernel.PhysRange, len(prs))
	for i, r := range prs {
		out[i] = kernel.PhysRange{PA: r.PA, Len: r.Len}
	}
	return out, kernel.OK
}

// RegisterSignal implements kernel.OS (the typed face of sigaction, which
// NPTL needs for thread signalling and cancellation — paper IV-B1).
func (k *Kernel) RegisterSignal(t *kernel.Thread, sig kernel.Signal, h kernel.SigHandler) kernel.Errno {
	p := k.procs[t.PID()]
	if p == nil {
		return kernel.ESRCH
	}
	if sig == kernel.SIGKILL {
		return kernel.EINVAL
	}
	p.Sig.Register(sig, h)
	return kernel.OK
}
