package ctrlsys

import (
	"fmt"

	"bgcnk/internal/apps"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Teardown cost: drain the partition's networks, scrub per-job kernel
// state, release the block. Cheap for the same reason CNK teardown is
// cheap on the real machine — there is almost no state to tear down.
const (
	teardownBase        = sim.Cycles(100_000)
	teardownPerMidplane = sim.Cycles(50_000)
)

// Job is one queued job submission.
type Job struct {
	ID        int
	Name      string
	Midplanes int        // partition size requested
	Work      sim.Cycles // per-rank compute per exchange round
	Exchanges int        // allreduce rounds coupling the ranks
	IOBytes   int        // rank-0 output function-shipped to the I/O node
}

// GenerateJobs draws a seeded stream of n job submissions, sized between
// one midplane and maxMidplanes. Sizes are powers of two (real partitions
// are power-of-two blocks, and the torus allreduce fallback requires it);
// the mix skews small with a tail of machine-sized jobs, which is what
// gives the backfill scheduler something to do.
func GenerateJobs(seed uint64, n, maxMidplanes int) []Job {
	if maxMidplanes < 1 {
		maxMidplanes = 1
	}
	maxPow2 := 1
	for maxPow2*2 <= maxMidplanes {
		maxPow2 *= 2
	}
	rng := sim.NewRNG(seed ^ 0x10b5_7e41)
	jobs := make([]Job, n)
	for i := range jobs {
		mp := 1
		switch rng.Intn(8) {
		case 5, 6:
			mp = 2
		case 7:
			mp = maxPow2
		}
		if mp > maxPow2 {
			mp = maxPow2
		}
		jobs[i] = Job{
			ID:        i,
			Name:      fmt.Sprintf("job%03d", i),
			Midplanes: mp,
			Work:      50_000 + rng.Cycles(150_000),
			Exchanges: 1 + rng.Intn(3),
			IOBytes:   256 << rng.Intn(3),
		}
	}
	return jobs
}

// jobSeed derives the partition seed for a job: a pure function of the
// service seed and the job's ID, never of its placement or of which
// worker simulates it.
func (s *ServiceNode) jobSeed(job Job) uint64 {
	return sim.NewRNG(s.cfg.Seed ^ 0x5e21_11ce).Fork(uint64(job.ID)).Uint64()
}

// JobResult is everything one job's partition produced, expressed
// relative to the partition's boot instant so results are comparable no
// matter when (or where) the job ran.
type JobResult struct {
	Job   Job
	Nodes int
	Boot  BootResult

	Run      sim.Cycles // launch to last exit, boot-relative
	Teardown sim.Cycles

	ExitCodes []int
	Counters  upc.Snapshot // merged across the partition
	RASEvents uint64
	RASHash   uint64 // boot-relative event-stream hash
	Err       string // simulation error, empty on success

	// Resilience accounting (zero unless checkpointing is armed; the
	// fields below describe the restart history, not the final state).
	Attempts        []Attempt
	Restarts        int        // restarts actually performed
	Wasted          sim.Cycles // partition occupancy burned by failed attempts
	RestartOverhead sim.Cycles // Wasted plus service-node backoffs
	BudgetExhausted bool       // failed even after MaxRestarts restarts

	// CrashAborted marks a job whose service node died before committing
	// a result and — journaling being off — could not be recovered. Such
	// jobs are control-system casualties, not job failures: Drain counts
	// them separately and surfaces ErrServiceNodeCrash for each.
	CrashAborted bool
}

// Duration is how long the partition is occupied: boot protocol, the
// (final) run, teardown, and — when the job restarted — everything the
// failed attempts and backoffs burned. The queue scheduler charges this
// much block time.
func (r *JobResult) Duration() sim.Cycles {
	return r.Boot.Total + r.Run + r.Teardown + r.RestartOverhead
}

// Failed reports whether the job ended badly (error or nonzero exit).
func (r *JobResult) Failed() bool {
	if r.Err != "" {
		return true
	}
	for _, c := range r.ExitCodes {
		if c != 0 {
			return true
		}
	}
	return false
}

// jobApp is the workload a queued job runs: compute/memory rounds coupled
// by allreduces, with rank 0 writing its output through the I/O path.
func jobApp(m *machine.Machine, job Job) machine.App {
	return func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		for e := 0; e < job.Exchanges; e++ {
			ctx.Compute(job.Work)
			ctx.Touch(base+hw.VAddr(e*8192), 4096, true)
			if env.MPI != nil && env.Size > 1 {
				if _, errno := apps.AllreduceBench(ctx, env.MPI, 1); errno != kernel.OK {
					ctx.Syscall(kernel.SysExit, uint64(errno))
					return
				}
			}
		}
		if env.Rank == 0 && job.IOBytes > 0 {
			path := append([]byte("/gpfs/"+job.Name), 0)
			ctx.Store(base, path)
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(base), kernel.OCreat|kernel.OWronly, 0644)
			if errno != kernel.OK {
				ctx.Syscall(kernel.SysExit, uint64(errno))
				return
			}
			chunk := 1024
			buf := make([]byte, chunk)
			ctx.Store(base+4096, buf)
			for off := 0; off < job.IOBytes; off += chunk {
				n := chunk
				if job.IOBytes-off < n {
					n = job.IOBytes - off
				}
				ctx.Syscall(kernel.SysWrite, fd, uint64(base+4096), uint64(n))
			}
			ctx.Syscall(kernel.SysClose, fd)
		}
	}
}

// runJob simulates one job on its own freshly booted partition machine
// and collects the result. The partition is destroyed afterwards
// (teardown/reboot between jobs); nothing leaks into the next job.
func (s *ServiceNode) runJob(job Job) *JobResult {
	nodes := job.Midplanes * s.topo.NodesPerMidplane
	p := &Partition{
		ID:        job.ID,
		Base:      -1, // placement is the scheduler's business, not the simulation's
		Midplanes: job.Midplanes,
		Nodes:     nodes,
		Block:     fmt.Sprintf("<%s>", job.Name),
		Kind:      s.cfg.Kind,
	}
	res := &JobResult{Job: job, Nodes: nodes}
	if err := s.BootPartition(p, s.jobSeed(job)); err != nil {
		res.Err = err.Error()
		return res
	}
	defer p.Destroy()
	m := p.M
	res.Boot = p.Boot

	var mark ras.Mark
	if m.RAS != nil {
		mark = m.RAS.Mark()
	}
	boot := bootInstant(m)
	if err := m.Run(jobApp(m, job), kernel.JobParams{}, 0); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Run = m.Eng.Now() - boot
	res.Teardown = teardownBase + teardownPerMidplane*sim.Cycles(job.Midplanes)
	res.ExitCodes = m.ExitCodes()
	res.Counters = m.MergedCounters()
	if m.RAS != nil {
		res.RASEvents = m.RAS.CountSince(mark)
		res.RASHash = m.RAS.HashSince(mark, boot)
	}
	return res
}

func bootInstant(m *machine.Machine) sim.Cycles {
	if len(m.CNKs) > 0 {
		return m.CNKs[0].BootedAt
	}
	return m.FWKs[0].BootedAt
}
