package ctrlsys

import (
	"reflect"
	"testing"

	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
)

// TestParallelDrainMatchesSerial is the subsystem's load-bearing property:
// draining the same queue on a parallel worker pool produces results
// bit-identical to the serial drain — same exit codes, same merged
// counters, same RAS streams, same schedule — at every seed and worker
// count. Run under -race in CI, this is also the data-race gate for the
// worker pool.
func TestParallelDrainMatchesSerial(t *testing.T) {
	cases := []struct {
		name   string
		kind   machine.KernelKind
		seed   uint64
		jobs   int
		faults *ras.Plan
	}{
		{name: "cnk", kind: machine.KindCNK, seed: 3, jobs: 10},
		{name: "cnk-faults", kind: machine.KindCNK, seed: 17, jobs: 8, faults: ras.DefaultPlan(17)},
		{name: "fwk", kind: machine.KindFWK, seed: 42, jobs: 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Topology: Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 2},
				Kind:     tc.kind,
				Seed:     tc.seed,
				Faults:   tc.faults,
				Workers:  1,
			}
			jobs := GenerateJobs(tc.seed, tc.jobs, cfg.Topology.Midplanes())
			serial, err := New(cfg).Drain(jobs)
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Signature()
			for _, workers := range []int{2, 4, 8} {
				pcfg := cfg
				pcfg.Workers = workers
				par, err := New(pcfg).Drain(jobs)
				if err != nil {
					t.Fatal(err)
				}
				if got := par.Signature(); got != want {
					t.Errorf("workers=%d signature %016x != serial %016x", workers, got, want)
					// Narrow it down for the failure report.
					for i := range jobs {
						s, p := serial.Results[i], par.Results[i]
						if s.Run != p.Run || s.RASHash != p.RASHash || s.Err != p.Err ||
							!reflect.DeepEqual(s.ExitCodes, p.ExitCodes) || s.Counters != p.Counters {
							t.Errorf("  job %d diverged: serial{run=%d ras=%016x exits=%v err=%q} parallel{run=%d ras=%016x exits=%v err=%q}",
								i, s.Run, s.RASHash, s.ExitCodes, s.Err, p.Run, p.RASHash, p.ExitCodes, p.Err)
						}
					}
					continue
				}
				// Signature matching is necessary; check the headline fields
				// directly so a hash bug cannot mask a real divergence.
				if par.Merged != serial.Merged {
					t.Errorf("workers=%d merged counters diverged", workers)
				}
				if par.RASHash != serial.RASHash || par.RASEvents != serial.RASEvents {
					t.Errorf("workers=%d RAS stream diverged", workers)
				}
				if par.Failures != serial.Failures {
					t.Errorf("workers=%d failures %d != %d", workers, par.Failures, serial.Failures)
				}
				if !reflect.DeepEqual(par.Sched, serial.Sched) {
					t.Errorf("workers=%d schedule diverged", workers)
				}
			}
		})
	}
}
