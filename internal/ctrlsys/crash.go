package ctrlsys

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"bgcnk/internal/ctrlsys/wal"
	"bgcnk/internal/fs"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
)

// ErrServiceNodeCrash is the typed face of a service-node death. With
// journaling on it never escapes Drain — the crash-only loop recovers and
// finishes the drain — but with journaling off, Drain surfaces one
// wrapped instance per crash-aborted job in DrainResult.Errs (test with
// errors.Is), alongside the ordinary merged errors. It is also what the
// interactive Allocate/BootPartition paths return when the injector fires
// under them.
var ErrServiceNodeCrash = errors.New("ctrlsys: service node crashed")

// Control-plane cost model, in simulated cycles on the service node's
// clock: appending one journal record, noticing a dead service node, and
// replaying a journal of a given size. These feed CrashStats and the
// recovery-latency sweep in cmd/resbench; they never touch partition
// simulations, so they cannot perturb job results.
const (
	journalAppendCost = sim.Cycles(2_000)
	crashDetectCost   = sim.Cycles(1_000_000)
	recoverBaseCost   = sim.Cycles(5_000_000)
	recoverPerRecord  = sim.Cycles(2_000)
	recoverPerOrphan  = sim.Cycles(500_000)
)

// CrashStats accounts the crash-only machinery across a drain: every
// injected death, every recovery, and what reconciliation found. All of
// it is deterministic for a given (config, seeds) but excluded from
// DrainResult.Signature — the whole point is that the signature matches
// the crash-free drain while these do not.
type CrashStats struct {
	Crashes    int
	ByClass    [ras.NumCrashClasses]int
	Recoveries int

	RecordsReplayed int
	OrphansKilled   int
	// Resumed counts orphan kills that left a journaled checkpoint to
	// resume from; Requeued counts those restarted from scratch.
	Resumed  int
	Requeued int

	// RecoveryLatency is total modelled service-node downtime across all
	// recoveries (crash detection + replay + reconciliation).
	RecoveryLatency sim.Cycles
}

// JournalStats describes the durable journal at the end of a drain.
type JournalStats struct {
	Records  int
	Bytes    int
	Segments int
	// TornDropped counts torn tail records dropped (and repaired) across
	// all recoveries — one per mid-checkpoint-commit crash.
	TornDropped int
}

// world is the state that survives a service-node death: the control
// store (and the journal on it), the crash injector whose generation
// counts deaths, the control-plane RAS log, and the modelled control
// clock. ServiceNode incarnations come and go; the world persists.
type world struct {
	store *fs.FS
	jn    *wal.Journal
	inj   *ras.CrashInjector
	log   *ras.Log
	now   sim.Cycles
	vlsn  uint64 // virtual LSN sequence when journaling is off
	torn  int
	crash CrashStats
	st    *drainState
}

func newWorld(cfg Config) *world {
	w := &world{
		store: fs.New(),
		inj:   ras.NewCrashInjector(cfg.Crashes),
		log:   ras.NewLog(),
		st:    newDrainState(),
	}
	if cfg.Journal.Enabled {
		jc := cfg.Journal.normalized()
		jn, err := wal.Create(w.store, jc.Dir, jc.SegmentBytes)
		if err != nil {
			// Impossible on a freshly created store; fail loudly if the
			// wal package's contract ever changes.
			panic(fmt.Sprintf("ctrlsys: create journal: %v", err))
		}
		w.jn = jn
	}
	return w
}

// Store exposes the service node's control store — the filesystem holding
// the journal — so a successor incarnation can be built over it with
// Recover. Nil when neither journaling nor crash injection is armed.
func (s *ServiceNode) Store() *fs.FS {
	if s.w == nil {
		return nil
	}
	return s.w.store
}

// ControlLog returns the control-plane RAS log (service crashes and
// recoveries); nil when the crash-only machinery is unarmed.
func (s *ServiceNode) ControlLog() *ras.Log {
	if s.w == nil {
		return nil
	}
	return s.w.log
}

// appendRec is the single gate every scheduler state transition passes
// through: consult the crash injector at the record's LSN, then make the
// record durable. A firing injector decides how much of the record
// survives — nothing (pre-append), all of it (post-append: durable but
// never applied in memory), or a torn prefix (mid-checkpoint-commit) —
// logs the death, and returns ErrServiceNodeCrash.
func (s *ServiceNode) appendRec(kind uint8, body []byte, site ras.CrashSite) error {
	w := s.w
	lsn := w.vlsn + 1
	if w.jn != nil {
		lsn = w.jn.NextLSN()
	}
	if class, died := w.inj.At(lsn, site); died {
		if w.jn != nil {
			switch class {
			case ras.CrashPreAppend:
				// The record never reached the store.
			case ras.CrashMidCkptCommit:
				if err := w.jn.AppendTorn(kind, body); err != nil {
					return err
				}
			default:
				// Post-append flavors: durable, but the incarnation dies
				// before applying it.
				if _, err := w.jn.Append(kind, body); err != nil {
					return err
				}
			}
		}
		w.crash.Crashes++
		w.crash.ByClass[class]++
		w.now += crashDetectCost
		w.log.Append(ras.Event{At: w.now, Node: -1, Comp: "svcnode",
			Class: ras.ServiceCrash, Detail: class.String()})
		return fmt.Errorf("%w at LSN %d (%s)", ErrServiceNodeCrash, lsn, class)
	}
	if w.jn != nil {
		if _, err := w.jn.Append(kind, body); err != nil {
			return err
		}
	} else {
		w.vlsn++
	}
	w.now += journalAppendCost
	return nil
}

// drainState is everything replay reconstructs: which transitions are
// durable for which jobs and partitions.
type drainState struct {
	submitted   map[int]bool
	started     map[int]bool // start record with no completion yet
	completed   map[int]*JobResult
	resume      map[int]*resumePoint
	struck      map[int]map[int]bool // job ID -> attempt index committed
	strikes     map[int]int          // midplane -> strike count
	blacklisted map[int]bool
	allocs      map[int][2]int // real partition ID -> {base, midplanes}
	maxPID      int
	recovering  bool // RecoverBegin seen without a matching RecoverEnd
}

func newDrainState() *drainState {
	return &drainState{
		submitted:   make(map[int]bool),
		started:     make(map[int]bool),
		completed:   make(map[int]*JobResult),
		resume:      make(map[int]*resumePoint),
		struck:      make(map[int]map[int]bool),
		strikes:     make(map[int]int),
		blacklisted: make(map[int]bool),
		allocs:      make(map[int][2]int),
		maxPID:      -1,
	}
}

func (st *drainState) markStruck(job, attempt int) {
	m := st.struck[job]
	if m == nil {
		m = make(map[int]bool)
		st.struck[job] = m
	}
	m[attempt] = true
}

// applyRecord replays one journal record into the state. Replay is
// strict: an undecodable body or unknown kind rejects the journal.
func (st *drainState) applyRecord(r wal.Record) error {
	switch r.Kind {
	case recJobSubmit:
		job, err := unmarshalJob(r.Body)
		if err != nil {
			return err
		}
		st.submitted[job.ID] = true
	case recPartAlloc:
		id, base, mp, err := decodeTriple(r.Body)
		if err != nil {
			return err
		}
		if id >= 0 && base >= 0 {
			st.allocs[id] = [2]int{base, mp}
			if id > st.maxPID {
				st.maxPID = id
			}
		}
	case recPartBoot:
		if _, _, err := decodeBoot(r.Body); err != nil {
			return err
		}
	case recJobStart:
		id, err := decodeID(r.Body)
		if err != nil {
			return err
		}
		st.started[id] = true
	case recCkptCommit:
		id, rp, err := decodeCkptCommit(r.Body)
		if err != nil {
			return err
		}
		st.resume[id] = rp
	case recJobComplete:
		id, res, err := decodeComplete(r.Body)
		if err != nil {
			return err
		}
		st.completed[id] = res
		delete(st.started, id)
		delete(st.resume, id)
	case recPartFree:
		id, err := decodeID(r.Body)
		if err != nil {
			return err
		}
		if id >= 0 {
			delete(st.allocs, id)
		}
	case recOrphanKill:
		id, err := decodeID(r.Body)
		if err != nil {
			return err
		}
		delete(st.started, id)
	case recStrike:
		id, attempt, mp, err := decodeTriple(r.Body)
		if err != nil {
			return err
		}
		st.markStruck(id, attempt)
		st.strikes[mp]++
	case recBlacklist:
		mp, err := decodeID(r.Body)
		if err != nil {
			return err
		}
		st.blacklisted[mp] = true
	case recRecoverBegin:
		st.recovering = true
	case recRecoverEnd:
		st.recovering = false
	default:
		return fmt.Errorf("ctrlsys: journal replay: unknown record kind %d at LSN %d", r.Kind, r.LSN)
	}
	return nil
}

// drainJournaled is the crash-only drain loop: run passes until one
// completes; on a service-node death, either recover from the journal and
// keep going, or — with journaling off — surface the wreck with typed
// errors. Recovery itself may die (double crash); it is simply retried,
// and the injector's MaxCrashes cap guarantees the loop terminates.
func (s *ServiceNode) drainJournaled(jobs []Job, workers int) (*DrainResult, error) {
	w := s.w
	start := time.Now()
	for {
		err := s.drainPass(jobs, workers)
		if err == nil {
			res := &DrainResult{Results: make([]*JobResult, len(jobs)), Workers: workers}
			for i, job := range jobs {
				res.Results[i] = w.st.completed[job.ID]
			}
			res.Wall = time.Since(start)
			s.mergeResults(res, jobs)
			s.attachStats(res)
			return res, nil
		}
		if !errors.Is(err, ErrServiceNodeCrash) {
			return nil, err
		}
		if w.jn == nil {
			return s.assembleAborted(jobs, workers, start, err)
		}
		for {
			_, rerr := s.recoverInPlace(nil)
			if rerr == nil {
				break
			}
			if !errors.Is(rerr, ErrServiceNodeCrash) {
				return nil, rerr
			}
			// Double crash: recovery died writing its own reconciliation
			// records. Come back again — replay is idempotent.
		}
	}
}

func (s *ServiceNode) attachStats(res *DrainResult) {
	w := s.w
	res.Crash = w.crash
	if w.jn != nil {
		res.Journal = JournalStats{
			Records:     w.jn.Records(),
			Bytes:       w.jn.Bytes(),
			Segments:    w.jn.Segments(),
			TornDropped: w.torn,
		}
	}
}

// assembleAborted builds the partial result of a crash with journaling
// off: committed jobs keep their results; everything else is a
// crash-aborted stub whose Errs entry wraps ErrServiceNodeCrash.
func (s *ServiceNode) assembleAborted(jobs []Job, workers int, start time.Time, cause error) (*DrainResult, error) {
	res := &DrainResult{Results: make([]*JobResult, len(jobs)), Workers: workers}
	for i, job := range jobs {
		if r := s.w.st.completed[job.ID]; r != nil {
			res.Results[i] = r
			continue
		}
		res.Results[i] = &JobResult{
			Job:          job,
			Nodes:        job.Midplanes * s.topo.NodesPerMidplane,
			Err:          cause.Error(),
			CrashAborted: true,
		}
	}
	res.Wall = time.Since(start)
	s.mergeResults(res, jobs)
	s.attachStats(res)
	return res, nil
}

// drainPass is one service-node incarnation's attempt to finish the
// drain. Simulation fans out on the worker pool as ever; durability is a
// strictly serial commit pipeline in job-ID order, so the journal's LSN
// stream — and with it the crash schedule — is identical at every worker
// count.
func (s *ServiceNode) drainPass(jobs []Job, workers int) error {
	st := s.w.st
	for _, job := range jobs {
		if st.submitted[job.ID] {
			continue
		}
		if err := s.appendRec(recJobSubmit, marshalJob(job), ras.SiteAppend); err != nil {
			return err
		}
		st.submitted[job.ID] = true
	}
	var pend []Job
	for _, job := range jobs {
		if st.completed[job.ID] == nil {
			pend = append(pend, job)
		}
	}
	if len(pend) == 0 {
		return nil
	}

	type simOut struct {
		res     *JobResult
		commits [][]byte
	}
	outs := replica.Map(workers, len(pend), func(i int) *simOut {
		job := pend[i]
		if s.cfg.Ckpt.Enabled {
			o := &simOut{}
			o.res = s.runJobResilientFrom(job, st.resume[job.ID], func(b []byte) {
				o.commits = append(o.commits, b)
			})
			return o
		}
		return &simOut{res: s.runJob(job)}
	})

	ck := s.cfg.Ckpt.normalized()
	for i, job := range pend {
		o := outs[i]
		vid := -1 - job.ID // drain partitions are virtual: negative ID, base -1
		if err := s.appendRec(recPartAlloc, tripleBody(vid, -1, job.Midplanes), ras.SiteAppend); err != nil {
			return err
		}
		if err := s.appendRec(recPartBoot, bootBody(vid, s.jobSeed(job)), ras.SiteBoot); err != nil {
			return err
		}
		if err := s.appendRec(recJobStart, idBody(job.ID), ras.SiteAppend); err != nil {
			return err
		}
		st.started[job.ID] = true
		for _, body := range o.commits {
			if err := s.appendRec(recCkptCommit, ckptCommitRaw(job.ID, body), ras.SiteCkptCommit); err != nil {
				return err
			}
		}
		for idx, a := range o.res.Attempts {
			if a.Completed || a.FaultMidplane < 0 || st.struck[job.ID][idx] {
				continue
			}
			if err := s.appendRec(recStrike, tripleBody(job.ID, idx, a.FaultMidplane), ras.SiteAppend); err != nil {
				return err
			}
			st.markStruck(job.ID, idx)
			st.strikes[a.FaultMidplane]++
			if st.strikes[a.FaultMidplane] >= ck.BlacklistAfter && !st.blacklisted[a.FaultMidplane] {
				if err := s.appendRec(recBlacklist, idBody(a.FaultMidplane), ras.SiteAppend); err != nil {
					return err
				}
				st.blacklisted[a.FaultMidplane] = true
			}
		}
		if err := s.appendRec(recJobComplete, completeBody(job.ID, o.res), ras.SiteAppend); err != nil {
			return err
		}
		st.completed[job.ID] = o.res
		delete(st.started, job.ID)
		delete(st.resume, job.ID)
		if err := s.appendRec(recPartFree, idBody(vid), ras.SiteAppend); err != nil {
			return err
		}
	}
	return nil
}

// RecoveryReport is what one recovery found and did.
type RecoveryReport struct {
	Records     int // journal records replayed
	TornDropped int

	Submitted int // jobs with durable submit records
	Completed int // jobs with durable results
	Pending   int // submitted but not completed

	OrphansKilled int // started-but-unfinished jobs killed
	Resumed       int // orphans with a journaled checkpoint to resume from
	Requeued      int // orphans restarted from scratch

	LiveScanned   int // live partitions scanned during reconciliation
	LiveDestroyed int

	Latency sim.Cycles // modelled downtime this recovery cost
}

// recoverInPlace is one recovery incarnation: reopen the journal (which
// repairs any torn tail), replay every record into a fresh state, then
// reconcile — scan and tear down live partitions, kill orphaned jobs,
// bracket the reconciliation in RecoverBegin/End records. Reconciliation
// appends pass through the crash injector too (SiteRecovery), so recovery
// itself can die; every step is idempotent under replay, so the retry
// simply picks up where the corpse left off.
func (s *ServiceNode) recoverInPlace(live []*Partition) (*RecoveryReport, error) {
	w := s.w
	jc := s.cfg.Journal.normalized()
	jn, recs, err := wal.Open(w.store, jc.Dir, jc.SegmentBytes)
	if err != nil {
		return nil, err
	}
	w.jn = jn
	w.torn += jn.Torn()
	st := newDrainState()
	for _, r := range recs {
		if err := st.applyRecord(r); err != nil {
			return nil, err
		}
	}
	w.st = st
	w.crash.Recoveries++
	w.crash.RecordsReplayed += len(recs)

	rep := &RecoveryReport{Records: len(recs), TornDropped: jn.Torn()}
	rep.Submitted = len(st.submitted)
	rep.Completed = len(st.completed)
	rep.Pending = rep.Submitted - rep.Completed

	// Rebuild the midplane map from the durable allocations.
	for i := range s.owner {
		s.owner[i] = -1
	}
	s.nextPID = st.maxPID + 1
	for id, ab := range st.allocs {
		for i := ab[0]; i < ab[0]+ab[1] && i < len(s.owner); i++ {
			s.owner[i] = id
		}
	}

	if err := s.appendRec(recRecoverBegin, nil, ras.SiteRecovery); err != nil {
		return nil, err
	}

	// Reconcile live partitions: the dead incarnation's booted blocks.
	// Whatever their machines were doing, their controlling state is
	// gone; scan for the record, kill the orphaned job, free the block.
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	for _, p := range live {
		if p == nil {
			continue
		}
		rep.LiveScanned++
		if p.M != nil {
			p.M.Scan() // read-only; harvested for the RAS trail below
		}
		p.Destroy()
		if _, ok := st.allocs[p.ID]; ok {
			if err := s.appendRec(recPartFree, idBody(p.ID), ras.SiteRecovery); err != nil {
				return nil, err
			}
			delete(st.allocs, p.ID)
			for i := p.Base; i < p.Base+p.Midplanes && i < len(s.owner); i++ {
				if i >= 0 && s.owner[i] == p.ID {
					s.owner[i] = -1
				}
			}
		}
		rep.LiveDestroyed++
	}

	// Kill orphaned jobs: a start record with no completion. The job
	// itself is requeued — with its journaled resume point if one
	// committed, from scratch otherwise.
	var orphans []int
	for id := range st.started {
		orphans = append(orphans, id)
	}
	sort.Ints(orphans)
	for _, id := range orphans {
		if err := s.appendRec(recOrphanKill, idBody(id), ras.SiteRecovery); err != nil {
			return nil, err
		}
		delete(st.started, id)
		w.crash.OrphansKilled++
		rep.OrphansKilled++
		if st.resume[id] != nil {
			w.crash.Resumed++
			rep.Resumed++
		} else {
			w.crash.Requeued++
			rep.Requeued++
		}
	}
	if err := s.appendRec(recRecoverEnd, nil, ras.SiteRecovery); err != nil {
		return nil, err
	}

	lat := recoverBaseCost + recoverPerRecord*sim.Cycles(len(recs)) +
		recoverPerOrphan*sim.Cycles(rep.OrphansKilled)
	w.now += lat
	w.crash.RecoveryLatency += lat
	rep.Latency = lat
	w.log.Append(ras.Event{At: w.now, Node: -1, Comp: "svcnode",
		Class:  ras.ServiceRecovery,
		Detail: fmt.Sprintf("replayed %d records, killed %d orphans", len(recs), rep.OrphansKilled)})
	return rep, nil
}

// Recover builds a successor service node over a dead one's control
// store: open and replay the journal, reconcile against whatever live
// partitions survived the crash (their machines are scanned and torn
// down, their jobs orphan-killed), and return a node ready to Drain the
// same queue — completed jobs keep their durable results; interrupted
// ones resume from their last journaled checkpoint; never-started ones
// run fresh. cfg must arm the journal and should otherwise match the
// dead node's (same seed, kernel, topology — recovery cannot conjure
// results for a queue it never journaled).
func Recover(cfg Config, store *fs.FS, live []*Partition) (*ServiceNode, *RecoveryReport, error) {
	if !cfg.Journal.Enabled {
		return nil, nil, fmt.Errorf("ctrlsys: Recover needs Journal.Enabled")
	}
	if store == nil {
		return nil, nil, fmt.Errorf("ctrlsys: Recover needs the dead node's control store")
	}
	topo := cfg.Topology.normalized()
	s := &ServiceNode{cfg: cfg, topo: topo, owner: make([]int, topo.Midplanes())}
	for i := range s.owner {
		s.owner[i] = -1
	}
	s.w = &world{
		store: store,
		inj:   ras.NewCrashInjector(cfg.Crashes),
		log:   ras.NewLog(),
		st:    newDrainState(),
	}
	// With a crash plan armed, recovery itself is a target. Each retry is
	// a new incarnation over the SAME world — the injector's generation
	// advances on every fire, so the schedule moves and the loop
	// terminates (a fresh Recover call per attempt would rebuild a fresh
	// injector and die identically forever). Retries re-present the live
	// list: partitions the dead recovery already freed are skipped (their
	// free records replay out of st.allocs), the rest get torn down now.
	for {
		rep, err := s.recoverInPlace(live)
		if err == nil {
			return s, rep, nil
		}
		if !errors.Is(err, ErrServiceNodeCrash) {
			return nil, nil, err
		}
	}
}
