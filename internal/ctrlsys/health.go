package ctrlsys

import (
	"sort"

	"bgcnk/internal/sim"
)

// ScheduleResilient replays the queue in control time with the resilience
// protocol visible to the scheduler: a job's failed attempt frees its
// block, the midplane the killing fault localized to takes a strike and
// is drained (blacklisted) once it accumulates cfg.BlacklistAfter of
// them, and the job re-enters at the head of the queue after its backoff
// — landing on whatever first-fit block the degraded machine offers,
// which is how a restart migrates away from sick hardware. EASY backfill
// keeps scheduling around the drained midplanes. Draining is capped so a
// contiguous healthy block large enough for the biggest queued job always
// survives (the control system never drains itself into a machine that
// cannot run its own queue).
//
// Everything ties on (time, job ID) and consumes only the deterministic
// per-attempt results, so the schedule is a pure function of its inputs.
func ScheduleResilient(topo Topology, jobs []Job, results []*JobResult, cfg CkptConfig) Schedule {
	total := topo.Midplanes()
	free := make([]bool, total)
	for i := range free {
		free[i] = true
	}
	drained := make([]bool, total)
	strikes := make([]int, total)

	spanOf := func(j Job) int {
		s := j.Midplanes
		if s > total {
			s = total
		}
		if s <= 0 {
			s = 1
		}
		return s
	}
	maxSpan := 1
	for _, j := range jobs {
		if s := spanOf(j); s > maxSpan {
			maxSpan = s
		}
	}

	// firstFit over midplanes that are both free and healthy.
	firstFit := func(fr []bool, span int) (int, bool) {
		run := 0
		for i := 0; i < total; i++ {
			if !fr[i] || drained[i] {
				run = 0
				continue
			}
			run++
			if run == span {
				return i - span + 1, true
			}
		}
		return 0, false
	}
	// healthyFit reports whether a span fits ignoring occupancy — the
	// drain-cap feasibility check.
	healthyFit := func(span int) bool {
		run := 0
		for i := 0; i < total; i++ {
			if drained[i] {
				run = 0
				continue
			}
			run++
			if run == span {
				return true
			}
		}
		return false
	}

	// attemptDur is attempt a's partition occupancy for job id.
	attemptDur := func(id, a int) sim.Cycles {
		r := results[id]
		if a < len(r.Attempts) {
			at := r.Attempts[a]
			d := at.Boot + at.Run + teardownBase + teardownPerMidplane*sim.Cycles(spanOf(r.Job))
			if d <= 0 {
				d = 1
			}
			return d
		}
		d := r.Duration()
		if d <= 0 {
			d = 1
		}
		return d
	}
	attempts := func(id int) int {
		if n := len(results[id].Attempts); n > 0 {
			return n
		}
		return 1
	}

	type item struct {
		jobID   int
		attempt int
		readyAt sim.Cycles
	}
	type running struct {
		jobID   int
		attempt int
		base    int
		span    int
		end     sim.Cycles
	}

	sched := Schedule{Placements: make([]Placement, len(jobs))}
	queue := make([]item, 0, len(jobs))
	for _, j := range jobs {
		queue = append(queue, item{jobID: j.ID})
	}
	var live []running
	now := sim.Cycles(0)
	var busyCycles sim.Cycles

	finish := func(r running) {
		for i := r.base; i < r.base+r.span; i++ {
			free[i] = true
		}
		res := results[r.jobID]
		last := r.attempt == attempts(r.jobID)-1
		if !last {
			// The attempt failed: strike (and maybe drain) the midplane
			// the fault localized to, then resubmit at the queue head
			// after the service node's backoff.
			at := res.Attempts[r.attempt]
			if at.FaultMidplane >= 0 && at.FaultMidplane < r.span {
				mp := r.base + at.FaultMidplane
				strikes[mp]++
				if strikes[mp] >= cfg.BlacklistAfter && !drained[mp] {
					drained[mp] = true
					if !healthyFit(maxSpan) {
						drained[mp] = false // drain cap: keep the machine schedulable
					} else {
						sched.Drained = append(sched.Drained, mp)
					}
				}
			}
			backoff := at.Backoff
			queue = append([]item{{jobID: r.jobID, attempt: r.attempt + 1, readyAt: r.end + backoff}}, queue...)
			sched.Resubmits++
		}
	}

	place := func(it item, base int, backfilled bool) {
		span := spanOf(results[it.jobID].Job)
		d := attemptDur(it.jobID, it.attempt)
		sched.Placements[it.jobID] = Placement{
			JobID: it.jobID, Base: base, Midplanes: span,
			Start: now, End: now + d, Backfilled: backfilled,
			Attempt: it.attempt,
		}
		for i := base; i < base+span; i++ {
			free[i] = false
		}
		live = append(live, running{jobID: it.jobID, attempt: it.attempt, base: base, span: span, end: now + d})
		busyCycles += d * sim.Cycles(span)
		if backfilled {
			sched.Backfilled++
		}
		if now+d > sched.Makespan {
			sched.Makespan = now + d
		}
	}

	for len(queue) > 0 || len(live) > 0 {
		// Start queue heads while they are ready and fit.
		started := true
		for started && len(queue) > 0 {
			started = false
			head := queue[0]
			if head.readyAt <= now {
				if base, ok := firstFit(free, spanOf(results[head.jobID].Job)); ok {
					place(head, base, false)
					queue = queue[1:]
					started = true
				}
			}
		}
		if len(queue) > 0 {
			head := queue[0]
			// The head's reservation: when it could start, replaying
			// future frees in (end, job ID) order, never before readyAt.
			shadow := head.readyAt
			if _, ok := firstFit(free, spanOf(results[head.jobID].Job)); !ok {
				shadowFree := make([]bool, total)
				copy(shadowFree, free)
				ordered := make([]running, len(live))
				copy(ordered, live)
				sort.Slice(ordered, func(i, j int) bool {
					if ordered[i].end != ordered[j].end {
						return ordered[i].end < ordered[j].end
					}
					return ordered[i].jobID < ordered[j].jobID
				})
				shadow = sim.Forever
				for _, r := range ordered {
					for i := r.base; i < r.base+r.span; i++ {
						shadowFree[i] = true
					}
					if base, ok := firstFit(shadowFree, spanOf(results[head.jobID].Job)); ok {
						_ = base
						shadow = r.end
						break
					}
				}
				if shadow < head.readyAt {
					shadow = head.readyAt
				}
			}
			// EASY backfill among ready later items.
			for i := 1; i < len(queue); i++ {
				it := queue[i]
				if it.readyAt > now {
					continue
				}
				if shadow != sim.Forever && now+attemptDur(it.jobID, it.attempt) > shadow {
					continue
				}
				if base, ok := firstFit(free, spanOf(results[it.jobID].Job)); ok {
					place(it, base, true)
					queue = append(queue[:i], queue[i+1:]...)
					i--
				}
			}
		}
		if len(live) == 0 {
			if len(queue) == 0 {
				break
			}
			// Nothing running and nothing started: the only thing that can
			// unblock the queue is a backoff expiring. An already-ready item
			// that did not start is waiting on the head's reservation, so
			// only future ready times count here.
			next := sim.Forever
			for _, it := range queue {
				if it.readyAt > now && it.readyAt < next {
					next = it.readyAt
				}
			}
			if next == sim.Forever {
				break // defensive: every item ready yet none fits (should not happen)
			}
			now = next
			continue
		}
		// Advance to the earliest completion; free its block and process
		// failures (all completions at that instant, job-ID order).
		earliest := sim.Forever
		for _, r := range live {
			if r.end < earliest {
				earliest = r.end
			}
		}
		now = earliest
		done := make([]running, 0, 1)
		next := live[:0]
		for _, r := range live {
			if r.end <= now {
				done = append(done, r)
				continue
			}
			next = append(next, r)
		}
		live = next
		sort.Slice(done, func(i, j int) bool { return done[i].jobID < done[j].jobID })
		for _, r := range done {
			finish(r)
		}
	}
	if sched.Makespan > 0 {
		sched.Utilization = float64(busyCycles) / (float64(sched.Makespan) * float64(total))
	}
	return sched
}
