// Package ctrlsys models the Blue Gene control system: the service node
// that owns the rack/midplane/node hierarchy, allocates electrically
// isolated partitions, boots them (CNK by broadcasting a small image over
// the collective network, an FWK by staggered per-node image loads),
// drains a job queue across partitions with teardown/reboot between jobs,
// and tears everything down again. The paper's CNK story is inseparable
// from this layer: "CNK boots a 72-rack machine in minutes" is a
// control-system property as much as a kernel one (Section III), and job
// launch/teardown at scale is what the lightweight kernel's tiny state
// makes cheap.
//
// Every partition is backed by its own machine.Machine — its own event
// engine, RNG streams forked from the service seed by job ID, and its own
// RAS log — so partitions are fully isolated simulations. That isolation
// is what makes a job's result a pure function of its job spec,
// independent of which midplanes it lands on or which worker simulates
// it, which in turn is what lets Drain run partitions in parallel on a
// bounded worker pool and still merge bit-identical results in job-ID
// order (deterministic parallelism in the spirit of Ford & Cox's
// deterministic spaces: parallelize first, then commit in a fixed order).
package ctrlsys

import (
	"fmt"

	"bgcnk/internal/ion"
	"bgcnk/internal/machine"
	"bgcnk/internal/obs"
	"bgcnk/internal/ras"
)

// Topology is the machine's physical hierarchy as the service node sees
// it. Partitions are allocated in whole midplanes (the real machine's
// allocation granularity for electrical isolation); a block of contiguous
// midplanes becomes one isolated partition.
type Topology struct {
	Racks            int
	MidplanesPerRack int
	NodesPerMidplane int
}

// DefaultTopology is a small two-rack system, big enough to exercise
// fragmentation and backfill while keeping partition simulations quick.
func DefaultTopology() Topology {
	return Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 4}
}

func (t Topology) normalized() Topology {
	if t.Racks <= 0 {
		t.Racks = 2
	}
	if t.MidplanesPerRack <= 0 {
		t.MidplanesPerRack = 2
	}
	if t.NodesPerMidplane <= 0 {
		t.NodesPerMidplane = 4
	}
	return t
}

// Midplanes returns the total midplane count.
func (t Topology) Midplanes() int { return t.Racks * t.MidplanesPerRack }

// Nodes returns the total compute-node count.
func (t Topology) Nodes() int { return t.Midplanes() * t.NodesPerMidplane }

// BlockName names a midplane in control-system notation ("R01-M2").
func (t Topology) BlockName(midplane int) string {
	return fmt.Sprintf("R%02d-M%d", midplane/t.MidplanesPerRack, midplane%t.MidplanesPerRack)
}

// Config describes the service node.
type Config struct {
	Topology Topology
	Kind     machine.KernelKind
	// Seed determines everything: the job stream, each partition
	// machine's kernel seed, and each job's fault schedule. Partition
	// seeds are forked per job ID, never per placement, so a job's
	// simulation is placement-independent.
	Seed uint64
	// Workers bounds how many partition simulations run concurrently in
	// Drain; 0 or 1 is serial. Results are identical at any width.
	Workers int
	// Faults, when non-nil and enabled, arms each partition's fault
	// injector with a per-job fork of the plan's seed.
	Faults *ras.Plan
	// Stripped selects the stripped FWK image (smaller, faster boot).
	Stripped bool
	// CNsPerION sets each partition's compute-to-I/O-node ratio (0 = one
	// ION per partition).
	CNsPerION int
	// ION, when non-nil, arms the I/O-node aggregation subsystem (shared
	// uplink, ingress backpressure, write-back cache) on every partition.
	ION *ion.Config
	// Ckpt arms checkpoint/restart: jobs snapshot at exchange-round
	// boundaries and fault-killed jobs restart from their last image.
	Ckpt CkptConfig
	// Journal arms the write-ahead journal: every scheduler state
	// transition is made durable on the control store before it is
	// applied, and a crashed service node recovers by replay (crash-only
	// operation). Off, the service node is the single point of failure
	// it always was.
	Journal JournalConfig
	// Crashes, when non-nil and enabled, arms deterministic service-node
	// crash injection: seeded deaths keyed to journal LSNs. With Journal
	// on, Drain recovers and completes bit-identically to a crash-free
	// drain; with Journal off, crash-aborted jobs surface
	// ErrServiceNodeCrash in DrainResult.Errs.
	Crashes *ras.CrashPlan
	// Obs, when non-nil, arms the service node's span recorder: Drain
	// emits each job's lifecycle (submit/boot/run/restart/teardown) as
	// control-time spans, serially in job-ID order after the merge, so
	// the trace is byte-identical at every worker count.
	Obs *obs.Config
}

// ServiceNode is the control system's brain: it owns the midplane map and
// hands out partitions.
type ServiceNode struct {
	cfg  Config
	topo Topology

	// owner maps each midplane to the partition ID occupying it, or -1.
	owner   []int
	nextPID int

	// w is the crash-survivable world (control store, journal, crash
	// injector, drain state); nil unless Journal or Crashes is armed.
	w *world

	// obs is the job-lifecycle span recorder; nil unless Config.Obs is
	// armed.
	obs *obs.Recorder
}

// New builds a service node over the configured topology.
func New(cfg Config) *ServiceNode {
	topo := cfg.Topology.normalized()
	s := &ServiceNode{cfg: cfg, topo: topo, owner: make([]int, topo.Midplanes())}
	for i := range s.owner {
		s.owner[i] = -1
	}
	if cfg.Journal.Enabled || cfg.Crashes.Enabled() {
		s.w = newWorld(cfg)
	}
	if cfg.Obs != nil {
		s.obs = obs.New(*cfg.Obs)
		s.obs.SetPidPrefix("job")
	}
	return s
}

// Topology returns the (normalized) machine topology.
func (s *ServiceNode) Topology() Topology { return s.topo }

// FreeMidplanes counts currently unallocated midplanes.
func (s *ServiceNode) FreeMidplanes() int {
	n := 0
	for _, o := range s.owner {
		if o == -1 {
			n++
		}
	}
	return n
}

// Partition is one isolated block of midplanes. Between Allocate and
// Release it owns its midplanes exclusively; after BootPartition it is
// backed by a live machine.Machine with its own engine and RAS log.
type Partition struct {
	ID        int
	Base      int // first midplane index
	Midplanes int
	Nodes     int
	Block     string // control-system name, e.g. "R00-M1" or "R00-M1+2"
	Kind      machine.KernelKind
	Seed      uint64 // the partition machine's kernel seed

	// Boot is the modelled boot-protocol cost (set by BootPartition).
	Boot BootResult
	// M is the backing machine (set by BootPartition, nil after Destroy).
	M *machine.Machine
}

// Allocate reserves a contiguous block of midplanes (first fit, the real
// control system's electrical-isolation constraint) and returns the
// partition descriptor. The partition is not yet booted.
func (s *ServiceNode) Allocate(midplanes int) (*Partition, error) {
	if midplanes <= 0 {
		midplanes = 1
	}
	if midplanes > s.topo.Midplanes() {
		return nil, fmt.Errorf("ctrlsys: partition of %d midplanes exceeds machine (%d)",
			midplanes, s.topo.Midplanes())
	}
	base, ok := s.firstFit(midplanes)
	if !ok {
		return nil, fmt.Errorf("ctrlsys: no contiguous block of %d midplanes free", midplanes)
	}
	p := &Partition{
		ID:        s.nextPID,
		Base:      base,
		Midplanes: midplanes,
		Nodes:     midplanes * s.topo.NodesPerMidplane,
		Block:     s.blockName(base, midplanes),
		Kind:      s.cfg.Kind,
	}
	// Write-ahead: the allocation is durable before the midplane map
	// changes, so a crash here loses nothing recovery has to undo.
	if s.w != nil {
		if err := s.appendRec(recPartAlloc, tripleBody(p.ID, base, midplanes), ras.SiteAppend); err != nil {
			return nil, err
		}
	}
	s.nextPID++
	for i := base; i < base+midplanes; i++ {
		s.owner[i] = p.ID
	}
	return p, nil
}

func (s *ServiceNode) firstFit(span int) (int, bool) {
	run := 0
	for i, o := range s.owner {
		if o != -1 {
			run = 0
			continue
		}
		run++
		if run == span {
			return i - span + 1, true
		}
	}
	return 0, false
}

func (s *ServiceNode) blockName(base, span int) string {
	name := s.topo.BlockName(base)
	if span > 1 {
		name = fmt.Sprintf("%s+%d", name, span)
	}
	return name
}

// Release returns the partition's midplanes to the free pool and shuts
// down its backing machine if one is still up.
func (s *ServiceNode) Release(p *Partition) {
	p.Destroy()
	if s.w != nil && p.Base >= 0 {
		// A crash on this append leaves the allocation durable; the free
		// happens anyway in memory, and recovery re-frees it from the
		// journal — releasing twice is idempotent.
		_ = s.appendRec(recPartFree, idBody(p.ID), ras.SiteAppend)
	}
	for i := p.Base; i < p.Base+p.Midplanes; i++ {
		if i >= 0 && i < len(s.owner) && s.owner[i] == p.ID {
			s.owner[i] = -1
		}
	}
}

// BootPartition runs the boot protocol for the partition and stands up
// its backing machine. jobSeed parameterizes the partition's kernels and
// faults; it must be derived from the job, not the placement, for
// placement-independent results.
func (s *ServiceNode) BootPartition(p *Partition, jobSeed uint64) error {
	// Journal real (allocated) partition boots only: drain-simulation
	// partitions (Base -1) are booted inside parallel workers and get
	// their virtual boot records from the serial commit pipeline instead.
	if s.w != nil && p.Base >= 0 {
		if err := s.appendRec(recPartBoot, bootBody(p.ID, jobSeed), ras.SiteBoot); err != nil {
			return err
		}
	}
	p.Seed = jobSeed
	p.Boot = SimulateBoot(BootConfig{
		Kind:             s.cfg.Kind,
		Nodes:            p.Nodes,
		NodesPerMidplane: s.topo.NodesPerMidplane,
		Stripped:         s.cfg.Stripped,
	})
	mcfg := machine.Config{
		Nodes:     p.Nodes,
		Kind:      s.cfg.Kind,
		Seed:      jobSeed,
		Stripped:  s.cfg.Stripped,
		CNsPerION: s.cfg.CNsPerION,
		ION:       s.cfg.ION,
	}
	if s.cfg.Faults.Enabled() {
		// Fold the job seed into the plan's own seed: the fault schedule
		// must differ per job (so two jobs don't see the same faults) AND
		// per fault seed (so the user's -faults knob matters), while
		// staying a pure function of (plan, job) for replay.
		plan := *s.cfg.Faults
		plan.Seed = plan.Seed ^ jobSeed ^ 0xfa171e55
		mcfg.Faults = &plan
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return fmt.Errorf("ctrlsys: boot partition %s: %v", p.Block, err)
	}
	p.M = m
	return nil
}

// Personalities returns the per-node personality records the boot
// protocol delivers alongside the image: each node's identity, geometry
// and seed. The marshalled size of these records is what the boot model
// charges per node on the control network.
func (p *Partition) Personalities() []Personality {
	out := make([]Personality, p.Nodes)
	for n := 0; n < p.Nodes; n++ {
		out[n] = Personality{
			Rank:      int32(n),
			Nodes:     int32(p.Nodes),
			X:         int32(n), // machines are built as an X-line torus
			Partition: int32(p.ID),
			Base:      int32(p.Base),
			Block:     p.Block,
			Kind:      uint8(p.Kind),
			Seed:      p.Seed,
			MemBytes:  256 << 20,
		}
	}
	return out
}

// Destroy shuts the backing machine down (partition teardown). The
// midplanes stay reserved until Release.
func (p *Partition) Destroy() {
	if p.M != nil {
		p.M.Shutdown()
		p.M = nil
	}
}
