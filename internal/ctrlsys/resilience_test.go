package ctrlsys

import (
	"errors"
	"fmt"
	"testing"

	"bgcnk/internal/ckpt"
	"bgcnk/internal/ion"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
)

// The resilience battery. The contract under test is the paper's
// reproducibility story carried through checkpoint/restart: a job that is
// killed by an uncorrectable fault, restarted from its last checkpoint
// (on a fresh partition, same job seed), and run to completion must be
// indistinguishable — same work-counter signature, same exit codes — from
// the same job running fault-free. And the whole drain must stay a pure
// function of (config, jobs): bit-identical across reruns and across
// worker counts.

// resilienceTopo is deliberately tiny: two midplanes of two nodes each.
func resilienceTopo() Topology {
	return Topology{Racks: 1, MidplanesPerRack: 2, NodesPerMidplane: 2}
}

// resilienceJobs are long enough (6-8 exchange rounds, checkpoint every
// round) that a mid-life kill leaves a checkpoint worth resuming from.
func resilienceJobs() []Job {
	return []Job{
		{ID: 0, Name: "job000", Midplanes: 1, Work: 20_000, Exchanges: 8, IOBytes: 512},
		{ID: 1, Name: "job001", Midplanes: 2, Work: 30_000, Exchanges: 6, IOBytes: 256},
		{ID: 2, Name: "job002", Midplanes: 1, Work: 25_000, Exchanges: 8, IOBytes: 512},
		{ID: 3, Name: "job003", Midplanes: 1, Work: 15_000, Exchanges: 7, IOBytes: 0},
	}
}

// resilientPlan arms the job-killing fault class for the kernel: CNK dies
// on its first uncorrectable by design; the FWK normally scrubs them, so
// the panic cadence makes every one fatal there too.
func resilientPlan(kind machine.KernelKind, seed uint64) *ras.Plan {
	plan := &ras.Plan{Seed: seed, DDRUncorrectable: 4e-3, DDRCorrectable: 0.05}
	if kind == machine.KindFWK {
		plan.FWKPanicEvery = 1
	}
	return plan
}

func drainResilient(t *testing.T, kind machine.KernelKind, plan *ras.Plan, workers int) *DrainResult {
	t.Helper()
	s := New(Config{
		Topology: resilienceTopo(), Kind: kind, Seed: 42, Workers: workers,
		Faults: plan,
		Ckpt:   CkptConfig{Enabled: true, Interval: 1},
	})
	res, err := s.Drain(resilienceJobs())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRestartDeterminism is the headline property, over three fault seeds
// and both kernels: (a) every job that completes after one or more
// restarts matches the fault-free run's work signature and exit codes
// exactly; (b) the full drain signature — attempts, backoffs, fault
// midplanes, schedule — is bit-identical across reruns and across worker
// counts. Run under -race in CI: the parallel drain must also be clean.
func TestRestartDeterminism(t *testing.T) {
	for _, kind := range []machine.KernelKind{machine.KindCNK, machine.KindFWK} {
		for _, seed := range []uint64{0xd00d, 0x5ca1ab1e, 0x7e57} {
			kind, seed := kind, seed
			t.Run(fmt.Sprintf("%v/seed%x", kind, seed), func(t *testing.T) {
				faulty := drainResilient(t, kind, resilientPlan(kind, seed), 4)
				fresh := drainResilient(t, kind, nil, 4)

				restarted := 0
				for i, r := range faulty.Results {
					if r.BudgetExhausted {
						continue
					}
					if r.Restarts > 0 {
						restarted++
					}
					if got, want := ckpt.WorkSignature(r.Counters), ckpt.WorkSignature(fresh.Results[i].Counters); got != want {
						t.Errorf("job %d (restarts %d): work signature %016x, fault-free %016x",
							i, r.Restarts, got, want)
					}
					if fmt.Sprint(r.ExitCodes) != fmt.Sprint(fresh.Results[i].ExitCodes) {
						t.Errorf("job %d: exit codes %v, fault-free %v",
							i, r.ExitCodes, fresh.Results[i].ExitCodes)
					}
				}
				if restarted == 0 {
					t.Error("no job completed after a restart; the property was tested vacuously — retune the plan")
				}

				rerun := drainResilient(t, kind, resilientPlan(kind, seed), 4)
				if a, b := faulty.Signature(), rerun.Signature(); a != b {
					t.Errorf("rerun drain signature %016x != %016x", b, a)
				}
				serial := drainResilient(t, kind, resilientPlan(kind, seed), 1)
				if a, b := faulty.Signature(), serial.Signature(); a != b {
					t.Errorf("serial drain signature %016x != parallel %016x", b, a)
				}
			})
		}
	}
}

// TestRestartDeterminismThroughIONCache re-proves the restart contract
// with the I/O-node aggregation subsystem armed on every partition: the
// checkpoint stream now flows through the shared uplink, the ingress
// credit gate and the write-back buffer cache, and a job restarted from
// such a checkpoint must still signature-match its fault-free run — with
// the whole drain bit-identical across worker counts (run under -race in
// CI).
func TestRestartDeterminismThroughIONCache(t *testing.T) {
	icfg := &ion.Config{QueueDepth: 4, CacheBlocks: 16}
	drain := func(kind machine.KernelKind, plan *ras.Plan, workers int) *DrainResult {
		t.Helper()
		s := New(Config{
			Topology: resilienceTopo(), Kind: kind, Seed: 42, Workers: workers,
			Faults: plan,
			Ckpt:   CkptConfig{Enabled: true, Interval: 1},
			ION:    icfg,
		})
		res, err := s.Drain(resilienceJobs())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const seed = 0xd00d
	for _, kind := range []machine.KernelKind{machine.KindCNK, machine.KindFWK} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			faulty := drain(kind, resilientPlan(kind, seed), 2)
			fresh := drain(kind, nil, 2)
			restarted := 0
			for i, r := range faulty.Results {
				if r.BudgetExhausted {
					continue
				}
				if r.Restarts > 0 {
					restarted++
				}
				if got, want := ckpt.WorkSignature(r.Counters), ckpt.WorkSignature(fresh.Results[i].Counters); got != want {
					t.Errorf("job %d (restarts %d): work signature %016x, fault-free %016x",
						i, r.Restarts, got, want)
				}
				if fmt.Sprint(r.ExitCodes) != fmt.Sprint(fresh.Results[i].ExitCodes) {
					t.Errorf("job %d: exit codes %v, fault-free %v",
						i, r.ExitCodes, fresh.Results[i].ExitCodes)
				}
			}
			if restarted == 0 {
				t.Error("no job completed after a restart; the cache-path property was tested vacuously")
			}
			for _, workers := range []int{1, 8} {
				other := drain(kind, resilientPlan(kind, seed), workers)
				if a, b := faulty.Signature(), other.Signature(); a != b {
					t.Errorf("drain signature at %d workers %016x != 2 workers %016x", workers, b, a)
				}
			}
		})
	}
}

// TestRestartBudgetExhaustedTyped: a job whose every incarnation dies
// before its first checkpoint can never make progress (the rewound fault
// schedule replays the identical kill), so the budget runs out and the
// drain surfaces the typed error, matchable with errors.Is.
func TestRestartBudgetExhaustedTyped(t *testing.T) {
	for _, kind := range []machine.KernelKind{machine.KindCNK, machine.KindFWK} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			// A rate this high kills in the first exchange round.
			plan := &ras.Plan{Seed: 0xdead, DDRUncorrectable: 5e-2}
			if kind == machine.KindFWK {
				plan.FWKPanicEvery = 1
			}
			res := drainResilient(t, kind, plan, 2)
			if len(res.Errs) == 0 {
				t.Fatal("no drain errors despite a kill-everything fault rate")
			}
			for _, err := range res.Errs {
				if !errors.Is(err, ErrRestartBudgetExhausted) {
					t.Errorf("drain error %v does not wrap ErrRestartBudgetExhausted", err)
				}
			}
			budget := (CkptConfig{}).normalized().MaxRestarts
			exhausted := 0
			for _, r := range res.Results {
				if !r.BudgetExhausted {
					continue
				}
				exhausted++
				if len(r.Attempts) != 1+budget {
					t.Errorf("job %d: %d attempts, want %d", r.Job.ID, len(r.Attempts), 1+budget)
				}
				if r.Restarts != budget {
					t.Errorf("job %d: %d restarts, want the full budget %d", r.Job.ID, r.Restarts, budget)
				}
			}
			if exhausted != len(res.Errs) {
				t.Errorf("%d exhausted jobs but %d drain errors", exhausted, len(res.Errs))
			}
		})
	}
}

// TestResilienceFaultClassMatrix drains the queue under each single-class
// plan, for both kernels: every class must either recover (all jobs
// complete, possibly after restarts) or fail with the typed budget error
// — and do so bit-identically on a rerun. No third outcome (hangs,
// untyped errors, partial results) is acceptable.
func TestResilienceFaultClassMatrix(t *testing.T) {
	const seed = 0xfa117
	classes := []struct {
		name string
		plan ras.Plan
	}{
		{"correctable_ecc", ras.Plan{Seed: seed, DDRCorrectable: 1e-3}},
		{"uncorrectable_ecc", ras.Plan{Seed: seed, DDRUncorrectable: 4e-3}},
		{"tlb_parity", ras.Plan{Seed: seed, TLBParity: 1e-4}},
		{"link_crc", ras.Plan{Seed: seed, LinkCRC: 1e-2}},
		{"ciod_drop", ras.Plan{Seed: seed, CIODDrop: 0.3}},
		{"ciod_crash", ras.Plan{Seed: seed, CIODCrashEvery: 10}},
	}
	for _, kind := range []machine.KernelKind{machine.KindCNK, machine.KindFWK} {
		for _, cl := range classes {
			kind, cl := kind, cl
			t.Run(fmt.Sprintf("%v/%s", kind, cl.name), func(t *testing.T) {
				plan := cl.plan
				if kind == machine.KindFWK {
					plan.FWKPanicEvery = 1
				}
				a := drainResilient(t, kind, &plan, 2)
				for i, r := range a.Results {
					if r.Failed() && !r.BudgetExhausted {
						t.Errorf("job %d failed without the typed budget error: %q (codes %v)",
							i, r.Err, r.ExitCodes)
					}
				}
				for _, err := range a.Errs {
					if !errors.Is(err, ErrRestartBudgetExhausted) {
						t.Errorf("untyped drain error: %v", err)
					}
				}
				b := drainResilient(t, kind, &plan, 2)
				if a.Signature() != b.Signature() {
					t.Errorf("rerun signature %016x != %016x", b.Signature(), a.Signature())
				}
			})
		}
	}
}

// TestScheduleResilientBlacklist: on a four-midplane machine with
// single-midplane jobs, a job that exhausts its budget strikes its fault
// midplane repeatedly; the health tracker must drain it (maxSpan 1 keeps
// the drain cap permissive) and the replayed schedule must stay
// well-formed — every placement inside the machine, resubmits matching
// the recorded failed attempts, no placement on a midplane drained before
// its start.
func TestScheduleResilientBlacklist(t *testing.T) {
	topo := Topology{Racks: 1, MidplanesPerRack: 4, NodesPerMidplane: 2}
	jobs := []Job{
		{ID: 0, Name: "job000", Midplanes: 1, Work: 20_000, Exchanges: 8, IOBytes: 512},
		{ID: 1, Name: "job001", Midplanes: 1, Work: 30_000, Exchanges: 6, IOBytes: 256},
		{ID: 2, Name: "job002", Midplanes: 1, Work: 25_000, Exchanges: 8, IOBytes: 512},
		{ID: 3, Name: "job003", Midplanes: 1, Work: 15_000, Exchanges: 7, IOBytes: 0},
	}
	plan := &ras.Plan{Seed: 0xdead, DDRUncorrectable: 5e-2}
	s := New(Config{
		Topology: topo, Kind: machine.KindCNK, Seed: 42, Workers: 2,
		Faults: plan,
		Ckpt:   CkptConfig{Enabled: true, Interval: 1},
	})
	res, err := s.Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("no restarts at a kill-everything rate; the blacklist path was never exercised")
	}
	if len(res.Sched.Drained) == 0 {
		t.Error("no midplane drained despite repeated kill strikes and a permissive drain cap")
	}
	wantResubmits := 0
	for _, r := range res.Results {
		if n := len(r.Attempts); n > 1 {
			wantResubmits += n - 1
		}
	}
	if res.Sched.Resubmits != wantResubmits {
		t.Errorf("schedule replayed %d resubmits, results record %d failed attempts",
			res.Sched.Resubmits, wantResubmits)
	}
	total := topo.Midplanes()
	for _, p := range res.Sched.Placements {
		if p.End == 0 {
			t.Errorf("job %d never placed", p.JobID)
			continue
		}
		if p.Base < 0 || p.Base+p.Midplanes > total {
			t.Errorf("job %d placed at [%d,%d) outside the %d-midplane machine",
				p.JobID, p.Base, p.Base+p.Midplanes, total)
		}
	}
	for _, mp := range res.Sched.Drained {
		if mp < 0 || mp >= total {
			t.Errorf("drained midplane %d outside the machine", mp)
		}
	}
}

// TestCkptOffSignatureUnchanged pins backward compatibility: arming the
// Ckpt config off must leave Drain on the exact pre-resilience code path,
// so the signature of a checkpoint-free drain is the same value PR 3
// golden-pinned. Guarded here structurally: zero restart state, no Errs,
// no drained midplanes.
func TestCkptOffSignatureUnchanged(t *testing.T) {
	s := New(Config{Topology: resilienceTopo(), Kind: machine.KindCNK, Seed: 42, Workers: 2})
	res, err := s.Drain(GenerateJobs(42, 4, resilienceTopo().Midplanes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 || res.Wasted != 0 || len(res.Errs) != 0 ||
		len(res.Sched.Drained) != 0 || res.Sched.Resubmits != 0 {
		t.Errorf("checkpoint-off drain carries resilience state: restarts=%d wasted=%d errs=%d drained=%v resubmits=%d",
			res.Restarts, res.Wasted, len(res.Errs), res.Sched.Drained, res.Sched.Resubmits)
	}
	for _, r := range res.Results {
		if len(r.Attempts) != 0 || r.RestartOverhead != 0 || r.BudgetExhausted {
			t.Errorf("job %d carries restart history on the non-resilient path", r.Job.ID)
		}
	}
}
