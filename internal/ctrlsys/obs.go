package ctrlsys

import "bgcnk/internal/obs"

// Obs returns the service node's span recorder; nil unless Config.Obs
// is armed.
func (s *ServiceNode) Obs() *obs.Recorder { return s.obs }

// TraceJSON exports the drained jobs' lifecycle spans as Chrome
// trace-event JSON (Perfetto-loadable); nil when the recorder is not
// armed. Each job is one "process" row (pid = job ID, tid = the
// placement's base midplane), timestamped in control-time cycles.
func (s *ServiceNode) TraceJSON() []byte { return s.obs.ChromeJSON() }

// TraceBinary exports the recorded trace in the compact versioned
// binary format; nil when the recorder is not armed.
func (s *ServiceNode) TraceBinary() []byte { return s.obs.MarshalBinary() }

// emitJobSpans lays each drained job's lifecycle onto the control-time
// axis of its schedule placement: submit (instant), boot, the run (or
// the restart chain, with checkpoint-resume markers), and teardown.
// Called once per successful Drain, after the merge, on the serial path.
func (s *ServiceNode) emitJobSpans(res *DrainResult) {
	if s.obs == nil || res == nil {
		return
	}
	place := res.Sched.Placements
	for _, r := range res.Results {
		id := r.Job.ID
		var p Placement
		if id >= 0 && id < len(place) {
			p = place[id]
		}
		at := p.Start
		s.obs.Emit(obs.CatJob, "submit", id, p.Base, at, at, uint64(r.Job.Midplanes))
		bootEnd := at + r.Boot.Total
		s.obs.Emit(obs.CatJob, "boot", id, p.Base, at, bootEnd, uint64(r.Nodes))
		t := bootEnd
		if len(r.Attempts) > 0 {
			// Resilience armed: each incarnation gets its own span, with
			// the reboot and backoff gaps between them and a marker where
			// an attempt resumed from a checkpoint epoch.
			for i, a := range r.Attempts {
				name := "run"
				if i > 0 {
					t += a.Boot // the restart's partition reboot
					name = "restart"
				}
				if a.ResumeEpoch >= 0 {
					s.obs.Emit(obs.CatJob, "ckpt:resume", id, p.Base, t, t, uint64(a.ResumeEpoch))
				}
				s.obs.Emit(obs.CatJob, name, id, p.Base, t, t+a.Run, uint64(i))
				t += a.Run + a.Backoff
			}
		} else {
			s.obs.Emit(obs.CatJob, "run", id, p.Base, t, t+r.Run, 0)
			t += r.Run
		}
		s.obs.Emit(obs.CatJob, "teardown", id, p.Base, t, t+r.Teardown, uint64(r.Restarts))
	}
}
