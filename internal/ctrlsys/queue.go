package ctrlsys

import (
	"sort"

	"bgcnk/internal/sim"
)

// Placement is one job's slot in the drained schedule.
type Placement struct {
	JobID      int
	Base       int // first midplane of the allocated block
	Midplanes  int
	Start, End sim.Cycles
	Backfilled bool
	// Attempt is which restart attempt this placement carries (0 for the
	// only attempt; ScheduleResilient records the final attempt's slot).
	Attempt int
}

// Schedule is the control-time replay of the queue: when each job's
// partition was allocated, booted, run and released.
type Schedule struct {
	Placements []Placement // indexed by job ID
	Makespan   sim.Cycles
	Backfilled int
	// Utilization is occupied midplane-cycles over machine
	// midplane-cycles across the makespan.
	Utilization float64
	// Drained lists midplanes blacklisted for accumulating uncorrectable
	// faults, in drain order; Resubmits counts failed attempts that
	// re-entered the queue. Both are zero-valued outside ScheduleResilient.
	Drained   []int
	Resubmits int
}

// ScheduleFIFOBackfill replays the job queue against the topology's
// midplane map: strict FIFO with EASY backfill (a later job may jump the
// queue iff a contiguous block is free now and it finishes before the
// queue head's reservation, so the head is never delayed). dur gives each
// job's partition occupancy (boot + run + teardown). Everything ties on
// (time, job ID), so the schedule is a pure function of its inputs.
func ScheduleFIFOBackfill(topo Topology, jobs []Job, dur func(jobID int) sim.Cycles) Schedule {
	type running struct {
		jobID int
		base  int
		span  int
		end   sim.Cycles
	}
	total := topo.Midplanes()
	free := make([]bool, total)
	for i := range free {
		free[i] = true
	}
	firstFit := func(fr []bool, span int) (int, bool) {
		run := 0
		for i, ok := range fr {
			if !ok {
				run = 0
				continue
			}
			run++
			if run == span {
				return i - span + 1, true
			}
		}
		return 0, false
	}

	sched := Schedule{Placements: make([]Placement, len(jobs))}
	pending := make([]Job, len(jobs))
	copy(pending, jobs)
	for i := range pending {
		// An oversized request is trimmed to the full machine rather than
		// wedging the queue head forever.
		if pending[i].Midplanes > total {
			pending[i].Midplanes = total
		}
		if pending[i].Midplanes <= 0 {
			pending[i].Midplanes = 1
		}
	}
	var live []running
	now := sim.Cycles(0)
	var busyCycles sim.Cycles

	place := func(job Job, base int, backfilled bool) {
		d := dur(job.ID)
		sched.Placements[job.ID] = Placement{
			JobID: job.ID, Base: base, Midplanes: job.Midplanes,
			Start: now, End: now + d, Backfilled: backfilled,
		}
		for i := base; i < base+job.Midplanes; i++ {
			free[i] = false
		}
		live = append(live, running{jobID: job.ID, base: base, span: job.Midplanes, end: now + d})
		busyCycles += d * sim.Cycles(job.Midplanes)
		if backfilled {
			sched.Backfilled++
		}
		if now+d > sched.Makespan {
			sched.Makespan = now + d
		}
	}

	for len(pending) > 0 {
		// Start queue heads while they fit.
		started := true
		for started && len(pending) > 0 {
			started = false
			if base, ok := firstFit(free, pending[0].Midplanes); ok {
				place(pending[0], base, false)
				pending = pending[1:]
				started = true
			}
		}
		if len(pending) == 0 {
			break
		}
		// Head is blocked: compute its reservation (the shadow time) by
		// replaying future frees in (end, job ID) order.
		shadowFree := make([]bool, total)
		copy(shadowFree, free)
		ordered := make([]running, len(live))
		copy(ordered, live)
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].end != ordered[j].end {
				return ordered[i].end < ordered[j].end
			}
			return ordered[i].jobID < ordered[j].jobID
		})
		shadow := sim.Forever
		for _, r := range ordered {
			for i := r.base; i < r.base+r.span; i++ {
				shadowFree[i] = true
			}
			if _, ok := firstFit(shadowFree, pending[0].Midplanes); ok {
				shadow = r.end
				break
			}
		}
		// EASY backfill: any later job that fits now and drains before
		// the shadow time cannot delay the head (its block is free again
		// by the head's reservation).
		for i := 1; i < len(pending); i++ {
			job := pending[i]
			if now+dur(job.ID) > shadow {
				continue
			}
			if base, ok := firstFit(free, job.Midplanes); ok {
				place(job, base, true)
				pending = append(pending[:i], pending[i+1:]...)
				i--
			}
		}
		// Advance to the earliest completion and free its block (all
		// blocks completing at that instant, in job-ID order).
		earliest := sim.Forever
		for _, r := range live {
			if r.end < earliest {
				earliest = r.end
			}
		}
		now = earliest
		next := live[:0]
		for _, r := range live {
			if r.end <= now {
				for i := r.base; i < r.base+r.span; i++ {
					free[i] = true
				}
				continue
			}
			next = append(next, r)
		}
		live = next
	}
	if sched.Makespan > 0 {
		sched.Utilization = float64(busyCycles) / (float64(sched.Makespan) * float64(total))
	}
	return sched
}
