package ctrlsys

import (
	"fmt"
)

// Personality is the per-node boot record the control system delivers
// with the kernel image: who the node is, where it sits, and how its
// kernel should come up. On the real machine this is the BG personality
// structure written into each node's SRAM by the service node; here it is
// the unit of per-node traffic in the boot-protocol model and the wire
// format the FuzzPersonality harness attacks.
type Personality struct {
	Rank      int32  // node's rank within the partition
	Nodes     int32  // partition size
	X, Y, Z   int32  // torus coordinates
	Partition int32  // owning partition ID
	Base      int32  // partition's base midplane
	Block     string // control-system block name, e.g. "R00-M1"
	Kind      uint8  // kernel kind (machine.KernelKind)
	Seed      uint64 // kernel seed
	MemBytes  uint64 // DDR size
}

// Wire format: magic, version, fixed-width fields, length-prefixed block
// name. Decoders must accept exactly what Marshal produces and nothing
// else (no trailing bytes), so any accepted input re-marshals to itself.
const (
	personalityMagic   = 0x42475062 // "BGPb"
	personalityVersion = 1
	maxBlockName       = 256
)

// Marshal encodes the personality.
func (p *Personality) Marshal() []byte {
	e := &penc{}
	e.u32(personalityMagic)
	e.u8(personalityVersion)
	e.u32(uint32(p.Rank))
	e.u32(uint32(p.Nodes))
	e.u32(uint32(p.X))
	e.u32(uint32(p.Y))
	e.u32(uint32(p.Z))
	e.u32(uint32(p.Partition))
	e.u32(uint32(p.Base))
	e.str(p.Block)
	e.u8(p.Kind)
	e.u64(p.Seed)
	e.u64(p.MemBytes)
	return e.b
}

// UnmarshalPersonality decodes one personality record, rejecting bad
// magic, unknown versions, oversized block names, truncation, and
// trailing garbage.
func UnmarshalPersonality(b []byte) (*Personality, error) {
	d := &pdec{b: b}
	if m := d.u32(); d.err == nil && m != personalityMagic {
		return nil, fmt.Errorf("ctrlsys: bad personality magic %#x", m)
	}
	if v := d.u8(); d.err == nil && v != personalityVersion {
		return nil, fmt.Errorf("ctrlsys: unsupported personality version %d", v)
	}
	p := &Personality{}
	p.Rank = int32(d.u32())
	p.Nodes = int32(d.u32())
	p.X = int32(d.u32())
	p.Y = int32(d.u32())
	p.Z = int32(d.u32())
	p.Partition = int32(d.u32())
	p.Base = int32(d.u32())
	p.Block = d.str()
	p.Kind = d.u8()
	p.Seed = d.u64()
	p.MemBytes = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("ctrlsys: %d trailing bytes after personality", len(d.b)-d.off)
	}
	return p, nil
}

// personalityWireBytes is the marshalled size of a representative record;
// the boot model charges this much control-network traffic per node.
func personalityWireBytes() int {
	p := Personality{Block: "R00-M0", Seed: 1, MemBytes: 256 << 20}
	return len(p.Marshal())
}

type penc struct{ b []byte }

func (e *penc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *penc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *penc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *penc) str(s string) {
	if len(s) > maxBlockName {
		s = s[:maxBlockName]
	}
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type pdec struct {
	b   []byte
	off int
	err error
}

func (d *pdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("ctrlsys: truncated personality at offset %d", d.off)
	}
}

func (d *pdec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *pdec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *pdec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *pdec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	// Bound the allocation by both the name cap and the bytes actually
	// present (a hostile length must not drive a huge allocation).
	if n > maxBlockName || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
