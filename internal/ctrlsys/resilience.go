package ctrlsys

import (
	"errors"
	"fmt"

	"bgcnk/internal/apps"
	"bgcnk/internal/ckpt"
	"bgcnk/internal/fs"
	"bgcnk/internal/hw"
	"bgcnk/internal/kernel"
	"bgcnk/internal/machine"
	"bgcnk/internal/ras"
	"bgcnk/internal/sim"
)

// ErrRestartBudgetExhausted is surfaced (wrapped, with the job named) in
// DrainResult.Errs when a job fails on its initial run and on every
// restart the service node's budget allows. It is the typed face of "the
// machine could not carry this job to completion" — distinguishable with
// errors.Is from ordinary nonzero exits.
var ErrRestartBudgetExhausted = errors.New("ctrlsys: restart budget exhausted")

// CkptConfig arms checkpoint/restart for drained jobs. The paper's
// resilience story (Section V-B) in control-system terms: jobs checkpoint
// periodically through CIOD to the ION filesystem, and a job killed by an
// uncorrectable RAS event is restarted from its last checkpoint — on a
// freshly booted partition, possibly on a different first-fit block —
// with bounded attempts and exponential backoff at the service node.
type CkptConfig struct {
	Enabled bool
	// Interval checkpoints every N exchange rounds (default 1).
	Interval int
	// MaxRestarts bounds restart attempts after the initial run
	// (default 3). Exhausting it yields ErrRestartBudgetExhausted.
	MaxRestarts int
	// Backoff is the service node's delay before the first restart,
	// doubling per subsequent attempt (default 2,000,000 cycles).
	Backoff sim.Cycles
	// BlacklistAfter drains a midplane after it accumulates this many
	// job-killing uncorrectable events (default 1); the resilient
	// schedule re-allocates around drained midplanes.
	BlacklistAfter int
}

func (c CkptConfig) normalized() CkptConfig {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2_000_000
	}
	if c.BlacklistAfter <= 0 {
		c.BlacklistAfter = 1
	}
	return c
}

// resilientRunLimit bounds one attempt's simulation. A fault-killed rank
// leaves the survivors parked in its allreduce forever; on an FWK the
// timer ticks and daemons would otherwise keep the engine busy until the
// default 300-second deadline. Healthy jobs finish orders of magnitude
// below this bound.
const resilientRunLimit = sim.Cycles(4_000_000_000)

// ckptWriteRetryBackoff is the application-level pause before re-driving
// a checkpoint write whose CIOD retries already surfaced EIO.
const ckptWriteRetryBackoff = sim.Cycles(250_000)

// ckptStageOff places the checkpoint staging buffer well above the
// addresses jobApp touches.
const (
	ckptStageOff = hw.VAddr(1 << 20)
	ckptChunk    = 4096
)

// Each exchange round of the resilient workload streams loads through a
// cold window before dirtying it: L3-miss fills are where uncorrectable
// DDR errors strike (stores are write-through, no allocate), so this is
// what gives an armed fault plan the chance to kill the job — and the
// checkpoint a reason to exist. 32 fills per rank per round at stride
// ddrLoadStride covers the round's page exactly once.
const (
	ddrLoadsPerRound = 32
	ddrLoadStride    = 128
)

// Attempt records one run of a job under the resilience layer.
type Attempt struct {
	Boot sim.Cycles
	Run  sim.Cycles
	// ResumeEpoch is the checkpoint epoch this attempt resumed from
	// (-1 = cold start).
	ResumeEpoch int
	// FaultMidplane is the partition-relative midplane of the fault that
	// killed this attempt (-1 = none / completed / non-localized).
	FaultMidplane int
	// Backoff is the service-node delay charged after this failed
	// attempt before the next one (0 on the final or completed attempt).
	Backoff   sim.Cycles
	Completed bool
}

// runJobResilient runs the job with checkpointing armed, restarting from
// the last checkpoint (on a freshly booted partition with the identical
// job seed) after a fault kill, until it completes or the restart budget
// is exhausted. Every quantity is a pure function of (config, job), so
// results stay bit-identical across reruns and worker counts.
func (s *ServiceNode) runJobResilient(job Job) *JobResult {
	return s.runJobResilientFrom(job, nil, nil)
}

// runJobResilientFrom is runJobResilient with the restart loop made
// resumable: rp, when non-nil, is a journaled resume point (partial
// accounting, RAS-hash fold, next attempt index, freshest checkpoint
// blob) and the loop continues exactly where the dead service node left
// it. Because each attempt is a pure function of (job seed, attempt
// index, resume image), a continued run is bit-identical to an
// uninterrupted one by construction. commit, when non-nil, is invoked
// after every failed attempt with the marshalled resume point — the body
// the journaled drain later appends as a checkpoint-commit record.
func (s *ServiceNode) runJobResilientFrom(job Job, rp *resumePoint, commit func([]byte)) *JobResult {
	cfg := s.cfg.Ckpt.normalized()
	nodes := job.Midplanes * s.topo.NodesPerMidplane
	res := &JobResult{Job: job, Nodes: nodes}
	var resume *ckpt.Image
	var resumeBlob []byte
	rasHash := uint64(14695981039346656037)
	first := 0
	if rp != nil {
		r := rp.res
		res = &r
		rasHash = rp.rasHash
		first = rp.next
		if len(rp.image) > 0 {
			if img, err := ckpt.Unmarshal(rp.image); err == nil {
				resume = img
				resumeBlob = rp.image
			}
		}
	}

	for attempt := first; attempt <= cfg.MaxRestarts; attempt++ {
		p := &Partition{
			ID:        job.ID,
			Base:      -1,
			Midplanes: job.Midplanes,
			Nodes:     nodes,
			Block:     fmt.Sprintf("<%s#%d>", job.Name, attempt),
			Kind:      s.cfg.Kind,
		}
		if err := s.BootPartition(p, s.jobSeed(job)); err != nil {
			res.Err = err.Error()
			return res
		}
		m := p.M
		res.Boot = p.Boot
		m.ArmCheckpoints(job.ID, cfg.Interval)
		if resume != nil {
			// Stage the harvested image onto the new partition's ION
			// filesystem — the service node's copy of what the previous
			// incarnation wrote; rank 0 re-reads it through the I/O path.
			blob := resume.Marshal()
			for _, fsys := range m.IONFS {
				fsys.MustMkdirAll(machine.CkptDir)
				fsys.WriteFile(machine.CkptPath(job.ID), blob, 0644, fs.Root)
			}
		}
		var mark ras.Mark
		if m.RAS != nil {
			mark = m.RAS.Mark()
		}
		boot := bootInstant(m)
		runErr := m.Run(resilientJobApp(m, job, resume, cfg.Interval), kernel.JobParams{}, resilientRunLimit)
		run := m.Eng.Now() - boot
		codes := m.ExitCodes()
		ok := runErr == nil
		for _, c := range codes {
			if c != 0 {
				ok = false
			}
		}
		a := Attempt{Boot: p.Boot.Total, Run: run, ResumeEpoch: -1, FaultMidplane: -1, Completed: ok}
		if resume != nil {
			a.ResumeEpoch = int(resume.Epoch)
		}
		if m.RAS != nil {
			res.RASEvents += m.RAS.CountSince(mark)
			rasHash = rasHash*1099511628211 ^ m.RAS.HashSince(mark, boot)
			for _, ev := range m.RAS.Events()[mark:] {
				// Hard network faults localize like job kills: a dead link
				// or interface strikes the midplane owning the node, feeding
				// the same blacklist/reschedule path (a failed
				// partition-interior wire takes the midplane out of service).
				killing := ev.Class == ras.JobKill ||
					ev.Class == ras.LinkFail || ev.Class == ras.NodeFail
				if killing && ev.Node >= 0 {
					a.FaultMidplane = ev.Node / s.topo.NodesPerMidplane
					break
				}
			}
		}
		if ok {
			res.Attempts = append(res.Attempts, a)
			res.Run = run
			res.Teardown = teardownBase + teardownPerMidplane*sim.Cycles(job.Midplanes)
			res.ExitCodes = codes
			res.Counters = m.MergedCounters()
			res.RASHash = rasHash
			res.Err = "" // earlier failed attempts are history, not the outcome
			p.Destroy()
			return res
		}

		// Failed attempt: harvest the freshest durable checkpoint before
		// the partition is torn down, account the wasted occupancy, and
		// back off before the next incarnation.
		if blob, errno := m.IONFS[0].ReadFile(machine.CkptPath(job.ID), fs.Root); errno == kernel.OK {
			if img, err := ckpt.Unmarshal(blob); err == nil {
				if resume == nil || img.Epoch >= resume.Epoch {
					resume = img
					resumeBlob = blob
				}
			}
		}
		teardown := teardownBase + teardownPerMidplane*sim.Cycles(job.Midplanes)
		res.Wasted += p.Boot.Total + run + teardown
		if attempt < cfg.MaxRestarts {
			// Occupancy of a non-final failed attempt is pure overhead on
			// top of the final attempt's Boot/Run/Teardown; the final
			// attempt's occupancy is already carried by those fields.
			res.RestartOverhead += p.Boot.Total + run + teardown
			a.Backoff = cfg.Backoff << uint(attempt)
			res.RestartOverhead += a.Backoff
			res.Restarts++
		}
		res.Attempts = append(res.Attempts, a)
		res.ExitCodes = codes
		res.Counters = m.MergedCounters()
		res.RASHash = rasHash
		res.Run = run
		res.Teardown = teardown
		if runErr != nil {
			res.Err = runErr.Error()
		} else {
			res.Err = fmt.Sprintf("job exited nonzero: %v", codes)
		}
		if commit != nil {
			// Snapshot the loop state NOW (marshalling copies everything):
			// the journal must hold exactly this point, not whatever res
			// mutates into later.
			commit(marshalResume(&resumePoint{
				res: *res, rasHash: rasHash, next: attempt + 1, image: resumeBlob,
			}))
		}
		p.Destroy()
	}
	res.BudgetExhausted = true
	res.Err = fmt.Sprintf("%v after %d attempts: %s",
		ErrRestartBudgetExhausted, len(res.Attempts), res.Err)
	return res
}

// resilientJobApp is jobApp with the checkpoint/restart protocol woven
// in. The protocol's determinism contract: every rank captures its own
// node immediately after the round's allreduce (an exact epoch boundary),
// a second allreduce barriers the captures, and only then does rank 0
// seal and write the image. On resume the counter block is rolled back to
// the capture point and the post-capture epilogue is replayed verbatim,
// so a restarted run's counter trajectory rejoins the fault-free run's
// exactly.
func resilientJobApp(m *machine.Machine, job Job, resume *ckpt.Image, interval int) machine.App {
	return func(ctx kernel.Context, env *machine.Env) {
		base := m.HeapBase(ctx)
		start := 0
		barrier := func() bool {
			if env.MPI == nil || env.Size <= 1 {
				return true
			}
			if _, errno := apps.AllreduceBench(ctx, env.MPI, 1); errno != kernel.OK {
				ctx.Syscall(kernel.SysExit, uint64(errno))
				return false
			}
			return true
		}
		epilogue := func(img *ckpt.Image) bool {
			if !barrier() {
				return false
			}
			if env.Rank == 0 {
				blob := img.Marshal()
				if errno := writeImageApp(ctx, base, machine.CkptPath(job.ID), blob); errno != kernel.OK {
					// CIOD's own retries already failed; pause and
					// re-drive once. A persistent failure is survivable:
					// the previous durable image stays current.
					ctx.Compute(ckptWriteRetryBackoff)
					writeImageApp(ctx, base, machine.CkptPath(job.ID), blob)
				}
			}
			return true
		}
		if resume != nil {
			// Restore: rank 0 re-reads the staged image through the I/O
			// path (charged), then every rank rolls its node back to the
			// capture point — which erases the read's counter traffic, as
			// it must: the fault-free run never performed it — charges
			// the restore, and replays the capture epilogue.
			if env.Rank == 0 {
				readImageApp(ctx, base, machine.CkptPath(job.ID), len(resume.Marshal()))
			}
			if err := m.RestoreNode(ctx, resume); err != nil {
				ctx.Syscall(kernel.SysExit, uint64(kernel.EIO))
				return
			}
			ctx.Compute(m.RestoreCost(ctx))
			if !epilogue(resume) {
				return
			}
			start = int(resume.Epoch)
		}
		var lbuf [ddrLoadStride]byte
		for e := start; e < job.Exchanges; e++ {
			ctx.Compute(job.Work)
			// Loads first: the round's window is cold (rounds use disjoint
			// windows, and a restored image repopulates frames without
			// warming caches), so each load is a DDR fill and a fault draw.
			// The dirtying Touch must come after — a store miss installs
			// the L3 line, which would shadow the fills.
			for i := 0; i < ddrLoadsPerRound; i++ {
				ctx.Load(base+hw.VAddr(e*8192+i*ddrLoadStride), lbuf[:])
			}
			ctx.Touch(base+hw.VAddr(e*8192), 4096, true)
			if !barrier() {
				return
			}
			if interval > 0 && (e+1)%interval == 0 && e+1 < job.Exchanges {
				// Capture at the exact epoch boundary (every rank has just
				// cleared the same allreduce and done nothing since),
				// charge the kernel-dependent snapshot cost, barrier so
				// every capture is in, then rank 0 seals and writes.
				m.CaptureNode(ctx, uint32(e+1))
				ctx.Compute(m.CheckpointCost(ctx))
				if !barrier() {
					return
				}
				if env.Rank == 0 {
					if img := m.SealCheckpoint(); img != nil {
						blob := img.Marshal()
						if errno := writeImageApp(ctx, base, machine.CkptPath(job.ID), blob); errno != kernel.OK {
							ctx.Compute(ckptWriteRetryBackoff)
							writeImageApp(ctx, base, machine.CkptPath(job.ID), blob)
						}
					}
				}
			}
		}
		if env.Rank == 0 && job.IOBytes > 0 {
			path := append([]byte("/gpfs/"+job.Name), 0)
			ctx.Store(base, path)
			fd, errno := ctx.Syscall(kernel.SysOpen, uint64(base), kernel.OCreat|kernel.OWronly, 0644)
			if errno != kernel.OK {
				ctx.Syscall(kernel.SysExit, uint64(errno))
				return
			}
			chunk := 1024
			buf := make([]byte, chunk)
			ctx.Store(base+4096, buf)
			for off := 0; off < job.IOBytes; off += chunk {
				n := chunk
				if job.IOBytes-off < n {
					n = job.IOBytes - off
				}
				ctx.Syscall(kernel.SysWrite, fd, uint64(base+4096), uint64(n))
			}
			ctx.Syscall(kernel.SysClose, fd)
		}
	}
}

// writeImageApp writes blob to path through the kernel's I/O path:
// staged chunks into a temp file, then an atomic rename over the current
// image, so a crash mid-write can never destroy the previous checkpoint.
func writeImageApp(ctx kernel.Context, base hw.VAddr, path string, blob []byte) kernel.Errno {
	stage := base + ckptStageOff
	tmp := append([]byte(path+".tmp"), 0)
	ctx.Store(stage, tmp)
	fd, errno := ctx.Syscall(kernel.SysOpen, uint64(stage),
		kernel.OCreat|kernel.OWronly|kernel.OTrunc, 0644)
	if errno != kernel.OK {
		return errno
	}
	for off := 0; off < len(blob); off += ckptChunk {
		end := off + ckptChunk
		if end > len(blob) {
			end = len(blob)
		}
		ctx.Store(stage+4096, blob[off:end])
		if _, errno = ctx.Syscall(kernel.SysWrite, fd, uint64(stage+4096), uint64(end-off)); errno != kernel.OK {
			ctx.Syscall(kernel.SysClose, fd)
			return errno
		}
	}
	if _, errno = ctx.Syscall(kernel.SysClose, fd); errno != kernel.OK {
		return errno
	}
	final := append([]byte(path), 0)
	ctx.Store(stage, tmp)
	ctx.Store(stage+2048, final)
	_, errno = ctx.Syscall(kernel.SysRename, uint64(stage), uint64(stage+2048))
	return errno
}

// readImageApp drives a charged read of the image through the I/O path.
// The bytes themselves are already in the service node's hands; what
// matters is that the restore's I/O traffic is simulated.
func readImageApp(ctx kernel.Context, base hw.VAddr, path string, size int) {
	stage := base + ckptStageOff
	pb := append([]byte(path), 0)
	ctx.Store(stage, pb)
	fd, errno := ctx.Syscall(kernel.SysOpen, uint64(stage), kernel.ORdonly, 0)
	if errno != kernel.OK {
		return
	}
	for off := 0; off < size; off += ckptChunk {
		n := ckptChunk
		if size-off < n {
			n = size - off
		}
		ctx.Syscall(kernel.SysRead, fd, uint64(stage+4096), uint64(n))
	}
	ctx.Syscall(kernel.SysClose, fd)
}
