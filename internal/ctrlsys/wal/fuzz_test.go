package wal

import (
	"bytes"
	"testing"
)

// FuzzJournal drives Parse with arbitrary segment bytes in both final and
// non-final mode. Parse must never panic or over-allocate, and whatever
// it accepts must satisfy the journal invariants: sequential LSNs from
// firstLSN, canonical re-encoding equal to the consumed prefix, and — in
// non-final mode — zero tolerance for trailing garbage.
func FuzzJournal(f *testing.F) {
	f.Add([]byte{}, uint64(1), true)
	f.Add(EncodeRecord(1, 1, []byte("submit job 0")), uint64(1), true)
	two := append(EncodeRecord(5, 2, []byte("alloc")), EncodeRecord(6, 3, nil)...)
	f.Add(two, uint64(5), false)
	f.Add(append(two, EncodeRecord(7, 4, bytes.Repeat([]byte{0xee}, 100))[:9]...), uint64(5), true)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, uint64(1), false)

	f.Fuzz(func(t *testing.T, b []byte, firstLSN uint64, final bool) {
		recs, clean, torn, err := Parse(b, firstLSN, final)
		if err != nil {
			return
		}
		if clean < 0 || clean > len(b) {
			t.Fatalf("clean prefix %d outside [0,%d]", clean, len(b))
		}
		if !final {
			if torn != 0 {
				t.Fatalf("non-final parse reported %d torn records", torn)
			}
			if clean != len(b) {
				t.Fatalf("non-final parse consumed %d of %d bytes without error", clean, len(b))
			}
		}
		// Accepted records must carry sequential LSNs and re-encode
		// canonically to exactly the consumed prefix.
		var re []byte
		for i, r := range recs {
			if r.LSN != firstLSN+uint64(i) {
				t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, firstLSN+uint64(i))
			}
			re = append(re, EncodeRecord(r.LSN, r.Kind, r.Body)...)
		}
		if !bytes.Equal(re, b[:clean]) {
			t.Fatalf("canonical re-encoding differs from accepted prefix:\n got %x\nwant %x", re, b[:clean])
		}
	})
}
