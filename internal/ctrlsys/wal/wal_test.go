package wal

import (
	"bytes"
	"fmt"
	"testing"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
)

func newStore(t *testing.T) *fs.FS {
	t.Helper()
	return fs.New()
}

func mustAppend(t *testing.T, j *Journal, kind uint8, body []byte) uint64 {
	t.Helper()
	lsn, err := j.Append(kind, body)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func readSeg(t *testing.T, fsys *fs.FS, dir string, n int) []byte {
	t.Helper()
	b, errno := fsys.ReadFile(fmt.Sprintf("%s/seg-%06d.wal", dir, n), fs.Root)
	if errno != kernel.OK {
		t.Fatalf("read segment %d: errno %d", n, errno)
	}
	return b
}

func writeSeg(t *testing.T, fsys *fs.FS, dir string, n int, b []byte) {
	t.Helper()
	if errno := fsys.WriteFile(fmt.Sprintf("%s/seg-%06d.wal", dir, n), b, 0644, fs.Root); errno != kernel.OK {
		t.Fatalf("write segment %d: errno %d", n, errno)
	}
}

func TestRoundTrip(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		body := []byte(fmt.Sprintf("record-%02d", i))
		lsn := mustAppend(t, j, uint8(i%7), body)
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, Kind: uint8(i % 7), Body: body})
	}
	j2, recs, err := Open(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		w := want[i]
		if r.LSN != w.LSN || r.Kind != w.Kind || !bytes.Equal(r.Body, w.Body) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	if j2.NextLSN() != 21 || j2.Torn() != 0 {
		t.Fatalf("NextLSN=%d Torn=%d, want 21, 0", j2.NextLSN(), j2.Torn())
	}
	// Appends continue the LSN stream in a fresh segment.
	if lsn := mustAppend(t, j2, 9, []byte("after")); lsn != 21 {
		t.Fatalf("append after reopen: lsn = %d, want 21", lsn)
	}
}

func TestSegmentRotation(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, j, 1, bytes.Repeat([]byte{0xab}, 20))
	}
	if j.Segments() < 3 {
		t.Fatalf("Segments() = %d, want >= 3 with a 64-byte threshold", j.Segments())
	}
	// No .tmp leftovers after clean rotation.
	names, errno := fsys.Readdir("/", "/wal", fs.Root)
	if errno != kernel.OK {
		t.Fatalf("readdir: errno %d", errno)
	}
	for _, n := range names {
		if !isSegment(n) {
			t.Fatalf("unexpected non-segment file %q after rotation", n)
		}
	}
	_, recs, err := Open(fsys, "/wal", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("replayed %d records across segments, want 12", len(recs))
	}
}

func TestTornTailToleratedAndRepaired(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("alpha"))
	mustAppend(t, j, 2, []byte("beta"))
	if err := j.AppendTorn(3, []byte("gamma-torn")); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := Open(fsys, "/wal", 0)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	if len(recs) != 2 || j2.Torn() != 1 {
		t.Fatalf("replayed %d records, torn %d; want 2 records, 1 torn", len(recs), j2.Torn())
	}
	if j2.NextLSN() != 3 {
		t.Fatalf("NextLSN = %d after dropped tear, want 3", j2.NextLSN())
	}
	// The repair rewrote the segment: a second open sees a clean journal.
	j3, recs3, err := Open(fsys, "/wal", 0)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	if len(recs3) != 2 || j3.Torn() != 0 {
		t.Fatalf("after repair: %d records, torn %d; want 2, 0", len(recs3), j3.Torn())
	}
}

func TestRejectsBadChecksum(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("alpha"))
	mustAppend(t, j, 2, []byte("beta"))
	b := readSeg(t, fsys, "/wal", 1)
	b[len(b)-1] ^= 0xff // corrupt the final record's body
	writeSeg(t, fsys, "/wal", 1, b)
	if _, _, err := Open(fsys, "/wal", 0); err == nil {
		t.Fatal("Open accepted a corrupted record")
	}
}

func TestRejectsOutOfOrderLSN(t *testing.T) {
	fsys := newStore(t)
	var b []byte
	b = append(b, EncodeRecord(1, 1, []byte("one"))...)
	b = append(b, EncodeRecord(3, 1, []byte("three"))...) // skips LSN 2
	fsys.MustMkdirAll("/wal")
	writeSeg(t, fsys, "/wal", 1, b)
	if _, _, err := Open(fsys, "/wal", 0); err == nil {
		t.Fatal("Open accepted an LSN gap")
	}
}

func TestRejectsMidJournalTruncation(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustAppend(t, j, 1, []byte("0123456789abcdef"))
	}
	if j.Segments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", j.Segments())
	}
	// Tear the FIRST segment: a non-final segment must reject truncation.
	b := readSeg(t, fsys, "/wal", 1)
	writeSeg(t, fsys, "/wal", 1, b[:len(b)-3])
	if _, _, err := Open(fsys, "/wal", 32); err == nil {
		t.Fatal("Open accepted a truncated non-final segment")
	}
}

func TestRejectsHostileLength(t *testing.T) {
	b := EncodeRecord(1, 1, []byte("x"))
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := Parse(b, 1, false); err == nil {
		t.Fatal("Parse accepted a hostile length prefix")
	}
}

func TestIgnoresTmpLeftovers(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("alpha"))
	// A crash between temp-write and rename leaves a .tmp behind.
	if errno := fsys.WriteFile("/wal/seg-000002.wal.tmp", []byte("garbage"), 0644, fs.Root); errno != kernel.OK {
		t.Fatalf("plant tmp: errno %d", errno)
	}
	_, recs, err := Open(fsys, "/wal", 0)
	if err != nil {
		t.Fatalf("Open with tmp leftover: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	fsys := newStore(t)
	j, err := Create(fsys, "/wal", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("alpha"))
	if _, err := Create(fsys, "/wal", 0); err == nil {
		t.Fatal("Create accepted a directory with existing segments")
	}
}
