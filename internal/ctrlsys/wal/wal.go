// Package wal is the service node's write-ahead journal: the artifact
// that turns the control system into a crash-only program. Every
// scheduler state transition — job submit/start/complete, partition
// alloc/boot/free, checkpoint commit, midplane strike/blacklist — is
// appended as a length-prefixed, checksummed, LSN-ordered record to a
// segmented log on the service node's ION filesystem before the
// transition is considered to have happened. Recovery is then replay: a
// fresh service node reads the journal back and reconstructs exactly the
// durable prefix of the dead one's state.
//
// The format is deliberately boring, because recovery code runs when
// everything else has already gone wrong. A record on the wire is
//
//	u32 length | u32 fnv32a(payload) | payload
//	payload  = u8 version | u8 kind | u64 lsn | body
//
// and a journal is a directory of segment files seg-NNNNNN.wal, rotated
// when the active segment passes the size threshold. New segments are
// created via write-to-temp + rename, so rotation is atomic: a crash
// between the two leaves only an ignorable .tmp. Within a segment,
// appends model an in-place file append, which is where a crash can tear
// the final record.
//
// Replay is strict everywhere strictness is safe and tolerant in the one
// place it must not be: a record with a bad checksum, an out-of-order
// LSN, a hostile length, or a truncation in the middle of the journal is
// corruption and rejects the whole journal — but a torn final record in
// the final segment is the expected signature of a crash mid-append
// (the record never committed) and is silently dropped; everything
// before it replays. Open repairs the tear in place (again via
// temp+rename) before appending anything new, so a once-torn segment can
// never later masquerade as mid-journal corruption.
package wal

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"bgcnk/internal/fs"
	"bgcnk/internal/kernel"
)

// Wire-format constants.
const (
	recVersion = 1

	// headerBytes is the length + checksum prefix.
	headerBytes = 8
	// prefixBytes is the version/kind/LSN part of the payload.
	prefixBytes = 10

	// MaxBody bounds a record body; a hostile length prefix must not
	// drive a huge allocation during replay.
	MaxBody = 4 << 20

	// DefaultSegmentBytes is the rotation threshold when the caller
	// passes 0.
	DefaultSegmentBytes = 64 << 10
)

// Record is one journal entry. Kind is opaque to the WAL — the control
// system assigns meaning; the WAL guarantees only ordering, integrity and
// durability.
type Record struct {
	LSN  uint64
	Kind uint8
	Body []byte
}

// Journal is an open, appendable log. All methods are single-threaded,
// like the service node that owns it.
type Journal struct {
	fsys     *fs.FS
	dir      string
	segBytes int

	seg     int    // active segment number (1-based)
	active  []byte // active segment contents, mirroring the durable file
	started bool   // active segment file exists on the store

	next     uint64 // next LSN to assign
	records  int    // records durable across all segments
	bytes    int    // bytes durable across all segments
	sealed   int    // sealed (non-active) segment count
	replayed int    // records recovered by Open (0 for Create)
	torn     int    // torn records dropped by Open
}

func segName(n int) string { return fmt.Sprintf("seg-%06d.wal", n) }

// Create initializes an empty journal in dir (created if absent). The
// directory must not already contain segments; use Open to resume one.
func Create(fsys *fs.FS, dir string, segBytes int) (*Journal, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	fsys.MustMkdirAll(dir)
	names, errno := fsys.Readdir("/", dir, fs.Root)
	if errno != kernel.OK {
		return nil, fmt.Errorf("wal: readdir %s: errno %d", dir, errno)
	}
	for _, n := range names {
		if isSegment(n) {
			return nil, fmt.Errorf("wal: %s already holds segment %s; use Open", dir, n)
		}
	}
	return &Journal{fsys: fsys, dir: dir, segBytes: segBytes, seg: 1, next: 1}, nil
}

// Open replays an existing journal (creating it if the directory is
// empty), repairs a torn tail if the final segment has one, seals every
// existing segment, and returns the journal positioned to append into a
// fresh segment, together with the replayed records. Leftover .tmp files
// from a crash mid-rotation are ignored: their contents never committed.
func Open(fsys *fs.FS, dir string, segBytes int) (*Journal, []Record, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	fsys.MustMkdirAll(dir)
	names, errno := fsys.Readdir("/", dir, fs.Root)
	if errno != kernel.OK {
		return nil, nil, fmt.Errorf("wal: readdir %s: errno %d", dir, errno)
	}
	var segs []string
	for _, n := range names {
		if isSegment(n) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)

	j := &Journal{fsys: fsys, dir: dir, segBytes: segBytes, next: 1}
	var all []Record
	for i, name := range segs {
		path := dir + "/" + name
		blob, errno := fsys.ReadFile(path, fs.Root)
		if errno != kernel.OK {
			return nil, nil, fmt.Errorf("wal: read %s: errno %d", path, errno)
		}
		final := i == len(segs)-1
		recs, clean, torn, err := Parse(blob, j.next, final)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %v", name, err)
		}
		if torn > 0 {
			// Repair the tear in place, atomically, so this segment can
			// never later read as mid-journal corruption.
			tmp := path + ".tmp"
			if errno := fsys.WriteFile(tmp, blob[:clean], 0644, fs.Root); errno != kernel.OK {
				return nil, nil, fmt.Errorf("wal: repair %s: errno %d", path, errno)
			}
			if errno := fsys.Rename("/", tmp, path, fs.Root); errno != kernel.OK {
				return nil, nil, fmt.Errorf("wal: repair rename %s: errno %d", path, errno)
			}
			j.torn += torn
		}
		all = append(all, recs...)
		j.next += uint64(len(recs))
		j.bytes += clean
		j.records += len(recs)
	}
	j.sealed = len(segs)
	j.seg = len(segs) + 1
	j.replayed = len(all)
	return j, all, nil
}

func isSegment(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal")
}

// EncodeRecord renders one record in wire format. Encoding is canonical:
// Parse of the result yields exactly (lsn, kind, body), and re-encoding a
// parsed record reproduces the input bytes.
func EncodeRecord(lsn uint64, kind uint8, body []byte) []byte {
	payload := make([]byte, 0, prefixBytes+len(body))
	payload = append(payload, recVersion, kind)
	payload = appendU64(payload, lsn)
	payload = append(payload, body...)
	h := fnv.New32a()
	h.Write(payload)
	out := make([]byte, 0, headerBytes+len(payload))
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, h.Sum32())
	return append(out, payload...)
}

// Append commits one record and returns its LSN. The active segment file
// is (re)written in full — the simulated store's version of an in-place
// append — and a new segment is cut first when the active one is past the
// rotation threshold.
func (j *Journal) Append(kind uint8, body []byte) (uint64, error) {
	if len(body) > MaxBody {
		return 0, fmt.Errorf("wal: record body %d bytes exceeds cap %d", len(body), MaxBody)
	}
	rec := EncodeRecord(j.next, kind, body)
	if j.started && len(j.active)+len(rec) > j.segBytes {
		// Seal the active segment (its file is already complete) and cut
		// a new one.
		j.sealed++
		j.seg++
		j.active = nil
		j.started = false
	}
	j.active = append(j.active, rec...)
	if err := j.writeActive(); err != nil {
		return 0, err
	}
	lsn := j.next
	j.next++
	j.records++
	j.bytes += len(rec)
	return lsn, nil
}

// AppendTorn models a crash in the middle of an append: a strict prefix
// of the record's bytes reaches the store and the record never commits.
// The journal must not be used afterwards — the owner is dead; the next
// Open will drop the tear and repair the segment.
func (j *Journal) AppendTorn(kind uint8, body []byte) error {
	rec := EncodeRecord(j.next, kind, body)
	cut := len(rec) / 2
	if cut < 1 {
		cut = 1
	}
	j.active = append(j.active, rec[:cut]...)
	return j.writeActive()
}

func (j *Journal) writeActive() error {
	path := j.dir + "/" + segName(j.seg)
	if !j.started {
		// First write of a fresh segment goes through temp + rename so
		// rotation is atomic on the store.
		tmp := path + ".tmp"
		if errno := j.fsys.WriteFile(tmp, j.active, 0644, fs.Root); errno != kernel.OK {
			return fmt.Errorf("wal: write %s: errno %d", tmp, errno)
		}
		if errno := j.fsys.Rename("/", tmp, path, fs.Root); errno != kernel.OK {
			return fmt.Errorf("wal: rename %s: errno %d", path, errno)
		}
		j.started = true
		return nil
	}
	if errno := j.fsys.WriteFile(path, j.active, 0644, fs.Root); errno != kernel.OK {
		return fmt.Errorf("wal: write %s: errno %d", path, errno)
	}
	return nil
}

// NextLSN returns the LSN the next Append will commit.
func (j *Journal) NextLSN() uint64 { return j.next }

// Records returns the number of durable records (replayed + appended).
func (j *Journal) Records() int { return j.records }

// Bytes returns the durable journal size across all segments.
func (j *Journal) Bytes() int { return j.bytes }

// Segments returns the segment count, including the active one if it has
// been started.
func (j *Journal) Segments() int {
	if j.started {
		return j.sealed + 1
	}
	return j.sealed
}

// Replayed returns how many records Open recovered.
func (j *Journal) Replayed() int { return j.replayed }

// Torn returns how many torn tail records Open dropped and repaired.
func (j *Journal) Torn() int { return j.torn }

// Parse decodes one segment's raw contents. firstLSN is the LSN the
// segment's first record must carry; final marks the journal's last
// segment, where a torn trailing record is tolerated (dropped, counted in
// torn) rather than rejected. clean is the byte length of the valid
// prefix. Everything else — bad version, bad checksum, hostile length,
// LSN out of order, or truncation in a non-final segment — is an error.
func Parse(b []byte, firstLSN uint64, final bool) (recs []Record, clean int, torn int, err error) {
	off := 0
	want := firstLSN
	for off < len(b) {
		if len(b)-off < headerBytes {
			if final {
				return recs, off, 1, nil
			}
			return nil, 0, 0, fmt.Errorf("wal: truncated record header at offset %d", off)
		}
		length := int(readU32(b[off:]))
		sum := readU32(b[off+4:])
		if length < prefixBytes || length > MaxBody+prefixBytes {
			return nil, 0, 0, fmt.Errorf("wal: record at offset %d claims %d payload bytes", off, length)
		}
		if off+headerBytes+length > len(b) {
			if final {
				return recs, off, 1, nil
			}
			return nil, 0, 0, fmt.Errorf("wal: truncated record payload at offset %d", off)
		}
		payload := b[off+headerBytes : off+headerBytes+length]
		h := fnv.New32a()
		h.Write(payload)
		if h.Sum32() != sum {
			return nil, 0, 0, fmt.Errorf("wal: checksum mismatch at offset %d", off)
		}
		if payload[0] != recVersion {
			return nil, 0, 0, fmt.Errorf("wal: unsupported record version %d at offset %d", payload[0], off)
		}
		lsn := readU64(payload[2:])
		if lsn != want {
			return nil, 0, 0, fmt.Errorf("wal: LSN %d at offset %d, want %d", lsn, off, want)
		}
		body := make([]byte, length-prefixBytes)
		copy(body, payload[prefixBytes:])
		recs = append(recs, Record{LSN: lsn, Kind: payload[1], Body: body})
		want++
		off += headerBytes + length
	}
	return recs, off, 0, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v)), uint32(v>>32))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(readU32(b)) | uint64(readU32(b[4:]))<<32
}
