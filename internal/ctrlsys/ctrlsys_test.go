package ctrlsys

import (
	"testing"

	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
)

func TestAllocateFirstFitAndRelease(t *testing.T) {
	s := New(Config{Topology: Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 4}})
	if got := s.Topology().Midplanes(); got != 4 {
		t.Fatalf("midplanes = %d, want 4", got)
	}
	a, err := s.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base != 0 || a.Nodes != 8 || a.Block != "R00-M0+2" {
		t.Errorf("first partition: base %d nodes %d block %q", a.Base, a.Nodes, a.Block)
	}
	b, err := s.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Base != 2 || b.Block != "R01-M0" {
		t.Errorf("second partition: base %d block %q", b.Base, b.Block)
	}
	if _, err := s.Allocate(2); err == nil {
		t.Error("expected contiguity failure: only midplane 3 is free")
	}
	s.Release(a)
	c, err := s.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Base != 0 {
		t.Errorf("reallocation after release: base %d, want 0", c.Base)
	}
	if _, err := s.Allocate(99); err == nil {
		t.Error("expected oversized-partition error")
	}
	if got := s.FreeMidplanes(); got != 1 {
		t.Errorf("free midplanes = %d, want 1", got)
	}
}

// TestBootScalingShape pins the paper's qualitative boot result at the
// model level: doubling the node count barely moves a CNK broadcast boot
// but roughly doubles an FWK staggered boot.
func TestBootScalingShape(t *testing.T) {
	for n := 64; n <= 1024; n *= 2 {
		small := SimulateBoot(BootConfig{Kind: machine.KindCNK, Nodes: n, NodesPerMidplane: 32})
		big := SimulateBoot(BootConfig{Kind: machine.KindCNK, Nodes: 2 * n, NodesPerMidplane: 32})
		if ratio := float64(big.Total) / float64(small.Total); ratio > 1.2 {
			t.Errorf("CNK boot %d->%d nodes grew %.2fx; broadcast should be near-flat", n, 2*n, ratio)
		}
		small = SimulateBoot(BootConfig{Kind: machine.KindFWK, Nodes: n, NodesPerMidplane: 32})
		big = SimulateBoot(BootConfig{Kind: machine.KindFWK, Nodes: 2 * n, NodesPerMidplane: 32})
		if ratio := float64(big.Total) / float64(small.Total); ratio < 1.7 {
			t.Errorf("FWK boot %d->%d nodes grew only %.2fx; staggered load should be ~linear", n, 2*n, ratio)
		}
	}
	// Phases must add up, and the stripped image must beat the full one.
	r := SimulateBoot(BootConfig{Kind: machine.KindFWK, Nodes: 128, NodesPerMidplane: 32})
	if r.Total != r.ImagePhase+r.PerNodePhase+r.InitPhase {
		t.Error("FWK boot phases do not sum to total")
	}
	stripped := SimulateBoot(BootConfig{Kind: machine.KindFWK, Nodes: 128, NodesPerMidplane: 32, Stripped: true})
	if stripped.Total >= r.Total {
		t.Error("stripped FWK boot is not faster than full")
	}
}

func TestScheduleFIFOBackfill(t *testing.T) {
	topo := Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 4} // 4 midplanes
	jobs := []Job{
		{ID: 0, Midplanes: 2},
		{ID: 1, Midplanes: 4},
		{ID: 2, Midplanes: 2},
		{ID: 3, Midplanes: 1},
	}
	durs := []sim.Cycles{100, 100, 150, 40}
	sched := ScheduleFIFOBackfill(topo, jobs, func(id int) sim.Cycles { return durs[id] })

	p := sched.Placements
	if p[0].Start != 0 {
		t.Errorf("job 0 start %d, want 0", p[0].Start)
	}
	// Job 1 (the blocked head, needs the whole machine) must start the
	// moment job 0 frees its block — backfill may not delay it.
	if p[1].Start != 100 {
		t.Errorf("job 1 start %d, want 100 (EASY reservation violated)", p[1].Start)
	}
	// Job 2 fits at t=0 but its 150 cycles would run past the head's
	// t=100 reservation; it must NOT backfill. Job 3 drains before the
	// reservation and must.
	if p[2].Backfilled || p[2].Start != 200 {
		t.Errorf("job 2: backfilled=%v start=%d, want queued start at 200", p[2].Backfilled, p[2].Start)
	}
	if !p[3].Backfilled || p[3].Start != 0 {
		t.Errorf("job 3: backfilled=%v start=%d, want backfill at 0", p[3].Backfilled, p[3].Start)
	}
	if sched.Backfilled != 1 {
		t.Errorf("backfilled = %d, want 1", sched.Backfilled)
	}
	if sched.Makespan != 350 {
		t.Errorf("makespan = %d, want 350", sched.Makespan)
	}
	if sched.Utilization <= 0 || sched.Utilization > 1 {
		t.Errorf("utilization = %f out of range", sched.Utilization)
	}
}

func TestGenerateJobsDeterministic(t *testing.T) {
	a := GenerateJobs(7, 50, 4)
	b := GenerateJobs(7, 50, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Midplanes < 1 || a[i].Midplanes > 4 {
			t.Fatalf("job %d midplanes %d out of range", i, a[i].Midplanes)
		}
	}
	if c := GenerateJobs(8, 50, 4); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced an identical job prefix")
	}
}

// TestDrainSmoke drains a small CNK queue serially and checks the basics:
// every job succeeds, the schedule covers every job, and a repeat drain
// is signature-identical.
func TestDrainSmoke(t *testing.T) {
	cfg := Config{
		Topology: Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     machine.KindCNK,
		Seed:     3,
	}
	s := New(cfg)
	jobs := GenerateJobs(cfg.Seed, 8, cfg.Topology.Midplanes())
	d, err := s.Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failures != 0 {
		for _, r := range d.Results {
			if r.Failed() {
				t.Errorf("job %d failed: err=%q exits=%v", r.Job.ID, r.Err, r.ExitCodes)
			}
		}
	}
	for id, p := range d.Sched.Placements {
		if p.End <= p.Start {
			t.Errorf("job %d placement [%d,%d] is empty", id, p.Start, p.End)
		}
	}
	if d.JobsPerSecond() <= 0 {
		t.Error("jobs/sec not positive")
	}
	d2, err := New(cfg).Drain(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Signature() != d2.Signature() {
		t.Errorf("repeat drain signature %016x != %016x", d2.Signature(), d.Signature())
	}
}

func TestPartitionPersonalities(t *testing.T) {
	s := New(Config{Topology: DefaultTopology(), Kind: machine.KindFWK, Seed: 9})
	p, err := s.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	pers := p.Personalities()
	if len(pers) != p.Nodes {
		t.Fatalf("%d personalities for %d nodes", len(pers), p.Nodes)
	}
	seen := map[int32]bool{}
	for _, per := range pers {
		if seen[per.Rank] {
			t.Fatalf("duplicate rank %d", per.Rank)
		}
		seen[per.Rank] = true
		got, err := UnmarshalPersonality(per.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if *got != per {
			t.Fatalf("round trip changed: %+v vs %+v", *got, per)
		}
	}
}
