package ctrlsys

import (
	"bytes"
	"testing"

	"bgcnk/internal/machine"
	"bgcnk/internal/obs"
)

// The control system's job-lifecycle spans are emitted serially, in
// job-ID order, from the merged drain result — so the trace is a
// function of WHAT was computed, never of how many workers computed it.
// These tests pin that worker invariance and the obs layer's inertness
// on the drain itself.

func obsDrainConfig(workers int, armed bool) Config {
	cfg := Config{
		Topology: Topology{Racks: 1, MidplanesPerRack: 4, NodesPerMidplane: 2},
		Kind:     machine.KindCNK,
		Seed:     42,
		Workers:  workers,
	}
	if armed {
		cfg.Obs = &obs.Config{}
	}
	return cfg
}

// TestObsDrainWorkerInvariance: the same queue drained on 1, 2 and 8
// workers must export byte-identical trace JSON and binary, and the
// armed drains must Signature-equal an obs-off drain (the recorder
// changes nothing about the simulation).
func TestObsDrainWorkerInvariance(t *testing.T) {
	jobs := func() []Job { return GenerateJobs(42, 12, 4) }

	off := New(obsDrainConfig(1, false))
	base, err := off.Drain(jobs())
	if err != nil {
		t.Fatal(err)
	}
	if off.Obs() != nil || off.TraceJSON() != nil || off.TraceBinary() != nil {
		t.Fatal("unarmed service node has a recorder")
	}

	var wantJSON, wantBin []byte
	for _, workers := range []int{1, 2, 8} {
		s := New(obsDrainConfig(workers, true))
		res, err := s.Drain(jobs())
		if err != nil {
			t.Fatal(err)
		}
		if res.Signature() != base.Signature() {
			t.Errorf("workers=%d: armed obs changed the drain signature: %016x != %016x",
				workers, res.Signature(), base.Signature())
		}
		j, b := s.TraceJSON(), s.TraceBinary()
		if s.Obs().SpanCount() == 0 {
			t.Fatalf("workers=%d: no job spans recorded", workers)
		}
		if wantJSON == nil {
			wantJSON, wantBin = j, b
			continue
		}
		if !bytes.Equal(j, wantJSON) {
			t.Errorf("workers=%d: trace JSON differs from workers=1", workers)
		}
		if !bytes.Equal(b, wantBin) {
			t.Errorf("workers=%d: binary trace differs from workers=1", workers)
		}
	}

	tr, err := obs.Unmarshal(wantBin)
	if err != nil {
		t.Fatalf("drain trace does not decode: %v", err)
	}
	// Every drained job contributes at least submit+boot+run+teardown.
	if len(tr.Spans) < 4*len(base.Results) {
		t.Errorf("only %d spans for %d jobs", len(tr.Spans), len(base.Results))
	}
}

// TestObsDrainResilientSpans: with checkpoint/restart armed and faults
// killing jobs, the lifecycle trace grows restart and ckpt:resume
// markers — and stays worker-invariant.
func TestObsDrainResilientSpans(t *testing.T) {
	build := func(workers int) Config {
		cfg := Config{
			Topology: resilienceTopo(),
			Kind:     machine.KindCNK,
			Seed:     42,
			Workers:  workers,
			Faults:   resilientPlan(machine.KindCNK, 7),
			Ckpt:     CkptConfig{Enabled: true, Interval: 1},
			Obs:      &obs.Config{},
		}
		return cfg
	}
	var want []byte
	var restarts int
	for _, workers := range []int{1, 4} {
		s := New(build(workers))
		res, err := s.Drain(resilienceJobs())
		if err != nil {
			t.Fatal(err)
		}
		restarts = res.Restarts
		j := s.TraceJSON()
		if want == nil {
			want = j
			continue
		}
		if !bytes.Equal(j, want) {
			t.Errorf("workers=%d: resilient drain trace differs from serial", workers)
		}
	}
	if restarts == 0 {
		t.Skip("fault plan produced no restarts; restart-span check not exercised")
	}
	if !bytes.Contains(want, []byte(`"name":"restart"`)) {
		t.Error("restarting drain trace has no restart spans")
	}
}
