package ctrlsys

import (
	"fmt"

	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
	"bgcnk/internal/upc"
)

// Journal record kinds. One kind per scheduler state transition; the WAL
// itself treats them as opaque. Kind numbers are part of the durable
// format — append, never renumber.
const (
	recJobSubmit    = 1  // job entered the queue
	recPartAlloc    = 2  // partition block reserved (base -1 = drain-virtual)
	recPartBoot     = 3  // partition boot issued with its job seed
	recJobStart     = 4  // job launched on its partition
	recCkptCommit   = 5  // resilience resume point made durable
	recJobComplete  = 6  // job finished; body carries the full JobResult
	recPartFree     = 7  // partition block released
	recOrphanKill   = 8  // recovery killed a started-but-unfinished job
	recStrike       = 9  // midplane struck by a job-killing fault
	recBlacklist    = 10 // midplane drained after too many strikes
	recRecoverBegin = 11 // recovery incarnation started reconciling
	recRecoverEnd   = 12 // reconciliation finished
)

// JournalConfig arms the service node's write-ahead journal.
type JournalConfig struct {
	Enabled bool
	// Dir is the journal directory on the control store
	// (default "/ctrl/wal").
	Dir string
	// SegmentBytes is the rotation threshold (default wal's).
	SegmentBytes int
}

func (c JournalConfig) normalized() JournalConfig {
	if c.Dir == "" {
		c.Dir = "/ctrl/wal"
	}
	return c
}

// jenc/jdec are the journal-body codec, in the same strict little-endian
// style as the checkpoint image codec: every length is bounded, every
// read checked, and a decode must consume the body exactly.
type jenc struct{ b []byte }

func (e *jenc) u8(v uint8) { e.b = append(e.b, v) }
func (e *jenc) b1(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *jenc) u32(v uint32)  { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *jenc) i32(v int32)   { e.u32(uint32(v)) }
func (e *jenc) u64(v uint64)  { e.u32(uint32(v)); e.u32(uint32(v >> 32)) }
func (e *jenc) str(s string)  { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *jenc) blob(b []byte) { e.u32(uint32(len(b))); e.b = append(e.b, b...) }

const (
	jMaxStr   = 4096
	jMaxSlice = 1 << 20
)

type jdec struct {
	b   []byte
	off int
	err error
}

func (d *jdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ctrlsys: journal body: "+format, args...)
	}
}

func (d *jdec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail("truncated at %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *jdec) b1() bool { return d.u8() != 0 }

func (d *jdec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail("truncated at %d", d.off)
		return 0
	}
	v := uint32(d.b[d.off]) | uint32(d.b[d.off+1])<<8 | uint32(d.b[d.off+2])<<16 | uint32(d.b[d.off+3])<<24
	d.off += 4
	return v
}

func (d *jdec) i32() int32 { return int32(d.u32()) }

func (d *jdec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *jdec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n > jMaxStr || d.off+n > len(d.b) {
		d.fail("string of %d bytes at %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *jdec) blob() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > jMaxSlice || d.off+n > len(d.b) {
		d.fail("blob of %d bytes at %d", n, d.off)
		return nil
	}
	b := make([]byte, n)
	copy(b, d.b[d.off:d.off+n])
	d.off += n
	return b
}

func (d *jdec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("ctrlsys: journal body: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// jobBody encodes the job spec carried by submit records, so replay can
// cross-check the re-presented queue against what the dead node accepted.
func marshalJob(j Job) []byte {
	var e jenc
	e.i32(int32(j.ID))
	e.str(j.Name)
	e.i32(int32(j.Midplanes))
	e.u64(uint64(j.Work))
	e.i32(int32(j.Exchanges))
	e.u64(uint64(j.IOBytes))
	return e.b
}

func unmarshalJob(b []byte) (Job, error) {
	d := jdec{b: b}
	j := Job{
		ID:        int(d.i32()),
		Name:      d.str(),
		Midplanes: int(d.i32()),
		Work:      sim.Cycles(d.u64()),
		Exchanges: int(d.i32()),
	}
	j.IOBytes = int(d.u64())
	return j, d.finish()
}

// idBody is the one-integer body shared by start/free/orphan records.
func idBody(id int) []byte {
	var e jenc
	e.i32(int32(id))
	return e.b
}

func decodeID(b []byte) (int, error) {
	d := jdec{b: b}
	id := int(d.i32())
	return id, d.finish()
}

func tripleBody(a, b, c int) []byte {
	var e jenc
	e.i32(int32(a))
	e.i32(int32(b))
	e.i32(int32(c))
	return e.b
}

func decodeTriple(b []byte) (int, int, int, error) {
	d := jdec{b: b}
	x := int(d.i32())
	y := int(d.i32())
	z := int(d.i32())
	return x, y, z, d.finish()
}

func bootBody(id int, seed uint64) []byte {
	var e jenc
	e.i32(int32(id))
	e.u64(seed)
	return e.b
}

func decodeBoot(b []byte) (int, uint64, error) {
	d := jdec{b: b}
	id := int(d.i32())
	seed := d.u64()
	return id, seed, d.finish()
}

func (e *jenc) bootResult(br BootResult) {
	e.u8(uint8(br.Kind))
	e.i32(int32(br.Nodes))
	e.u64(br.ImageBytes)
	e.i32(int32(br.Waves))
	e.u64(uint64(br.ImagePhase))
	e.u64(uint64(br.PerNodePhase))
	e.u64(uint64(br.InitPhase))
	e.u64(uint64(br.Total))
}

func (d *jdec) bootResult() BootResult {
	return BootResult{
		Kind:         machine.KernelKind(d.u8()),
		Nodes:        int(d.i32()),
		ImageBytes:   d.u64(),
		Waves:        int(d.i32()),
		ImagePhase:   sim.Cycles(d.u64()),
		PerNodePhase: sim.Cycles(d.u64()),
		InitPhase:    sim.Cycles(d.u64()),
		Total:        sim.Cycles(d.u64()),
	}
}

func (e *jenc) snapshot(s upc.Snapshot) {
	// Counter dimensions are baked into the format; a journal from a
	// different build geometry must not half-decode.
	e.i32(int32(upc.NumSlots))
	e.i32(int32(upc.NumCounters))
	e.i32(int32(upc.MaxSyscalls))
	for sl := 0; sl < upc.NumSlots; sl++ {
		for c := 0; c < int(upc.NumCounters); c++ {
			e.u64(s.Vals[sl][c])
		}
		for c := 0; c < upc.MaxSyscalls; c++ {
			e.u64(s.Sys[sl][c])
		}
	}
}

func (d *jdec) snapshot() upc.Snapshot {
	var s upc.Snapshot
	if int(d.i32()) != upc.NumSlots || int(d.i32()) != int(upc.NumCounters) || int(d.i32()) != upc.MaxSyscalls {
		d.fail("counter geometry mismatch")
		return s
	}
	for sl := 0; sl < upc.NumSlots; sl++ {
		for c := 0; c < int(upc.NumCounters); c++ {
			s.Vals[sl][c] = d.u64()
		}
		for c := 0; c < upc.MaxSyscalls; c++ {
			s.Sys[sl][c] = d.u64()
		}
	}
	return s
}

func (e *jenc) attempt(a Attempt) {
	e.u64(uint64(a.Boot))
	e.u64(uint64(a.Run))
	e.i32(int32(a.ResumeEpoch))
	e.i32(int32(a.FaultMidplane))
	e.u64(uint64(a.Backoff))
	e.b1(a.Completed)
}

func (d *jdec) attempt() Attempt {
	return Attempt{
		Boot:          sim.Cycles(d.u64()),
		Run:           sim.Cycles(d.u64()),
		ResumeEpoch:   int(d.i32()),
		FaultMidplane: int(d.i32()),
		Backoff:       sim.Cycles(d.u64()),
		Completed:     d.b1(),
	}
}

// marshalJobResult flattens a complete JobResult into a journal body.
// Everything that enters DrainResult.Signature must round-trip exactly:
// a recovered drain's accounting is only bit-identical if replay hands
// back precisely what the dead node committed.
func marshalJobResult(r *JobResult) []byte {
	var e jenc
	e.b = append(e.b, marshalJob(r.Job)...)
	e.i32(int32(r.Nodes))
	e.bootResult(r.Boot)
	e.u64(uint64(r.Run))
	e.u64(uint64(r.Teardown))
	e.i32(int32(len(r.ExitCodes)))
	for _, c := range r.ExitCodes {
		e.i32(int32(c))
	}
	e.snapshot(r.Counters)
	e.u64(r.RASEvents)
	e.u64(r.RASHash)
	e.str(r.Err)
	e.i32(int32(len(r.Attempts)))
	for _, a := range r.Attempts {
		e.attempt(a)
	}
	e.i32(int32(r.Restarts))
	e.u64(uint64(r.Wasted))
	e.u64(uint64(r.RestartOverhead))
	e.b1(r.BudgetExhausted)
	e.b1(r.CrashAborted)
	return e.b
}

func (d *jdec) jobResult() *JobResult {
	r := &JobResult{}
	r.Job = Job{
		ID:        int(d.i32()),
		Name:      d.str(),
		Midplanes: int(d.i32()),
		Work:      sim.Cycles(d.u64()),
		Exchanges: int(d.i32()),
		IOBytes:   int(d.u64()),
	}
	r.Nodes = int(d.i32())
	r.Boot = d.bootResult()
	r.Run = sim.Cycles(d.u64())
	r.Teardown = sim.Cycles(d.u64())
	n := int(d.i32())
	if d.err == nil && (n < 0 || n > jMaxSlice/4) {
		d.fail("exit-code count %d", n)
	}
	if d.err == nil {
		r.ExitCodes = make([]int, n)
		for i := range r.ExitCodes {
			r.ExitCodes[i] = int(d.i32())
		}
	}
	r.Counters = d.snapshot()
	r.RASEvents = d.u64()
	r.RASHash = d.u64()
	r.Err = d.str()
	na := int(d.i32())
	if d.err == nil && (na < 0 || na > 4096) {
		d.fail("attempt count %d", na)
	}
	if d.err == nil {
		for i := 0; i < na; i++ {
			r.Attempts = append(r.Attempts, d.attempt())
		}
	}
	r.Restarts = int(d.i32())
	r.Wasted = sim.Cycles(d.u64())
	r.RestartOverhead = sim.Cycles(d.u64())
	r.BudgetExhausted = d.b1()
	r.CrashAborted = d.b1()
	return r
}

func unmarshalJobResult(b []byte) (*JobResult, error) {
	d := jdec{b: b}
	r := d.jobResult()
	return r, d.finish()
}

// resumePoint is the resilience layer's loop state at a checkpoint
// commit: everything runJobResilientFrom needs to continue the restart
// loop exactly where the dead service node left it. res holds the
// partial accounting, rasHash the per-attempt fold so far, next the
// attempt index to run, and image the freshest durable checkpoint blob
// (empty = cold restart).
type resumePoint struct {
	res     JobResult
	rasHash uint64
	next    int
	image   []byte
}

func marshalResume(rp *resumePoint) []byte {
	var e jenc
	body := marshalJobResult(&rp.res)
	e.blob(body)
	e.u64(rp.rasHash)
	e.i32(int32(rp.next))
	e.blob(rp.image)
	return e.b
}

func unmarshalResume(b []byte) (*resumePoint, error) {
	d := jdec{b: b}
	body := d.blob()
	rp := &resumePoint{rasHash: d.u64(), next: int(d.i32()), image: d.blob()}
	if err := d.finish(); err != nil {
		return nil, err
	}
	res, err := unmarshalJobResult(body)
	if err != nil {
		return nil, err
	}
	rp.res = *res
	return rp, nil
}

// completeBody pairs the job ID with its full result.
func completeBody(id int, r *JobResult) []byte {
	var e jenc
	e.i32(int32(id))
	e.blob(marshalJobResult(r))
	return e.b
}

func decodeComplete(b []byte) (int, *JobResult, error) {
	d := jdec{b: b}
	id := int(d.i32())
	body := d.blob()
	if err := d.finish(); err != nil {
		return 0, nil, err
	}
	r, err := unmarshalJobResult(body)
	return id, r, err
}

// ckptCommitRaw pairs the job ID with an already-marshalled resume
// point (the bytes the resilience loop's commit hook handed over).
func ckptCommitRaw(id int, rp []byte) []byte {
	var e jenc
	e.i32(int32(id))
	e.blob(rp)
	return e.b
}

func decodeCkptCommit(b []byte) (int, *resumePoint, error) {
	d := jdec{b: b}
	id := int(d.i32())
	body := d.blob()
	if err := d.finish(); err != nil {
		return 0, nil, err
	}
	rp, err := unmarshalResume(body)
	return id, rp, err
}
