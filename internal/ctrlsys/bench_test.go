package ctrlsys

import (
	"runtime"
	"testing"

	"bgcnk/internal/machine"
)

func BenchmarkSimulateBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateBoot(BootConfig{Kind: machine.KindCNK, Nodes: 1024, NodesPerMidplane: 32})
		SimulateBoot(BootConfig{Kind: machine.KindFWK, Nodes: 1024, NodesPerMidplane: 32})
	}
}

func benchDrain(b *testing.B, workers int) {
	cfg := Config{
		Topology: Topology{Racks: 2, MidplanesPerRack: 2, NodesPerMidplane: 2},
		Kind:     machine.KindCNK,
		Seed:     1009,
		Workers:  workers,
	}
	jobs := GenerateJobs(cfg.Seed, 24, cfg.Topology.Midplanes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg).Drain(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrainSerial(b *testing.B)   { benchDrain(b, 1) }
func BenchmarkDrainParallel(b *testing.B) { benchDrain(b, runtime.NumCPU()) }
