package ctrlsys

import (
	"fmt"
	"hash/fnv"
	"time"

	"bgcnk/internal/sim"
	"bgcnk/internal/sim/replica"
	"bgcnk/internal/upc"
)

// DrainResult is a fully drained queue: every job's result (in job-ID
// order, regardless of execution order), the control-time schedule, and
// the deterministic merge of exit codes, counters and RAS streams.
type DrainResult struct {
	Results []*JobResult // indexed by job ID
	Sched   Schedule

	Merged    upc.Snapshot // machine-wide counter sum over all jobs
	RASEvents uint64
	RASHash   uint64 // fold of per-job boot-relative hashes, job-ID order
	Failures  int

	// Errs carries typed per-job failures in job-ID order; a job that
	// exhausts its restart budget contributes an error wrapping
	// ErrRestartBudgetExhausted (test with errors.Is). Empty when every
	// job completed.
	Errs []error
	// Restarts and Wasted aggregate the resilience layer's work: restart
	// attempts performed and partition occupancy burned by failed
	// attempts (both zero with checkpointing off).
	Restarts int
	Wasted   sim.Cycles

	Workers int
	// Wall is host time spent simulating — the one field that is NOT
	// deterministic and is excluded from Signature. Serial vs parallel
	// drains differ here and nowhere else.
	Wall time.Duration

	// CrashAborted counts jobs lost to a service-node crash with
	// journaling off (each contributes an ErrServiceNodeCrash entry to
	// Errs and is NOT counted in Failures: the control system died, the
	// job didn't). Always zero when the journal is on — recovery replays
	// the drain to completion instead.
	CrashAborted int
	// Crash and Journal account the crash-only machinery. Both are
	// deterministic for a given config but deliberately excluded from
	// Signature: a crashed-and-recovered drain must Signature-equal the
	// crash-free drain, which these fields by construction cannot.
	Crash   CrashStats
	Journal JournalStats
}

// Drain simulates every queued job and replays the FIFO+backfill queue
// over the results. Jobs execute on a worker pool bounded by
// Config.Workers; because each job runs on its own isolated partition
// machine seeded purely by job ID, execution order cannot affect any
// result, and the merge (performed in job-ID order after all workers
// finish) is bit-identical at every worker count. This is the paper's
// control-plane parallelism done deterministically: real wall-clock
// speedup for multi-partition simulations with none of the replay
// guarantees given up.
func (s *ServiceNode) Drain(jobs []Job) (*DrainResult, error) {
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	for i, job := range jobs {
		if job.ID != i {
			return nil, fmt.Errorf("ctrlsys: job %d has ID %d; Drain needs dense job IDs", i, job.ID)
		}
	}
	var res *DrainResult
	var err error
	if s.w != nil {
		res, err = s.drainJournaled(jobs, workers)
	} else {
		res, err = s.drainDirect(jobs, workers)
	}
	if err == nil {
		// Emitted here — serially, in job-ID order, from the merged
		// result — so the recorded trace is byte-identical at every
		// worker count.
		s.emitJobSpans(res)
	}
	return res, err
}

// drainDirect is the journal-free fast path: simulate everything, merge
// once. Its results are bit-identical to drainJournaled's — the journal
// changes what is durable, never what is computed.
func (s *ServiceNode) drainDirect(jobs []Job, workers int) (*DrainResult, error) {
	res := &DrainResult{Results: make([]*JobResult, len(jobs)), Workers: workers}
	runOne := s.runJob
	if s.cfg.Ckpt.Enabled {
		runOne = s.runJobResilient
	}
	start := time.Now()
	res.Results = replica.Map(workers, len(jobs), func(i int) *JobResult {
		return runOne(jobs[i])
	})
	res.Wall = time.Since(start)
	s.mergeResults(res, jobs)
	return res, nil
}

// mergeResults performs the deterministic merge, strictly in job-ID
// order, and computes the control-time schedule. res.Results must be
// fully populated (one entry per job, in job-ID order).
func (s *ServiceNode) mergeResults(res *DrainResult, jobs []Job) {
	snaps := make([]upc.Snapshot, 0, len(jobs))
	hash := uint64(14695981039346656037)
	for _, r := range res.Results {
		snaps = append(snaps, r.Counters)
		res.RASEvents += r.RASEvents
		hash = hash*1099511628211 ^ r.RASHash
		res.Restarts += r.Restarts
		res.Wasted += r.Wasted
		switch {
		case r.CrashAborted:
			res.CrashAborted++
		case r.Failed():
			res.Failures++
		}
		if r.BudgetExhausted {
			res.Errs = append(res.Errs, fmt.Errorf(
				"job %d (%s): %w after %d attempts",
				r.Job.ID, r.Job.Name, ErrRestartBudgetExhausted, len(r.Attempts)))
		}
		if r.CrashAborted {
			res.Errs = append(res.Errs, fmt.Errorf(
				"job %d (%s): aborted: %w", r.Job.ID, r.Job.Name, ErrServiceNodeCrash))
		}
	}
	res.RASHash = hash
	res.Merged = upc.Merge(snaps...)
	dur := func(id int) sim.Cycles {
		d := res.Results[id].Duration()
		if d == 0 {
			d = 1 // a job that died before booting still occupies its block briefly
		}
		return d
	}
	if s.cfg.Ckpt.Enabled {
		res.Sched = ScheduleResilient(s.topo, jobs, res.Results, s.cfg.Ckpt.normalized())
	} else {
		res.Sched = ScheduleFIFOBackfill(s.topo, jobs, dur)
	}
}

// JobsPerSecond is the drained throughput in simulated control time.
func (r *DrainResult) JobsPerSecond() float64 {
	if r.Sched.Makespan == 0 {
		return 0
	}
	return float64(len(r.Results)) / r.Sched.Makespan.Seconds()
}

// Signature digests everything deterministic about the drain: per-job
// exit codes, run cycles, RAS streams, the merged counters and the
// schedule. Two drains of the same queue must Signature-equal no matter
// how many workers simulated them; host wall-clock is excluded.
func (r *DrainResult) Signature() uint64 {
	h := fnv.New64a()
	for _, jr := range r.Results {
		fmt.Fprintf(h, "job%d|%d|%d|%d|%016x|%s|", jr.Job.ID, jr.Run, jr.Boot.Total,
			jr.RASEvents, jr.RASHash, jr.Err)
		for _, c := range jr.ExitCodes {
			fmt.Fprintf(h, "%d,", c)
		}
		fmt.Fprintf(h, "%s|", jr.Counters.Text())
		// Restart history enters the signature only when there is one, so
		// checkpoint-off drains keep their pre-resilience signatures.
		if jr.Restarts > 0 || jr.BudgetExhausted {
			fmt.Fprintf(h, "restarts%d|wasted%d|overhead%d|exhausted%v|",
				jr.Restarts, jr.Wasted, jr.RestartOverhead, jr.BudgetExhausted)
			for _, a := range jr.Attempts {
				fmt.Fprintf(h, "att%d|%d|%d|%d|%v|", a.Run, a.Backoff,
					a.ResumeEpoch, a.FaultMidplane, a.Completed)
			}
		}
	}
	fmt.Fprintf(h, "merged|%s|", r.Merged.Text())
	for _, p := range r.Sched.Placements {
		fmt.Fprintf(h, "place%d|%d|%d|%d|%d|%v|", p.JobID, p.Base, p.Midplanes,
			p.Start, p.End, p.Backfilled)
	}
	fmt.Fprintf(h, "makespan%d|backfill%d", r.Sched.Makespan, r.Sched.Backfilled)
	return h.Sum64()
}
