package ctrlsys

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzSeedPersonalities are the hand-picked records seeded into the fuzz
// corpus: the zero value, a typical record, extreme field values, and the
// block-name edge cases (empty, multi-midplane, maximum length).
func fuzzSeedPersonalities() []Personality {
	return []Personality{
		{},
		{Rank: 3, Nodes: 8, X: 3, Partition: 2, Base: 1, Block: "R00-M1",
			Kind: 1, Seed: 0xdeadbeef, MemBytes: 256 << 20},
		{Rank: -1, Nodes: -1, X: -1, Y: -1, Z: -1, Partition: -1, Base: -1,
			Block: "R01-M0+2", Kind: 0xff, Seed: ^uint64(0), MemBytes: ^uint64(0)},
		{Block: strings.Repeat("b", maxBlockName)},
	}
}

func FuzzPersonality(f *testing.F) {
	for _, p := range fuzzSeedPersonalities() {
		p := p
		wire := p.Marshal()
		f.Add(wire)
		f.Add(wire[:len(wire)-1]) // truncated tail
		f.Add(wire[:len(wire)/2]) // truncated mid-record
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("go test fuzz is not a personality"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPersonality(data)
		if err != nil {
			return // rejection is fine; the property is about accepted inputs
		}
		// Accepted input must be canonical: it re-marshals to exactly the
		// bytes that were accepted, and that round-trips to the same record.
		wire := p.Marshal()
		if !bytes.Equal(wire, data) {
			t.Fatalf("accepted non-canonical input:\n in  %x\n out %x", data, wire)
		}
		q, err := UnmarshalPersonality(wire)
		if err != nil {
			t.Fatalf("re-decode of own marshal failed: %v", err)
		}
		if *q != *p {
			t.Fatalf("round trip changed record: %+v vs %+v", *q, *p)
		}
	})
}

// TestPersonalityCodecRejects pins the decoder's rejection behaviour
// deterministically, independent of the fuzzer.
func TestPersonalityCodecRejects(t *testing.T) {
	good := fuzzSeedPersonalities()[1]
	wire := good.Marshal()

	for cut := 0; cut < len(wire); cut++ {
		if _, err := UnmarshalPersonality(wire[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := UnmarshalPersonality(append(append([]byte{}, wire...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte{}, wire...)
	bad[0] ^= 0x01
	if _, err := UnmarshalPersonality(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, wire...)
	bad[4] = personalityVersion + 1
	if _, err := UnmarshalPersonality(bad); err == nil {
		t.Error("unknown version accepted")
	}
	// A hostile block-name length must be rejected without a big allocation.
	hostile := good
	hostile.Block = ""
	hw := hostile.Marshal()
	hw[33], hw[34], hw[35], hw[36] = 0xff, 0xff, 0xff, 0x7f // length field
	if _, err := UnmarshalPersonality(hw); err == nil {
		t.Error("hostile block length accepted")
	}
	// A name longer than the cap never marshals, so the decoder may
	// reject the cap boundary strictly.
	long := Personality{Block: strings.Repeat("x", maxBlockName+10)}
	rt, err := UnmarshalPersonality(long.Marshal())
	if err != nil {
		t.Fatalf("capped marshal did not decode: %v", err)
	}
	if len(rt.Block) != maxBlockName {
		t.Errorf("block name cap not applied: got %d bytes", len(rt.Block))
	}
}

// TestWritePersonalityCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzPersonality. Skipped unless GEN_CORPUS=1; rerun it
// after changing the wire format or the seed set.
func TestWritePersonalityCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the committed fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPersonality")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seeds := fuzzSeedPersonalities()
	write("seed_zero", seeds[0].Marshal())
	write("seed_typical", seeds[1].Marshal())
	write("seed_extremes", seeds[2].Marshal())
	write("seed_maxname", seeds[3].Marshal())
	typical := seeds[1].Marshal()
	write("seed_trunc_tail", typical[:len(typical)-1])
	write("seed_trunc_half", typical[:len(typical)/2])
	write("seed_empty", []byte{})
	write("seed_junk", []byte{0xff, 0xff, 0xff, 0xff})
}
