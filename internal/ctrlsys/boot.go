package ctrlsys

import (
	"math/bits"

	"bgcnk/internal/cnk"
	"bgcnk/internal/collective"
	"bgcnk/internal/fwk"
	"bgcnk/internal/hw"
	"bgcnk/internal/machine"
	"bgcnk/internal/sim"
)

// Boot-protocol cost model. The asymmetry the paper hangs its boot story
// on (Section III: a 72-rack machine boots CNK "in minutes") is
// structural, not a tuning constant:
//
//   - CNK's image is tiny and IDENTICAL on every node, so the service
//     node serializes it ONCE into the collective network and the tree
//     broadcasts it; cost grows only with tree depth (log N) plus the
//     per-midplane personality writes, which run in parallel across
//     midplanes. Node-local init is the ~37k-instruction CNK boot.
//
//   - An FWK image is orders of magnitude larger and must be fed to each
//     node separately (ramdisk push / NFS root pull over the service
//     node's few Ethernet streams), then each node runs a full init and
//     starts its daemons, then mounts its filesystems against the same
//     service node — a per-node serialized term at every stage, linear
//     in N.
const (
	cnkImageBytes         = 1 << 20            // CNK boot image (small static kernel)
	fwkImageBytes         = 24 << 20           // full FWK image + initrd
	fwkStrippedImage      = 6 << 20            // stripped build
	ctrlLinkCyclesPerByte = 8                  // service-node control Ethernet, ~100 MB/s
	fwkServiceStreams     = 4                  // parallel image-serving streams
	fwkMountCost          = sim.Cycles(25_000) // per-node NFS mount, serialized at the server
	fwkDaemonStartCost    = sim.Cycles(120_000)
)

// BootConfig parameterizes one partition boot.
type BootConfig struct {
	Kind             machine.KernelKind
	Nodes            int
	NodesPerMidplane int
	Stripped         bool // FWK only
	Streams          int  // FWK image-serving streams (default 4)
}

// BootResult is the modelled cost of bringing one partition up, broken
// into the protocol's phases.
type BootResult struct {
	Kind       machine.KernelKind
	Nodes      int
	ImageBytes uint64
	// Waves is the protocol's serial depth: collective-tree depth for the
	// CNK broadcast, image-load waves (ceil(N/streams)) for an FWK.
	Waves int
	// ImagePhase is image delivery: one broadcast (CNK) or N staggered
	// loads over the service streams (FWK).
	ImagePhase sim.Cycles
	// PerNodePhase is the remaining control-network traffic: personality
	// writes per midplane (CNK, parallel across midplanes) or the NFS
	// mount storm (FWK, serialized at the service node).
	PerNodePhase sim.Cycles
	// InitPhase is node-local kernel initialization (runs in parallel on
	// all nodes): the kernel's own boot instructions, plus daemon start
	// on an FWK.
	InitPhase sim.Cycles
	Total     sim.Cycles
}

// SimulateBoot runs the boot-protocol model for one partition.
func SimulateBoot(cfg BootConfig) BootResult {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.NodesPerMidplane <= 0 {
		cfg.NodesPerMidplane = cfg.Nodes
	}
	if cfg.Streams <= 0 {
		cfg.Streams = fwkServiceStreams
	}
	r := BootResult{Kind: cfg.Kind, Nodes: cfg.Nodes}
	tree := collective.DefaultConfig()
	if cfg.Kind == machine.KindCNK {
		r.ImageBytes = cnkImageBytes
		// Serialize the image once at the tree root; packets pipeline
		// down the tree, so depth adds latency, not bandwidth.
		packets := (cnkImageBytes + collective.PacketBytes - 1) / collective.PacketBytes
		serialize := sim.Cycles(float64(cnkImageBytes)*tree.CyclesPerByte) +
			sim.Cycles(packets)*tree.PerPacket
		depth := bits.Len(uint(cfg.Nodes - 1)) // ceil(log2 N); 0 for N=1
		r.Waves = depth
		r.ImagePhase = serialize + sim.Cycles(depth)*tree.Latency
		// Personalities go over the per-midplane control links, all
		// midplanes in parallel; within a midplane the writes serialize.
		perMidplane := cfg.Nodes
		if cfg.NodesPerMidplane < cfg.Nodes {
			perMidplane = cfg.NodesPerMidplane
		}
		r.PerNodePhase = sim.Cycles(perMidplane * personalityWireBytes() * ctrlLinkCyclesPerByte)
		r.InitPhase = sim.Cycles(kernelBootInstr(machine.KindCNK, false))
	} else {
		r.ImageBytes = fwkImageBytes
		if cfg.Stripped {
			r.ImageBytes = fwkStrippedImage
		}
		perLoad := sim.Cycles(r.ImageBytes * ctrlLinkCyclesPerByte)
		waves := (cfg.Nodes + cfg.Streams - 1) / cfg.Streams
		r.Waves = waves
		r.ImagePhase = sim.Cycles(waves) * perLoad
		r.PerNodePhase = sim.Cycles(cfg.Nodes) * fwkMountCost
		r.InitPhase = sim.Cycles(kernelBootInstr(machine.KindFWK, cfg.Stripped)) + fwkDaemonStartCost
	}
	r.Total = r.ImagePhase + r.PerNodePhase + r.InitPhase
	return r
}

// kernelBootInstr asks the kernel models themselves what node-local boot
// costs, so the protocol model can never drift from the kernels it boots.
func kernelBootInstr(kind machine.KernelKind, stripped bool) uint64 {
	eng := sim.NewEngine()
	chip := hw.NewChip(hw.ChipConfig{ID: 0})
	if kind == machine.KindCNK {
		k := cnk.New(eng, chip, cnk.Config{})
		if err := k.Boot(); err != nil {
			panic(err)
		}
		return k.BootInstr
	}
	// No daemon specs: this probe must not start coroutines it cannot
	// reclaim. Daemon start is charged separately by the caller.
	k := fwk.New(eng, chip, fwk.Config{Stripped: stripped, Daemons: []fwk.DaemonSpec{}})
	if err := k.Boot(); err != nil {
		panic(err)
	}
	return k.BootInstr
}
